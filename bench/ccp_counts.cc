// Ablation: cost-function calls vs. the csg-cmp-pair lower bound.
//
// Sec. 2.2 proves any DP join-ordering algorithm must evaluate at least
// #ccp pairs. This bench shows, per graph shape:
//   * the lower bound (#ccp, counted by the definitional oracle),
//   * pairs each algorithm submitted to the combine step,
//   * candidate pairs each algorithm *tested* (DPsize's and DPsub's failing
//     (*) tests — the overhead DPccp/DPhyp eliminate),
//   * DP table entries (== #csg, Sec. 3.6) and table bytes.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "hypergraph/connectivity.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

namespace {

struct Case {
  std::string name;
  QuerySpec spec;
};

void Report(const Case& c) {
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  const uint64_t csg = CountConnectedSubgraphs(g);
  const uint64_t ccp = CountCsgCmpPairs(g);
  std::printf("-- %s: %llu csgs, %llu csg-cmp-pairs (lower bound)\n",
              c.name.c_str(), static_cast<unsigned long long>(csg),
              static_cast<unsigned long long>(ccp));
  TablePrinter table({"algorithm", "pairs submitted", "pairs tested",
                      "cost evals", "dp entries", "table KiB"});
  // Registry sweep: every exact enumerator that can handle this graph —
  // a newly registered algorithm shows up in the ablation automatically.
  for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
    if (!e->Exact() || !e->CanHandle(g)) continue;
    CardinalityEstimator est(g);
    OptimizeResult r = e->Optimize(g, est, DefaultCostModel());
    if (!r.success) continue;
    table.AddRow({e->Name(), std::to_string(r.stats.ccp_pairs),
                  std::to_string(r.stats.pairs_tested),
                  std::to_string(r.stats.cost_evaluations),
                  std::to_string(r.stats.dp_entries),
                  std::to_string(r.stats.table_bytes / 1024)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::vector<Case> cases;
  cases.push_back({"chain-12", MakeChainQuery(12)});
  cases.push_back({"cycle-12", MakeCycleQuery(12)});
  cases.push_back({"star-12", MakeStarQuery(11)});
  cases.push_back({"clique-10", MakeCliqueQuery(10)});
  cases.push_back({"cycle-12 + hyperedge", MakeCycleHypergraphQuery(12, 0)});
  cases.push_back({"cycle-12, 2 splits", MakeCycleHypergraphQuery(12, 2)});
  cases.push_back({"star-12 + hyperedge", MakeStarHypergraphQuery(12, 0)});
  cases.push_back({"star-12, 2 splits", MakeStarHypergraphQuery(12, 2)});

  std::printf("== Cost-function calls vs. csg-cmp-pair lower bound ==\n\n");
  for (const Case& c : cases) Report(c);
  return 0;
}
