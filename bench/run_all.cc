// Machine-readable benchmark runner: re-executes the paper-figure benches
// (fig5 cycles, fig6 stars, fig7 regular graphs, fig8a antijoins, fig8b
// outer joins), the plan-service throughput configurations, and the
// pruned-vs-unpruned DPhyp comparison, and writes one JSON record —
// BENCH_dphyp.json by default — with per-shape median/p99 timings and
// csg-cmp-pair counts. Run it from the repo root so the perf trajectory
// lands next to the sources:
//
//   ./build/bench_run_all            # writes ./BENCH_dphyp.json
//   ./build/bench_run_all out.json   # explicit output path
//
// Environment knobs (all optional):
//   DPHYP_BENCH_MAX_N           largest cycle/regular size (default 16)
//   DPHYP_BENCH_MAX_SATELLITES  largest star size (default 16)
//   DPHYP_SERVICE_QUERIES       traffic-mix batch size (default 400)
//   DPHYP_SERVICE_THREADS       service worker threads (default hw)
//   DPHYP_BENCH_REQUIRE_SPEEDUP exit non-zero unless pruned DPhyp beats
//                               unpruned by this factor (median, on the
//                               16-satellite fig6 stars); 0 disables the
//                               gate (default: 0 — CI runners are noisy)
//   DPHYP_BENCH_PAR_CLIQUE      clique size for the dphyp-par thread sweep
//                               (default 18; < 4 skips the shape)
//   DPHYP_BENCH_PAR_STAR        star satellites for the same sweep
//                               (default 24; < 4 skips the shape)
//   DPHYP_BENCH_PAR_REPS        repetitions per (shape, thread count)
//   DPHYP_BENCH_REQUIRE_PAR_SPEEDUP  exit non-zero unless dphyp-par at 8
//                               threads beats 1 thread by this percent on
//                               the clique (e.g. 200 = 2x); 0 disables
//                               (default: only meaningful on multi-core)
//   DPHYP_BENCH_FRONTIER_CLIQUE / _STAR / _CHAIN / _RAND  shape sizes for
//                               the beyond-exact frontier sweep (defaults
//                               30/26/20/40; < 4 skips the shape)
//   DPHYP_BENCH_REQUIRE_FRONTIER_RATIO  exit non-zero if any frontier
//                               record's cost ratio vs GOO exceeds this
//                               percent (100 = must match-or-beat GOO);
//                               0 disables (default)
//   DPHYP_BENCH_JOB_TABLES / _ROWS / _QUERIES  jobgen pool shape (defaults
//                               6 tables x ~96 rows, 10 queries; every plan
//                               is executed, so row counts scale execution
//                               cost exponentially in join depth)
//   DPHYP_BENCH_REQUIRE_HIST_RATIO  exit non-zero unless the hist model's
//                               pooled median q-error on the jobgen
//                               workload is at most this percent of the
//                               stats model's (50 = half); 0 disables
//                               (default)
//   DPHYP_BENCH_WIDE_CHAIN / _TREE / _SPARSE  shape sizes for the
//                               > 64-relation wide sweep (defaults
//                               72/80/80; < 4 skips the shape)
//   DPHYP_BENCH_BASELINE        prior BENCH_dphyp.json to compare the
//                               narrow fig5-8 medians against (default:
//                               the committed ./BENCH_dphyp.json — run
//                               from the repo root)
//   DPHYP_BENCH_REQUIRE_NO_NARROW_REGRESSION  exit non-zero unless the
//                               median ratio of this run's fig5-8
//                               median_ms over the baseline's is at most
//                               this percent (105 = a 5% median slowdown
//                               budget for the narrow one-word path);
//                               0 disables (default — only meaningful
//                               when baseline and run share hardware)
//
// Output schema (BENCH_dphyp.json):
//   schema_version  int, currently 7
//   config          the knob values the run used
//   results[]       one record per (figure, shape, params, algorithm):
//     figure        "fig5" | "fig6" | "fig7" | "fig8a" | "fig8b"
//                   | "service" | "pruning_fig6" | "estimation"
//                   | "deadline" | "parallel" | "frontier" | "jobgen"
//     shape         workload family ("cycle-hyper", "star", ...)
//     algorithm     enumeration algorithm (or service config name)
//     pruned        whether branch-and-bound pruning was on
//     median_ms/p99_ms/samples   order statistics over the timed reps
//     ccp_pairs/dp_entries/...   OptimizerStats of one probe run
//   service records instead carry qps, p50_ms, p99_ms, cache_hit_rate
//   pruning_fig6 records carry speedup_median (unpruned / pruned)
//   estimation records (one per registered cardinality model on the
//   derived-selectivity chain) carry model, q_median/q_mean/q_max over the
//   served plan's classes vs. executed actuals, median_ms, and
//   overhead_vs_product (optimize-time ratio - 1; the stats model's bar is
//   <= 5%, advisory unless DPHYP_BENCH_REQUIRE_ESTIMATION=1)
//   parallel records carry threads, cores (what the runner had),
//   speedup_vs_1thread, and the usual timing/stats fields; the run aborts
//   if any thread count's plan cost differs from the 1-thread cost
//   frontier records (schema v4: idp-k/anneal on past-frontier shapes)
//   carry cost_ratio_vs_goo (the quality floor, <= 1.0 by construction)
//   and, on exact-feasible shapes, cost_ratio_vs_exact
//   jobgen records (schema v6: the JOB-style skewed/correlated generated
//   workload, workload/jobgen.h) — one per cardinality model — carry
//   q_median/q_max pooled over every graded plan class of every query and
//   plan_regret_vs_oracle (median C_out of the model's served plans under
//   executed actuals divided by the oracle plan's, 1.0 = oracle-quality
//   join orders); the summary field jobgen_hist_vs_stats_q_ratio is the
//   acceptance metric (hist's pooled median / stats', bar <= 0.5)
//   load records (schema v5: the open-loop burst-traffic harness,
//   bench/load_harness.h) — one "stampede" record (concurrent clients on
//   one hot fingerprint: optimizations must be exactly 1, the rest split
//   between coalesced and cache hits) and one "zipf-mix" record per swept
//   Poisson target rate carrying offered/achieved qps, arrival-to-
//   completion p50/p99 (queueing delay included), shed/rejected/coalesced
//   counts, and cache_hit_rate; the summary field
//   load_sustained_qps_at_slo is the highest swept rate whose p99 met the
//   SLO (knobs: DPHYP_BENCH_LOAD_QPS/_REQUESTS/_CLIENTS/_SWEEP/_ZIPF_PCT/
//   _SLO_MS/_SEED/_STAMPEDE, shared with bench_loadgen; see
//   docs/benchmarks.md)
//   wide records (schema v7: > 64-relation graphs through the wide path,
//   core/wide.h + workload/wide_gen.h) carry n, words (the BasicNodeSet
//   width that ran), the route the wide auction picked (algorithm,
//   route_reason, exact), cost_ratio_vs_goo (exact routes are <= 1.0 by
//   construction; idp-k's floor guarantee makes it <= 1.0 too), and the
//   usual timing/stats fields; one extra "combine-narrow-star16" record
//   tracks the one-word combine-loop time (the EmitCsgCmp-heavy fig6
//   shape) so the DpTable tag/prefetch micro-work stays visible. The
//   summary fields wide_worst_cost_ratio_vs_goo and
//   narrow_fig_median_ratio_vs_baseline (this run's fig5-8 medians over
//   the committed baseline's, median across matched records; 0 when no
//   baseline was readable) are the wide-path acceptance metrics.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "baselines/goo.h"
#include "bench/harness.h"
#include "bench/json_writer.h"
#include "bench/load_harness.h"
#include "core/wide.h"
#include "workload/wide_gen.h"
#include "cost/oracle_model.h"
#include "cost/qerror.h"
#include "cost/stats_model.h"
#include "exec/executor.h"
#include "reorder/ses_tes.h"
#include "service/plan_service.h"
#include "service/session.h"
#include "stats/hist_model.h"
#include "workload/generators.h"
#include "workload/jobgen.h"
#include "workload/optree_gen.h"

using namespace dphyp;
using namespace dphyp::bench;

namespace {

JsonWriter json;

/// This run's fig5-8 median_ms by record identity, for the narrow
/// no-regression comparison against the committed baseline JSON.
std::map<std::string, double> g_narrow_fig_medians;

/// The record identity the narrow-regression comparison keys on: every
/// field that distinguishes one fig5-8 record from another.
std::string NarrowKey(const std::string& figure, const std::string& shape,
                      int n, const char* param, int value,
                      const std::string& algo, bool pruned) {
  std::string key = figure + "|" + shape + "|n=" + std::to_string(n);
  if (param != nullptr) {
    key += "|" + std::string(param) + "=" + std::to_string(value);
  }
  key += "|" + algo + (pruned ? "|pruned" : "|unpruned");
  return key;
}

void OpenRecord(const char* figure, const char* shape) {
  json.BeginObject();
  json.Field("figure", figure);
  json.Field("shape", shape);
}

void TimingFields(const TimingStats& t) {
  json.Field("median_ms", t.median_ms);
  json.Field("p99_ms", t.p99_ms);
  json.Field("samples", t.samples);
}

void StatsFields(const OptimizerStats& s) {
  json.Field("ccp_pairs", s.ccp_pairs);
  json.Field("pairs_tested", s.pairs_tested);
  json.Field("cost_evaluations", s.cost_evaluations);
  json.Field("pruned_pairs", s.pruned);
  json.Field("dominated_pairs", s.dominated);
  json.Field("dp_entries", s.dp_entries);
  json.Field("table_bytes", s.table_bytes);
}

/// Times `algo` on `graph` and appends one result record; `param`/`value`
/// add the sweep field (splits/antijoins/...) when `param` is non-null.
void RecordWithParam(const char* figure, const char* shape, const char* param,
                     int value, const char* algo, const Hypergraph& graph,
                     const OptimizerOptions& options = {},
                     const char* algo_label = nullptr) {
  OptimizerStats stats;
  TimingStats timing = TimeOptimizeStats(algo, graph, options, &stats);
  const char* label = algo_label != nullptr ? algo_label : algo;
  if (std::strncmp(figure, "fig", 3) == 0) {
    g_narrow_fig_medians[NarrowKey(figure, shape, graph.NumNodes(), param,
                                   value, label, options.enable_pruning)] =
        timing.median_ms;
  }
  OpenRecord(figure, shape);
  json.Field("n", graph.NumNodes());
  if (param != nullptr) json.Field(param, value);
  json.Field("algorithm", label);
  json.Key("pruned");
  json.Bool(options.enable_pruning);
  TimingFields(timing);
  StatsFields(stats);
  json.EndObject();
  if (param != nullptr) {
    std::printf("  %-18s %s=%d %-12s median %10.3f ms  p99 %10.3f ms\n",
                shape, param, value, label, timing.median_ms, timing.p99_ms);
  } else {
    std::printf("  %-24s %-12s median %10.3f ms  p99 %10.3f ms  ccp %llu\n",
                shape, label, timing.median_ms, timing.p99_ms,
                static_cast<unsigned long long>(stats.ccp_pairs));
  }
}

void Record(const char* figure, const char* shape, const char* algo,
            const Hypergraph& graph, const OptimizerOptions& options = {},
            const char* algo_label = nullptr) {
  RecordWithParam(figure, shape, /*param=*/nullptr, 0, algo, graph, options,
                  algo_label);
}

void RunFig5(int max_n) {
  std::printf("== fig5: cycle hypergraphs ==\n");
  for (int n : {8, 16}) {
    if (n > max_n) continue;
    for (int splits = 0; splits <= MaxHyperedgeSplits(n / 2); ++splits) {
      Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(n, splits));
      for (const char* a : {"DPhyp", "DPsize", "DPsub"}) {
        RecordWithParam("fig5", "cycle-hyper", "splits", splits, a, g);
      }
    }
  }
}

void RunFig6(int max_sats) {
  std::printf("== fig6: star hypergraphs ==\n");
  for (int sats : {8, 16}) {
    if (sats > max_sats) continue;
    for (int splits = 0; splits <= MaxHyperedgeSplits(sats / 2); ++splits) {
      Hypergraph g =
          BuildHypergraphOrDie(MakeStarHypergraphQuery(sats, splits));
      for (const char* a : {"DPhyp", "DPsize", "DPsub"}) {
        RecordWithParam("fig6", "star-hyper", "splits", splits, a, g);
      }
    }
  }
}

void RunFig7(int max_n) {
  std::printf("== fig7: regular star graphs ==\n");
  for (int n = 3; n <= max_n; ++n) {
    Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(n - 1));
    for (const char* a :
         {"DPhyp", "DPsize", "DPsub", "DPccp", "TDbasic"}) {
      Record("fig7", "star", a, g);
    }
  }
}

void RunFig8a() {
  std::printf("== fig8a: star antijoins, hypernodes vs TES tests ==\n");
  const int satellites = 15;
  for (int anti = 0; anti <= satellites; ++anti) {
    SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(satellites, anti);
    RecordWithParam("fig8a", "star-antijoin", "antijoins", anti, "DPhyp",
                    w.graph, {}, "DPhyp-hypernodes");
    OptimizerOptions tes_options;
    tes_options.tes_constraints = &w.tes_constraints;
    RecordWithParam("fig8a", "star-antijoin", "antijoins", anti, "DPhyp",
                    w.ses_graph, tes_options, "DPhyp-TES-tests");
  }
}

void RunFig8b() {
  std::printf("== fig8b: cycle outer joins ==\n");
  const int n = 16;
  for (int outer = 0; outer <= n - 1; ++outer) {
    OperatorTree tree = MakeCycleOuterjoinTree(n, outer);
    DerivedQuery dq = DeriveQuery(tree);
    for (const char* a : {"DPhyp", "DPsize", "DPsub"}) {
      RecordWithParam("fig8b", "cycle-outerjoin", "outerjoins", outer, a,
                      dq.graph);
    }
  }
}

void ServiceRecord(const char* config, const ServiceStats& stats) {
  OpenRecord("service", "traffic-mix");
  json.Field("algorithm", config);
  json.Field("queries", stats.queries);
  json.Field("qps", stats.queries_per_sec);
  json.Field("p50_ms", stats.p50_latency_ms);
  json.Field("p99_ms", stats.p99_latency_ms);
  json.Field("cache_hit_rate",
             stats.queries > 0 ? static_cast<double>(stats.cache_hits) /
                                     static_cast<double>(stats.queries)
                               : 0.0);
  json.EndObject();
  std::printf("  %-24s %10.0f qps  p50 %8.3f ms  p99 %8.3f ms\n", config,
              stats.queries_per_sec, stats.p50_latency_ms,
              stats.p99_latency_ms);
}

int RunService() {
  std::printf("== service: mixed-traffic throughput ==\n");
  int num_queries = EnvInt("DPHYP_SERVICE_QUERIES", 400);
  if (num_queries < 1) num_queries = 1;
  int threads = EnvInt("DPHYP_SERVICE_THREADS", 0);
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  TrafficMixOptions mix;
  mix.seed = 99;
  mix.min_relations = 6;
  mix.max_relations = 22;
  mix.clique_max_relations = 13;
  mix.distinct_templates = 32;
  const std::vector<QuerySpec> traffic = GenerateTrafficMix(num_queries, mix);

  struct Config {
    const char* name;
    int threads;
    bool warm;
  };
  const Config configs[] = {
      {"cold-1-thread", 1, false},
      {"cold-multi-thread", threads, false},
      {"warm-multi-thread", threads, true},
  };
  for (const Config& c : configs) {
    ServiceOptions opts;
    opts.num_threads = c.threads;
    opts.cache_byte_budget = 16 << 20;
    PlanService service(opts);
    if (c.warm) {
      BatchOutcome warmup = service.OptimizeBatch(traffic);
      if (warmup.stats.failures > 0) {
        std::fprintf(stderr, "bench: service warmup failures\n");
        return 1;
      }
    }
    BatchOutcome out = service.OptimizeBatch(traffic);
    if (out.stats.failures > 0) {
      std::fprintf(stderr, "bench: service failures\n");
      return 1;
    }
    ServiceRecord(c.name, out.stats);
  }
  return 0;
}

/// Intra-query parallel enumeration: dphyp-par at 1/2/4/8 threads on the
/// two shapes past the sequential frontier — a clique (dense: csg-cmp
/// pairs ~3^n) and a big star (degree hub: 2^degree table entries). Each
/// thread count must produce the bit-identical plan cost (a differential
/// check, enforced); the speedup records are the scaling trajectory.
/// Returns the clique speedup at 8 threads vs 1 (the acceptance metric;
/// meaningful only on multi-core hardware — the `cores` field records what
/// the run had).
double RunParallelSpeedup() {
  std::printf("== parallel: dphyp-par thread scaling ==\n");
  const int clique_n = EnvInt("DPHYP_BENCH_PAR_CLIQUE", 18);
  const int star_sats = EnvInt("DPHYP_BENCH_PAR_STAR", 24);
  int reps = EnvInt("DPHYP_BENCH_PAR_REPS", 1);
  if (reps < 1) reps = 1;
  const int cores = static_cast<int>(std::thread::hardware_concurrency());

  struct Shape {
    const char* name;
    QuerySpec spec;
  };
  std::vector<Shape> shapes;
  if (clique_n >= 4) shapes.push_back({"clique", MakeCliqueQuery(clique_n)});
  if (star_sats >= 4) shapes.push_back({"star", MakeStarQuery(star_sats)});

  double clique_speedup_at_8 = 0.0;
  for (const Shape& shape : shapes) {
    Hypergraph g = BuildHypergraphOrDie(shape.spec);
    CardinalityEstimator est(g);
    OptimizationRequest request;
    request.graph = &g;
    request.estimator = &est;
    request.cost_model = &DefaultCostModel();
    OptimizerWorkspace workspace;  // reused: per-thread scratch grows once
    const Enumerator& par = EnumeratorOrDie("dphyp-par");

    double base_median = 0.0;
    double reference_cost = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      request.options.parallel_threads = threads;
      std::vector<double> samples;
      OptimizerStats stats;
      for (int rep = 0; rep < reps; ++rep) {
        Timer timer;
        OptimizeResult r = par.Run(request, workspace);
        samples.push_back(timer.ElapsedMillis());
        if (!r.success) {
          std::fprintf(stderr, "bench: dphyp-par failed on %s-%d: %s\n",
                       shape.name, g.NumNodes(), r.error.c_str());
          std::exit(1);
        }
        stats = r.stats;
        if (threads == 1 && rep == 0) {
          reference_cost = r.cost;
        } else if (r.cost != reference_cost) {
          // The determinism contract is part of the benchmark: any drift
          // across thread counts is a correctness bug, not noise.
          std::fprintf(stderr,
                       "bench: dphyp-par cost drifted across thread counts "
                       "on %s-%d (%.17g vs %.17g)\n",
                       shape.name, g.NumNodes(), r.cost, reference_cost);
          std::exit(1);
        }
      }
      std::sort(samples.begin(), samples.end());
      const double median = samples[samples.size() / 2];
      const double p99 = samples[samples.size() - 1];
      if (threads == 1) base_median = median;
      const double speedup = median > 0.0 ? base_median / median : 0.0;
      if (shape.name[0] == 'c' && threads == 8) clique_speedup_at_8 = speedup;
      OpenRecord("parallel", shape.name);
      json.Field("n", g.NumNodes());
      json.Field("algorithm", "dphyp-par");
      json.Field("threads", threads);
      json.Field("cores", cores);
      TimingFields({median, p99, static_cast<int>(samples.size())});
      json.Field("speedup_vs_1thread", speedup);
      StatsFields(stats);
      json.EndObject();
      std::printf(
          "  %-10s n=%-3d threads=%d  median %10.3f ms  speedup %5.2fx\n",
          shape.name, g.NumNodes(), threads, median, speedup);
    }
  }
  return clique_speedup_at_8;
}

/// Pruned vs. unpruned DPhyp on the fig6 star workloads (the acceptance
/// sweep: 16 satellites -> 17 relations). Returns the worst median speedup.
double RunPruningComparison(int max_sats) {
  std::printf("== pruning_fig6: DPhyp pruned vs unpruned ==\n");
  if (max_sats < 8) {
    std::printf("  skipped: DPHYP_BENCH_MAX_SATELLITES=%d < 8\n", max_sats);
    return -1.0;
  }
  const int sats = max_sats >= 16 ? 16 : 8;
  double worst_speedup = -1.0;
  for (int splits = 0; splits <= MaxHyperedgeSplits(sats / 2); ++splits) {
    Hypergraph g = BuildHypergraphOrDie(MakeStarHypergraphQuery(sats, splits));
    OptimizerOptions pruned;
    pruned.enable_pruning = true;
    OptimizerStats pruned_stats;
    TimingStats unpruned_t = TimeOptimizeStats("DPhyp", g);
    TimingStats pruned_t =
        TimeOptimizeStats("DPhyp", g, pruned, &pruned_stats);
    const double speedup = pruned_t.median_ms > 0.0
                               ? unpruned_t.median_ms / pruned_t.median_ms
                               : 0.0;
    if (worst_speedup < 0.0 || speedup < worst_speedup) {
      worst_speedup = speedup;
    }
    OpenRecord("pruning_fig6", "star-hyper");
    json.Field("n", g.NumNodes());
    json.Field("splits", splits);
    json.Field("algorithm", "DPhyp");
    json.Field("unpruned_median_ms", unpruned_t.median_ms);
    json.Field("pruned_median_ms", pruned_t.median_ms);
    json.Field("speedup_median", speedup);
    json.Field("pruned_pairs", pruned_stats.pruned);
    json.Field("dominated_pairs", pruned_stats.dominated);
    json.EndObject();
    std::printf(
        "  star-hyper sats=%d splits=%d  unpruned %8.3f ms  pruned %8.3f ms "
        " speedup %.2fx\n",
        sats, splits, unpruned_t.median_ms, pruned_t.median_ms, speedup);
  }
  return worst_speedup;
}

/// Deadline compliance on the fig6 star-24 shape: force the exact DPhyp
/// enumerator (dispatch would route this hub to GOO outright) under a
/// session deadline and record how far past the budget the abort landed.
/// The served plan is the GOO fallback; the acceptance bar is abort
/// latency <= 1.1x budget.
bool RunDeadlineCompliance(bool enforce) {
  std::printf("== deadline: star-24 exact-DP abort latency ==\n");
  Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(24));
  CardinalityEstimator est(g);
  bool ok = true;
  // Budgets large enough that the 10% bar leaves milliseconds of slack:
  // the poll granularity itself bounds overshoot to microseconds, so any
  // miss here is scheduler noise, not the mechanism.
  for (double budget_ms : {20.0, 50.0}) {
    OptimizationSession session;
    OptimizationRequest request;
    request.graph = &g;
    request.estimator = &est;
    request.cost_model = &DefaultCostModel();
    request.enumerator = "DPhyp";
    request.deadline_ms = budget_ms;
    Result<OptimizeResult> served = session.Optimize(request);
    if (!served.ok() || !served.value().success ||
        !served.value().stats.aborted) {
      std::fprintf(stderr, "bench: deadline run did not abort-and-serve\n");
      return false;
    }
    const double abort_ms = served.value().stats.abort_latency_ms;
    const double overshoot = abort_ms / budget_ms;
    OpenRecord("deadline", "star");
    json.Field("n", g.NumNodes());
    json.Field("algorithm", "DPhyp+GOO-fallback");
    json.Field("budget_ms", budget_ms);
    json.Field("abort_latency_ms", abort_ms);
    json.Field("overshoot", overshoot);
    json.EndObject();
    std::printf("  star-24 budget %6.1f ms  abort at %8.3f ms  (%.2fx)\n",
                budget_ms, abort_ms, overshoot);
    if (overshoot > 1.10) {
      std::fprintf(stderr,
                   "bench: abort latency %.3f ms exceeds budget %.1f ms by "
                   ">10%%%s\n",
                   abort_ms, budget_ms,
                   enforce ? "" : " (advisory: gate disabled)");
      if (enforce) ok = false;
    }
  }
  return ok;
}

/// Per-cardinality-model estimation quality and optimize-time overhead on a
/// derived-selectivity chain: relations with known column ndv, predicates
/// omitting explicit selectivities, executable payloads matching the
/// derivation — so the stats model's 1/max(ndv) rule is exactly the data's
/// match rate. Each model optimizes the same graph; its plan is executed
/// (filling the feedback store) and graded by q-error. Returns the stats
/// model's optimize-time overhead vs. product form (ratio - 1), the
/// acceptance metric (<= 5%).
double RunEstimation() {
  std::printf("== estimation: cardinality models, q-error & overhead ==\n");
  const int n = 5, rows = 10;
  const int64_t modulus = 2;
  auto catalog = std::make_shared<Catalog>();
  QuerySpec spec;
  for (int i = 0; i < n; ++i) {
    std::string name = "R" + std::to_string(i);
    spec.AddRelation(name, rows, 1);
    catalog->AddTable(TableStats{
        name, static_cast<double>(rows),
        {ColumnStats{static_cast<double>(modulus), 0.0, 96.0}}});
  }
  for (int i = 0; i + 1 < n; ++i) {
    int p = spec.AddSimplePredicate(i, i + 1, 0.1);
    spec.predicates[p].derive_selectivity = true;
    spec.predicates[p].refs = {{i, 0}, {i + 1, 0}};
    spec.predicates[p].modulus = modulus;
  }
  spec.BindCatalog(catalog);
  Hypergraph g = BuildHypergraphOrDie(spec);

  CardinalityFeedback actuals;
  Dataset data = Dataset::Generate(spec.relations, rows, 0x5eed);
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g), &actuals);

  CardinalityEstimator product(g);
  StatsCardinalityModel stats(g, spec);
  // Fill the feedback store (product + stats plans), then let the oracle
  // stabilize on its own plan so every class it serves is observed.
  for (const CardinalityModel* m :
       {static_cast<const CardinalityModel*>(&product),
        static_cast<const CardinalityModel*>(&stats)}) {
    OptimizeResult r = EnumeratorOrDie("DPhyp").Optimize(g, *m,
                                                         DefaultCostModel());
    if (!r.success) {
      std::fprintf(stderr, "bench: estimation seed run failed\n");
      std::exit(1);
    }
    exec.Execute(r.ExtractPlan(g));
  }
  OracleCardinalityModel oracle(g, actuals);
  for (int round = 0; round < 3; ++round) {
    OptimizeResult r =
        EnumeratorOrDie("DPhyp").Optimize(g, oracle, DefaultCostModel());
    exec.Execute(r.ExtractPlan(g));
  }

  // Overhead is timed on a larger star (many classes, estimator calls
  // dominating the combine step), not the tiny executed chain whose
  // microsecond runs are all measurement noise. The comparison itself is
  // interleaved A/B: alternating (model, product) runs share whatever
  // frequency/thermal state the machine is in, and the median of
  // per-round ratios cancels drift that back-to-back medians do not.
  QuerySpec timing_spec = MakeStarQuery(12);
  Hypergraph timing_g = BuildHypergraphOrDie(timing_spec);
  CardinalityEstimator timing_product(timing_g);
  StatsCardinalityModel timing_stats(timing_g, timing_spec);
  // The chain's feedback store is keyed by the chain's relation numbering
  // and must not leak into the star; an empty store times the oracle's
  // real steady cost (one lookup miss + product fallback per class).
  CardinalityFeedback timing_actuals;
  OracleCardinalityModel timing_oracle(timing_g, timing_actuals);
  OptimizerWorkspace timing_ws;
  auto time_one = [&](const CardinalityModel& m) {
    OptimizationRequest rq;
    rq.graph = &timing_g;
    rq.estimator = &m;
    rq.cost_model = &DefaultCostModel();
    Timer t;
    OptimizeResult r = EnumeratorOrDie("DPhyp").Run(rq, timing_ws);
    (void)r;
    return t.ElapsedMillis();
  };
  auto overhead_vs_product = [&](const CardinalityModel& m) {
    time_one(timing_product);  // warm the workspace for this shape
    time_one(m);
    std::vector<double> ratios;
    for (int round = 0; round < 9; ++round) {
      const double model_ms = time_one(m);
      const double product_ms = time_one(timing_product);
      if (product_ms > 0.0) ratios.push_back(model_ms / product_ms);
    }
    std::sort(ratios.begin(), ratios.end());
    return ratios.empty() ? 0.0 : ratios[ratios.size() / 2] - 1.0;
  };

  double stats_overhead = 0.0;
  struct ModelEntry {
    const char* name;
    const CardinalityModel* model;         // graded on the executed chain
    const CardinalityModel* timing_model;  // timed on the star
  };
  const ModelEntry models[] = {{"product", &product, &timing_product},
                               {"stats", &stats, &timing_stats},
                               {"oracle", &oracle, &timing_oracle}};
  for (const ModelEntry& m : models) {
    OptimizeResult r =
        EnumeratorOrDie("DPhyp").Optimize(g, *m.model, DefaultCostModel());
    PlanTree plan = r.ExtractPlan(g);
    exec.Execute(plan);
    QErrorStats q = ComputePlanQError(plan, actuals);
    TimingStats timing =
        TimeOptimizeModelStats("DPhyp", timing_g, *m.timing_model);
    double overhead = 0.0;
    if (m.model != &product) {
      overhead = overhead_vs_product(*m.timing_model);
      if (m.model == &stats) stats_overhead = overhead;
    }
    OpenRecord("estimation", "derived-chain");
    json.Field("n", g.NumNodes());
    json.Field("algorithm", "DPhyp");
    json.Field("model", m.name);
    json.Field("q_median", q.median_q);
    json.Field("q_mean", q.mean_q);
    json.Field("q_max", q.max_q);
    json.Field("graded_classes", q.classes);
    TimingFields(timing);
    json.Field("overhead_vs_product", overhead);
    json.EndObject();
    std::printf(
        "  %-8s q_median %8.2f  q_max %8.2f  median %8.4f ms  "
        "overhead %+6.1f%%\n",
        m.name, q.median_q, q.max_q, timing.median_ms, overhead * 100.0);
  }
  return stats_overhead;
}

/// Appends the smoothed q-error of every graded inner class of `node`'s
/// subtree (estimate from the plan, actual from the feedback store).
void PoolPlanQErrors(const PlanTreeNode* node,
                     const CardinalityFeedback& actuals,
                     std::vector<double>* qs) {
  if (node == nullptr || node->IsLeaf()) return;
  PoolPlanQErrors(node->left, actuals, qs);
  PoolPlanQErrors(node->right, actuals, qs);
  double actual = 0.0;
  if (actuals.Lookup(node->set, &actual)) {
    qs->push_back(QError(node->cardinality, actual));
  }
}

/// C_out of a plan under the observed actuals: the sum of every inner
/// class's executed row count — the cost the plan really incurred,
/// independent of what any model estimated. Clears *complete when an
/// inner class has no observation.
double PlanCoutUnderActuals(const PlanTreeNode* node,
                            const CardinalityFeedback& actuals,
                            bool* complete) {
  if (node == nullptr || node->IsLeaf()) return 0.0;
  double sum = PlanCoutUnderActuals(node->left, actuals, complete) +
               PlanCoutUnderActuals(node->right, actuals, complete);
  double actual = 0.0;
  if (!actuals.Lookup(node->set, &actual)) {
    *complete = false;
    return sum;
  }
  return sum + actual;
}

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// The JOB-style generated workload (workload/jobgen.h): Zipf-skewed join
/// keys, correlated predicate pairs, range filters — the estimation
/// pathologies the histogram/MCV statistics exist for. Every model
/// optimizes every query; each served plan is executed against the real
/// tables, graded per class, and costed under the actuals against the
/// oracle plan (plan regret). One record per model pools q-errors and
/// regrets across the whole workload. Returns hist's pooled median
/// q-error divided by stats' (the acceptance ratio; the bar is <= 0.5),
/// or 0 when stats' median is 0.
double RunJobGen() {
  std::printf("== jobgen: JOB-style skewed/correlated workload ==\n");
  JobGenOptions opts;
  opts.num_tables = EnvInt("DPHYP_BENCH_JOB_TABLES", opts.num_tables);
  opts.rows_per_table = EnvInt("DPHYP_BENCH_JOB_ROWS", opts.rows_per_table);
  opts.num_queries = EnvInt("DPHYP_BENCH_JOB_QUERIES", opts.num_queries);
  JobWorkload w = GenerateJobWorkload(opts);

  const char* kModels[] = {"product", "stats", "hist", "oracle"};
  std::map<std::string, std::vector<double>> pooled_q;
  std::map<std::string, std::vector<double>> regrets;

  for (size_t qi = 0; qi < w.queries.size(); ++qi) {
    const QuerySpec& spec = w.queries[qi].spec;
    Hypergraph g = BuildHypergraphOrDie(spec);
    CardinalityFeedback actuals;
    Dataset data = DatasetForJobQuery(w, static_cast<int>(qi));
    Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g),
                  &actuals);

    CardinalityEstimator product(g);
    StatsCardinalityModel stats(g, spec);  // naive catalog via spec binding
    HistogramCardinalityModel hist(g, spec, w.full_catalog.get());

    auto serve = [&](const CardinalityModel& m) {
      OptimizeResult r =
          EnumeratorOrDie("DPhyp").Optimize(g, m, DefaultCostModel());
      if (!r.success) {
        std::fprintf(stderr, "bench: jobgen optimize failed (query %zu)\n",
                     qi);
        std::exit(1);
      }
      PlanTree plan = r.ExtractPlan(g);
      exec.Execute(plan);
      return plan;
    };

    PlanTree plans[4];
    plans[0] = serve(product);
    plans[1] = serve(stats);
    plans[2] = serve(hist);
    // The oracle re-optimizes under its own observations until its plan's
    // classes are all observed (same stabilization as RunEstimation).
    OracleCardinalityModel oracle(g, actuals);
    for (int round = 0; round < 3; ++round) plans[3] = serve(oracle);

    double top_actual = 0.0;
    actuals.Lookup(g.AllNodes(), &top_actual);
    std::printf("  q%02zu relations=%d result=%.0f\n", qi, spec.NumRelations(),
                top_actual);

    bool oracle_complete = true;
    const double oracle_cout =
        PlanCoutUnderActuals(plans[3].root(), actuals, &oracle_complete);
    for (int m = 0; m < 4; ++m) {
      PoolPlanQErrors(plans[m].root(), actuals, &pooled_q[kModels[m]]);
      bool complete = oracle_complete;
      const double cout =
          PlanCoutUnderActuals(plans[m].root(), actuals, &complete);
      if (complete && oracle_cout > 0.0) {
        regrets[kModels[m]].push_back(cout / oracle_cout);
      }
    }
  }

  double stats_median = 0.0, hist_median = 0.0;
  for (const char* name : kModels) {
    const std::vector<double>& qs = pooled_q[name];
    const std::vector<double>& rg = regrets[name];
    const double q_median = MedianOf(qs);
    const double q_max =
        qs.empty() ? 0.0 : *std::max_element(qs.begin(), qs.end());
    const double regret_median = MedianOf(rg);
    const double regret_max =
        rg.empty() ? 0.0 : *std::max_element(rg.begin(), rg.end());
    if (std::string(name) == "stats") stats_median = q_median;
    if (std::string(name) == "hist") hist_median = q_median;
    OpenRecord("jobgen", "zipf-correlated");
    json.Field("algorithm", "DPhyp");
    json.Field("model", name);
    json.Field("queries", static_cast<int>(w.queries.size()));
    json.Field("tables", opts.num_tables);
    json.Field("graded_classes", static_cast<uint64_t>(qs.size()));
    json.Field("q_median", q_median);
    json.Field("q_max", q_max);
    json.Field("plan_regret_vs_oracle", regret_median);
    json.Field("plan_regret_max", regret_max);
    json.EndObject();
    std::printf(
        "  %-8s q_median %8.2f  q_max %10.2f  regret %6.3fx  (max "
        "%6.3fx)\n",
        name, q_median, q_max, regret_median, regret_max);
  }
  return stats_median > 0.0 ? hist_median / stats_median : 0.0;
}

/// Burst-traffic serving: the open-loop load harness against the Serve
/// front door. One stampede record (the coalescing acceptance check:
/// concurrent clients on one hot fingerprint, exactly one optimization)
/// plus a Poisson rate sweep over Zipf-skewed traffic with admission
/// watermarks on, one record per rate. Returns the sustained qps — the
/// highest swept rate whose arrival-to-completion p99 met the SLO — or a
/// negative value on a stampede invariant violation.
double RunLoad() {
  std::printf("== load: open-loop burst traffic ==\n");
  const double base_qps = EnvInt("DPHYP_BENCH_LOAD_QPS", 40);
  const int requests = EnvInt("DPHYP_BENCH_LOAD_REQUESTS", 200);
  const int clients = EnvInt("DPHYP_BENCH_LOAD_CLIENTS", 8);
  const int sweep = std::max(1, EnvInt("DPHYP_BENCH_LOAD_SWEEP", 3));
  const double zipf_s = EnvInt("DPHYP_BENCH_LOAD_ZIPF_PCT", 110) / 100.0;
  const double slo_ms = EnvInt("DPHYP_BENCH_LOAD_SLO_MS", 100);
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("DPHYP_BENCH_LOAD_SEED", 42));
  const int stampede_clients = EnvInt("DPHYP_BENCH_LOAD_STAMPEDE", 12);

  double probe_ms = 0.0;
  QuerySpec hot = PickExpensiveTemplate(/*min_ms=*/150.0, &probe_ms);
  StampedeOutcome stampede = RunStampede(hot, stampede_clients);
  OpenRecord("load", "stampede");
  json.Field("clients", stampede_clients);
  json.Field("fresh_optimization_ms", probe_ms);
  json.Field("optimizations", stampede.optimizations);
  json.Field("coalesced", stampede.coalesced);
  json.Field("cache_hits", stampede.cache_hits);
  json.EndObject();
  std::printf(
      "  stampede clients=%d  optimizations=%llu  coalesced=%llu  "
      "cache_hits=%llu\n",
      stampede_clients,
      static_cast<unsigned long long>(stampede.optimizations),
      static_cast<unsigned long long>(stampede.coalesced),
      static_cast<unsigned long long>(stampede.cache_hits));
  if (stampede.optimizations != 1 || stampede.failures != 0) {
    std::fprintf(stderr,
                 "bench: stampede ran %llu optimizations (want exactly 1)\n",
                 static_cast<unsigned long long>(stampede.optimizations));
    return -1.0;
  }

  TrafficMixOptions mix;
  mix.seed = seed;
  mix.min_relations = 5;
  mix.max_relations = 12;
  mix.clique_max_relations = 9;
  mix.distinct_templates = -1;  // emit the pool itself: all distinct
  const std::vector<QuerySpec> templates = GenerateTrafficMix(24, mix);

  ServiceOptions sopts;
  sopts.num_threads = clients;
  sopts.deadline_ms = 100.0;
  sopts.admission.soft_watermark = clients * 2;
  sopts.admission.hard_watermark = clients * 4;
  PlanService service(sopts);

  double sustained_qps = 0.0;
  for (int step = 0; step < sweep; ++step) {
    LoadOptions lopts;
    lopts.target_qps = base_qps * static_cast<double>(1 << step);
    lopts.requests = requests;
    lopts.clients = clients;
    lopts.zipf_s = zipf_s;
    lopts.seed = seed + static_cast<uint64_t>(step);
    LoadReport report = RunOpenLoopLoad(service, templates, lopts);
    if (report.p99_ms <= slo_ms && report.failures == 0) {
      sustained_qps = std::max(sustained_qps, report.achieved_qps);
    }
    OpenRecord("load", "zipf-mix");
    json.Field("target_qps", report.offered_qps);
    json.Field("achieved_qps", report.achieved_qps);
    json.Field("requests", report.requests);
    json.Field("clients", clients);
    json.Field("zipf_s", zipf_s);
    json.Field("p50_ms", report.p50_ms);
    json.Field("p99_ms", report.p99_ms);
    json.Field("max_ms", report.max_ms);
    json.Field("shed_to_goo", report.degraded);
    json.Field("rejected", report.rejected);
    json.Field("coalesced", report.coalesced);
    json.Field("cache_hit_rate",
               report.requests > 0
                   ? static_cast<double>(report.cache_hits) /
                         static_cast<double>(report.requests)
                   : 0.0);
    json.Field("slo_p99_ms", slo_ms);
    json.EndObject();
    std::printf(
        "  zipf-mix target %6.0f qps  achieved %6.0f  p50 %8.3f ms  "
        "p99 %8.3f ms  shed=%llu rej=%llu coal=%llu\n",
        report.offered_qps, report.achieved_qps, report.p50_ms, report.p99_ms,
        static_cast<unsigned long long>(report.degraded),
        static_cast<unsigned long long>(report.rejected),
        static_cast<unsigned long long>(report.coalesced));
    if (report.failures > 0) {
      std::fprintf(stderr, "bench: %llu load failures at %.0f qps\n",
                   static_cast<unsigned long long>(report.failures),
                   report.offered_qps);
      return -1.0;
    }
  }
  std::printf("  sustained qps at p99 <= %.0f ms: %.0f\n", slo_ms,
              sustained_qps);
  return sustained_qps;
}

/// Beyond-exact plan quality past the feasibility frontier: idp-k and
/// anneal on the shapes dispatch now routes to them (big clique, big star,
/// a random graph) plus an exact-feasible chain where the true optimum is
/// known. Each record carries the plan-cost ratio vs. GOO (the quality
/// floor both enumerators guarantee) and, where exact DP is feasible, vs.
/// the optimum. Returns the worst ratio-vs-GOO seen (the acceptance
/// metric: <= 1.0 by construction; the gate catches regressions in the
/// floor logic itself).
double RunFrontier() {
  std::printf("== frontier: beyond-exact plan quality ==\n");
  const int clique_n = EnvInt("DPHYP_BENCH_FRONTIER_CLIQUE", 30);
  const int star_sats = EnvInt("DPHYP_BENCH_FRONTIER_STAR", 26);
  const int chain_n = EnvInt("DPHYP_BENCH_FRONTIER_CHAIN", 20);
  const int rand_n = EnvInt("DPHYP_BENCH_FRONTIER_RAND", 40);

  struct Shape {
    const char* name;
    QuerySpec spec;
    bool exact_known;  // exact DP feasible: ratio_vs_exact is recorded
  };
  std::vector<Shape> shapes;
  if (clique_n >= 4) {
    shapes.push_back({"clique", MakeCliqueQuery(clique_n), false});
  }
  if (star_sats >= 4) {
    shapes.push_back({"star", MakeStarQuery(star_sats), false});
  }
  if (chain_n >= 4) {
    shapes.push_back({"chain", MakeChainQuery(chain_n), true});
  }
  if (rand_n >= 4) {
    shapes.push_back(
        {"randgraph", MakeRandomGraphQuery(rand_n, 0.08, 0x5eed), false});
  }

  double worst_ratio_vs_goo = 0.0;
  for (const Shape& shape : shapes) {
    Hypergraph g = BuildHypergraphOrDie(shape.spec);
    CardinalityEstimator est(g);
    const Enumerator& goo = EnumeratorOrDie("GOO");
    OptimizeResult goo_result = goo.Optimize(g, est, DefaultCostModel());
    if (!goo_result.success) {
      std::fprintf(stderr, "bench: GOO failed on frontier %s-%d\n",
                   shape.name, g.NumNodes());
      std::exit(1);
    }
    const double goo_cost = goo_result.cost;
    double exact_cost = 0.0;
    if (shape.exact_known) {
      OptimizeResult exact =
          EnumeratorOrDie("DPhyp").Optimize(g, est, DefaultCostModel());
      if (!exact.success) {
        std::fprintf(stderr, "bench: exact failed on frontier %s-%d\n",
                     shape.name, g.NumNodes());
        std::exit(1);
      }
      exact_cost = exact.cost;
    }

    for (const char* algo : {"idp-k", "anneal"}) {
      const Enumerator& e = EnumeratorOrDie(algo);
      if (!e.CanHandle(g)) continue;
      OptimizeResult r = e.Optimize(g, est, DefaultCostModel());
      if (!r.success) {
        std::fprintf(stderr, "bench: %s failed on frontier %s-%d: %s\n",
                     algo, shape.name, g.NumNodes(), r.error.c_str());
        std::exit(1);
      }
      const double ratio_vs_goo = goo_cost > 0.0 ? r.cost / goo_cost : 0.0;
      if (ratio_vs_goo > worst_ratio_vs_goo) {
        worst_ratio_vs_goo = ratio_vs_goo;
      }
      OptimizerStats stats;
      TimingStats timing = TimeOptimizeStats(algo, g, {}, &stats);
      OpenRecord("frontier", shape.name);
      json.Field("n", g.NumNodes());
      json.Field("algorithm", algo);
      TimingFields(timing);
      json.Field("cost_ratio_vs_goo", ratio_vs_goo);
      if (shape.exact_known && exact_cost > 0.0) {
        json.Field("cost_ratio_vs_exact", r.cost / exact_cost);
      }
      StatsFields(stats);
      json.EndObject();
      if (shape.exact_known && exact_cost > 0.0) {
        std::printf(
            "  %-10s n=%-3d %-8s median %10.3f ms  vs-GOO %.4fx  "
            "vs-exact %.4fx\n",
            shape.name, g.NumNodes(), algo, timing.median_ms, ratio_vs_goo,
            r.cost / exact_cost);
      } else {
        std::printf("  %-10s n=%-3d %-8s median %10.3f ms  vs-GOO %.4fx\n",
                    shape.name, g.NumNodes(), algo, timing.median_ms,
                    ratio_vs_goo);
      }
    }
  }
  return worst_ratio_vs_goo;
}

/// Workload ranges for the wide sweep. The narrow defaults (cards to 1e4,
/// selectivities to 0.2) overflow double around 90 joined relations —
/// every cost becomes inf and plan extraction degenerates — so the wide
/// shapes draw from bounded ranges, same as the `wide` test tier.
WorkloadOptions WideBenchOpts(uint64_t seed) {
  WorkloadOptions opts;
  opts.seed = seed;
  opts.min_cardinality = 10.0;
  opts.max_cardinality = 1000.0;
  opts.min_selectivity = 1e-4;
  opts.max_selectivity = 1e-2;
  return opts;
}

/// The > 64-relation sweep through the wide path (core/wide.h): a chain
/// and a degree-bounded threaded tree that must optimize *exactly* (the
/// DPccp chain/cycle bid holds at any width) and a hub-heavy sparse graph
/// past the exact frontier that must take the windowed-exact idp-k route,
/// never the raw GOO floor. Each record carries the plan-cost ratio vs.
/// wide GOO; a final narrow record tracks the one-word combine-loop time
/// on the fig6-style star so the DpTable tag/prefetch micro-work stays
/// visible run over run. Returns the worst ratio vs. GOO (<= 1.0 by
/// construction for every route the sweep exercises).
double RunWide() {
  std::printf("== wide: > 64-relation optimization ==\n");
  const int chain_n = EnvInt("DPHYP_BENCH_WIDE_CHAIN", 72);
  const int tree_n = EnvInt("DPHYP_BENCH_WIDE_TREE", 80);
  const int sparse_n = EnvInt("DPHYP_BENCH_WIDE_SPARSE", 80);

  struct WideShape {
    const char* name;
    WideHypergraph graph;
  };
  std::vector<WideShape> shapes;
  if (chain_n >= 4) {
    shapes.push_back({"chain", MakeWideChainGraph(chain_n, WideBenchOpts(41))});
  }
  if (tree_n >= 4) {
    shapes.push_back({"threaded-tree",
                      MakeWideDegreeBoundedTree(tree_n, 2, 11,
                                                WideBenchOpts(11))});
  }
  if (sparse_n >= 4) {
    shapes.push_back(
        {"sparse-hub",
         MakeWideSparseGraph(sparse_n, 0.0005, 7, WideBenchOpts(7))});
  }

  double worst_ratio_vs_goo = 0.0;
  for (const WideShape& shape : shapes) {
    const WideHypergraph& g = shape.graph;
    WideCardinalityEstimator est(g);
    OptimizerOptions options;
    options.random_seed = 0xd1ce;  // pins idp-k / anneal / GOO tie-breaks
    const WideRouteDecision d = ChooseWideRoute(g);

    BasicOptimizerWorkspace<WideNodeSet> ws;
    Timer probe_timer;
    WideOptimizeResult r =
        OptimizeWideAdaptive(g, est, DefaultCostModel(), options, &ws);
    const double probe_ms = probe_timer.ElapsedMillis();
    if (!r.success) {
      std::fprintf(stderr, "bench: wide %s-%d failed: %s\n", shape.name,
                   g.NumNodes(), r.error.c_str());
      std::exit(1);
    }
    TimingStats timing;
    if (probe_ms > 1000.0) {
      timing = {probe_ms, probe_ms, 1};
    } else {
      std::vector<double> samples = MeasureSamplesMillis(
          [&] {
            WideOptimizeResult rep =
                OptimizeWideAdaptive(g, est, DefaultCostModel(), options, &ws);
            (void)rep;
          },
          /*min_total_ms=*/30.0, /*max_reps=*/50);
      timing = {QuantileMillis(samples, 0.5), QuantileMillis(samples, 0.99),
                static_cast<int>(samples.size())};
    }

    WideOptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel(), options);
    if (!goo.success) {
      std::fprintf(stderr, "bench: wide GOO failed on %s-%d: %s\n", shape.name,
                   g.NumNodes(), goo.error.c_str());
      std::exit(1);
    }
    const double ratio_vs_goo = goo.cost > 0.0 ? r.cost / goo.cost : 0.0;
    worst_ratio_vs_goo = std::max(worst_ratio_vs_goo, ratio_vs_goo);

    OpenRecord("wide", shape.name);
    json.Field("n", g.NumNodes());
    json.Field("words", static_cast<int>(WideNodeSet::kWords));
    json.Field("algorithm", r.stats.algorithm);
    json.Field("route_reason", d.reason);
    json.Key("exact");
    json.Bool(d.exact);
    TimingFields(timing);
    json.Field("cost_ratio_vs_goo", ratio_vs_goo);
    StatsFields(r.stats);
    json.EndObject();
    std::printf(
        "  %-14s n=%-3d %-8s %-7s median %10.3f ms  vs-GOO %.4fx\n",
        shape.name, g.NumNodes(), r.stats.algorithm,
        d.exact ? "exact" : "approx", timing.median_ms, ratio_vs_goo);
  }

  // The one-word combine-loop tracker: narrow DPhyp on the fig6-style
  // regular star, the EmitCsgCmp-heaviest shape in the paper sweep.
  Hypergraph star = BuildHypergraphOrDie(MakeStarQuery(16));
  OptimizerStats narrow_stats;
  TimingStats narrow = TimeOptimizeStats("DPhyp", star, {}, &narrow_stats);
  OpenRecord("wide", "combine-narrow-star16");
  json.Field("n", star.NumNodes());
  json.Field("words", 1);
  json.Field("algorithm", "DPhyp");
  TimingFields(narrow);
  StatsFields(narrow_stats);
  json.EndObject();
  std::printf("  %-14s n=%-3d %-8s %-7s median %10.3f ms\n",
              "combine-narrow", star.NumNodes(), "DPhyp", "1-word",
              narrow.median_ms);
  return worst_ratio_vs_goo;
}

/// Minimal field extraction from the baseline JSON — the file is our own
/// JsonWriter output (flat one-line records), so plain substring scans are
/// exact, not heuristic.
bool JsonStringField(const std::string& rec, const char* name,
                     std::string* out) {
  const std::string pat = std::string("\"") + name + "\":\"";
  const size_t p = rec.find(pat);
  if (p == std::string::npos) return false;
  const size_t start = p + pat.size();
  const size_t end = rec.find('"', start);
  if (end == std::string::npos) return false;
  *out = rec.substr(start, end - start);
  return true;
}

bool JsonNumberField(const std::string& rec, const char* name, double* out) {
  const std::string pat = std::string("\"") + name + "\":";
  const size_t p = rec.find(pat);
  if (p == std::string::npos) return false;
  const char* cursor = rec.c_str() + p + pat.size();
  char* end = nullptr;
  const double value = std::strtod(cursor, &end);
  if (end == cursor) return false;
  *out = value;
  return true;
}

bool JsonBoolField(const std::string& rec, const char* name, bool* out) {
  const std::string pat = std::string("\"") + name + "\":";
  const size_t p = rec.find(pat);
  if (p == std::string::npos) return false;
  *out = rec.compare(p + pat.size(), 4, "true") == 0;
  return true;
}

/// Compares this run's fig5-8 medians (g_narrow_fig_medians) against the
/// baseline BENCH JSON at `path`, record by record, and returns the median
/// of the per-record ratios (current / baseline). Returns a negative value
/// when the baseline is unreadable or no record matched — the caller
/// decides whether that skips or fails the gate. The comparison is the
/// narrow no-regression check: the one-word path is now a template
/// instantiation, and this is where a width-generalization slowdown on the
/// paper sweep would show up.
double NarrowRegressionVsBaseline(const std::string& path, int* matched) {
  *matched = 0;
  std::ifstream in(path);
  if (!in) return -1.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<double> ratios;
  size_t pos = 0;
  while ((pos = text.find("{\"figure\":\"fig", pos)) != std::string::npos) {
    const size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string rec = text.substr(pos, end - pos + 1);
    pos = end + 1;

    std::string figure, shape, algo;
    double n = 0.0, median = 0.0;
    if (!JsonStringField(rec, "figure", &figure) ||
        !JsonStringField(rec, "shape", &shape) ||
        !JsonStringField(rec, "algorithm", &algo) ||
        !JsonNumberField(rec, "n", &n) ||
        !JsonNumberField(rec, "median_ms", &median) || median <= 0.0) {
      continue;
    }
    bool pruned = false;
    JsonBoolField(rec, "pruned", &pruned);
    const char* param = nullptr;
    int value = 0;
    for (const char* candidate : {"splits", "antijoins", "outerjoins"}) {
      double v = 0.0;
      if (JsonNumberField(rec, candidate, &v)) {
        param = candidate;
        value = static_cast<int>(v);
        break;
      }
    }
    const auto it = g_narrow_fig_medians.find(NarrowKey(
        figure, shape, static_cast<int>(n), param, value, algo, pruned));
    if (it == g_narrow_fig_medians.end()) continue;
    ratios.push_back(it->second / median);
  }
  *matched = static_cast<int>(ratios.size());
  if (ratios.empty()) return -1.0;
  return MedianOf(ratios);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_dphyp.json";
  const int max_n = EnvInt("DPHYP_BENCH_MAX_N", 16);
  const int max_sats = EnvInt("DPHYP_BENCH_MAX_SATELLITES", 16);
  const int require_speedup_pct =
      EnvInt("DPHYP_BENCH_REQUIRE_SPEEDUP", 0);

  json.BeginObject();
  json.Field("schema_version", 7);
  json.Field("suite", "dphyp-paper-figures");
  json.Key("config");
  json.BeginObject();
  json.Field("max_n", max_n);
  json.Field("max_satellites", max_sats);
  json.EndObject();
  json.Key("results");
  json.BeginArray();

  RunFig5(max_n);
  RunFig6(max_sats);
  RunFig7(max_n);
  if (max_n >= 16) RunFig8a();
  if (max_n >= 16) RunFig8b();
  if (RunService() != 0) return 1;
  // DPHYP_BENCH_REQUIRE_DEADLINE=0 downgrades the 10% overshoot gate to
  // advisory for heavily loaded machines; the tier-1 session tests still
  // enforce the bound.
  if (!RunDeadlineCompliance(EnvInt("DPHYP_BENCH_REQUIRE_DEADLINE", 1) != 0)) {
    return 1;
  }
  const double worst_speedup = RunPruningComparison(max_sats);
  // dphyp-par thread scaling + cross-thread-count cost identity. The
  // speedup gate (DPHYP_BENCH_REQUIRE_PAR_SPEEDUP, percent) is advisory by
  // default: it only means anything on dedicated multi-core hardware.
  const double par_speedup = RunParallelSpeedup();
  const int require_par_pct = EnvInt("DPHYP_BENCH_REQUIRE_PAR_SPEEDUP", 0);
  if (require_par_pct > 0 &&
      par_speedup * 100.0 < static_cast<double>(require_par_pct)) {
    std::fprintf(stderr,
                 "bench: dphyp-par 8-thread speedup %.2fx below required "
                 "%.2fx\n",
                 par_speedup, require_par_pct / 100.0);
    return 1;
  }
  // Estimation-model overhead: the stats model must optimize within 5% of
  // the product form (one extra indirection per class estimate). Advisory
  // by default — CI runners are noisy — DPHYP_BENCH_REQUIRE_ESTIMATION=1
  // turns it into a gate.
  const double stats_overhead = RunEstimation();
  if (stats_overhead > 0.05) {
    std::fprintf(stderr,
                 "bench: stats-model optimize overhead %.1f%% exceeds 5%%%s\n",
                 stats_overhead * 100.0,
                 EnvInt("DPHYP_BENCH_REQUIRE_ESTIMATION", 0) != 0
                     ? ""
                     : " (advisory: gate disabled)");
    if (EnvInt("DPHYP_BENCH_REQUIRE_ESTIMATION", 0) != 0) return 1;
  }
  // Histogram-model payoff on the skewed/correlated jobgen workload. The
  // gate (percent: 50 means hist's pooled median q-error must be at most
  // half of stats') guards the distribution statistics in CI; 0 disables.
  const double jobgen_ratio = RunJobGen();
  const int require_hist_pct = EnvInt("DPHYP_BENCH_REQUIRE_HIST_RATIO", 0);
  if (require_hist_pct > 0 &&
      jobgen_ratio * 100.0 > static_cast<double>(require_hist_pct)) {
    std::fprintf(stderr,
                 "bench: hist/stats jobgen q-error ratio %.4f exceeds "
                 "allowed %.4f\n",
                 jobgen_ratio, require_hist_pct / 100.0);
    return 1;
  }
  // Beyond-exact plan quality. The gate (percent: 100 means the new
  // enumerators must match or beat GOO) is the CI guard for the quality
  // floor; 0 disables it.
  const double frontier_ratio = RunFrontier();
  const int require_frontier_pct =
      EnvInt("DPHYP_BENCH_REQUIRE_FRONTIER_RATIO", 0);
  if (require_frontier_pct > 0 &&
      frontier_ratio * 100.0 > static_cast<double>(require_frontier_pct)) {
    std::fprintf(stderr,
                 "bench: frontier cost ratio vs GOO %.4fx exceeds allowed "
                 "%.4fx\n",
                 frontier_ratio, require_frontier_pct / 100.0);
    return 1;
  }
  // The > 64-relation wide path: exact routes on tractable wide shapes,
  // the idp-k route past the frontier, and the one-word combine-loop
  // tracker. The cost-ratio floor is structural (<= 1.0 by construction),
  // so any ratio above 1.0 is a routing or floor-logic bug, not noise.
  const double wide_ratio = RunWide();
  if (wide_ratio > 1.0) {
    std::fprintf(stderr,
                 "bench: wide cost ratio vs GOO %.4fx exceeds the 1.0 "
                 "floor\n",
                 wide_ratio);
    return 1;
  }
  // Burst-traffic load: the stampede invariant (exactly one optimization)
  // is always enforced — it is a correctness property, not a perf number.
  const double sustained_qps = RunLoad();
  if (sustained_qps < 0.0) return 1;

  // Narrow no-regression: this run's fig5-8 medians against the committed
  // baseline record. Percent gate (105 = 5% median slowdown budget);
  // advisory by default since it only means anything when the baseline
  // was produced on comparable hardware.
  const char* baseline_env = std::getenv("DPHYP_BENCH_BASELINE");
  const std::string baseline_path =
      baseline_env != nullptr ? baseline_env : "BENCH_dphyp.json";
  int narrow_matched = 0;
  double narrow_ratio =
      NarrowRegressionVsBaseline(baseline_path, &narrow_matched);
  const int require_narrow_pct =
      EnvInt("DPHYP_BENCH_REQUIRE_NO_NARROW_REGRESSION", 0);
  if (narrow_ratio < 0.0) {
    std::printf("narrow fig5-8 regression check: no baseline records at %s\n",
                baseline_path.c_str());
    if (require_narrow_pct > 0) {
      std::fprintf(stderr,
                   "bench: narrow-regression gate needs a readable baseline "
                   "at %s\n",
                   baseline_path.c_str());
      return 1;
    }
    narrow_ratio = 0.0;
  } else {
    std::printf(
        "narrow fig5-8 median ratio vs baseline: %.3fx over %d records\n",
        narrow_ratio, narrow_matched);
    if (require_narrow_pct > 0 &&
        narrow_ratio * 100.0 > static_cast<double>(require_narrow_pct)) {
      std::fprintf(stderr,
                   "bench: narrow fig5-8 median ratio %.3fx exceeds allowed "
                   "%.3fx\n",
                   narrow_ratio, require_narrow_pct / 100.0);
      return 1;
    }
  }

  json.EndArray();
  json.Field("worst_pruning_speedup_median", worst_speedup);
  json.Field("stats_model_overhead_vs_product", stats_overhead);
  json.Field("parallel_clique_speedup_8threads", par_speedup);
  json.Field("frontier_worst_cost_ratio_vs_goo", frontier_ratio);
  json.Field("jobgen_hist_vs_stats_q_ratio", jobgen_ratio);
  json.Field("load_sustained_qps_at_slo", sustained_qps);
  json.Field("wide_worst_cost_ratio_vs_goo", wide_ratio);
  json.Field("narrow_fig_median_ratio_vs_baseline", narrow_ratio);
  json.EndObject();

  std::string payload = json.TakeString();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), payload.size());

  if (require_speedup_pct > 0 &&
      worst_speedup * 100.0 < static_cast<double>(require_speedup_pct)) {
    std::fprintf(stderr,
                 "bench: pruning speedup %.2fx below required %.2fx\n",
                 worst_speedup, require_speedup_pct / 100.0);
    return 1;
  }
  return 0;
}
