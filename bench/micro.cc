// Micro benchmarks (google-benchmark): the primitive operations whose cost
// dominates enumeration — neighborhood computation, connectivity tests,
// subset walks, DP table probes — plus whole-algorithm baselines and the
// DPhyp-vs-DPccp constant-factor comparison on regular graphs (Sec. 4.4).
#include <benchmark/benchmark.h>

#include "core/enumerator.h"
#include "core/workspace.h"
#include "hypergraph/builder.h"
#include "hypergraph/connectivity.h"
#include "util/subset.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

void BM_SubsetWalk(benchmark::State& state) {
  NodeSet mask = NodeSet::FullSet(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t acc = 0;
    for (NodeSet s : NonEmptySubsetsOf(mask)) acc += s.bits();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          ((uint64_t{1} << state.range(0)) - 1));
}
BENCHMARK(BM_SubsetWalk)->Arg(8)->Arg(12)->Arg(16);

void BM_Neighborhood(benchmark::State& state) {
  Hypergraph g = BuildHypergraphOrDie(
      MakeCycleHypergraphQuery(16, static_cast<int>(state.range(0))));
  NodeSet s = NodeSet::FullSet(5);
  NodeSet x = NodeSet::Single(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Neighborhood(s, x));
  }
}
BENCHMARK(BM_Neighborhood)->Arg(0)->Arg(3)->Arg(7);

void BM_ConnectsSets(benchmark::State& state) {
  Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(16, 1));
  NodeSet s1 = NodeSet::FullSet(8);
  NodeSet s2 = NodeSet::FullSet(16) - s1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.ConnectsSets(s1, s2));
  }
}
BENCHMARK(BM_ConnectsSets);

void BM_DpTableProbe(benchmark::State& state) {
  DpTable table(1024);
  for (uint64_t bits = 1; bits < 4096; ++bits) {
    table.Insert(NodeSet(bits))->cost = static_cast<double>(bits);
  }
  uint64_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(NodeSet(probe)));
    probe = probe % 8191 + 1;
  }
}
BENCHMARK(BM_DpTableProbe);

void BM_CardinalityEstimate(benchmark::State& state) {
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(12));
  CardinalityEstimator est(g);
  NodeSet s = NodeSet::FullSet(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Estimate(s));
  }
}
BENCHMARK(BM_CardinalityEstimate);

void BM_OptimizeShape(benchmark::State& state, const char* algo,
                      const QuerySpec& spec) {
  const Enumerator* e = EnumeratorRegistry::Global().FindOrNull(algo);
  if (e == nullptr) {
    state.SkipWithError("unknown enumerator");
    return;
  }
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  OptimizerWorkspace workspace;  // steady-state: reused across iterations
  for (auto _ : state) {
    OptimizeResult r = e->Run(request, workspace);
    benchmark::DoNotOptimize(r.cost);
  }
}

void BM_DphypChain(benchmark::State& state) {
  BM_OptimizeShape(state, "DPhyp", MakeChainQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DphypChain)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_DphypClique(benchmark::State& state) {
  BM_OptimizeShape(state, "DPhyp", MakeCliqueQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DphypClique)->Arg(8)->Arg(10)->Arg(12);

void BM_DphypCycleHyper(benchmark::State& state) {
  BM_OptimizeShape(state, "DPhyp", MakeCycleHypergraphQuery(16, static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DphypCycleHyper)->Arg(0)->Arg(3)->Arg(7);

// Sec. 4.4: DPhyp's constant-factor overhead over DPccp on regular graphs.
void BM_DphypRegularStar(benchmark::State& state) {
  BM_OptimizeShape(state, "DPhyp", MakeStarQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DphypRegularStar)->Arg(8)->Arg(12);

void BM_DpccpRegularStar(benchmark::State& state) {
  BM_OptimizeShape(state, "DPccp", MakeStarQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DpccpRegularStar)->Arg(8)->Arg(12);

void BM_BruteForceCcpCount(benchmark::State& state) {
  Hypergraph g = BuildHypergraphOrDie(
      MakeCycleQuery(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    // The definitional oracle — exponential by design; shown here to make
    // its cost visible next to the algorithms that avoid it.
    benchmark::DoNotOptimize(CountCsgCmpPairs(g));
  }
}
BENCHMARK(BM_BruteForceCcpCount)->Arg(8)->Arg(10);

}  // namespace
}  // namespace dphyp

BENCHMARK_MAIN();
