// Reproduces Fig. 7: star queries *without* hyperedges (regular graphs),
// number of relations 3..16, log-scale in the paper. Series: DPhyp, DPsize,
// DPsub — plus DPccp and TDbasic as supporting context (Sec. 4.4 claims
// DPhyp behaves exactly like DPccp on regular graphs; TDbasic stands in for
// naive memoization).
//
// Paper shape: DPhyp is orders of magnitude ahead; DPsub beats DPsize on
// stars; both explode combinatorially while DPhyp grows with the
// csg-cmp-pair count only.
#include <cstdio>

#include "harness.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

int main() {
  int max_n = EnvInt("DPHYP_BENCH_MAX_N", 16);
  std::printf("== Fig. 7: star queries without hyperedges ==\n");
  TablePrinter table({"relations", "DPhyp [ms]", "DPsize [ms]", "DPsub [ms]",
                      "DPccp [ms]", "TDbasic [ms]"});
  for (int n = 3; n <= max_n; ++n) {
    Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(n - 1));
    table.AddRow({std::to_string(n),
                  FormatMillis(TimeOptimize("DPhyp", g)),
                  FormatMillis(TimeOptimize("DPsize", g)),
                  FormatMillis(TimeOptimize("DPsub", g)),
                  FormatMillis(TimeOptimize("DPccp", g)),
                  FormatMillis(TimeOptimize("TDbasic", g))});
  }
  table.Print();
  return 0;
}
