// Open-loop load harness for the plan service (pgbench-style).
//
// Closed-loop drivers (issue, wait, issue) hide overload: when the service
// slows down, the driver slows down with it and the measured latency stays
// flat while throughput silently collapses — "coordinated omission". This
// harness is open-loop: request arrival times are drawn up front from a
// seeded Poisson process at the target rate, each request's latency is
// measured FROM ITS SCHEDULED ARRIVAL, and the schedule does not wait for
// the service. When the service falls behind, the backlog shows up directly
// as queueing delay in the recorded latencies — which is the whole point of
// benchmarking an admission-controlled serving tier.
//
// The query mix is Zipf-skewed over a template pool (rank 0 hottest), the
// regime where the plan cache and single-flight coalescing matter; tenant
// ids are assigned round-robin-by-weight so fair-share admission can be
// exercised. Everything is seeded: two runs with equal options replay the
// identical arrival schedule and template sequence.
#ifndef DPHYP_BENCH_LOAD_HARNESS_H_
#define DPHYP_BENCH_LOAD_HARNESS_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "service/plan_service.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace dphyp::bench {

/// HDR-style log-bucketed latency histogram: ~5% relative precision from
/// 1 microsecond to ~100 seconds in a few hundred fixed buckets, constant
/// memory regardless of sample count.
class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(kBuckets, 0) {}

  void Record(double ms) {
    ++count_;
    if (ms > max_ms_) max_ms_ = ms;
    sum_ms_ += ms;
    buckets_[BucketFor(ms)]++;
  }

  /// Upper edge of the bucket holding the p-quantile sample (p in [0, 1]).
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    uint64_t rank = static_cast<uint64_t>(p * (count_ - 1)) + 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) return BucketUpperMs(b);
    }
    return max_ms_;
  }

  uint64_t count() const { return count_; }
  double max_ms() const { return max_ms_; }
  double mean_ms() const { return count_ == 0 ? 0.0 : sum_ms_ / count_; }

  /// Merges another histogram (per-client histograms folded at the end, so
  /// the hot Record path takes no lock).
  void Merge(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ms_ += other.sum_ms_;
    if (other.max_ms_ > max_ms_) max_ms_ = other.max_ms_;
  }

 private:
  // Buckets grow geometrically by 5% from 1us; 400 buckets reach past 1e5
  // ms (~3 minutes), far beyond any per-request latency here.
  static constexpr double kMinMs = 1e-3;
  static constexpr double kGrowthLog = 0.04879016417;  // ln(1.05)
  static constexpr int kBuckets = 400;

  static int BucketFor(double ms) {
    if (ms <= kMinMs) return 0;
    int b = static_cast<int>(std::log(ms / kMinMs) / kGrowthLog) + 1;
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  static double BucketUpperMs(int b) {
    return kMinMs * std::exp(kGrowthLog * b);
  }

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double max_ms_ = 0.0;
  double sum_ms_ = 0.0;
};

/// One load run's configuration.
struct LoadOptions {
  /// Offered rate (requests/second) of the Poisson arrival process.
  double target_qps = 50.0;
  /// Total requests in the run (run length = requests / target_qps).
  int requests = 200;
  /// Sender threads. Sized to the concurrency the open-loop schedule can
  /// demand, not to the service: with too few senders the driver itself
  /// becomes the queue and under-reports service queueing.
  int clients = 8;
  /// Zipf skew over the template pool; 0 = uniform.
  double zipf_s = 1.1;
  uint64_t seed = 42;
  /// Tenant ids cycled by weight; empty = all traffic as default tenant.
  std::vector<std::string> tenants;
  std::vector<double> tenant_weights;
};

/// What one run measured. Latency is scheduled-arrival-to-completion, so it
/// includes driver and service queueing.
struct LoadReport {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double wall_s = 0.0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t failures = 0;  // non-rejection errors
  uint64_t rejected = 0;
  uint64_t degraded = 0;
  uint64_t coalesced = 0;
  uint64_t cache_hits = 0;
  LatencyHistogram latency;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Runs `opts.requests` through service.Serve at the target Poisson rate,
/// Zipf-sampling specs from `templates`. Blocks until the run drains.
inline LoadReport RunOpenLoopLoad(PlanService& service,
                                  const std::vector<QuerySpec>& templates,
                                  const LoadOptions& opts) {
  LoadReport report;
  report.offered_qps = opts.target_qps;
  if (templates.empty() || opts.requests <= 0) return report;

  // The whole run is precomputed and seeded: arrival offsets, template
  // ranks, tenant assignment. The threads below only execute the schedule.
  Rng rng(opts.seed);
  std::vector<double> arrivals =
      PoissonArrivalTimes(opts.requests, opts.target_qps, rng);
  ZipfSampler zipf(static_cast<int>(templates.size()), opts.zipf_s);
  std::vector<int> ranks(opts.requests);
  for (int& r : ranks) r = zipf.Sample(rng);
  std::vector<int> tenant_of(opts.requests, -1);
  if (!opts.tenants.empty()) {
    double total = 0.0;
    for (size_t i = 0; i < opts.tenants.size(); ++i) {
      total += i < opts.tenant_weights.size() ? opts.tenant_weights[i] : 1.0;
    }
    for (int& t : tenant_of) {
      double pick = rng.UniformDouble(0.0, total);
      size_t idx = 0;
      while (idx + 1 < opts.tenants.size()) {
        double w =
            idx < opts.tenant_weights.size() ? opts.tenant_weights[idx] : 1.0;
        if (pick < w) break;
        pick -= w;
        ++idx;
      }
      t = static_cast<int>(idx);
    }
  }

  const int clients = opts.clients < 1 ? 1 : opts.clients;
  std::atomic<int> next{0};
  std::vector<LatencyHistogram> client_latency(clients);
  struct Counters {
    uint64_t ok = 0, failures = 0, rejected = 0, degraded = 0, coalesced = 0,
             cache_hits = 0;
  };
  std::vector<Counters> client_counters(clients);

  const auto start = std::chrono::steady_clock::now();
  auto run_client = [&](int c) {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= opts.requests) return;
      // Open loop: wait until the request's scheduled arrival, then fire.
      // A late pickup (all clients busy — the driver-side queue) is NOT
      // excused: latency is measured from the scheduled arrival either way.
      const auto scheduled =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(arrivals[i]));
      std::this_thread::sleep_until(scheduled);
      QueryRequest request;
      request.spec = &templates[ranks[i]];
      if (tenant_of[i] >= 0) request.tenant = opts.tenants[tenant_of[i]];
      ServiceResult r = service.Serve(request);
      const double latency_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - scheduled)
              .count();
      client_latency[c].Record(latency_ms);
      Counters& counters = client_counters[c];
      if (r.rejected) {
        ++counters.rejected;
      } else if (r.success) {
        ++counters.ok;
        if (r.cache_hit) ++counters.cache_hits;
        if (r.coalesced) ++counters.coalesced;
        if (r.degraded) ++counters.degraded;
      } else {
        ++counters.failures;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) threads.emplace_back(run_client, c);
  for (std::thread& t : threads) t.join();

  report.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  report.requests = static_cast<uint64_t>(opts.requests);
  for (int c = 0; c < clients; ++c) {
    report.latency.Merge(client_latency[c]);
    report.ok += client_counters[c].ok;
    report.failures += client_counters[c].failures;
    report.rejected += client_counters[c].rejected;
    report.degraded += client_counters[c].degraded;
    report.coalesced += client_counters[c].coalesced;
    report.cache_hits += client_counters[c].cache_hits;
  }
  report.p50_ms = report.latency.Percentile(0.50);
  report.p99_ms = report.latency.Percentile(0.99);
  report.max_ms = report.latency.max_ms();
  report.achieved_qps =
      report.wall_s > 0.0 ? report.requests / report.wall_s : 0.0;
  return report;
}

/// Picks a query expensive enough (>= `min_ms` fresh optimization) that
/// stampede followers reliably arrive while the leader is still
/// enumerating — adaptive, so sanitizer or 1-core slowdowns only help.
/// Candidates must stay on an exact-DP route under adaptive dispatch
/// (degree-capped stars shed to heuristics, which finish too fast to
/// stampede against); cliques at the dense-routing boundary and
/// moderate-size hypergraphs qualify. Falls back to the slowest measured
/// candidate when none reaches min_ms.
inline QuerySpec PickExpensiveTemplate(double min_ms, double* measured_ms) {
  std::vector<QuerySpec> candidates;
  candidates.push_back(MakeCliqueQuery(10));
  candidates.push_back(MakeCliqueQuery(11));
  candidates.push_back(MakeCliqueQuery(12));
  candidates.push_back(MakeCycleHypergraphQuery(16, /*splits=*/0));
  candidates.push_back(MakeStarHypergraphQuery(12, /*splits=*/0));
  candidates.push_back(MakeRandomHypergraphQuery(16, /*num_complex_edges=*/6,
                                                 /*seed=*/7));
  QuerySpec best = candidates.front();
  double best_ms = -1.0;
  for (QuerySpec& spec : candidates) {
    ServiceOptions opts;
    opts.num_threads = 1;
    PlanService probe(opts);
    ServiceResult r = probe.OptimizeOne(spec);
    if (!r.success) continue;
    if (r.latency_ms >= min_ms) {
      *measured_ms = r.latency_ms;
      return spec;
    }
    if (r.latency_ms > best_ms) {
      best_ms = r.latency_ms;
      best = spec;
    }
  }
  *measured_ms = best_ms;
  return best;
}

struct StampedeOutcome {
  uint64_t optimizations = 0;
  uint64_t coalesced = 0;
  uint64_t cache_hits = 0;
  uint64_t failures = 0;
};

/// The stampede: one leader starts, and once its flight is registered,
/// `clients - 1` followers pile onto the same spec concurrently. On a
/// fresh service exactly one optimization may run; every follower is
/// either a coalesced hit or (if it arrived after the publish) a cache
/// hit.
inline StampedeOutcome RunStampede(const QuerySpec& spec, int clients) {
  ServiceOptions opts;
  opts.num_threads = 1;
  PlanService service(opts);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  threads.emplace_back([&] {
    QueryRequest request;
    request.spec = &spec;
    (void)service.Serve(request);
  });
  // Wait for the leader's flight to appear so the followers below overlap
  // it; bounded spin in case the leader finishes first (then followers are
  // legitimate cache hits and the one-optimization assertion still holds).
  for (int spins = 0; spins < 20000 && service.inflight().InFlight() == 0;
       ++spins) {
    std::this_thread::yield();
  }
  for (int c = 1; c < clients; ++c) {
    threads.emplace_back([&] {
      QueryRequest request;
      request.spec = &spec;
      (void)service.Serve(request);
    });
  }
  for (std::thread& t : threads) t.join();

  ServiceStats stats = service.LifetimeStats();
  StampedeOutcome outcome;
  for (const auto& [name, count] : stats.route_counts) {
    outcome.optimizations += count;
  }
  outcome.coalesced = stats.coalesced_hits;
  outcome.cache_hits = stats.cache_hits;
  outcome.failures = stats.failures;
  return outcome;
}

}  // namespace dphyp::bench

#endif  // DPHYP_BENCH_LOAD_HARNESS_H_
