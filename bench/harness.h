// Shared harness for the figure/table reproductions: timing loops and
// aligned table printing matching the rows/series the paper reports.
#ifndef DPHYP_BENCH_HARNESS_H_
#define DPHYP_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "core/workspace.h"
#include "hypergraph/builder.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dphyp::bench {

/// Order statistics for one benchmark configuration.
struct TimingStats {
  double median_ms = 0.0;
  double p99_ms = 0.0;
  int samples = 0;
};

/// Registry lookup that exits the bench on unknown names, so figure
/// binaries can select enumerators by plain string.
inline const Enumerator& EnumeratorOrDie(std::string_view name) {
  Result<const Enumerator*> found = EnumeratorRegistry::Global().Find(name);
  if (!found.ok()) {
    std::fprintf(stderr, "bench: %s\n", found.error().message.c_str());
    std::exit(1);
  }
  return *found.value();
}

/// Like TimeOptimize but returns median/p99 over the measured repetitions
/// (a single-sample result for multi-second cases, same rule as
/// TimeOptimize). Used by the machine-readable benchmark runner. All
/// repetitions run on one reused workspace — the steady-state serving
/// configuration, which is also what keeps allocator noise out of the
/// measurement.
inline TimingStats TimeOptimizeStats(std::string_view algo,
                                     const Hypergraph& graph,
                                     const OptimizerOptions& options = {},
                                     OptimizerStats* stats_out = nullptr) {
  const Enumerator& enumerator = EnumeratorOrDie(algo);
  CardinalityEstimator est(graph);
  OptimizationRequest request;
  request.graph = &graph;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.options = options;
  OptimizerWorkspace workspace;
  // Probe run: validates success and, for slow cases, doubles as the
  // measurement (a multi-second enumeration does not need repetitions).
  Timer probe_timer;
  OptimizeResult probe = enumerator.Run(request, workspace);
  double probe_ms = probe_timer.ElapsedMillis();
  if (!probe.success) {
    std::fprintf(stderr, "bench: %s failed: %s\n", enumerator.Name(),
                 probe.error.c_str());
    std::exit(1);
  }
  if (stats_out != nullptr) *stats_out = probe.stats;
  if (probe_ms > 1000.0) return {probe_ms, probe_ms, 1};
  std::vector<double> samples = MeasureSamplesMillis(
      [&] {
        OptimizeResult r = enumerator.Run(request, workspace);
        (void)r;
      },
      /*min_total_ms=*/30.0, /*max_reps=*/200);
  return {QuantileMillis(samples, 0.5), QuantileMillis(samples, 0.99),
          static_cast<int>(samples.size())};
}

/// TimeOptimizeStats with a caller-supplied cardinality model — the
/// estimation bench compares models on identical graphs, so the model is
/// the one variable. Same probe/repetition protocol.
inline TimingStats TimeOptimizeModelStats(std::string_view algo,
                                          const Hypergraph& graph,
                                          const CardinalityModel& est,
                                          const OptimizerOptions& options = {}) {
  const Enumerator& enumerator = EnumeratorOrDie(algo);
  OptimizationRequest request;
  request.graph = &graph;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.options = options;
  OptimizerWorkspace workspace;
  Timer probe_timer;
  OptimizeResult probe = enumerator.Run(request, workspace);
  double probe_ms = probe_timer.ElapsedMillis();
  if (!probe.success) {
    std::fprintf(stderr, "bench: %s under model %s failed: %s\n",
                 enumerator.Name(), est.name(), probe.error.c_str());
    std::exit(1);
  }
  if (probe_ms > 1000.0) return {probe_ms, probe_ms, 1};
  std::vector<double> samples = MeasureSamplesMillis(
      [&] {
        OptimizeResult r = enumerator.Run(request, workspace);
        (void)r;
      },
      /*min_total_ms=*/30.0, /*max_reps=*/200);
  return {QuantileMillis(samples, 0.5), QuantileMillis(samples, 0.99),
          static_cast<int>(samples.size())};
}

/// Times one optimizer run and returns the median milliseconds (single run
/// for slow cases) — the figure binaries' single-number view of
/// TimeOptimizeStats, so both measurement protocols stay one.
inline double TimeOptimize(std::string_view algo, const Hypergraph& graph,
                           const OptimizerOptions& options = {}) {
  return TimeOptimizeStats(algo, graph, options).median_ms;
}

/// Simple aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::string line;
      for (size_t i = 0; i < row.size(); ++i) {
        line += PadLeft(row[i], static_cast<int>(widths[i]));
        if (i + 1 < row.size()) line += "  ";
      }
      std::printf("%s\n", line.c_str());
    };
    print_row(headers_);
    std::string sep;
    for (size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths[i], '-');
      if (i + 1 < headers_.size()) sep += "  ";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads a size cap from the environment so CI can shrink the heavyweight
/// sweeps (e.g. DPHYP_BENCH_MAX_N=12).
inline int EnvInt(const char* name, int default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  return std::atoi(value);
}

}  // namespace dphyp::bench

#endif  // DPHYP_BENCH_HARNESS_H_
