// Reproduces the two inline tables of Sec. 4.2 / 4.3: cycle queries with 4
// relations and star queries with 4 satellites, hyperedge splits 0..1,
// optimization time in milliseconds for DPhyp / DPsize / DPsub.
//
// Paper reference values (3.2 GHz Pentium D, 2008):
//   cycle-4:  splits 0: 0.020 / 0.035 / 0.035   splits 1: 0.025/0.025/0.025
//   star-4:   splits 0: 0.030 / 0.085 / 0.065   splits 1: 0.055/0.090/0.080
// Absolute numbers differ on modern hardware; the reproduction target is
// the ordering (DPhyp fastest, DPsize slowest on stars).
#include <cstdio>

#include "harness.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

int main() {
  std::printf("== Sec. 4.2 table: cycle queries with 4 relations ==\n");
  {
    TablePrinter table({"splits", "DPhyp [ms]", "DPsize [ms]", "DPsub [ms]"});
    for (int splits = 0; splits <= 1; ++splits) {
      Hypergraph g =
          BuildHypergraphOrDie(MakeCycleHypergraphQuery(4, splits));
      table.AddRow({std::to_string(splits),
                    FormatMillis(TimeOptimize("DPhyp", g)),
                    FormatMillis(TimeOptimize("DPsize", g)),
                    FormatMillis(TimeOptimize("DPsub", g))});
    }
    table.Print();
  }

  std::printf("\n== Sec. 4.3 table: star queries with 4 satellites ==\n");
  {
    TablePrinter table({"splits", "DPhyp [ms]", "DPsize [ms]", "DPsub [ms]"});
    for (int splits = 0; splits <= 1; ++splits) {
      Hypergraph g = BuildHypergraphOrDie(MakeStarHypergraphQuery(4, splits));
      table.AddRow({std::to_string(splits),
                    FormatMillis(TimeOptimize("DPhyp", g)),
                    FormatMillis(TimeOptimize("DPsize", g)),
                    FormatMillis(TimeOptimize("DPsub", g))});
    }
    table.Print();
  }
  return 0;
}
