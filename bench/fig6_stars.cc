// Reproduces Fig. 6: optimization time for star-based hypergraphs.
//   Left plot:  star with 8 satellite relations,  splits 0..3.
//   Right plot: star with 16 satellite relations, splits 0..7.
// Series: DPhyp, DPsize, DPsub.
//
// Paper shape: differences become "rather huge" — DPhyp is orders of
// magnitude faster; DPsub beats DPsize on stars (the opposite of cycles);
// at 16 satellites DPsize climbs towards two minutes (2008 hardware).
#include <cstdio>

#include "harness.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

namespace {

void RunSweep(int satellites) {
  std::printf("== Fig. 6: star queries with %d satellite relations ==\n",
              satellites);
  TablePrinter table({"splits", "DPhyp [ms]", "DPsize [ms]", "DPsub [ms]"});
  int max_splits = MaxHyperedgeSplits(satellites / 2);
  for (int splits = 0; splits <= max_splits; ++splits) {
    Hypergraph g =
        BuildHypergraphOrDie(MakeStarHypergraphQuery(satellites, splits));
    table.AddRow({std::to_string(splits),
                  FormatMillis(TimeOptimize("DPhyp", g)),
                  FormatMillis(TimeOptimize("DPsize", g)),
                  FormatMillis(TimeOptimize("DPsub", g))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  int max_sats = EnvInt("DPHYP_BENCH_MAX_SATELLITES", 16);
  RunSweep(8);
  if (max_sats >= 16) RunSweep(16);
  return 0;
}
