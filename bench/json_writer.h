// Minimal JSON emission for the machine-readable benchmark record
// (BENCH_dphyp.json). Hand-rolled on purpose: the schema is flat (objects,
// arrays, numbers, strings) and the repository takes no third-party
// dependencies.
#ifndef DPHYP_BENCH_JSON_WRITER_H_
#define DPHYP_BENCH_JSON_WRITER_H_

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace dphyp::bench {

/// Streaming JSON writer with automatic comma placement. Values are
/// appended depth-first; the caller is responsible for balanced
/// Begin*/End* calls (DCHECK-free by design — the bench runner is the only
/// client and its structure is static).
class JsonWriter {
 public:
  std::string TakeString() { return std::move(out_); }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    MaybeComma();
    AppendString(name);
    out_ += ':';
    just_keyed_ = true;
  }

  void String(const std::string& value) {
    MaybeComma();
    AppendString(value);
  }
  void Number(double value) {
    MaybeComma();
    char buf[48];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    } else {
      // JSON has no Infinity/NaN; the schema documents null as "absent".
      std::snprintf(buf, sizeof(buf), "null");
    }
    out_ += buf;
  }
  void Int(uint64_t value) {
    MaybeComma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
  }
  void Bool(bool value) {
    MaybeComma();
    out_ += value ? "true" : "false";
  }

  /// Shorthands for the common key/value cases.
  void Field(const std::string& key, const std::string& value) {
    Key(key);
    String(value);
  }
  void Field(const std::string& key, double value) {
    Key(key);
    Number(value);
  }
  void Field(const std::string& key, uint64_t value) {
    Key(key);
    Int(value);
  }
  void Field(const std::string& key, int value) {
    Key(key);
    Int(static_cast<uint64_t>(value));
  }

 private:
  void Open(char c) {
    MaybeComma();
    out_ += c;
    need_comma_ = false;
  }
  void Close(char c) {
    out_ += c;
    need_comma_ = true;
    just_keyed_ = false;
  }
  void MaybeComma() {
    if (need_comma_ && !just_keyed_) out_ += ',';
    need_comma_ = true;
    just_keyed_ = false;
  }
  void AppendString(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        default:
          out_ += c;
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

}  // namespace dphyp::bench

#endif  // DPHYP_BENCH_JSON_WRITER_H_
