// Service throughput: queries/sec for single- vs multi-thread and cold vs
// warm cache on the mixed chain/star/cycle/clique traffic, plus a
// determinism check (concurrent batch costs must be bit-identical to the
// single-threaded, cache-less reference).
//
// Environment knobs: DPHYP_SERVICE_QUERIES (default 400),
// DPHYP_SERVICE_THREADS (default hardware concurrency).
#include <thread>

#include "bench/harness.h"
#include "hypergraph/builder.h"
#include "service/plan_service.h"
#include "service/session.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

namespace {

struct Row {
  const char* config;
  ServiceStats stats;
};

BatchOutcome RunConfig(const std::vector<QuerySpec>& traffic, int threads,
                       bool warm_first, double deadline_ms = 0.0) {
  ServiceOptions opts;
  opts.num_threads = threads;
  opts.cache_byte_budget = 16 << 20;
  opts.deadline_ms = deadline_ms;
  PlanService service(opts);
  if (warm_first) {
    BatchOutcome warmup = service.OptimizeBatch(traffic);
    if (warmup.stats.failures > 0) {
      std::fprintf(stderr, "warmup failures\n");
      std::exit(1);
    }
  }
  return service.OptimizeBatch(traffic);
}

}  // namespace

int main() {
  int num_queries = EnvInt("DPHYP_SERVICE_QUERIES", 400);
  if (num_queries < 1) num_queries = 1;
  int threads = EnvInt("DPHYP_SERVICE_THREADS", 0);
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }

  TrafficMixOptions mix;
  mix.seed = 99;
  mix.min_relations = 6;
  mix.max_relations = 22;
  mix.clique_max_relations = 13;
  mix.distinct_templates = 32;
  const std::vector<QuerySpec> traffic = GenerateTrafficMix(num_queries, mix);

  // Reference: single thread, no cache. Also the determinism baseline.
  ServiceOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.cache_byte_budget = 0;
  PlanService reference(ref_opts);
  BatchOutcome ref = reference.OptimizeBatch(traffic);
  if (ref.stats.failures > 0) {
    std::fprintf(stderr, "reference run had failures\n");
    return 1;
  }

  std::vector<Row> rows;
  rows.push_back({"1 thread, no cache", ref.stats});
  rows.push_back({"1 thread, cold cache",
                  RunConfig(traffic, 1, /*warm_first=*/false).stats});
  rows.push_back({"1 thread, warm cache",
                  RunConfig(traffic, 1, /*warm_first=*/true).stats});
  BatchOutcome multi_cold = RunConfig(traffic, threads, /*warm_first=*/false);
  rows.push_back({"N threads, cold cache", multi_cold.stats});
  BatchOutcome multi_warm = RunConfig(traffic, threads, /*warm_first=*/true);
  rows.push_back({"N threads, warm cache", multi_warm.stats});
  // Deadline-bounded serving: a generous per-query budget must not change
  // results on this traffic (every exact run finishes well inside it).
  BatchOutcome bounded =
      RunConfig(traffic, threads, /*warm_first=*/false, /*deadline_ms=*/250.0);
  rows.push_back({"N threads, 250ms deadline", bounded.stats});

  // Determinism: concurrency, caching, pooled workspaces and an unexceeded
  // deadline must not change a single cost bit. A query the bounded config
  // actually aborted (possible under sanitizer slowdown or an oversubscribed
  // machine — wall-clock, not a property of the code) is exempt: it was
  // legitimately served the GOO fallback.
  size_t deadline_fallbacks = 0;
  for (const BatchOutcome* out : {&multi_cold, &multi_warm, &bounded}) {
    for (size_t i = 0; i < traffic.size(); ++i) {
      if (out == &bounded && out->results[i].result.stats.aborted) {
        ++deadline_fallbacks;
        continue;
      }
      if (out->results[i].cost != ref.results[i].cost) {
        std::fprintf(stderr, "cost mismatch at query %zu\n", i);
        return 1;
      }
    }
  }
  if (deadline_fallbacks > 0) {
    std::printf("note: %zu deadline fallbacks in the 250ms-bounded config\n",
                deadline_fallbacks);
  }

  std::printf("service throughput, %d queries, N = %d threads\n\n", num_queries,
              threads);
  TablePrinter table({"config", "qps", "p50 ms", "p99 ms", "hit rate"});
  char buf[64];
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.push_back(row.config);
    std::snprintf(buf, sizeof(buf), "%.0f", row.stats.queries_per_sec);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.stats.p50_latency_ms);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.stats.p99_latency_ms);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  row.stats.queries == 0
                      ? 0.0
                      : static_cast<double>(row.stats.cache_hits) /
                            row.stats.queries);
    cells.push_back(buf);
    table.AddRow(cells);
  }
  table.Print();

  const double speedup = multi_warm.stats.queries_per_sec /
                         rows[1].stats.queries_per_sec;
  std::printf(
      "\nmulti-thread warm-cache vs single-thread cold-cache: %.1fx "
      "(determinism check passed)\n",
      speedup);

  // Deadline compliance on the fig6 star-24 shape: force exact DPhyp under
  // a tight budget; the session must abort within 10% of it and serve the
  // GOO fallback.
  {
    Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(24));
    CardinalityEstimator est(g);
    OptimizationSession session;
    OptimizationRequest request;
    request.graph = &g;
    request.estimator = &est;
    request.cost_model = &DefaultCostModel();
    request.enumerator = "DPhyp";
    request.deadline_ms = 50.0;
    Result<OptimizeResult> served = session.Optimize(request);
    if (!served.ok() || !served.value().success ||
        !served.value().stats.aborted) {
      std::fprintf(stderr, "deadline run did not abort-and-serve\n");
      return 1;
    }
    const double abort_ms = served.value().stats.abort_latency_ms;
    std::printf(
        "star-24 deadline 50 ms: exact DPhyp aborted at %.3f ms, GOO plan "
        "served (cost %g)\n",
        abort_ms, served.value().cost);
    if (abort_ms > 50.0 * 1.10) {
      std::fprintf(stderr, "abort latency exceeds budget by >10%%\n");
      return 1;
    }
  }
  return speedup >= 2.0 ? 0 : 1;
}
