// Reproduces Fig. 8b: cycle query with 16 relations, left-deep operator
// tree, increasing number of left outer joins (0..15). Series: DPhyp vs
// DPsize, both running on the TES-derived hypergraph. (The paper excluded
// DPsub here as too slow, > 1400 ms on 2008 hardware; we include it in an
// extra column for completeness.)
//
// Paper shape: runtime first *decreases* (outer joins cannot be reordered
// with the inner joins above them, shrinking the search space), then
// *increases* again (outer joins are associative among each other, 4.46);
// DPhyp stays faster than DPsize throughout and profits more from the
// reduction (ratio slowest/fastest ≈ 2.88 vs 1.96 in the paper).
#include <cstdio>

#include "core/dphyp.h"
#include "harness.h"
#include "reorder/ses_tes.h"
#include "workload/optree_gen.h"

using namespace dphyp;
using namespace dphyp::bench;

int main() {
  const int n = 16;
  std::printf("== Fig. 8b: cycle with %d relations, increasing outer joins ==\n",
              n);
  TablePrinter table({"outerjoins", "DPhyp [ms]", "DPsize [ms]", "DPsub [ms]",
                      "csg-cmp-pairs"});
  double hyp_min = 1e300, hyp_max = 0, size_min = 1e300, size_max = 0;
  for (int outer = 0; outer <= n - 1; ++outer) {
    OperatorTree tree = MakeCycleOuterjoinTree(n, outer);
    DerivedQuery dq = DeriveQuery(tree);

    double hyp = TimeOptimize("DPhyp", dq.graph);
    double size = TimeOptimize("DPsize", dq.graph);
    double sub = TimeOptimize("DPsub", dq.graph);
    hyp_min = std::min(hyp_min, hyp);
    hyp_max = std::max(hyp_max, hyp);
    size_min = std::min(size_min, size);
    size_max = std::max(size_max, size);

    CardinalityEstimator est(dq.graph);
    OptimizeResult r = OptimizeDphyp(dq.graph, est, DefaultCostModel());
    table.AddRow({std::to_string(outer), FormatMillis(hyp), FormatMillis(size),
                  FormatMillis(sub), std::to_string(r.stats.ccp_pairs)});
  }
  table.Print();
  std::printf(
      "\nslowest/fastest ratio: DPhyp %.2f (paper ~2.88), DPsize %.2f "
      "(paper ~1.96)\n",
      hyp_max / hyp_min, size_max / size_min);
  return 0;
}
