// Reproduces Fig. 8a: star query with 16 relations (15 satellites + hub),
// left-deep operator tree, increasing number of antijoins (0..15).
// Series: "DPhyp hypernodes" (TES compiled into hyperedges, Sec. 5.7) vs
// "DPhyp TESs" (generate-and-test on the SES graph, discarding candidates
// at combine time).
//
// Paper shape: both curves fall as antijoins restrict the search space; the
// hypernode form is faster by orders of magnitude because the TES form
// generates many candidate plans that are then discarded. The `discarded`
// column below makes that mechanism visible.
//
// Workload note (see DESIGN.md / optree_gen.h): the paper's antijoin
// predicates are under-specified; we chain each antijoin to the previous
// antijoin's satellite (the nested-NOT-EXISTS unnesting structure), which
// produces the mutually-conflicting antijoin block this experiment needs.
#include <cstdio>

#include "core/dphyp.h"
#include "harness.h"
#include "workload/optree_gen.h"

using namespace dphyp;
using namespace dphyp::bench;

int main() {
  const int satellites = 15;  // 16 relations including the hub
  std::printf("== Fig. 8a: star with %d relations, increasing antijoins ==\n",
              satellites + 1);
  TablePrinter table({"antijoins", "hypernodes [ms]", "TES tests [ms]",
                      "ccp (hyper)", "ccp (TES)", "discarded (TES)"});
  for (int anti = 0; anti <= satellites; ++anti) {
    SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(satellites, anti);

    double hyper_ms = TimeOptimize("DPhyp", w.graph);

    OptimizerOptions tes_options;
    tes_options.tes_constraints = &w.tes_constraints;
    double tes_ms = TimeOptimize("DPhyp", w.ses_graph, tes_options);

    // Stats snapshot (single run) for the candidate counts.
    CardinalityEstimator hyper_est(w.graph);
    OptimizeResult hyper =
        OptimizeDphyp(w.graph, hyper_est, DefaultCostModel());
    CardinalityEstimator ses_est(w.ses_graph);
    OptimizeResult tes =
        OptimizeDphyp(w.ses_graph, ses_est, DefaultCostModel(), tes_options);

    table.AddRow({std::to_string(anti), FormatMillis(hyper_ms),
                  FormatMillis(tes_ms),
                  std::to_string(hyper.stats.ccp_pairs),
                  std::to_string(tes.stats.ccp_pairs),
                  std::to_string(tes.stats.discarded)});
  }
  table.Print();
  return 0;
}
