// Reproduces Fig. 5: optimization time for cycle-based hypergraphs.
//   Left plot:  cycle with 8 relations,  hyperedge splits 0..3.
//   Right plot: cycle with 16 relations, hyperedge splits 0..7.
// Series: DPhyp, DPsize, DPsub.
//
// Paper shape (Pentium D, 2008): DPhyp fastest everywhere; all algorithms
// get slower as splits weaken the hyperedge constraints (larger search
// space); DPsize beats DPsub on large cycle-based graphs; at n=16 DPsize
// reaches seconds and DPsub exceeds the plot.
#include <cstdio>

#include "harness.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

namespace {

void RunSweep(int n) {
  std::printf("== Fig. 5: cycle queries with %d relations ==\n", n);
  TablePrinter table({"splits", "DPhyp [ms]", "DPsize [ms]", "DPsub [ms]"});
  int max_splits = MaxHyperedgeSplits(n / 2);
  for (int splits = 0; splits <= max_splits; ++splits) {
    Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(n, splits));
    table.AddRow({std::to_string(splits),
                  FormatMillis(TimeOptimize("DPhyp", g)),
                  FormatMillis(TimeOptimize("DPsize", g)),
                  FormatMillis(TimeOptimize("DPsub", g))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  int max_n = EnvInt("DPHYP_BENCH_MAX_N", 16);
  RunSweep(8);
  if (max_n >= 16) RunSweep(16);
  return 0;
}
