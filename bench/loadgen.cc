// Open-loop load generator for the plan service (pgbench-style).
//
// Two phases:
//
//   1. Stampede: N clients hit one hot, expensive, uncached fingerprint at
//      once. Exactly one optimization may run — the leader's — and the
//      rest must be served by single-flight coalescing (or by the cache,
//      if they arrive after the leader published). Verified against the
//      service's lifetime route counts.
//
//   2. Rate sweep: Zipf-skewed traffic over a template pool at doubling
//      Poisson target rates, admission watermarks on. Reports per-rate
//      p50/p99 (measured from scheduled arrival — queueing delay counts),
//      shed/reject mix, and the sustained qps: the highest swept rate
//      whose p99 meets the SLO.
//
// Environment knobs (all optional):
//   DPHYP_BENCH_LOAD_QPS        base target rate          (default 40)
//   DPHYP_BENCH_LOAD_REQUESTS   requests per rate step    (default 200)
//   DPHYP_BENCH_LOAD_CLIENTS    sender threads            (default 8)
//   DPHYP_BENCH_LOAD_SWEEP      rate steps, doubling      (default 3)
//   DPHYP_BENCH_LOAD_ZIPF_PCT   Zipf s * 100              (default 110)
//   DPHYP_BENCH_LOAD_SLO_MS     p99 SLO in ms             (default 100)
//   DPHYP_BENCH_LOAD_SEED       RNG seed                  (default 42)
//   DPHYP_BENCH_LOAD_STAMPEDE   stampede clients          (default 12)
//   DPHYP_LOADGEN_REQUIRE_COALESCE=1  exit nonzero unless the stampede
//       phase recorded at least one coalesced hit (CI gate).
//   DPHYP_LOADGEN_SLO_GATE=1    exit nonzero if the BASE rate's p99 misses
//       the SLO (CI smoke gate; higher swept rates may saturate by design).
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bench/load_harness.h"
#include "service/plan_service.h"
#include "workload/generators.h"

using namespace dphyp;
using namespace dphyp::bench;

int main() {
  const double base_qps = EnvInt("DPHYP_BENCH_LOAD_QPS", 40);
  const int requests = EnvInt("DPHYP_BENCH_LOAD_REQUESTS", 200);
  const int clients = EnvInt("DPHYP_BENCH_LOAD_CLIENTS", 8);
  const int sweep = EnvInt("DPHYP_BENCH_LOAD_SWEEP", 3);
  const double zipf_s = EnvInt("DPHYP_BENCH_LOAD_ZIPF_PCT", 110) / 100.0;
  const double slo_ms = EnvInt("DPHYP_BENCH_LOAD_SLO_MS", 100);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("DPHYP_BENCH_LOAD_SEED", 42));
  const int stampede_clients = EnvInt("DPHYP_BENCH_LOAD_STAMPEDE", 12);
  const bool require_coalesce =
      EnvInt("DPHYP_LOADGEN_REQUIRE_COALESCE", 0) != 0;
  const bool slo_gate = EnvInt("DPHYP_LOADGEN_SLO_GATE", 0) != 0;

  int exit_code = 0;

  // --- Phase 1: stampede ---------------------------------------------
  double probe_ms = 0.0;
  QuerySpec hot = PickExpensiveTemplate(/*min_ms=*/150.0, &probe_ms);
  StampedeOutcome stampede = RunStampede(hot, stampede_clients);
  std::printf(
      "stampede: %d clients, one hot fingerprint (fresh optimization "
      "%.1f ms)\n  optimizations=%llu coalesced=%llu cache_hits=%llu "
      "failures=%llu\n",
      stampede_clients, probe_ms,
      static_cast<unsigned long long>(stampede.optimizations),
      static_cast<unsigned long long>(stampede.coalesced),
      static_cast<unsigned long long>(stampede.cache_hits),
      static_cast<unsigned long long>(stampede.failures));
  if (stampede.optimizations != 1 || stampede.failures != 0) {
    std::fprintf(stderr,
                 "loadgen: stampede ran %llu optimizations (want exactly 1)\n",
                 static_cast<unsigned long long>(stampede.optimizations));
    exit_code = 1;
  }
  if (require_coalesce && stampede.coalesced == 0) {
    std::fprintf(stderr,
                 "loadgen: coalesced-hit gate: stampede produced no "
                 "coalesced hits\n");
    exit_code = 1;
  }

  // --- Phase 2: rate sweep -------------------------------------------
  TrafficMixOptions mix;
  mix.seed = seed;
  mix.min_relations = 5;
  mix.max_relations = 12;
  mix.clique_max_relations = 9;
  mix.distinct_templates = -1;  // emit the pool itself: all distinct
  const std::vector<QuerySpec> templates = GenerateTrafficMix(24, mix);

  ServiceOptions sopts;
  sopts.num_threads = clients;
  sopts.deadline_ms = 100.0;
  sopts.admission.soft_watermark = clients * 2;
  sopts.admission.hard_watermark = clients * 4;
  PlanService service(sopts);

  TablePrinter table({"target qps", "achieved", "p50 ms", "p99 ms", "shed",
                      "rejected", "coalesced", "hit rate"});
  double sustained_qps = 0.0;
  double base_p99 = 0.0;
  char buf[64];
  for (int step = 0; step < (sweep < 1 ? 1 : sweep); ++step) {
    LoadOptions lopts;
    lopts.target_qps = base_qps * static_cast<double>(1 << step);
    lopts.requests = requests;
    lopts.clients = clients;
    lopts.zipf_s = zipf_s;
    lopts.seed = seed + static_cast<uint64_t>(step);
    LoadReport report = RunOpenLoopLoad(service, templates, lopts);
    if (step == 0) base_p99 = report.p99_ms;
    if (report.p99_ms <= slo_ms && report.failures == 0) {
      sustained_qps = std::max(sustained_qps, report.achieved_qps);
    }

    std::vector<std::string> cells;
    std::snprintf(buf, sizeof(buf), "%.0f", report.offered_qps);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f", report.achieved_qps);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", report.p50_ms);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", report.p99_ms);
    cells.push_back(buf);
    cells.push_back(std::to_string(report.degraded));
    cells.push_back(std::to_string(report.rejected));
    cells.push_back(std::to_string(report.coalesced));
    std::snprintf(buf, sizeof(buf), "%.2f",
                  report.requests == 0
                      ? 0.0
                      : static_cast<double>(report.cache_hits) /
                            static_cast<double>(report.requests));
    cells.push_back(buf);
    table.AddRow(cells);

    if (report.failures > 0) {
      std::fprintf(stderr, "loadgen: %llu request failures at %.0f qps\n",
                   static_cast<unsigned long long>(report.failures),
                   report.offered_qps);
      exit_code = 1;
    }
  }

  std::printf("\nopen-loop sweep: %d requests/step, %d clients, zipf s=%.2f, "
              "SLO p99 <= %.0f ms\n\n",
              requests, clients, zipf_s, slo_ms);
  table.Print();
  std::printf("\nsustained qps at p99 SLO: %.0f\n", sustained_qps);

  if (slo_gate && base_p99 > slo_ms) {
    std::fprintf(stderr,
                 "loadgen: SLO gate: base-rate p99 %.3f ms exceeds SLO %.0f "
                 "ms\n",
                 base_p99, slo_ms);
    exit_code = 1;
  }

  ServiceStats lifetime = service.LifetimeStats();
  std::printf("service lifetime: %s\n", lifetime.ToString().c_str());
  return exit_code;
}
