// Plan-server demo: drives the concurrent plan-serving subsystem with a
// mixed chain/star/cycle/clique traffic stream and prints what a service
// operator would watch — routing decisions, cache behavior, throughput and
// latency percentiles — plus one EXPLAIN'd plan pulled from the cache.
//
//   ./plan_server_demo [num_queries]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "hypergraph/builder.h"
#include "service/plan_service.h"
#include "workload/generators.h"

using namespace dphyp;

namespace {

void PrintBatch(const char* label, const BatchOutcome& out) {
  std::printf("%-28s %s\n", label, out.stats.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 400;
  if (num_queries <= 0) {
    std::fprintf(stderr, "usage: %s [num_queries >= 1]\n", argv[0]);
    return 2;
  }

  TrafficMixOptions mix;
  mix.seed = 2026;
  mix.min_relations = 6;
  mix.max_relations = 24;
  mix.clique_max_relations = 14;
  mix.distinct_templates = 24;
  std::vector<QuerySpec> traffic = GenerateTrafficMix(num_queries, mix);
  // Sprinkle in generalized-hypergraph queries so the DPhyp route shows up
  // in the routing histogram too.
  for (int i = 0; i < num_queries / 20; ++i) {
    WorkloadOptions wopts;
    wopts.seed = 777 + i % 4;
    traffic.push_back(MakeCycleHypergraphQuery(12, i % 4, wopts));
  }

  int hyper = 0, non_inner = 0;
  for (const QuerySpec& spec : traffic) {
    hyper += spec.HasComplexPredicates() ? 1 : 0;
    non_inner += spec.HasNonInnerPredicates() ? 1 : 0;
  }
  std::printf("traffic: %zu queries from %d templates (%d hyper, %d non-inner)\n\n",
              traffic.size(), mix.distinct_templates + 4, hyper, non_inner);

  ServiceOptions opts;
  opts.cache_byte_budget = 8 << 20;
  opts.admission.soft_watermark = 8;
  opts.admission.hard_watermark = 16;
  PlanService service(opts);
  std::printf("service: %d worker threads, %d-shard cache, %zu KiB budget\n\n",
              service.num_threads(), service.cache().num_shards(),
              service.cache().byte_budget() / 1024);

  // Cold pass: every distinct template misses once and fills the cache.
  BatchOutcome cold = service.OptimizeBatch(traffic);
  PrintBatch("cold cache:", cold);

  // Warm pass: the same traffic is served from the cache.
  BatchOutcome warm = service.OptimizeBatch(traffic);
  PrintBatch("warm cache:", warm);

  if (cold.stats.failures + warm.stats.failures > 0) {
    std::printf("\nFAILURES present — inspect per-query errors\n");
    return 1;
  }
  std::printf("\nwarm/cold speedup: %.1fx\n",
              warm.stats.queries_per_sec / cold.stats.queries_per_sec);

  // Show one served plan end to end.
  const QuerySpec& sample_spec = traffic.front();
  Hypergraph g = BuildHypergraphOrDie(sample_spec);
  ServiceResult sample = service.OptimizeOne(sample_spec);
  std::printf("\nsample query (%d relations, served via %s, cache_hit=%s):\n",
              sample_spec.NumRelations(), sample.algorithm.c_str(),
              sample.cache_hit ? "yes" : "no");
  std::printf("%s\n", sample.result.ExtractPlan(g).Explain(g).c_str());

  // Burst section: a miniature stampede through the Serve front door. Eight
  // clients hit one hot, uncached fingerprint; single-flight coalescing lets
  // only the leader optimize. Then one request arrives past the hard
  // watermark and is shed with a retry-after hint.
  QuerySpec hot = MakeCliqueQuery(10);
  constexpr int kBurstClients = 8;
  std::vector<std::thread> burst;
  burst.reserve(kBurstClients);
  for (int i = 0; i < kBurstClients; ++i) {
    burst.emplace_back([&service, &hot, i] {
      QueryRequest request;
      request.spec = &hot;
      request.tenant = (i % 2 == 0) ? "analytics" : "reports";
      service.Serve(request);
    });
  }
  for (std::thread& t : burst) t.join();

  // Fill every slot up to the hard watermark, then watch one request bounce.
  for (int i = 0; i < opts.admission.hard_watermark; ++i) {
    service.admission().Admit("bg");
  }
  QueryRequest bounced;
  bounced.spec = &hot;
  bounced.tenant = "dashboards";
  ServiceResult shed = service.Serve(bounced);
  for (int i = 0; i < opts.admission.hard_watermark; ++i) {
    service.admission().Release();
  }
  std::printf("\nburst: %d clients on one hot fingerprint, then 1 request "
              "past the hard watermark\n", kBurstClients);
  if (shed.rejected) {
    std::printf("  shed request: rejected=%s retry_after=%.0f ms (%s)\n",
                shed.rejected ? "yes" : "no", shed.retry_after_ms,
                shed.error.c_str());
  }

  // The operator's dashboard: lifetime counters across every front door.
  ServiceStats lifetime = service.LifetimeStats();
  std::printf("\nservice lifetime: %s\n", lifetime.ToString().c_str());
  std::printf("gauges: queue_depth=%d peak_queue_depth=%d coalesced_hits=%llu "
              "shed_to_goo=%llu rejected=%llu\n",
              lifetime.queue_depth, lifetime.peak_queue_depth,
              static_cast<unsigned long long>(lifetime.coalesced_hits),
              static_cast<unsigned long long>(lifetime.degraded),
              static_cast<unsigned long long>(lifetime.rejected));
  for (const auto& [tenant, count] : lifetime.tenant_rejects) {
    std::printf("        rejects[%s]=%llu\n", tenant.c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}
