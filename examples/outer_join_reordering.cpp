// Non-inner joins end to end (Sec. 5): build an operator tree with outer
// joins, an antijoin and a lateral (dependent) join; run the SES/TES
// conflict analysis; derive the hypergraph; optimize with DPhyp; execute
// both the original tree and the optimized plan on synthetic data and
// verify they agree tuple-for-tuple.
//
// Query sketch (left-to-right leaf order):
//   ((orders JOIN lines) LOJ returns) DJOIN per_order_stats(orders) ANTI bad
#include <cstdio>

#include "core/dphyp.h"
#include "exec/executor.h"
#include "reorder/ses_tes.h"

using namespace dphyp;

namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

}  // namespace

int main() {
  OperatorTree tree;
  // Relations, numbered left-to-right (Sec. 5.4).
  tree.relations.push_back({.name = "orders", .cardinality = 1000});
  tree.relations.push_back({.name = "lines", .cardinality = 4000});
  tree.relations.push_back({.name = "returns", .cardinality = 300});
  RelationInfo stats;
  stats.name = "per_order_stats";  // lateral table function over `orders`
  stats.cardinality = 50;
  stats.free_tables = Set({0});
  tree.relations.push_back(stats);
  tree.relations.push_back({.name = "blacklist", .cardinality = 20});

  int orders = tree.AddLeaf(0);
  int lines = tree.AddLeaf(1);
  int join = tree.AddOp(OpType::kJoin, orders, lines,
                        {tree.AddPredicate(Set({0, 1}), 0.004)});
  int returns = tree.AddLeaf(2);
  int loj = tree.AddOp(OpType::kLeftOuterjoin, join, returns,
                       {tree.AddPredicate(Set({1, 2}), 0.01)});
  int stats_leaf = tree.AddLeaf(3);
  int djoin = tree.AddOp(OpType::kDepJoin, loj, stats_leaf,
                         {tree.AddPredicate(Set({0, 3}), 0.05)});
  int blacklist = tree.AddLeaf(4);
  tree.root = tree.AddOp(OpType::kLeftAntijoin, djoin, blacklist,
                         {tree.AddPredicate(Set({0, 4}), 0.1)});

  Result<bool> ok = tree.Finalize();
  if (!ok.ok()) {
    std::fprintf(stderr, "invalid tree: %s\n", ok.error().message.c_str());
    return 1;
  }
  tree.FillDefaultPayloads();
  // The default payload moduli mirror the (tiny) selectivities, which would
  // make the 8-row demo dataset produce empty results; use small moduli so
  // the execution check below has visible tuples. (Cost estimation keeps
  // using the selectivities above.)
  for (size_t i = 0; i < tree.predicates.size(); ++i) {
    tree.predicates[i].modulus = 2 + static_cast<int64_t>(i % 2);
  }
  std::printf("original operator tree:  %s\n\n", tree.ToString().c_str());

  // Conflict analysis and hyperedge derivation.
  OperatorTree normalized;
  DerivedQuery dq = DeriveQuery(tree, &normalized);
  std::printf("derived hyperedges (one per operator, Sec. 5.7):\n");
  for (int e = 0; e < dq.graph.NumEdges(); ++e) {
    std::printf("  %s\n", dq.graph.edge(e).ToString().c_str());
  }

  // Optimize.
  CardinalityEstimator est(dq.graph);
  OptimizeResult result = OptimizeDphyp(dq.graph, est, DefaultCostModel());
  if (!result.success) {
    std::fprintf(stderr, "optimization failed: %s\n", result.error.c_str());
    return 1;
  }
  PlanTree optimized = result.ExtractPlan(dq.graph);
  PlanTree reference = ReferencePlan(normalized, dq, est, DefaultCostModel());
  std::printf("\noriginal  cost (C_out): %.1f\n", reference.root()->cost);
  std::printf("optimized cost (C_out): %.1f\n", result.cost);
  std::printf("optimized plan:          %s\n",
              optimized.ToAlgebraString(dq.graph).c_str());

  // Execute both plans on synthetic data and compare multisets.
  Dataset dataset = Dataset::Generate(normalized.relations, 8, /*seed=*/2026);
  Executor exec(dataset, dq.graph, normalized.relations,
                ConjunctsFromTree(normalized, dq.edge_to_op));
  ExecResult expected = exec.Execute(reference);
  ExecResult actual = exec.Execute(optimized);
  std::printf("\nexecution check: original produced %zu tuples, optimized %zu "
              "— results %s\n",
              expected.tuples.size(), actual.tuples.size(),
              actual.SameAs(expected) ? "IDENTICAL" : "DIFFERENT (bug!)");
  return actual.SameAs(expected) ? 0 : 1;
}
