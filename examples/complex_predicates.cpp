// Complex join predicates and generalized hyperedges (Sec. 2 and Sec. 6).
//
// Shows three variants of the paper's running predicate
//     R1.a + R2.b + R3.c = R4.d + R5.e + R6.f
// 1. as the fixed hyperedge ({R1,R2,R3}, {R4,R5,R6})          (Def. 1),
// 2. rewritten algebraically to ({R1,R2}, {R3,...,R6})        (Sec. 2.1),
// 3. as a *generalized* hyperedge ({R1}, {R4}, w={R2,R3,R5,R6}) where the
//    flexible relations may land on either side (Def. 6) — the most
//    permissive correct encoding, giving the optimizer the largest valid
//    search space.
// The example prints search-space statistics for each encoding: more
// freedom => more csg-cmp-pairs => potentially better plans.
#include <cstdio>

#include "core/dphyp.h"
#include "hypergraph/builder.h"

using namespace dphyp;

namespace {

QuerySpec BaseSpec() {
  QuerySpec spec;
  spec.AddRelation("R1", 1000);
  spec.AddRelation("R2", 200);
  spec.AddRelation("R3", 5000);
  spec.AddRelation("R4", 300);
  spec.AddRelation("R5", 8000);
  spec.AddRelation("R6", 150);
  // The simple chain edges of Fig. 2.
  spec.AddSimplePredicate(0, 1, 0.01);
  spec.AddSimplePredicate(1, 2, 0.005);
  spec.AddSimplePredicate(3, 4, 0.02);
  spec.AddSimplePredicate(4, 5, 0.01);
  return spec;
}

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

void Report(const char* label, const QuerySpec& spec) {
  Hypergraph graph = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeDphyp(graph);
  if (!r.success) {
    std::fprintf(stderr, "%s: optimization failed: %s\n", label,
                 r.error.c_str());
    return;
  }
  PlanTree plan = r.ExtractPlan(graph);
  std::printf("%-42s ccps=%5llu  entries=%3llu  cost=%g\n  plan: %s\n\n",
              label, static_cast<unsigned long long>(r.stats.ccp_pairs),
              static_cast<unsigned long long>(r.stats.dp_entries), r.cost,
              plan.ToAlgebraString(graph).c_str());
}

}  // namespace

int main() {
  std::printf("Encodings of R1.a + R2.b + R3.c = R4.d + R5.e + R6.f\n");
  std::printf("====================================================\n\n");

  {
    QuerySpec spec = BaseSpec();
    spec.AddComplexPredicate(Set({0, 1, 2}), Set({3, 4, 5}), 0.001);
    Report("1. fixed hyperedge ({R1,R2,R3},{R4,R5,R6})", spec);
  }
  {
    QuerySpec spec = BaseSpec();
    // R1.a + R2.b = R4.d + R5.e + R6.f - R3.c — the algebraic rewrite of
    // Sec. 2.1. Conceptually *all* derived variants are added to the graph;
    // a rewrite alone can be useless (here {R3,...,R6} is not a connected
    // side, so the rewritten edge can never fire) — which is exactly why
    // the paper keeps the original edge alongside.
    spec.AddComplexPredicate(Set({0, 1, 2}), Set({3, 4, 5}), 0.001);
    spec.AddComplexPredicate(Set({0, 1}), Set({2, 3, 4, 5}), 0.001);
    Report("2. original + rewritten ({R1,R2},{R3..R6})", spec);
  }
  {
    QuerySpec spec = BaseSpec();
    // Generalized: R1 must be left, R4 must be right, the rest may float.
    spec.AddComplexPredicate(Set({0}), Set({3}), 0.001, OpType::kJoin,
                             /*flex=*/Set({1, 2, 4, 5}));
    Report("3. generalized edge ({R1},{R4}, w={R2,R3,R5,R6})", spec);
  }

  std::printf(
      "For this chain topology all three encodings reach the same plans —\n"
      "every valid assembly must complete both chains first. The point of\n"
      "the generalized (u,v,w) form is that it subsumes every algebraic\n"
      "rewrite in one edge: with richer graphs it exposes strictly more\n"
      "valid orders, and it never separates R1 from R4 (Sec. 6).\n");
  return 0;
}
