// Command-line optimizer: load a QDL query description, run a chosen
// enumerator under a chosen cardinality model, print the plan with
// statistics — and, optionally, execute it to grade the estimates.
//
// Usage:
//   qdl_tool <file.qdl> [--algo=<name>] [--model=<name>] [--cost=cout|hash]
//            [--deadline-ms=<n>] [--threads=<n>] [--seed=<n>]
//            [--idp-window=<k>] [--explain] [--execute] [--analyze]
//            [--rows=<n>] [--quiet]
//   qdl_tool --demo            # runs a built-in sample query
//   qdl_tool --list-algos      # prints the registered enumerators
//   qdl_tool --list-models     # prints the registered cardinality models
//
// --algo resolves through the Enumerator registry (case-insensitive), so
// every registered strategy — DPhyp, DPccp, DPsub, DPsize, TDbasic,
// TDpartition, GOO, and anything registered by embedding code — is
// selectable by name; without it the shape-based dispatcher picks.
// --model resolves through the CardinalityModel registry ("product",
// "stats", "oracle"); "oracle" requires --execute (the executor fills the
// feedback store the oracle serves from, then the query is re-optimized).
// --deadline-ms bounds the exact attempt: past the budget the session
// aborts it and serves the GOO fallback, reporting the abort.
// --threads sets the worker count for intra-query parallel enumeration
// (--algo=dphyp-par, or large graphs under adaptive dispatch); must be
// >= 1 — omit the flag for the hardware default. Plan costs do not depend
// on it (the parallel merge is deterministic).
// --seed fixes the RNG seed for the stochastic enumerators (--algo=anneal);
// the same seed reproduces the same plan. --idp-window sets the exact
// window size for --algo=idp-k (>= 2). Both are ignored by the other
// enumerators.
// --explain prints the chosen plan with per-class estimated cardinality;
// with --execute it also prints estimated-vs-actual rows and the q-error
// per class, plus the plan's q-error summary.
// --analyze closes the full feedback loop in one invocation: execute the
// query once (product-model plan), fold the observed cardinalities and a
// reservoir-sampled histogram/MCV build into a fresh catalog
// (stats/analyze.h), then re-optimize under every registered cardinality
// model twice — against the original catalog and against the analyzed one
// — and print the before/after q-error per model.
// --stats serves the query through a PlanService (the burst-traffic Serve
// front door: cache, single-flight coalescing, admission) instead of a
// bare session, then dumps the service's lifetime counters — cache and
// coalesced hits, shed/reject counts, the in-flight gauge and its peak,
// per-enumerator route counts. --tenant=<id> tags the request for the
// per-tenant admission accounting shown in that dump.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/enumerator.h"
#include "cost/model_registry.h"
#include "cost/qerror.h"
#include "exec/executor.h"
#include "hypergraph/builder.h"
#include "service/dispatch.h"
#include "service/plan_service.h"
#include "service/session.h"
#include "stats/analyze.h"
#include "util/timer.h"
#include "workload/qdl.h"

using namespace dphyp;

namespace {

const char* kDemoQuery = R"(# demo: two chains tied by a hyperedge (Fig. 2)
relation R1 card=1000 ndv=50
relation R2 card=200 ndv=20
relation R3 card=5000 ndv=100
relation R4 card=300
relation R5 card=8000
relation R6 card=150
predicate left=R1 right=R2
predicate left=R2 right=R3 sel=0.005
predicate left=R4 right=R5 sel=0.02
predicate left=R5 right=R6 sel=0.01
predicate left=R1,R2,R3 right=R4,R5,R6 sel=0.001
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "qdl_tool: %s\n", message.c_str());
  return 1;
}

/// Per-class explain lines: estimated cardinality per inner plan class,
/// plus actual rows and q-error when execution feedback is available.
void PrintClassEstimates(const PlanTreeNode* node, const Hypergraph& graph,
                         const CardinalityFeedback* actuals) {
  if (node == nullptr || node->IsLeaf()) return;
  PrintClassEstimates(node->left, graph, actuals);
  PrintClassEstimates(node->right, graph, actuals);
  std::string names;
  for (int v : node->set) {
    if (!names.empty()) names += ",";
    names += graph.node(v).name;
  }
  double actual = 0.0;
  if (actuals != nullptr && actuals->Lookup(node->set, &actual)) {
    std::printf("  {%s}  est %.1f  actual %.0f  q %.2f\n", names.c_str(),
                node->cardinality, actual, QError(node->cardinality, actual));
  } else {
    std::printf("  {%s}  est %.1f\n", names.c_str(), node->cardinality);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string algo_name;   // empty = adaptive dispatch
  std::string model_name;  // empty = product form
  std::string cost_name = "cout";
  double deadline_ms = 0.0;
  int threads = 0;  // 0 = hardware default
  bool have_seed = false;
  uint64_t seed = 0;
  int idp_window = 0;  // 0 = library default
  int rows = 20;
  bool quiet = false;
  bool demo = false;
  bool explain = false;
  bool execute = false;
  bool analyze = false;
  bool stats_mode = false;
  std::string tenant;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algo_name = arg.substr(7);
    } else if (arg.rfind("--model=", 0) == 0) {
      model_name = arg.substr(8);
    } else if (arg.rfind("--cost=", 0) == 0) {
      cost_name = arg.substr(7);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      const long parsed = std::strtol(arg.c_str() + 10, &end, 10);
      if (end == arg.c_str() + 10 || *end != '\0' || parsed < 1) {
        return Fail("invalid --threads value '" + arg.substr(10) +
                    "': thread count must be an integer >= 1 (omit the flag "
                    "for the hardware default)");
      }
      threads = static_cast<int>(parsed);
    } else if (arg.rfind("--seed=", 0) == 0) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(arg.c_str() + 7, &end, 10);
      if (end == arg.c_str() + 7 || *end != '\0') {
        return Fail("invalid --seed value '" + arg.substr(7) +
                    "': must be a non-negative integer");
      }
      seed = static_cast<uint64_t>(parsed);
      have_seed = true;
    } else if (arg.rfind("--idp-window=", 0) == 0) {
      char* end = nullptr;
      const long parsed = std::strtol(arg.c_str() + 13, &end, 10);
      if (end == arg.c_str() + 13 || *end != '\0' || parsed < 2) {
        return Fail("invalid --idp-window value '" + arg.substr(13) +
                    "': window size must be an integer >= 2");
      }
      idp_window = static_cast<int>(parsed);
    } else if (arg.rfind("--rows=", 0) == 0) {
      rows = std::atoi(arg.c_str() + 7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--analyze") {
      analyze = true;
      execute = true;  // the ANALYZE pass samples executed data
    } else if (arg == "--stats") {
      stats_mode = true;
    } else if (arg.rfind("--tenant=", 0) == 0) {
      tenant = arg.substr(9);
    } else if (arg == "--list-algos") {
      // Name, exactness, and each enumerator's own frontier/bid summary —
      // the routing table without reading dispatch code.
      for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
        std::printf("%-12s %-9s %s\n", e->Name(),
                    e->Exact() ? "exact" : "heuristic", e->FrontierSummary());
      }
      return 0;
    } else if (arg == "--list-models") {
      for (const std::string& name : CardinalityModelRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--help") {
      std::printf(
          "usage: qdl_tool <file.qdl> [--algo=<name>] [--model=<name>]\n"
          "                [--cost=cout|hash] [--deadline-ms=<n>]\n"
          "                [--threads=<n>] [--seed=<n>] [--idp-window=<k>]\n"
          "                [--explain] [--execute] [--analyze] [--rows=<n>]\n"
          "                [--quiet]\n"
          "                [--stats] [--tenant=<id>]\n"
          "       qdl_tool --demo | --list-algos | --list-models\n");
      return 0;
    } else {
      path = arg;
    }
  }

  Result<QuerySpec> parsed =
      demo ? ParseQdl(kDemoQuery)
           : (path.empty() ? Result<QuerySpec>(Err("no input file; try --demo"))
                           : LoadQdlFile(path));
  if (!parsed.ok()) return Fail(parsed.error().message);
  const QuerySpec& spec = parsed.value();

  Result<Hypergraph> graph = BuildHypergraph(spec);
  if (!graph.ok()) return Fail(graph.error().message);
  const Hypergraph& g = graph.value();

  const CoutModel cout_model;
  const HashJoinModel hash_model;
  const CostModel* model = &cout_model;
  if (cost_name == "hash") {
    model = &hash_model;
  } else if (cost_name != "cout") {
    return Fail("unknown cost model '" + cost_name + "'");
  }

  if (stats_mode) {
    // Serve through the full front door instead of a bare session, then
    // dump the service's lifetime counters. One process-local query keeps
    // most gauges at zero — the point is the counter names and wiring, the
    // same dump a long-running server (plan_server_demo) produces under
    // real traffic.
    ServiceOptions sopts;
    sopts.deadline_ms = deadline_ms;
    if (threads > 0) sopts.num_threads = threads;
    sopts.cardinality_model = model_name;
    PlanService service(sopts);
    QueryRequest request;
    request.spec = &spec;
    request.tenant = tenant;
    ServiceResult served_result = service.Serve(request);
    if (!served_result.success) return Fail(served_result.error);
    std::printf("algorithm:        %s  (served via PlanService)\n",
                served_result.algorithm.c_str());
    std::printf("plan cost:        %g\n", served_result.cost);
    std::printf("latency:          %.3f ms\n", served_result.latency_ms);
    if (!quiet) {
      std::printf("\n%s", served_result.result.ExtractPlan(g).Explain(g).c_str());
    }
    ServiceStats stats = service.LifetimeStats();
    std::printf("\nservice stats:    %s\n", stats.ToString().c_str());
    std::printf("gauges:           queue_depth=%d peak_queue_depth=%d "
                "inflight=%d coalesced_hits=%llu shed=%llu rejected=%llu\n",
                stats.queue_depth, stats.peak_queue_depth,
                service.inflight().InFlight(),
                static_cast<unsigned long long>(stats.coalesced_hits),
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.rejected));
    for (const auto& [t, count] : stats.tenant_rejects) {
      std::printf("                  rejects[%s]=%llu\n",
                  t.empty() ? "default" : t.c_str(),
                  static_cast<unsigned long long>(count));
    }
    return 0;
  }

  const bool oracle = model_name == "oracle";
  if (oracle && !execute) {
    return Fail("--model=oracle requires --execute (the executor feeds the "
                "oracle's cardinalities)");
  }

  // The execution side: a deterministic synthetic dataset and a feedback
  // store the executor fills with observed per-class cardinalities.
  CardinalityFeedback actuals;
  Dataset data =
      execute ? Dataset::Generate(spec.relations, rows < 1 ? 1 : rows, 0x9d2c)
              : Dataset();
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g), &actuals);

  CardinalityModelInputs inputs;
  inputs.graph = &g;
  inputs.spec = &spec;
  inputs.catalog = spec.catalog.get();
  inputs.feedback = &actuals;

  OptimizationSession session;
  auto optimize = [&](std::string_view model_to_use,
                      Result<OptimizeResult>* out) -> std::string {
    Result<std::unique_ptr<CardinalityModel>> card_model =
        CreateCardinalityModel(model_to_use, inputs);
    if (!card_model.ok()) return card_model.error().message;
    OptimizationRequest request;
    request.graph = &g;
    request.estimator = card_model.value().get();
    request.cost_model = model;
    request.enumerator = algo_name;  // registry-resolved; empty = dispatch
    request.deadline_ms = deadline_ms;
    request.options.parallel_threads = threads;
    if (have_seed) request.options.random_seed = seed;
    if (idp_window > 0) request.options.idp_window = idp_window;
    *out = session.Optimize(request);
    return "";
  };

  if (analyze) {
    // Pass 1: one execution under the product model fills the feedback
    // store with observed per-class cardinalities.
    Result<OptimizeResult> seeded = Err("unset");
    std::string seed_err = optimize("product", &seeded);
    if (!seed_err.empty()) return Fail(seed_err);
    if (!seeded.ok()) return Fail(seeded.error().message);
    if (!seeded.value().success) return Fail(seeded.value().error);
    ExecResult executed = exec.Execute(seeded.value().ExtractPlan(g));

    // Pass 2: ANALYZE into a fresh catalog — observed row counts plus
    // reservoir-sampled histograms and MCV lists. The original catalog
    // (if any) stays untouched so "before" is reproducible.
    auto analyzed = std::make_shared<Catalog>();
    AnalyzeOptions aopts;
    int tables = AnalyzeFromExecution(actuals, spec, data, aopts,
                                      analyzed.get());
    std::printf("executed once:    %zu tuples; %zu plan classes observed\n",
                executed.tuples.size(), actuals.size());
    std::printf("analyzed:         %d relations (histograms <= %d buckets, "
                "<= %d MCVs, sample %d)\n",
                tables, aopts.histogram_buckets, aopts.max_mcvs,
                aopts.sample_size);

    // Pass 3: every registered model, before (original catalog) and after
    // (analyzed catalog). Each model's plan is executed so its classes
    // have actuals to grade against.
    const Catalog* original = inputs.catalog;
    auto grade = [&](const std::string& model_to_grade,
                     const Catalog* catalog, QErrorStats* out) -> std::string {
      inputs.catalog = catalog;
      Result<OptimizeResult> r = Err("unset");
      std::string e = optimize(model_to_grade, &r);
      inputs.catalog = original;
      if (!e.empty()) return e;
      if (!r.ok()) return r.error().message;
      if (!r.value().success) return r.value().error;
      exec.Execute(r.value().ExtractPlan(g));
      *out = session.ReportQError(r.value(), g, actuals);
      return "";
    };
    std::printf("\n%-10s %-26s %-26s\n", "model", "q-error before (med/max)",
                "q-error after (med/max)");
    for (const std::string& name :
         CardinalityModelRegistry::Global().Names()) {
      QErrorStats before, after;
      std::string e = grade(name, original, &before);
      if (e.empty()) e = grade(name, analyzed.get(), &after);
      if (!e.empty()) {
        std::printf("%-10s %s\n", name.c_str(), e.c_str());
        continue;
      }
      std::printf("%-10s %8.3f / %-15.3f %8.3f / %-15.3f\n", name.c_str(),
                  before.median_q, before.max_q, after.median_q, after.max_q);
    }
    return 0;
  }

  // The oracle needs actuals before it can estimate: run a product-form
  // pass first, execute its plan to fill the feedback store, then
  // re-optimize under the oracle.
  Timer timer;
  Result<OptimizeResult> served = Err("unset");
  if (oracle) {
    std::string err = optimize("product", &served);
    if (!err.empty()) return Fail(err);
    if (!served.ok()) return Fail(served.error().message);
    if (!served.value().success) return Fail(served.value().error);
    exec.Execute(served.value().ExtractPlan(g));
  }
  std::string err = optimize(model_name, &served);
  if (!err.empty()) return Fail(err);
  double ms = timer.ElapsedMillis();
  if (!served.ok()) return Fail(served.error().message);
  const OptimizeResult& result = served.value();
  if (!result.success) return Fail(result.error);

  std::printf("algorithm:        %s  (cost model %s, cardinality model %s)\n",
              result.stats.algorithm, model->name(),
              model_name.empty() ? "product" : model_name.c_str());
  if (algo_name.empty()) {
    // Mirror the session's auction: it sees the worker count this
    // invocation would run with (--threads), so the printed reason matches
    // the route actually taken.
    DispatchPolicy route_policy;
    if (threads > 0) route_policy.parallel_workers_hint = threads;
    std::printf("routed because:   %s\n", ChooseRoute(g, route_policy).reason);
  }
  if (result.stats.aborted) {
    std::printf(
        "deadline:         %s aborted after %.3f ms (budget %.1f ms); "
        "GOO fallback served\n",
        result.stats.aborted_algorithm, result.stats.abort_latency_ms,
        deadline_ms);
  }
  std::printf("optimization:     %.3f ms\n", ms);
  std::printf("plan cost:        %g\n", result.cost);
  std::printf("result estimate:  %g tuples\n", result.cardinality);
  std::printf("pairs submitted:  %llu\n",
              static_cast<unsigned long long>(result.stats.ccp_pairs));
  std::printf("pairs tested:     %llu\n",
              static_cast<unsigned long long>(result.stats.pairs_tested));
  std::printf("dp entries:       %llu (%llu bytes)\n",
              static_cast<unsigned long long>(result.stats.dp_entries),
              static_cast<unsigned long long>(result.stats.table_bytes));

  PlanTree plan = result.ExtractPlan(g);
  if (execute) {
    ExecResult rows_out = exec.Execute(plan);
    std::printf("executed:         %zu tuples\n", rows_out.tuples.size());
    QErrorStats q = session.ReportQError(result, g, actuals);
    std::printf("estimation:       %s\n", q.ToString().c_str());
  }
  if (explain) {
    // Per-predicate selectivities as the chosen model assigns them —
    // explicit values pass through, derived ones show what the stats were
    // worth (CardinalityModel::DeriveSelectivity).
    Result<std::unique_ptr<CardinalityModel>> explain_model =
        CreateCardinalityModel(model_name, inputs);
    if (explain_model.ok()) {
      std::printf("\npredicate selectivities under model %s:\n",
                  explain_model.value()->name());
      for (size_t i = 0; i < spec.predicates.size(); ++i) {
        const Predicate& p = spec.predicates[i];
        std::printf("  #%zu %s%s  sel %g%s\n", i,
                    p.left.ToString().c_str(), p.right.ToString().c_str(),
                    explain_model.value()->DeriveSelectivity(p),
                    p.derive_selectivity ? "  (derived)" : "");
      }
    }
    std::printf("\nper-class estimates%s:\n",
                execute ? " vs actuals" : "");
    PrintClassEstimates(plan.root(), g, execute ? &actuals : nullptr);
  }
  if (!quiet) {
    std::printf("\n%s", plan.Explain(g).c_str());
  }
  return 0;
}
