// Command-line optimizer: load a QDL query description, run a chosen
// enumerator, print the plan with statistics.
//
// Usage:
//   qdl_tool <file.qdl> [--algo=<name>] [--cost=cout|hash]
//            [--deadline-ms=<n>] [--quiet]
//   qdl_tool --demo            # runs a built-in sample query
//   qdl_tool --list-algos      # prints the registered enumerators
//
// --algo resolves through the Enumerator registry (case-insensitive), so
// every registered strategy — DPhyp, DPccp, DPsub, DPsize, TDbasic,
// TDpartition, GOO, and anything registered by embedding code — is
// selectable by name; without it the shape-based dispatcher picks.
// --deadline-ms bounds the exact attempt: past the budget the session
// aborts it and serves the GOO fallback, reporting the abort.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "service/dispatch.h"
#include "service/session.h"
#include "util/timer.h"
#include "workload/qdl.h"

using namespace dphyp;

namespace {

const char* kDemoQuery = R"(# demo: two chains tied by a hyperedge (Fig. 2)
relation R1 card=1000
relation R2 card=200
relation R3 card=5000
relation R4 card=300
relation R5 card=8000
relation R6 card=150
predicate left=R1 right=R2 sel=0.01
predicate left=R2 right=R3 sel=0.005
predicate left=R4 right=R5 sel=0.02
predicate left=R5 right=R6 sel=0.01
predicate left=R1,R2,R3 right=R4,R5,R6 sel=0.001
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "qdl_tool: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string algo_name;  // empty = adaptive dispatch
  std::string cost_name = "cout";
  double deadline_ms = 0.0;
  bool quiet = false;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algo_name = arg.substr(7);
    } else if (arg.rfind("--cost=", 0) == 0) {
      cost_name = arg.substr(7);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--list-algos") {
      for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
        std::printf("%-12s %s\n", e->Name(),
                    e->Exact() ? "exact" : "heuristic");
      }
      return 0;
    } else if (arg == "--help") {
      std::printf(
          "usage: qdl_tool <file.qdl> [--algo=<name>] [--cost=cout|hash]\n"
          "                [--deadline-ms=<n>] [--quiet]\n"
          "       qdl_tool --demo | --list-algos\n");
      return 0;
    } else {
      path = arg;
    }
  }

  Result<QuerySpec> parsed =
      demo ? ParseQdl(kDemoQuery)
           : (path.empty() ? Result<QuerySpec>(Err("no input file; try --demo"))
                           : LoadQdlFile(path));
  if (!parsed.ok()) return Fail(parsed.error().message);
  const QuerySpec& spec = parsed.value();

  Result<Hypergraph> graph = BuildHypergraph(spec);
  if (!graph.ok()) return Fail(graph.error().message);

  CardinalityEstimator est(graph.value());
  const CoutModel cout_model;
  const HashJoinModel hash_model;
  const CostModel* model = &cout_model;
  if (cost_name == "hash") {
    model = &hash_model;
  } else if (cost_name != "cout") {
    return Fail("unknown cost model '" + cost_name + "'");
  }

  OptimizationRequest request;
  request.graph = &graph.value();
  request.estimator = &est;
  request.cost_model = model;
  request.enumerator = algo_name;  // registry-resolved; empty = dispatch
  request.deadline_ms = deadline_ms;

  OptimizationSession session;
  Timer timer;
  Result<OptimizeResult> served = session.Optimize(request);
  double ms = timer.ElapsedMillis();
  if (!served.ok()) return Fail(served.error().message);
  const OptimizeResult& result = served.value();
  if (!result.success) return Fail(result.error);

  std::printf("algorithm:        %s  (cost model %s)\n",
              result.stats.algorithm, model->name());
  if (algo_name.empty()) {
    std::printf("routed because:   %s\n", ChooseRoute(graph.value()).reason);
  }
  if (result.stats.aborted) {
    std::printf(
        "deadline:         %s aborted after %.3f ms (budget %.1f ms); "
        "GOO fallback served\n",
        result.stats.aborted_algorithm, result.stats.abort_latency_ms,
        deadline_ms);
  }
  std::printf("optimization:     %.3f ms\n", ms);
  std::printf("plan cost:        %g\n", result.cost);
  std::printf("result estimate:  %g tuples\n", result.cardinality);
  std::printf("pairs submitted:  %llu\n",
              static_cast<unsigned long long>(result.stats.ccp_pairs));
  std::printf("pairs tested:     %llu\n",
              static_cast<unsigned long long>(result.stats.pairs_tested));
  std::printf("dp entries:       %llu (%llu bytes)\n",
              static_cast<unsigned long long>(result.stats.dp_entries),
              static_cast<unsigned long long>(result.stats.table_bytes));
  if (!quiet) {
    PlanTree plan = result.ExtractPlan(graph.value());
    std::printf("\n%s", plan.Explain(graph.value()).c_str());
  }
  return 0;
}
