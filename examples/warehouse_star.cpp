// Data-warehouse star query (the workload class the paper's evaluation
// highlights: "star queries are common in data warehousing and thus deserve
// special attention").
//
// A fact table SALES joins eight dimensions; one complex predicate ties two
// dimension groups together (e.g. a currency-conversion formula spanning
// several dimensions), forming a hyperedge. The example optimizes with
// every algorithm in the library and prints the timing/counter comparison —
// a miniature of the paper's Fig. 6 — followed by the chosen plan.
#include <cstdio>

#include <cstring>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "util/timer.h"

using namespace dphyp;

int main() {
  QuerySpec spec;
  int sales = spec.AddRelation("sales", 10'000'000);
  int date = spec.AddRelation("date_dim", 2'500);
  int store = spec.AddRelation("store", 500);
  int item = spec.AddRelation("item", 20'000);
  int customer = spec.AddRelation("customer", 1'000'000);
  int promo = spec.AddRelation("promotion", 300);
  int supplier = spec.AddRelation("supplier", 2'000);
  int currency = spec.AddRelation("currency", 40);
  int region = spec.AddRelation("region", 25);

  // Star: every dimension joins the fact table on its surrogate key.
  spec.AddSimplePredicate(sales, date, 1.0 / 2'500);
  spec.AddSimplePredicate(sales, store, 1.0 / 500);
  spec.AddSimplePredicate(sales, item, 1.0 / 20'000);
  spec.AddSimplePredicate(sales, customer, 1.0 / 1'000'000);
  spec.AddSimplePredicate(sales, promo, 1.0 / 300);
  spec.AddSimplePredicate(sales, supplier, 1.0 / 2'000);
  spec.AddSimplePredicate(sales, currency, 1.0 / 40);
  spec.AddSimplePredicate(sales, region, 1.0 / 25);

  // Complex predicate across two dimension groups, e.g.
  //   store.tax_rate + currency.rate = supplier.discount + region.levy
  // — a genuine hyperedge: neither side can be evaluated before all of its
  // relations are present.
  spec.AddComplexPredicate(
      NodeSet::Single(store) | NodeSet::Single(currency),
      NodeSet::Single(supplier) | NodeSet::Single(region), 0.02);

  Hypergraph graph = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(graph);

  std::printf("star query: %d relations, %d predicates (1 hyperedge)\n\n",
              spec.NumRelations(), graph.NumEdges());
  std::printf("%-10s %12s %16s %14s %12s\n", "algorithm", "time [ms]",
              "pairs submitted", "pairs tested", "dp entries");
  OptimizeResult best;
  for (const char* algo : {"DPhyp", "DPsize", "DPsub", "TDbasic"}) {
    Timer timer;
    Result<OptimizeResult> served = OptimizeByName(algo, graph, est,
                                                   DefaultCostModel());
    double ms = timer.ElapsedMillis();
    if (!served.ok()) {
      std::fprintf(stderr, "%s\n", served.error().message.c_str());
      return 1;
    }
    OptimizeResult r = std::move(served).value();
    if (!r.success) {
      std::fprintf(stderr, "%s failed: %s\n", algo, r.error.c_str());
      return 1;
    }
    std::printf("%-10s %12.3f %16llu %14llu %12llu\n", algo, ms,
                static_cast<unsigned long long>(r.stats.ccp_pairs),
                static_cast<unsigned long long>(r.stats.pairs_tested),
                static_cast<unsigned long long>(r.stats.dp_entries));
    if (std::strcmp(algo, "DPhyp") == 0) best = std::move(r);
  }

  PlanTree plan = best.ExtractPlan(graph);
  std::printf("\nDPhyp plan (C_out = %.0f):\n%s", best.cost,
              plan.Explain(graph).c_str());
  return 0;
}
