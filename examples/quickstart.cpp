// Quickstart: describe a query, build its hypergraph, optimize with DPhyp,
// print the chosen plan.
//
// The query is the paper's running example (Fig. 2): two 3-relation chains
// tied together by one complex predicate over all six relations,
//   R1.a + R2.b + R3.c = R4.d + R5.e + R6.f
// which becomes the hyperedge ({R1,R2,R3}, {R4,R5,R6}).
#include <cstdio>

#include "core/dphyp.h"
#include "hypergraph/builder.h"

using namespace dphyp;

int main() {
  // 1. Describe the query: relations with cardinalities, predicates with
  //    selectivities.
  QuerySpec spec;
  int r1 = spec.AddRelation("R1", 1000);
  int r2 = spec.AddRelation("R2", 200);
  int r3 = spec.AddRelation("R3", 5000);
  int r4 = spec.AddRelation("R4", 300);
  int r5 = spec.AddRelation("R5", 8000);
  int r6 = spec.AddRelation("R6", 150);

  spec.AddSimplePredicate(r1, r2, 0.01);   // R1.x = R2.y
  spec.AddSimplePredicate(r2, r3, 0.005);  // R2.y = R3.z
  spec.AddSimplePredicate(r4, r5, 0.02);   // R4.x = R5.y
  spec.AddSimplePredicate(r5, r6, 0.01);   // R5.y = R6.z

  // The complex predicate: no side can be evaluated before all three of its
  // relations are joined, hence a true hyperedge.
  spec.AddComplexPredicate(
      NodeSet::Single(r1) | NodeSet::Single(r2) | NodeSet::Single(r3),
      NodeSet::Single(r4) | NodeSet::Single(r5) | NodeSet::Single(r6),
      /*selectivity=*/0.001);

  // 2. Build the connected hypergraph (validates the spec).
  Hypergraph graph = BuildHypergraphOrDie(spec);
  std::printf("%s\n", graph.ToString().c_str());

  // 3. Optimize.
  OptimizeResult result = OptimizeDphyp(graph);
  if (!result.success) {
    std::fprintf(stderr, "optimization failed: %s\n", result.error.c_str());
    return 1;
  }

  // 4. Inspect the result.
  std::printf("optimal cost (C_out): %.3f\n", result.cost);
  std::printf("estimated result cardinality: %.3f\n", result.cardinality);
  std::printf("csg-cmp-pairs considered: %llu (the provable minimum)\n",
              static_cast<unsigned long long>(result.stats.ccp_pairs));
  std::printf("DP table entries: %llu\n\n",
              static_cast<unsigned long long>(result.stats.dp_entries));

  PlanTree plan = result.ExtractPlan(graph);
  std::printf("plan: %s\n\n%s", plan.ToAlgebraString(graph).c_str(),
              plan.Explain(graph).c_str());
  return 0;
}
