#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "util/arena.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dphyp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    if (va != b.Next()) all_equal = false;
    if (va != c.Next()) any_diff_seed_diff = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Arena, AllocatesAlignedAndGrows) {
  Arena arena(128);  // tiny blocks to force growth
  void* p1 = arena.Allocate(100, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 8, 0u);
  void* p2 = arena.Allocate(100, 16);  // forces a second block
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 16, 0u);
  std::memset(p1, 0xAB, 100);
  std::memset(p2, 0xCD, 100);
  EXPECT_GE(arena.bytes_used(), 200u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, NewConstructsObjects) {
  Arena arena;
  struct Pod {
    int a;
    double b;
  };
  Pod* p = arena.New<Pod>(Pod{3, 2.5});
  EXPECT_EQ(p->a, 3);
  EXPECT_DOUBLE_EQ(p->b, 2.5);
  int* arr = arena.NewArray<int>(100);
  for (int i = 0; i < 100; ++i) arr[i] = i;
  EXPECT_EQ(arr[99], 99);
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad(Err("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, SplitAndTrim) {
  auto parts = SplitAndTrim(" a , b ,, c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(PadLeft("x", 3), "  x");
  EXPECT_EQ(PadRight("x", 3), "x  ");
  EXPECT_EQ(PadLeft("xyz", 2), "xyz");
}

TEST(StringUtil, FormatMillis) {
  EXPECT_EQ(FormatMillis(0.1234), "0.123");
  EXPECT_EQ(FormatMillis(12.344), "12.34");
  EXPECT_EQ(FormatMillis(1234.2), "1234");
}

TEST(Timer, MeasuresSomething) {
  Timer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.ElapsedMicros(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

TEST(Timer, MeasureMillisRepeats) {
  int calls = 0;
  double ms = MeasureMillis([&] { ++calls; }, /*min_total_ms=*/1.0,
                            /*max_reps=*/50);
  EXPECT_GE(ms, 0.0);
  EXPECT_GE(calls, 2);  // warmup + at least one measured call
}

}  // namespace
}  // namespace dphyp
