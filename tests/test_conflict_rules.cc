// The operator-conflict predicate OC (Sec. 5.5 / Appendix A.3) checked
// against every row of the Fig. 9 equivalence table. OC(lower, upper) must
// be FALSE exactly for the valid equivalences:
//   (R B S)  ◦2 T = R B (S ◦2 T)   for ◦2 ∈ {B, G, I, T, P}   (not M)
//   (R P S)  P T  = R P (S P T)                                (4.46)
//   (R M S)  P T  = R M (S P T)                                (4.51)
//   (R M S)  M T  = R M (S M T)                                (4.50)
// and TRUE for every other combination (including all "lhs not possible"
// rows, which are conservatively conflicting).
#include <gtest/gtest.h>

#include "reorder/ses_tes.h"

namespace dphyp {
namespace {

struct OcCase {
  OpType lower;   // ◦1: the operator nested below
  OpType upper;   // ◦2: the ancestor
  bool conflict;  // expected OC value
};

std::vector<OcCase> Figure9Rows() {
  using enum OpType;
  std::vector<OcCase> rows;
  const OpType all[] = {kJoin,          kLeftSemijoin, kLeftAntijoin,
                        kLeftNestjoin,  kLeftOuterjoin, kFullOuterjoin};
  for (OpType lower : all) {
    for (OpType upper : all) {
      bool valid = false;
      if (lower == kJoin && upper != kFullOuterjoin) valid = true;           // 4.44/45, linearity
      if (lower == kLeftOuterjoin && upper == kLeftOuterjoin) valid = true;  // 4.46
      if (lower == kFullOuterjoin && upper == kLeftOuterjoin) valid = true;  // 4.51
      if (lower == kFullOuterjoin && upper == kFullOuterjoin) valid = true;  // 4.50
      rows.push_back({lower, upper, !valid});
    }
  }
  return rows;
}

TEST(ConflictRules, MatchesFigure9) {
  for (const OcCase& row : Figure9Rows()) {
    EXPECT_EQ(OperatorConflict(row.lower, row.upper), row.conflict)
        << OpName(row.lower) << " below " << OpName(row.upper);
  }
}

TEST(ConflictRules, DependentVariantsBehaveLikeRegular) {
  // "each operator also stands for its dependent counterpart" (Sec. 5.5).
  using enum OpType;
  const std::pair<OpType, OpType> pairs[] = {
      {kJoin, kDepJoin},
      {kLeftSemijoin, kDepLeftSemijoin},
      {kLeftAntijoin, kDepLeftAntijoin},
      {kLeftOuterjoin, kDepLeftOuterjoin},
      {kLeftNestjoin, kDepLeftNestjoin},
  };
  const OpType all[] = {kJoin,         kLeftSemijoin,  kLeftAntijoin,
                        kLeftNestjoin, kLeftOuterjoin, kFullOuterjoin};
  for (auto [regular, dependent] : pairs) {
    for (OpType other : all) {
      EXPECT_EQ(OperatorConflict(regular, other), OperatorConflict(dependent, other))
          << OpName(dependent) << " as lower vs " << OpName(other);
      EXPECT_EQ(OperatorConflict(other, regular), OperatorConflict(other, dependent))
          << OpName(dependent) << " as upper vs " << OpName(other);
    }
  }
}

TEST(ConflictRules, SpecificRows) {
  using enum OpType;
  // Join below full outer join: GOJ 4.54, conflicting both ways.
  EXPECT_TRUE(OperatorConflict(kJoin, kFullOuterjoin));
  EXPECT_TRUE(OperatorConflict(kFullOuterjoin, kJoin));
  // Join associativity: no conflict.
  EXPECT_FALSE(OperatorConflict(kJoin, kJoin));
  // LOJ chain (4.46): no conflict.
  EXPECT_FALSE(OperatorConflict(kLeftOuterjoin, kLeftOuterjoin));
  // LOJ below join: conflict (lhs simplifiable, 4.48).
  EXPECT_TRUE(OperatorConflict(kLeftOuterjoin, kJoin));
  // Antijoin below anything: conflict.
  EXPECT_TRUE(OperatorConflict(kLeftAntijoin, kJoin));
  EXPECT_TRUE(OperatorConflict(kLeftAntijoin, kLeftAntijoin));
  // M below M / M below P: fine (4.50 / 4.51).
  EXPECT_FALSE(OperatorConflict(kFullOuterjoin, kFullOuterjoin));
  EXPECT_FALSE(OperatorConflict(kFullOuterjoin, kLeftOuterjoin));
  // P below M: conflict (third clause).
  EXPECT_TRUE(OperatorConflict(kLeftOuterjoin, kFullOuterjoin));
}

}  // namespace
}  // namespace dphyp
