// The paper's central counting claims: any DP algorithm must evaluate at
// least #ccp pairs (Sec. 2.2); DPhyp meets that bound exactly and its table
// holds exactly the connected subgraphs (Sec. 3.6); DPsize/DPsub test far
// more candidates than they keep — the motivation for the whole line of
// work.
#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "test_helpers.h"
#include "hypergraph/connectivity.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

struct GraphCase {
  std::string name;
  QuerySpec spec;
};

std::vector<GraphCase> CountingCases() {
  std::vector<GraphCase> cases;
  cases.push_back({"chain6", MakeChainQuery(6)});
  cases.push_back({"cycle6", MakeCycleQuery(6)});
  cases.push_back({"star5", MakeStarQuery(5)});
  cases.push_back({"clique5", MakeCliqueQuery(5)});
  cases.push_back({"cycle8s0", MakeCycleHypergraphQuery(8, 0)});
  cases.push_back({"cycle8s1", MakeCycleHypergraphQuery(8, 1)});
  cases.push_back({"cycle8s2", MakeCycleHypergraphQuery(8, 2)});
  cases.push_back({"cycle8s3", MakeCycleHypergraphQuery(8, 3)});
  cases.push_back({"star8s0", MakeStarHypergraphQuery(8, 0)});
  cases.push_back({"star8s2", MakeStarHypergraphQuery(8, 2)});
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    cases.push_back({"rand" + std::to_string(seed),
                     MakeRandomHypergraphQuery(7, 2, seed)});
  }
  return cases;
}

class CcpLowerBound : public ::testing::TestWithParam<GraphCase> {};

TEST_P(CcpLowerBound, DphypEmitsExactlyTheCsgCmpPairs) {
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.stats.ccp_pairs, CountCsgCmpPairs(g));
}

TEST_P(CcpLowerBound, DphypTableHoldsExactlyTheCsgs) {
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.dp_entries, CountConnectedSubgraphs(g));
}

TEST_P(CcpLowerBound, BaselinesReachTheSameTableButTestMore) {
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  const uint64_t ccp = CountCsgCmpPairs(g);
  const uint64_t csg = CountConnectedSubgraphs(g);

  OptimizeResult sub = OptimizeNamed("DPsub", g);
  ASSERT_TRUE(sub.success);
  EXPECT_EQ(sub.stats.dp_entries, csg);
  EXPECT_EQ(sub.stats.ccp_pairs, ccp);  // DPsub submits each split once
  EXPECT_GE(sub.stats.pairs_tested, ccp);

  OptimizeResult size = OptimizeNamed("DPsize", g);
  ASSERT_TRUE(size.success);
  EXPECT_EQ(size.stats.dp_entries, csg);
  // DPsize submits ordered pairs: 2x the unordered count.
  EXPECT_EQ(size.stats.ccp_pairs, 2 * ccp);
  EXPECT_GE(size.stats.pairs_tested, 2 * ccp);
}

INSTANTIATE_TEST_SUITE_P(Graphs, CcpLowerBound,
                         ::testing::ValuesIn(CountingCases()),
                         [](const ::testing::TestParamInfo<GraphCase>& info) {
                           return info.param.name;
                         });

TEST(Counting, DpsizeFailureRatioGrowsOnStars) {
  // [17]'s observation: DPsize's (*) tests fail increasingly often. On a
  // star, tested pairs grow much faster than kept pairs.
  Hypergraph small = BuildHypergraphOrDie(MakeStarQuery(5));
  Hypergraph large = BuildHypergraphOrDie(MakeStarQuery(9));
  OptimizeResult rs = OptimizeNamed("DPsize", small);
  OptimizeResult rl = OptimizeNamed("DPsize", large);
  ASSERT_TRUE(rs.success && rl.success);
  double ratio_small =
      static_cast<double>(rs.stats.pairs_tested) / rs.stats.ccp_pairs;
  double ratio_large =
      static_cast<double>(rl.stats.pairs_tested) / rl.stats.ccp_pairs;
  EXPECT_GT(ratio_large, ratio_small);
}

TEST(Counting, DphypNeverDiscardsWithoutTesMode) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Hypergraph g =
        BuildHypergraphOrDie(MakeRandomHypergraphQuery(7, 2, seed));
    OptimizeResult r = OptimizeNamed("DPhyp", g);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.stats.discarded, 0u) << seed;
  }
}

TEST(Counting, MemoryAccountingPopulated) {
  Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, 1));
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.table_bytes, 0u);
  // Sec. 3.6: memory ~ one entry per connected subgraph; all variants agree.
  OptimizeResult r2 = OptimizeNamed("DPsub", g);
  EXPECT_EQ(r.stats.dp_entries, r2.stats.dp_entries);
}

TEST(Counting, MemoryAccountingExactOnEveryAlgorithmPath) {
  // Simple cycle: every algorithm (including the simple-graph-only DPccp)
  // can run it.
  Hypergraph g = BuildHypergraphOrDie(MakeCycleQuery(8));
  CardinalityEstimator est(g);
  // Registry sweep (exact + heuristic): every algorithm path exits through
  // Finish(), so the accounting must hold for all of them.
  for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
    const char* algo = e->Name();
    OptimizeResult r = e->Optimize(g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << algo;
    // table_bytes is sampled from the actual DpTable at Finish() time: it
    // must match the footprint of the table the result carries and cover at
    // least the live entries.
    EXPECT_EQ(r.stats.table_bytes, r.table().MemoryBytes()) << algo;
    EXPECT_EQ(r.stats.dp_entries, r.table().size()) << algo;
    EXPECT_GE(r.stats.table_bytes, r.stats.dp_entries * sizeof(PlanEntry))
        << algo;
  }
}

}  // namespace
}  // namespace dphyp
