// Shared helpers for algorithm tests: an independent brute-force optimizer
// used as the ground-truth reference.
#ifndef DPHYP_TESTS_TEST_HELPERS_H_
#define DPHYP_TESTS_TEST_HELPERS_H_

#include <cmath>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/enumerator.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "hypergraph/hypergraph.h"
#include "util/node_set.h"
#include "util/subset.h"

namespace dphyp {
namespace testing_helpers {

/// Registry-based optimization for tests that select enumerators by name;
/// dies (via Result's CHECK) on unknown names — a test bug, not a case.
inline OptimizeResult OptimizeNamed(std::string_view algo, const Hypergraph& g,
                                    const CardinalityEstimator& est,
                                    const CostModel& model,
                                    const OptimizerOptions& options = {}) {
  return std::move(OptimizeByName(algo, g, est, model, options)).value();
}

inline OptimizeResult OptimizeNamed(std::string_view algo,
                                    const Hypergraph& g) {
  return std::move(OptimizeByName(algo, g)).value();
}

/// Plain memoized recursion over all set splits; deliberately written
/// independently of the library's enumeration machinery (no DP table, no
/// csg-cmp logic) so it can serve as an oracle for inner-join-only queries.
class BruteForceOptimizer {
 public:
  BruteForceOptimizer(const Hypergraph& graph, const CardinalityEstimator& est,
                      const CostModel& model)
      : graph_(graph), est_(est), model_(model) {}

  /// Optimal cost for the class S, or +inf if S is not connected.
  double BestCost(NodeSet S) {
    if (S.IsSingleton()) return 0.0;
    auto it = memo_.find(S.bits());
    if (it != memo_.end()) return it->second;
    double best = std::numeric_limits<double>::infinity();
    const double out_card = est_.Estimate(S);
    NodeSet rest = S.MinusMin();
    auto consider = [&](NodeSet S1, NodeSet S2) {
      if (!graph_.ConnectsSets(S1, S2)) return;
      double c1 = BestCost(S1);
      double c2 = BestCost(S2);
      if (std::isinf(c1) || std::isinf(c2)) return;
      PlanSide a{c1, est_.Estimate(S1)};
      PlanSide b{c2, est_.Estimate(S2)};
      // Inner joins only: both orientations are valid.
      best = std::min(best, model_.OperatorCost(OpType::kJoin, a, b, out_card));
      best = std::min(best, model_.OperatorCost(OpType::kJoin, b, a, out_card));
    };
    for (NodeSet part : NonEmptySubsetsOf(rest)) {
      if (part == rest) break;
      consider(S.MinSet() | part, S - (S.MinSet() | part));
    }
    consider(S.MinSet(), rest);
    memo_[S.bits()] = best;
    return best;
  }

 private:
  const Hypergraph& graph_;
  const CardinalityEstimator& est_;
  const CostModel& model_;
  std::unordered_map<uint64_t, double> memo_;
};

/// Relative-tolerance comparison for costs accumulated in different orders.
inline bool CostsClose(double a, double b, double rel = 1e-9) {
  if (a == b) return true;
  double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel * scale;
}

}  // namespace testing_helpers
}  // namespace dphyp

#endif  // DPHYP_TESTS_TEST_HELPERS_H_
