// The estimation suite (ctest -L estimation): the pluggable
// CardinalityModel layer end to end.
//   * Calibration of the product-form estimator against executed ground
//     truth (the original calibration tests).
//   * Bit-identity: all seven enumerators produce identical plan costs
//     under the registry-created "product" model and a directly
//     constructed CardinalityEstimator — the seed behavior the redesign
//     must preserve exactly.
//   * Q-error bounds for the catalog-stats-derived model on workloads
//     whose executable payloads match the derived selectivities, and its
//     superiority over defaulted selectivities.
//   * The executor-fed oracle serving observed actuals verbatim.
#include <gtest/gtest.h>

#include <memory>

#include "core/dphyp.h"
#include "core/enumerator.h"
#include "cost/model_registry.h"
#include "cost/oracle_model.h"
#include "cost/qerror.h"
#include "cost/stats_model.h"
#include "exec/executor.h"
#include "hypergraph/builder.h"
#include "stats/hist_model.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/jobgen.h"

namespace dphyp {
namespace {

/// Builds a spec whose *estimator* cardinalities/selectivities match the
/// *executable* payload exactly: every relation gets `rows` rows, every
/// predicate selectivity 1/modulus.
QuerySpec CalibratedSpec(int n, int rows, uint64_t seed) {
  // Spanning trees only: cyclic graphs make sum-mod predicates strongly
  // correlated (two conjuncts of a triangle imply the third), which no
  // independence-based estimator can track.
  QuerySpec spec = MakeRandomGraphQuery(n, 0.0, seed);
  for (RelationInfo& rel : spec.relations) {
    rel.cardinality = rows;
  }
  Rng rng(seed * 31 + 7);
  for (Predicate& p : spec.predicates) {
    int64_t modulus = 2 + static_cast<int64_t>(rng.Uniform(3));  // 2..4
    p.modulus = modulus;
    p.selectivity = 1.0 / static_cast<double>(modulus);
    p.refs.clear();
    for (int t : p.AllTables()) p.refs.push_back(ColumnRef{t, 0});
  }
  return spec;
}

class EstimatorCalibration : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EstimatorCalibration, EstimateTracksActualCardinality) {
  const uint64_t seed = GetParam();
  const int rows = 14;
  QuerySpec spec = CalibratedSpec(5, rows, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);

  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success);
  PlanTree plan = r.ExtractPlan(g);

  Dataset data = Dataset::Generate(spec.relations, rows, seed ^ 0x5bd1e995);
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
  ExecResult actual = exec.Execute(plan);

  const double estimated = r.cardinality;
  const double observed = static_cast<double>(actual.tuples.size());
  // Sum-mod predicates over uniform columns are unbiased but correlated
  // across shared tables; allow a wide band and a +1 cushion for empty
  // results.
  EXPECT_LE(observed, estimated * 12 + 12) << "estimate far too low";
  EXPECT_GE(observed * 12 + 12, estimated) << "estimate far too high";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorCalibration,
                         ::testing::Range<uint64_t>(1, 25));

// --- Bit-identity of the default model --------------------------------------

// Every enumerator, run twice per shape: once with a directly constructed
// CardinalityEstimator (the pre-redesign call shape) and once with the
// registry-created "product" model through the same entry point. Costs and
// cardinalities must be bit-identical — the acceptance bar for threading
// the CardinalityModel interface through the optimizer.
TEST(DefaultModel, AllEnumeratorsBitIdenticalToDirectEstimator) {
  std::vector<QuerySpec> specs = {MakeChainQuery(7), MakeStarQuery(6),
                                  MakeCliqueQuery(6),
                                  MakeCycleHypergraphQuery(8, 1)};
  for (size_t s = 0; s < specs.size(); ++s) {
    Hypergraph g = BuildHypergraphOrDie(specs[s]);
    CardinalityEstimator direct(g);

    CardinalityModelInputs inputs;
    inputs.graph = &g;
    inputs.spec = &specs[s];
    Result<std::unique_ptr<CardinalityModel>> registry_model =
        CreateCardinalityModel("product", inputs);
    ASSERT_TRUE(registry_model.ok()) << registry_model.error().message;

    for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
      if (!e->CanHandle(g)) continue;
      OptimizeResult a = e->Optimize(g, direct, DefaultCostModel());
      OptimizeResult b =
          e->Optimize(g, *registry_model.value(), DefaultCostModel());
      ASSERT_TRUE(a.success) << e->Name() << " spec " << s;
      ASSERT_TRUE(b.success) << e->Name() << " spec " << s;
      EXPECT_EQ(a.cost, b.cost) << e->Name() << " spec " << s;
      EXPECT_EQ(a.cardinality, b.cardinality) << e->Name() << " spec " << s;
    }
  }
}

// The hist model's estimates are a pure function of the plan class (base
// cardinalities x per-edge factors, correlation damping folded in at
// construction), so every exact enumerator must agree bit-for-bit — the
// Bellman-principle acceptance bar any new model has to clear. Run on an
// analyzed skewed workload so the MCV/histogram/damping paths are all hot.
TEST(DefaultModel, HistModelBitIdenticalAcrossAllEnumerators) {
  JobGenOptions opts;
  opts.num_tables = 5;
  opts.rows_per_table = 60;
  opts.num_queries = 3;
  opts.max_relations = 5;
  opts.correlated_pair_prob = 1.0;  // damping active on every joined pair
  JobWorkload w = GenerateJobWorkload(opts);
  for (const JobQuery& q : w.queries) {
    Hypergraph g = BuildHypergraphOrDie(q.spec);
    HistogramCardinalityModel hist(g, q.spec, w.full_catalog.get());
    OptimizeResult reference = OptimizeDphyp(g, hist, DefaultCostModel());
    ASSERT_TRUE(reference.success);
    for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
      if (!e->CanHandle(g)) continue;
      if (!e->Exact()) continue;
      OptimizeResult r = e->Optimize(g, hist, DefaultCostModel());
      ASSERT_TRUE(r.success) << e->Name();
      EXPECT_EQ(r.cost, reference.cost) << e->Name();
      EXPECT_EQ(r.cardinality, reference.cardinality) << e->Name();
    }
  }
}

// A stats model over a spec with no catalog degrades to the product form
// bit-identically (every fallback path returns the spec values).
TEST(DefaultModel, StatsModelWithoutCatalogMatchesProduct) {
  QuerySpec spec = MakeStarQuery(7);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator product(g);
  StatsCardinalityModel stats(g, spec);
  OptimizeResult a = OptimizeDphyp(g, product, DefaultCostModel());
  OptimizeResult b = OptimizeDphyp(g, stats, DefaultCostModel());
  ASSERT_TRUE(a.success && b.success);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.cardinality, b.cardinality);
}

// --- Stats-derived model ----------------------------------------------------

/// A chain whose statistics make derivation exact: every relation has
/// `rows` rows, every predicate omits its selectivity, and the catalog
/// records ndv = `modulus` for the joined columns — so the stats model
/// derives 1/max(ndv) = the true sum-mod match rate, while the product
/// model is stuck with the 0.1 default.
struct StatsWorkload {
  QuerySpec spec;
  std::shared_ptr<Catalog> catalog;
};

StatsWorkload MakeDerivedChain(int n, int rows, int64_t modulus) {
  StatsWorkload w;
  w.catalog = std::make_shared<Catalog>();
  for (int i = 0; i < n; ++i) {
    std::string name = "R" + std::to_string(i);
    w.spec.AddRelation(name, rows, 1);
    w.catalog->AddTable(TableStats{
        name, static_cast<double>(rows),
        {ColumnStats{static_cast<double>(modulus), 0.0, 96.0}}});
  }
  for (int i = 0; i + 1 < n; ++i) {
    int p = w.spec.AddSimplePredicate(i, i + 1, 0.1);
    w.spec.predicates[p].derive_selectivity = true;
    w.spec.predicates[p].refs = {{i, 0}, {i + 1, 0}};
    w.spec.predicates[p].modulus = modulus;
  }
  w.spec.BindCatalog(w.catalog);
  return w;
}

TEST(StatsModel, DerivesSelectivityFromColumnNdv) {
  StatsWorkload w = MakeDerivedChain(4, 10, 2);
  Hypergraph g = BuildHypergraphOrDie(w.spec);
  StatsCardinalityModel stats(g, w.spec);
  // Derived: 1/max(ndv) = 1/2 per predicate.
  EXPECT_DOUBLE_EQ(stats.DeriveSelectivity(w.spec.predicates[0]), 0.5);
  // Full-class estimate: 10^4 * (1/2)^3.
  EXPECT_DOUBLE_EQ(stats.EstimateClass(g.AllNodes()), 1250.0);
  // The product model keeps the 0.1 default: 10^4 * (0.1)^3.
  CardinalityEstimator product(g);
  EXPECT_DOUBLE_EQ(product.EstimateClass(g.AllNodes()), 10.0);
}

TEST(StatsModel, QErrorBoundedAndBeatsDefaultedSelectivities) {
  for (uint64_t seed : {3u, 11u, 29u}) {
    StatsWorkload w = MakeDerivedChain(4, 12, 2);
    Hypergraph g = BuildHypergraphOrDie(w.spec);

    CardinalityFeedback actuals;
    Dataset data = Dataset::Generate(w.spec.relations, 12, seed);
    Executor exec(data, g, w.spec.relations, ConjunctsFromSpec(w.spec, g),
                  &actuals);

    StatsCardinalityModel stats(g, w.spec);
    OptimizeResult stats_plan = OptimizeDphyp(g, stats, DefaultCostModel());
    ASSERT_TRUE(stats_plan.success);
    exec.Execute(stats_plan.ExtractPlan(g));
    QErrorStats stats_q =
        ComputePlanQError(stats_plan.ExtractPlan(g), actuals);
    ASSERT_GT(stats_q.classes, 0u);
    // Derivation matches the data-generating process: estimates stay
    // within a small constant of the executed actuals.
    EXPECT_LE(stats_q.median_q, 3.0) << "seed " << seed;
    EXPECT_LE(stats_q.max_q, 6.0) << "seed " << seed;

    // The defaulted product form must grade strictly worse on the same
    // plan classes (0.1 vs the true 0.5 per join).
    CardinalityEstimator product(g);
    OptimizeResult product_plan =
        OptimizeDphyp(g, product, DefaultCostModel());
    ASSERT_TRUE(product_plan.success);
    exec.Execute(product_plan.ExtractPlan(g));
    QErrorStats product_q =
        ComputePlanQError(product_plan.ExtractPlan(g), actuals);
    EXPECT_GT(product_q.median_q, stats_q.median_q) << "seed " << seed;
  }
}

// --- Oracle model -----------------------------------------------------------

TEST(OracleModel, ServesObservedActualsVerbatim) {
  QuerySpec spec = CalibratedSpec(5, 10, 7);
  Hypergraph g = BuildHypergraphOrDie(spec);

  CardinalityFeedback actuals;
  Dataset data = Dataset::Generate(spec.relations, 10, 99);
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g), &actuals);

  // Seed the store by executing the product-form plan.
  CardinalityEstimator product(g);
  OptimizeResult seed_plan = OptimizeDphyp(g, product, DefaultCostModel());
  ASSERT_TRUE(seed_plan.success);
  exec.Execute(seed_plan.ExtractPlan(g));
  ASSERT_GT(actuals.size(), 0u);

  OracleCardinalityModel oracle(g, actuals);
  double actual_root = 0.0;
  ASSERT_TRUE(actuals.Lookup(g.AllNodes(), &actual_root));
  EXPECT_EQ(oracle.EstimateClass(g.AllNodes()), actual_root);

  // Optimize-execute to fixpoint: each round observes the chosen plan's
  // classes; once the plan repeats, every one of its classes was estimated
  // from an observation, so the whole plan must grade at q = 1. The
  // observed-class set grows monotonically over a finite lattice, so the
  // loop converges (a handful of rounds in practice).
  bool stable = false;
  std::string prev;
  for (int iter = 0; iter < 8 && !stable; ++iter) {
    OracleCardinalityModel model(g, actuals);
    OptimizeResult r = OptimizeDphyp(g, model, DefaultCostModel());
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.cardinality, actual_root);  // root observed from round one
    PlanTree plan = r.ExtractPlan(g);
    std::string algebra = plan.ToAlgebraString(g);
    exec.Execute(plan);
    if (algebra == prev) {
      QErrorStats q = ComputePlanQError(plan, actuals);
      ASSERT_GT(q.classes, 0u);
      EXPECT_EQ(q.missing, 0u);
      EXPECT_DOUBLE_EQ(q.max_q, 1.0);
      stable = true;
    }
    prev = algebra;
  }
  EXPECT_TRUE(stable) << "oracle plan did not stabilize";

  // Unobserved classes fall back to the product form.
  CardinalityFeedback empty;
  OracleCardinalityModel fallback(g, empty);
  EXPECT_EQ(fallback.EstimateClass(g.AllNodes()),
            product.EstimateClass(g.AllNodes()));
}

TEST(EstimatorCalibration, ExactOnIndependentTwoWayJoin) {
  // Two relations, single equality-mod-2 predicate: expectation is exactly
  // |A| * |B| / 2; with column values in [0, 97) (49 evens, 48 odds) the
  // match probability is (49*49 + 48*48) / 97^2 ≈ 0.5001.
  QuerySpec spec;
  spec.AddRelation("A", 100, 1);
  spec.AddRelation("B", 100, 1);
  int p = spec.AddSimplePredicate(0, 1, 0.5);
  spec.predicates[p].refs = {{0, 0}, {1, 0}};
  spec.predicates[p].modulus = 2;
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  EXPECT_DOUBLE_EQ(est.Estimate(NodeSet::FullSet(2)), 5000.0);

  Dataset data = Dataset::Generate(spec.relations, 100, 77);
  PlanBuilder builder;
  PlanTree plan = builder.Build(builder.Op(
      OpType::kJoin, builder.Leaf(0, 100), builder.Leaf(1, 100), {0}));
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
  double observed = static_cast<double>(exec.Execute(plan).tuples.size());
  EXPECT_NEAR(observed, 5000.0, 700.0);  // ~±4 sigma for 10k Bernoulli trials
}

}  // namespace
}  // namespace dphyp
