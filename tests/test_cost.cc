#include "cost/cardinality.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/factors.h"
#include "hypergraph/builder.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

TEST(Factors, InnerJoinIsSelectivity) {
  EXPECT_DOUBLE_EQ(EdgeCardinalityFactor(OpType::kJoin, 0.1, 100, 200), 0.1);
  EXPECT_DOUBLE_EQ(EdgeCardinalityFactor(OpType::kDepJoin, 0.1, 100, 200), 0.1);
}

TEST(Factors, SemijoinBoundedByLeft) {
  // |L ⋉ R| <= |L|: factor * R <= 1.
  double f = EdgeCardinalityFactor(OpType::kLeftSemijoin, 0.5, 100, 200);
  EXPECT_LE(f * 200, 1.0 + 1e-12);
  // Low selectivity: |L ⋉ R| ≈ |L| * s * R.
  double f2 = EdgeCardinalityFactor(OpType::kLeftSemijoin, 0.001, 100, 200);
  EXPECT_NEAR(f2 * 200, 0.001 * 200, 1e-9);
}

TEST(Factors, AntijoinComplementsSemijoin) {
  double anti = EdgeCardinalityFactor(OpType::kLeftAntijoin, 0.001, 100, 200);
  EXPECT_NEAR(anti * 200, 1.0 - 0.001 * 200, 1e-9);
  // Very selective predicate: clamp at the minimum keep fraction.
  double clamped = EdgeCardinalityFactor(OpType::kLeftAntijoin, 1.0, 100, 200);
  EXPECT_NEAR(clamped * 200, kMinAntijoinKeep, 1e-9);
}

TEST(Factors, OuterJoinAtLeastLeft) {
  // |L ⟕ R| >= |L|: factor >= 1/R.
  double f = EdgeCardinalityFactor(OpType::kLeftOuterjoin, 1e-9, 100, 200);
  EXPECT_GE(f, 1.0 / 200 - 1e-15);
  // Non-degenerate selectivity behaves like a join.
  EXPECT_DOUBLE_EQ(EdgeCardinalityFactor(OpType::kLeftOuterjoin, 0.1, 100, 200),
                   0.1);
}

TEST(Factors, FullOuterAtLeastBothSides) {
  double f = EdgeCardinalityFactor(OpType::kFullOuterjoin, 1e-9, 100, 200);
  // card = f * L * R >= L and >= R.
  EXPECT_GE(f * 100 * 200, 200.0 - 1e-6);
}

TEST(Factors, NestjoinPreservesLeft) {
  double f = EdgeCardinalityFactor(OpType::kLeftNestjoin, 0.3, 100, 200);
  EXPECT_DOUBLE_EQ(f * 200, 1.0);  // card = |L|
}

TEST(Cardinality, ProductFormSimple) {
  QuerySpec spec;
  spec.AddRelation("A", 10.0);
  spec.AddRelation("B", 20.0);
  spec.AddRelation("C", 30.0);
  spec.AddSimplePredicate(0, 1, 0.5);
  spec.AddSimplePredicate(1, 2, 0.1);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  EXPECT_DOUBLE_EQ(est.Estimate(Set({0})), 10.0);
  EXPECT_DOUBLE_EQ(est.Estimate(Set({0, 1})), 10.0 * 20.0 * 0.5);
  // Edge (1,2) not contained in {0,1}: factor not applied.
  EXPECT_DOUBLE_EQ(est.Estimate(Set({0, 2})), 10.0 * 30.0);
  EXPECT_DOUBLE_EQ(est.Estimate(Set({0, 1, 2})), 10.0 * 20.0 * 30.0 * 0.5 * 0.1);
}

TEST(Cardinality, HyperedgeAppliedOnlyWhenCovered) {
  QuerySpec spec;
  for (int i = 0; i < 4; ++i) spec.AddRelation("R", 10.0);
  spec.AddSimplePredicate(0, 1, 1.0);
  spec.AddSimplePredicate(2, 3, 1.0);
  spec.AddComplexPredicate(Set({0, 1}), Set({2, 3}), 0.01);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  EXPECT_DOUBLE_EQ(est.Estimate(Set({0, 1, 2})), 1000.0);
  EXPECT_DOUBLE_EQ(est.Estimate(NodeSet::FullSet(4)), 10000.0 * 0.01);
}

TEST(Cardinality, OrderIndependence) {
  // The whole point of product form: the estimate for a class is the same
  // no matter how it is assembled (Bellman validity).
  QuerySpec spec;
  for (int i = 0; i < 3; ++i) spec.AddRelation("R", 100.0);
  spec.AddSimplePredicate(0, 1, 0.2);
  spec.AddSimplePredicate(1, 2, 0.3);
  spec.AddSimplePredicate(0, 2, 0.4);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  // All three edges inside the full set: every factor applied exactly once.
  EXPECT_DOUBLE_EQ(est.Estimate(NodeSet::FullSet(3)),
                   100.0 * 100.0 * 100.0 * 0.2 * 0.3 * 0.4);
}

TEST(CostModel, CoutSumsIntermediates) {
  CoutModel model;
  PlanSide left{0.0, 100.0};
  PlanSide right{0.0, 200.0};
  EXPECT_DOUBLE_EQ(model.OperatorCost(OpType::kJoin, left, right, 500.0), 500.0);
  PlanSide withCost{500.0, 500.0};
  EXPECT_DOUBLE_EQ(model.OperatorCost(OpType::kJoin, withCost, right, 50.0),
                   550.0);
}

TEST(CostModel, HashModelChargesDependentReplay) {
  HashJoinModel model;
  PlanSide left{0.0, 100.0};
  PlanSide right{10.0, 50.0};
  double regular = model.OperatorCost(OpType::kJoin, left, right, 10.0);
  double dependent = model.OperatorCost(OpType::kDepJoin, left, right, 10.0);
  EXPECT_GT(dependent, regular);  // re-evaluation per left tuple must hurt
}

TEST(CostModel, DefaultIsCout) {
  EXPECT_STREQ(DefaultCostModel().name(), "Cout");
}

}  // namespace
}  // namespace dphyp
