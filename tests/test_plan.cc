#include "plan/dp_table.h"

#include <gtest/gtest.h>

#include "core/dphyp.h"
#include "hypergraph/builder.h"
#include "plan/plan_tree.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

TEST(DpTable, InsertAndFind) {
  DpTable table(4);
  EXPECT_TRUE(table.empty());
  PlanEntry* e = table.Insert(NodeSet::Single(3));
  e->cost = 7.0;
  ASSERT_NE(table.Find(NodeSet::Single(3)), nullptr);
  EXPECT_DOUBLE_EQ(table.Find(NodeSet::Single(3))->cost, 7.0);
  EXPECT_EQ(table.Find(NodeSet::Single(4)), nullptr);
  EXPECT_TRUE(table.Contains(NodeSet::Single(3)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(DpTable, GrowsPastInitialCapacity) {
  DpTable table(2);
  for (int i = 0; i < 40; ++i) {
    PlanEntry* e = table.Insert(NodeSet(uint64_t{1} << i));
    e->cost = i;
  }
  for (int i = 0; i < 40; ++i) {
    const PlanEntry* e = table.Find(NodeSet(uint64_t{1} << i));
    ASSERT_NE(e, nullptr) << i;
    EXPECT_DOUBLE_EQ(e->cost, i);
  }
  EXPECT_EQ(table.size(), 40u);
}

TEST(DpTable, DenseCompositeKeys) {
  // All 255 non-empty subsets of 8 nodes — collision stress for the
  // open-addressing probe.
  DpTable table(16);
  for (uint64_t bits = 1; bits < 256; ++bits) {
    table.Insert(NodeSet(bits))->cost = static_cast<double>(bits);
  }
  for (uint64_t bits = 1; bits < 256; ++bits) {
    const PlanEntry* e = table.Find(NodeSet(bits));
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->cost, static_cast<double>(bits));
  }
  EXPECT_GE(table.MemoryBytes(), 255 * sizeof(PlanEntry));
}

TEST(DpTable, EntriesInInsertionOrder) {
  DpTable table(4);
  table.Insert(NodeSet::Single(5));
  table.Insert(NodeSet::Single(1));
  table.Insert(NodeSet::Single(9));
  ASSERT_EQ(table.entries().size(), 3u);
  EXPECT_EQ(table.entries()[0]->set, NodeSet::Single(5));
  EXPECT_EQ(table.entries()[1]->set, NodeSet::Single(1));
  EXPECT_EQ(table.entries()[2]->set, NodeSet::Single(9));
}

TEST(PlanTree, ExtractFromOptimizedChain) {
  QuerySpec spec = MakeChainQuery(4);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult result = OptimizeDphyp(g);
  ASSERT_TRUE(result.success) << result.error;
  PlanTree tree = result.ExtractPlan(g);
  ASSERT_TRUE(tree.Valid());
  EXPECT_EQ(tree.root()->set, NodeSet::FullSet(4));
  EXPECT_EQ(tree.NumNodes(), 7);  // 4 leaves + 3 joins
  EXPECT_DOUBLE_EQ(tree.root()->cost, result.cost);
}

TEST(PlanTree, AlgebraStringAndExplain) {
  QuerySpec spec = MakeChainQuery(3);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult result = OptimizeDphyp(g);
  ASSERT_TRUE(result.success);
  PlanTree tree = result.ExtractPlan(g);
  std::string algebra = tree.ToAlgebraString(g);
  EXPECT_NE(algebra.find("JOIN"), std::string::npos);
  EXPECT_NE(algebra.find("R0"), std::string::npos);
  std::string explain = tree.Explain(g);
  EXPECT_NE(explain.find("cost="), std::string::npos);
  EXPECT_NE(explain.find("card="), std::string::npos);
}

TEST(PlanTree, PredicatesAttachedToJoins) {
  QuerySpec spec = MakeCycleQuery(4);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult result = OptimizeDphyp(g);
  ASSERT_TRUE(result.success);
  PlanTree tree = result.ExtractPlan(g);
  // A cycle has n edges; every edge's predicate must be applied exactly once
  // across the plan's operators.
  int total_preds = 0;
  std::function<void(const PlanTreeNode*)> walk = [&](const PlanTreeNode* n) {
    if (n->IsLeaf()) return;
    total_preds += static_cast<int>(n->edge_ids.size());
    walk(n->left);
    walk(n->right);
  };
  walk(tree.root());
  EXPECT_EQ(total_preds, 4);
}

TEST(PlanBuilder, ManualTree) {
  PlanBuilder builder;
  const PlanTreeNode* r0 = builder.Leaf(0, 10.0);
  const PlanTreeNode* r1 = builder.Leaf(1, 20.0);
  const PlanTreeNode* join = builder.Op(OpType::kLeftOuterjoin, r0, r1, {0});
  PlanTree tree = builder.Build(join);
  ASSERT_TRUE(tree.Valid());
  EXPECT_EQ(tree.root()->op, OpType::kLeftOuterjoin);
  EXPECT_EQ(tree.root()->set, NodeSet::FullSet(2));
  EXPECT_EQ(tree.NumNodes(), 3);
}

}  // namespace
}  // namespace dphyp
