// Tests of N(S, X) (Sec. 2.3), including the worked examples from the paper
// and the memoized NeighborhoodCache's bit-for-bit equivalence.
#include <gtest/gtest.h>

#include "core/neighborhood_cache.h"
#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

Hypergraph Figure2Graph() {
  Hypergraph g;
  for (int i = 0; i < 6; ++i) g.AddNode(HypergraphNode{"", 100.0, NodeSet()});
  auto simple = [&](int a, int b) {
    Hyperedge e;
    e.left = NodeSet::Single(a);
    e.right = NodeSet::Single(b);
    g.AddEdge(e);
  };
  simple(0, 1);
  simple(1, 2);
  simple(3, 4);
  simple(4, 5);
  Hyperedge hyper;
  hyper.left = Set({0, 1, 2});
  hyper.right = Set({3, 4, 5});
  g.AddEdge(hyper);
  return g;
}

TEST(Neighborhood, PaperExampleSeedsMinOfFarSide) {
  // "For our hypergraph in Fig. 2 and with X = S = {R1,R2,R3}, we have
  //  N(S,X) = {R4}" — zero-based: S = {0,1,2}, N = {3}.
  Hypergraph g = Figure2Graph();
  EXPECT_EQ(g.Neighborhood(Set({0, 1, 2}), Set({0, 1, 2})), Set({3}));
}

TEST(Neighborhood, SimpleEdgesOnly) {
  Hypergraph g = Figure2Graph();
  // From {R5} (index 4) with nothing forbidden: simple neighbors 3 and 5.
  EXPECT_EQ(g.Neighborhood(Set({4}), NodeSet()), Set({3, 5}));
  // Forbidding 3 leaves only 5.
  EXPECT_EQ(g.Neighborhood(Set({4}), Set({3})), Set({5}));
}

TEST(Neighborhood, HyperedgeRequiresFullNearSide) {
  Hypergraph g = Figure2Graph();
  // {R1} alone does not cover the hyperedge's near side {0,1,2}; only the
  // simple neighbor R2 (index 1) is reachable.
  EXPECT_EQ(g.Neighborhood(Set({0}), NodeSet()), Set({1}));
}

TEST(Neighborhood, FarSideBlockedByX) {
  Hypergraph g = Figure2Graph();
  // Far side {3,4,5}: forbidding any of its nodes suppresses the candidate
  // (the entire hypernode must stay available).
  EXPECT_EQ(g.Neighborhood(Set({0, 1, 2}), Set({0, 1, 2}) | Set({5})),
            NodeSet());
}

TEST(Neighborhood, SubsumedHypernodeEliminated) {
  // Two hyperedges from {0}: far sides {2,3} and {2,3,4}. E# keeps only the
  // minimal {2,3}; both contribute representative 2 either way, but the
  // subsumption check must not add 2 twice or pick 4.
  Hypergraph g;
  for (int i = 0; i < 5; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge a;
  a.left = Set({0, 1});
  a.right = Set({2, 3});
  g.AddEdge(a);
  Hyperedge b;
  b.left = Set({0, 1});
  b.right = Set({2, 3, 4});
  g.AddEdge(b);
  EXPECT_EQ(g.Neighborhood(Set({0, 1}), NodeSet()), Set({2}));
}

TEST(Neighborhood, SimpleNeighborSubsumesHypernode) {
  // Simple edge 0-2 plus hyperedge ({0},{2,3}): the hypernode {2,3}
  // contains the simple neighbor 2, so it is subsumed; N = {2} only.
  Hypergraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge s;
  s.left = Set({0});
  s.right = Set({2});
  g.AddEdge(s);
  Hyperedge h;
  h.left = Set({0});
  h.right = Set({2, 3});
  g.AddEdge(h);
  EXPECT_EQ(g.Neighborhood(Set({0}), NodeSet()), Set({2}));
}

TEST(Neighborhood, IncomparableHypernodesBothRepresented) {
  // Far sides {2,3} and {3,4} overlap but neither subsumes the other.
  // Processing order matters only for which representative appears first;
  // both candidates must be covered (min of each that survives).
  Hypergraph g;
  for (int i = 0; i < 5; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge a;
  a.left = Set({0, 1});
  a.right = Set({2, 3});
  g.AddEdge(a);
  Hyperedge b;
  b.left = Set({0, 1});
  b.right = Set({3, 4});
  g.AddEdge(b);
  NodeSet n = g.Neighborhood(Set({0, 1}), NodeSet());
  // {2,3} contributes 2; {3,4} contributes 3 (2 not inside it).
  EXPECT_EQ(n, Set({2, 3}));
}

TEST(Neighborhood, GeneralizedEdgeFlexMovesToFarSide) {
  // Edge ({0}, {3}, w={1,2}): from S={0}, far hypernode is {3} ∪ w = {1,2,3},
  // represented by its minimum 1. From S={0,1}, w\S = {2}: candidate {2,3},
  // representative 2.
  Hypergraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge e;
  e.left = Set({0});
  e.right = Set({3});
  e.flex = Set({1, 2});
  g.AddEdge(e);
  EXPECT_EQ(g.Neighborhood(Set({0}), NodeSet()), Set({1}));
  EXPECT_EQ(g.Neighborhood(Set({0, 1}), NodeSet()), Set({2}));
  EXPECT_EQ(g.Neighborhood(Set({0, 1, 2}), NodeSet()), Set({3}));
}

TEST(Neighborhood, ExcludesForbiddenAndSelf) {
  Hypergraph g = Figure2Graph();
  for (int v = 0; v < 6; ++v) {
    NodeSet n = g.Neighborhood(NodeSet::Single(v), NodeSet::UpTo(v));
    EXPECT_FALSE(n.Contains(v));
    for (int w : n) EXPECT_GT(w, v);
  }
}

TEST(NeighborhoodCache, MatchesUncachedOnPaperExamples) {
  Hypergraph g = Figure2Graph();
  NeighborhoodCache cache(g);
  EXPECT_EQ(cache.Neighborhood(Set({0, 1, 2}), Set({0, 1, 2})), Set({3}));
  EXPECT_EQ(cache.Neighborhood(Set({4}), NodeSet()), Set({3, 5}));
  EXPECT_EQ(cache.Neighborhood(Set({4}), Set({3})), Set({5}));
  // Same S with a different X must hit the memo yet respect the new X.
  EXPECT_GT(cache.hits(), 0u);
}

TEST(NeighborhoodCache, MatchesUncachedOnRandomHypergraphs) {
  // Exhaustive-ish equivalence: random (S, X) probes on random hypergraphs,
  // repeating each S with several X values so cache hits are exercised as
  // hard as misses.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Hypergraph g =
        BuildHypergraphOrDie(MakeRandomHypergraphQuery(10, 3, seed));
    NeighborhoodCache cache(g);
    Rng rng(seed * 7919);
    for (int probe = 0; probe < 2000; ++probe) {
      NodeSet S(rng.Next() & 0x3ffu);
      if (S.Empty()) S = NodeSet::Single(0);
      NodeSet X = NodeSet(rng.Next() & 0x3ffu) - S;
      EXPECT_EQ(cache.Neighborhood(S, X), g.Neighborhood(S, X))
          << "seed=" << seed << " S=" << S.ToString()
          << " X=" << X.ToString();
    }
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.misses(), 0u);
  }
}

}  // namespace
}  // namespace dphyp
