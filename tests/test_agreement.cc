// Cross-algorithm agreement: every algorithm must report the same optimal
// cost and final cardinality on the same input (the canonical product-form
// estimator guarantees a unique well-defined optimum).
#include <gtest/gtest.h>

#include "baselines/all_algorithms.h"
#include "hypergraph/builder.h"
#include "test_helpers.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::CostsClose;

struct AgreementCase {
  std::string name;
  QuerySpec spec;
  bool simple = true;  // DPccp participates only on simple graphs
};

std::vector<AgreementCase> AgreementCases() {
  std::vector<AgreementCase> cases;
  cases.push_back({"chain7", MakeChainQuery(7), true});
  cases.push_back({"cycle7", MakeCycleQuery(7), true});
  cases.push_back({"star6", MakeStarQuery(6), true});
  cases.push_back({"clique6", MakeCliqueQuery(6), true});
  for (int splits = 0; splits <= 3; ++splits) {
    cases.push_back({"cycle8s" + std::to_string(splits),
                     MakeCycleHypergraphQuery(8, splits), splits == 3});
    cases.push_back({"star8s" + std::to_string(splits),
                     MakeStarHypergraphQuery(8, splits), false});
  }
  for (uint64_t seed = 20; seed < 28; ++seed) {
    cases.push_back({"randh" + std::to_string(seed),
                     MakeRandomHypergraphQuery(8, 2, seed), false});
    cases.push_back({"randg" + std::to_string(seed),
                     MakeRandomGraphQuery(8, 0.25, seed), true});
  }
  return cases;
}

class AllAlgorithmsAgree : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(AllAlgorithmsAgree, SameOptimalCost) {
  const AgreementCase& c = GetParam();
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);

  OptimizeResult reference = Optimize(Algorithm::kDphyp, g, est,
                                      DefaultCostModel());
  ASSERT_TRUE(reference.success) << reference.error;

  for (Algorithm algo : kAllAlgorithms) {
    if (algo == Algorithm::kDphyp) continue;
    if (algo == Algorithm::kDpccp && !c.simple) continue;
    OptimizeResult r = Optimize(algo, g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << AlgorithmName(algo) << ": " << r.error;
    EXPECT_TRUE(CostsClose(r.cost, reference.cost))
        << AlgorithmName(algo) << " cost " << r.cost << " vs "
        << reference.cost;
    EXPECT_DOUBLE_EQ(r.cardinality, reference.cardinality)
        << AlgorithmName(algo);
    EXPECT_EQ(r.stats.dp_entries, reference.stats.dp_entries)
        << AlgorithmName(algo);
  }
}

TEST_P(AllAlgorithmsAgree, SameOptimalCostUnderHashModel) {
  const AgreementCase& c = GetParam();
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);
  HashJoinModel model;

  OptimizeResult reference = Optimize(Algorithm::kDphyp, g, est, model);
  ASSERT_TRUE(reference.success);
  for (Algorithm algo : {Algorithm::kDpsize, Algorithm::kDpsub}) {
    OptimizeResult r = Optimize(algo, g, est, model);
    ASSERT_TRUE(r.success) << AlgorithmName(algo);
    EXPECT_TRUE(CostsClose(r.cost, reference.cost)) << AlgorithmName(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, AllAlgorithmsAgree,
                         ::testing::ValuesIn(AgreementCases()),
                         [](const ::testing::TestParamInfo<AgreementCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace dphyp
