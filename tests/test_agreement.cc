// Cross-algorithm agreement: every algorithm must report the same optimal
// cost and final cardinality on the same input (the canonical product-form
// estimator guarantees a unique well-defined optimum).
//
// The sweep comes from the Enumerator registry (every registered *exact*
// strategy that can handle the graph), so a newly registered exact
// enumerator is verified against DPhyp with no test changes.
#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "test_helpers.h"
#include "test_rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::CostsClose;
using testing_helpers::DerivedSeed;
using testing_helpers::OptimizeNamed;
using testing_helpers::SeedTrace;

struct AgreementCase {
  std::string name;   // stable: shape/ordinal, never the seed
  uint64_t seed = 0;  // derived from QDL_TEST_SEED for the random cases
  QuerySpec spec;
};

std::vector<AgreementCase> AgreementCases() {
  std::vector<AgreementCase> cases;
  cases.push_back({"chain7", 0, MakeChainQuery(7)});
  cases.push_back({"cycle7", 0, MakeCycleQuery(7)});
  cases.push_back({"star6", 0, MakeStarQuery(6)});
  cases.push_back({"clique6", 0, MakeCliqueQuery(6)});
  for (int splits = 0; splits <= 3; ++splits) {
    cases.push_back({"cycle8s" + std::to_string(splits), 0,
                     MakeCycleHypergraphQuery(8, splits)});
    cases.push_back({"star8s" + std::to_string(splits), 0,
                     MakeStarHypergraphQuery(8, splits)});
  }
  // Random cases draw their seeds from QDL_TEST_SEED (tests/test_rng.h);
  // the case names carry only the ordinal so a runtime seed override still
  // matches the names ctest registered at build time.
  for (int i = 0; i < 8; ++i) {
    const uint64_t hseed = DerivedSeed(2000 + i);
    cases.push_back({"randh" + std::to_string(i), hseed,
                     MakeRandomHypergraphQuery(8, 2, hseed)});
    const uint64_t gseed = DerivedSeed(3000 + i);
    cases.push_back({"randg" + std::to_string(i), gseed,
                     MakeRandomGraphQuery(8, 0.25, gseed)});
  }
  return cases;
}

class AllAlgorithmsAgree : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(AllAlgorithmsAgree, SameOptimalCost) {
  const AgreementCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);

  OptimizeResult reference = OptimizeNamed("DPhyp", g, est,
                                           DefaultCostModel());
  ASSERT_TRUE(reference.success) << reference.error;

  for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
    if (!e->Exact()) continue;  // GOO is a heuristic, not an agreement peer
    if (std::string_view(e->Name()) == "DPhyp") continue;
    if (!e->CanHandle(g)) continue;  // DPccp refuses complex hyperedges
    OptimizeResult r = e->Optimize(g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << e->Name() << ": " << r.error;
    EXPECT_TRUE(CostsClose(r.cost, reference.cost))
        << e->Name() << " cost " << r.cost << " vs " << reference.cost;
    EXPECT_DOUBLE_EQ(r.cardinality, reference.cardinality) << e->Name();
    EXPECT_EQ(r.stats.dp_entries, reference.stats.dp_entries) << e->Name();
  }
}

TEST_P(AllAlgorithmsAgree, SameOptimalCostUnderHashModel) {
  const AgreementCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);
  HashJoinModel model;

  OptimizeResult reference = OptimizeNamed("DPhyp", g, est, model);
  ASSERT_TRUE(reference.success);
  for (const char* algo : {"DPsize", "DPsub"}) {
    OptimizeResult r = OptimizeNamed(algo, g, est, model);
    ASSERT_TRUE(r.success) << algo;
    EXPECT_TRUE(CostsClose(r.cost, reference.cost)) << algo;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, AllAlgorithmsAgree,
                         ::testing::ValuesIn(AgreementCases()),
                         [](const ::testing::TestParamInfo<AgreementCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace dphyp
