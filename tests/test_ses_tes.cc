// SES/TES computation and hyperedge derivation (Sec. 5.5-5.7) on hand-built
// trees with known expected outcomes.
#include "reorder/ses_tes.h"

#include <gtest/gtest.h>

#include "workload/optree_gen.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

OperatorTree ThreeRelTree(OpType lower, OpType upper) {
  // (R0 lower R1) upper R2 with predicates (R0,R1) and (R1,R2).
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.name = "R" + std::to_string(i);
    rel.cardinality = 100;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int inner = tree.AddOp(lower, l0, l1, {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  tree.root = tree.AddOp(upper, inner, l2, {tree.AddPredicate(Set({1, 2}), 0.2)});
  EXPECT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  return tree;
}

TEST(SesTes, SesIsPredicateTables) {
  OperatorTree tree = ThreeRelTree(OpType::kJoin, OpType::kLeftOuterjoin);
  TesAnalysis a = ComputeTes(tree);
  int inner = tree.nodes[tree.root].left;
  EXPECT_EQ(a.ses[inner], Set({0, 1}));
  EXPECT_EQ(a.ses[tree.root], Set({1, 2}));
}

TEST(SesTes, NoConflictKeepsTesEqualSes) {
  // Join below LOJ with the LOJ predicate on (R1,R2): Case L2, but
  // OC(join, LOJ) = false, so TES stays SES and both orderings remain open.
  OperatorTree tree = ThreeRelTree(OpType::kJoin, OpType::kLeftOuterjoin);
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], a.ses[tree.root]);
}

TEST(SesTes, ConflictGrowsTes) {
  // LOJ below join (4.48): conflict. TES of the join must absorb the LOJ's
  // TES, forcing the LOJ to complete first.
  OperatorTree tree = ThreeRelTree(OpType::kLeftOuterjoin, OpType::kJoin);
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], Set({0, 1, 2}));
}

TEST(SesTes, SemijoinAboveLojConflicts) {
  // (R0 P R1) G R2 with pred (R1,R2): Fig. 9 "(R P S) G T ≠ ..." — conflict.
  OperatorTree tree = ThreeRelTree(OpType::kLeftOuterjoin, OpType::kLeftSemijoin);
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], Set({0, 1, 2}));
}

TEST(SesTes, AntijoinAboveLojConflicts) {
  // (R0 P R1) I R2: Fig. 9 "(R P S) I T ≠ ..." — conflict.
  OperatorTree tree = ThreeRelTree(OpType::kLeftOuterjoin, OpType::kLeftAntijoin);
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], Set({0, 1, 2}));
}

TEST(SesTes, R1SoundnessFixAbsorbsRightNestedDescendant) {
  // R0 P (R1 P R2) where the outer predicate references R0 and R2 only —
  // Case R1 with a non-commutative descendant. The published rules would
  // leave TES = {0,2}; the soundness fix must absorb the inner LOJ's TES.
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.cardinality = 100;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int l2 = tree.AddLeaf(2);
  int inner = tree.AddOp(OpType::kLeftOuterjoin, l1, l2,
                         {tree.AddPredicate(Set({1, 2}), 0.1)});
  tree.root = tree.AddOp(OpType::kLeftOuterjoin, l0, inner,
                         {tree.AddPredicate(Set({0, 2}), 0.2)});
  ASSERT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], Set({0, 1, 2}));
}

TEST(SesTes, LojChainStaysReorderable) {
  // (R0 P R1) P R2 with pST strong: 4.46, no conflict.
  OperatorTree tree =
      ThreeRelTree(OpType::kLeftOuterjoin, OpType::kLeftOuterjoin);
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], Set({1, 2}));
}

TEST(SesTes, LcConditionRequiresRightTablesOverlap) {
  // LOJ below join, but the join predicate references R0 and R2 only —
  // RightTables(join, loj) = {R1}, FT(p) ∩ {R1} = ∅, so no conflict applies
  // even though OC(loj, join) would be true (this is Case L1 handled by
  // Theorem 1 eq. (2): joins commute past LOP operators on the left arg).
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.cardinality = 100;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int loj = tree.AddOp(OpType::kLeftOuterjoin, l0, l1,
                       {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  tree.root = tree.AddOp(OpType::kJoin, loj, l2,
                         {tree.AddPredicate(Set({0, 2}), 0.2)});
  ASSERT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  TesAnalysis a = ComputeTes(tree);
  EXPECT_EQ(a.tes[tree.root], Set({0, 2}));
}

TEST(SesTes, DerivedHyperedgesSplitTes) {
  OperatorTree tree = ThreeRelTree(OpType::kLeftOuterjoin, OpType::kJoin);
  DerivedQuery dq = DeriveQuery(tree);
  ASSERT_EQ(dq.graph.NumEdges(), 2);
  // Post-order: the LOJ edge first, then the conflicted join edge.
  const Hyperedge& loj = dq.graph.edge(0);
  EXPECT_EQ(loj.op, OpType::kLeftOuterjoin);
  EXPECT_EQ(loj.left, Set({0}));
  EXPECT_EQ(loj.right, Set({1}));
  const Hyperedge& join = dq.graph.edge(1);
  EXPECT_EQ(join.op, OpType::kJoin);
  EXPECT_EQ(join.left, Set({0, 1}));  // TES \ r — the LOJ must finish first
  EXPECT_EQ(join.right, Set({2}));
}

TEST(SesTes, SesGraphStaysSimple) {
  OperatorTree tree = ThreeRelTree(OpType::kLeftOuterjoin, OpType::kJoin);
  DerivedQuery dq = DeriveQuery(tree);
  // The generate-and-test form keeps SES edges (simple here) and records
  // the TES split as a constraint instead.
  EXPECT_TRUE(dq.ses_graph.edge(1).IsSimple());
  EXPECT_EQ(dq.tes_constraints[1].left, Set({0, 1}));
  EXPECT_EQ(dq.tes_constraints[1].right, Set({2}));
}

TEST(SesTes, NestjoinAttributeReferenceForcesCompletion) {
  // R0 NEST R1 below a join whose predicate references the nestjoin's
  // computed attribute: third CalcTES rule.
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.cardinality = 100;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int nest = tree.AddOp(OpType::kLeftNestjoin, l0, l1,
                        {tree.AddPredicate(Set({0, 1}), 0.1)},
                        /*agg_tables=*/Set({1}));
  int l2 = tree.AddLeaf(2);
  int p = tree.AddPredicate(Set({0, 2}), 0.2);
  tree.predicates[p].nestjoin_refs.push_back(nest);
  tree.root = tree.AddOp(OpType::kJoin, nest, l2, {p});
  ASSERT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  TesAnalysis a = ComputeTes(tree);
  EXPECT_TRUE(Set({0, 1}).IsSubsetOf(a.tes[tree.root]));
}

TEST(SesTes, Fig8aStarEdgesShrinkSearchSpaceWithAntijoins) {
  // With all antijoins, every derived edge's left side is the full prefix:
  // the plan space collapses to the original left-deep chain (O(n), Sec 5.7).
  SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(6, 6);
  for (int e = 0; e < w.graph.NumEdges(); ++e) {
    const Hyperedge& edge = w.graph.edge(e);
    EXPECT_EQ(edge.left, NodeSet::FullSet(e + 1)) << e;
    EXPECT_EQ(edge.right, NodeSet::Single(e + 1)) << e;
    EXPECT_TRUE(w.ses_graph.edge(e).IsSimple()) << e;
  }
}

TEST(SesTes, Fig8aStarAllInnerStaysSimple) {
  SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(6, 0);
  for (int e = 0; e < w.graph.NumEdges(); ++e) {
    EXPECT_TRUE(w.graph.edge(e).IsSimple()) << e;
    EXPECT_EQ(w.graph.edge(e).op, OpType::kJoin);
  }
}

TEST(SesTes, Fig8aHubPredicateAntijoinsStayIndependent) {
  // Counterpoint to the synthetic workload: with hub-only predicates the
  // paper's own conflict rules leave antijoins mutually reorderable (Case
  // L1 / Theorem 1 eq. 2), so the executable optree version keeps TES = SES.
  OperatorTree tree = MakeStarAntijoinTree(6, 6);
  DerivedQuery dq = DeriveQuery(tree);
  for (size_t op = 0; op < dq.edge_to_op.size(); ++op) {
    int node = dq.edge_to_op[op];
    EXPECT_EQ(dq.analysis.tes[node], dq.analysis.ses[node]);
  }
}

TEST(SesTes, Fig8bMixedOuterJoinsConflictButPureOnesDoNot) {
  // Inner joins above outer joins conflict (4.48): mixed trees derive true
  // hyperedges. Pure inner and pure outer trees keep exactly one complex
  // edge — the final operator merges the chain and cycle-closing conjuncts
  // into one per-operator hyperedge (Sec. 5.7 derives edges per operator).
  auto count_complex = [](int n, int k) {
    OperatorTree tree = MakeCycleOuterjoinTree(n, k);
    DerivedQuery dq = DeriveQuery(tree);
    return static_cast<int>(dq.graph.complex_edge_ids().size());
  };
  EXPECT_EQ(count_complex(8, 0), 1);
  EXPECT_EQ(count_complex(8, 7), 1);
  EXPECT_GT(count_complex(8, 3), 1);
}

TEST(SesTes, ReferencePlanMatchesTreeShape) {
  OperatorTree tree = ThreeRelTree(OpType::kLeftOuterjoin, OpType::kJoin);
  OperatorTree normalized;
  DerivedQuery dq = DeriveQuery(tree, &normalized);
  CardinalityEstimator est(dq.graph);
  PlanTree ref = ReferencePlan(normalized, dq, est, DefaultCostModel());
  ASSERT_TRUE(ref.Valid());
  EXPECT_EQ(ref.root()->set, NodeSet::FullSet(3));
  EXPECT_EQ(ref.root()->op, OpType::kJoin);
  EXPECT_EQ(ref.root()->left->op, OpType::kLeftOuterjoin);
  EXPECT_GT(ref.root()->cost, 0.0);
}

}  // namespace
}  // namespace dphyp
