// Def. 3 connectivity oracle and csg / csg-cmp-pair counting, including the
// closed forms from [17] that the DESIGN.md test plan lists.
#include "hypergraph/connectivity.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

TEST(Connectivity, SingletonsAlwaysConnected) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(4));
  ConnectivityTester t(g);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(t.IsConnected(NodeSet::Single(v)));
}

TEST(Connectivity, ChainSubsets) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(5));
  ConnectivityTester t(g);
  EXPECT_TRUE(t.IsConnected(Set({1, 2, 3})));
  EXPECT_FALSE(t.IsConnected(Set({0, 2})));
  EXPECT_FALSE(t.IsConnected(Set({0, 1, 3})));
  EXPECT_TRUE(t.IsConnected(NodeSet::FullSet(5)));
}

TEST(Connectivity, HypernodeSidesMustBeInternallyConnected) {
  // Def. 3 subtlety: a single hyperedge ({0,1},{2}) does NOT make {0,1,2}
  // connected, because {0,1} has no internal edge.
  Hypergraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge e;
  e.left = Set({0, 1});
  e.right = Set({2});
  g.AddEdge(e);
  ConnectivityTester t(g);
  EXPECT_FALSE(t.IsConnected(Set({0, 1})));
  EXPECT_FALSE(t.IsConnected(Set({0, 1, 2})));
}

TEST(Connectivity, HyperedgeWithInternalSupport) {
  // Adding the simple edge 0-1 makes the previous example connected.
  Hypergraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge s;
  s.left = Set({0});
  s.right = Set({1});
  g.AddEdge(s);
  Hyperedge e;
  e.left = Set({0, 1});
  e.right = Set({2});
  g.AddEdge(e);
  ConnectivityTester t(g);
  EXPECT_TRUE(t.IsConnected(Set({0, 1})));
  EXPECT_TRUE(t.IsConnected(Set({0, 1, 2})));
  EXPECT_FALSE(t.IsConnected(Set({0, 2})));
}

TEST(Connectivity, UnionFindOverApproximates) {
  // Same single-hyperedge graph: union-find sees one component even though
  // Def. 3 says disconnected — that is exactly why it is only used for
  // repair, not as the connectivity oracle.
  Hypergraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge e;
  e.left = Set({0, 1});
  e.right = Set({2});
  g.AddEdge(e);
  EXPECT_EQ(UnionFindComponents(g).size(), 1u);
}

TEST(Connectivity, UnionFindComponents) {
  QuerySpec spec;
  for (int i = 0; i < 5; ++i) spec.AddRelation("R", 10.0);
  spec.AddSimplePredicate(0, 1, 0.5);
  spec.AddSimplePredicate(3, 4, 0.5);
  Hypergraph g;  // build without repair: use raw graph
  for (int i = 0; i < 5; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge e1;
  e1.left = Set({0});
  e1.right = Set({1});
  g.AddEdge(e1);
  Hyperedge e2;
  e2.left = Set({3});
  e2.right = Set({4});
  g.AddEdge(e2);
  auto comps = UnionFindComponents(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], Set({0, 1}));
  EXPECT_EQ(comps[1], Set({2}));
  EXPECT_EQ(comps[2], Set({3, 4}));
}

// Closed-form counts from [17]:
//   chain:  #csg = n(n+1)/2,          #ccp = (n^3 - n)/6
//   cycle:  #csg = n^2 - n + 1,       #ccp = (n^3 - 2n^2 + n)/2
//   star:   #csg = 2^(n-1) + n - 1,   #ccp = (n-1) * 2^(n-2)
//   clique: #csg = 2^n - 1,           #ccp = (3^n - 2^(n+1) + 1)/2
class ClosedFormCounts : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormCounts, Chain) {
  const uint64_t n = GetParam();
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(static_cast<int>(n)));
  EXPECT_EQ(CountConnectedSubgraphs(g), n * (n + 1) / 2);
  EXPECT_EQ(CountCsgCmpPairs(g), (n * n * n - n) / 6);
}

TEST_P(ClosedFormCounts, Cycle) {
  const uint64_t n = GetParam();
  if (n < 3) GTEST_SKIP();
  Hypergraph g = BuildHypergraphOrDie(MakeCycleQuery(static_cast<int>(n)));
  EXPECT_EQ(CountConnectedSubgraphs(g), n * n - n + 1);
  EXPECT_EQ(CountCsgCmpPairs(g), (n * n * n - 2 * n * n + n) / 2);
}

TEST_P(ClosedFormCounts, Star) {
  const uint64_t n = GetParam();  // total relations incl. hub
  if (n < 2) GTEST_SKIP();
  Hypergraph g =
      BuildHypergraphOrDie(MakeStarQuery(static_cast<int>(n) - 1));
  EXPECT_EQ(CountConnectedSubgraphs(g), (uint64_t{1} << (n - 1)) + n - 1);
  EXPECT_EQ(CountCsgCmpPairs(g), (n - 1) * (uint64_t{1} << (n - 2)));
}

TEST_P(ClosedFormCounts, Clique) {
  const uint64_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(static_cast<int>(n)));
  uint64_t pow3 = 1;
  for (uint64_t i = 0; i < n; ++i) pow3 *= 3;
  EXPECT_EQ(CountConnectedSubgraphs(g), (uint64_t{1} << n) - 1);
  EXPECT_EQ(CountCsgCmpPairs(g), (pow3 - (uint64_t{1} << (n + 1)) + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClosedFormCounts, ::testing::Range(2, 11));

TEST(Counting, EnumerationMatchesCounts) {
  Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, 1));
  auto csgs = EnumerateConnectedSubgraphs(g);
  auto ccps = EnumerateCsgCmpPairs(g);
  EXPECT_EQ(csgs.size(), CountConnectedSubgraphs(g));
  EXPECT_EQ(ccps.size(), CountCsgCmpPairs(g));
  ConnectivityTester t(g);
  for (auto& [s1, s2] : ccps) {
    EXPECT_TRUE(t.IsConnected(s1));
    EXPECT_TRUE(t.IsConnected(s2));
    EXPECT_FALSE(s1.Intersects(s2));
    EXPECT_TRUE(g.ConnectsSets(s1, s2));
    EXPECT_LT(s1.Min(), s2.Min());
  }
}

TEST(Connectivity, PolynomialClosureMatchesExponentialOracle) {
  // IsConnectedDef3 (component closure, polynomial — the parallel
  // enumerator's structure-phase oracle) must agree with the definitional
  // exponential tester on every subset, including the hypernode subtleties
  // above, across randomized hypergraphs and the paper's split series.
  std::vector<Hypergraph> graphs;
  for (uint64_t seed = 50; seed < 60; ++seed) {
    graphs.push_back(
        BuildHypergraphOrDie(MakeRandomHypergraphQuery(8, 3, seed)));
  }
  for (int splits = 0; splits <= 3; ++splits) {
    graphs.push_back(
        BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, splits)));
    graphs.push_back(
        BuildHypergraphOrDie(MakeStarHypergraphQuery(8, splits)));
  }
  for (const Hypergraph& g : graphs) {
    ConnectivityTester oracle(g);
    const uint64_t full = g.AllNodes().bits();
    for (uint64_t bits = 1; bits <= full; ++bits) {
      NodeSet s(bits);
      ASSERT_EQ(IsConnectedDef3(g, s), oracle.IsConnected(s))
          << "set " << bits;
    }
  }
}

TEST(Connectivity, PolynomialClosureOnHypernodeSides) {
  // The single-hyperedge graph from above: ({0,1},{2}) alone leaves both
  // {0,1} and {0,1,2} disconnected; internal support flips both.
  Hypergraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge e;
  e.left = Set({0, 1});
  e.right = Set({2});
  g.AddEdge(e);
  EXPECT_FALSE(IsConnectedDef3(g, Set({0, 1})));
  EXPECT_FALSE(IsConnectedDef3(g, Set({0, 1, 2})));
  Hyperedge s;
  s.left = Set({0});
  s.right = Set({1});
  g.AddEdge(s);
  EXPECT_TRUE(IsConnectedDef3(g, Set({0, 1})));
  EXPECT_TRUE(IsConnectedDef3(g, Set({0, 1, 2})));
}

TEST(Counting, HyperedgesShrinkSearchSpace) {
  // Splitting hyperedges weakens constraints, so csg/ccp counts must grow
  // monotonically with the number of splits (the Sec. 4 series).
  uint64_t prev_csg = 0, prev_ccp = 0;
  for (int splits = 0; splits <= 3; ++splits) {
    Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, splits));
    uint64_t csg = CountConnectedSubgraphs(g);
    uint64_t ccp = CountCsgCmpPairs(g);
    EXPECT_GE(csg, prev_csg);
    EXPECT_GE(ccp, prev_ccp);
    prev_csg = csg;
    prev_ccp = ccp;
  }
  // The fully split graph (simple edges only) strictly exceeds the G0 graph.
  EXPECT_GT(prev_ccp,
            CountCsgCmpPairs(BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, 0))));
}

}  // namespace
}  // namespace dphyp
