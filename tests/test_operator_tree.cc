#include "reorder/operator_tree.h"

#include <gtest/gtest.h>

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

/// (R0 JOIN R1) LOJ R2, join pred (R0,R1), loj pred (R1,R2).
OperatorTree SimpleTree() {
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.name = "R" + std::to_string(i);
    rel.cardinality = 100.0 * (i + 1);
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int p01 = tree.AddPredicate(Set({0, 1}), 0.1);
  int join = tree.AddOp(OpType::kJoin, l0, l1, {p01});
  int l2 = tree.AddLeaf(2);
  int p12 = tree.AddPredicate(Set({1, 2}), 0.2);
  tree.root = tree.AddOp(OpType::kLeftOuterjoin, join, l2, {p12});
  return tree;
}

TEST(OperatorTree, FinalizeComputesSets) {
  OperatorTree tree = SimpleTree();
  ASSERT_TRUE(tree.Finalize().ok());
  EXPECT_EQ(tree.TablesUnder(tree.root), Set({0, 1, 2}));
  EXPECT_EQ(tree.VisibleTables(tree.root), Set({0, 1, 2}));
  const TreeNode& root = tree.nodes[tree.root];
  EXPECT_EQ(tree.TablesUnder(root.left), Set({0, 1}));
  EXPECT_EQ(tree.Parent(root.left), tree.root);
  EXPECT_EQ(tree.Parent(tree.root), -1);
  EXPECT_EQ(tree.ToString(), "((R0 JOIN R1) LOJ R2)");
}

TEST(OperatorTree, SemijoinHidesRightSide) {
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.name = "R" + std::to_string(i);
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int semi = tree.AddOp(OpType::kLeftSemijoin, l0, l1,
                        {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  // Predicate referencing R1 above the semijoin: invalid (projected away).
  int bad = tree.AddPredicate(Set({1, 2}), 0.1);
  tree.root = tree.AddOp(OpType::kJoin, semi, l2, {bad});
  EXPECT_FALSE(tree.Finalize().ok());

  // Referencing R0 instead is fine.
  tree.nodes[tree.root].predicates = {tree.AddPredicate(Set({0, 2}), 0.1)};
  ASSERT_TRUE(tree.Finalize().ok());
  EXPECT_EQ(tree.VisibleTables(semi), Set({0}));
  EXPECT_EQ(tree.VisibleTables(tree.root), Set({0, 2}));
}

TEST(OperatorTree, RejectsBadLeafOrder) {
  OperatorTree tree;
  for (int i = 0; i < 2; ++i) {
    RelationInfo rel;
    rel.name = "R";
    tree.relations.push_back(rel);
  }
  int l1 = tree.AddLeaf(1);
  int l0 = tree.AddLeaf(0);
  tree.root = tree.AddOp(OpType::kJoin, l1, l0,
                         {tree.AddPredicate(Set({0, 1}), 0.1)});
  EXPECT_FALSE(tree.Finalize().ok());  // leaves must read 0,1 left-to-right
}

TEST(OperatorTree, RejectsPredicateOnOneSide) {
  OperatorTree tree;
  for (int i = 0; i < 2; ++i) tree.relations.push_back(RelationInfo{});
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  tree.root =
      tree.AddOp(OpType::kJoin, l0, l1, {tree.AddPredicate(Set({0}), 0.1)});
  EXPECT_FALSE(tree.Finalize().ok());
}

TEST(OperatorTree, DependentOpRequiredForLateralRight) {
  OperatorTree tree;
  tree.relations.push_back(RelationInfo{.name = "R0"});
  RelationInfo tvf;
  tvf.name = "F1";
  tvf.free_tables = Set({0});
  tree.relations.push_back(tvf);
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int pred = tree.AddPredicate(Set({0, 1}), 0.1);
  // Regular join over a lateral right side: invalid.
  tree.root = tree.AddOp(OpType::kJoin, l0, l1, {pred});
  EXPECT_FALSE(tree.Finalize().ok());
  // D-join: valid.
  tree.nodes[tree.root].op = OpType::kDepJoin;
  EXPECT_TRUE(tree.Finalize().ok());
}

TEST(OperatorTree, RejectsDependentWithoutLateral) {
  OperatorTree tree;
  for (int i = 0; i < 2; ++i) tree.relations.push_back(RelationInfo{});
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  tree.root = tree.AddOp(OpType::kDepJoin, l0, l1,
                         {tree.AddPredicate(Set({0, 1}), 0.1)});
  EXPECT_FALSE(tree.Finalize().ok());
}

TEST(OperatorTree, LateralMayOnlyReferenceLeftTables) {
  OperatorTree tree;
  tree.relations.push_back(RelationInfo{.name = "R0"});
  RelationInfo tvf;
  tvf.name = "F1";
  tvf.free_tables = Set({2});  // references a table to its right
  tree.relations.push_back(tvf);
  tree.relations.push_back(RelationInfo{.name = "R2"});
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int inner = tree.AddOp(OpType::kDepJoin, l0, l1,
                         {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  tree.root = tree.AddOp(OpType::kJoin, inner, l2,
                         {tree.AddPredicate(Set({1, 2}), 0.1)});
  EXPECT_FALSE(tree.Finalize().ok());
}

TEST(OperatorTree, NormalizationSwapsCommutativeChild) {
  // Parent predicate references only the *left* child of a commutative
  // child: Case L1. Normalization must swap the child's children.
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.name = "R" + std::to_string(i);
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int join = tree.AddOp(OpType::kJoin, l0, l1,
                        {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  // Parent predicate touches R0 only (plus R2).
  tree.root = tree.AddOp(OpType::kLeftOuterjoin, join, l2,
                         {tree.AddPredicate(Set({0, 2}), 0.1)});
  ASSERT_TRUE(tree.Finalize().ok());
  const TreeNode& child_before = tree.nodes[join];
  EXPECT_EQ(tree.nodes[child_before.left].relation, 0);
  NormalizeCommutativeChildren(&tree);
  const TreeNode& child_after = tree.nodes[join];
  // R0 must now be on the right of the inner join (Case L2 form).
  EXPECT_EQ(tree.nodes[child_after.right].relation, 0);
}

TEST(OperatorTree, NormalizationLeavesNonCommutativeAlone) {
  OperatorTree tree = SimpleTree();
  ASSERT_TRUE(tree.Finalize().ok());
  // Root predicate touches R1 (right child of inner join): already L2.
  int join = tree.nodes[tree.root].left;
  int left_before = tree.nodes[join].left;
  NormalizeCommutativeChildren(&tree);
  EXPECT_EQ(tree.nodes[join].left, left_before);
}

TEST(OperatorTree, FillDefaultPayloads) {
  OperatorTree tree = SimpleTree();
  ASSERT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  for (const TreePredicate& p : tree.predicates) {
    EXPECT_FALSE(p.refs.empty());
    EXPECT_GE(p.modulus, 1);
  }
}

}  // namespace
}  // namespace dphyp
