#include "catalog/query_spec.h"

#include <gtest/gtest.h>

#include "catalog/operator_type.h"

namespace dphyp {
namespace {

TEST(OperatorType, Commutativity) {
  EXPECT_TRUE(IsCommutative(OpType::kJoin));
  EXPECT_TRUE(IsCommutative(OpType::kFullOuterjoin));
  EXPECT_FALSE(IsCommutative(OpType::kLeftOuterjoin));
  EXPECT_FALSE(IsCommutative(OpType::kLeftSemijoin));
  EXPECT_FALSE(IsCommutative(OpType::kLeftAntijoin));
  EXPECT_FALSE(IsCommutative(OpType::kLeftNestjoin));
  EXPECT_FALSE(IsCommutative(OpType::kDepJoin));
}

TEST(OperatorType, DependentRoundTrip) {
  const OpType regulars[] = {OpType::kJoin, OpType::kLeftSemijoin,
                             OpType::kLeftAntijoin, OpType::kLeftOuterjoin,
                             OpType::kLeftNestjoin};
  for (OpType op : regulars) {
    OpType dep = DependentVariant(op);
    EXPECT_TRUE(IsDependent(dep)) << OpName(op);
    EXPECT_FALSE(IsDependent(op)) << OpName(op);
    EXPECT_EQ(RegularVariant(dep), op);
    // DependentVariant is idempotent on dependent ops.
    EXPECT_EQ(DependentVariant(dep), dep);
  }
}

TEST(OperatorType, LeftLinearSet) {
  // LOP of Sec. 5.1: everything except B and M.
  int lop_count = 0;
  for (int i = 0; i < kNumOpTypes; ++i) {
    OpType op = static_cast<OpType>(i);
    if (IsLeftLinearOnly(op)) ++lop_count;
  }
  EXPECT_EQ(lop_count, kNumOpTypes - 2);
}

TEST(OperatorType, LeftOnlyOutput) {
  EXPECT_TRUE(LeftOnlyOutput(OpType::kLeftSemijoin));
  EXPECT_TRUE(LeftOnlyOutput(OpType::kDepLeftAntijoin));
  EXPECT_FALSE(LeftOnlyOutput(OpType::kLeftOuterjoin));
  EXPECT_FALSE(LeftOnlyOutput(OpType::kJoin));
}

TEST(OperatorType, NamesRoundTrip) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    OpType op = static_cast<OpType>(i);
    OpType parsed;
    ASSERT_TRUE(ParseOpName(OpName(op), &parsed)) << OpName(op);
    EXPECT_EQ(parsed, op);
  }
  OpType dummy;
  EXPECT_FALSE(ParseOpName("frobnicate", &dummy));
}

TEST(QuerySpec, AddAndValidate) {
  QuerySpec spec;
  int a = spec.AddRelation("A", 100.0);
  int b = spec.AddRelation("B", 200.0);
  int c = spec.AddRelation("C", 300.0);
  spec.AddSimplePredicate(a, b, 0.1);
  spec.AddComplexPredicate(NodeSet::Single(a) | NodeSet::Single(b),
                           NodeSet::Single(c), 0.05);
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_EQ(spec.NumRelations(), 3);
  EXPECT_TRUE(spec.predicates[0].IsSimple());
  EXPECT_FALSE(spec.predicates[1].IsSimple());
}

TEST(QuerySpec, ValidateRejectsBadInputs) {
  {
    QuerySpec spec;
    EXPECT_FALSE(spec.Validate().ok()) << "no relations";
  }
  {
    QuerySpec spec;
    spec.AddRelation("A", -5.0);
    EXPECT_FALSE(spec.Validate().ok()) << "negative cardinality";
  }
  {
    QuerySpec spec;
    spec.AddRelation("A", 10.0);
    spec.AddRelation("B", 10.0);
    spec.AddSimplePredicate(0, 1, 0.0);
    EXPECT_FALSE(spec.Validate().ok()) << "zero selectivity";
  }
  {
    QuerySpec spec;
    spec.AddRelation("A", 10.0);
    spec.AddRelation("B", 10.0);
    Predicate p;
    p.left = NodeSet::Single(0);
    p.right = NodeSet::Single(0);  // overlapping sides
    p.selectivity = 0.5;
    spec.predicates.push_back(p);
    EXPECT_FALSE(spec.Validate().ok()) << "overlapping sides";
  }
  {
    QuerySpec spec;
    spec.AddRelation("A", 10.0);
    spec.relations[0].free_tables = NodeSet::Single(0);  // self-reference
    EXPECT_FALSE(spec.Validate().ok()) << "self free table";
  }
}

TEST(QuerySpec, FillDefaultPayloads) {
  QuerySpec spec;
  spec.AddRelation("A", 10.0);
  spec.AddRelation("B", 10.0);
  spec.AddSimplePredicate(0, 1, 0.25);
  spec.FillDefaultPayloads();
  const Predicate& p = spec.predicates[0];
  ASSERT_EQ(p.refs.size(), 2u);
  EXPECT_EQ(p.modulus, 4);  // 1/0.25
  EXPECT_TRUE(spec.Validate().ok());
}

// --- Statistics catalog ------------------------------------------------------

TEST(Catalog, VersionBumpsOnEveryMutation) {
  Catalog catalog;
  const uint64_t v0 = catalog.stats_version();

  catalog.AddTable(TableStats{"orders", 1000.0, {{100.0, 0.0, 96.0}}});
  const uint64_t v1 = catalog.stats_version();
  EXPECT_GT(v1, v0);

  ASSERT_TRUE(catalog.SetRowCount("orders", 2500.0));
  const uint64_t v2 = catalog.stats_version();
  EXPECT_GT(v2, v1);

  ASSERT_TRUE(catalog.SetColumnStats("orders", 1, ColumnStats{40.0, 0.0, 39.0}));
  const uint64_t v3 = catalog.stats_version();
  EXPECT_GT(v3, v2);

  catalog.BumpStatsVersion();
  EXPECT_GT(catalog.stats_version(), v3);

  // Unknown tables mutate nothing, including the version.
  const uint64_t v4 = catalog.stats_version();
  EXPECT_FALSE(catalog.SetRowCount("nope", 1.0));
  EXPECT_EQ(catalog.stats_version(), v4);
}

TEST(Catalog, LookupAndReplacement) {
  Catalog catalog;
  int orders = catalog.AddTable(TableStats{"orders", 1000.0, {}});
  int parts = catalog.AddTable(TableStats{"parts", 50.0, {{25.0, 0.0, 24.0}}});
  EXPECT_EQ(catalog.NumTables(), 2);
  EXPECT_EQ(catalog.IndexOf("orders"), orders);
  EXPECT_EQ(catalog.IndexOf("parts"), parts);
  EXPECT_EQ(catalog.IndexOf("missing"), -1);
  EXPECT_FALSE(catalog.FindTable("missing").has_value());
  EXPECT_FALSE(catalog.TableAt(7).has_value());

  // Re-registering a name replaces in place (index stability).
  EXPECT_EQ(catalog.AddTable(TableStats{"orders", 9999.0, {}}), orders);
  EXPECT_EQ(catalog.NumTables(), 2);
  auto stats = catalog.FindTable("orders");
  ASSERT_TRUE(stats.has_value());
  EXPECT_DOUBLE_EQ(stats->row_count, 9999.0);

  // Growing column stats on demand.
  ASSERT_TRUE(catalog.SetColumnStats("orders", 2, ColumnStats{12.0, 0.0, 11.0}));
  stats = catalog.FindTable("orders");
  ASSERT_EQ(stats->columns.size(), 3u);
  EXPECT_DOUBLE_EQ(stats->columns[2].distinct_count, 12.0);
}

TEST(QuerySpec, BindCatalogSnapshotsRowCounts) {
  auto catalog = std::make_shared<Catalog>();
  catalog->AddTable(TableStats{"A", 500.0, {}});
  // No entry for "B": it must stay unbound with its flat value.

  QuerySpec spec;
  spec.AddRelation("A", 10.0);
  spec.AddRelation("B", 20.0);
  spec.AddSimplePredicate(0, 1, 0.5);
  spec.BindCatalog(catalog);

  ASSERT_NE(spec.catalog, nullptr);
  EXPECT_EQ(spec.relations[0].table_id, 0);
  EXPECT_DOUBLE_EQ(spec.relations[0].cardinality, 500.0);  // snapshot
  EXPECT_EQ(spec.relations[1].table_id, -1);
  EXPECT_DOUBLE_EQ(spec.relations[1].cardinality, 20.0);  // untouched

  // Later catalog changes do NOT retroactively rewrite the snapshot — that
  // is exactly the stale-stats state stats-aware models detect live.
  catalog->SetRowCount("A", 9000.0);
  EXPECT_DOUBLE_EQ(spec.relations[0].cardinality, 500.0);

  spec.BindCatalog(nullptr);
  EXPECT_EQ(spec.relations[0].table_id, -1);
}

}  // namespace
}  // namespace dphyp
