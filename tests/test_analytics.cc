// The analytics (star-schema) workload: every query must validate, solve
// under every applicable algorithm with agreeing costs, match brute force,
// and produce structurally valid plans.
#include "workload/analytics.h"

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "core/dphyp.h"
#include "plan/validate.h"
#include "test_helpers.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

using testing_helpers::BruteForceOptimizer;
using testing_helpers::CostsClose;

class AnalyticsWorkload : public ::testing::TestWithParam<AnalyticsQuery> {};

TEST_P(AnalyticsWorkload, SpecValidates) {
  EXPECT_TRUE(GetParam().spec.Validate().ok());
}

TEST_P(AnalyticsWorkload, DphypSolvesAndPlanValidates) {
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success) << r.error;
  PlanTree plan = r.ExtractPlan(g);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
}

TEST_P(AnalyticsWorkload, AllAlgorithmsAgree) {
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  CardinalityEstimator est(g);
  OptimizeResult reference =
      OptimizeNamed("DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(reference.success);
  for (const char* algo : {"DPsize", "DPsub", "TDbasic", "TDpartition"}) {
    OptimizeResult r = OptimizeNamed(algo, g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << algo;
    EXPECT_TRUE(CostsClose(r.cost, reference.cost)) << algo;
  }
}

TEST_P(AnalyticsWorkload, MatchesBruteForceWhenInnerOnly) {
  const QuerySpec& spec = GetParam().spec;
  bool inner_only = true;
  for (const Predicate& p : spec.predicates) {
    if (p.op != OpType::kJoin) inner_only = false;
  }
  for (const RelationInfo& r : spec.relations) {
    if (!r.free_tables.Empty()) inner_only = false;
  }
  if (!inner_only) GTEST_SKIP() << "brute-force oracle is inner-join only";
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes())));
}

TEST_P(AnalyticsWorkload, FactTableJoinsLate) {
  // Sanity on plan quality: with a 6M-row fact table and tiny dimensions,
  // C_out must be far below the fact-first worst case.
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.cost, 1e13) << "optimal plan unexpectedly expensive";
}

INSTANTIATE_TEST_SUITE_P(Queries, AnalyticsWorkload,
                         ::testing::ValuesIn(AnalyticsQueries()),
                         [](const ::testing::TestParamInfo<AnalyticsQuery>& i) {
                           return i.param.name;
                         });

TEST(AnalyticsCatalog, HasDistinctQueries) {
  auto queries = AnalyticsQueries();
  EXPECT_GE(queries.size(), 6u);
  for (const AnalyticsQuery& q : queries) {
    EXPECT_FALSE(q.name.empty());
    EXPECT_FALSE(q.description.empty());
    EXPECT_GE(q.spec.NumRelations(), 2);
  }
}

}  // namespace
}  // namespace dphyp
