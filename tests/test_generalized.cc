// Generalized hypergraphs (Sec. 6): edges (u, v, w) whose w-members may
// land on either side. Property coverage: DPhyp still finds the brute-force
// optimum, emits exactly the definitional csg-cmp-pairs, and all DP
// variants agree.
#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "hypergraph/connectivity.h"
#include "core/dphyp.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

using testing_helpers::BruteForceOptimizer;
using testing_helpers::CostsClose;

/// Random connected graph with `num_flex` generalized edges added.
QuerySpec MakeRandomGeneralizedQuery(int n, int num_flex, uint64_t seed) {
  QuerySpec spec = MakeRandomGraphQuery(n, 0.1, seed);
  Rng rng(seed ^ 0xabcdef12345ULL);
  for (int e = 0; e < num_flex; ++e) {
    // Draw disjoint u, v (singletons) and a w with 1-2 nodes.
    int u = static_cast<int>(rng.Uniform(n));
    int v = static_cast<int>(rng.Uniform(n));
    if (u == v) v = (v + 1) % n;
    NodeSet w;
    int wsize = 1 + static_cast<int>(rng.Uniform(2));
    while (w.Count() < wsize) {
      int cand = static_cast<int>(rng.Uniform(n));
      if (cand != u && cand != v) w |= NodeSet::Single(cand);
    }
    spec.AddComplexPredicate(NodeSet::Single(u), NodeSet::Single(v),
                             0.05, OpType::kJoin, w);
  }
  spec.FillDefaultPayloads();
  return spec;
}

class GeneralizedEdges : public ::testing::TestWithParam<int> {};

TEST_P(GeneralizedEdges, DphypMatchesBruteForce) {
  const uint64_t seed = GetParam();
  QuerySpec spec = MakeRandomGeneralizedQuery(7, 2, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes())));
}

TEST_P(GeneralizedEdges, DphypEmitsExactlyTheCcps) {
  const uint64_t seed = GetParam();
  QuerySpec spec = MakeRandomGeneralizedQuery(7, 2, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.ccp_pairs, CountCsgCmpPairs(g));
  EXPECT_EQ(r.stats.dp_entries, CountConnectedSubgraphs(g));
}

TEST_P(GeneralizedEdges, AllAlgorithmsAgree) {
  const uint64_t seed = GetParam();
  QuerySpec spec = MakeRandomGeneralizedQuery(7, 2, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  OptimizeResult reference = OptimizeNamed("DPhyp", g, est,
                                      DefaultCostModel());
  ASSERT_TRUE(reference.success);
  for (const char* algo : {"DPsize", "DPsub", "TDbasic"}) {
    OptimizeResult r = OptimizeNamed(algo, g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << algo;
    EXPECT_TRUE(CostsClose(r.cost, reference.cost)) << algo;
    EXPECT_EQ(r.stats.dp_entries, reference.stats.dp_entries)
        << algo;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedEdges, ::testing::Range(1, 21));

TEST(GeneralizedEdges, FlexWideningNeverShrinksTheSearchSpace) {
  // Moving a node from a fixed side into w relaxes the edge: every plan
  // valid under (u ∪ {x}, v, w) is valid under (u, v, w ∪ {x}).
  QuerySpec fixed;
  for (int i = 0; i < 5; ++i) fixed.AddRelation("R" + std::to_string(i), 100);
  fixed.AddSimplePredicate(0, 1, 0.1);
  fixed.AddSimplePredicate(1, 2, 0.1);
  fixed.AddSimplePredicate(2, 3, 0.1);
  fixed.AddSimplePredicate(3, 4, 0.1);
  QuerySpec flexed = fixed;
  fixed.AddComplexPredicate(NodeSet::Single(0) | NodeSet::Single(1),
                            NodeSet::Single(4), 0.05);
  flexed.AddComplexPredicate(NodeSet::Single(0), NodeSet::Single(4), 0.05,
                             OpType::kJoin, /*flex=*/NodeSet::Single(1));
  fixed.FillDefaultPayloads();
  flexed.FillDefaultPayloads();
  uint64_t ccp_fixed =
      CountCsgCmpPairs(BuildHypergraphOrDie(fixed));
  uint64_t ccp_flexed =
      CountCsgCmpPairs(BuildHypergraphOrDie(flexed));
  EXPECT_GE(ccp_flexed, ccp_fixed);
}

TEST(GeneralizedEdges, SoleGeneralizedEdgeSolves) {
  // A query connected *only* through a generalized edge: the w nodes attach
  // via simple edges to both anchors.
  QuerySpec spec;
  for (int i = 0; i < 4; ++i) spec.AddRelation("R" + std::to_string(i), 100);
  spec.AddSimplePredicate(0, 1, 0.1);   // u-side support
  spec.AddSimplePredicate(2, 3, 0.1);   // v-side support
  spec.AddComplexPredicate(NodeSet::Single(0), NodeSet::Single(3), 0.05,
                           OpType::kJoin,
                           NodeSet::Single(1) | NodeSet::Single(2));
  spec.FillDefaultPayloads();
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success) << r.error;
  // Valid splits must place {0,1} vs {2,3} (w split across) or grow one
  // side; verify against the definitional count.
  EXPECT_EQ(r.stats.ccp_pairs, CountCsgCmpPairs(g));
}

}  // namespace
}  // namespace dphyp
