#include "util/subset.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dphyp {
namespace {

TEST(Subsets, EmptyMaskYieldsNothing) {
  int count = 0;
  for (NodeSet s : NonEmptySubsetsOf(NodeSet())) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(Subsets, SingletonMask) {
  std::vector<NodeSet> seen;
  for (NodeSet s : NonEmptySubsetsOf(NodeSet::Single(3))) seen.push_back(s);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], NodeSet::Single(3));
}

TEST(Subsets, IncreasingNumericOrder) {
  NodeSet mask = NodeSet::Single(0) | NodeSet::Single(2) | NodeSet::Single(5);
  uint64_t prev = 0;
  for (NodeSet s : NonEmptySubsetsOf(mask)) {
    EXPECT_GT(s.bits(), prev);
    prev = s.bits();
  }
}

// Property: the Vance-Maier walk enumerates every non-empty subset exactly
// once, for masks of any popcount.
class SubsetCompleteness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubsetCompleteness, AllSubsetsOnce) {
  NodeSet mask(GetParam());
  std::set<uint64_t> seen;
  for (NodeSet s : NonEmptySubsetsOf(mask)) {
    EXPECT_TRUE(s.IsSubsetOf(mask));
    EXPECT_FALSE(s.Empty());
    EXPECT_TRUE(seen.insert(s.bits()).second) << "duplicate subset";
  }
  EXPECT_EQ(seen.size(), (uint64_t{1} << mask.Count()) - 1);
}

TEST_P(SubsetCompleteness, ProperSubsetsExcludeMask) {
  NodeSet mask(GetParam());
  std::set<uint64_t> seen;
  for (NodeSet s : ProperSubsetsOf(mask)) {
    EXPECT_TRUE(s.IsSubsetOf(mask));
    EXPECT_NE(s, mask);
    EXPECT_TRUE(seen.insert(s.bits()).second);
  }
  uint64_t expected = mask.Empty() ? 0 : (uint64_t{1} << mask.Count()) - 2;
  EXPECT_EQ(seen.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Masks, SubsetCompleteness,
    ::testing::Values(0b1ULL, 0b11ULL, 0b1010ULL, 0b110110ULL, 0xFFULL,
                      0b10000000001ULL, 0x8000000000000001ULL, 0x3FFULL));

}  // namespace
}  // namespace dphyp
