// Baseline-specific behaviour: DPsize/DPsub/TDbasic correctness against the
// brute-force oracle, DPccp's simple-graph precondition, and the
// Sec. 4.4 claim that DPhyp degenerates to DPccp on regular graphs.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/dpccp.h"
#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "test_helpers.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::BruteForceOptimizer;
using testing_helpers::CostsClose;
using testing_helpers::OptimizeNamed;

class BaselineOptimality
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(BaselineOptimality, MatchesBruteForceOnRandomGraphs) {
  auto [algo, seed] = GetParam();
  QuerySpec spec = MakeRandomGraphQuery(7, 0.35, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeNamed(algo, g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << algo << ": " << r.error;
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes()))) << algo;
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, BaselineOptimality,
    ::testing::Combine(::testing::Values("DPsize", "DPsub", "DPccp",
                                         "TDbasic", "TDpartition"),
                       ::testing::Range(1, 9)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class HyperBaselineOptimality
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(HyperBaselineOptimality, MatchesBruteForceOnHypergraphs) {
  auto [algo, seed] = GetParam();
  QuerySpec spec = MakeRandomHypergraphQuery(7, 3, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeNamed(algo, g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << algo << ": " << r.error;
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes()))) << algo;
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, HyperBaselineOptimality,
    ::testing::Combine(::testing::Values("DPsize", "DPsub", "TDbasic",
                                         "TDpartition"),
                       ::testing::Range(1, 9)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Dpccp, RejectsHypergraphs) {
  Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, 0));
  // The registry refuses up front (CanHandle), with a structured error.
  Result<OptimizeResult> r = OptimizeByName("DPccp", g);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cannot handle"), std::string::npos);
  // The legacy free function still fails cleanly for direct callers.
  CardinalityEstimator est(g);
  OptimizeResult direct = OptimizeDpccp(g, est, DefaultCostModel());
  EXPECT_FALSE(direct.success);
  EXPECT_NE(direct.error.find("simple"), std::string::npos);
}

TEST(Dpccp, DphypDegeneratesToDpccpOnRegularGraphs) {
  // Sec. 4.4: "DPhyp performs exactly like DPccp on regular graphs" — same
  // emitted pairs, same table, same cost.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    QuerySpec spec = MakeRandomGraphQuery(8, 0.3, seed);
    Hypergraph g = BuildHypergraphOrDie(spec);
    OptimizeResult hyp = OptimizeNamed("DPhyp", g);
    OptimizeResult ccp = OptimizeNamed("DPccp", g);
    ASSERT_TRUE(hyp.success && ccp.success);
    EXPECT_EQ(hyp.stats.ccp_pairs, ccp.stats.ccp_pairs) << seed;
    EXPECT_EQ(hyp.stats.dp_entries, ccp.stats.dp_entries) << seed;
    EXPECT_TRUE(CostsClose(hyp.cost, ccp.cost)) << seed;
  }
}

TEST(TdBasic, MemoizesFailedSets) {
  // A chain has many disconnected subsets; TDbasic must still terminate
  // quickly and find the optimum (regression guard for the failed-set memo).
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(10));
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeNamed("TDbasic", g, est, DefaultCostModel());
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes())));
}

TEST(TdPartition, AvoidsMostFailingTests) {
  // The point of graph-aware top-down partitioning: far fewer candidate
  // tests than the naive 2^|S| split enumeration of TDbasic.
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(12));
  OptimizeResult basic = OptimizeNamed("TDbasic", g);
  OptimizeResult part = OptimizeNamed("TDpartition", g);
  ASSERT_TRUE(basic.success && part.success);
  EXPECT_TRUE(CostsClose(basic.cost, part.cost));
  EXPECT_LT(part.stats.pairs_tested, basic.stats.pairs_tested / 10)
      << "TDpartition should test an order of magnitude fewer candidates";
  EXPECT_EQ(part.stats.dp_entries, basic.stats.dp_entries);
}

TEST(Dpsize, HandlesHyperedgesViaConnectivityTest) {
  // Sec. 4.1: DPsize needs no structural changes for hypergraphs, only a
  // hyperedge-aware (*) test.
  Hypergraph g = BuildHypergraphOrDie(MakeStarHypergraphQuery(8, 1));
  OptimizeResult size = OptimizeNamed("DPsize", g);
  OptimizeResult hyp = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(size.success && hyp.success);
  EXPECT_TRUE(CostsClose(size.cost, hyp.cost));
}

}  // namespace
}  // namespace dphyp
