#include "util/node_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dphyp {
namespace {

TEST(NodeSet, EmptyAndSingleton) {
  NodeSet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Count(), 0);
  EXPECT_FALSE(empty.IsSingleton());

  NodeSet s = NodeSet::Single(5);
  EXPECT_FALSE(s.Empty());
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.Max(), 5);
}

TEST(NodeSet, HighBitSingleton) {
  NodeSet s = NodeSet::Single(63);
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.Min(), 63);
  EXPECT_EQ(s.Max(), 63);
}

TEST(NodeSet, FullSet) {
  EXPECT_EQ(NodeSet::FullSet(0).Count(), 0);
  EXPECT_EQ(NodeSet::FullSet(1).Count(), 1);
  EXPECT_EQ(NodeSet::FullSet(17).Count(), 17);
  EXPECT_EQ(NodeSet::FullSet(64).Count(), 64);
  EXPECT_TRUE(NodeSet::FullSet(17).Contains(16));
  EXPECT_FALSE(NodeSet::FullSet(17).Contains(17));
}

TEST(NodeSet, UpToAndBelow) {
  // B_v of the paper: {w | w <= v}.
  NodeSet b3 = NodeSet::UpTo(3);
  EXPECT_EQ(b3.Count(), 4);
  EXPECT_TRUE(b3.Contains(0) && b3.Contains(3));
  EXPECT_FALSE(b3.Contains(4));

  NodeSet below3 = NodeSet::Below(3);
  EXPECT_EQ(below3.Count(), 3);
  EXPECT_FALSE(below3.Contains(3));
  EXPECT_TRUE(NodeSet::Below(0).Empty());
}

TEST(NodeSet, SetAlgebra) {
  NodeSet a = NodeSet::Single(1) | NodeSet::Single(3) | NodeSet::Single(5);
  NodeSet b = NodeSet::Single(3) | NodeSet::Single(6);
  EXPECT_EQ((a & b), NodeSet::Single(3));
  EXPECT_EQ((a - b), NodeSet::Single(1) | NodeSet::Single(5));
  EXPECT_EQ((a | b).Count(), 4);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((a - b).Intersects(b));
}

TEST(NodeSet, SubsetRelations) {
  NodeSet a = NodeSet::Single(2) | NodeSet::Single(4);
  NodeSet big = a | NodeSet::Single(7);
  EXPECT_TRUE(a.IsSubsetOf(big));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(big.IsSubsetOf(a));
  EXPECT_TRUE(big.IsSupersetOf(a));
  EXPECT_TRUE(NodeSet().IsSubsetOf(a));
}

TEST(NodeSet, MinRepresentatives) {
  // The paper's min(S) and \overline{min}(S) = S \ min(S).
  NodeSet s = NodeSet::Single(4) | NodeSet::Single(5) | NodeSet::Single(6);
  EXPECT_EQ(s.Min(), 4);
  EXPECT_EQ(s.MinSet(), NodeSet::Single(4));
  EXPECT_EQ(s.MinusMin(), NodeSet::Single(5) | NodeSet::Single(6));
  EXPECT_TRUE(NodeSet().MinSet().Empty());
}

TEST(NodeSet, IterationAscending) {
  NodeSet s = NodeSet::Single(9) | NodeSet::Single(0) | NodeSet::Single(33);
  std::vector<int> seen;
  for (int v : s) seen.push_back(v);
  EXPECT_EQ(seen, (std::vector<int>{0, 9, 33}));
}

TEST(NodeSet, ToString) {
  NodeSet s = NodeSet::Single(1) | NodeSet::Single(4);
  EXPECT_EQ(s.ToString(), "{R1, R4}");
  EXPECT_EQ(NodeSet().ToString(), "{}");
}

TEST(NodeSet, HashDistinguishesSets) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.insert(HashNodeSet(NodeSet::Single(i)));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

}  // namespace
}  // namespace dphyp
