// NodeSet unit + differential suite (label: node_set).
//
// Two layers:
//  1. The original narrow (W = 1) unit tests — small, named, deterministic.
//  2. A width-differential backbone: every BasicNodeSet operation runs at
//     W = 1, 2, and 4 against a std::bitset<256> reference model under
//     seeded random inputs (QDL_TEST_SEED via tests/test_rng.h), plus a
//     cross-width agreement sweep proving the multi-word paths compute
//     exactly what the one-word fast path computes on sets that fit in one
//     word, and a death test pinning the DPHYP_DCHECK shift bounds that
//     guard the latent n >= 64 shift UB in Single/UpTo/Below.
#include "util/node_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "test_rng.h"
#include "util/rng.h"

namespace dphyp {
namespace {

using testing_helpers::DerivedSeed;
using testing_helpers::SeedTrace;

TEST(NodeSet, EmptyAndSingleton) {
  NodeSet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Count(), 0);
  EXPECT_FALSE(empty.IsSingleton());

  NodeSet s = NodeSet::Single(5);
  EXPECT_FALSE(s.Empty());
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.Max(), 5);
}

TEST(NodeSet, HighBitSingleton) {
  NodeSet s = NodeSet::Single(63);
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.Min(), 63);
  EXPECT_EQ(s.Max(), 63);
}

TEST(NodeSet, FullSet) {
  EXPECT_EQ(NodeSet::FullSet(0).Count(), 0);
  EXPECT_EQ(NodeSet::FullSet(1).Count(), 1);
  EXPECT_EQ(NodeSet::FullSet(17).Count(), 17);
  EXPECT_EQ(NodeSet::FullSet(64).Count(), 64);
  EXPECT_TRUE(NodeSet::FullSet(17).Contains(16));
  EXPECT_FALSE(NodeSet::FullSet(17).Contains(17));
}

TEST(NodeSet, UpToAndBelow) {
  // B_v of the paper: {w | w <= v}.
  NodeSet b3 = NodeSet::UpTo(3);
  EXPECT_EQ(b3.Count(), 4);
  EXPECT_TRUE(b3.Contains(0) && b3.Contains(3));
  EXPECT_FALSE(b3.Contains(4));

  NodeSet below3 = NodeSet::Below(3);
  EXPECT_EQ(below3.Count(), 3);
  EXPECT_FALSE(below3.Contains(3));
  EXPECT_TRUE(NodeSet::Below(0).Empty());
}

TEST(NodeSet, SetAlgebra) {
  NodeSet a = NodeSet::Single(1) | NodeSet::Single(3) | NodeSet::Single(5);
  NodeSet b = NodeSet::Single(3) | NodeSet::Single(6);
  EXPECT_EQ((a & b), NodeSet::Single(3));
  EXPECT_EQ((a - b), NodeSet::Single(1) | NodeSet::Single(5));
  EXPECT_EQ((a | b).Count(), 4);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((a - b).Intersects(b));
}

TEST(NodeSet, SubsetRelations) {
  NodeSet a = NodeSet::Single(2) | NodeSet::Single(4);
  NodeSet big = a | NodeSet::Single(7);
  EXPECT_TRUE(a.IsSubsetOf(big));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(big.IsSubsetOf(a));
  EXPECT_TRUE(big.IsSupersetOf(a));
  EXPECT_TRUE(NodeSet().IsSubsetOf(a));
}

TEST(NodeSet, MinRepresentatives) {
  // The paper's min(S) and \overline{min}(S) = S \ min(S).
  NodeSet s = NodeSet::Single(4) | NodeSet::Single(5) | NodeSet::Single(6);
  EXPECT_EQ(s.Min(), 4);
  EXPECT_EQ(s.MinSet(), NodeSet::Single(4));
  EXPECT_EQ(s.MinusMin(), NodeSet::Single(5) | NodeSet::Single(6));
  EXPECT_TRUE(NodeSet().MinSet().Empty());
}

TEST(NodeSet, IterationAscending) {
  NodeSet s = NodeSet::Single(9) | NodeSet::Single(0) | NodeSet::Single(33);
  std::vector<int> seen;
  for (int v : s) seen.push_back(v);
  EXPECT_EQ(seen, (std::vector<int>{0, 9, 33}));
}

TEST(NodeSet, ToString) {
  NodeSet s = NodeSet::Single(1) | NodeSet::Single(4);
  EXPECT_EQ(s.ToString(), "{R1, R4}");
  EXPECT_EQ(NodeSet().ToString(), "{}");
}

TEST(NodeSet, HashDistinguishesSets) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.insert(HashNodeSet(NodeSet::Single(i)));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

// --- Width-differential backbone -------------------------------------------
//
// Reference model: std::bitset<256> restricted to the first kMaxNodes bits.
// Every operation the enumeration cores use is recomputed from the bitset
// (or from first principles over its members) and must agree bit-for-bit at
// every width. Inputs are seeded random sets at several densities so the
// sweep covers empty, sparse, dense, and all-ones shapes; failures print
// the reproducing QDL_TEST_SEED via SCOPED_TRACE.

/// The 256-bit reference universe; widths narrower than 4 words simply
/// never set the high bits.
using RefBits = std::bitset<256>;

/// The i-th 64-bit word of the reference model (bit b of word w encodes
/// node w*64 + b — the BasicNodeSet layout).
uint64_t RefWord(const RefBits& ref, int w) {
  uint64_t out = 0;
  for (int b = 0; b < 64; ++b) {
    if (ref.test(w * 64 + b)) out |= uint64_t{1} << b;
  }
  return out;
}

/// Builds the node set from the reference model through the public API.
template <typename NS>
NS FromRef(const RefBits& ref) {
  NS s;
  for (int i = 0; i < NS::kMaxNodes; ++i) {
    if (ref.test(i)) s |= NS::Single(i);
  }
  return s;
}

/// Draws a random set: each of the width's nodes is present independently
/// with probability `density`.
template <typename NS>
RefBits RandomRef(Rng& rng, double density) {
  RefBits ref;
  for (int i = 0; i < NS::kMaxNodes; ++i) {
    if (rng.Bernoulli(density)) ref.set(i);
  }
  return ref;
}

/// Numeric order of the backing integers, computed from the reference
/// model — the oracle for BasicNodeSet::operator<.
bool RefLess(const RefBits& a, const RefBits& b) {
  for (int w = 3; w >= 0; --w) {
    const uint64_t aw = RefWord(a, w);
    const uint64_t bw = RefWord(b, w);
    if (aw != bw) return aw < bw;
  }
  return false;
}

/// Checks every unary observer of `s` against the reference model.
template <typename NS>
void ExpectMatchesRef(NS s, const RefBits& ref) {
  ASSERT_TRUE((ref >> NS::kMaxNodes).none())
      << "reference model holds nodes past this width";
  EXPECT_EQ(s.Empty(), ref.none());
  EXPECT_EQ(s.Count(), static_cast<int>(ref.count()));
  EXPECT_EQ(s.IsSingleton(), ref.count() == 1);
  for (int i = 0; i < NS::kMaxNodes; ++i) {
    ASSERT_EQ(s.Contains(i), ref.test(i)) << "node " << i;
  }
  for (int w = 0; w < NS::kWords; ++w) {
    ASSERT_EQ(s.word(w), RefWord(ref, w)) << "word " << w;
  }

  // Membership-derived observers: Min/Max/MinSet/MinusMin/iteration/
  // ToString, recomputed from the reference member list.
  std::vector<int> members;
  for (int i = 0; i < NS::kMaxNodes; ++i) {
    if (ref.test(i)) members.push_back(i);
  }
  std::vector<int> iterated;
  for (int v : s) iterated.push_back(v);
  EXPECT_EQ(iterated, members);

  std::string expected = "{";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i) expected += ", ";
    expected += "R" + std::to_string(members[i]);
  }
  expected += "}";
  EXPECT_EQ(s.ToString(), expected);

  if (!members.empty()) {
    EXPECT_EQ(s.Min(), members.front());
    EXPECT_EQ(s.Max(), members.back());
    EXPECT_EQ(s.MinSet(), NS::Single(members.front()));
    NS rest = s - NS::Single(members.front());
    EXPECT_EQ(s.MinusMin(), rest);
  } else {
    EXPECT_TRUE(s.MinSet().Empty());
    EXPECT_TRUE(s.MinusMin().Empty());
  }
}

template <typename NS>
class NodeSetDifferential : public ::testing::Test {};

struct WidthNames {
  template <typename NS>
  static std::string GetName(int) {
    return "W" + std::to_string(NS::kWords);
  }
};

using AllWidths = ::testing::Types<NodeSet, WideNodeSet, HugeNodeSet>;
TYPED_TEST_SUITE(NodeSetDifferential, AllWidths, WidthNames);

TYPED_TEST(NodeSetDifferential, ConstructorsMatchReference) {
  using NS = TypeParam;
  for (int i = 0; i < NS::kMaxNodes; ++i) {
    RefBits single;
    single.set(i);
    ExpectMatchesRef(NS::Single(i), single);

    RefBits upto;
    for (int j = 0; j <= i; ++j) upto.set(j);
    ExpectMatchesRef(NS::UpTo(i), upto);
  }
  for (int n = 0; n <= NS::kMaxNodes; ++n) {
    RefBits prefix;
    for (int j = 0; j < n; ++j) prefix.set(j);
    ExpectMatchesRef(NS::FullSet(n), prefix);
    ExpectMatchesRef(NS::Below(n), prefix);
  }
  // FullSet saturates past the width (Below's contract stops at kMaxNodes).
  RefBits all;
  for (int j = 0; j < NS::kMaxNodes; ++j) all.set(j);
  ExpectMatchesRef(NS::FullSet(NS::kMaxNodes + 7), all);
}

TYPED_TEST(NodeSetDifferential, UnaryObserversMatchReferenceOnRandomSets) {
  using NS = TypeParam;
  const double densities[] = {0.02, 0.2, 0.5, 0.9, 1.0};
  for (int i = 0; i < 60; ++i) {
    const uint64_t seed = DerivedSeed(41000 + NS::kWords * 1000 + i);
    SCOPED_TRACE(SeedTrace(seed));
    Rng rng(seed);
    const RefBits ref = RandomRef<NS>(rng, densities[i % 5]);
    ExpectMatchesRef(FromRef<NS>(ref), ref);
  }
  ExpectMatchesRef(NS(), RefBits());  // the empty set, explicitly
}

TYPED_TEST(NodeSetDifferential, BinaryAlgebraMatchesReference) {
  using NS = TypeParam;
  const double densities[] = {0.05, 0.3, 0.7};
  for (int i = 0; i < 80; ++i) {
    const uint64_t seed = DerivedSeed(42000 + NS::kWords * 1000 + i);
    SCOPED_TRACE(SeedTrace(seed));
    Rng rng(seed);
    const RefBits ra = RandomRef<NS>(rng, densities[i % 3]);
    const RefBits rb = RandomRef<NS>(rng, densities[(i + 1) % 3]);
    const NS a = FromRef<NS>(ra);
    const NS b = FromRef<NS>(rb);

    ExpectMatchesRef(a | b, ra | rb);
    ExpectMatchesRef(a & b, ra & rb);
    ExpectMatchesRef(a - b, ra & ~rb);

    NS c = a;
    c |= b;
    EXPECT_EQ(c, a | b);
    c = a;
    c &= b;
    EXPECT_EQ(c, a & b);
    c = a;
    c -= b;
    EXPECT_EQ(c, a - b);

    EXPECT_EQ(a.Intersects(b), (ra & rb).any());
    EXPECT_EQ(a.IsSubsetOf(b), (ra & ~rb).none());
    EXPECT_EQ(a.IsSupersetOf(b), (rb & ~ra).none());
    EXPECT_EQ(a == b, ra == rb);
    EXPECT_EQ(a < b, RefLess(ra, rb));
    EXPECT_EQ(b < a, RefLess(rb, ra));
    EXPECT_FALSE(a < a);
  }
}

TYPED_TEST(NodeSetDifferential, SubsetStepEnumeratesAllSubsetsAscending) {
  using NS = TypeParam;
  for (int i = 0; i < 20; ++i) {
    const uint64_t seed = DerivedSeed(43000 + NS::kWords * 1000 + i);
    SCOPED_TRACE(SeedTrace(seed));
    Rng rng(seed);

    // A mask of up to 10 nodes scattered over the full width, so the walk
    // crosses word boundaries (and exercises the borrow chain) at W > 1.
    std::vector<int> bits;
    while (bits.size() < 10) {
      const int v = static_cast<int>(rng.Uniform(NS::kMaxNodes));
      if (std::find(bits.begin(), bits.end(), v) == bits.end())
        bits.push_back(v);
    }
    NS mask;
    for (int v : bits) mask |= NS::Single(v);

    // Reference: all 2^10 subsets of the mask, in the numeric order
    // operator< defines — the order the Vance–Maier step must produce.
    std::vector<NS> expected;
    for (uint32_t combo = 0; combo < (1u << bits.size()); ++combo) {
      NS sub;
      for (size_t j = 0; j < bits.size(); ++j) {
        if (combo & (1u << j)) sub |= NS::Single(bits[j]);
      }
      expected.push_back(sub);
    }
    std::sort(expected.begin(), expected.end());

    // The walk: state' = (state - mask) & mask from the empty set visits
    // every non-empty subset ascending and returns to the empty set.
    std::vector<NS> visited;
    visited.push_back(NS());
    NS state;
    for (;;) {
      state = NS::SubsetStep(state, mask);
      if (state.Empty()) break;
      visited.push_back(state);
      ASSERT_LE(visited.size(), expected.size()) << "walk failed to cycle";
    }
    std::sort(visited.begin(), visited.end());
    ASSERT_EQ(visited.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      ASSERT_EQ(visited[j], expected[j]) << "subset " << j;
    }
  }
}

TYPED_TEST(NodeSetDifferential, HashIsDeterministicAndWellSpread) {
  using NS = TypeParam;
  std::set<uint64_t> hashes;
  int drawn = 0;
  for (int i = 0; i < 40; ++i) {
    const uint64_t seed = DerivedSeed(44000 + NS::kWords * 1000 + i);
    SCOPED_TRACE(SeedTrace(seed));
    Rng rng(seed);
    const RefBits ref = RandomRef<NS>(rng, 0.4);
    const NS s = FromRef<NS>(ref);
    EXPECT_EQ(HashNodeSet(s), HashNodeSet(FromRef<NS>(ref)));  // value-based
    if (!ref.none()) {
      hashes.insert(HashNodeSet(s));
      ++drawn;
    }
  }
  // 40 random ~0.4-density sets over >= 64 nodes collide with probability
  // ~2^-54; a collision here means the multi-word mixing lost entropy.
  EXPECT_EQ(static_cast<int>(hashes.size()), drawn);

  // W = 1 is pinned: the original splitmix64 finalizer, which the narrow
  // DP-table layout (and iteration-order statistics) depends on.
  if constexpr (NS::kWords == 1) {
    for (int i = 0; i < 64; ++i) {
      const NS s = NS::Single(i);
      EXPECT_EQ(HashNodeSet(s), internal::SplitMix64(s.bits()));
    }
  }
}

// Cross-width agreement: on sets whose members all fit in one word, every
// operation at W = 2 and W = 4 must agree with the W = 1 fast path — the
// property the "all <= 64-relation plans are bit-identical" guarantee of
// the wide tier reduces to.
template <typename NS>
void ExpectSameLowWord(NS wide, NodeSet narrow) {
  ASSERT_EQ(wide.word(0), narrow.bits());
  for (int w = 1; w < NS::kWords; ++w) {
    ASSERT_EQ(wide.word(w), 0u) << "high word " << w << " contaminated";
  }
}

TYPED_TEST(NodeSetDifferential, CrossWidthAgreementOnOneWordSets) {
  using NS = TypeParam;
  if constexpr (NS::kWords == 1) {
    GTEST_SKIP() << "W=1 is the reference side of this comparison";
  } else {
    for (int i = 0; i < 60; ++i) {
      const uint64_t seed = DerivedSeed(45000 + NS::kWords * 1000 + i);
      SCOPED_TRACE(SeedTrace(seed));
      Rng rng(seed);
      const uint64_t abits = rng.Next();
      const uint64_t bbits = rng.Next();
      const NodeSet na(abits), nb(bbits);
      const NS wa = FromRef<NS>(RefBits(abits));
      const NS wb = FromRef<NS>(RefBits(bbits));
      ASSERT_EQ(wa.word(0), abits);
      ASSERT_EQ(wb.word(0), bbits);

      ExpectSameLowWord(wa | wb, na | nb);
      ExpectSameLowWord(wa & wb, na & nb);
      ExpectSameLowWord(wa - wb, na - nb);
      ExpectSameLowWord(wa.MinSet(), na.MinSet());
      ExpectSameLowWord(wa.MinusMin(), na.MinusMin());
      EXPECT_EQ(wa.Count(), na.Count());
      EXPECT_EQ(wa.Empty(), na.Empty());
      EXPECT_EQ(wa.IsSingleton(), na.IsSingleton());
      EXPECT_EQ(wa.ToString(), na.ToString());
      if (!na.Empty()) {
        EXPECT_EQ(wa.Min(), na.Min());
        EXPECT_EQ(wa.Max(), na.Max());
      }
      EXPECT_EQ(wa.Intersects(wb), na.Intersects(nb));
      EXPECT_EQ(wa.IsSubsetOf(wb), na.IsSubsetOf(nb));
      EXPECT_EQ(wa < wb, na < nb);
      EXPECT_EQ(wa == wb, na == nb);

      const int node = static_cast<int>(rng.Uniform(64));
      EXPECT_EQ(wa.Contains(node), na.Contains(node));
      ExpectSameLowWord(NS::Single(node), NodeSet::Single(node));
      ExpectSameLowWord(NS::UpTo(node), NodeSet::UpTo(node));
      ExpectSameLowWord(NS::Below(node), NodeSet::Below(node));
      ExpectSameLowWord(NS::FullSet(node), NodeSet::FullSet(node));

      // The subset walk, step by step, over a one-word mask: both widths
      // must trace the identical sequence.
      if (!na.Empty()) {
        NodeSet nstate;
        NS wstate;
        int steps = 0;
        do {
          nstate = NodeSet::SubsetStep(nstate, na);
          wstate = NS::SubsetStep(wstate, wa);
          ExpectSameLowWord(wstate, nstate);
        } while (!nstate.Empty() && ++steps < 512);
      }
    }
  }
}

// The DPHYP_DCHECK bound guards: Single/UpTo with node >= kMaxNodes (the
// latent one-word shift UB this PR fixed), Below past kMaxNodes, Contains
// out of range, Min/Max on the empty set. Release builds compile the
// checks away (they guard hot loops), so the test self-skips under NDEBUG.
TEST(NodeSetDeathTest, BoundsAreDchecked) {
#if defined(NDEBUG) || !GTEST_HAS_DEATH_TEST
  GTEST_SKIP() << "DPHYP_DCHECK compiles away in NDEBUG";
#else
  // Volatile stops constant folding so the checks run at runtime.
  volatile int past_narrow = NodeSet::kMaxNodes;
  volatile int past_wide = WideNodeSet::kMaxNodes;
  EXPECT_DEATH((void)NodeSet::Single(past_narrow), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)NodeSet::UpTo(past_narrow), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)NodeSet::Below(past_narrow + 1), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)NodeSet::Single(-1), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)WideNodeSet::Single(past_wide), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)HugeNodeSet::UpTo(HugeNodeSet::kMaxNodes),
               "DPHYP_CHECK failed");
  EXPECT_DEATH((void)NodeSet().Contains(past_narrow), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)NodeSet().Min(), "DPHYP_CHECK failed");
  EXPECT_DEATH((void)WideNodeSet().Max(), "DPHYP_CHECK failed");
#endif
}

}  // namespace
}  // namespace dphyp
