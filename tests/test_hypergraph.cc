#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

/// The paper's running example (Fig. 2): simple edges R1-R2, R2-R3, R4-R5,
/// R5-R6 and the hyperedge ({R1,R2,R3},{R4,R5,R6}). Our node indices are
/// zero-based: Ri -> i-1.
Hypergraph Figure2Graph() {
  Hypergraph g;
  for (int i = 0; i < 6; ++i) {
    g.AddNode(HypergraphNode{"R" + std::to_string(i + 1), 100.0, NodeSet()});
  }
  auto simple = [&](int a, int b) {
    Hyperedge e;
    e.left = NodeSet::Single(a);
    e.right = NodeSet::Single(b);
    e.selectivity = 0.1;
    g.AddEdge(e);
  };
  simple(0, 1);  // R1-R2
  simple(1, 2);  // R2-R3
  simple(3, 4);  // R4-R5
  simple(4, 5);  // R5-R6
  Hyperedge hyper;
  hyper.left = Set({0, 1, 2});
  hyper.right = Set({3, 4, 5});
  hyper.selectivity = 0.01;
  g.AddEdge(hyper);
  return g;
}

TEST(Hypergraph, BasicAccessors) {
  Hypergraph g = Figure2Graph();
  EXPECT_EQ(g.NumNodes(), 6);
  EXPECT_EQ(g.NumEdges(), 5);
  EXPECT_EQ(g.complex_edge_ids().size(), 1u);
  EXPECT_EQ(g.SimpleNeighbors(1), Set({0, 2}));
  EXPECT_EQ(g.SimpleNeighbors(4), Set({3, 5}));
  EXPECT_FALSE(g.edge(4).IsSimple());
  EXPECT_TRUE(g.edge(0).IsSimple());
}

TEST(Hypergraph, ConnectsSetsSimple) {
  Hypergraph g = Figure2Graph();
  EXPECT_TRUE(g.ConnectsSets(Set({0}), Set({1})));
  EXPECT_FALSE(g.ConnectsSets(Set({0}), Set({2})));
  EXPECT_TRUE(g.ConnectsSets(Set({0, 1}), Set({2})));
}

TEST(Hypergraph, ConnectsSetsHyper) {
  Hypergraph g = Figure2Graph();
  // The hyperedge connects only sets that fully contain its hypernodes.
  EXPECT_TRUE(g.ConnectsSets(Set({0, 1, 2}), Set({3, 4, 5})));
  EXPECT_FALSE(g.ConnectsSets(Set({0, 1}), Set({3, 4, 5})));
  EXPECT_FALSE(g.ConnectsSets(Set({0, 1, 2}), Set({3, 4})));
  // Supersets on the complement side are fine.
  EXPECT_TRUE(g.ConnectsSets(Set({0, 1, 2}), Set({3, 4, 5})));
}

TEST(Hypergraph, ConnectsSetsBothOrientations) {
  Hypergraph g = Figure2Graph();
  EXPECT_TRUE(g.ConnectsSets(Set({3, 4, 5}), Set({0, 1, 2})));
}

TEST(Hypergraph, ForEachConnectingEdgeReportsOrientation) {
  Hypergraph g = Figure2Graph();
  int count = 0;
  bool left_in_s1 = false;
  g.ForEachConnectingEdge(Set({0, 1, 2}), Set({3, 4, 5}), [&](int id, bool lis) {
    ++count;
    EXPECT_EQ(id, 4);
    left_in_s1 = lis;
  });
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(left_in_s1);

  g.ForEachConnectingEdge(Set({3, 4, 5}), Set({0, 1, 2}),
                          [&](int id, bool lis) {
                            EXPECT_EQ(id, 4);
                            EXPECT_FALSE(lis);
                          });
}

TEST(Hypergraph, GeneralizedEdgeConnectsWithFlexSplit) {
  // Edge ({0}, {2}, w={1}): node 1 may sit on either side (Def. 6/7).
  Hypergraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(HypergraphNode{"", 10.0, NodeSet()});
  Hyperedge e;
  e.left = Set({0});
  e.right = Set({2});
  e.flex = Set({1});
  g.AddEdge(e);
  EXPECT_TRUE(g.ConnectsSets(Set({0, 1}), Set({2})));
  EXPECT_TRUE(g.ConnectsSets(Set({0}), Set({1, 2})));
  // w must be covered by the union.
  EXPECT_FALSE(g.ConnectsSets(Set({0}), Set({2})));
}

TEST(Hypergraph, FreeTables) {
  Hypergraph g;
  g.AddNode(HypergraphNode{"R0", 10.0, NodeSet()});
  g.AddNode(HypergraphNode{"F1", 10.0, Set({0})});  // lateral leaf over R0
  Hyperedge e;
  e.left = Set({0});
  e.right = Set({1});
  g.AddEdge(e);
  EXPECT_TRUE(g.HasDependentLeaves());
  EXPECT_EQ(g.FreeTables(Set({1})), Set({0}));
  // Free tables inside the set are already bound.
  EXPECT_TRUE(g.FreeTables(Set({0, 1})).Empty());
}

TEST(HypergraphBuilder, FromQuerySpec) {
  QuerySpec spec = MakeCycleQuery(5);
  Hypergraph g = BuildHypergraphOrDie(spec);
  EXPECT_EQ(g.NumNodes(), 5);
  EXPECT_EQ(g.NumEdges(), 5);
  EXPECT_TRUE(g.complex_edge_ids().empty());
}

TEST(HypergraphBuilder, RejectsInvalidSpec) {
  QuerySpec spec;
  spec.AddRelation("A", 10.0);
  spec.AddRelation("B", 10.0);
  spec.AddSimplePredicate(0, 1, /*selectivity=*/2.0);  // out of range
  Result<Hypergraph> result = BuildHypergraph(spec);
  EXPECT_FALSE(result.ok());
}

TEST(HypergraphBuilder, RepairsDisconnectedGraphs) {
  // Two components {0,1} and {2,3}: the builder must add a selectivity-1
  // hyperedge between them (Sec. 2.1).
  QuerySpec spec;
  for (int i = 0; i < 4; ++i) spec.AddRelation("R" + std::to_string(i), 10.0);
  spec.AddSimplePredicate(0, 1, 0.1);
  spec.AddSimplePredicate(2, 3, 0.1);
  Hypergraph g = BuildHypergraphOrDie(spec);
  EXPECT_EQ(g.NumEdges(), 3);
  const Hyperedge& repair = g.edge(2);
  EXPECT_EQ(repair.predicate_id, -1);
  EXPECT_DOUBLE_EQ(repair.selectivity, 1.0);
  EXPECT_EQ(repair.left | repair.right, NodeSet::FullSet(4));
  EXPECT_TRUE(g.ConnectsSets(Set({0, 1}), Set({2, 3})));
}

}  // namespace
}  // namespace dphyp
