// The beyond-exact frontier (label: frontier): the contracts the idp-k and
// anneal enumerators add past the exact-DP feasibility frontier —
// determinism of the seeded annealing walk across runs and thread counts,
// idp-k's window-collapse behavior on a hand-checkable chain (and its
// degeneration to exact DPhyp when the window covers the graph), graceful
// deadline degradation mid-anneal (best-so-far plan, never the GOO
// fallback swap), and the dispatch auction routing past-frontier shapes to
// the new bidders while in-frontier shapes stay exact.
#include <gtest/gtest.h>

#include <string>

#include "baselines/goo.h"
#include "core/dphyp.h"
#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "plan/validate.h"
#include "service/dispatch.h"
#include "service/session.h"
#include "test_helpers.h"
#include "test_rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::DerivedSeed;
using testing_helpers::OptimizeNamed;
using testing_helpers::SeedTrace;

// --- Anneal determinism ------------------------------------------------------

TEST(AnnealDeterminism, FixedSeedIsBitIdenticalAcrossRunsAndThreadCounts) {
  // The annealing walk is driven solely by options.random_seed: repeated
  // runs — and runs under different parallel_threads settings, which the
  // single-threaded walk must ignore — produce the identical plan, not
  // just the identical cost.
  const uint64_t seed = DerivedSeed(42);
  SCOPED_TRACE(SeedTrace(seed));
  Hypergraph g = BuildHypergraphOrDie(MakeRandomGraphQuery(26, 0.12, seed));
  CardinalityEstimator est(g);

  OptimizerOptions options;
  options.random_seed = 0xfeedULL;
  OptimizeResult first =
      OptimizeNamed("anneal", g, est, DefaultCostModel(), options);
  ASSERT_TRUE(first.success) << first.error;
  const std::string first_plan = first.ExtractPlan(g).ToAlgebraString(g);

  for (int threads : {1, 4, 8}) {
    OptimizerOptions repeat = options;
    repeat.parallel_threads = threads;
    OptimizeResult r =
        OptimizeNamed("anneal", g, est, DefaultCostModel(), repeat);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_DOUBLE_EQ(r.cost, first.cost) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.cardinality, first.cardinality)
        << "threads=" << threads;
    EXPECT_EQ(r.ExtractPlan(g).ToAlgebraString(g), first_plan)
        << "threads=" << threads;
  }

  // A different seed still yields a valid plan no worse than GOO (the walk
  // may or may not land on the same local optimum; only validity and the
  // quality floor are contractual).
  OptimizerOptions other_seed;
  other_seed.random_seed = 0xdecafULL;
  OptimizeResult other =
      OptimizeNamed("anneal", g, est, DefaultCostModel(), other_seed);
  ASSERT_TRUE(other.success) << other.error;
  EXPECT_TRUE(ValidatePlanTree(g, other.ExtractPlan(g)).ok());
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);
  EXPECT_LE(other.cost, goo.cost);
}

// --- IDP window collapse -----------------------------------------------------

TEST(IdpWindows, ChainTwentyWindowFiveCollapsesToTheOptimum) {
  // chain-20 is exact-feasible (DPccp solves it in microseconds), which
  // makes it the hand-checkable case: the true optimum is known, GOO gives
  // the quality floor, and a 5-relation window forces idp-k through many
  // optimize-collapse rounds (each round freezes one window subtree into a
  // compound component) rather than the full-window short-circuit.
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(20));
  CardinalityEstimator est(g);

  OptimizeResult exact = OptimizeNamed("DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(exact.success) << exact.error;
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);

  OptimizerOptions options;
  options.idp_window = 5;
  OptimizeResult idp =
      OptimizeNamed("idp-k", g, est, DefaultCostModel(), options);
  ASSERT_TRUE(idp.success) << idp.error;
  EXPECT_STREQ(idp.stats.algorithm, "idp-k");
  EXPECT_FALSE(idp.stats.aborted);
  PlanTree plan = idp.ExtractPlan(g);
  EXPECT_TRUE(ValidatePlanTree(g, plan).ok());
  EXPECT_EQ(plan.root()->set, g.AllNodes());
  // Sandwiched between the known optimum and the greedy floor; on a chain
  // the windowed assembly is expected to land on the optimum itself.
  EXPECT_GE(idp.cost, exact.cost);
  EXPECT_LE(idp.cost, goo.cost);
  EXPECT_DOUBLE_EQ(idp.cost, exact.cost);
}

TEST(IdpWindows, CoveringWindowIsExactDphypOnChainTwenty) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(20));
  CardinalityEstimator est(g);
  OptimizeResult exact = OptimizeNamed("DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(exact.success) << exact.error;

  OptimizerOptions options;
  options.idp_window = 20;
  OptimizeResult idp =
      OptimizeNamed("idp-k", g, est, DefaultCostModel(), options);
  ASSERT_TRUE(idp.success) << idp.error;
  EXPECT_STREQ(idp.stats.algorithm, "idp-k");
  EXPECT_DOUBLE_EQ(idp.cost, exact.cost);
  EXPECT_EQ(idp.stats.dp_entries, exact.stats.dp_entries);
  EXPECT_EQ(idp.ExtractPlan(g).ToAlgebraString(g),
            exact.ExtractPlan(g).ToAlgebraString(g));
}

TEST(IdpWindows, ShrinkingWindowsNeverBeatGrowingOnesPastTheFloor) {
  // Larger windows see strictly more of the search space per round; every
  // window size must stay at or under the GOO floor regardless.
  const uint64_t seed = DerivedSeed(77);
  SCOPED_TRACE(SeedTrace(seed));
  Hypergraph g = BuildHypergraphOrDie(MakeRandomGraphQuery(24, 0.15, seed));
  CardinalityEstimator est(g);
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);

  for (int window : {2, 4, 8, 16}) {
    OptimizerOptions options;
    options.idp_window = window;
    OptimizeResult idp =
        OptimizeNamed("idp-k", g, est, DefaultCostModel(), options);
    ASSERT_TRUE(idp.success) << "window=" << window << ": " << idp.error;
    EXPECT_TRUE(ValidatePlanTree(g, idp.ExtractPlan(g)).ok())
        << "window=" << window;
    EXPECT_LE(idp.cost, goo.cost) << "window=" << window;
  }
}

// --- Graceful deadline degradation -------------------------------------------

TEST(FrontierDeadline, MidAnnealDeadlineServesBestSoFarNotGooFallback) {
  // An effectively unbounded move budget with a tiny deadline guarantees
  // the cancellation token fires mid-walk. The contract is graceful
  // degradation: the walk stops where it is and serves its best-so-far
  // plan with stats.aborted left false — the session must NOT treat this
  // as an abort and swap in the GOO fallback (the served algorithm stays
  // "anneal").
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(30));
  CardinalityEstimator est(g);

  OptimizationSession session;
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "anneal";
  request.options.anneal_moves = 100'000'000;  // hours without the deadline
  request.deadline_ms = 25.0;

  Result<OptimizeResult> served = session.Optimize(request);
  ASSERT_TRUE(served.ok()) << served.error().message;
  const OptimizeResult& r = served.value();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "anneal");
  EXPECT_FALSE(r.stats.aborted);
  EXPECT_TRUE(ValidatePlanTree(g, r.ExtractPlan(g)).ok());
  // Best-so-far starts at the GOO-seeded tree, so the served plan can
  // never cost more than a direct GOO run.
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);
  EXPECT_LE(r.cost, goo.cost);
}

TEST(FrontierDeadline, MidIdpDeadlineStillServesACompletePlan) {
  // Same contract for idp-k: the token firing between windows degrades the
  // remaining rounds to greedy completion — a complete valid plan, never a
  // session-level abort/fallback swap.
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(28));
  CardinalityEstimator est(g);

  OptimizationSession session;
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "idp-k";
  request.options.idp_window = 14;  // big windows: each round takes a while
  request.deadline_ms = 5.0;

  Result<OptimizeResult> served = session.Optimize(request);
  ASSERT_TRUE(served.ok()) << served.error().message;
  const OptimizeResult& r = served.value();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "idp-k");
  EXPECT_FALSE(r.stats.aborted);
  PlanTree plan = r.ExtractPlan(g);
  EXPECT_TRUE(ValidatePlanTree(g, plan).ok());
  EXPECT_EQ(plan.root()->set, g.AllNodes());
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);
  EXPECT_LE(r.cost, goo.cost);
}

// --- Dispatch past the frontier ----------------------------------------------

TEST(FrontierDispatch, NewBiddersWinPastTheFrontierExactKeepsTheInside) {
  // Past-frontier inner-join shapes go to iterative DP.
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(30))).Name(),
               "idp-k");
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeStarQuery(26))).Name(),
               "idp-k");
  // Inside the frontier nothing changes: small dense stays on DPsub,
  // chains stay on DPccp at any size.
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(12))).Name(),
               "DPsub");
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeChainQuery(40))).Name(),
               "DPccp");
  // Past-frontier graphs with non-inner operators: idp-k's CanHandle
  // refuses them (its component collapse assumes freely reorderable inner
  // joins), so the annealing walk — whose moves are vetted by the conflict
  // rules — takes the route instead of the bare GOO floor.
  QuerySpec outer_star = MakeStarQuery(24);
  outer_star.predicates[0].op = OpType::kLeftOuterjoin;
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(outer_star)).Name(),
               "anneal");
}

TEST(FrontierDispatch, AdaptiveRunProducesValidPlansOnFrontierShapes) {
  // End-to-end through OptimizeAdaptive: the auction picks the new
  // bidders and their plans validate.
  for (const QuerySpec& spec :
       {MakeCliqueQuery(30), MakeStarQuery(26)}) {
    Hypergraph g = BuildHypergraphOrDie(spec);
    OptimizeResult r = OptimizeAdaptive(g);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_STREQ(r.stats.algorithm, "idp-k");
    EXPECT_TRUE(ValidatePlanTree(g, r.ExtractPlan(g)).ok());
  }
}

}  // namespace
}  // namespace dphyp
