// AdmissionController units (watermarks, token buckets — under a manual
// clock, so every refill is deterministic) and the PlanService::Serve
// integration: soft-watermark downgrade to GOO, hard-watermark rejection
// with retry-after, and two-tenant fairness under a 10:1 offered-load skew.
#include "service/admission.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/plan_service.h"
#include "test_rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

TEST(Admission, DefaultsAdmitEverything) {
  AdmissionController controller;
  for (int i = 0; i < 100; ++i) {
    AdmissionDecision d = controller.Admit("");
    EXPECT_EQ(d.verdict, AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(controller.depth(), 100);
  AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.admitted, 100u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.peak_depth, 100);
}

TEST(Admission, SoftWatermarkDegrades) {
  AdmissionOptions opts;
  opts.soft_watermark = 2;
  AdmissionController controller(opts);

  EXPECT_EQ(controller.Admit("").verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.Admit("").verdict, AdmissionVerdict::kAdmit);
  // Third concurrent request exceeds the soft watermark: admitted, but on
  // the fast path.
  AdmissionDecision d = controller.Admit("");
  EXPECT_EQ(d.verdict, AdmissionVerdict::kDegrade);
  EXPECT_NE(std::string(d.reason).find("soft watermark"), std::string::npos);
  EXPECT_EQ(controller.depth(), 3);  // degraded requests occupy a slot too

  // Releases bring the depth back under the watermark; admission recovers.
  controller.Release();
  controller.Release();
  EXPECT_EQ(controller.Admit("").verdict, AdmissionVerdict::kAdmit);
}

TEST(Admission, HardWatermarkRejectsWithRetryAfter) {
  AdmissionOptions opts;
  opts.soft_watermark = 1;
  opts.hard_watermark = 2;
  opts.retry_after_ms = 40.0;
  AdmissionController controller(opts);

  EXPECT_EQ(controller.Admit("a").verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.Admit("a").verdict, AdmissionVerdict::kDegrade);
  AdmissionDecision d = controller.Admit("a");
  EXPECT_EQ(d.verdict, AdmissionVerdict::kReject);
  EXPECT_NE(std::string(d.reason).find("hard watermark"), std::string::npos);
  EXPECT_EQ(d.retry_after_ms, 40.0);
  // Rejection occupies no slot.
  EXPECT_EQ(controller.depth(), 2);

  AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.rejected, 1u);
  ASSERT_EQ(stats.tenant_rejects.count("a"), 1u);
  EXPECT_EQ(stats.tenant_rejects.at("a"), 1u);
}

TEST(Admission, TokenBucketEnforcesRateUnderManualClock) {
  AdmissionOptions opts;
  opts.tenant_rate_per_sec = 2.0;
  opts.tenant_burst = 4.0;
  double now_s = 0.0;
  AdmissionController controller(opts, [&now_s] { return now_s; });

  // A fresh tenant starts with a full burst of 4 tokens.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(controller.Admit("t").verdict, AdmissionVerdict::kAdmit) << i;
    controller.Release();
  }
  AdmissionDecision empty = controller.Admit("t");
  EXPECT_EQ(empty.verdict, AdmissionVerdict::kReject);
  EXPECT_NE(std::string(empty.reason).find("token bucket"),
            std::string::npos);
  // One token refills in 1/rate = 500 ms; the hint says so.
  EXPECT_EQ(empty.retry_after_ms, 500.0);

  // Half a second later exactly one token has refilled.
  now_s = 0.5;
  EXPECT_EQ(controller.Admit("t").verdict, AdmissionVerdict::kAdmit);
  controller.Release();
  EXPECT_EQ(controller.Admit("t").verdict, AdmissionVerdict::kReject);

  // The refill is capped at the burst: a long idle stretch does not bank
  // unbounded credit.
  now_s = 100.0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(controller.Admit("t").verdict, AdmissionVerdict::kAdmit) << i;
    controller.Release();
  }
  EXPECT_EQ(controller.Admit("t").verdict, AdmissionVerdict::kReject);
}

TEST(Admission, BucketsAreIndependentPerTenant) {
  AdmissionOptions opts;
  opts.tenant_rate_per_sec = 1.0;
  opts.tenant_burst = 2.0;
  double now_s = 0.0;
  AdmissionController controller(opts, [&now_s] { return now_s; });

  // Tenant "heavy" drains its own bucket dry...
  EXPECT_EQ(controller.Admit("heavy").verdict, AdmissionVerdict::kAdmit);
  controller.Release();
  EXPECT_EQ(controller.Admit("heavy").verdict, AdmissionVerdict::kAdmit);
  controller.Release();
  EXPECT_EQ(controller.Admit("heavy").verdict, AdmissionVerdict::kReject);
  // ...and tenant "light" is entirely unaffected.
  EXPECT_EQ(controller.Admit("light").verdict, AdmissionVerdict::kAdmit);
  controller.Release();

  AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.tenant_rejects.count("light"), 0u);
  EXPECT_EQ(stats.tenant_rejects.at("heavy"), 1u);
}

// --- PlanService::Serve integration ----------------------------------------

// Past the soft watermark, a Serve request is downgraded: the served plan
// comes from GOO, the result says so, and the plan is NOT cached (the next
// uncontended request for the key gets the exact route).
TEST(AdmissionService, SoftWatermarkDowngradesToGoo) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::DerivedSeed(31)));
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.admission.soft_watermark = 1;
  // Coalescing off: both requests below target the same fingerprint, and
  // this test wants the second to run its own (degraded) optimization
  // rather than wait on the first.
  opts.coalesce = false;
  PlanService service(opts);
  QuerySpec spec = MakeCliqueQuery(9);

  // Occupy the only under-watermark slot for the duration of the probe.
  AdmissionDecision held = service.admission().Admit("bg");
  ASSERT_EQ(held.verdict, AdmissionVerdict::kAdmit);

  QueryRequest request;
  request.spec = &spec;
  ServiceResult degraded = service.Serve(request);
  service.admission().Release();

  ASSERT_TRUE(degraded.success) << degraded.error;
  EXPECT_TRUE(degraded.degraded);
  EXPECT_FALSE(degraded.rejected);
  EXPECT_EQ(degraded.algorithm, "GOO");

  // The degraded plan was served, not remembered: the next request misses
  // the cache and gets the exact route.
  ServiceResult exact = service.Serve(request);
  ASSERT_TRUE(exact.success) << exact.error;
  EXPECT_FALSE(exact.cache_hit);
  EXPECT_FALSE(exact.degraded);
  EXPECT_NE(exact.algorithm, "GOO");
  // GOO is greedy: on this clique it may or may not match the exact cost,
  // but it can never beat it.
  EXPECT_GE(degraded.cost, exact.cost);

  ServiceStats stats = service.LifetimeStats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.peak_queue_depth, 2);
}

// Past the hard watermark, Serve rejects without touching the optimizer:
// structured error, retry-after hint, per-tenant reject accounting.
TEST(AdmissionService, HardWatermarkRejects) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.admission.soft_watermark = 1;
  opts.admission.hard_watermark = 1;
  opts.admission.retry_after_ms = 15.0;
  PlanService service(opts);
  QuerySpec spec = MakeChainQuery(5);

  AdmissionDecision held = service.admission().Admit("bg");
  ASSERT_EQ(held.verdict, AdmissionVerdict::kAdmit);

  QueryRequest request;
  request.spec = &spec;
  request.tenant = "dashboards";
  ServiceResult rejected = service.Serve(request);
  service.admission().Release();

  EXPECT_FALSE(rejected.success);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_EQ(rejected.retry_after_ms, 15.0);
  EXPECT_NE(rejected.error.find("hard watermark"), std::string::npos);

  ServiceStats stats = service.LifetimeStats();
  EXPECT_EQ(stats.rejected, 1u);
  ASSERT_EQ(stats.tenant_rejects.count("dashboards"), 1u);
  EXPECT_EQ(stats.tenant_rejects.at("dashboards"), 1u);

  // With the slot released, the same request is served normally.
  ServiceResult served = service.Serve(request);
  EXPECT_TRUE(served.success) << served.error;
}

// Two tenants at a 10:1 offered-load skew against per-tenant buckets sized
// for the fair share: the light tenant stays entirely inside its burst and
// is never rejected; the heavy tenant eats every rejection.
TEST(AdmissionService, TenantFairShareUnderSkew) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::DerivedSeed(32)));
  ServiceOptions opts;
  opts.num_threads = 1;
  // A low refill rate so even heavy sanitizer slowdowns (the loop taking
  // seconds instead of milliseconds) refill only a handful of tokens.
  opts.admission.tenant_rate_per_sec = 5.0;
  opts.admission.tenant_burst = 20.0;
  PlanService service(opts);
  QuerySpec spec = MakeChainQuery(5);

  // 110 requests, 10:1 heavy:light, issued back-to-back — far above the
  // 5/s refill for the heavy tenant, comfortably inside the light
  // tenant's 20-token burst.
  int heavy_rejects = 0, light_rejects = 0;
  int heavy_sent = 0, light_sent = 0;
  for (int i = 0; i < 110; ++i) {
    QueryRequest request;
    request.spec = &spec;
    const bool heavy = (i % 11) != 0;
    request.tenant = heavy ? "heavy" : "light";
    ServiceResult r = service.Serve(request);
    if (heavy) {
      ++heavy_sent;
      heavy_rejects += r.rejected ? 1 : 0;
    } else {
      ++light_sent;
      light_rejects += r.rejected ? 1 : 0;
    }
  }
  EXPECT_EQ(heavy_sent, 100);
  EXPECT_EQ(light_sent, 10);
  EXPECT_EQ(light_rejects, 0);
  // The heavy tenant offered 100 in well under a second against a
  // 20-token burst: most of its traffic must have been rejected. The
  // exact count depends on wall-clock refill, so bound it loosely.
  EXPECT_GE(heavy_rejects, 40);

  ServiceStats stats = service.LifetimeStats();
  EXPECT_EQ(stats.tenant_rejects.count("light"), 0u);
  EXPECT_EQ(stats.tenant_rejects.at("heavy"),
            static_cast<uint64_t>(heavy_rejects));
}

}  // namespace
}  // namespace dphyp
