// Reproducible randomness for every randomized test in the suite.
//
// All random test inputs derive from ONE base seed, read from the
// QDL_TEST_SEED environment variable (decimal; unset means the built-in
// default). CI runs the fuzz label under several seeds; a failure is
// reproduced locally by exporting the seed the trace names:
//
//   QDL_TEST_SEED=123456 ctest -L fuzz
//
// Tests must not bake the seed into gtest *names* (ctest registers names
// at build time, so env-dependent names would break runtime seed
// overrides); instead they derive per-case seeds as BaseTestSeed() + salt
// and attach a SeedTrace so every assertion failure prints the seed that
// produced the input.
#ifndef DPHYP_TESTS_TEST_RNG_H_
#define DPHYP_TESTS_TEST_RNG_H_

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/rng.h"

namespace dphyp {
namespace testing_helpers {

/// The suite-wide base seed: QDL_TEST_SEED when set, `fallback` otherwise.
inline uint64_t BaseTestSeed(uint64_t fallback = 42) {
  static const uint64_t seed = [] {
    const char* env = std::getenv("QDL_TEST_SEED");
    if (env == nullptr || *env == '\0') return uint64_t{0};
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }();
  const char* env = std::getenv("QDL_TEST_SEED");
  return (env == nullptr || *env == '\0') ? fallback : seed;
}

/// Derives the seed for one case from the base seed and a per-case salt
/// (splitmix-style mixing, so consecutive salts give uncorrelated seeds).
inline uint64_t DerivedSeed(uint64_t salt) {
  uint64_t z = BaseTestSeed() + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The deterministic generator for test bodies that draw directly: seeded
/// from the base seed plus a salt. Exposes the seed for failure messages.
class TestRng : public Rng {
 public:
  explicit TestRng(uint64_t salt = 0)
      : Rng(DerivedSeed(salt)), salt_(salt) {}

  uint64_t salt() const { return salt_; }

 private:
  uint64_t salt_;
};

/// Message for SCOPED_TRACE so assertion failures name the reproduction
/// command. `case_seed` is the value actually fed to the generator.
inline std::string SeedTrace(uint64_t case_seed) {
  return "case seed " + std::to_string(case_seed) +
         " (reproduce the whole run with QDL_TEST_SEED=" +
         std::to_string(BaseTestSeed()) + ")";
}

}  // namespace testing_helpers
}  // namespace dphyp

#endif  // DPHYP_TESTS_TEST_RNG_H_
