// DPhyp correctness: optimality against an independent brute force, the
// Fig. 2 running example, plan validity, and structural properties.
#include "core/dphyp.h"

#include <gtest/gtest.h>

#include <functional>

#include "hypergraph/builder.h"
#include "hypergraph/connectivity.h"
#include "test_helpers.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::BruteForceOptimizer;
using testing_helpers::CostsClose;

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

QuerySpec Figure2Spec() {
  QuerySpec spec;
  for (int i = 0; i < 6; ++i) spec.AddRelation("R" + std::to_string(i + 1), 100.0);
  spec.AddSimplePredicate(0, 1, 0.1);
  spec.AddSimplePredicate(1, 2, 0.2);
  spec.AddSimplePredicate(3, 4, 0.1);
  spec.AddSimplePredicate(4, 5, 0.2);
  spec.AddComplexPredicate(Set({0, 1, 2}), Set({3, 4, 5}), 0.01);
  return spec;
}

TEST(Dphyp, SingleRelation) {
  QuerySpec spec;
  spec.AddRelation("only", 42.0);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_DOUBLE_EQ(r.cardinality, 42.0);
}

TEST(Dphyp, TwoRelations) {
  QuerySpec spec;
  spec.AddRelation("A", 10.0);
  spec.AddRelation("B", 50.0);
  spec.AddSimplePredicate(0, 1, 0.1);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.cardinality, 10.0 * 50.0 * 0.1);
  EXPECT_DOUBLE_EQ(r.cost, 50.0);  // C_out: one intermediate result
  EXPECT_EQ(r.stats.ccp_pairs, 1u);
}

TEST(Dphyp, Figure2ExampleSolves) {
  Hypergraph g = BuildHypergraphOrDie(Figure2Spec());
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success) << r.error;
  // The trace in Fig. 3 shows the table reaching the full set; the plan must
  // assemble both chains before crossing the hyperedge.
  PlanTree tree = r.ExtractPlan(g);
  EXPECT_EQ(tree.root()->set, NodeSet::FullSet(6));
  // Root operator must carry the hyperedge predicate (edge 4).
  ASSERT_FALSE(tree.root()->edge_ids.empty());
  EXPECT_EQ(tree.root()->edge_ids[0], 4);
  // Its children are exactly the two chains.
  EXPECT_TRUE((tree.root()->left->set == Set({0, 1, 2}) &&
               tree.root()->right->set == Set({3, 4, 5})) ||
              (tree.root()->left->set == Set({3, 4, 5}) &&
               tree.root()->right->set == Set({0, 1, 2})));
}

TEST(Dphyp, Figure2TableContainsOnlyConnectedSets) {
  Hypergraph g = BuildHypergraphOrDie(Figure2Spec());
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success);
  ConnectivityTester tester(g);
  for (const PlanEntry* e : r.table().entries()) {
    EXPECT_TRUE(tester.IsConnected(e->set)) << e->set.ToString();
  }
  EXPECT_EQ(r.stats.dp_entries, CountConnectedSubgraphs(g));
}

TEST(Dphyp, DisconnectedWithoutRepairFails) {
  Hypergraph g;
  g.AddNode(HypergraphNode{"A", 10.0, NodeSet()});
  g.AddNode(HypergraphNode{"B", 10.0, NodeSet()});
  // No edges: not connected, no repair (raw graph, not via builder).
  OptimizeResult r = OptimizeDphyp(g);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.error.empty());
}

TEST(Dphyp, PlanIsValidTree) {
  Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, 2));
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success);
  PlanTree tree = r.ExtractPlan(g);
  // Every inner node: children partition the set, and some edge connects
  // them.
  std::function<void(const PlanTreeNode*)> walk = [&](const PlanTreeNode* n) {
    if (n->IsLeaf()) {
      EXPECT_TRUE(n->set.IsSingleton());
      return;
    }
    EXPECT_EQ(n->left->set | n->right->set, n->set);
    EXPECT_FALSE(n->left->set.Intersects(n->right->set));
    EXPECT_TRUE(g.ConnectsSets(n->left->set, n->right->set));
    EXPECT_FALSE(n->edge_ids.empty());
    walk(n->left);
    walk(n->right);
  };
  walk(tree.root());
}

// Optimality against the independent brute force, over the classic graph
// shapes at several sizes.
struct ShapeCase {
  const char* shape;
  int n;
};

class DphypOptimality : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(DphypOptimality, MatchesBruteForce) {
  const auto& param = GetParam();
  QuerySpec spec;
  std::string shape = param.shape;
  if (shape == "chain") {
    spec = MakeChainQuery(param.n);
  } else if (shape == "cycle") {
    spec = MakeCycleQuery(param.n);
  } else if (shape == "star") {
    spec = MakeStarQuery(param.n - 1);
  } else {
    spec = MakeCliqueQuery(param.n);
  }
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes())))
      << r.cost << " vs " << brute.BestCost(g.AllNodes());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DphypOptimality,
    ::testing::Values(ShapeCase{"chain", 2}, ShapeCase{"chain", 5},
                      ShapeCase{"chain", 8}, ShapeCase{"cycle", 3},
                      ShapeCase{"cycle", 6}, ShapeCase{"cycle", 9},
                      ShapeCase{"star", 4}, ShapeCase{"star", 7},
                      ShapeCase{"star", 10}, ShapeCase{"clique", 4},
                      ShapeCase{"clique", 6}, ShapeCase{"clique", 8}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return std::string(info.param.shape) + std::to_string(info.param.n);
    });

// Optimality on random hypergraphs — the paper's actual subject matter.
class DphypHypergraphOptimality : public ::testing::TestWithParam<int> {};

TEST_P(DphypHypergraphOptimality, MatchesBruteForceOnRandomHypergraphs) {
  const uint64_t seed = GetParam();
  QuerySpec spec = MakeRandomHypergraphQuery(7, 3, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  BruteForceOptimizer brute(g, est, DefaultCostModel());
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DphypHypergraphOptimality,
                         ::testing::Range(1, 26));

// Optimality under the alternative cost model as well.
TEST(Dphyp, OptimalUnderHashModel) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    QuerySpec spec = MakeRandomGraphQuery(7, 0.3, seed);
    Hypergraph g = BuildHypergraphOrDie(spec);
    CardinalityEstimator est(g);
    HashJoinModel model;
    BruteForceOptimizer brute(g, est, model);
    OptimizeResult r = OptimizeDphyp(g, est, model);
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(CostsClose(r.cost, brute.BestCost(g.AllNodes()))) << seed;
  }
}

TEST(Dphyp, SplitSeriesAllSolve) {
  for (int splits = 0; splits <= 3; ++splits) {
    Hypergraph g = BuildHypergraphOrDie(MakeCycleHypergraphQuery(8, splits));
    OptimizeResult r = OptimizeDphyp(g);
    ASSERT_TRUE(r.success) << "cycle splits=" << splits;
  }
  for (int splits = 0; splits <= 3; ++splits) {
    Hypergraph g = BuildHypergraphOrDie(MakeStarHypergraphQuery(8, splits));
    OptimizeResult r = OptimizeDphyp(g);
    ASSERT_TRUE(r.success) << "star splits=" << splits;
  }
}

}  // namespace
}  // namespace dphyp
