// The api_redesign surface: the Enumerator registry (stub registration +
// registry-driven routing), OptimizerWorkspace reuse (bit-identical costs,
// no cross-query leakage), and deadline-aware OptimizationSessions (abort +
// GOO fallback with bounded overshoot).
#include "service/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/goo.h"
#include "core/dphyp.h"
#include "core/enumerator.h"
#include "core/workspace.h"
#include "hypergraph/builder.h"
#include "plan/validate.h"
#include "service/dispatch.h"
#include "service/plan_service.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(EnumeratorRegistry, BuiltInsAreRegistered) {
  auto& registry = EnumeratorRegistry::Global();
  for (const char* name : {"DPhyp", "DPccp", "DPsub", "DPsize", "TDbasic",
                           "TDpartition", "GOO"}) {
    EXPECT_NE(registry.FindOrNull(name), nullptr) << name;
  }
  EXPECT_GE(registry.All().size(), 7u);
}

TEST(EnumeratorRegistry, LookupIsCaseInsensitive) {
  auto& registry = EnumeratorRegistry::Global();
  EXPECT_EQ(registry.FindOrNull("dphyp"), registry.FindOrNull("DPhyp"));
  EXPECT_EQ(registry.FindOrNull("TDPARTITION"),
            registry.FindOrNull("TDpartition"));
}

TEST(EnumeratorRegistry, UnknownNameIsAStructuredError) {
  Result<const Enumerator*> found =
      EnumeratorRegistry::Global().Find("definitely-not-registered");
  ASSERT_FALSE(found.ok());
  EXPECT_NE(found.error().message.find("unknown enumerator"),
            std::string::npos);
  // The error lists what *is* registered, for discoverability.
  EXPECT_NE(found.error().message.find("DPhyp"), std::string::npos);
}

TEST(OptimizeByName, UnknownNameIsAStructuredError) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(4));
  Result<OptimizeResult> r = OptimizeByName("nope", g);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown enumerator"), std::string::npos);
}

// A stub strategy that outbids everything on one specific shape (3-node
// chains) and otherwise never bids. Its Run delegates to GOO and restamps
// the algorithm name, so the result is a real, valid plan.
class StubEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "StubEnum"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  bool Exact() const override { return false; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy&) const override {
    if (shape.num_nodes == 3 && shape.num_edges == 2) {
      return {1e9, "stub claims 3-node chains"};
    }
    return {};
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    OptimizeResult r = OptimizeGoo(*request.graph, *request.estimator,
                                   *request.cost_model, request.options,
                                   &workspace);
    r.stats.algorithm = "StubEnum";
    return r;
  }
};

TEST(EnumeratorRegistry, RegisteredStubIsRoutedWithoutAnyDispatchChange) {
  // The api_redesign acceptance test: adding an enumerator requires only a
  // registration — ChooseRoute/OptimizeAdaptive contain no per-algorithm
  // switch to extend.
  EnumeratorRegistry::Global().Register(std::make_unique<StubEnumerator>());

  Hypergraph chain3 = BuildHypergraphOrDie(MakeChainQuery(3));
  DispatchDecision decision = ChooseRoute(chain3);
  EXPECT_STREQ(decision.Name(), "StubEnum");
  EXPECT_STREQ(decision.reason, "stub claims 3-node chains");

  OptimizeResult routed = OptimizeAdaptive(chain3);
  ASSERT_TRUE(routed.success);
  EXPECT_STREQ(routed.stats.algorithm, "StubEnum");

  // Sessions resolve it by (case-insensitive) name too.
  OptimizationSession session;
  Hypergraph other = BuildHypergraphOrDie(MakeChainQuery(5));
  OptimizationRequest request;
  CardinalityEstimator est(other);
  request.graph = &other;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "stubenum";
  Result<OptimizeResult> by_name = session.Optimize(request);
  ASSERT_TRUE(by_name.ok());
  EXPECT_STREQ(by_name.value().stats.algorithm, "StubEnum");

  // Other shapes stay on the built-in routes while the stub is registered.
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeChainQuery(12))).Name(),
               "DPccp");

  ASSERT_TRUE(EnumeratorRegistry::Global().Unregister("StubEnum"));
  EXPECT_STREQ(ChooseRoute(chain3).Name(), "DPccp");
}

// --- Workspace reuse --------------------------------------------------------

std::vector<QuerySpec> MixedTraffic(int count) {
  TrafficMixOptions mix;
  mix.seed = 4242;
  mix.min_relations = 4;
  mix.max_relations = 12;
  mix.clique_max_relations = 9;
  mix.distinct_templates = 25;  // many distinct shapes back to back
  return GenerateTrafficMix(count, mix);
}

TEST(WorkspaceReuse, HundredMixedQueriesBitIdenticalToFreshWorkspaces) {
  // One pooled workspace serves 100 mixed-shape queries; every cost,
  // cardinality and table size must be bit-identical to a fresh-workspace
  // run of the same query — any deviation means state leaked across runs
  // (stale table entries, neighborhood memo, GOO scratch).
  std::vector<QuerySpec> traffic = MixedTraffic(100);
  OptimizerWorkspace shared;
  OptimizationSession session(&shared);

  for (size_t i = 0; i < traffic.size(); ++i) {
    Hypergraph g = BuildHypergraphOrDie(traffic[i]);
    CardinalityEstimator est(g);

    OptimizationRequest request;
    request.graph = &g;
    request.estimator = &est;
    request.cost_model = &DefaultCostModel();
    Result<OptimizeResult> pooled = session.Optimize(request);
    ASSERT_TRUE(pooled.ok()) << i;
    ASSERT_TRUE(pooled.value().success) << i << ": " << pooled.value().error;

    // Reference: identical request on a throwaway workspace.
    OptimizeResult fresh = OptimizeAdaptive(g, est, DefaultCostModel());
    ASSERT_TRUE(fresh.success) << i;

    EXPECT_EQ(pooled.value().cost, fresh.cost) << i;
    EXPECT_EQ(pooled.value().cardinality, fresh.cardinality) << i;
    EXPECT_EQ(pooled.value().stats.dp_entries, fresh.stats.dp_entries) << i;
    EXPECT_STREQ(pooled.value().stats.algorithm, fresh.stats.algorithm) << i;
  }
  // One top-level run per query went through the shared workspace (the
  // pruning-seed GOO passes use its seed slot without counting as runs).
  EXPECT_EQ(shared.runs(), traffic.size());
}

TEST(WorkspaceReuse, ResultBorrowsUntilNextRunAndCanBeDetached) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(6));
  CardinalityEstimator est(g);
  OptimizerWorkspace ws;

  Result<OptimizeResult> first =
      OptimizeByName("DPhyp", g, est, DefaultCostModel(), {}, &ws);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().success);
  EXPECT_FALSE(first.value().owns_table());  // borrowed from the workspace
  PlanTree before = first.value().ExtractPlan(g);

  // Detaching makes the result self-contained: the workspace can move on.
  OptimizeResult durable = std::move(first).value();
  durable.AdoptTable(ws.DetachTable());
  Result<OptimizeResult> second =
      OptimizeByName("DPhyp", g, est, DefaultCostModel(), {}, &ws);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(before.ToAlgebraString(g), durable.ExtractPlan(g).ToAlgebraString(g));
}

TEST(WorkspaceReuse, LegacyFreeFunctionsStillOwnTheirTables) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(6));
  OptimizeResult r = OptimizeDphyp(g);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.owns_table());
}

TEST(WorkspacePool, GrowsToPeakConcurrencyThenReuses) {
  WorkspacePool pool;
  { WorkspacePool::Lease a = pool.Acquire(); }
  { WorkspacePool::Lease b = pool.Acquire(); }
  EXPECT_EQ(pool.created(), 1u);  // sequential leases reuse one workspace
  EXPECT_EQ(pool.idle(), 1u);
  {
    WorkspacePool::Lease a = pool.Acquire();
    WorkspacePool::Lease b = pool.Acquire();
    EXPECT_EQ(pool.created(), 2u);  // concurrent leases force a second
  }
  EXPECT_EQ(pool.idle(), 2u);
}

// --- Deadlines --------------------------------------------------------------

TEST(Deadline, OneMillisecondBudgetOnClique24ServesValidGooPlan) {
  // A 24-relation clique is far beyond what exact DP finishes in 1 ms
  // (~3^24 candidate pairs); the session must abort DPhyp and serve the
  // greedy plan, recording the abort in stats.
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(24));
  CardinalityEstimator est(g);

  OptimizationSession session;
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "DPhyp";  // force exact; dispatch would choose GOO
  request.deadline_ms = 1.0;

  Result<OptimizeResult> served = session.Optimize(request);
  ASSERT_TRUE(served.ok());
  const OptimizeResult& r = served.value();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_STREQ(r.stats.aborted_algorithm, "DPhyp");
  EXPECT_STREQ(r.stats.algorithm, "GOO");
  EXPECT_GT(r.stats.abort_latency_ms, 0.0);

  // The served plan is the plain GOO plan, valid and bit-identical to a
  // direct GOO run.
  EXPECT_TRUE(ValidatePlanTree(g, r.ExtractPlan(g)).ok());
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);
  EXPECT_EQ(r.cost, goo.cost);
}

TEST(Deadline, GenerousBudgetReturnsTheExactPlan) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(12));
  CardinalityEstimator est(g);

  OptimizationSession session;
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "DPhyp";
  request.deadline_ms = 60'000.0;

  Result<OptimizeResult> served = session.Optimize(request);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(served.value().success);
  EXPECT_FALSE(served.value().stats.aborted);
  EXPECT_STREQ(served.value().stats.algorithm, "DPhyp");
  OptimizeResult exact = OptimizeDphyp(g);
  EXPECT_EQ(served.value().cost, exact.cost);
}

TEST(Deadline, AbortLatencyStaysWithinTenPercentOfBudgetOnStar24) {
#if !defined(DPHYP_TSAN_ACTIVE) && defined(__SANITIZE_THREAD__)
#define DPHYP_TSAN_ACTIVE 1
#endif
#if !defined(DPHYP_TSAN_ACTIVE) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPHYP_TSAN_ACTIVE 1
#endif
#endif
#ifdef DPHYP_TSAN_ACTIVE
  // A 10% wall-clock bound is meaningless under TSan's order-of-magnitude
  // slowdown; the TSan job covers the *synchronization* of the abort path
  // (tests/test_parallel.cc keeps a loose-bound deadline test in that
  // label), not its latency.
  GTEST_SKIP() << "wall-clock deadline bound not meaningful under TSan";
#endif
  // The fig6 star-24 shape: a degree-24 hub, >2^24 connected subgraphs —
  // exact DP runs for ages. With a 25 ms budget the combine-step poll
  // (every kCancellationPollPeriod pairs) must detect expiry within 10% of
  // the budget; the slack absorbs scheduler noise, not poll granularity.
  Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(24));
  CardinalityEstimator est(g);

  const double budget_ms = 50.0;
  OptimizationSession session;
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "DPhyp";
  request.deadline_ms = budget_ms;

  // The mechanism bounds overshoot to poll granularity (microseconds);
  // wall-clock noise on an oversubscribed CI machine — `ctest -j` runs
  // this alongside the genuinely multi-threaded parallel suite — is the
  // only way to miss, so a couple of retries are allowed before declaring
  // the bound broken.
  double best_latency_ms = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < 3; ++attempt) {
    Result<OptimizeResult> served = session.Optimize(request);
    ASSERT_TRUE(served.ok());
    const OptimizeResult& r = served.value();
    ASSERT_TRUE(r.success);
    ASSERT_TRUE(r.stats.aborted);
    EXPECT_TRUE(ValidatePlanTree(g, r.ExtractPlan(g)).ok());
    best_latency_ms = std::min(best_latency_ms, r.stats.abort_latency_ms);
    if (best_latency_ms <= budget_ms * 1.10) break;
  }
  EXPECT_LE(best_latency_ms, budget_ms * 1.10)
      << "abort drifted past the deadline budget";
}

TEST(Deadline, ManualCancellationAbortsToo) {
  // A pre-fired token (client disconnect) aborts at the first poll.
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(14));
  CardinalityEstimator est(g);
  CancellationToken token;
  token.RequestStop();
  OptimizerOptions options;
  options.cancellation = &token;
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel(), options);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.stats.aborted);
}

TEST(Deadline, AbortedFallbackPlansAreNotCached) {
  // A fallback plan is timing-dependent; caching it would pin the
  // heuristic plan for a fingerprint the exact enumerator usually
  // finishes. With an unmeetable budget every request must re-abort (no
  // cache hit), and each abort is counted once.
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.deadline_ms = 0.001;  // expires before the first poll
  PlanService strict(opts);
  QuerySpec spec = MakeCliqueQuery(12);  // routes to exact DPsub

  ServiceResult first = strict.OptimizeOne(spec);
  ASSERT_TRUE(first.success) << first.error;
  EXPECT_TRUE(first.result.stats.aborted);
  EXPECT_EQ(first.algorithm, "GOO");

  ServiceResult second = strict.OptimizeOne(spec);
  ASSERT_TRUE(second.success);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.result.stats.aborted);

  BatchOutcome batch = strict.OptimizeBatch({spec, spec});
  EXPECT_EQ(batch.stats.deadline_aborts, 2u);
}

TEST(Session, PolicyPruningAppliesToSessionRuns) {
  Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(10));
  OptimizationSession session;
  Result<OptimizeResult> r = session.Optimize(g);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().success);
  // Default policy enables bound-aware routing; the exact route runs under
  // a finite GOO-seeded incumbent.
  EXPECT_TRUE(std::isfinite(r.value().stats.initial_upper_bound));
}

}  // namespace
}  // namespace dphyp
