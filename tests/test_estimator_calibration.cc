// Calibration of the cardinality estimator against ground truth: execute
// inner-join queries on synthetic data and compare the product-form
// estimate with the actual result size. With independent uniform columns
// and sum-mod predicates the estimate should be accurate in expectation;
// we allow generous tolerance for the small sample sizes.
#include <gtest/gtest.h>

#include "core/dphyp.h"
#include "exec/executor.h"
#include "hypergraph/builder.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

/// Builds a spec whose *estimator* cardinalities/selectivities match the
/// *executable* payload exactly: every relation gets `rows` rows, every
/// predicate selectivity 1/modulus.
QuerySpec CalibratedSpec(int n, int rows, uint64_t seed) {
  // Spanning trees only: cyclic graphs make sum-mod predicates strongly
  // correlated (two conjuncts of a triangle imply the third), which no
  // independence-based estimator can track.
  QuerySpec spec = MakeRandomGraphQuery(n, 0.0, seed);
  for (RelationInfo& rel : spec.relations) {
    rel.cardinality = rows;
  }
  Rng rng(seed * 31 + 7);
  for (Predicate& p : spec.predicates) {
    int64_t modulus = 2 + static_cast<int64_t>(rng.Uniform(3));  // 2..4
    p.modulus = modulus;
    p.selectivity = 1.0 / static_cast<double>(modulus);
    p.refs.clear();
    for (int t : p.AllTables()) p.refs.push_back(ColumnRef{t, 0});
  }
  return spec;
}

class EstimatorCalibration : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EstimatorCalibration, EstimateTracksActualCardinality) {
  const uint64_t seed = GetParam();
  const int rows = 14;
  QuerySpec spec = CalibratedSpec(5, rows, seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);

  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success);
  PlanTree plan = r.ExtractPlan(g);

  Dataset data = Dataset::Generate(spec.relations, rows, seed ^ 0x5bd1e995);
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
  ExecResult actual = exec.Execute(plan);

  const double estimated = r.cardinality;
  const double observed = static_cast<double>(actual.tuples.size());
  // Sum-mod predicates over uniform columns are unbiased but correlated
  // across shared tables; allow a wide band and a +1 cushion for empty
  // results.
  EXPECT_LE(observed, estimated * 12 + 12) << "estimate far too low";
  EXPECT_GE(observed * 12 + 12, estimated) << "estimate far too high";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorCalibration,
                         ::testing::Range<uint64_t>(1, 25));

TEST(EstimatorCalibration, ExactOnIndependentTwoWayJoin) {
  // Two relations, single equality-mod-2 predicate: expectation is exactly
  // |A| * |B| / 2; with column values in [0, 97) (49 evens, 48 odds) the
  // match probability is (49*49 + 48*48) / 97^2 ≈ 0.5001.
  QuerySpec spec;
  spec.AddRelation("A", 100, 1);
  spec.AddRelation("B", 100, 1);
  int p = spec.AddSimplePredicate(0, 1, 0.5);
  spec.predicates[p].refs = {{0, 0}, {1, 0}};
  spec.predicates[p].modulus = 2;
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);
  EXPECT_DOUBLE_EQ(est.Estimate(NodeSet::FullSet(2)), 5000.0);

  Dataset data = Dataset::Generate(spec.relations, 100, 77);
  PlanBuilder builder;
  PlanTree plan = builder.Build(builder.Op(
      OpType::kJoin, builder.Leaf(0, 100), builder.Leaf(1, 100), {0}));
  Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
  double observed = static_cast<double>(exec.Execute(plan).tuples.size());
  EXPECT_NEAR(observed, 5000.0, 700.0);  // ~±4 sigma for 10k Bernoulli trials
}

}  // namespace
}  // namespace dphyp
