// Plan validator tests: every optimizer output must validate; hand-built
// broken plans must be rejected with the right diagnostics.
#include "plan/validate.h"

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "test_helpers.h"
#include "core/dphyp.h"
#include "reorder/ses_tes.h"
#include "workload/generators.h"
#include "workload/optree_gen.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

TEST(Validate, AcceptsOptimizerOutput) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Hypergraph g = BuildHypergraphOrDie(MakeRandomHypergraphQuery(8, 3, seed));
    for (const char* algo : {"DPhyp", "DPsize", "TDpartition"}) {
      OptimizeResult r = OptimizeNamed(algo, g);
      ASSERT_TRUE(r.success) << algo;
      PlanTree plan = r.ExtractPlan(g);
      Result<bool> valid = ValidatePlanTree(g, plan);
      EXPECT_TRUE(valid.ok()) << algo << " seed " << seed
                              << ": " << valid.error().message;
    }
  }
}

TEST(Validate, AcceptsNonInnerPlans) {
  for (uint64_t seed = 60; seed < 75; ++seed) {
    RandomTreeOptions opts;
    opts.non_inner_prob = 0.6;
    opts.lateral_prob = 0.3;
    OperatorTree tree = MakeRandomOperatorTree(5, seed, opts);
    DerivedQuery dq = DeriveQuery(tree);
    CardinalityEstimator est(dq.graph);
    OptimizeResult r = OptimizeDphyp(dq.graph, est, DefaultCostModel());
    ASSERT_TRUE(r.success);
    PlanTree plan = r.ExtractPlan(dq.graph);
    Result<bool> valid = ValidatePlanTree(dq.graph, plan);
    EXPECT_TRUE(valid.ok()) << "seed " << seed << ": "
                            << valid.error().message;
  }
}

TEST(Validate, RejectsCrossProduct) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(3));
  PlanBuilder builder;
  const PlanTreeNode* r0 = builder.Leaf(0);
  const PlanTreeNode* r2 = builder.Leaf(2);
  const PlanTreeNode* cross = builder.Op(OpType::kJoin, r0, r2);
  const PlanTreeNode* r1 = builder.Leaf(1);
  PlanTree plan = builder.Build(builder.Op(OpType::kJoin, cross, r1));
  Result<bool> valid = ValidatePlanTree(g, plan);
  ASSERT_FALSE(valid.ok());
  EXPECT_NE(valid.error().message.find("cross product"), std::string::npos);
}

TEST(Validate, RejectsWrongOperator) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(2));
  PlanBuilder builder;
  PlanTree plan = builder.Build(builder.Op(OpType::kLeftAntijoin,
                                           builder.Leaf(0), builder.Leaf(1)));
  Result<bool> valid = ValidatePlanTree(g, plan);
  ASSERT_FALSE(valid.ok());
  EXPECT_NE(valid.error().message.find("inner edges"), std::string::npos);
}

TEST(Validate, RejectsWrongOrientation) {
  QuerySpec spec;
  spec.AddRelation("A", 10);
  spec.AddRelation("B", 10);
  spec.AddSimplePredicate(0, 1, 0.1, OpType::kLeftAntijoin);
  Hypergraph g = BuildHypergraphOrDie(spec);
  PlanBuilder builder;
  // Antijoin the wrong way round: B ANTI A while the edge demands A ANTI B.
  PlanTree plan = builder.Build(builder.Op(OpType::kLeftAntijoin,
                                           builder.Leaf(1), builder.Leaf(0)));
  Result<bool> valid = ValidatePlanTree(g, plan);
  ASSERT_FALSE(valid.ok());
  EXPECT_NE(valid.error().message.find("orientation"), std::string::npos);
}

TEST(Validate, RejectsMissingDependentConversion) {
  QuerySpec spec;
  spec.AddRelation("R0", 10);
  spec.AddRelation("F1", 10);
  spec.relations[1].free_tables = NodeSet::Single(0);
  spec.AddSimplePredicate(0, 1, 0.1);
  Hypergraph g = BuildHypergraphOrDie(spec);
  PlanBuilder builder;
  // Lateral right side but a plain join.
  PlanTree plan = builder.Build(
      builder.Op(OpType::kJoin, builder.Leaf(0), builder.Leaf(1)));
  Result<bool> valid = ValidatePlanTree(g, plan);
  ASSERT_FALSE(valid.ok());
  EXPECT_NE(valid.error().message.find("dependent"), std::string::npos);
}

TEST(Validate, AcceptsHonestHandBuiltPlan) {
  Hypergraph g = BuildHypergraphOrDie(MakeChainQuery(3));
  PlanBuilder builder;
  const PlanTreeNode* r01 =
      builder.Op(OpType::kJoin, builder.Leaf(0), builder.Leaf(1));
  PlanTree plan = builder.Build(builder.Op(OpType::kJoin, r01, builder.Leaf(2)));
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
}

}  // namespace
}  // namespace dphyp
