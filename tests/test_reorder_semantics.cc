// The strongest end-to-end property in the suite: for random operator trees
// with mixed non-inner and dependent operators, every plan chosen by the
// optimizer (hypernode mode, TES generate-and-test mode, and the DPsize /
// DPsub baselines) must produce exactly the same result multiset as the
// original operator tree. This validates Theorem 1, the Fig. 9 conflict
// table, the SES/TES machinery, hyperedge derivation, operator recovery,
// and the dependent-conversion rule all at once.
#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "exec/executor.h"
#include "hypergraph/builder.h"
#include "plan/validate.h"
#include "reorder/ses_tes.h"
#include "baselines/dpsize.h"
#include "core/dphyp.h"
#include "test_helpers.h"
#include "workload/optree_gen.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

using testing_helpers::CostsClose;

struct SemanticsCase {
  uint64_t seed;
  int relations;
  double non_inner_prob;
  double lateral_prob;
};

class ReorderSemantics : public ::testing::TestWithParam<SemanticsCase> {};

TEST_P(ReorderSemantics, OptimizedPlansMatchOriginalTree) {
  const SemanticsCase& param = GetParam();
  RandomTreeOptions opts;
  opts.non_inner_prob = param.non_inner_prob;
  opts.lateral_prob = param.lateral_prob;
  OperatorTree tree =
      MakeRandomOperatorTree(param.relations, param.seed, opts);

  OperatorTree normalized;
  DerivedQuery dq = DeriveQuery(tree, &normalized);
  CardinalityEstimator est(dq.graph);
  const CostModel& model = DefaultCostModel();

  Dataset dataset =
      Dataset::Generate(normalized.relations, /*rows_per_table=*/6, param.seed);
  EdgeConjuncts conjuncts = ConjunctsFromTree(normalized, dq.edge_to_op);
  Executor exec(dataset, dq.graph, normalized.relations, conjuncts);

  PlanTree reference = ReferencePlan(normalized, dq, est, model);
  ExecResult expected = exec.Execute(reference);

  // Hypernode mode with several algorithms.
  for (const char* algo : {"DPhyp", "DPsize", "DPsub"}) {
    OptimizeResult r = OptimizeNamed(algo, dq.graph, est, model);
    ASSERT_TRUE(r.success) << algo << ": " << r.error;
    EXPECT_LE(r.cost, reference.root()->cost * (1 + 1e-9))
        << algo << " found a worse plan than the input tree";
    PlanTree plan = r.ExtractPlan(dq.graph);
    Result<bool> structurally_valid = ValidatePlanTree(dq.graph, plan);
    EXPECT_TRUE(structurally_valid.ok())
        << algo << ": " << structurally_valid.error().message;
    ExecResult actual = exec.Execute(plan);
    EXPECT_TRUE(actual.SameAs(expected))
        << algo << " changed the query result!\noriginal:  "
        << tree.ToString() << "\noptimized: " << plan.ToAlgebraString(dq.graph);
  }

  // TES generate-and-test mode on the SES graph must agree as well.
  CardinalityEstimator ses_est(dq.ses_graph);
  OptimizerOptions tes_opts;
  tes_opts.tes_constraints = &dq.tes_constraints;
  OptimizeResult tes = OptimizeDphyp(dq.ses_graph, ses_est, model, tes_opts);
  ASSERT_TRUE(tes.success) << tes.error;
  EdgeConjuncts ses_conjuncts = ConjunctsFromTree(normalized, dq.edge_to_op);
  Executor ses_exec(dataset, dq.ses_graph, normalized.relations, ses_conjuncts);
  PlanTree tes_plan = tes.ExtractPlan(dq.ses_graph);
  ExecResult tes_result = ses_exec.Execute(tes_plan);
  EXPECT_TRUE(tes_result.SameAs(expected))
      << "TES mode changed the query result!\noriginal:  " << tree.ToString()
      << "\noptimized: " << tes_plan.ToAlgebraString(dq.ses_graph);
}

std::vector<SemanticsCase> SemanticsCases() {
  std::vector<SemanticsCase> cases;
  // Pure inner joins (control group).
  for (uint64_t s = 1; s <= 5; ++s) cases.push_back({s, 5, 0.0, 0.0});
  // Mixed non-inner operators.
  for (uint64_t s = 10; s < 30; ++s) cases.push_back({s, 5, 0.5, 0.0});
  // Heavy non-inner.
  for (uint64_t s = 40; s < 55; ++s) cases.push_back({s, 6, 0.8, 0.0});
  // With laterals (dependent operators).
  for (uint64_t s = 60; s < 80; ++s) cases.push_back({s, 5, 0.4, 0.5});
  // Larger trees, everything enabled.
  for (uint64_t s = 90; s < 100; ++s) cases.push_back({s, 7, 0.6, 0.3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, ReorderSemantics,
                         ::testing::ValuesIn(SemanticsCases()),
                         [](const ::testing::TestParamInfo<SemanticsCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

TEST(ReorderSemantics, Fig8bTreesSolveAndAgreeAcrossModes) {
  for (int outer = 0; outer <= 7; ++outer) {
    OperatorTree tree = MakeCycleOuterjoinTree(8, outer);
    OperatorTree normalized;
    DerivedQuery dq = DeriveQuery(tree, &normalized);
    CardinalityEstimator est(dq.graph);
    OptimizeResult hyp = OptimizeDphyp(dq.graph, est, DefaultCostModel());
    ASSERT_TRUE(hyp.success) << "outer=" << outer << ": " << hyp.error;

    OptimizeResult size =
        OptimizeDpsize(dq.graph, est, DefaultCostModel());
    ASSERT_TRUE(size.success);
    EXPECT_TRUE(CostsClose(hyp.cost, size.cost)) << "outer=" << outer;

    // Execute DPhyp's plan against the original tree.
    Dataset dataset = Dataset::Generate(normalized.relations, 5, 7);
    EdgeConjuncts conjuncts = ConjunctsFromTree(normalized, dq.edge_to_op);
    Executor exec(dataset, dq.graph, normalized.relations, conjuncts);
    ExecResult expected =
        exec.Execute(ReferencePlan(normalized, dq, est, DefaultCostModel()));
    ExecResult actual = exec.Execute(hyp.ExtractPlan(dq.graph));
    EXPECT_TRUE(actual.SameAs(expected)) << "outer=" << outer;
  }
}

TEST(ReorderSemantics, Fig8aWorkloadBothModesSolve) {
  for (int anti : {0, 3, 6}) {
    SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(6, anti);
    CardinalityEstimator est(w.graph);
    OptimizeResult hyper = OptimizeDphyp(w.graph, est, DefaultCostModel());
    ASSERT_TRUE(hyper.success) << "anti=" << anti;

    CardinalityEstimator ses_est(w.ses_graph);
    OptimizerOptions opts;
    opts.tes_constraints = &w.tes_constraints;
    OptimizeResult tes =
        OptimizeDphyp(w.ses_graph, ses_est, DefaultCostModel(), opts);
    ASSERT_TRUE(tes.success) << "anti=" << anti;
    // Same plan space — the TES mode merely pays for discarded candidates.
    EXPECT_GT(tes.stats.discarded + tes.stats.ccp_pairs, 0u);
    if (anti > 0) {
      EXPECT_LT(hyper.stats.ccp_pairs, tes.stats.ccp_pairs + tes.stats.discarded)
          << "hypernode mode should consider fewer candidates";
    }
  }
}

TEST(ReorderSemantics, MoreAntijoinsShrinkTheSearchSpace) {
  uint64_t prev = UINT64_MAX;
  for (int anti : {0, 2, 4, 6}) {
    SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(6, anti);
    CardinalityEstimator est(w.graph);
    OptimizeResult r = OptimizeDphyp(w.graph, est, DefaultCostModel());
    ASSERT_TRUE(r.success);
    EXPECT_LT(r.stats.ccp_pairs, prev) << "anti=" << anti;
    prev = r.stats.ccp_pairs;
  }
}

}  // namespace
}  // namespace dphyp
