// The histogram suite (ctest -L histogram): the distribution-statistics
// stack end to end.
//   * Equi-depth histogram construction and interpolation edge cases:
//     single-value columns, all-distinct columns, out-of-range probes,
//     probes exactly on bucket boundaries, MCV lists covering 100%.
//   * selfuncs.c-style selectivity functions (EqJoinSelectivity's MCV x
//     MCV match, RangeSelectivity's interpolation) plus the degenerate-
//     stats guards (EffectiveNdv clamps, empty tables) the stats model
//     shares.
//   * The ANALYZE pass: reservoir sampling determinism and catalog
//     refresh, including the stats_version bump that invalidates caches.
//   * The "hist" model: MCV-driven equality selectivity on skewed keys,
//     correlation damping, range-filtered base cardinalities, and the
//     stats-model fallback when the catalog has no distributions.
//   * QDL round-trips of the new kind=eq / filter= syntax, executor
//     semantics of both, and jobgen workload determinism + the
//     hist-beats-stats property the bench gates on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "core/dphyp.h"
#include "cost/qerror.h"
#include "cost/stats_model.h"
#include "exec/executor.h"
#include "hypergraph/builder.h"
#include "stats/analyze.h"
#include "stats/hist_model.h"
#include "stats/histogram.h"
#include "stats/selectivity.h"
#include "util/rng.h"
#include "workload/jobgen.h"
#include "workload/qdl.h"

namespace dphyp {
namespace {

// --- Equi-depth histogram construction & probes -----------------------------

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v;
  for (int64_t i = 0; i < n; ++i) v.push_back(i);
  return v;
}

TEST(Histogram, EquiDepthOverUniformValues) {
  Histogram h = BuildEquiDepthHistogram(Iota(16), 4);
  ASSERT_EQ(h.NumBuckets(), 4);
  ASSERT_EQ(h.bounds.size(), 5u);
  EXPECT_EQ(h.bounds.front(), 0);
  EXPECT_EQ(h.bounds.back(), 15);
  for (double f : h.fractions) EXPECT_DOUBLE_EQ(f, 0.25);
}

TEST(Histogram, OutOfRangeProbesClamp) {
  Histogram h = BuildEquiDepthHistogram(Iota(16), 4);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(15.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionInRange(100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionInRange(-50.0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionInRange(5.0, 4.0), 0.0);  // inverted range
}

TEST(Histogram, BucketBoundaryProbes) {
  // bounds {0, 3, 7, 11, 15}: a probe exactly on an internal boundary
  // accumulates all buckets at or below it, nothing from the next.
  Histogram h = BuildEquiDepthHistogram(Iota(16), 4);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(3.0), 0.25);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(7.0), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(11.0), 0.75);
  // Interpolation inside bucket [3, 7]: halfway through its width.
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(5.0), 0.25 + 0.25 * 2.0 / 4.0);
  // Inclusive integer range [4, 7] = AtOrBelow(7) - AtOrBelow(3).
  EXPECT_DOUBLE_EQ(h.FractionInRange(4.0, 7.0), 0.25);
}

TEST(Histogram, SingleValueColumnIsAStep) {
  // Every bucket is zero-width; interpolation must treat the spike as a
  // step at the value, not divide by the zero bucket width.
  Histogram h = BuildEquiDepthHistogram(std::vector<int64_t>(8, 5), 4);
  ASSERT_FALSE(h.Empty());
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(4.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionInRange(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionInRange(0.0, 4.0), 0.0);
}

TEST(Histogram, EmptyInputAndFewerValuesThanBuckets) {
  Histogram empty = BuildEquiDepthHistogram({}, 8);
  EXPECT_TRUE(empty.Empty());
  EXPECT_DOUBLE_EQ(empty.FractionAtOrBelow(3.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.FractionInRange(0.0, 10.0), 0.0);
  // 3 values, 8 requested buckets: one bucket per value.
  Histogram small = BuildEquiDepthHistogram({10, 20, 30}, 8);
  EXPECT_EQ(small.NumBuckets(), 3);
  EXPECT_DOUBLE_EQ(small.FractionAtOrBelow(20.0), 2.0 / 3.0);
}

// --- MCV lists --------------------------------------------------------------

TEST(McvList, AllDistinctColumnHasNoMcvs) {
  // Every value is equally "common"; the histogram carries everything.
  ColumnDistribution d = BuildColumnDistribution(Iota(8), 4, 4);
  EXPECT_TRUE(d.mcvs.Empty());
  EXPECT_FALSE(d.histogram.Empty());
  EXPECT_DOUBLE_EQ(d.histogram.FractionAtOrBelow(7.0), 1.0);
}

TEST(McvList, SingleValueColumnIsAllMcv) {
  // The MCV list covers 100% of the column; the histogram is empty and
  // selectivity code must weight it by the zero non-MCV mass.
  ColumnDistribution d = BuildColumnDistribution({7, 7, 7, 7}, 4, 4);
  ASSERT_EQ(d.mcvs.Size(), 1);
  EXPECT_EQ(d.mcvs.entries[0].value, 7);
  EXPECT_DOUBLE_EQ(d.mcvs.TotalFraction(), 1.0);
  EXPECT_TRUE(d.histogram.Empty());
}

TEST(McvList, OrderingCutoffAndTruncation) {
  std::vector<int64_t> values = {1, 1, 1, 2, 2, 3};
  McvList list = BuildMcvList(values, 4);
  ASSERT_EQ(list.Size(), 2);  // 3 occurs once: not evidence of commonness
  EXPECT_EQ(list.entries[0].value, 1);
  EXPECT_DOUBLE_EQ(list.entries[0].fraction, 0.5);
  EXPECT_EQ(list.entries[1].value, 2);
  EXPECT_DOUBLE_EQ(list.entries[1].fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(list.FractionOf(3), 0.0);
  McvList truncated = BuildMcvList(values, 1);
  ASSERT_EQ(truncated.Size(), 1);
  EXPECT_EQ(truncated.entries[0].value, 1);
}

// --- Degenerate-stats guards (shared with the stats model) ------------------

TEST(Selectivity, EffectiveNdvClampsDegenerateStats) {
  EXPECT_DOUBLE_EQ(EffectiveNdv(0.0, 100.0), 1.0);    // unknown ndv
  EXPECT_DOUBLE_EQ(EffectiveNdv(-5.0, 100.0), 1.0);   // negative ndv
  EXPECT_DOUBLE_EQ(EffectiveNdv(500.0, 100.0), 100.0);  // ndv > rows
  EXPECT_DOUBLE_EQ(EffectiveNdv(500.0, 0.0), 500.0);  // rows unknown
  EXPECT_DOUBLE_EQ(EffectiveNdv(0.0, 0.0), 1.0);      // nothing known
  EXPECT_DOUBLE_EQ(EffectiveNdv(7.0, 100.0), 7.0);    // sane passthrough
}

TEST(StatsModel, DegenerateCatalogStatsAreClampedNotTrusted) {
  // Empty table (row_count 0), ndv > rows, and ndv = 0 columns: the model
  // must stay within [kMinSelectivity, 1] selectivities and >= 1 base
  // cardinalities instead of zeroing or inverting estimates.
  auto catalog = std::make_shared<Catalog>();
  catalog->AddTable(TableStats{"A", 0.0, {ColumnStats{0.0, 0.0, 0.0}}});
  catalog->AddTable(TableStats{"B", 10.0, {ColumnStats{1000.0, 0.0, 9.0}}});
  QuerySpec spec;
  spec.AddRelation("A", 50, 1);
  spec.AddRelation("B", 50, 1);
  int p = spec.AddSimplePredicate(0, 1, 0.1);
  spec.predicates[p].derive_selectivity = true;
  spec.predicates[p].refs = {{0, 0}, {1, 0}};
  spec.BindCatalog(catalog);
  Hypergraph g = BuildHypergraphOrDie(spec);
  StatsCardinalityModel stats(g, spec);
  // A's row count 0 clamps to 1; B's ndv 1000 clamps to its 10 rows, so
  // the derived selectivity is 1/10 (A's ndv 0 contributes nothing).
  EXPECT_DOUBLE_EQ(stats.EstimateClass(NodeSet::Single(0)), 1.0);
  EXPECT_DOUBLE_EQ(stats.DeriveSelectivity(spec.predicates[p]), 0.1);
  const double estimate = stats.EstimateClass(g.AllNodes());
  EXPECT_GT(estimate, 0.0);
  EXPECT_DOUBLE_EQ(estimate, 1.0 * 10.0 * 0.1);
}

// --- Selectivity functions --------------------------------------------------

ColumnStats StatsOf(const std::vector<int64_t>& values) {
  AnalyzeOptions opts;
  opts.histogram_buckets = 4;
  opts.max_mcvs = 4;
  return BuildColumnStats(values, opts);
}

TEST(Selectivity, EqJoinWithoutMcvsIsOneOverMaxNdv) {
  ColumnStats a;
  a.distinct_count = 10.0;
  ColumnStats b;
  b.distinct_count = 50.0;
  EXPECT_DOUBLE_EQ(EqJoinSelectivity(a, 100.0, b, 100.0), 1.0 / 50.0);
  // Fully degenerate inputs clamp to 1/1, never divide by zero.
  ColumnStats zero;
  EXPECT_DOUBLE_EQ(EqJoinSelectivity(zero, 0.0, zero, 0.0), 1.0);
}

TEST(Selectivity, EqJoinMatchingMcvsCaptureSkew) {
  // Both sides concentrate half their mass on value 0 (ndv 10): the MCV x
  // MCV match alone contributes 0.25, far above the 1/10 independence
  // rule would say. This is the Zipf-join scenario the hist model exists
  // for.
  ColumnStats a;
  a.distinct_count = 10.0;
  a.mcvs.entries = {{0, 0.5}};
  ColumnStats b = a;
  const double sel = EqJoinSelectivity(a, 100.0, b, 100.0);
  EXPECT_GE(sel, 0.25);
  EXPECT_LE(sel, 1.0);
  EXPECT_GT(sel, 1.0 / 10.0 * 2.0);
}

TEST(Selectivity, EqJoinDisjointMcvsStayLow) {
  ColumnStats a;
  a.distinct_count = 10.0;
  a.mcvs.entries = {{1, 0.6}};
  ColumnStats b;
  b.distinct_count = 10.0;
  b.mcvs.entries = {{2, 0.7}};
  const double sel = EqJoinSelectivity(a, 100.0, b, 100.0);
  EXPECT_GT(sel, 0.0);
  // No common MCV: only the uncertain residual terms remain.
  EXPECT_LT(sel, 0.25);
}

TEST(Selectivity, RangeUsesDistributionMcvMassAndHistogram) {
  // Uniform 0..15, all distinct: pure histogram interpolation.
  ColumnStats uniform = StatsOf(Iota(16));
  EXPECT_NEAR(RangeSelectivity(uniform, 4.0, 7.0), 0.25, 1e-9);
  // MCV covering 100%: out-of-range probes hit neither MCVs nor histogram
  // and clamp to the floor; the exact value probe returns its fraction.
  ColumnStats spike = StatsOf({7, 7, 7, 7});
  EXPECT_DOUBLE_EQ(RangeSelectivity(spike, 0.0, 6.0), kMinSelectivity);
  EXPECT_DOUBLE_EQ(RangeSelectivity(spike, 7.0, 7.0), 1.0);
}

TEST(Selectivity, RangeFallsBackToBoundsThenDefault) {
  // Bounds known, no distribution: uniform inclusive interpolation.
  ColumnStats bounds;
  bounds.distinct_count = 10.0;
  bounds.min_value = 0.0;
  bounds.max_value = 9.0;
  EXPECT_DOUBLE_EQ(RangeSelectivity(bounds, 0.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(RangeSelectivity(bounds, -100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(RangeSelectivity(bounds, 50.0, 60.0), kMinSelectivity);
  // Nothing known at all: the fixed default.
  EXPECT_DOUBLE_EQ(RangeSelectivity(ColumnStats{}, 0.0, 4.0), 1.0 / 3.0);
  // Inverted range.
  EXPECT_DOUBLE_EQ(RangeSelectivity(bounds, 5.0, 4.0), kMinSelectivity);
}

// --- The ANALYZE pass -------------------------------------------------------

TEST(Analyze, ReservoirSampleIsDeterministicAndSized) {
  std::vector<int64_t> values = Iota(1000);
  Rng rng_a(42), rng_b(42);
  std::vector<int64_t> a = ReservoirSample(values, 64, rng_a);
  std::vector<int64_t> b = ReservoirSample(values, 64, rng_b);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
  // Small inputs come back whole.
  Rng rng_c(42);
  EXPECT_EQ(ReservoirSample({1, 2, 3}, 64, rng_c).size(), 3u);
}

TEST(Analyze, RefreshesCatalogAndBumpsVersion) {
  ExecRelation rel;
  rel.num_columns = 2;
  for (int64_t i = 0; i < 20; ++i) rel.rows.push_back({i % 4, i});
  std::vector<RelationInfo> infos(1);
  infos[0].name = "T";
  infos[0].num_columns = 2;
  Catalog catalog;
  const uint64_t before = catalog.stats_version();
  AnalyzeOptions opts;
  EXPECT_EQ(AnalyzeDataset(Dataset::FromTables({rel}), infos, opts, &catalog),
            1);
  EXPECT_GT(catalog.stats_version(), before);
  std::optional<TableStats> t = catalog.FindTable("T");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->row_count, 20.0);
  ASSERT_EQ(t->columns.size(), 2u);
  EXPECT_DOUBLE_EQ(t->columns[0].distinct_count, 4.0);
  EXPECT_DOUBLE_EQ(t->columns[0].min_value, 0.0);
  EXPECT_DOUBLE_EQ(t->columns[0].max_value, 3.0);
  // Column 0 repeats each value 5 times: a complete MCV frequency table.
  EXPECT_TRUE(t->columns[0].HasDistribution());
  EXPECT_DOUBLE_EQ(t->columns[0].mcvs.TotalFraction(), 1.0);
  // Column 1 is all-distinct: histogram only.
  EXPECT_TRUE(t->columns[1].mcvs.Empty());
  EXPECT_FALSE(t->columns[1].histogram.Empty());
}

// --- Catalog pair correlations ----------------------------------------------

TEST(Catalog, TablePairCorrelationIsSymmetricClampedAndVersioned) {
  Catalog catalog;
  EXPECT_DOUBLE_EQ(catalog.TablePairCorrelation("A", "B"), 0.0);
  const uint64_t before = catalog.stats_version();
  catalog.SetTablePairCorrelation("B", "A", 0.8);
  EXPECT_GT(catalog.stats_version(), before);
  EXPECT_DOUBLE_EQ(catalog.TablePairCorrelation("A", "B"), 0.8);
  EXPECT_DOUBLE_EQ(catalog.TablePairCorrelation("B", "A"), 0.8);
  catalog.SetTablePairCorrelation("A", "B", 7.0);  // clamped into [0, 1]
  EXPECT_DOUBLE_EQ(catalog.TablePairCorrelation("A", "B"), 1.0);
  catalog.SetTablePairCorrelation("A", "B", -2.0);
  EXPECT_DOUBLE_EQ(catalog.TablePairCorrelation("A", "B"), 0.0);
}

// --- The "hist" model -------------------------------------------------------

/// Two relations joined on column 0 (kEq, derived), with per-column stats
/// supplied by an exhaustive ANALYZE over hand-built tables.
struct HistWorkload {
  QuerySpec spec;
  std::shared_ptr<Catalog> catalog;
  Dataset data;
};

HistWorkload MakeSkewedEqJoin() {
  HistWorkload w;
  // Half of every table is value 0; the rest spreads over 1..7.
  ExecRelation t;
  t.num_columns = 2;
  for (int64_t i = 0; i < 32; ++i) {
    const int64_t key = (i < 16) ? 0 : 1 + (i % 7);
    t.rows.push_back({key, (key * 7 + 3) % 8});
  }
  w.spec.AddRelation("A", 32, 2);
  w.spec.AddRelation("B", 32, 2);
  int p = w.spec.AddSimplePredicate(0, 1, 0.1);
  w.spec.predicates[p].derive_selectivity = true;
  w.spec.predicates[p].kind = PredicateKind::kEq;
  w.spec.predicates[p].refs = {{0, 0}, {1, 0}};
  std::vector<RelationInfo> infos = w.spec.relations;
  w.catalog = std::make_shared<Catalog>();
  AnalyzeOptions opts;
  opts.sample_size = 64;  // exhaustive
  AnalyzeDataset(Dataset::FromTables({t, t}), infos, opts, w.catalog.get());
  w.spec.BindCatalog(w.catalog);
  w.data = Dataset::FromTables({t, t});
  return w;
}

TEST(HistModel, McvMatchBeatsIndependenceOnSkewedKeys) {
  HistWorkload w = MakeSkewedEqJoin();
  Hypergraph g = BuildHypergraphOrDie(w.spec);
  StatsCardinalityModel stats(g, w.spec);
  HistogramCardinalityModel hist(g, w.spec);
  const double stats_sel = stats.DeriveSelectivity(w.spec.predicates[0]);
  const double hist_sel = hist.DeriveSelectivity(w.spec.predicates[0]);
  // True match count: 16^2 zeros + sum over 1..7 of per-value counts.
  double actual = 0.0;
  for (const auto& ra : w.data.table(0).rows) {
    for (const auto& rb : w.data.table(1).rows) {
      if (ra[0] == rb[0]) actual += 1.0;
    }
  }
  const double true_sel = actual / (32.0 * 32.0);
  EXPECT_DOUBLE_EQ(stats_sel, 1.0 / 8.0);  // independence over ndv 8
  EXPECT_GT(hist_sel, stats_sel);
  // The MCV estimate lands within 20% of truth; independence is ~2x off.
  EXPECT_NEAR(hist_sel, true_sel, 0.2 * true_sel);
  EXPECT_LT(stats_sel, 0.6 * true_sel);
}

TEST(HistModel, ExecutedQErrorImprovesOverStats) {
  HistWorkload w = MakeSkewedEqJoin();
  Hypergraph g = BuildHypergraphOrDie(w.spec);
  CardinalityFeedback actuals;
  Executor exec(w.data, g, w.spec.relations, ConjunctsFromSpec(w.spec, g),
                &actuals);
  StatsCardinalityModel stats(g, w.spec);
  HistogramCardinalityModel hist(g, w.spec);
  OptimizeResult rs = OptimizeDphyp(g, stats, DefaultCostModel());
  OptimizeResult rh = OptimizeDphyp(g, hist, DefaultCostModel());
  ASSERT_TRUE(rs.success && rh.success);
  exec.Execute(rs.ExtractPlan(g));
  exec.Execute(rh.ExtractPlan(g));
  QErrorStats qs = ComputePlanQError(rs.ExtractPlan(g), actuals);
  QErrorStats qh = ComputePlanQError(rh.ExtractPlan(g), actuals);
  ASSERT_GT(qh.classes, 0u);
  EXPECT_LT(qh.max_q, qs.max_q);
}

TEST(HistModel, CorrelationDampingDropsRedundantPredicate) {
  // Two equality predicates between the same pair, ndv 8 each side. With
  // correlation 1.0 the weaker predicate contributes nothing: the joint
  // selectivity is one factor of 1/8, not (1/8)^2.
  auto catalog = std::make_shared<Catalog>();
  catalog->AddTable(TableStats{"A", 64.0,
                               {ColumnStats{8.0, 0.0, 7.0},
                                ColumnStats{8.0, 0.0, 7.0}}});
  catalog->AddTable(TableStats{"B", 64.0,
                               {ColumnStats{8.0, 0.0, 7.0},
                                ColumnStats{8.0, 0.0, 7.0}}});
  QuerySpec spec;
  spec.AddRelation("A", 64, 2);
  spec.AddRelation("B", 64, 2);
  for (int col = 0; col < 2; ++col) {
    int p = spec.AddSimplePredicate(0, 1, 0.1);
    spec.predicates[p].derive_selectivity = true;
    spec.predicates[p].kind = PredicateKind::kEq;
    spec.predicates[p].refs = {{0, col}, {1, col}};
  }
  spec.BindCatalog(catalog);
  Hypergraph g = BuildHypergraphOrDie(spec);

  HistogramCardinalityModel independent(g, spec);
  EXPECT_DOUBLE_EQ(independent.EstimateClass(g.AllNodes()),
                   64.0 * 64.0 / 64.0);  // (1/8)^2

  catalog->SetTablePairCorrelation("A", "B", 1.0);
  HistogramCardinalityModel damped(g, spec);
  EXPECT_DOUBLE_EQ(damped.EstimateClass(g.AllNodes()), 64.0 * 64.0 / 8.0);
  // The catalog bump re-keys cached plans.
  EXPECT_NE(independent.Fingerprint(), damped.Fingerprint());
}

TEST(HistModel, RangeFilterScalesBaseCardinality) {
  auto catalog = std::make_shared<Catalog>();
  catalog->AddTable(TableStats{"A", 100.0, {ColumnStats{10.0, 0.0, 9.0}}});
  catalog->AddTable(TableStats{"B", 100.0, {ColumnStats{10.0, 0.0, 9.0}}});
  QuerySpec spec;
  spec.AddRelation("A", 100, 1);
  spec.AddRelation("B", 100, 1);
  spec.relations[0].filters.push_back(ColumnRange{0, 0, 4});
  spec.AddSimplePredicate(0, 1, 0.5);
  spec.BindCatalog(catalog);
  Hypergraph g = BuildHypergraphOrDie(spec);
  HistogramCardinalityModel hist(g, spec);
  // Uniform min/max interpolation: [0, 4] of [0, 9] keeps half the rows.
  EXPECT_DOUBLE_EQ(hist.EstimateClass(NodeSet::Single(0)), 50.0);
  EXPECT_DOUBLE_EQ(hist.EstimateClass(NodeSet::Single(1)), 100.0);
}

TEST(HistModel, WithoutDistributionsMatchesStatsModel) {
  // A catalog of row counts + ndv only: every hist code path falls back
  // to the stats derivation, bit-identically.
  auto catalog = std::make_shared<Catalog>();
  catalog->AddTable(TableStats{"A", 30.0, {ColumnStats{5.0, 0.0, 9.0}}});
  catalog->AddTable(TableStats{"B", 40.0, {ColumnStats{8.0, 0.0, 9.0}}});
  catalog->AddTable(TableStats{"C", 50.0, {ColumnStats{3.0, 0.0, 9.0}}});
  QuerySpec spec;
  spec.AddRelation("A", 30, 1);
  spec.AddRelation("B", 40, 1);
  spec.AddRelation("C", 50, 1);
  for (int i = 0; i + 1 < 3; ++i) {
    int p = spec.AddSimplePredicate(i, i + 1, 0.1);
    spec.predicates[p].derive_selectivity = true;
    spec.predicates[p].refs = {{i, 0}, {i + 1, 0}};
  }
  spec.BindCatalog(catalog);
  Hypergraph g = BuildHypergraphOrDie(spec);
  StatsCardinalityModel stats(g, spec);
  HistogramCardinalityModel hist(g, spec);
  OptimizeResult a = OptimizeDphyp(g, stats, DefaultCostModel());
  OptimizeResult b = OptimizeDphyp(g, hist, DefaultCostModel());
  ASSERT_TRUE(a.success && b.success);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.cardinality, b.cardinality);
}

// --- Executor semantics of kind=eq and filter= ------------------------------

TEST(Executor, EqPredicateAndRangeFiltersOnData) {
  QuerySpec spec;
  spec.AddRelation("A", 10, 1);
  spec.AddRelation("B", 1, 1);
  int p = spec.AddSimplePredicate(0, 1, 0.1);
  spec.predicates[p].kind = PredicateKind::kEq;
  spec.predicates[p].refs = {{0, 0}, {1, 0}};

  ExecRelation a;
  a.num_columns = 1;
  for (int64_t i = 0; i < 10; ++i) a.rows.push_back({i});
  ExecRelation b;
  b.num_columns = 1;
  b.rows.push_back({4});

  PlanBuilder builder;
  PlanTree plan = builder.Build(builder.Op(OpType::kJoin, builder.Leaf(0, 10),
                                           builder.Leaf(1, 1), {0}));
  Hypergraph g = BuildHypergraphOrDie(spec);
  const Dataset data = Dataset::FromTables({a, b});
  {
    Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
    EXPECT_EQ(exec.Execute(plan).tuples.size(), 1u);  // only 4 == 4
  }
  // A scan filter excluding the matching row empties the join.
  spec.relations[0].filters.push_back(ColumnRange{0, 0, 3});
  {
    Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
    EXPECT_EQ(exec.Execute(plan).tuples.size(), 0u);
  }
  // Widening the filter to include it restores exactly the one match.
  spec.relations[0].filters[0] = ColumnRange{0, 2, 4};
  {
    Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g));
    EXPECT_EQ(exec.Execute(plan).tuples.size(), 1u);
  }
}

// --- QDL round-trips of the new syntax --------------------------------------

TEST(Qdl, RoundTripsEqPredicatesAndFilters) {
  QuerySpec spec;
  spec.AddRelation("R0", 100, 3);
  spec.AddRelation("R1", 200, 3);
  spec.relations[0].filters.push_back(ColumnRange{2, 0, 40});
  spec.relations[1].filters.push_back(ColumnRange{0, -5, 5});
  int p = spec.AddSimplePredicate(0, 1, 0.1);
  spec.predicates[p].derive_selectivity = true;
  spec.predicates[p].kind = PredicateKind::kEq;
  spec.predicates[p].refs = {{0, 0}, {1, 0}};

  const std::string text = WriteQdl(spec);
  Result<QuerySpec> parsed = ParseQdl(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const QuerySpec& back = parsed.value();
  ASSERT_EQ(back.NumRelations(), 2);
  EXPECT_EQ(back.relations[0].filters, spec.relations[0].filters);
  EXPECT_EQ(back.relations[1].filters, spec.relations[1].filters);
  ASSERT_EQ(back.predicates.size(), 1u);
  EXPECT_EQ(back.predicates[0].kind, PredicateKind::kEq);
  EXPECT_EQ(back.predicates[0].refs, spec.predicates[0].refs);
  EXPECT_TRUE(back.predicates[0].derive_selectivity);
  // Serialization is stable across one round trip.
  EXPECT_EQ(WriteQdl(back), text);
}

TEST(Qdl, RejectsMalformedFilters) {
  EXPECT_FALSE(ParseQdl("relation R card=10 filter=0:5\n").ok());
  EXPECT_FALSE(ParseQdl("relation R card=10 cols=1 filter=3:0:5\n").ok());
  EXPECT_FALSE(ParseQdl("relation R card=10 cols=1 filter=0:9:5\n").ok());
}

// --- The jobgen workload ----------------------------------------------------

JobGenOptions SmallJobGen() {
  JobGenOptions opts;
  opts.num_tables = 4;
  opts.rows_per_table = 80;
  opts.num_queries = 4;
  opts.max_relations = 4;
  return opts;
}

TEST(JobGen, DeterministicUnderASeed) {
  JobWorkload a = GenerateJobWorkload(SmallJobGen());
  JobWorkload b = GenerateJobWorkload(SmallJobGen());
  ASSERT_EQ(a.pool.size(), b.pool.size());
  for (size_t t = 0; t < a.pool.size(); ++t) {
    EXPECT_EQ(a.pool[t].rows, b.pool[t].rows);
  }
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(WriteQdl(a.queries[q].spec), WriteQdl(b.queries[q].spec));
  }
  EXPECT_EQ(a.full_catalog->stats_version(), b.full_catalog->stats_version());
}

TEST(JobGen, QueriesValidateAndBothCatalogsDescribeThePool) {
  JobWorkload w = GenerateJobWorkload(SmallJobGen());
  for (const JobQuery& q : w.queries) {
    Result<bool> valid = q.spec.Validate();
    EXPECT_TRUE(valid.ok()) << valid.error().message;
  }
  for (int t = 0; t < w.options.num_tables; ++t) {
    std::optional<TableStats> naive = w.naive_catalog->FindTable(
        w.pool_names[t]);
    std::optional<TableStats> full = w.full_catalog->FindTable(
        w.pool_names[t]);
    ASSERT_TRUE(naive.has_value() && full.has_value());
    EXPECT_DOUBLE_EQ(naive->row_count,
                     static_cast<double>(w.pool[t].NumRows()));
    EXPECT_DOUBLE_EQ(full->row_count, naive->row_count);
    // Only the full catalog carries distributions.
    EXPECT_FALSE(naive->columns[0].HasDistribution());
    EXPECT_TRUE(full->columns[0].HasDistribution());
  }
  EXPECT_DOUBLE_EQ(
      w.full_catalog->TablePairCorrelation(w.pool_names[0], w.pool_names[1]),
      1.0);
}

TEST(JobGen, HistModelGradesBetterThanStatsOnTheWorkload) {
  // The miniature of the bench gate: pooled per-class q-error medians
  // across the executed workload, hist <= stats. Fully seeded, so this is
  // a deterministic property of the generator + models, not a flake.
  JobWorkload w = GenerateJobWorkload(SmallJobGen());
  std::vector<double> stats_q, hist_q;
  for (size_t qi = 0; qi < w.queries.size(); ++qi) {
    const QuerySpec& spec = w.queries[qi].spec;
    Hypergraph g = BuildHypergraphOrDie(spec);
    CardinalityFeedback actuals;
    Dataset data = DatasetForJobQuery(w, static_cast<int>(qi));
    Executor exec(data, g, spec.relations, ConjunctsFromSpec(spec, g),
                  &actuals);
    StatsCardinalityModel stats(g, spec);
    HistogramCardinalityModel hist(g, spec, w.full_catalog.get());
    for (auto* model : {static_cast<const CardinalityModel*>(&stats),
                        static_cast<const CardinalityModel*>(&hist)}) {
      OptimizeResult r = OptimizeDphyp(g, *model, DefaultCostModel());
      ASSERT_TRUE(r.success);
      PlanTree plan = r.ExtractPlan(g);
      exec.Execute(plan);
      QErrorStats q = ComputePlanQError(plan, actuals);
      ASSERT_GT(q.classes, 0u);
      (model == &stats ? stats_q : hist_q).push_back(q.median_q);
    }
  }
  std::sort(stats_q.begin(), stats_q.end());
  std::sort(hist_q.begin(), hist_q.end());
  EXPECT_LE(hist_q[hist_q.size() / 2], stats_q[stats_q.size() / 2]);
}

}  // namespace
}  // namespace dphyp
