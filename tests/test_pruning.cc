// Branch-and-bound pruning agreement: the pruned enumerators must return
// *bit-identical* final plan costs to their unpruned runs — pruning is
// admissible (only plans provably unable to beat the GOO-seeded incumbent
// are skipped; strict comparisons keep ties) — across every workload
// generator shape. Also pins that pruning actually fires where it should
// and that the pruned table still extracts a valid plan.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/enumerator.h"
#include "test_helpers.h"
#include "baselines/goo.h"
#include "hypergraph/builder.h"
#include "core/dphyp.h"
#include "service/dispatch.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

struct PruningCase {
  std::string name;
  QuerySpec spec;
};

std::vector<PruningCase> PruningCases() {
  std::vector<PruningCase> cases;
  for (int n = 2; n <= 14; ++n) {
    cases.push_back({"chain" + std::to_string(n), MakeChainQuery(n)});
    if (n >= 3) {
      cases.push_back({"cycle" + std::to_string(n), MakeCycleQuery(n)});
    }
    cases.push_back({"star" + std::to_string(n), MakeStarQuery(n - 1)});
    // Cliques grow as 3^n csg-cmp pairs; 12 relations keeps the whole
    // sweep fast while still covering the dense regime.
    if (n <= 12) {
      cases.push_back({"clique" + std::to_string(n), MakeCliqueQuery(n)});
    }
  }
  // Hyperedge-split sweeps (the Sec. 4 generator): every split count from
  // the intact hyperedge to all-simple.
  for (int splits = 0; splits <= MaxHyperedgeSplits(4); ++splits) {
    cases.push_back({"cycle8s" + std::to_string(splits),
                     MakeCycleHypergraphQuery(8, splits)});
    cases.push_back({"star8s" + std::to_string(splits),
                     MakeStarHypergraphQuery(8, splits)});
  }
  for (int splits = 0; splits <= MaxHyperedgeSplits(6); ++splits) {
    cases.push_back({"cycle12s" + std::to_string(splits),
                     MakeCycleHypergraphQuery(12, splits)});
    cases.push_back({"star12s" + std::to_string(splits),
                     MakeStarHypergraphQuery(12, splits)});
  }
  for (uint64_t seed = 50; seed < 56; ++seed) {
    cases.push_back({"randh" + std::to_string(seed),
                     MakeRandomHypergraphQuery(10, 2, seed)});
  }
  return cases;
}

class PrunedMatchesUnpruned : public ::testing::TestWithParam<PruningCase> {};

TEST_P(PrunedMatchesUnpruned, BitIdenticalCosts) {
  Hypergraph g = BuildHypergraphOrDie(GetParam().spec);
  CardinalityEstimator est(g);
  OptimizerOptions pruned_options;
  pruned_options.enable_pruning = true;

  for (const char* algo : {"DPhyp", "DPccp", "DPsub"}) {
    if (std::string_view(algo) == "DPccp" && !g.complex_edge_ids().empty()) {
      continue;
    }
    OptimizeResult unpruned = OptimizeNamed(algo, g, est, DefaultCostModel());
    OptimizeResult pruned =
        OptimizeNamed(algo, g, est, DefaultCostModel(), pruned_options);
    ASSERT_TRUE(unpruned.success) << algo << unpruned.error;
    ASSERT_TRUE(pruned.success) << algo << pruned.error;
    // Bit-identical, not merely close: admissible pruning must leave the
    // winning plan's cost chain untouched.
    EXPECT_EQ(pruned.cost, unpruned.cost) << algo;
    EXPECT_EQ(pruned.cardinality, unpruned.cardinality) << algo;
    // Pruning can only remove table entries, never add them.
    EXPECT_LE(pruned.stats.dp_entries, unpruned.stats.dp_entries)
        << algo;
    // The pruned table must still materialize a plan for the root.
    PlanTree tree = pruned.ExtractPlan(g);
    EXPECT_EQ(tree.root()->set, g.AllNodes()) << algo;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PrunedMatchesUnpruned,
                         ::testing::ValuesIn(PruningCases()),
                         [](const ::testing::TestParamInfo<PruningCase>& info) {
                           return info.param.name;
                         });

TEST(Pruning, ActuallyPrunesOnStars) {
  // A 12-satellite star has enough dominated constructions that both cuts
  // must fire; otherwise the bench speedups would be measurement noise.
  Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(12));
  CardinalityEstimator est(g);
  OptimizerOptions options;
  options.enable_pruning = true;
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel(), options);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.dominated, 0u);
  EXPECT_GT(r.stats.pruned + r.stats.dominated, r.stats.ccp_pairs / 3)
      << "expected a large share of candidate pairs to be cut on a star";
  // The seed recorded in stats must be the GOO plan's cost.
  EXPECT_EQ(r.stats.initial_upper_bound, GooCostUpperBound(g, est, DefaultCostModel()));
  EXPECT_GE(r.stats.initial_upper_bound, r.cost);
}

TEST(Pruning, SeededBoundTightensSearch) {
  // Passing the known optimal cost as the initial incumbent must keep the
  // result identical while pruning at least as much as the GOO seed.
  Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(10));
  CardinalityEstimator est(g);
  OptimizeResult reference = OptimizeDphyp(g, est, DefaultCostModel(), {});
  ASSERT_TRUE(reference.success);

  OptimizerOptions seeded;
  seeded.enable_pruning = true;
  seeded.initial_upper_bound = reference.cost;
  OptimizeResult r = OptimizeDphyp(g, est, DefaultCostModel(), seeded);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.cost, reference.cost);
  EXPECT_EQ(r.stats.initial_upper_bound, reference.cost);
}

TEST(Pruning, UnsupportedCostModelRunsUnpruned) {
  // HashJoinModel does not declare pruning-safety; the flag must be a
  // no-op rather than a wrong answer.
  Hypergraph g = BuildHypergraphOrDie(MakeCycleQuery(7));
  CardinalityEstimator est(g);
  HashJoinModel model;
  OptimizerOptions options;
  options.enable_pruning = true;
  OptimizeResult pruned = OptimizeDphyp(g, est, model, options);
  OptimizeResult unpruned = OptimizeDphyp(g, est, model, {});
  ASSERT_TRUE(pruned.success);
  EXPECT_EQ(pruned.cost, unpruned.cost);
  EXPECT_EQ(pruned.stats.pruned, 0u);
  EXPECT_EQ(pruned.stats.dominated, 0u);
}

TEST(Pruning, AdaptiveDispatchMatchesUnprunedCosts) {
  // Bound-aware routing is on by default in the service dispatch; served
  // costs must equal a direct unpruned run of the same route.
  for (int n : {6, 9, 12}) {
    for (int shape = 0; shape < 3; ++shape) {
      QuerySpec spec = shape == 0   ? MakeChainQuery(n)
                       : shape == 1 ? MakeStarQuery(n - 1)
                                    : MakeCycleQuery(n);
      Hypergraph g = BuildHypergraphOrDie(spec);
      CardinalityEstimator est(g);
      DispatchPolicy pruned_policy;
      DispatchPolicy unpruned_policy;
      unpruned_policy.enable_pruning = false;
      OptimizeResult pruned =
          OptimizeAdaptive(g, est, DefaultCostModel(), pruned_policy);
      OptimizeResult unpruned =
          OptimizeAdaptive(g, est, DefaultCostModel(), unpruned_policy);
      ASSERT_TRUE(pruned.success);
      ASSERT_TRUE(unpruned.success);
      EXPECT_EQ(pruned.cost, unpruned.cost) << "n=" << n << " shape=" << shape;
    }
  }
}

}  // namespace
}  // namespace dphyp
