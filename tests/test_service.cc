// The plan-serving subsystem: fingerprint canonicalization, the sharded
// plan cache, adaptive dispatch, and the batch service's concurrency
// guarantees (concurrent costs bit-identical to serial).
#include "service/plan_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "hypergraph/builder.h"
#include "plan/validate.h"
#include "service/dispatch.h"
#include "core/dphyp.h"
#include "service/fingerprint.h"
#include "service/plan_cache.h"
#include "test_rng.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

// --- Fingerprint -----------------------------------------------------------

TEST(Fingerprint, StableAcrossRuns) {
  QuerySpec spec = MakeStarQuery(6);
  Fingerprint a = FingerprintQuery(spec);
  Fingerprint b = FingerprintQuery(spec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString().size(), 32u);
}

TEST(Fingerprint, InvariantUnderNodeRelabeling) {
  // The same 4-chain under the identity labeling and under the permutation
  // (0 1 2 3) -> (2 0 3 1): cardinalities and selectivities move with the
  // relabeling, so the queries are structurally identical.
  const double cards[4] = {100.0, 2000.0, 550.0, 40.0};
  const double sels[3] = {0.05, 0.01, 0.2};

  QuerySpec original;
  for (int i = 0; i < 4; ++i) original.AddRelation("A", cards[i]);
  for (int i = 0; i < 3; ++i) original.AddSimplePredicate(i, i + 1, sels[i]);

  const int perm[4] = {2, 0, 3, 1};  // node i becomes perm[i]
  QuerySpec relabeled;
  double permuted_cards[4];
  for (int i = 0; i < 4; ++i) permuted_cards[perm[i]] = cards[i];
  for (int i = 0; i < 4; ++i) relabeled.AddRelation("B", permuted_cards[i]);
  for (int i = 0; i < 3; ++i) {
    relabeled.AddSimplePredicate(perm[i], perm[i + 1], sels[i]);
  }

  EXPECT_EQ(FingerprintQuery(original), FingerprintQuery(relabeled));
}

TEST(Fingerprint, RelabelInvarianceOnGeneratorShapes) {
  // Reversing a chain is a relabeling; the fingerprint must agree.
  WorkloadOptions opts;
  QuerySpec chain = MakeChainQuery(7, opts);
  QuerySpec reversed;
  const int n = chain.NumRelations();
  std::vector<double> cards(n);
  for (int i = 0; i < n; ++i) cards[n - 1 - i] = chain.relations[i].cardinality;
  for (int i = 0; i < n; ++i) reversed.AddRelation("R", cards[i]);
  for (const Predicate& p : chain.predicates) {
    reversed.AddSimplePredicate(n - 1 - p.left.Min(), n - 1 - p.right.Min(),
                                p.selectivity, p.op);
  }
  EXPECT_EQ(FingerprintQuery(chain), FingerprintQuery(reversed));
}

TEST(Fingerprint, DistinguishesStructuralDifferences) {
  QuerySpec base = MakeChainQuery(5);
  Fingerprint fp_base = FingerprintQuery(base);

  QuerySpec different_card = base;
  different_card.relations[2].cardinality *= 2.0;
  EXPECT_NE(fp_base, FingerprintQuery(different_card));

  QuerySpec different_sel = base;
  different_sel.predicates[1].selectivity *= 0.5;
  EXPECT_NE(fp_base, FingerprintQuery(different_sel));

  QuerySpec different_op = base;
  different_op.predicates[0].op = OpType::kLeftOuterjoin;
  EXPECT_NE(fp_base, FingerprintQuery(different_op));

  EXPECT_NE(fp_base, FingerprintQuery(MakeChainQuery(6)));
  EXPECT_NE(fp_base, FingerprintQuery(MakeCycleQuery(5)));
}

TEST(Fingerprint, NamesDoNotMatter) {
  QuerySpec a = MakeCycleQuery(5);
  QuerySpec b = a;
  for (auto& r : b.relations) r.name = "renamed_" + r.name;
  EXPECT_EQ(FingerprintQuery(a), FingerprintQuery(b));
}

// Two non-isomorphic 3-regular graphs on 6 nodes with identical attributes:
// K3,3 and the 3-prism. WL-1 color refinement cannot tell them apart, so
// their fingerprints collide — the canonical stress case for the cache's
// consistency check.
QuerySpec MakeRegularSpec(const std::vector<std::pair<int, int>>& edges) {
  QuerySpec spec;
  for (int i = 0; i < 6; ++i) spec.AddRelation("R" + std::to_string(i), 1000.0);
  for (const auto& [u, v] : edges) spec.AddSimplePredicate(u, v, 0.1);
  return spec;
}

QuerySpec MakeK33Spec() {
  return MakeRegularSpec(
      {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}});
}

QuerySpec MakePrismSpec() {
  return MakeRegularSpec(
      {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}, {1, 4}, {2, 5}});
}

TEST(PlanService, FingerprintCollisionIsNotServedAsAHit) {
  // WL-1 genuinely collides here; if a refinement upgrade ever separates
  // these graphs, this guard (and the consistency check's last line of
  // defense) can be revisited.
  ASSERT_EQ(FingerprintQuery(MakeK33Spec()), FingerprintQuery(MakePrismSpec()));

  ServiceOptions opts;
  opts.num_threads = 1;
  PlanService service(opts);
  ServiceResult prism = service.OptimizeOne(MakePrismSpec());
  ServiceResult k33 = service.OptimizeOne(MakeK33Spec());
  ASSERT_TRUE(prism.success);
  ASSERT_TRUE(k33.success);
  // The colliding entry must not be served: the K3,3 query is re-optimized
  // and its plan must be valid for K3,3, not the prism.
  EXPECT_FALSE(k33.cache_hit);
  Hypergraph k33_graph = BuildHypergraphOrDie(MakeK33Spec());
  OptimizeResult fresh = OptimizeDphyp(k33_graph);
  EXPECT_EQ(k33.cost, fresh.cost);
  EXPECT_TRUE(
      ValidatePlanTree(k33_graph, k33.result.ExtractPlan(k33_graph)).ok());
}

// --- Catalog shape accessors ------------------------------------------------

TEST(QuerySpecAccessors, ReportShapeFeatures) {
  QuerySpec simple = MakeChainQuery(4);
  EXPECT_FALSE(simple.HasComplexPredicates());
  EXPECT_FALSE(simple.HasNonInnerPredicates());
  EXPECT_FALSE(simple.HasDependentLeaves());

  QuerySpec hyper = MakeCycleHypergraphQuery(8, 0);
  EXPECT_TRUE(hyper.HasComplexPredicates());

  QuerySpec outer = MakeChainQuery(4);
  outer.predicates[0].op = OpType::kLeftOuterjoin;
  EXPECT_TRUE(outer.HasNonInnerPredicates());

  QuerySpec lateral = MakeChainQuery(4);
  lateral.relations[2].free_tables = NodeSet::Single(0);
  EXPECT_TRUE(lateral.HasDependentLeaves());
}

// --- Plan cache -------------------------------------------------------------

TEST(PlanCache, HitAfterMissRehydratesIdenticalPlan) {
  QuerySpec spec = MakeStarQuery(7);
  Hypergraph g = BuildHypergraphOrDie(spec);
  Fingerprint key = FingerprintHypergraph(g);

  PlanCache cache(1 << 20, 4);
  EXPECT_FALSE(cache.Lookup(key, nullptr));

  OptimizeResult fresh = OptimizeDphyp(g);
  ASSERT_TRUE(fresh.success);
  cache.Insert(key, SerializePlan(fresh));

  CachedPlan cached;
  ASSERT_TRUE(cache.Lookup(key, &cached));
  OptimizeResult rehydrated = MaterializePlan(cached);
  ASSERT_TRUE(rehydrated.success);
  // Bit-identical determinism, not approximate agreement.
  EXPECT_EQ(rehydrated.cost, fresh.cost);
  EXPECT_EQ(rehydrated.cardinality, fresh.cardinality);

  // The rehydrated table supports plan extraction, and the plan matches.
  PlanTree fresh_plan = fresh.ExtractPlan(g);
  PlanTree cached_plan = rehydrated.ExtractPlan(g);
  EXPECT_EQ(fresh_plan.ToAlgebraString(g), cached_plan.ToAlgebraString(g));
  EXPECT_TRUE(ValidatePlanTree(g, cached_plan).ok());

  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, EvictsToByteBudget) {
  // A budget small enough that a few dozen 10-relation plans overflow it.
  PlanCache cache(16 << 10, 2);
  for (int i = 0; i < 64; ++i) {
    WorkloadOptions opts;
    opts.seed = 1000 + i;
    QuerySpec spec = MakeChainQuery(10, opts);
    Hypergraph g = BuildHypergraphOrDie(spec);
    OptimizeResult r = OptimizeDphyp(g);
    ASSERT_TRUE(r.success);
    cache.Insert(FingerprintHypergraph(g), SerializePlan(r));
  }
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.insertions, 64u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 16u << 10);
  EXPECT_LT(stats.entries, 64u);
}

TEST(PlanCache, LruKeepsRecentlyTouchedEntries) {
  PlanCache cache(8 << 10, 1);
  std::vector<Fingerprint> keys;
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 16; ++i) {
    WorkloadOptions opts;
    opts.seed = 2000 + i;
    specs.push_back(MakeChainQuery(8, opts));
    Hypergraph g = BuildHypergraphOrDie(specs.back());
    keys.push_back(FingerprintHypergraph(g));
    OptimizeResult r = OptimizeDphyp(g);
    ASSERT_TRUE(r.success);
    cache.Insert(keys.back(), SerializePlan(r));
    // Keep the first key hot throughout.
    cache.Lookup(keys.front(), nullptr);
  }
  EXPECT_TRUE(cache.Lookup(keys.front(), nullptr));
}

// --- Dispatch ---------------------------------------------------------------

TEST(Dispatch, RoutesByShape) {
  // Chains/cycles stay exact at any size: quadratic subgraph count.
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeChainQuery(40))).Name(),
               "DPccp");
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeCycleQuery(32))).Name(),
               "DPccp");
  // Small dense graphs go to DPsub; big cliques past the exact frontier
  // now land on iterative DP rather than straight GOO.
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(10))).Name(),
               "DPsub");
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(30))).Name(),
               "idp-k");
  // Hyperedges are DPhyp's home turf (when exact is feasible at all).
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeCycleHypergraphQuery(12, 2)))
          .Name(),
      "DPhyp");
  // Big stars blow past the degree frontier.
  EXPECT_STREQ(ChooseRoute(BuildHypergraphOrDie(MakeStarQuery(24))).Name(),
               "idp-k");
  // Large graphs inside the parallel frontier go to the intra-query
  // parallel enumerator *when the run would actually have workers*: the
  // widened frontier exists because the work splits. The hint is set
  // explicitly so the expectation holds on any machine.
  DispatchPolicy workers8;
  workers8.parallel_workers_hint = 8;
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeStarQuery(16)), workers8).Name(),
      "dphyp-par");
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(15)), workers8).Name(),
      "dphyp-par");
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(18)), workers8).Name(),
      "dphyp-par");
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(19)), workers8).Name(),
      "idp-k");
  // With one effective worker the parallel bid must decline, keeping the
  // pre-parallel routes: a single-worker "parallel" clique run would trade
  // the heuristic routes' milliseconds for seconds of exact enumeration.
  DispatchPolicy workers1;
  workers1.parallel_workers_hint = 1;
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeCliqueQuery(18)), workers1).Name(),
      "idp-k");
  EXPECT_STREQ(
      ChooseRoute(BuildHypergraphOrDie(MakeStarQuery(16)), workers1).Name(),
      "DPccp");
}

TEST(Dispatch, AdaptiveProducesValidPlansEverywhere) {
  std::vector<QuerySpec> specs = {MakeChainQuery(30), MakeCliqueQuery(9),
                                  MakeCliqueQuery(26),
                                  MakeCycleHypergraphQuery(8, 1),
                                  MakeStarQuery(10)};
  for (const QuerySpec& spec : specs) {
    Hypergraph g = BuildHypergraphOrDie(spec);
    OptimizeResult r = OptimizeAdaptive(g);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_TRUE(ValidatePlanTree(g, r.ExtractPlan(g)).ok());
  }
}

// --- Service ----------------------------------------------------------------

/// Stress traffic draws its seed from QDL_TEST_SEED via a per-call salt
/// (tests/test_rng.h); both services in a comparison consume the identical
/// spec vector, so any base seed exercises the same invariant.
std::vector<QuerySpec> TestTraffic(int count, uint64_t salt = 7) {
  TrafficMixOptions opts;
  opts.seed = testing_helpers::DerivedSeed(salt);
  opts.distinct_templates = 12;
  opts.min_relations = 4;
  opts.max_relations = 10;
  return GenerateTrafficMix(count, opts);
}

TEST(PlanService, ConcurrentBatchMatchesSerialBitIdentically) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::DerivedSeed(7)));
  std::vector<QuerySpec> traffic = TestTraffic(80);

  ServiceOptions serial_opts;
  serial_opts.num_threads = 1;
  serial_opts.cache_byte_budget = 0;  // pure computation, no caching
  PlanService serial(serial_opts);
  BatchOutcome serial_out = serial.OptimizeBatch(traffic);

  ServiceOptions conc_opts;
  conc_opts.num_threads = 8;
  conc_opts.cache_byte_budget = 0;
  PlanService concurrent(conc_opts);
  BatchOutcome conc_out = concurrent.OptimizeBatch(traffic);

  ASSERT_EQ(serial_out.results.size(), conc_out.results.size());
  for (size_t i = 0; i < traffic.size(); ++i) {
    ASSERT_TRUE(serial_out.results[i].success) << serial_out.results[i].error;
    ASSERT_TRUE(conc_out.results[i].success);
    EXPECT_EQ(serial_out.results[i].cost, conc_out.results[i].cost) << i;
    EXPECT_EQ(serial_out.results[i].cardinality,
              conc_out.results[i].cardinality)
        << i;
    EXPECT_EQ(serial_out.results[i].algorithm, conc_out.results[i].algorithm)
        << i;
  }
  EXPECT_EQ(serial_out.stats.failures, 0u);
  EXPECT_EQ(conc_out.stats.failures, 0u);
}

TEST(PlanService, CachedCostsEqualUncachedCosts) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::DerivedSeed(21)));
  std::vector<QuerySpec> traffic = TestTraffic(60, /*salt=*/21);

  ServiceOptions opts;
  opts.num_threads = 4;
  PlanService service(opts);
  BatchOutcome cold = service.OptimizeBatch(traffic);
  BatchOutcome warm = service.OptimizeBatch(traffic);

  EXPECT_EQ(warm.stats.cache_hits, warm.stats.queries);
  for (size_t i = 0; i < traffic.size(); ++i) {
    ASSERT_TRUE(cold.results[i].success);
    ASSERT_TRUE(warm.results[i].success);
    EXPECT_EQ(cold.results[i].cost, warm.results[i].cost) << i;
    EXPECT_TRUE(warm.results[i].cache_hit) << i;
  }
  // The traffic repeats templates, so even the cold batch sees hits.
  EXPECT_GT(cold.stats.cache_hits, 0u);
  EXPECT_LT(cold.stats.cache.insertions, cold.stats.queries);
}

TEST(PlanService, ServesMixedTrafficIncludingFrontierRoutes) {
  TrafficMixOptions mix;
  mix.seed = 33;
  mix.min_relations = 20;
  mix.max_relations = 30;
  mix.clique_max_relations = 26;
  mix.distinct_templates = 8;
  std::vector<QuerySpec> traffic = GenerateTrafficMix(24, mix);

  ServiceOptions opts;
  opts.num_threads = 4;
  PlanService service(opts);
  BatchOutcome out = service.OptimizeBatch(traffic);
  EXPECT_EQ(out.stats.failures, 0u);
  uint64_t exact = out.stats.route_counts["DPccp"] +
                   out.stats.route_counts["DPhyp"] +
                   out.stats.route_counts["DPsub"] +
                   out.stats.route_counts["dphyp-par"];
  // Past the exact frontier the auction now resolves to the beyond-exact
  // bidders (idp-k on inner-join graphs, anneal otherwise); GOO remains
  // the floor for shapes both refuse.
  uint64_t frontier = out.stats.route_counts["idp-k"] +
                      out.stats.route_counts["anneal"] +
                      out.stats.route_counts["GOO"];
  // Traffic this size must exercise both exact DP and the frontier routes.
  EXPECT_GT(exact, 0u);
  EXPECT_GT(frontier, 0u);
  // Every plan extracted from a batch result must validate.
  for (size_t i = 0; i < traffic.size(); ++i) {
    Hypergraph g = BuildHypergraphOrDie(traffic[i]);
    PlanTree plan = out.results[i].result.ExtractPlan(g);
    EXPECT_TRUE(ValidatePlanTree(g, plan).ok()) << i;
  }
}

// --- Statistics-driven estimation through the service -----------------------

TEST(PlanService, StatsVersionBumpInvalidatesCachedPlans) {
  auto catalog = std::make_shared<Catalog>();
  QuerySpec spec = MakeChainQuery(6);
  for (const RelationInfo& rel : spec.relations) {
    catalog->AddTable(TableStats{rel.name, rel.cardinality, {}});
  }

  ServiceOptions opts;
  opts.num_threads = 1;
  opts.catalog = catalog;
  PlanService service(opts);
  const uint64_t v0 = service.stats_version();
  EXPECT_EQ(v0, catalog->stats_version());

  ServiceResult cold = service.OptimizeOne(spec);
  ASSERT_TRUE(cold.success) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  ServiceResult warm = service.OptimizeOne(spec);
  ASSERT_TRUE(warm.success);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.cost, cold.cost);

  // An ANALYZE-style refresh bumps the version; the cached plan keyed
  // under the old statistics must not be served again.
  ASSERT_TRUE(catalog->SetRowCount(spec.relations[0].name, 123456.0));
  EXPECT_GT(service.stats_version(), v0);
  ServiceResult after_bump = service.OptimizeOne(spec);
  ASSERT_TRUE(after_bump.success);
  EXPECT_FALSE(after_bump.cache_hit);

  // And the new key caches normally again.
  ServiceResult rewarm = service.OptimizeOne(spec);
  EXPECT_TRUE(rewarm.cache_hit);

  // The same invalidation must hold under the stats model, whose own
  // fingerprint also tracks the catalog version — the service key mixes
  // the two *nestedly*, so they cannot cancel. BumpStatsVersion changes
  // no estimate at all, making this the pure re-keying check.
  ServiceResult stats_cold = service.OptimizeOne(spec, "stats");
  ASSERT_TRUE(stats_cold.success) << stats_cold.error;
  EXPECT_TRUE(service.OptimizeOne(spec, "stats").cache_hit);
  catalog->BumpStatsVersion();
  EXPECT_FALSE(service.OptimizeOne(spec, "stats").cache_hit);
  EXPECT_TRUE(service.OptimizeOne(spec, "stats").cache_hit);
}

TEST(PlanService, ScopedFeedbackIsNotServedToOtherQueries) {
  QuerySpec recorded = MakeChainQuery(5);
  Hypergraph recorded_g = BuildHypergraphOrDie(recorded);

  auto feedback = std::make_shared<CardinalityFeedback>();
  // Pretend the chain was executed: observe its root class.
  feedback->Record(recorded_g.AllNodes(), 42.0);

  ServiceOptions opts;
  opts.num_threads = 1;
  opts.feedback = feedback;
  opts.feedback_scope = FingerprintHypergraph(recorded_g);
  PlanService service(opts);

  // The recorded query may use the oracle.
  ServiceResult ok = service.OptimizeOne(recorded, "oracle");
  ASSERT_TRUE(ok.success) << ok.error;
  EXPECT_EQ(ok.cardinality, 42.0);

  // A structurally different query must not see the store: its NodeSet
  // keys would alias the chain's. Structured error, not silent garbage.
  ServiceResult other = service.OptimizeOne(MakeStarQuery(4), "oracle");
  EXPECT_FALSE(other.success);
  EXPECT_NE(other.error.find("feedback"), std::string::npos);
}

TEST(PlanService, ModelsAreSelectablePerQueryAndNeverShareCacheEntries) {
  // A chain with derived selectivities and ndv stats: product and stats
  // models estimate differently, so their plans/cardinalities differ.
  auto catalog = std::make_shared<Catalog>();
  QuerySpec spec;
  for (int i = 0; i < 5; ++i) {
    std::string name = "R" + std::to_string(i);
    spec.AddRelation(name, 50.0, 1);
    catalog->AddTable(
        TableStats{name, 50.0, {ColumnStats{2.0, 0.0, 96.0}}});
  }
  for (int i = 0; i + 1 < 5; ++i) {
    int p = spec.AddSimplePredicate(i, i + 1, 0.1);
    spec.predicates[p].derive_selectivity = true;
    spec.predicates[p].refs = {{i, 0}, {i + 1, 0}};
    spec.predicates[p].modulus = 2;
  }
  spec.BindCatalog(catalog);

  ServiceOptions opts;
  opts.num_threads = 1;
  opts.catalog = catalog;
  PlanService service(opts);

  ServiceResult product = service.OptimizeOne(spec, "product");
  ASSERT_TRUE(product.success) << product.error;
  EXPECT_EQ(product.model, "product");
  ServiceResult stats = service.OptimizeOne(spec, "stats");
  ASSERT_TRUE(stats.success) << stats.error;
  EXPECT_EQ(stats.model, "stats");
  // Different models, same graph: both were fresh optimizations (no
  // cross-model cache hit) with different estimates.
  EXPECT_FALSE(product.cache_hit);
  EXPECT_FALSE(stats.cache_hit);
  // 50^5 * 0.1^4 vs 50^5 * 0.5^4.
  EXPECT_NE(product.cardinality, stats.cardinality);

  // Each model's own repeat is a hit, served with that model's numbers.
  ServiceResult product2 = service.OptimizeOne(spec, "product");
  ServiceResult stats2 = service.OptimizeOne(spec, "stats");
  EXPECT_TRUE(product2.cache_hit);
  EXPECT_TRUE(stats2.cache_hit);
  EXPECT_EQ(product2.cardinality, product.cardinality);
  EXPECT_EQ(stats2.cardinality, stats.cardinality);

  // Unknown models are structured per-query failures.
  ServiceResult unknown = service.OptimizeOne(spec, "histogram");
  EXPECT_FALSE(unknown.success);
  EXPECT_NE(unknown.error.find("unknown cardinality model"),
            std::string::npos);
  // The oracle without a feedback store is a structured failure too.
  ServiceResult oracle = service.OptimizeOne(spec, "oracle");
  EXPECT_FALSE(oracle.success);
  EXPECT_NE(oracle.error.find("feedback"), std::string::npos);
}

TEST(PlanService, StatsAreCoherent) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::DerivedSeed(7)));
  std::vector<QuerySpec> traffic = TestTraffic(40);
  PlanService service{ServiceOptions{}};
  BatchOutcome out = service.OptimizeBatch(traffic);
  EXPECT_EQ(out.stats.queries, 40u);
  EXPECT_GT(out.stats.queries_per_sec, 0.0);
  EXPECT_LE(out.stats.p50_latency_ms, out.stats.p99_latency_ms);
  EXPECT_LE(out.stats.p99_latency_ms, out.stats.max_latency_ms * 1.0001);
  // route_counts is the fresh-optimization ledger: every query was either
  // freshly routed, served from the cache, or coalesced onto an in-flight
  // optimization. Nothing is counted twice, nothing is dropped.
  uint64_t routed = 0;
  for (const auto& [name, count] : out.stats.route_counts) routed += count;
  EXPECT_EQ(routed + out.stats.cache_hits + out.stats.coalesced_hits,
            out.stats.queries);
  EXPECT_GE(routed, 1u);
  EXPECT_FALSE(out.stats.ToString().empty());
}

// --- Burst-traffic serving (coalescing + admission via Serve) --------------

// The stampede: 16 threads submit the same hot, uncached fingerprint
// concurrently, and exactly ONE optimization may run. The leader is started
// first and its in-flight registration awaited, so the followers
// deterministically overlap it; every follower is then either a coalesced
// hit (joined the running flight) or a cache hit (arrived after the
// publish) — never a second enumeration.
TEST(PlanService, StampedeRunsExactlyOneOptimization) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::DerivedSeed(21)));
  // A clique at the dense-routing boundary: expensive enough (milliseconds
  // of exact DP) that the flight window is wide, and routed exactly.
  QuerySpec spec = MakeCliqueQuery(11);
  ServiceOptions opts;
  opts.num_threads = 2;
  PlanService service(opts);

  constexpr int kThreads = 16;
  std::vector<ServiceResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  threads.emplace_back([&] {
    QueryRequest request;
    request.spec = &spec;
    results[0] = service.Serve(request);
  });
  // Bounded wait for the leader's flight; if the leader somehow finishes
  // first, the followers become cache hits and the assertions below still
  // hold — the test never flakes on scheduling, it only loses coverage.
  for (int spins = 0; spins < 200000 && service.inflight().InFlight() == 0;
       ++spins) {
    std::this_thread::yield();
  }
  for (int t = 1; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryRequest request;
      request.spec = &spec;
      results[t] = service.Serve(request);
    });
  }
  for (std::thread& t : threads) t.join();

  uint64_t coalesced = 0, cache_hits = 0, fresh = 0;
  for (const ServiceResult& r : results) {
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.cost, results[0].cost);  // identical plan for everyone
    if (r.coalesced) {
      ++coalesced;
    } else if (r.cache_hit) {
      ++cache_hits;
    } else {
      ++fresh;
    }
  }
  EXPECT_EQ(fresh, 1u);
  EXPECT_EQ(coalesced + cache_hits, static_cast<uint64_t>(kThreads - 1));

  // The service's own ledger agrees: one routed optimization, the rest
  // split between coalesced and cache hits.
  ServiceStats stats = service.LifetimeStats();
  uint64_t routed = 0;
  for (const auto& [name, count] : stats.route_counts) routed += count;
  EXPECT_EQ(routed, 1u);
  EXPECT_EQ(stats.coalesced_hits, coalesced);
  EXPECT_EQ(stats.cache_hits, cache_hits);
  EXPECT_EQ(service.inflight().GetStats().flights, 1u);
}

// A coalesced follower must receive the full materialized plan, not just
// numbers: the rehydrated result supports plan extraction and validation
// exactly like a fresh optimization's.
TEST(PlanService, CoalescedResultIsMaterialized) {
  QuerySpec spec = MakeCliqueQuery(10);
  ServiceOptions opts;
  opts.num_threads = 2;
  PlanService service(opts);

  ServiceResult leader_result;
  std::thread leader([&] {
    QueryRequest request;
    request.spec = &spec;
    leader_result = service.Serve(request);
  });
  for (int spins = 0; spins < 200000 && service.inflight().InFlight() == 0;
       ++spins) {
    std::this_thread::yield();
  }
  QueryRequest request;
  request.spec = &spec;
  ServiceResult follower_result = service.Serve(request);
  leader.join();

  ASSERT_TRUE(leader_result.success) << leader_result.error;
  ASSERT_TRUE(follower_result.success) << follower_result.error;
  EXPECT_EQ(follower_result.cost, leader_result.cost);
  // Whichever way the follower was served, its plan must extract cleanly.
  Hypergraph graph = BuildHypergraphOrDie(spec);
  PlanTree plan = follower_result.result.ExtractPlan(graph);
  EXPECT_TRUE(ValidatePlanTree(graph, plan).ok());
}

}  // namespace
}  // namespace dphyp
