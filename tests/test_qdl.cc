#include "workload/qdl.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

TEST(Qdl, ParsesMinimalQuery) {
  Result<QuerySpec> result = ParseQdl(R"(
# a two-relation query
relation A card=100
relation B card=200 cols=3
predicate left=A right=B sel=0.05
)");
  ASSERT_TRUE(result.ok()) << result.error().message;
  const QuerySpec& spec = result.value();
  EXPECT_EQ(spec.NumRelations(), 2);
  EXPECT_DOUBLE_EQ(spec.relations[0].cardinality, 100.0);
  EXPECT_EQ(spec.relations[1].num_columns, 3);
  ASSERT_EQ(spec.predicates.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.predicates[0].selectivity, 0.05);
  EXPECT_FALSE(spec.predicates[0].refs.empty());  // payload auto-filled
}

TEST(Qdl, ParsesHyperedgesAndOperators) {
  Result<QuerySpec> result = ParseQdl(R"(
relation R0 card=10
relation R1 card=20
relation R2 card=30
relation R3 card=40
predicate left=R0 right=R1 sel=0.1
predicate left=R0,R1 right=R2,R3 sel=0.01 op=leftouterjoin
predicate left=R2 right=R3 sel=0.2 flex=R1
)");
  ASSERT_TRUE(result.ok()) << result.error().message;
  const QuerySpec& spec = result.value();
  ASSERT_EQ(spec.predicates.size(), 3u);
  EXPECT_EQ(spec.predicates[1].left.Count(), 2);
  EXPECT_EQ(spec.predicates[1].op, OpType::kLeftOuterjoin);
  EXPECT_EQ(spec.predicates[2].flex, NodeSet::Single(1));
}

TEST(Qdl, ParsesLateralRelations) {
  Result<QuerySpec> result = ParseQdl(R"(
relation R0 card=10
relation F1 card=20 free=R0
predicate left=R0 right=F1 sel=0.5
)");
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().relations[1].free_tables, NodeSet::Single(0));
}

TEST(Qdl, ParsesExplicitRefsAndModulus) {
  Result<QuerySpec> result = ParseQdl(R"(
relation A card=10 cols=2
relation B card=10 cols=2
predicate left=A right=B sel=0.25 mod=4 refs=A.1,B.0
)");
  ASSERT_TRUE(result.ok()) << result.error().message;
  const Predicate& p = result.value().predicates[0];
  EXPECT_EQ(p.modulus, 4);
  ASSERT_EQ(p.refs.size(), 2u);
  EXPECT_EQ(p.refs[0], (ColumnRef{0, 1}));
  EXPECT_EQ(p.refs[1], (ColumnRef{1, 0}));
}

TEST(Qdl, ErrorsAreDescriptive) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    Result<QuerySpec> r = ParseQdl(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_NE(r.error().message.find(needle), std::string::npos)
        << r.error().message;
  };
  expect_error("frobnicate x\n", "unknown directive");
  expect_error("relation A\n", "needs card=");
  expect_error("relation A card=1\nrelation A card=2\n", "duplicate");
  expect_error("relation A card=1\npredicate left=A right=B sel=0.1\n",
               "unknown relation");
  expect_error("relation A card=1\nrelation B card=1\n"
               "predicate left=A right=B sel=0.1 zap=1\n",
               "unknown predicate attribute");
  // Selectivity validation is structured, never a silent default.
  expect_error("relation A card=1\nrelation B card=1\n"
               "predicate left=A right=B sel=0\n",
               "sel= must be in (0, 1]");
  expect_error("relation A card=1\nrelation B card=1\n"
               "predicate left=A right=B sel=1.5\n",
               "sel= must be in (0, 1]");
  expect_error("relation A card=1\nrelation B card=1\n"
               "predicate left=A right=B sel=-0.1\n",
               "sel= must be in (0, 1]");
  expect_error("relation A card=1\nrelation B card=1\n"
               "predicate left=A right=B sel=abc\n",
               "sel= must be a number");
  expect_error("relation A card=1 ndv=0\n", "ndv values must be > 0");
}

TEST(Qdl, OmittedSelectivityMeansDeriveFromStats) {
  Result<QuerySpec> r = ParseQdl(R"(
relation A card=100 ndv=25
relation B card=50 ndv=10
predicate left=A right=B
predicate left=A right=B sel=0.5
)");
  ASSERT_TRUE(r.ok()) << r.error().message;
  const QuerySpec& spec = r.value();
  EXPECT_TRUE(spec.predicates[0].derive_selectivity);
  EXPECT_DOUBLE_EQ(spec.predicates[0].selectivity, 0.1);  // product default
  EXPECT_FALSE(spec.predicates[1].derive_selectivity);
  EXPECT_DOUBLE_EQ(spec.predicates[1].selectivity, 0.5);

  // ndv= builds and binds a statistics catalog.
  ASSERT_NE(spec.catalog, nullptr);
  auto a = spec.catalog->FindTable("A");
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->row_count, 100.0);
  ASSERT_EQ(a->columns.size(), 1u);
  EXPECT_DOUBLE_EQ(a->columns[0].distinct_count, 25.0);
  EXPECT_EQ(spec.relations[0].table_id, spec.catalog->IndexOf("A"));

  // The derived predicate's executable payload matches the derivation:
  // max(ndv) = 25 -> selectivity 1/25 -> modulus 25.
  EXPECT_EQ(spec.predicates[0].modulus, 25);

  // A user-written mod= on a sel-less predicate is never clobbered by the
  // stats-payload derivation, and predicates over stats-less relations
  // keep the default payload path.
  Result<QuerySpec> kept = ParseQdl(R"(
relation A card=100 ndv=25
relation B card=50
relation C card=50
predicate left=A right=B mod=7
predicate left=B right=C
)");
  ASSERT_TRUE(kept.ok()) << kept.error().message;
  EXPECT_EQ(kept.value().predicates[0].modulus, 7);
  // B and C have no column stats: default payload (modulus ~ 1/0.1).
  EXPECT_EQ(kept.value().predicates[1].modulus, 10);

  // Round trip: derived predicates stay derived, stats survive.
  Result<QuerySpec> again = ParseQdl(WriteQdl(spec));
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_TRUE(again.value().predicates[0].derive_selectivity);
  ASSERT_NE(again.value().catalog, nullptr);
  auto b = again.value().catalog->FindTable("B");
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(b->columns[0].distinct_count, 10.0);
}

TEST(Qdl, RejectsInvalidSpecs) {
  // Parses syntactically but fails QuerySpec validation (overlapping sides).
  Result<QuerySpec> r = ParseQdl(R"(
relation A card=10
relation B card=10
predicate left=A,B right=B sel=0.1
)");
  EXPECT_FALSE(r.ok());
}

TEST(Qdl, RoundTripsGeneratedWorkloads) {
  for (int splits = 0; splits <= 3; ++splits) {
    QuerySpec original = MakeCycleHypergraphQuery(8, splits);
    Result<QuerySpec> reparsed = ParseQdl(WriteQdl(original));
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    const QuerySpec& spec = reparsed.value();
    ASSERT_EQ(spec.NumRelations(), original.NumRelations());
    ASSERT_EQ(spec.predicates.size(), original.predicates.size());
    for (size_t i = 0; i < original.predicates.size(); ++i) {
      EXPECT_EQ(spec.predicates[i].left, original.predicates[i].left) << i;
      EXPECT_EQ(spec.predicates[i].right, original.predicates[i].right) << i;
      EXPECT_EQ(spec.predicates[i].op, original.predicates[i].op) << i;
      EXPECT_EQ(spec.predicates[i].modulus, original.predicates[i].modulus) << i;
      EXPECT_EQ(spec.predicates[i].refs, original.predicates[i].refs) << i;
    }
    for (int r = 0; r < original.NumRelations(); ++r) {
      EXPECT_EQ(spec.relations[r].name, original.relations[r].name);
    }
  }
}

TEST(Qdl, RoundTrippedSpecsBuildIdenticalGraphs) {
  QuerySpec original = MakeStarHypergraphQuery(8, 2);
  Result<QuerySpec> reparsed = ParseQdl(WriteQdl(original));
  ASSERT_TRUE(reparsed.ok());
  Hypergraph a = BuildHypergraphOrDie(original);
  Hypergraph b = BuildHypergraphOrDie(reparsed.value());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (int e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(e).left, b.edge(e).left);
    EXPECT_EQ(a.edge(e).right, b.edge(e).right);
    EXPECT_EQ(a.edge(e).flex, b.edge(e).flex);
  }
}

TEST(Qdl, LoadMissingFileFails) {
  Result<QuerySpec> r = LoadQdlFile("/nonexistent/path.qdl");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dphyp
