// Operator semantics of the mini executor on hand-checked inputs.
//
// Fixture data (single column each):
//   R0 = [0, 1, 2, 3]        R1 = [0, 2, 4, 5]
// Predicate: R0.c0 + R1.c0 ≡ 0 (mod 2), i.e. equal parity.
//   R0 row matches: 0 -> {0,2,4}, 1 -> {5}, 2 -> {0,2,4}, 3 -> {5}.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"

namespace dphyp {
namespace {

ExecRelation Table(std::vector<int64_t> column) {
  ExecRelation t;
  t.num_columns = 1;
  for (int64_t v : column) t.rows.push_back({v});
  return t;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    spec_.AddRelation("R0", 4.0, 1);
    spec_.AddRelation("R1", 4.0, 1);
    int p = spec_.AddSimplePredicate(0, 1, 0.5);
    spec_.predicates[p].refs = {{0, 0}, {1, 0}};
    spec_.predicates[p].modulus = 2;
    graph_ = BuildHypergraphOrDie(spec_);
    dataset_ = Dataset::FromTables({Table({0, 1, 2, 3}), Table({0, 2, 4, 5})});
  }

  ExecResult Run(OpType op) {
    // The hypergraph edge must carry the operator under test (nestjoins
    // anchor their aggregate on their edge's right side).
    spec_.predicates[0].op = op;
    graph_ = BuildHypergraphOrDie(spec_);
    PlanBuilder builder;
    const PlanTreeNode* l = builder.Leaf(0, 4);
    const PlanTreeNode* r = builder.Leaf(1, 4);
    PlanTree plan = builder.Build(builder.Op(op, l, r, {0}));
    Executor exec(dataset_, graph_, spec_.relations,
                  ConjunctsFromSpec(spec_, graph_));
    return exec.Execute(plan);
  }

  QuerySpec spec_;
  Hypergraph graph_;
  Dataset dataset_;
};

TEST_F(ExecutorTest, InnerJoin) {
  ExecResult r = Run(OpType::kJoin);
  // Even R0 rows (0,2) x even R1 rows (0,2,4) + odd x odd (1,3)x(5).
  EXPECT_EQ(r.tuples.size(), 2u * 3 + 2 * 1);
}

TEST_F(ExecutorTest, LeftSemijoin) {
  ExecResult r = Run(OpType::kLeftSemijoin);
  ASSERT_EQ(r.tuples.size(), 4u);  // every R0 row has a match
  for (const ExecTuple& t : r.tuples) {
    EXPECT_EQ(t.rows[1], ExecTuple::kAbsent);  // right side projected away
    EXPECT_GE(t.rows[0], 0);
  }
}

TEST_F(ExecutorTest, LeftAntijoin) {
  ExecResult r = Run(OpType::kLeftAntijoin);
  EXPECT_TRUE(r.tuples.empty());  // every R0 row matches something
}

TEST_F(ExecutorTest, LeftOuterjoinNoUnmatched) {
  ExecResult outer = Run(OpType::kLeftOuterjoin);
  ExecResult inner = Run(OpType::kJoin);
  EXPECT_TRUE(outer.SameAs(inner));  // all rows match: LOJ == join
}

TEST_F(ExecutorTest, FullOuterPadsUnmatchedRight) {
  // R1 row 5 (value 5, odd) matches R0 rows 1,3 — everything matches, so
  // first check equality with inner; then remove odd R0 rows via a second
  // dataset to create unmatched right rows.
  ExecResult foj = Run(OpType::kFullOuterjoin);
  ExecResult inner = Run(OpType::kJoin);
  EXPECT_TRUE(foj.SameAs(inner));

  dataset_ = Dataset::FromTables({Table({0, 2}), Table({0, 2, 4, 5})});
  ExecResult foj2 = Run(OpType::kFullOuterjoin);
  // matches: 2 x {0,2,4} = 6; unmatched right: row 3 (value 5) -> 1 padded.
  EXPECT_EQ(foj2.tuples.size(), 7u);
  int padded = 0;
  for (const ExecTuple& t : foj2.tuples) {
    if (t.rows[0] == ExecTuple::kNull) ++padded;
  }
  EXPECT_EQ(padded, 1);
}

TEST_F(ExecutorTest, LeftOuterjoinPadsUnmatchedLeft) {
  dataset_ = Dataset::FromTables({Table({0, 1}), Table({0})});
  ExecResult r = Run(OpType::kLeftOuterjoin);
  // R0 value 0 matches R1 value 0; R0 value 1 unmatched -> NULL-padded.
  ASSERT_EQ(r.tuples.size(), 2u);
  int padded = 0;
  for (const ExecTuple& t : r.tuples) {
    if (t.rows[1] == ExecTuple::kNull) ++padded;
  }
  EXPECT_EQ(padded, 1);
}

TEST_F(ExecutorTest, NestjoinAggregatesPerLeftTuple) {
  ExecResult r = Run(OpType::kLeftNestjoin);
  ASSERT_EQ(r.tuples.size(), 4u);  // one output per R0 row, always
  for (const ExecTuple& t : r.tuples) {
    ASSERT_EQ(t.extras.size(), 1u);
    EXPECT_EQ(t.extras[0].first, 0);  // keyed by edge 0
    int64_t value = t.extras[0].second;
    int64_t count = value / 1000003;
    int64_t sum = value % 1000003;
    if (dataset_.table(0).Value(t.rows[0], 0) % 2 == 0) {
      EXPECT_EQ(count, 3);      // matches {0,2,4}
      EXPECT_EQ(sum, 0 + 2 + 4);
    } else {
      EXPECT_EQ(count, 1);      // matches {5}
      EXPECT_EQ(sum, 5);
    }
  }
}

TEST_F(ExecutorTest, StrongPredicateRejectsNull) {
  // (R0 LOJ R1) with an unmatched left row, then joined again: the NULL
  // side must fail the predicate (strongness).
  dataset_ = Dataset::FromTables({Table({0, 1}), Table({0})});
  ExecResult loj = Run(OpType::kLeftOuterjoin);
  ASSERT_EQ(loj.tuples.size(), 2u);
  // Simulate predicate evaluation against the padded tuple by running a
  // semijoin on top conceptually: here we just assert padding exists; the
  // reorder_semantics tests exercise full NULL flows.
  bool has_null = false;
  for (const ExecTuple& t : loj.tuples) {
    if (t.rows[1] == ExecTuple::kNull) has_null = true;
  }
  EXPECT_TRUE(has_null);
}

TEST(ExecutorLateral, DependentJoinFiltersPerOuterRow) {
  // R0 = [0,1,2]; F1 = lateral leaf over R0 with correlation
  // R0.c0 + F1.c0 ≡ 0 (mod 2); join predicate TRUE (modulus 1).
  QuerySpec spec;
  spec.AddRelation("R0", 3.0, 1);
  spec.AddRelation("F1", 4.0, 1);
  spec.relations[1].free_tables = NodeSet::Single(0);
  spec.relations[1].corr_refs = {{1, 0}, {0, 0}};
  spec.relations[1].corr_modulus = 2;
  int p = spec.AddSimplePredicate(0, 1, 1.0);
  spec.predicates[p].refs = {{0, 0}, {1, 0}};
  spec.predicates[p].modulus = 1;  // always true
  Hypergraph graph = BuildHypergraphOrDie(spec);
  Dataset ds = Dataset::FromTables({
      ExecRelation{1, {{0}, {1}, {2}}},
      ExecRelation{1, {{0}, {1}, {2}, {3}}},
  });

  PlanBuilder builder;
  const PlanTreeNode* l = builder.Leaf(0, 3);
  const PlanTreeNode* r = builder.Leaf(1, 4);
  PlanTree plan = builder.Build(builder.Op(OpType::kDepJoin, l, r, {0}));
  Executor exec(ds, graph, spec.relations, ConjunctsFromSpec(spec, graph));
  ExecResult result = exec.Execute(plan);
  // Each outer row keeps the F1 rows of equal parity: 2 per outer row.
  EXPECT_EQ(result.tuples.size(), 6u);
}

TEST(ExecResultTest, CanonicalDetectsDifferences) {
  ExecResult a, b;
  ExecTuple t1;
  t1.rows = {0, 1};
  ExecTuple t2;
  t2.rows = {1, 0};
  a.tuples = {t1, t2};
  b.tuples = {t2, t1};  // order must not matter
  EXPECT_TRUE(a.SameAs(b));
  b.tuples = {t1, t1};
  EXPECT_FALSE(a.SameAs(b));
}

}  // namespace
}  // namespace dphyp
