// Workload generator structure tests, including the exact G0..G3 hyperedge
// split sequence the paper describes for the 8-cycle (Sec. 4).
#include "workload/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "hypergraph/builder.h"
#include "hypergraph/connectivity.h"
#include "test_rng.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

TEST(Generators, ChainStructure) {
  QuerySpec spec = MakeChainQuery(5);
  EXPECT_EQ(spec.NumRelations(), 5);
  ASSERT_EQ(spec.predicates.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spec.predicates[i].left, NodeSet::Single(i));
    EXPECT_EQ(spec.predicates[i].right, NodeSet::Single(i + 1));
  }
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(Generators, CycleClosesTheLoop) {
  QuerySpec spec = MakeCycleQuery(6);
  ASSERT_EQ(spec.predicates.size(), 6u);
  const Predicate& closing = spec.predicates.back();
  EXPECT_EQ(closing.left | closing.right, Set({0, 5}));
}

TEST(Generators, StarHubCenter) {
  QuerySpec spec = MakeStarQuery(8);
  EXPECT_EQ(spec.NumRelations(), 9);
  ASSERT_EQ(spec.predicates.size(), 8u);
  for (const Predicate& p : spec.predicates) {
    EXPECT_TRUE(p.left.Contains(0));
    EXPECT_EQ(p.right.Count(), 1);
  }
}

TEST(Generators, CliqueEdgeCount) {
  QuerySpec spec = MakeCliqueQuery(6);
  EXPECT_EQ(spec.predicates.size(), 15u);  // C(6,2)
}

TEST(Generators, Deterministic) {
  QuerySpec a = MakeChainQuery(6, {.seed = 7});
  QuerySpec b = MakeChainQuery(6, {.seed = 7});
  QuerySpec c = MakeChainQuery(6, {.seed = 8});
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.relations[i].cardinality, b.relations[i].cardinality);
  }
  bool any_diff = false;
  for (int i = 0; i < 6; ++i) {
    if (a.relations[i].cardinality != c.relations[i].cardinality)
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, CycleHypergraphG0MatchesFigure4a) {
  QuerySpec spec = MakeCycleHypergraphQuery(8, 0);
  ASSERT_EQ(spec.predicates.size(), 9u);  // 8 cycle edges + 1 hyperedge
  const Predicate& hyper = spec.predicates.back();
  EXPECT_EQ(hyper.left, Set({0, 1, 2, 3}));
  EXPECT_EQ(hyper.right, Set({4, 5, 6, 7}));
}

TEST(Generators, CycleHypergraphSplitSequenceMatchesPaper) {
  // G1: ({R0,R1},{R6,R7}) and ({R2,R3},{R4,R5}).
  {
    QuerySpec spec = MakeCycleHypergraphQuery(8, 1);
    ASSERT_EQ(spec.predicates.size(), 10u);
    std::set<std::pair<uint64_t, uint64_t>> got;
    for (size_t i = 8; i < spec.predicates.size(); ++i) {
      got.insert({spec.predicates[i].left.bits(), spec.predicates[i].right.bits()});
    }
    std::set<std::pair<uint64_t, uint64_t>> want = {
        {Set({0, 1}).bits(), Set({6, 7}).bits()},
        {Set({2, 3}).bits(), Set({4, 5}).bits()}};
    EXPECT_EQ(got, want);
  }
  // G2 additionally splits the first hyperedge into ({R0},{R6}), ({R1},{R7}).
  {
    QuerySpec spec = MakeCycleHypergraphQuery(8, 2);
    ASSERT_EQ(spec.predicates.size(), 11u);
    std::set<std::pair<uint64_t, uint64_t>> got;
    for (size_t i = 8; i < spec.predicates.size(); ++i) {
      got.insert({spec.predicates[i].left.bits(), spec.predicates[i].right.bits()});
    }
    std::set<std::pair<uint64_t, uint64_t>> want = {
        {Set({2, 3}).bits(), Set({4, 5}).bits()},
        {Set({0}).bits(), Set({6}).bits()},
        {Set({1}).bits(), Set({7}).bits()}};
    EXPECT_EQ(got, want);
  }
  // G3: everything simple: (R0,R6), (R1,R7), (R2,R4), (R3,R5).
  {
    QuerySpec spec = MakeCycleHypergraphQuery(8, 3);
    std::set<std::pair<uint64_t, uint64_t>> got;
    for (size_t i = 8; i < spec.predicates.size(); ++i) {
      const Predicate& p = spec.predicates[i];
      EXPECT_TRUE(p.IsSimple());
      got.insert({p.left.bits(), p.right.bits()});
    }
    std::set<std::pair<uint64_t, uint64_t>> want = {
        {Set({0}).bits(), Set({6}).bits()},
        {Set({1}).bits(), Set({7}).bits()},
        {Set({2}).bits(), Set({4}).bits()},
        {Set({3}).bits(), Set({5}).bits()}};
    EXPECT_EQ(got, want);
  }
}

TEST(Generators, SplitEdgesNeverDuplicateBaseEdges) {
  for (int n : {8, 16}) {
    for (int splits = 0; splits <= MaxHyperedgeSplits(n / 2); ++splits) {
      QuerySpec spec = MakeCycleHypergraphQuery(n, splits);
      std::set<std::pair<uint64_t, uint64_t>> seen;
      for (const Predicate& p : spec.predicates) {
        uint64_t a = p.left.bits(), b = p.right.bits();
        if (a > b) std::swap(a, b);
        EXPECT_TRUE(seen.insert({a, b}).second)
            << "duplicate edge at n=" << n << " splits=" << splits;
      }
    }
  }
}

TEST(Generators, StarHypergraphMatchesFigure4b) {
  QuerySpec spec = MakeStarHypergraphQuery(8, 0);
  EXPECT_EQ(spec.NumRelations(), 9);
  ASSERT_EQ(spec.predicates.size(), 9u);
  const Predicate& hyper = spec.predicates.back();
  EXPECT_EQ(hyper.left, Set({1, 2, 3, 4}));
  EXPECT_EQ(hyper.right, Set({5, 6, 7, 8}));
}

TEST(Generators, MaxSplitCountsMatchPaperAxes) {
  // Fig. 5/6 x-axes: cycle-8 and star-8 go to 3 splits; the 16-relation
  // variants go to 7.
  EXPECT_EQ(MaxHyperedgeSplits(8 / 2), 3);
  EXPECT_EQ(MaxHyperedgeSplits(16 / 2), 7);
  // The last split yields an all-simple graph; one more must be impossible.
  QuerySpec spec = MakeCycleHypergraphQuery(8, 3);
  for (const Predicate& p : spec.predicates) EXPECT_TRUE(p.IsSimple());
}

TEST(Generators, RandomGraphsAreConnectedAndValid) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    QuerySpec spec = MakeRandomGraphQuery(9, 0.2, seed);
    ASSERT_TRUE(spec.Validate().ok());
    Hypergraph g = BuildHypergraphOrDie(spec);
    ConnectivityTester t(g);
    EXPECT_TRUE(t.IsConnected(g.AllNodes())) << seed;
  }
}

// The load harness's popularity distribution: same seed, same draws (the
// whole open-loop schedule is replayable from one seed), visibly skewed
// (rank 0 is the mode), every draw in range.
TEST(Generators, ZipfSamplerIsSeededAndSkewed) {
  const uint64_t seed = testing_helpers::DerivedSeed(41);
  SCOPED_TRACE(testing_helpers::SeedTrace(seed));
  ZipfSampler zipf(24, 1.1);
  ASSERT_EQ(zipf.n(), 24);

  Rng a(seed), b(seed);
  std::vector<int> counts(24, 0);
  for (int i = 0; i < 5000; ++i) {
    int rank = zipf.Sample(a);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 24);
    EXPECT_EQ(rank, zipf.Sample(b));  // bit-identical replay
    counts[static_cast<size_t>(rank)]++;
  }
  // s = 1.1 over 24 ranks: the hottest template dominates any cold one.
  EXPECT_GT(counts[0], counts[23] * 4);
  EXPECT_GT(counts[0], 5000 / 24);  // far above uniform share
}

// The open-loop arrival schedule: deterministic under a seed, strictly
// increasing, and long-run rate within loose bounds of the target.
TEST(Generators, PoissonArrivalsAreSeededAndMatchRate) {
  const uint64_t seed = testing_helpers::DerivedSeed(42);
  SCOPED_TRACE(testing_helpers::SeedTrace(seed));
  Rng a(seed), b(seed);
  const std::vector<double> times = PoissonArrivalTimes(2000, 100.0, a);
  ASSERT_EQ(times.size(), 2000u);
  EXPECT_EQ(times, PoissonArrivalTimes(2000, 100.0, b));

  double prev = 0.0;
  for (double t : times) {
    EXPECT_GT(t, prev);
    prev = t;
  }
  // 2000 arrivals at 100/s take ~20 s of schedule; allow generous slack
  // (the sample mean of 2000 exponentials is within a few percent whp).
  EXPECT_GT(times.back(), 15.0);
  EXPECT_LT(times.back(), 26.0);
}

TEST(Generators, RandomHypergraphsAreConnectedAndValid) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    QuerySpec spec = MakeRandomHypergraphQuery(8, 3, seed);
    ASSERT_TRUE(spec.Validate().ok());
    Hypergraph g = BuildHypergraphOrDie(spec);
    ConnectivityTester t(g);
    EXPECT_TRUE(t.IsConnected(g.AllNodes())) << seed;
    EXPECT_FALSE(g.complex_edge_ids().empty()) << seed;
  }
}

}  // namespace
}  // namespace dphyp
