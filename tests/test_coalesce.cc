// SingleFlightTable: leader election, follower blocking, publish-and-retire
// generations, leader-failure propagation, and abandoned-leader safety.
#include "service/coalesce.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "test_rng.h"

namespace dphyp {
namespace {

Fingerprint Key(uint64_t hi, uint64_t lo) {
  Fingerprint fp;
  fp.hi = hi;
  fp.lo = lo;
  return fp;
}

TEST(SingleFlight, FirstJoinLeads) {
  SingleFlightTable table;
  SingleFlightTable::Ticket leader = table.Join(Key(1, 2));
  EXPECT_TRUE(leader.leader());
  EXPECT_EQ(table.InFlight(), 1);

  SingleFlightTable::Ticket follower = table.Join(Key(1, 2));
  EXPECT_FALSE(follower.leader());
  // A different key elects its own leader.
  SingleFlightTable::Ticket other = table.Join(Key(3, 4));
  EXPECT_TRUE(other.leader());
  EXPECT_EQ(table.InFlight(), 2);

  FlightOutcome ok;
  ok.success = true;
  leader.Publish(std::move(ok));
  FlightOutcome ok2;
  ok2.success = true;
  other.Publish(std::move(ok2));

  std::shared_ptr<const FlightOutcome> outcome = follower.Wait();
  ASSERT_NE(outcome, nullptr);
  EXPECT_TRUE(outcome->success);

  SingleFlightTable::Stats stats = table.GetStats();
  EXPECT_EQ(stats.flights, 2u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.leader_failures, 0u);
  EXPECT_EQ(table.InFlight(), 0);
}

TEST(SingleFlight, PublishRetiresTheFlight) {
  SingleFlightTable table;
  {
    SingleFlightTable::Ticket leader = table.Join(Key(7, 7));
    FlightOutcome ok;
    ok.success = true;
    leader.Publish(std::move(ok));
  }
  // After the publish the key has no flight: the next request starts a new
  // generation (and leads it) instead of reading the stale outcome.
  SingleFlightTable::Ticket next = table.Join(Key(7, 7));
  EXPECT_TRUE(next.leader());
  EXPECT_EQ(table.GetStats().flights, 2u);
  FlightOutcome ok;
  ok.success = true;
  next.Publish(std::move(ok));
}

TEST(SingleFlight, LeaderFailurePropagatesToFollowers) {
  SingleFlightTable table;
  SingleFlightTable::Ticket leader = table.Join(Key(9, 9));
  SingleFlightTable::Ticket follower = table.Join(Key(9, 9));
  FlightOutcome failed;
  failed.error = "enumeration failed";
  leader.Publish(std::move(failed));

  std::shared_ptr<const FlightOutcome> outcome = follower.Wait();
  EXPECT_FALSE(outcome->success);
  EXPECT_EQ(outcome->error, "enumeration failed");
  EXPECT_EQ(table.GetStats().leader_failures, 1u);
}

TEST(SingleFlight, AbandonedLeaderPublishesFailure) {
  SingleFlightTable table;
  std::optional<SingleFlightTable::Ticket> follower;
  {
    SingleFlightTable::Ticket leader = table.Join(Key(5, 5));
    follower.emplace(table.Join(Key(5, 5)));
    // The leader goes out of scope without publishing (models an exception
    // or early return on the leader's path): the ticket destructor must
    // publish a structured failure so followers never hang.
  }
  std::shared_ptr<const FlightOutcome> outcome = follower->Wait();
  EXPECT_FALSE(outcome->success);
  EXPECT_NE(outcome->error.find("abandoned"), std::string::npos);
  EXPECT_EQ(table.InFlight(), 0);
}

TEST(SingleFlight, ConcurrentJoinersElectExactlyOneLeader) {
  SCOPED_TRACE(testing_helpers::SeedTrace(testing_helpers::BaseTestSeed()));
  SingleFlightTable table;
  constexpr int kThreads = 16;
  std::atomic<int> leaders{0};
  std::atomic<int> joined{0};
  std::atomic<int> follower_successes{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      SingleFlightTable::Ticket ticket = table.Join(Key(42, 42));
      joined.fetch_add(1);
      if (ticket.leader()) {
        leaders.fetch_add(1);
        // Publish only after every thread has joined: a publish retires
        // the flight, and a thread joining after that would correctly
        // start a second generation — not what this test is probing.
        // Join never blocks, so this spin cannot deadlock.
        while (joined.load(std::memory_order_acquire) < kThreads) {
          std::this_thread::yield();
        }
        FlightOutcome ok;
        ok.success = true;
        ok.plan.cost = 123.0;
        ticket.Publish(std::move(ok));
      } else {
        std::shared_ptr<const FlightOutcome> outcome = ticket.Wait();
        if (outcome->success && outcome->plan.cost == 123.0) {
          follower_successes.fetch_add(1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(follower_successes.load(), kThreads - 1);
  SingleFlightTable::Stats stats = table.GetStats();
  EXPECT_EQ(stats.flights, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(table.InFlight(), 0);
}

}  // namespace
}  // namespace dphyp
