// The intra-query parallel enumerator (label: parallel): bit-identity of
// dphyp-par against sequential DPhyp on every fig5–8 shape family at
// several thread counts, deadline aborts with workers in flight, workspace
// scratch reuse across parallel runs, and a mixed-thread-count PlanService
// stress batch whose cache hits must stay bit-identical. This label (with
// session and service) also runs under ThreadSanitizer in CI — the shared
// DpTable's per-class-owner write discipline and the wave barriers are
// exactly what TSan would catch cheating.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "baselines/goo.h"
#include "core/dphyp.h"
#include "core/parallel_dphyp.h"
#include "core/workspace.h"
#include "hypergraph/builder.h"
#include "plan/validate.h"
#include "reorder/ses_tes.h"
#include "service/plan_service.h"
#include "service/session.h"
#include "test_helpers.h"
#include "test_rng.h"
#include "workload/generators.h"
#include "workload/optree_gen.h"

namespace dphyp {
namespace {

using testing_helpers::DerivedSeed;
using testing_helpers::SeedTrace;

struct ParallelCase {
  std::string name;
  Hypergraph graph;
  /// TES-mode constraints (fig8a generate-and-test variant); empty for the
  /// hypernode representations.
  std::vector<TesConstraint> tes;
  /// Thread counts to sweep; the larger shapes use a shorter list so the
  /// TSan run stays fast.
  std::vector<int> threads{1, 2, 4, 8};
};

std::vector<ParallelCase> ParallelCases() {
  std::vector<ParallelCase> cases;
  auto add = [&](std::string name, QuerySpec spec) {
    cases.push_back({std::move(name), BuildHypergraphOrDie(spec), {}});
  };
  // fig5: cycle hypergraphs, all split counts at n=8 plus the n=16 ends.
  for (int splits = 0; splits <= 3; ++splits) {
    add("cycle_hyper8_s" + std::to_string(splits),
        MakeCycleHypergraphQuery(8, splits));
  }
  add("cycle_hyper16_s0", MakeCycleHypergraphQuery(16, 0));
  cases.back().threads = {1, 4};
  add("cycle_hyper16_s7", MakeCycleHypergraphQuery(16, 7));
  cases.back().threads = {1, 4};
  // fig6: star hypergraphs.
  for (int splits = 0; splits <= 3; ++splits) {
    add("star_hyper8_s" + std::to_string(splits),
        MakeStarHypergraphQuery(8, splits));
  }
  add("star_hyper16_s0", MakeStarHypergraphQuery(16, 0));
  cases.back().threads = {1, 4};
  // fig7: regular stars (and a dense clique, the parallel route's home).
  add("star10", MakeStarQuery(10));
  add("clique12", MakeCliqueQuery(12));
  cases.back().threads = {1, 4};
  // fig8a: star antijoins, hypernode representation.
  for (int anti : {0, 5, 10}) {
    SyntheticNonInnerWorkload w = MakeStarAntijoinWorkload(10, anti);
    cases.push_back(
        {"star_antijoin10_a" + std::to_string(anti), std::move(w.graph), {}});
    // ... and the generate-and-test TES variant on the SES graph.
    cases.push_back({"star_antijoin10_tes_a" + std::to_string(anti),
                     std::move(w.ses_graph), std::move(w.tes_constraints)});
  }
  // fig8b: cycle outer joins.
  for (int outer : {0, 3, 6, 9}) {
    DerivedQuery dq = DeriveQuery(MakeCycleOuterjoinTree(10, outer));
    cases.push_back(
        {"cycle_outerjoin10_o" + std::to_string(outer), std::move(dq.graph), {}});
  }
  return cases;
}

class ParallelBitIdentity : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelBitIdentity, MatchesSequentialDphypAtEveryThreadCount) {
  const ParallelCase& c = GetParam();
  CardinalityEstimator est(c.graph);
  OptimizerOptions base;
  if (!c.tes.empty()) base.tes_constraints = &c.tes;

  OptimizeResult reference =
      OptimizeDphyp(c.graph, est, DefaultCostModel(), base);
  ASSERT_TRUE(reference.success) << reference.error;

  for (int threads : c.threads) {
    OptimizerOptions opt = base;
    opt.parallel_threads = threads;
    OptimizeResult par =
        OptimizeDphypPar(c.graph, est, DefaultCostModel(), opt);
    ASSERT_TRUE(par.success) << "threads=" << threads << ": " << par.error;
    // Bit-identical, not approximately equal: the winning plan's cost is
    // assembled through the identical combine arithmetic.
    EXPECT_EQ(par.cost, reference.cost) << "threads=" << threads;
    EXPECT_EQ(par.cardinality, reference.cardinality) << "threads=" << threads;
    EXPECT_EQ(par.stats.ccp_pairs, reference.stats.ccp_pairs)
        << "threads=" << threads;
    EXPECT_TRUE(ValidatePlanTree(c.graph, par.ExtractPlan(c.graph)).ok())
        << "threads=" << threads;
  }
}

TEST_P(ParallelBitIdentity, PruningPreservesTheOptimum) {
  const ParallelCase& c = GetParam();
  if (!c.tes.empty()) GTEST_SKIP() << "TES mode runs unpruned";
  CardinalityEstimator est(c.graph);
  OptimizeResult reference = OptimizeDphyp(c.graph, est, DefaultCostModel());
  ASSERT_TRUE(reference.success);
  OptimizerOptions opt;
  opt.enable_pruning = true;
  opt.parallel_threads = 4;
  OptimizeResult pruned =
      OptimizeDphypPar(c.graph, est, DefaultCostModel(), opt);
  ASSERT_TRUE(pruned.success) << pruned.error;
  EXPECT_EQ(pruned.cost, reference.cost);
}

INSTANTIATE_TEST_SUITE_P(
    Fig5to8, ParallelBitIdentity, ::testing::ValuesIn(ParallelCases()),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return info.param.name;
    });

TEST(ParallelDeadline, AbortsMidEnumerationWithWorkersInFlight) {
  // A degree-22 hub: discovery alone expands 2^22 candidate subgraphs, so
  // a 25 ms budget fires while the worker team is deep in flight. The
  // session must drain the pool, fall back to GOO, and record the abort.
  Hypergraph g = BuildHypergraphOrDie(MakeStarQuery(22));
  CardinalityEstimator est(g);

  const double budget_ms = 25.0;
  OptimizationSession session;
  OptimizationRequest request;
  request.graph = &g;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.enumerator = "dphyp-par";
  request.deadline_ms = budget_ms;
  request.options.parallel_threads = 4;

  Result<OptimizeResult> served = session.Optimize(request);
  ASSERT_TRUE(served.ok());
  const OptimizeResult& r = served.value();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_STREQ(r.stats.aborted_algorithm, "dphyp-par");
  EXPECT_STREQ(r.stats.algorithm, "GOO");
  EXPECT_GT(r.stats.abort_latency_ms, 0.0);
  // Every worker polls the shared token, so the abort lands within poll
  // granularity of the budget; the slack absorbs scheduler noise and
  // sanitizer overhead, not the mechanism.
  EXPECT_LE(r.stats.abort_latency_ms, budget_ms * 2.0)
      << "parallel abort drifted far past the deadline";

  // The served plan is the plain GOO plan, bit-identical to a direct run.
  EXPECT_TRUE(ValidatePlanTree(g, r.ExtractPlan(g)).ok());
  OptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success);
  EXPECT_EQ(r.cost, goo.cost);
}

TEST(ParallelWorkspace, ThreadScratchGrowsOnceAndResultsStayIdentical) {
  // The pooled-serving discipline extended to worker scratch: per-thread
  // neighborhood memos / discovery buffers live in the workspace, grow to
  // the requested thread count on the first parallel run, and are reused
  // (not reallocated) afterwards — with bit-identical results run to run.
  Hypergraph g = BuildHypergraphOrDie(MakeStarHypergraphQuery(12, 2));
  CardinalityEstimator est(g);
  OptimizerWorkspace ws;
  OptimizerOptions opt;
  opt.parallel_threads = 4;

  OptimizeResult first = OptimizeDphypPar(g, est, DefaultCostModel(), opt, &ws);
  ASSERT_TRUE(first.success);
  const double first_cost = first.cost;
  EXPECT_EQ(ws.thread_scratch_count(), 4u);

  for (int run = 0; run < 3; ++run) {
    OptimizeResult again =
        OptimizeDphypPar(g, est, DefaultCostModel(), opt, &ws);
    ASSERT_TRUE(again.success);
    EXPECT_EQ(again.cost, first_cost);
  }
  EXPECT_EQ(ws.thread_scratch_count(), 4u);  // grew once, then reused
  EXPECT_EQ(ws.runs(), 4u);

  // A smaller request reuses the existing scratch without shrinking it.
  opt.parallel_threads = 2;
  OptimizeResult smaller =
      OptimizeDphypPar(g, est, DefaultCostModel(), opt, &ws);
  ASSERT_TRUE(smaller.success);
  EXPECT_EQ(smaller.cost, first_cost);
  EXPECT_EQ(ws.thread_scratch_count(), 4u);
}

TEST(ParallelService, HundredQueryMixedThreadCountStressKeepsCacheBitIdentity) {
  SCOPED_TRACE(SeedTrace(DerivedSeed(777)));
  // 100 mixed queries whose larger stars route to dphyp-par; served by a
  // multi-threaded service with intra-query workers on top (two levels of
  // parallelism), then re-served warm. Every cost must be bit-identical to
  // a serial, cache-less, single-worker reference — cache hits included.
  TrafficMixOptions mix;
  mix.seed = DerivedSeed(777);
  mix.min_relations = 6;
  mix.max_relations = 15;
  mix.clique_max_relations = 10;
  mix.distinct_templates = 16;
  std::vector<QuerySpec> traffic = GenerateTrafficMix(98, mix);
  // Two guaranteed parallel-routed hubs, whatever the seed drew: 14 and 16
  // relations, both past DispatchPolicy::parallel_min_nodes.
  traffic.push_back(MakeStarQuery(13));
  traffic.push_back(MakeStarQuery(15));

  ServiceOptions serial_opts;
  serial_opts.num_threads = 1;
  serial_opts.cache_byte_budget = 0;
  // Same intra-query worker count as the concurrent service below: routing
  // (and so the `algorithm` comparison) must see identical policies —
  // only service-level concurrency and caching differ.
  serial_opts.parallel_threads = 2;
  PlanService serial(serial_opts);
  BatchOutcome reference = serial.OptimizeBatch(traffic);
  ASSERT_EQ(reference.stats.failures, 0u);

  ServiceOptions conc_opts;
  conc_opts.num_threads = 4;
  conc_opts.parallel_threads = 2;  // intra-query workers nested in workers
  PlanService concurrent(conc_opts);
  BatchOutcome cold = concurrent.OptimizeBatch(traffic);
  BatchOutcome warm = concurrent.OptimizeBatch(traffic);
  ASSERT_EQ(cold.stats.failures, 0u);
  ASSERT_EQ(warm.stats.failures, 0u);
  EXPECT_EQ(warm.stats.cache_hits, warm.stats.queries);

  bool saw_parallel_route = false;
  for (size_t i = 0; i < traffic.size(); ++i) {
    EXPECT_EQ(cold.results[i].cost, reference.results[i].cost) << i;
    EXPECT_EQ(warm.results[i].cost, reference.results[i].cost) << i;
    EXPECT_EQ(cold.results[i].cardinality, reference.results[i].cardinality)
        << i;
    EXPECT_EQ(cold.results[i].algorithm, reference.results[i].algorithm) << i;
    EXPECT_TRUE(warm.results[i].cache_hit) << i;
    if (cold.results[i].algorithm == "dphyp-par") saw_parallel_route = true;
  }
  // The mix must actually exercise the parallel route, or this stress
  // proves nothing about it.
  EXPECT_TRUE(saw_parallel_route);
}

}  // namespace
}  // namespace dphyp
