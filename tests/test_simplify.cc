// Outer-join simplification tests: structural rewrites on hand-built trees
// plus the semantic property that simplification never changes results.
#include "reorder/simplify.h"

#include <gtest/gtest.h>

#include "core/dphyp.h"
#include "exec/executor.h"
#include "reorder/ses_tes.h"
#include "workload/optree_gen.h"

namespace dphyp {
namespace {

NodeSet Set(std::initializer_list<int> nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

OperatorTree TwoOpTree(OpType lower, OpType upper, NodeSet upper_pred) {
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.name = "R" + std::to_string(i);
    rel.cardinality = 50;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int inner = tree.AddOp(lower, l0, l1, {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  tree.root = tree.AddOp(upper, inner, l2, {tree.AddPredicate(upper_pred, 0.2)});
  EXPECT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  return tree;
}

TEST(Simplify, LojUnderStrongJoinBecomesJoin) {
  // (R0 LOJ R1) JOIN_{p(R1,R2)} R2: the join predicate is strong on R1, so
  // padded tuples never survive — classic 4.48 simplification.
  OperatorTree tree =
      TwoOpTree(OpType::kLeftOuterjoin, OpType::kJoin, Set({1, 2}));
  EXPECT_EQ(SimplifyOperatorTree(&tree), 1);
  int inner = tree.nodes[tree.root].left;
  EXPECT_EQ(tree.nodes[inner].op, OpType::kJoin);
}

TEST(Simplify, LojUnderJoinOnPreservedSideStays) {
  // (R0 LOJ R1) JOIN_{p(R0,R2)} R2: predicate only touches the preserved
  // side; padding survives — no rewrite.
  OperatorTree tree =
      TwoOpTree(OpType::kLeftOuterjoin, OpType::kJoin, Set({0, 2}));
  EXPECT_EQ(SimplifyOperatorTree(&tree), 0);
  int inner = tree.nodes[tree.root].left;
  EXPECT_EQ(tree.nodes[inner].op, OpType::kLeftOuterjoin);
}

TEST(Simplify, LojUnderOuterJoinStays) {
  // (R0 LOJ R1) LOJ_{p(R1,R2)} R2: the upper operator pads instead of
  // rejecting; the inner padding survives — no rewrite.
  OperatorTree tree =
      TwoOpTree(OpType::kLeftOuterjoin, OpType::kLeftOuterjoin, Set({1, 2}));
  EXPECT_EQ(SimplifyOperatorTree(&tree), 0);
}

TEST(Simplify, LojUnderSemijoinBecomesJoin) {
  // Semijoins reject failing left tuples just like joins.
  OperatorTree tree =
      TwoOpTree(OpType::kLeftOuterjoin, OpType::kLeftSemijoin, Set({1, 2}));
  EXPECT_EQ(SimplifyOperatorTree(&tree), 1);
}

TEST(Simplify, LojUnderAntijoinStays) {
  // Antijoins *keep* tuples that fail the predicate — padding survives.
  OperatorTree tree =
      TwoOpTree(OpType::kLeftOuterjoin, OpType::kLeftAntijoin, Set({1, 2}));
  EXPECT_EQ(SimplifyOperatorTree(&tree), 0);
}

TEST(Simplify, FojDegeneratesPerSide) {
  // FOJ under a join predicate strong on the right side: the left-preserved
  // padding dies, right-preserved survives -> children swapped, LOJ.
  {
    OperatorTree tree =
        TwoOpTree(OpType::kFullOuterjoin, OpType::kJoin, Set({1, 2}));
    EXPECT_EQ(SimplifyOperatorTree(&tree), 1);
    int inner = tree.nodes[tree.root].left;
    EXPECT_EQ(tree.nodes[inner].op, OpType::kLeftOuterjoin);
    // Swapped: R1 is now the preserved (left) child.
    EXPECT_EQ(tree.nodes[tree.nodes[inner].left].relation, 1);
  }
  // Strong on the left side: right-preserved padding dies -> LOJ, no swap.
  {
    OperatorTree tree =
        TwoOpTree(OpType::kFullOuterjoin, OpType::kJoin, Set({0, 2}));
    EXPECT_EQ(SimplifyOperatorTree(&tree), 1);
    int inner = tree.nodes[tree.root].left;
    EXPECT_EQ(tree.nodes[inner].op, OpType::kLeftOuterjoin);
    EXPECT_EQ(tree.nodes[tree.nodes[inner].left].relation, 0);
  }
}

TEST(Simplify, FojUnderBothSidedPredicatesBecomesJoin) {
  // Two conjuncts covering both sides: all padding dies.
  OperatorTree tree;
  for (int i = 0; i < 3; ++i) {
    RelationInfo rel;
    rel.cardinality = 50;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int inner = tree.AddOp(OpType::kFullOuterjoin, l0, l1,
                         {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  tree.root = tree.AddOp(OpType::kJoin, inner, l2,
                         {tree.AddPredicate(Set({0, 2}), 0.2),
                          tree.AddPredicate(Set({1, 2}), 0.2)});
  ASSERT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  EXPECT_EQ(SimplifyOperatorTree(&tree), 1);
  EXPECT_EQ(tree.nodes[inner].op, OpType::kJoin);
}

TEST(Simplify, RejectionPropagatesThroughDeepTrees) {
  // ((R0 LOJ R1) JOIN_{p01?} R2) JOIN_{p(R1,R3)} R3 — the rejection comes
  // from the *grand*parent's predicate.
  OperatorTree tree;
  for (int i = 0; i < 4; ++i) {
    RelationInfo rel;
    rel.cardinality = 50;
    tree.relations.push_back(rel);
  }
  int l0 = tree.AddLeaf(0);
  int l1 = tree.AddLeaf(1);
  int loj = tree.AddOp(OpType::kLeftOuterjoin, l0, l1,
                       {tree.AddPredicate(Set({0, 1}), 0.1)});
  int l2 = tree.AddLeaf(2);
  int join1 = tree.AddOp(OpType::kJoin, loj, l2,
                         {tree.AddPredicate(Set({0, 2}), 0.2)});
  int l3 = tree.AddLeaf(3);
  tree.root = tree.AddOp(OpType::kJoin, join1, l3,
                         {tree.AddPredicate(Set({1, 3}), 0.2)});
  ASSERT_TRUE(tree.Finalize().ok());
  tree.FillDefaultPayloads();
  EXPECT_EQ(SimplifyOperatorTree(&tree), 1);
  EXPECT_EQ(tree.nodes[loj].op, OpType::kJoin);
}

// Property: simplification preserves semantics on data, and the simplified
// tree still optimizes to an equivalent plan.
class SimplifySemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifySemantics, SimplificationPreservesResults) {
  RandomTreeOptions opts;
  opts.non_inner_prob = 0.6;
  opts.lateral_prob = 0.0;
  OperatorTree original = MakeRandomOperatorTree(5, GetParam(), opts);
  OperatorTree simplified = original;
  SimplifyOperatorTree(&simplified);

  // Execute both original trees directly (reference plans on their own
  // derived graphs) and compare.
  OperatorTree norm_a, norm_b;
  DerivedQuery dq_a = DeriveQuery(original, &norm_a);
  DerivedQuery dq_b = DeriveQuery(simplified, &norm_b);
  CardinalityEstimator est_a(dq_a.graph);
  CardinalityEstimator est_b(dq_b.graph);

  Dataset data = Dataset::Generate(norm_a.relations, 6, GetParam());
  Executor exec_a(data, dq_a.graph, norm_a.relations,
                  ConjunctsFromTree(norm_a, dq_a.edge_to_op));
  Executor exec_b(data, dq_b.graph, norm_b.relations,
                  ConjunctsFromTree(norm_b, dq_b.edge_to_op));

  ExecResult res_a =
      exec_a.Execute(ReferencePlan(norm_a, dq_a, est_a, DefaultCostModel()));
  ExecResult res_b =
      exec_b.Execute(ReferencePlan(norm_b, dq_b, est_b, DefaultCostModel()));
  EXPECT_TRUE(res_a.SameAs(res_b))
      << "simplification changed semantics!\noriginal:   "
      << original.ToString() << "\nsimplified: " << simplified.ToString();

  // And the optimizer on the simplified tree still agrees with the
  // original tree's results.
  OptimizeResult r = OptimizeDphyp(dq_b.graph, est_b, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  ExecResult optimized = exec_b.Execute(r.ExtractPlan(dq_b.graph));
  EXPECT_TRUE(optimized.SameAs(res_a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySemantics,
                         ::testing::Range<uint64_t>(200, 230));

}  // namespace
}  // namespace dphyp
