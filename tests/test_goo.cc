// GOO fallback: plan validity on every workload shape, sane cost relative
// to exhaustive DP where DP is feasible, and feasibility on graphs where it
// is not (64-relation cliques).
#include "baselines/goo.h"

#include <gtest/gtest.h>

#include "core/dphyp.h"
#include "hypergraph/builder.h"
#include "plan/validate.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

TEST(Goo, ValidPlansOnSmallShapes) {
  struct Case {
    const char* name;
    QuerySpec spec;
  };
  std::vector<Case> cases;
  for (int n = 3; n <= 10; ++n) {
    cases.push_back({"chain", MakeChainQuery(n)});
    cases.push_back({"cycle", MakeCycleQuery(n)});
    cases.push_back({"star", MakeStarQuery(n - 1)});
    cases.push_back({"clique", MakeCliqueQuery(n)});
  }
  for (const Case& c : cases) {
    Hypergraph g = BuildHypergraphOrDie(c.spec);
    OptimizeResult goo = OptimizeGoo(g);
    ASSERT_TRUE(goo.success) << c.name << ": " << goo.error;
    PlanTree plan = goo.ExtractPlan(g);
    Result<bool> valid = ValidatePlanTree(g, plan);
    EXPECT_TRUE(valid.ok()) << c.name << ": " << valid.error().message;
    // One DP entry per leaf plus one per merge.
    EXPECT_EQ(goo.stats.dp_entries,
              static_cast<uint64_t>(2 * g.NumNodes() - 1))
        << c.name;
  }
}

TEST(Goo, CostWithinSaneFactorOfDphyp) {
  // GOO is a heuristic: it must never beat the optimum, and on small
  // generator shapes it should stay within a modest factor of it.
  constexpr double kSaneFactor = 10.0;
  for (int n = 4; n <= 10; ++n) {
    for (const QuerySpec& spec :
         {MakeChainQuery(n), MakeCycleQuery(n), MakeStarQuery(n - 1),
          MakeCliqueQuery(n)}) {
      Hypergraph g = BuildHypergraphOrDie(spec);
      OptimizeResult exact = OptimizeDphyp(g);
      OptimizeResult goo = OptimizeGoo(g);
      ASSERT_TRUE(exact.success);
      ASSERT_TRUE(goo.success);
      EXPECT_GE(goo.cost, exact.cost * (1.0 - 1e-9)) << "n=" << n;
      EXPECT_LE(goo.cost, exact.cost * kSaneFactor) << "n=" << n;
    }
  }
}

TEST(Goo, HandlesNonInnerOperators) {
  // A mixed-operator chain: inner joins plus a left outer join. The shared
  // combine step must keep the non-commutative orientation legal.
  QuerySpec spec;
  for (int i = 0; i < 5; ++i) spec.AddRelation("R" + std::to_string(i), 200.0);
  spec.AddSimplePredicate(0, 1, 0.1);
  spec.AddSimplePredicate(1, 2, 0.05);
  spec.AddSimplePredicate(2, 3, 0.1, OpType::kLeftOuterjoin);
  spec.AddSimplePredicate(3, 4, 0.2);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult goo = OptimizeGoo(g);
  ASSERT_TRUE(goo.success) << goo.error;
  PlanTree plan = goo.ExtractPlan(g);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
}

TEST(Goo, SixtyFourRelationCliqueIsFeasible) {
  // 2^64 connected subgraphs make exhaustive DP unthinkable here; GOO must
  // return a valid plan with its linear-size table.
  QuerySpec spec = MakeCliqueQuery(64);
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult goo = OptimizeGoo(g);
  ASSERT_TRUE(goo.success) << goo.error;
  EXPECT_EQ(goo.stats.dp_entries, 127u);
  PlanTree plan = goo.ExtractPlan(g);
  EXPECT_EQ(plan.NumNodes(), 127);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
}

TEST(Goo, DeterministicAcrossRuns) {
  Hypergraph g = BuildHypergraphOrDie(MakeCliqueQuery(12));
  OptimizeResult a = OptimizeGoo(g);
  OptimizeResult b = OptimizeGoo(g);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.stats.dp_entries, b.stats.dp_entries);
}

}  // namespace
}  // namespace dphyp
