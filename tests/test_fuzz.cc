// Seeded randomized differential suite (label: fuzz). ~540 generated
// graphs across chains, stars, cycles, cliques, random simple graphs,
// random hypergraphs, and random non-inner operator trees; on each, every
// registered *exact* enumerator — including the parallel dphyp-par — must
// be bit-identical in plan cost and final cardinality to the reference
// (DPccp where it can handle the graph, DPhyp otherwise: the two are
// themselves cross-checked wherever both run).
//
// All case seeds derive from QDL_TEST_SEED (tests/test_rng.h); CI runs the
// label under two distinct seeds. Case *names* carry only family/size/
// ordinal — never the seed — so a runtime seed override reaches tests
// registered at build time; the seed is printed by SCOPED_TRACE on
// failure.
//
// A definitional sub-check (small cases only; the oracles are O(3^n))
// additionally pins DPhyp's emit count to the csg-cmp-pair count, the
// table to the connected-subgraph count, and dphyp-par's emissions to
// DPhyp's.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/goo.h"
#include "core/enumerator.h"
#include "core/wide.h"
#include "hypergraph/builder.h"
#include "hypergraph/connectivity.h"
#include "plan/validate.h"
#include "reorder/ses_tes.h"
#include "test_helpers.h"
#include "test_rng.h"
#include "workload/generators.h"
#include "workload/optree_gen.h"
#include "workload/wide_gen.h"

namespace dphyp {
namespace {

using testing_helpers::DerivedSeed;
using testing_helpers::OptimizeNamed;
using testing_helpers::SeedTrace;

struct FuzzCase {
  std::string name;      // stable: family/size/ordinal, never the seed
  uint64_t seed;         // derived from QDL_TEST_SEED
  QuerySpec spec;        // the generated query
  bool small_oracle;     // cheap enough for the O(3^n) definitional oracles
};

std::vector<FuzzCase> FuzzCases() {
  std::vector<FuzzCase> cases;
  uint64_t salt = 0;
  auto add = [&](std::string name, QuerySpec spec, uint64_t seed,
                 bool small_oracle) {
    cases.push_back({std::move(name), seed, std::move(spec), small_oracle});
  };

  // Fixed-topology families: the shape is the parameter, the seed draws
  // cardinalities/selectivities.
  for (int i = 0; i < 60; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    const int n = 4 + (i % 7);
    add("chain" + std::to_string(n) + "_" + std::to_string(i),
        MakeChainQuery(n, opts), seed, n <= 8);
  }
  for (int i = 0; i < 60; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    const int sats = 3 + (i % 7);
    add("star" + std::to_string(sats) + "_" + std::to_string(i),
        MakeStarQuery(sats, opts), seed, sats <= 7);
  }
  for (int i = 0; i < 60; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    const int n = 4 + (i % 7);
    add("cycle" + std::to_string(n) + "_" + std::to_string(i),
        MakeCycleQuery(n, opts), seed, n <= 8);
  }
  for (int i = 0; i < 60; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    const int n = 4 + (i % 5);
    add("clique" + std::to_string(n) + "_" + std::to_string(i),
        MakeCliqueQuery(n, opts), seed, n <= 8);
  }

  // Random-topology families: the seed draws the graph itself.
  for (int i = 0; i < 120; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 5 + (i % 6);
    const double p = 0.2 + 0.15 * (i % 3);
    add("randgraph" + std::to_string(n) + "_" + std::to_string(i),
        MakeRandomGraphQuery(n, p, seed), seed, n <= 8);
  }
  for (int i = 0; i < 120; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 5 + (i % 5);
    const int complex_edges = 1 + (i % 4);
    add("randhyper" + std::to_string(n) + "_" + std::to_string(i),
        MakeRandomHypergraphQuery(n, complex_edges, seed), seed, n <= 8);
  }
  return cases;
}

/// Non-inner mixes come from random operator trees (semi/anti/outer/
/// nestjoin operators, lateral leaves); they derive to hypergraphs rather
/// than QuerySpecs, so they get their own sweep below.
struct TreeCase {
  std::string name;
  uint64_t seed;
  int relations;
};

std::vector<TreeCase> TreeCases() {
  std::vector<TreeCase> cases;
  for (int i = 0; i < 60; ++i) {
    const uint64_t seed = DerivedSeed(100000 + i);
    const int n = 5 + (i % 5);
    cases.push_back(
        {"optree" + std::to_string(n) + "_" + std::to_string(i), seed, n});
  }
  return cases;
}

bool HasNonInnerEdges(const Hypergraph& g) {
  for (const Hyperedge& e : g.edges()) {
    if (e.op != OpType::kJoin) return true;
  }
  return false;
}

/// The shared differential body: reference vs every registered exact
/// enumerator. Bit-identical cost (not approximate: all enumerators build
/// the same winning plan value through the same combine arithmetic) and
/// cardinality; table sizes compared only where every class has a plan
/// (inner-only, no laterals — see core/parallel_dphyp.h on the sentinel
/// entries non-inner graphs leave behind).
void CheckAllEnumeratorsAgree(const Hypergraph& g, uint64_t seed) {
  SCOPED_TRACE(SeedTrace(seed));
  CardinalityEstimator est(g);

  const bool dpccp_ref =
      EnumeratorRegistry::Global().FindOrNull("DPccp")->CanHandle(g);
  OptimizeResult reference =
      OptimizeNamed(dpccp_ref ? "DPccp" : "DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(reference.success) << reference.error;

  // Structural validity of the reference plan.
  PlanTree plan = reference.ExtractPlan(g);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
  EXPECT_DOUBLE_EQ(plan.root()->cost, reference.cost);

  const bool inner_only = !HasNonInnerEdges(g) && !g.HasDependentLeaves();
  for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
    if (!e->Exact()) continue;  // GOO is a heuristic, not an agreement peer
    if (!e->CanHandle(g)) continue;
    OptimizeResult r = e->Optimize(g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << e->Name() << ": " << r.error;
    EXPECT_DOUBLE_EQ(r.cost, reference.cost) << e->Name();
    EXPECT_DOUBLE_EQ(r.cardinality, reference.cardinality) << e->Name();
    if (inner_only) {
      EXPECT_EQ(r.stats.dp_entries, reference.stats.dp_entries) << e->Name();
    }
  }
}

class FuzzSweep : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzSweep, AllEnumeratorsBitIdenticalToReference) {
  const FuzzCase& c = GetParam();
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CheckAllEnumeratorsAgree(g, c.seed);
}

TEST_P(FuzzSweep, DefinitionalInvariants) {
  const FuzzCase& c = GetParam();
  if (!c.small_oracle) GTEST_SKIP() << "O(3^n) oracle skipped at this size";
  SCOPED_TRACE(SeedTrace(c.seed));
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);

  OptimizeResult reference = OptimizeNamed("DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(reference.success) << reference.error;

  // DPhyp against the definitional oracles: emits exactly the csg-cmp
  // pairs, materializes exactly the connected subgraphs, discards nothing.
  EXPECT_EQ(reference.stats.ccp_pairs, CountCsgCmpPairs(g));
  EXPECT_EQ(reference.stats.dp_entries, CountConnectedSubgraphs(g));
  EXPECT_EQ(reference.stats.discarded, 0u);

  // The parallel enumerator's per-class split enumeration must submit the
  // same unordered pair set (its pairs_tested additionally counts failed
  // split candidates, which DPhyp's neighborhood walk never generates).
  OptimizeResult par =
      OptimizeNamed("dphyp-par", g, est, DefaultCostModel());
  ASSERT_TRUE(par.success) << par.error;
  EXPECT_EQ(par.stats.ccp_pairs, reference.stats.ccp_pairs);
  EXPECT_EQ(par.stats.dp_entries, reference.stats.dp_entries);
}

INSTANTIATE_TEST_SUITE_P(Random, FuzzSweep, ::testing::ValuesIn(FuzzCases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return info.param.name;
                         });

class NonInnerFuzzSweep : public ::testing::TestWithParam<TreeCase> {};

TEST_P(NonInnerFuzzSweep, AllEnumeratorsBitIdenticalToReference) {
  const TreeCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  OperatorTree tree = MakeRandomOperatorTree(c.relations, c.seed);
  DerivedQuery dq = DeriveQuery(tree);
  CheckAllEnumeratorsAgree(dq.graph, c.seed);
}

INSTANTIATE_TEST_SUITE_P(Random, NonInnerFuzzSweep,
                         ::testing::ValuesIn(TreeCases()),
                         [](const ::testing::TestParamInfo<TreeCase>& info) {
                           return info.param.name;
                         });

// --- Plan-quality differential tier (label: quality) ------------------------
//
// The beyond-exact enumerators (idp-k, anneal) are heuristics, so the
// bit-identity sweep above skips them; this tier pins what they *do*
// promise on seeded 20-60 relation graphs: structurally valid plans that
// never cost more than GOO's, and — for idp-k whenever its window covers
// the whole graph — bit-identity with exact DPhyp. Registered under the
// "quality" ctest label (CMakeLists.txt splits this file's discovery by
// gtest filter), and CI re-runs it under a second QDL_TEST_SEED like the
// fuzz label.

struct QualityCase {
  std::string name;  // stable: family/size/ordinal, never the seed
  uint64_t seed;
  QuerySpec spec;
};

std::vector<QualityCase> QualityCases() {
  std::vector<QualityCase> cases;
  uint64_t salt = 200000;
  auto add = [&](std::string name, QuerySpec spec, uint64_t seed) {
    cases.push_back({std::move(name), seed, std::move(spec)});
  };
  // Random simple graphs across the 20-60 relation regime.
  const int rand_sizes[] = {20, 26, 32, 40, 50, 60};
  for (int i = 0; i < 6; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = rand_sizes[i];
    const double p = 0.05 + 0.05 * (i % 3);
    add("randgraph" + std::to_string(n) + "_" + std::to_string(i),
        MakeRandomGraphQuery(n, p, seed), seed);
  }
  // Random hypergraphs (complex edges survive the component collapse).
  const int hyper_sizes[] = {22, 30, 38, 46};
  for (int i = 0; i < 4; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    add("randhyper" + std::to_string(hyper_sizes[i]) + "_" + std::to_string(i),
        MakeRandomHypergraphQuery(hyper_sizes[i], 2 + (i % 3), seed), seed);
  }
  // Shape extremes past the exact frontier: dense cliques, hub stars, and
  // one long chain (exact-feasible, but a multi-round idp-k exercise).
  for (int n : {24, 28}) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    add("clique" + std::to_string(n), MakeCliqueQuery(n, opts), seed);
  }
  for (int sats : {26, 40}) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    add("star" + std::to_string(sats), MakeStarQuery(sats, opts), seed);
  }
  {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    add("chain60", MakeChainQuery(60, opts), seed);
  }
  return cases;
}

class QualitySweep : public ::testing::TestWithParam<QualityCase> {};

TEST_P(QualitySweep, ValidPlansNeverWorseThanGoo) {
  const QualityCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);

  OptimizeResult goo = OptimizeNamed("GOO", g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success) << goo.error;
  const double goo_cost = goo.cost;

  for (const char* algo : {"idp-k", "anneal"}) {
    OptimizerOptions options;
    options.random_seed = DerivedSeed(c.seed ^ 0xa11e);
    Result<OptimizeResult> run =
        OptimizeByName(algo, g, est, DefaultCostModel(), options);
    ASSERT_TRUE(run.ok()) << algo << ": " << run.error().message;
    const OptimizeResult& r = run.value();
    ASSERT_TRUE(r.success) << algo << ": " << r.error;
    EXPECT_STREQ(r.stats.algorithm, algo);
    EXPECT_FALSE(r.stats.aborted) << algo;
    PlanTree plan = r.ExtractPlan(g);
    Result<bool> valid = ValidatePlanTree(g, plan);
    EXPECT_TRUE(valid.ok()) << algo << ": " << valid.error().message;
    // The quality floor both enumerators are built around: GOO seeds the
    // anneal walk and caps the idp-k assembly, so neither may lose to it.
    EXPECT_LE(r.cost, goo_cost) << algo;
  }
}

INSTANTIATE_TEST_SUITE_P(QualityTier, QualitySweep,
                         ::testing::ValuesIn(QualityCases()),
                         [](const ::testing::TestParamInfo<QualityCase>& info) {
                           return info.param.name;
                         });

struct SmallQualityCase {
  std::string name;
  uint64_t seed;
  QuerySpec spec;
};

std::vector<SmallQualityCase> SmallQualityCases() {
  std::vector<SmallQualityCase> cases;
  uint64_t salt = 210000;
  for (int i = 0; i < 10; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 10 + (i % 5);
    if (i < 5) {
      cases.push_back({"randgraph" + std::to_string(n) + "_" +
                           std::to_string(i),
                       seed, MakeRandomGraphQuery(n, 0.25, seed)});
    } else {
      cases.push_back({"randhyper" + std::to_string(n) + "_" +
                           std::to_string(i),
                       seed, MakeRandomHypergraphQuery(n, 1 + (i % 3), seed)});
    }
  }
  return cases;
}

class QualityFullWindow : public ::testing::TestWithParam<SmallQualityCase> {};

TEST_P(QualityFullWindow, IdpWithCoveringWindowBitIdenticalToDphyp) {
  // idp_window >= NumNodes degenerates idp-k to one plain DPhyp pass:
  // cost, cardinality, table size, and the extracted plan itself must be
  // bit-identical — only the algorithm stamp differs.
  const SmallQualityCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);

  OptimizeResult exact = OptimizeNamed("DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(exact.success) << exact.error;

  OptimizerOptions options;
  options.idp_window = g.NumNodes();
  OptimizeResult idp =
      OptimizeNamed("idp-k", g, est, DefaultCostModel(), options);
  ASSERT_TRUE(idp.success) << idp.error;
  EXPECT_STREQ(idp.stats.algorithm, "idp-k");
  EXPECT_DOUBLE_EQ(idp.cost, exact.cost);
  EXPECT_DOUBLE_EQ(idp.cardinality, exact.cardinality);
  EXPECT_EQ(idp.stats.dp_entries, exact.stats.dp_entries);
  EXPECT_EQ(idp.ExtractPlan(g).ToAlgebraString(g),
            exact.ExtractPlan(g).ToAlgebraString(g));
}

INSTANTIATE_TEST_SUITE_P(QualityTier, QualityFullWindow,
                         ::testing::ValuesIn(SmallQualityCases()),
                         [](const ::testing::TestParamInfo<SmallQualityCase>&
                                info) { return info.param.name; });

// --- Wide tier (label: wide) ------------------------------------------------
//
// The > 64-relation path (core/wide.h): seeded 65-100 relation graphs where
// the wide auction must pick an *exact* route on tractable shapes (chains,
// cycles, degree-bounded trees — quadratic connected-subgraph counts pin
// the DP table size definitionally), the beyond-exact pair must beat the
// GOO floor on intractable shapes (hub stars, random sparse graphs), and —
// the backbone guarantee — every <= 64-relation graph must optimize
// bit-identically through the one-word, two-word, and four-word paths.
// Suites are prefixed "WideTier" so CMakeLists' gtest-filter split can
// register them under the "wide" ctest label.

/// Workload ranges for wide graphs. The narrow defaults (cards up to 1e4,
/// selectivities up to 0.2) overflow double around 90 joined relations —
/// the product of ~100 cardinalities and selectivities passes 1e308, and
/// infinite costs make every candidate ordering compare as "no better".
/// Bounded ranges keep even the 100-relation full-set cardinality finite,
/// so cost comparisons stay meaningful at every width.
WorkloadOptions WideOpts(uint64_t seed) {
  WorkloadOptions opts;
  opts.seed = seed;
  opts.min_cardinality = 10.0;
  opts.max_cardinality = 1000.0;
  opts.min_selectivity = 1e-4;
  opts.max_selectivity = 1e-2;
  return opts;
}

enum class WideShape { kChain, kCycle, kThreadedPath };

struct WideExactCase {
  std::string name;  // stable: family/size/ordinal, never the seed
  uint64_t seed;
  int n;
  WideShape shape;
};

std::vector<WideExactCase> WideExactCases() {
  std::vector<WideExactCase> cases;
  uint64_t salt = 300000;
  for (int i = 0; i < 10; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 65 + (i * 7) % 36;  // 65..100
    cases.push_back({"chain" + std::to_string(n) + "_" + std::to_string(i),
                     seed, n, WideShape::kChain});
  }
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 66 + (i * 5) % 35;
    cases.push_back({"cycle" + std::to_string(n) + "_" + std::to_string(i),
                     seed, n, WideShape::kCycle});
  }
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 65 + (i * 4) % 36;
    cases.push_back({"tree" + std::to_string(n) + "_" + std::to_string(i),
                     seed, n, WideShape::kThreadedPath});
  }
  return cases;
}

WideHypergraph BuildWideExactGraph(const WideExactCase& c) {
  WorkloadOptions opts = WideOpts(c.seed);
  switch (c.shape) {
    case WideShape::kChain:
      return MakeWideChainGraph(c.n, opts);
    case WideShape::kCycle:
      return MakeWideCycleGraph(c.n, opts);
    case WideShape::kThreadedPath:
      return MakeWideDegreeBoundedTree(c.n, 2, c.seed, opts);
  }
  return MakeWideChainGraph(c.n, opts);
}

/// Connected-subgraph count of the shape — the definitional DP table size
/// for an exhaustive enumerator: paths (threaded or not) have the
/// n*(n+1)/2 contiguous runs, a cycle has its n*(n-1) arcs plus the full
/// set.
uint64_t WideExactExpectedEntries(const WideExactCase& c) {
  const uint64_t n = static_cast<uint64_t>(c.n);
  if (c.shape == WideShape::kCycle) return n * (n - 1) + 1;
  return n * (n + 1) / 2;
}

class WideExactSweep : public ::testing::TestWithParam<WideExactCase> {};

TEST_P(WideExactSweep, ExactRouteDefinitionalTableAndGooDominance) {
  const WideExactCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  WideHypergraph g = BuildWideExactGraph(c);
  ASSERT_EQ(g.NumNodes(), c.n);

  // Degree <= 2 simple inner graphs carry DPccp's unconditional chain/cycle
  // bid at any width — no GOO fallback past 64 relations.
  WideRouteDecision d = ChooseWideRoute(g);
  EXPECT_TRUE(d.exact) << WideRouteName(d.route) << ": " << d.reason;
  EXPECT_EQ(d.route, WideRoute::kDpccp) << d.reason;

  BasicCardinalityEstimator<WideNodeSet> est(g);
  WideOptimizeResult r = OptimizeWideAdaptive(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "DPccp");
  EXPECT_EQ(r.stats.dp_entries, WideExactExpectedEntries(c));
  EXPECT_EQ(r.root_set.Count(), c.n);

  BasicPlanTree<WideNodeSet> plan = r.ExtractPlan(g);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
  EXPECT_DOUBLE_EQ(plan.root()->cost, r.cost);

  // Exhaustive DP never loses to the greedy floor.
  WideOptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success) << goo.error;
  EXPECT_LE(r.cost, goo.cost);

  // Width-differential: the identical graph re-represented at W = 4 must
  // reproduce the W = 2 run bit-for-bit.
  BasicHypergraph<HugeNodeSet> h = WidenGraph<HugeNodeSet>(g);
  BasicCardinalityEstimator<HugeNodeSet> hest(h);
  BasicOptimizeResult<HugeNodeSet> hr =
      OptimizeWideAdaptive(h, hest, DefaultCostModel());
  ASSERT_TRUE(hr.success) << hr.error;
  EXPECT_STREQ(hr.stats.algorithm, r.stats.algorithm);
  EXPECT_DOUBLE_EQ(hr.cost, r.cost);
  EXPECT_DOUBLE_EQ(hr.cardinality, r.cardinality);
  EXPECT_EQ(hr.stats.dp_entries, r.stats.dp_entries);
}

INSTANTIATE_TEST_SUITE_P(WideTier, WideExactSweep,
                         ::testing::ValuesIn(WideExactCases()),
                         [](const ::testing::TestParamInfo<WideExactCase>&
                                info) { return info.param.name; });

struct WideBeyondCase {
  std::string name;
  uint64_t seed;
  int n;            // total relations, 65..100
  bool star;        // hub star vs random sparse
  double extra_p;   // sparse: extra-edge probability
};

std::vector<WideBeyondCase> WideBeyondCases() {
  std::vector<WideBeyondCase> cases;
  uint64_t salt = 310000;
  for (int i = 0; i < 5; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 65 + (i * 8) % 36;
    cases.push_back({"star" + std::to_string(n) + "_" + std::to_string(i),
                     seed, n, true, 0.0});
  }
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 65 + (i * 5) % 36;
    const double p = 0.001 + 0.002 * (i % 3);
    cases.push_back({"sparse" + std::to_string(n) + "_" + std::to_string(i),
                     seed, n, false, p});
  }
  return cases;
}

class WideBeyondExactSweep : public ::testing::TestWithParam<WideBeyondCase> {
};

TEST_P(WideBeyondExactSweep, HeuristicRouteValidDeterministicBeatsGoo) {
  const WideBeyondCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  WorkloadOptions opts = WideOpts(c.seed);
  WideHypergraph g = c.star
                         ? MakeWideStarGraph(c.n - 1, opts)
                         : MakeWideSparseGraph(c.n, c.extra_p, c.seed, opts);
  ASSERT_EQ(g.NumNodes(), c.n);

  // Hubs push these past the exact frontier; inner-only graphs land on the
  // windowed-exact idp-k bid, never the raw GOO floor.
  WideRouteDecision d = ChooseWideRoute(g);
  EXPECT_FALSE(d.exact) << d.reason;
  EXPECT_EQ(d.route, WideRoute::kIdp) << d.reason;

  BasicCardinalityEstimator<WideNodeSet> est(g);
  OptimizerOptions options;
  options.random_seed = DerivedSeed(c.seed ^ 0xbead);
  WideOptimizeResult r =
      OptimizeWideAdaptive(g, est, DefaultCostModel(), options);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "idp-k");
  EXPECT_EQ(r.root_set.Count(), c.n);

  BasicPlanTree<WideNodeSet> plan = r.ExtractPlan(g);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;

  // The beyond-exact quality floor, same as the narrow quality tier.
  WideOptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel(), options);
  ASSERT_TRUE(goo.success) << goo.error;
  EXPECT_LE(r.cost, goo.cost);

  // Seeded heuristics are deterministic: an identical second run is
  // bit-identical.
  WideOptimizeResult again =
      OptimizeWideAdaptive(g, est, DefaultCostModel(), options);
  ASSERT_TRUE(again.success) << again.error;
  EXPECT_DOUBLE_EQ(again.cost, r.cost);
  EXPECT_DOUBLE_EQ(again.cardinality, r.cardinality);
}

INSTANTIATE_TEST_SUITE_P(WideTier, WideBeyondExactSweep,
                         ::testing::ValuesIn(WideBeyondCases()),
                         [](const ::testing::TestParamInfo<WideBeyondCase>&
                                info) { return info.param.name; });

// The backbone guarantee of the whole refactor: on graphs that fit in one
// word, the wide machinery is a bit-identical re-representation of the
// narrow path — same route, same cost arithmetic, same DP table size.
// Cases stay at n <= 12 so the route is hardware-independent (below the
// parallel enumerator's 14-node threshold) and always exact.
struct WideNarrowCase {
  std::string name;
  uint64_t seed;
  QuerySpec spec;
};

std::vector<WideNarrowCase> WideNarrowCases() {
  std::vector<WideNarrowCase> cases;
  uint64_t salt = 320000;
  auto add = [&](std::string name, QuerySpec spec, uint64_t seed) {
    cases.push_back({std::move(name), seed, std::move(spec)});
  };
  for (int i = 0; i < 12; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 5 + (i % 8);
    add("randgraph" + std::to_string(n) + "_" + std::to_string(i),
        MakeRandomGraphQuery(n, 0.25, seed), seed);
  }
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    const int n = 5 + (i % 6);
    add("randhyper" + std::to_string(n) + "_" + std::to_string(i),
        MakeRandomHypergraphQuery(n, 1 + (i % 3), seed), seed);
  }
  for (int i = 0; i < 4; ++i) {
    const uint64_t seed = DerivedSeed(salt++);
    WorkloadOptions opts;
    opts.seed = seed;
    const int n = 6 + 2 * i;
    add("chain" + std::to_string(n) + "_" + std::to_string(i),
        MakeChainQuery(n, opts), seed);
  }
  return cases;
}

class WideNarrowAgreementSweep
    : public ::testing::TestWithParam<WideNarrowCase> {};

TEST_P(WideNarrowAgreementSweep, OneWordAndMultiWordPathsBitIdentical) {
  const WideNarrowCase& c = GetParam();
  SCOPED_TRACE(SeedTrace(c.seed));
  Hypergraph g = BuildHypergraphOrDie(c.spec);
  CardinalityEstimator est(g);

  // The one-word path (NS = NodeSet instantiation of the wide dispatcher):
  // must match the narrow registry reference exactly.
  WideRouteDecision nd = ChooseWideRoute(g);
  ASSERT_TRUE(nd.exact) << nd.reason;
  OptimizeResult narrow = OptimizeWideAdaptive(g, est, DefaultCostModel());
  ASSERT_TRUE(narrow.success) << narrow.error;
  EXPECT_STREQ(narrow.stats.algorithm, WideRouteName(nd.route));
  OptimizeResult reference = OptimizeNamed("DPhyp", g, est, DefaultCostModel());
  ASSERT_TRUE(reference.success) << reference.error;
  EXPECT_DOUBLE_EQ(narrow.cost, reference.cost);
  EXPECT_DOUBLE_EQ(narrow.cardinality, reference.cardinality);

  // The same graph re-represented at two and four words: identical route,
  // bit-identical cost, cardinality, and DP table size.
  BasicHypergraph<WideNodeSet> wg = WidenGraph<WideNodeSet>(g);
  BasicCardinalityEstimator<WideNodeSet> west(wg);
  WideOptimizeResult wide = OptimizeWideAdaptive(wg, west, DefaultCostModel());
  ASSERT_TRUE(wide.success) << wide.error;
  EXPECT_STREQ(wide.stats.algorithm, narrow.stats.algorithm);
  EXPECT_DOUBLE_EQ(wide.cost, narrow.cost);
  EXPECT_DOUBLE_EQ(wide.cardinality, narrow.cardinality);
  EXPECT_EQ(wide.stats.dp_entries, narrow.stats.dp_entries);

  BasicHypergraph<HugeNodeSet> hg = WidenGraph<HugeNodeSet>(g);
  BasicCardinalityEstimator<HugeNodeSet> hest(hg);
  BasicOptimizeResult<HugeNodeSet> huge =
      OptimizeWideAdaptive(hg, hest, DefaultCostModel());
  ASSERT_TRUE(huge.success) << huge.error;
  EXPECT_STREQ(huge.stats.algorithm, narrow.stats.algorithm);
  EXPECT_DOUBLE_EQ(huge.cost, narrow.cost);
  EXPECT_DOUBLE_EQ(huge.cardinality, narrow.cardinality);
  EXPECT_EQ(huge.stats.dp_entries, narrow.stats.dp_entries);
}

INSTANTIATE_TEST_SUITE_P(WideTier, WideNarrowAgreementSweep,
                         ::testing::ValuesIn(WideNarrowCases()),
                         [](const ::testing::TestParamInfo<WideNarrowCase>&
                                info) { return info.param.name; });

// The PR's acceptance shapes, pinned as named tests (fixed seeds).
TEST(WideTierAcceptance, Chain72OptimizesExactlyViaWidePath) {
  WideHypergraph g = MakeWideChainGraph(72, WideOpts(42));
  WideRouteDecision d = ChooseWideRoute(g);
  EXPECT_TRUE(d.exact);
  EXPECT_EQ(d.route, WideRoute::kDpccp);

  BasicCardinalityEstimator<WideNodeSet> est(g);
  WideOptimizeResult r = OptimizeWideAdaptive(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "DPccp");
  EXPECT_EQ(r.stats.dp_entries, uint64_t{72} * 73 / 2);
  EXPECT_EQ(r.root_set.Count(), 72);
  Result<bool> valid = ValidatePlanTree(g, r.ExtractPlan(g));
  EXPECT_TRUE(valid.ok()) << valid.error().message;
}

TEST(WideTierAcceptance, Sparse80OptimizesExactlyViaWidePath) {
  // The sparsest connected 80-relation graph (79 edges, seeded random
  // threading, every degree <= 2): exact DP, no GOO fallback.
  WideHypergraph g = MakeWideDegreeBoundedTree(80, 2, 11, WideOpts(11));
  WideRouteDecision d = ChooseWideRoute(g);
  EXPECT_TRUE(d.exact);
  EXPECT_EQ(d.route, WideRoute::kDpccp);

  BasicCardinalityEstimator<WideNodeSet> est(g);
  WideOptimizeResult r = OptimizeWideAdaptive(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "DPccp");
  EXPECT_EQ(r.stats.dp_entries, uint64_t{80} * 81 / 2);
  EXPECT_EQ(r.root_set.Count(), 80);
  Result<bool> valid = ValidatePlanTree(g, r.ExtractPlan(g));
  EXPECT_TRUE(valid.ok()) << valid.error().message;
}

TEST(WideTierAcceptance, HubbySparse80RoutesToWindowedExactNotGoo) {
  // With random spanning-tree hubs the 80-relation graph is past the exact
  // frontier — but it still must not fall to the raw greedy floor.
  WideHypergraph g = MakeWideSparseGraph(80, 0.0005, 7, WideOpts(7));
  WideRouteDecision d = ChooseWideRoute(g);
  EXPECT_FALSE(d.exact);
  EXPECT_EQ(d.route, WideRoute::kIdp);

  BasicCardinalityEstimator<WideNodeSet> est(g);
  WideOptimizeResult r = OptimizeWideAdaptive(g, est, DefaultCostModel());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_STREQ(r.stats.algorithm, "idp-k");
  WideOptimizeResult goo = OptimizeGoo(g, est, DefaultCostModel());
  ASSERT_TRUE(goo.success) << goo.error;
  EXPECT_LE(r.cost, goo.cost);
}

TEST(FuzzSweep, LargeQuerySmoke) {
  // 20 relations — beyond every exponential oracle, exercising only the
  // production path: DPhyp must solve a 20-relation chain+hyperedge query
  // quickly and agree with DPccp-free baselines on the final class.
  QuerySpec spec = MakeChainQuery(20);
  spec.AddComplexPredicate(NodeSet::FullSet(3),
                           NodeSet::Single(17) | NodeSet::Single(18) |
                               NodeSet::Single(19),
                           0.01);
  spec.FillDefaultPayloads();
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.dp_entries,
            OptimizeNamed("TDpartition", g).stats.dp_entries);
  // The parallel enumerator on the same 20-relation graph, multi-threaded.
  OptimizerOptions opt;
  opt.parallel_threads = 4;
  CardinalityEstimator est(g);
  Result<OptimizeResult> par =
      OptimizeByName("dphyp-par", g, est, DefaultCostModel(), opt);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(par.value().success);
  EXPECT_DOUBLE_EQ(par.value().cost, OptimizeNamed("DPhyp", g).cost);
}

}  // namespace
}  // namespace dphyp
