// Broad randomized stress sweep tying every invariant together: for many
// random hypergraphs (plain and generalized), check in one pass that
//   * DPhyp's emit count equals the definitional csg-cmp-pair count,
//   * its table holds exactly the connected subgraphs,
//   * every algorithm agrees on the optimal cost and table size,
//   * the extracted plan validates structurally,
//   * and no duplicate csg-cmp-pair is ever emitted (checked via the
//     counting identity: pairs == |distinct pairs| == lower bound).
#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "hypergraph/builder.h"
#include "hypergraph/connectivity.h"
#include "plan/validate.h"
#include "test_helpers.h"
#include "workload/generators.h"

namespace dphyp {
namespace {

using testing_helpers::OptimizeNamed;

using testing_helpers::CostsClose;

struct FuzzCase {
  uint64_t seed;
  int relations;
  int complex_edges;
};

class FuzzSweep : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzSweep, AllInvariantsHold) {
  const FuzzCase& c = GetParam();
  QuerySpec spec =
      MakeRandomHypergraphQuery(c.relations, c.complex_edges, c.seed);
  Hypergraph g = BuildHypergraphOrDie(spec);
  CardinalityEstimator est(g);

  OptimizeResult reference = OptimizeNamed("DPhyp", g, est,
                                      DefaultCostModel());
  ASSERT_TRUE(reference.success) << reference.error;

  // Counting invariants against the definitional oracle.
  EXPECT_EQ(reference.stats.ccp_pairs, CountCsgCmpPairs(g));
  EXPECT_EQ(reference.stats.dp_entries, CountConnectedSubgraphs(g));
  EXPECT_EQ(reference.stats.discarded, 0u);

  // Structural plan validity.
  PlanTree plan = reference.ExtractPlan(g);
  Result<bool> valid = ValidatePlanTree(g, plan);
  EXPECT_TRUE(valid.ok()) << valid.error().message;
  EXPECT_DOUBLE_EQ(plan.root()->cost, reference.cost);

  // Cross-algorithm agreement.
  for (const char* algo : {"DPsize", "DPsub", "TDbasic", "TDpartition"}) {
    OptimizeResult r = OptimizeNamed(algo, g, est, DefaultCostModel());
    ASSERT_TRUE(r.success) << algo;
    EXPECT_TRUE(CostsClose(r.cost, reference.cost)) << algo;
    EXPECT_EQ(r.stats.dp_entries, reference.stats.dp_entries)
        << algo;
    EXPECT_DOUBLE_EQ(r.cardinality, reference.cardinality)
        << algo;
  }
}

std::vector<FuzzCase> FuzzCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t seed = 100; seed < 130; ++seed) {
    cases.push_back({seed, 6, 2});
  }
  for (uint64_t seed = 200; seed < 220; ++seed) {
    cases.push_back({seed, 8, 3});
  }
  for (uint64_t seed = 300; seed < 310; ++seed) {
    cases.push_back({seed, 9, 4});
  }
  // Edge-heavy small graphs (subsumption-prone neighborhoods).
  for (uint64_t seed = 400; seed < 410; ++seed) {
    cases.push_back({seed, 5, 5});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, FuzzSweep, ::testing::ValuesIn(FuzzCases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "s" + std::to_string(info.param.seed) + "n" +
                                  std::to_string(info.param.relations);
                         });

TEST(FuzzSweep, LargeQuerySmoke) {
  // 20 relations — beyond every exponential oracle, exercising only the
  // production path: DPhyp must solve a 20-relation chain+hyperedge query
  // quickly and agree with DPccp-free baselines on the final class.
  QuerySpec spec = MakeChainQuery(20);
  spec.AddComplexPredicate(NodeSet::FullSet(3),
                           NodeSet::Single(17) | NodeSet::Single(18) |
                               NodeSet::Single(19),
                           0.01);
  spec.FillDefaultPayloads();
  Hypergraph g = BuildHypergraphOrDie(spec);
  OptimizeResult r = OptimizeNamed("DPhyp", g);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.dp_entries,
            OptimizeNamed("TDpartition", g).stats.dp_entries);
}

}  // namespace
}  // namespace dphyp
