// Wall-clock timing helpers for the benchmark harnesses.
#ifndef DPHYP_UTIL_TIMER_H_
#define DPHYP_UTIL_TIMER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace dphyp {

/// Steady-clock stopwatch with millisecond/microsecond accessors.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly — one untimed warmup call to populate caches and
/// allocators, then timed repetitions until at least `min_total_ms` of
/// measured time, `max_reps` repetitions, or 4x `min_total_ms` of wall time
/// have elapsed — and returns every per-call time in milliseconds, so
/// callers can compute order statistics (median/p99). Used by the
/// figure/table harnesses so that sub-millisecond optimizations are
/// measured stably while multi-second ones run only once.
template <typename Fn>
std::vector<double> MeasureSamplesMillis(Fn&& fn, double min_total_ms = 50.0,
                                         int max_reps = 1000) {
  fn();
  std::vector<double> samples;
  Timer total;
  double elapsed = 0.0;
  do {
    Timer t;
    fn();
    samples.push_back(t.ElapsedMillis());
    elapsed += samples.back();
  } while (elapsed < min_total_ms &&
           static_cast<int>(samples.size()) < max_reps &&
           total.ElapsedMillis() < 4.0 * min_total_ms);
  return samples;
}

/// Mean per-call time in milliseconds over one MeasureSamplesMillis run —
/// the single-number view of the same measurement protocol.
template <typename Fn>
double MeasureMillis(Fn&& fn, double min_total_ms = 50.0, int max_reps = 1000) {
  std::vector<double> samples =
      MeasureSamplesMillis(fn, min_total_ms, max_reps);
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

/// The q-quantile (q in [0, 1]) of `samples`, linearly interpolated between
/// order statistics of a sorted copy; 0 for an empty vector. q = 0.5 is the
/// median, q = 0.99 the p99.
inline double QuantileMillis(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = q * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace dphyp

#endif  // DPHYP_UTIL_TIMER_H_
