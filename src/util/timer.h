// Wall-clock timing helpers for the benchmark harnesses.
#ifndef DPHYP_UTIL_TIMER_H_
#define DPHYP_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dphyp {

/// Steady-clock stopwatch with millisecond/microsecond accessors.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly until at least `min_total_ms` of wall time or
/// `max_reps` repetitions have elapsed and returns the *median-of-means*
/// per-call time in milliseconds. Used by the figure/table harnesses so that
/// sub-millisecond optimizations are measured stably while multi-second ones
/// run only once.
template <typename Fn>
double MeasureMillis(Fn&& fn, double min_total_ms = 50.0, int max_reps = 1000) {
  // One untimed warmup call to populate caches/allocators.
  fn();
  Timer total;
  int reps = 0;
  double elapsed = 0.0;
  do {
    Timer t;
    fn();
    elapsed += t.ElapsedMillis();
    ++reps;
  } while (elapsed < min_total_ms && reps < max_reps &&
           total.ElapsedMillis() < 4.0 * min_total_ms);
  return elapsed / reps;
}

}  // namespace dphyp

#endif  // DPHYP_UTIL_TIMER_H_
