#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace dphyp {

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = Trim(text.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatMillis(double ms) {
  char buf[64];
  if (ms < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
  } else if (ms < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  }
  return buf;
}

std::string PadLeft(const std::string& s, int width) {
  if (static_cast<int>(s.size()) >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, int width) {
  if (static_cast<int>(s.size()) >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace dphyp
