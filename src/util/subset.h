// Fast subset enumeration after Vance and Maier (SIGMOD'96).
//
// The identity `next = (current - mask) & mask` walks all subsets of `mask`
// in increasing numeric order. The paper's EnumerateCsgRec/EnumerateCmpRec
// iterate "for each N subset of the neighborhood, N != empty"; this header
// provides that loop as a range.
#ifndef DPHYP_UTIL_SUBSET_H_
#define DPHYP_UTIL_SUBSET_H_

#include <cstdint>

#include "util/node_set.h"

namespace dphyp {

/// Range over all non-empty subsets of `mask`, including `mask` itself,
/// in increasing numeric (and therefore subset-before-superset-compatible)
/// order. Usage: `for (NodeSet n : NonEmptySubsetsOf(nbh)) ...`.
class NonEmptySubsetsOf {
 public:
  explicit NonEmptySubsetsOf(NodeSet mask) : mask_(mask.bits()) {}

  class Iterator {
   public:
    Iterator(uint64_t state, uint64_t mask) : state_(state), mask_(mask) {}
    NodeSet operator*() const { return NodeSet(state_); }
    Iterator& operator++() {
      state_ = (state_ - mask_) & mask_;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return state_ != o.state_; }

   private:
    uint64_t state_;
    uint64_t mask_;
  };

  Iterator begin() const {
    // First non-empty subset: lowest bit of the mask. Empty mask yields an
    // empty range because begin() == end() == {0, mask}.
    return Iterator(mask_ & (~mask_ + 1), mask_);
  }
  Iterator end() const { return Iterator(0, mask_); }

 private:
  uint64_t mask_;
};

/// Range over all non-empty *proper* subsets of `mask` (excludes `mask`).
/// Used by DPsub-style algorithms that split a set into two halves.
class ProperSubsetsOf {
 public:
  explicit ProperSubsetsOf(NodeSet mask) : mask_(mask.bits()) {}

  class Iterator {
   public:
    Iterator(uint64_t state, uint64_t mask) : state_(state), mask_(mask) {}
    NodeSet operator*() const { return NodeSet(state_); }
    Iterator& operator++() {
      state_ = (state_ - mask_) & mask_;
      if (state_ == mask_) state_ = 0;  // skip the improper subset, then stop
      return *this;
    }
    bool operator!=(const Iterator& o) const { return state_ != o.state_; }

   private:
    uint64_t state_;
    uint64_t mask_;
  };

  Iterator begin() const {
    uint64_t first = mask_ & (~mask_ + 1);
    if (first == mask_) first = 0;  // singleton mask has no proper subset
    return Iterator(first, mask_);
  }
  Iterator end() const { return Iterator(0, mask_); }

 private:
  uint64_t mask_;
};

}  // namespace dphyp

#endif  // DPHYP_UTIL_SUBSET_H_
