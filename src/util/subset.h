// Fast subset enumeration after Vance and Maier (SIGMOD'96).
//
// The identity `next = (current - mask) & mask` walks all subsets of `mask`
// in increasing numeric order. The paper's EnumerateCsgRec/EnumerateCmpRec
// iterate "for each N subset of the neighborhood, N != empty"; this header
// provides that loop as a range.
//
// Both ranges are templated on the node-set type: at NodeSet
// (= BasicNodeSet<1>) the step is the original single-word expression; at
// wider sets BasicNodeSet<W>::SubsetStep carries the subtraction's borrow
// across words, which preserves the enumeration order exactly (the state
// is the same 64*W-bit integer, just in limbs). Class template argument
// deduction keeps call sites width-agnostic:
// `for (auto n : NonEmptySubsetsOf(nbh))` works for any width of `nbh`.
#ifndef DPHYP_UTIL_SUBSET_H_
#define DPHYP_UTIL_SUBSET_H_

#include <cstdint>

#include "util/node_set.h"

namespace dphyp {

/// Range over all non-empty subsets of `mask`, including `mask` itself,
/// in increasing numeric (and therefore subset-before-superset-compatible)
/// order. Usage: `for (NodeSet n : NonEmptySubsetsOf(nbh)) ...`.
template <typename NS = NodeSet>
class NonEmptySubsetsOf {
 public:
  explicit NonEmptySubsetsOf(NS mask) : mask_(mask) {}

  class Iterator {
   public:
    Iterator(NS state, NS mask) : state_(state), mask_(mask) {}
    NS operator*() const { return state_; }
    Iterator& operator++() {
      state_ = NS::SubsetStep(state_, mask_);
      return *this;
    }
    bool operator!=(const Iterator& o) const { return state_ != o.state_; }

   private:
    NS state_;
    NS mask_;
  };

  Iterator begin() const {
    // First non-empty subset: lowest bit of the mask. Empty mask yields an
    // empty range because begin() == end() == {empty, mask}.
    return Iterator(mask_.MinSet(), mask_);
  }
  Iterator end() const { return Iterator(NS(), mask_); }

 private:
  NS mask_;
};

template <typename NS>
NonEmptySubsetsOf(NS) -> NonEmptySubsetsOf<NS>;

/// Range over all non-empty *proper* subsets of `mask` (excludes `mask`).
/// Used by DPsub-style algorithms that split a set into two halves.
template <typename NS = NodeSet>
class ProperSubsetsOf {
 public:
  explicit ProperSubsetsOf(NS mask) : mask_(mask) {}

  class Iterator {
   public:
    Iterator(NS state, NS mask) : state_(state), mask_(mask) {}
    NS operator*() const { return state_; }
    Iterator& operator++() {
      state_ = NS::SubsetStep(state_, mask_);
      if (state_ == mask_) state_ = NS();  // skip the improper subset, stop
      return *this;
    }
    bool operator!=(const Iterator& o) const { return state_ != o.state_; }

   private:
    NS state_;
    NS mask_;
  };

  Iterator begin() const {
    NS first = mask_.MinSet();
    if (first == mask_) first = NS();  // singleton mask has no proper subset
    return Iterator(first, mask_);
  }
  Iterator end() const { return Iterator(NS(), mask_); }

 private:
  NS mask_;
};

template <typename NS>
ProperSubsetsOf(NS) -> ProperSubsetsOf<NS>;

}  // namespace dphyp

#endif  // DPHYP_UTIL_SUBSET_H_
