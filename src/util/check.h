// Lightweight invariant-checking macros.
//
// DPHYP_CHECK is always on and used on cold paths (construction, parsing,
// public API boundaries). DPHYP_DCHECK compiles away in release builds and
// guards hot enumeration loops.
#ifndef DPHYP_UTIL_CHECK_H_
#define DPHYP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dphyp {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "DPHYP_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace dphyp

#define DPHYP_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr)) ::dphyp::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DPHYP_CHECK_MSG(expr, msg)                               \
  do {                                                           \
    if (!(expr)) ::dphyp::CheckFailed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define DPHYP_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define DPHYP_DCHECK(expr) DPHYP_CHECK(expr)
#endif

#endif  // DPHYP_UTIL_CHECK_H_
