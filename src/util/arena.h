// Bump-pointer arena for plan nodes and other optimizer-lifetime objects.
//
// Join enumeration allocates many small objects with identical lifetime (one
// optimizer run); an arena makes allocation a pointer bump and deallocation a
// single free, which is the standard idiom in query-optimizer hot paths.
#ifndef DPHYP_UTIL_ARENA_H_
#define DPHYP_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace dphyp {

/// Monotonic allocation region. Objects are never individually destroyed;
/// only trivially-destructible payloads (or payloads whose destructor may be
/// skipped) should be placed here.
class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Movable so arena-backed containers (DpTable) stay movable; the
  /// moved-from arena is left empty and reusable.
  Arena(Arena&& other) noexcept { MoveFrom(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Allocates `size` bytes aligned to `align`.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (offset + size > limit_) {
      NewBlock(size + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + size;
    bytes_used_ = total_before_ + cursor_;
    return reinterpret_cast<void*>(base_ + offset);
  }

  /// Constructs a T in the arena.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of T.
  template <typename T>
  T* NewArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out (upper bound on live memory). Reproduces the
  /// Sec. 3.6 memory-requirements accounting.
  size_t bytes_used() const { return bytes_used_; }

  /// Releases all blocks; previously returned pointers become invalid.
  void Reset() {
    blocks_.clear();
    base_ = 0;
    cursor_ = 0;
    limit_ = 0;
    total_before_ = 0;
    bytes_used_ = 0;
  }

 private:
  void MoveFrom(Arena& other) {
    block_size_ = other.block_size_;
    blocks_ = std::move(other.blocks_);
    base_ = other.base_;
    cursor_ = other.cursor_;
    limit_ = other.limit_;
    total_before_ = other.total_before_;
    bytes_used_ = other.bytes_used_;
    other.Reset();
  }

  void NewBlock(size_t min_size) {
    size_t size = min_size > block_size_ ? min_size : block_size_;
    blocks_.push_back(std::make_unique<char[]>(size));
    total_before_ += cursor_;
    base_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
    cursor_ = 0;
    limit_ = size;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  uintptr_t base_ = 0;
  size_t cursor_ = 0;
  size_t limit_ = 0;
  size_t total_before_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace dphyp

#endif  // DPHYP_UTIL_ARENA_H_
