// Bump-pointer arena for plan nodes and other optimizer-lifetime objects.
//
// Join enumeration allocates many small objects with identical lifetime (one
// optimizer run); an arena makes allocation a pointer bump and deallocation a
// single free, which is the standard idiom in query-optimizer hot paths.
// Rewind() additionally retains the allocated blocks between runs, so a
// pooled OptimizerWorkspace serves its steady state without touching the
// system allocator at all.
#ifndef DPHYP_UTIL_ARENA_H_
#define DPHYP_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace dphyp {

/// Monotonic allocation region. Objects are never individually destroyed;
/// only trivially-destructible payloads (or payloads whose destructor may be
/// skipped) should be placed here.
class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Movable so arena-backed containers (DpTable) stay movable; the
  /// moved-from arena is left empty and reusable.
  Arena(Arena&& other) noexcept { MoveFrom(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Allocates `size` bytes aligned to `align`.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (offset + size > limit_) {
      NewBlock(size + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + size;
    bytes_used_ = total_before_ + cursor_;
    return reinterpret_cast<void*>(base_ + offset);
  }

  /// Constructs a T in the arena.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of T.
  template <typename T>
  T* NewArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out since construction or the last Rewind (upper
  /// bound on live memory). Reproduces the Sec. 3.6 memory-requirements
  /// accounting.
  size_t bytes_used() const { return bytes_used_; }

  /// Releases all blocks; previously returned pointers become invalid.
  void Reset() {
    blocks_.clear();
    next_block_ = 0;
    base_ = 0;
    cursor_ = 0;
    limit_ = 0;
    total_before_ = 0;
    bytes_used_ = 0;
  }

  /// Invalidates every previously returned pointer but *retains* the
  /// allocated blocks: subsequent allocations bump through the retained
  /// blocks before asking the system allocator for new ones. This is what
  /// lets a reused workspace serve its steady state allocation-free.
  void Rewind() {
    next_block_ = 0;
    base_ = 0;
    cursor_ = 0;
    limit_ = 0;
    total_before_ = 0;
    bytes_used_ = 0;
  }

  /// Bytes resident in retained blocks (>= bytes_used after a Rewind).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void MoveFrom(Arena& other) {
    block_size_ = other.block_size_;
    blocks_ = std::move(other.blocks_);
    next_block_ = other.next_block_;
    base_ = other.base_;
    cursor_ = other.cursor_;
    limit_ = other.limit_;
    total_before_ = other.total_before_;
    bytes_used_ = other.bytes_used_;
    other.Reset();
  }

  void NewBlock(size_t min_size) {
    total_before_ += cursor_;
    // After a Rewind, reuse retained blocks in order; a block too small for
    // this request is skipped (it stays available for later cycles).
    while (next_block_ < blocks_.size()) {
      Block& b = blocks_[next_block_++];
      if (b.size >= min_size) {
        base_ = reinterpret_cast<uintptr_t>(b.data.get());
        cursor_ = 0;
        limit_ = b.size;
        return;
      }
    }
    size_t size = min_size > block_size_ ? min_size : block_size_;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    next_block_ = blocks_.size();
    base_ = reinterpret_cast<uintptr_t>(blocks_.back().data.get());
    cursor_ = 0;
    limit_ = size;
  }

  size_t block_size_;
  std::vector<Block> blocks_;
  /// Blocks [0, next_block_) have been (re)entered since the last Rewind;
  /// the bump cursor lives in blocks_[next_block_ - 1].
  size_t next_block_ = 0;
  uintptr_t base_ = 0;
  size_t cursor_ = 0;
  size_t limit_ = 0;
  size_t total_before_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace dphyp

#endif  // DPHYP_UTIL_ARENA_H_
