// Deterministic pseudo-random number generator (xoshiro256**).
//
// Workload generators must be reproducible across platforms and standard
// library versions, so we ship our own small generator instead of relying on
// std::mt19937 distributions (whose std::uniform_* mappings are
// implementation-defined).
#ifndef DPHYP_UTIL_RNG_H_
#define DPHYP_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace dphyp {

/// xoshiro256** seeded via splitmix64. Deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 stream to spread the seed over the full state.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    DPHYP_DCHECK(bound > 0);
    // Debiased modulo via rejection on the top of the range.
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DPHYP_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace dphyp

#endif  // DPHYP_UTIL_RNG_H_
