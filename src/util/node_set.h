// NodeSet: a set of query-graph nodes (relations) encoded as a bitset of
// W machine words.
//
// All enumeration algorithms in this library (DPhyp, DPccp, DPsize, DPsub)
// manipulate sets of relations. `BasicNodeSet<W>` stores the set in W
// 64-bit words: `NodeSet = BasicNodeSet<1>` is the zero-cost fast path
// (layout and semantics identical to the original single-uint64_t class),
// `WideNodeSet = BasicNodeSet<2>` covers 128 relations, and
// `HugeNodeSet = BasicNodeSet<4>` covers 256. The total order `<` required
// by the paper (Def. 1) is the natural order of bit indices: node i
// precedes node j iff i < j.
//
// Every operation is implemented per-width with `if constexpr` single-word
// fast paths, so the W = 1 instantiation compiles to exactly the
// one-uint64_t arithmetic the enumeration cores were tuned on.
#ifndef DPHYP_UTIL_NODE_SET_H_
#define DPHYP_UTIL_NODE_SET_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "util/check.h"

namespace dphyp {

/// A set of up to 64*W nodes, one bit per node. Value type; cheap to copy.
template <int W>
class BasicNodeSet {
  static_assert(W >= 1 && W <= 8, "unsupported node-set width");

 public:
  /// Number of 64-bit words backing the set.
  static constexpr int kWords = W;
  /// Maximum number of nodes representable.
  static constexpr int kMaxNodes = 64 * W;

  constexpr BasicNodeSet() : words_{} {}
  /// Sets the low 64 bits; higher words (if any) are zero. For W = 1 this
  /// is the original whole-representation constructor.
  constexpr explicit BasicNodeSet(uint64_t low) : words_{} { words_[0] = low; }

  /// The singleton set {node}. `node` must be in [0, kMaxNodes).
  static constexpr BasicNodeSet Single(int node) {
    DPHYP_DCHECK(node >= 0 && node < kMaxNodes);
    BasicNodeSet s;
    s.words_[WordOf(node)] = uint64_t{1} << BitOf(node);
    return s;
  }

  /// The set {0, 1, ..., n-1}; the full node set of an n-relation query.
  /// n >= kMaxNodes saturates to the all-ones set.
  static constexpr BasicNodeSet FullSet(int n) {
    DPHYP_DCHECK(n >= 0);
    BasicNodeSet s;
    if (n >= kMaxNodes) {
      for (int w = 0; w < W; ++w) s.words_[w] = ~uint64_t{0};
      return s;
    }
    for (int w = 0; w < WordOf(n); ++w) s.words_[w] = ~uint64_t{0};
    if (BitOf(n) != 0) {
      s.words_[WordOf(n)] = (uint64_t{1} << BitOf(n)) - 1;
    }
    return s;
  }

  /// B_v of the paper: all nodes ordered before or equal to `node`,
  /// i.e. {w | w <= node}. `node` must be in [0, kMaxNodes).
  static constexpr BasicNodeSet UpTo(int node) {
    DPHYP_DCHECK(node >= 0 && node < kMaxNodes);
    BasicNodeSet s = FullSet(node);
    s.words_[WordOf(node)] |= uint64_t{1} << BitOf(node);
    return s;
  }

  /// Nodes strictly below `node`: {w | w < node}. `node` must be in
  /// [0, kMaxNodes] — Below(kMaxNodes) is the full set.
  static constexpr BasicNodeSet Below(int node) {
    DPHYP_DCHECK(node >= 0 && node <= kMaxNodes);
    return FullSet(node);
  }

  /// The whole representation — only meaningful at W = 1, where the set is
  /// one machine word. Width-generic code uses word(i) instead.
  constexpr uint64_t bits() const {
    static_assert(W == 1, "bits() is the one-word accessor; use word(i)");
    return words_[0];
  }

  /// The i-th 64-bit word (bit b of word w encodes node w*64 + b).
  constexpr uint64_t word(int i) const { return words_[i]; }

  constexpr bool Empty() const {
    if constexpr (W == 1) return words_[0] == 0;
    uint64_t any = 0;
    for (int w = 0; w < W; ++w) any |= words_[w];
    return any == 0;
  }

  constexpr int Count() const {
    if constexpr (W == 1) return std::popcount(words_[0]);
    int c = 0;
    for (int w = 0; w < W; ++w) c += std::popcount(words_[w]);
    return c;
  }

  constexpr bool IsSingleton() const {
    if constexpr (W == 1) {
      return words_[0] != 0 && (words_[0] & (words_[0] - 1)) == 0;
    }
    return Count() == 1;
  }

  constexpr bool Contains(int node) const {
    DPHYP_DCHECK(node >= 0 && node < kMaxNodes);
    return (words_[WordOf(node)] >> BitOf(node)) & uint64_t{1};
  }

  constexpr bool IsSubsetOf(BasicNodeSet other) const {
    if constexpr (W == 1) return (words_[0] & ~other.words_[0]) == 0;
    uint64_t stray = 0;
    for (int w = 0; w < W; ++w) stray |= words_[w] & ~other.words_[w];
    return stray == 0;
  }
  constexpr bool IsSupersetOf(BasicNodeSet other) const {
    return other.IsSubsetOf(*this);
  }
  constexpr bool Intersects(BasicNodeSet other) const {
    if constexpr (W == 1) return (words_[0] & other.words_[0]) != 0;
    uint64_t common = 0;
    for (int w = 0; w < W; ++w) common |= words_[w] & other.words_[w];
    return common != 0;
  }

  /// Index of the minimal node (the paper's min(S)). Requires non-empty set.
  int Min() const {
    DPHYP_DCHECK(!Empty());
    if constexpr (W == 1) return std::countr_zero(words_[0]);
    for (int w = 0; w < W; ++w) {
      if (words_[w] != 0) return w * 64 + std::countr_zero(words_[w]);
    }
    return kMaxNodes;  // unreachable for non-empty sets
  }

  /// Index of the maximal node. Requires non-empty set.
  int Max() const {
    DPHYP_DCHECK(!Empty());
    if constexpr (W == 1) return 63 - std::countl_zero(words_[0]);
    for (int w = W - 1; w >= 0; --w) {
      if (words_[w] != 0) return w * 64 + 63 - std::countl_zero(words_[w]);
    }
    return -1;  // unreachable for non-empty sets
  }

  /// The singleton {min(S)} — the canonical representative used when a
  /// hypernode is seeded into a neighborhood (Eq. 1 of the paper).
  /// The empty set maps to the empty set.
  constexpr BasicNodeSet MinSet() const {
    if constexpr (W == 1) {
      return BasicNodeSet(words_[0] & (~words_[0] + 1));
    }
    BasicNodeSet s;
    for (int w = 0; w < W; ++w) {
      if (words_[w] != 0) {
        s.words_[w] = words_[w] & (~words_[w] + 1);
        break;
      }
    }
    return s;
  }

  /// The paper's \overline{min}(S) = S \ min(S).
  constexpr BasicNodeSet MinusMin() const {
    if constexpr (W == 1) return BasicNodeSet(words_[0] & (words_[0] - 1));
    BasicNodeSet s = *this;
    for (int w = 0; w < W; ++w) {
      if (s.words_[w] != 0) {
        s.words_[w] &= s.words_[w] - 1;
        break;
      }
    }
    return s;
  }

  constexpr BasicNodeSet operator|(BasicNodeSet o) const {
    BasicNodeSet s;
    for (int w = 0; w < W; ++w) s.words_[w] = words_[w] | o.words_[w];
    return s;
  }
  constexpr BasicNodeSet operator&(BasicNodeSet o) const {
    BasicNodeSet s;
    for (int w = 0; w < W; ++w) s.words_[w] = words_[w] & o.words_[w];
    return s;
  }
  /// Set difference.
  constexpr BasicNodeSet operator-(BasicNodeSet o) const {
    BasicNodeSet s;
    for (int w = 0; w < W; ++w) s.words_[w] = words_[w] & ~o.words_[w];
    return s;
  }
  BasicNodeSet& operator|=(BasicNodeSet o) {
    for (int w = 0; w < W; ++w) words_[w] |= o.words_[w];
    return *this;
  }
  BasicNodeSet& operator&=(BasicNodeSet o) {
    for (int w = 0; w < W; ++w) words_[w] &= o.words_[w];
    return *this;
  }
  BasicNodeSet& operator-=(BasicNodeSet o) {
    for (int w = 0; w < W; ++w) words_[w] &= ~o.words_[w];
    return *this;
  }

  constexpr bool operator==(const BasicNodeSet&) const = default;

  /// Numeric order of the backing integer (highest word most significant);
  /// at W = 1 this is the natural `bits() < o.bits()` order. Used for
  /// canonical pair keys and deterministic sorts, not by the paper itself.
  constexpr bool operator<(const BasicNodeSet& o) const {
    if constexpr (W == 1) return words_[0] < o.words_[0];
    for (int w = W - 1; w >= 0; --w) {
      if (words_[w] != o.words_[w]) return words_[w] < o.words_[w];
    }
    return false;
  }

  /// The multi-word Vance–Maier subset step: (state - mask) & mask over the
  /// full 64*W-bit integer (subtraction with borrow propagation). See
  /// util/subset.h for the enumeration ranges built on it.
  static constexpr BasicNodeSet SubsetStep(BasicNodeSet state,
                                           BasicNodeSet mask) {
    if constexpr (W == 1) {
      return BasicNodeSet((state.words_[0] - mask.words_[0]) & mask.words_[0]);
    }
    BasicNodeSet s;
    uint64_t borrow = 0;
    for (int w = 0; w < W; ++w) {
      const uint64_t a = state.words_[w];
      const uint64_t b = mask.words_[w];
      const uint64_t d1 = a - b;
      const uint64_t d2 = d1 - borrow;
      borrow = static_cast<uint64_t>(a < b) |
               static_cast<uint64_t>(d1 < borrow);
      s.words_[w] = d2 & b;
    }
    return s;
  }

  /// Iterates the node indices of the set in ascending order.
  class Iterator {
   public:
    explicit Iterator(const std::array<uint64_t, W>& words) : words_(words) {}
    int operator*() const {
      if constexpr (W == 1) return std::countr_zero(words_[0]);
      for (int w = 0; w < W; ++w) {
        if (words_[w] != 0) return w * 64 + std::countr_zero(words_[w]);
      }
      return kMaxNodes;
    }
    Iterator& operator++() {
      if constexpr (W == 1) {
        words_[0] &= words_[0] - 1;
      } else {
        for (int w = 0; w < W; ++w) {
          if (words_[w] != 0) {
            words_[w] &= words_[w] - 1;
            break;
          }
        }
      }
      return *this;
    }
    bool operator!=(const Iterator& o) const { return words_ != o.words_; }

   private:
    std::array<uint64_t, W> words_;
  };
  Iterator begin() const { return Iterator(words_); }
  Iterator end() const { return Iterator(std::array<uint64_t, W>{}); }

  /// Renders as e.g. "{R0, R3, R5}" for diagnostics.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int v : *this) {
      if (!first) out += ", ";
      out += "R" + std::to_string(v);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  static constexpr int WordOf(int node) { return W == 1 ? 0 : node >> 6; }
  static constexpr int BitOf(int node) { return W == 1 ? node : node & 63; }

  std::array<uint64_t, W> words_;
};

/// The one-word fast path every narrow (<= 64 relation) caller uses;
/// layout and behavior are unchanged from the original single-uint64_t
/// NodeSet.
using NodeSet = BasicNodeSet<1>;
/// Two words: up to 128 relations — the wide enumeration path.
using WideNodeSet = BasicNodeSet<2>;
/// Four words: up to 256 relations, for generated ORM/ETL-scale graphs.
using HugeNodeSet = BasicNodeSet<4>;

namespace internal {

inline constexpr uint64_t SplitMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace internal

/// Hash suitable for open-addressing tables keyed by node sets
/// (splitmix64 finalizer; empty sets never occur as keys). The W = 1
/// instantiation is bit-identical to the original HashNodeSet, which the
/// DP-table layout (and therefore iteration-order-sensitive statistics)
/// depends on.
template <int W>
inline uint64_t HashNodeSet(BasicNodeSet<W> s) {
  if constexpr (W == 1) {
    return internal::SplitMix64(s.word(0));
  } else {
    uint64_t h = internal::SplitMix64(s.word(0));
    for (int w = 1; w < W; ++w) {
      // Feed each further word through the finalizer, chained so that
      // (a, b) and (b, a) hash differently.
      h = internal::SplitMix64(h ^ (s.word(w) + 0x9e3779b97f4a7c15ULL));
    }
    return h;
  }
}

/// Functor form for std:: unordered containers keyed by a node set.
struct NodeSetHasher {
  template <int W>
  size_t operator()(BasicNodeSet<W> s) const {
    return static_cast<size_t>(HashNodeSet(s));
  }
};

}  // namespace dphyp

#endif  // DPHYP_UTIL_NODE_SET_H_
