// NodeSet: a set of query-graph nodes (relations) encoded as a 64-bit bitset.
//
// All enumeration algorithms in this library (DPhyp, DPccp, DPsize, DPsub)
// manipulate sets of relations; a single machine word supports queries of up
// to 64 relations, which covers the paper's evaluation (<= 17 relations) with
// plenty of headroom. The total order `<` required by the paper (Def. 1) is
// the natural order of bit indices: node i precedes node j iff i < j.
#ifndef DPHYP_UTIL_NODE_SET_H_
#define DPHYP_UTIL_NODE_SET_H_

#include <bit>
#include <cstdint>
#include <string>

#include "util/check.h"

namespace dphyp {

/// A set of up to 64 nodes, one bit per node. Value type; cheap to copy.
class NodeSet {
 public:
  /// Maximum number of nodes representable.
  static constexpr int kMaxNodes = 64;

  constexpr NodeSet() : bits_(0) {}
  constexpr explicit NodeSet(uint64_t bits) : bits_(bits) {}

  /// The singleton set {node}.
  static constexpr NodeSet Single(int node) {
    return NodeSet(uint64_t{1} << node);
  }

  /// The set {0, 1, ..., n-1}; the full node set of an n-relation query.
  static constexpr NodeSet FullSet(int n) {
    return n >= kMaxNodes ? NodeSet(~uint64_t{0})
                          : NodeSet((uint64_t{1} << n) - 1);
  }

  /// B_v of the paper: all nodes ordered before or equal to `node`,
  /// i.e. {w | w <= node}.
  static constexpr NodeSet UpTo(int node) {
    return NodeSet((uint64_t{1} << node) | ((uint64_t{1} << node) - 1));
  }

  /// Nodes strictly below `node`: {w | w < node}.
  static constexpr NodeSet Below(int node) {
    return NodeSet((uint64_t{1} << node) - 1);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return std::popcount(bits_); }
  constexpr bool IsSingleton() const { return bits_ != 0 && (bits_ & (bits_ - 1)) == 0; }

  constexpr bool Contains(int node) const {
    return (bits_ >> node) & uint64_t{1};
  }
  constexpr bool IsSubsetOf(NodeSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  constexpr bool IsSupersetOf(NodeSet other) const {
    return other.IsSubsetOf(*this);
  }
  constexpr bool Intersects(NodeSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  /// Index of the minimal node (the paper's min(S)). Requires non-empty set.
  int Min() const {
    DPHYP_DCHECK(!Empty());
    return std::countr_zero(bits_);
  }

  /// Index of the maximal node. Requires non-empty set.
  int Max() const {
    DPHYP_DCHECK(!Empty());
    return 63 - std::countl_zero(bits_);
  }

  /// The singleton {min(S)} — the canonical representative used when a
  /// hypernode is seeded into a neighborhood (Eq. 1 of the paper).
  constexpr NodeSet MinSet() const { return NodeSet(bits_ & (~bits_ + 1)); }

  /// The paper's \overline{min}(S) = S \ min(S).
  constexpr NodeSet MinusMin() const { return NodeSet(bits_ & (bits_ - 1)); }

  constexpr NodeSet operator|(NodeSet o) const { return NodeSet(bits_ | o.bits_); }
  constexpr NodeSet operator&(NodeSet o) const { return NodeSet(bits_ & o.bits_); }
  /// Set difference.
  constexpr NodeSet operator-(NodeSet o) const { return NodeSet(bits_ & ~o.bits_); }
  NodeSet& operator|=(NodeSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  NodeSet& operator&=(NodeSet o) {
    bits_ &= o.bits_;
    return *this;
  }
  NodeSet& operator-=(NodeSet o) {
    bits_ &= ~o.bits_;
    return *this;
  }

  constexpr bool operator==(const NodeSet&) const = default;

  /// Iterates the node indices of the set in ascending order.
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return std::countr_zero(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

  /// Renders as e.g. "{R0, R3, R5}" for diagnostics.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int v : *this) {
      if (!first) out += ", ";
      out += "R" + std::to_string(v);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_;
};

/// Hash suitable for open-addressing tables keyed by NodeSet
/// (splitmix64 finalizer; empty sets never occur as keys).
inline uint64_t HashNodeSet(NodeSet s) {
  uint64_t x = s.bits();
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace dphyp

#endif  // DPHYP_UTIL_NODE_SET_H_
