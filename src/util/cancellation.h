// Deadline + cancellation token for bounding optimization latency.
//
// Exhaustive join enumeration is worst-case exponential (the Sec. 3.6
// table-explosion risk), so a serving system must be able to abandon an
// exact run that blows past its budget and fall back to a polynomial
// heuristic. The token is the cheap, shared signal: enumeration loops poll
// it every few hundred candidate pairs (see OptimizerContext::Tick), which
// keeps the poll overhead unmeasurable while bounding how far past the
// deadline a run can drift to a few microseconds of enumeration work.
#ifndef DPHYP_UTIL_CANCELLATION_H_
#define DPHYP_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>

namespace dphyp {

/// A stop signal combining an optional wall-clock deadline with an optional
/// manual cancellation flag. Default-constructed tokens never fire.
///
/// Thread-safety: RequestStop/StopRequested may race freely (the flag is
/// atomic; the deadline is immutable after construction). The token must
/// outlive every optimization run polling it.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token that fires `ms` milliseconds from now (and when RequestStop is
  /// called, whichever comes first). Non-positive budgets fire immediately.
  static CancellationToken AfterMillis(double ms) {
    CancellationToken token;
    token.has_deadline_ = true;
    token.deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    return token;
  }

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;
  CancellationToken(CancellationToken&& other) noexcept
      : stop_(other.stop_.load(std::memory_order_relaxed)),
        has_deadline_(other.has_deadline_),
        deadline_(other.deadline_) {}

  /// Manual cancellation (e.g. a client disconnect); sticky.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// True once the deadline passed or RequestStop was called. This reads a
  /// relaxed atomic and, when armed, the steady clock — cheap enough to
  /// call every few hundred emits but not every emit; OptimizerContext
  /// amortizes it behind a counter.
  bool StopRequested() const {
    if (stop_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  std::atomic<bool> stop_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Amortized polling outside OptimizerContext: loops that run many cheap
/// iterations without emitting candidate pairs (the parallel enumerator's
/// structure-discovery recursion, bulk table publication) keep one of
/// these on the frame and call Fired() per iteration; only every `period`
/// calls does it consult the token. Callers decide how a fired token
/// propagates; enumeration code typically throws EnumerationAborted.
class CancellationPoller {
 public:
  explicit CancellationPoller(const CancellationToken* token,
                              uint64_t period = 256)
      : token_(token), period_(period == 0 ? 1 : period) {}

  /// True on the poll that observes a fired token; false otherwise (and
  /// always false with a null token).
  bool Fired() {
    if (token_ == nullptr) return false;
    if (++ticks_ % period_ != 0) return false;
    return token_->StopRequested();
  }

 private:
  const CancellationToken* token_;
  uint64_t period_;
  uint64_t ticks_ = 0;
};

}  // namespace dphyp

#endif  // DPHYP_UTIL_CANCELLATION_H_
