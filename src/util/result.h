// Minimal Result<T> for fallible, exception-free APIs (parsers, validators).
#ifndef DPHYP_UTIL_RESULT_H_
#define DPHYP_UTIL_RESULT_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace dphyp {

/// Error payload: a human-readable message.
struct Error {
  std::string message;
};

/// Either a value or an error. Modeled after absl::StatusOr but minimal.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    DPHYP_CHECK_MSG(ok(), error().message.c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    DPHYP_CHECK_MSG(ok(), error().message.c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    DPHYP_CHECK_MSG(ok(), error().message.c_str());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    static const Error kNoError{"(no error)"};
    return ok() ? kNoError : std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

/// Convenience factory: `return Err("bad token '%s'", tok)` style formatting
/// is intentionally omitted; callers build the message with std::string ops.
inline Error Err(std::string message) { return Error{std::move(message)}; }

}  // namespace dphyp

#endif  // DPHYP_UTIL_RESULT_H_
