// Small string helpers shared by the QDL parser, EXPLAIN output, and the
// benchmark table printers.
#ifndef DPHYP_UTIL_STRING_UTIL_H_
#define DPHYP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dphyp {

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece;
/// empty pieces are dropped.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Trims leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `%.6g` semantics.
std::string FormatDouble(double v);

/// Formats a duration in milliseconds with sensible precision for tables
/// (3 significant decimals below 1ms, 2 below 100ms, whole numbers above).
std::string FormatMillis(double ms);

/// Left-pads `s` to `width` columns.
std::string PadLeft(const std::string& s, int width);

/// Right-pads `s` to `width` columns.
std::string PadRight(const std::string& s, int width);

}  // namespace dphyp

#endif  // DPHYP_UTIL_STRING_UTIL_H_
