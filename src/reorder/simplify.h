// Outer-join simplification (Galindo-Legaria/Rosenthal; Bhargava et al.).
//
// The paper *assumes* simplified input trees (Sec. 5.2: "we assume that all
// proposed simplifications have been applied — this is a typical
// assumption"). This pass provides that preprocessing: since every
// predicate in this library is strong w.r.t. every table it references
// (NULL makes it false), an outer join whose padded tuples are always
// rejected by an ancestor predicate degenerates:
//
//   * LOJ -> JOIN   if an ancestor strong predicate rejects NULLs of the
//                   null-supplying (right) side,
//   * FOJ -> LOJ    if ancestor predicates reject NULLs of the left side's
//                   padding (the right-preserved part survives: swap), or
//                   of the right side's padding (left-preserved survives),
//   * FOJ -> JOIN   if both sides' paddings are rejected.
//
// Null-rejection propagates down the tree: a predicate at an operator
// rejects NULLs of the tables it references on a given child side iff that
// operator eliminates (or renders irrelevant) child tuples failing the
// predicate — true for both sides of inner joins, the left side of
// semijoins, and the right side of every operator except the full outer
// join (whose right-failing tuples are preserved by padding).
#ifndef DPHYP_REORDER_SIMPLIFY_H_
#define DPHYP_REORDER_SIMPLIFY_H_

#include "reorder/operator_tree.h"

namespace dphyp {

/// Applies all simplifications; returns the number of operators rewritten.
/// The tree must be finalized; it is re-finalized after rewriting (a FOJ
/// degenerating to a right-preserving LOJ swaps its children, which is
/// legal because the FOJ was commutative).
int SimplifyOperatorTree(OperatorTree* tree);

}  // namespace dphyp

#endif  // DPHYP_REORDER_SIMPLIFY_H_
