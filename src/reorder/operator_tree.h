// Operator trees: the initial, simplified operator tree of a query with
// non-inner joins (Sec. 5.3 — "a query hypergraph alone does not capture the
// semantics of a query; what is needed is an initial operator tree").
//
// Conventions (Sec. 5.4): leaves are numbered left-to-right, i.e. an
// in-order traversal visits relations 0, 1, 2, ... in ascending order. This
// gives derived hyperedges the property min(l) < min(r) and lets EmitCsgCmp
// rebuild non-commutative operators without re-deriving sides.
#ifndef DPHYP_REORDER_OPERATOR_TREE_H_
#define DPHYP_REORDER_OPERATOR_TREE_H_

#include <string>
#include <vector>

#include "catalog/query_spec.h"
#include "util/node_set.h"
#include "util/result.h"

namespace dphyp {

/// One predicate conjunct attached to an operator.
struct TreePredicate {
  /// Tables referenced by the conjunct: FT(p).
  NodeSet tables;
  double selectivity = 0.1;
  /// Executable payload (see catalog/query_spec.h): sum of the referenced
  /// columns modulo `modulus` == 0; NULL makes the conjunct false (strong).
  std::vector<ColumnRef> refs;
  int64_t modulus = 2;
  /// Nestjoin operators (node ids) whose computed attributes this conjunct
  /// references; drives the third CalcTES rule.
  std::vector<int> nestjoin_refs;
};

/// One node of the operator tree. Leaves name a relation; inner nodes carry
/// an operator and its conjuncts.
struct TreeNode {
  /// Relation index for leaves, -1 for inner nodes.
  int relation = -1;
  OpType op = OpType::kJoin;
  int left = -1;
  int right = -1;
  /// Indices into OperatorTree::predicates (conjuncts of this operator).
  std::vector<int> predicates;
  /// For nestjoins: tables whose columns the aggregate expressions e_i read
  /// (contributes to SES per the paper's nestjoin rule).
  NodeSet agg_tables;

  bool IsLeaf() const { return relation >= 0; }
};

/// The initial operator tree. Owns relations (leaf payloads), predicates
/// and nodes. Build with AddLeaf/AddOp, then call Finalize().
class OperatorTree {
 public:
  std::vector<RelationInfo> relations;
  std::vector<TreePredicate> predicates;
  std::vector<TreeNode> nodes;
  int root = -1;

  /// Adds a leaf for `relation` (must be registered in `relations`).
  int AddLeaf(int relation);

  /// Adds an operator over two existing nodes.
  int AddOp(OpType op, int left, int right, std::vector<int> predicate_ids,
            NodeSet agg_tables = NodeSet());

  /// Adds a predicate conjunct; returns its index.
  int AddPredicate(NodeSet tables, double selectivity);

  int NumRelations() const { return static_cast<int>(relations.size()); }

  /// Tables (leaf relations) under `node`. Valid after Finalize().
  NodeSet TablesUnder(int node) const { return tables_under_[node]; }

  /// Tables whose columns are visible in `node`'s output: semijoins,
  /// antijoins and nestjoins hide their right side. Valid after Finalize().
  NodeSet VisibleTables(int node) const { return visible_[node]; }

  /// Parent node id, or -1 for the root. Valid after Finalize().
  int Parent(int node) const { return parent_[node]; }

  /// Computes cached table sets and parents, and validates the structure:
  /// every relation appears in exactly one leaf, the in-order leaf sequence
  /// is 0, 1, 2, ... (Sec. 5.4 numbering), predicates reference both sides,
  /// dependent-leaf free tables are bound by enclosing left scopes, and
  /// dependent operators appear exactly where their right side is lateral.
  Result<bool> Finalize();

  /// FT of the operator at `node`: union of its conjuncts' tables plus, for
  /// nestjoins, the aggregate input tables.
  NodeSet OperatorFreeTables(int node) const;

  /// Fills missing predicate payloads (like QuerySpec::FillDefaultPayloads)
  /// and missing lateral-correlation payloads on relations.
  void FillDefaultPayloads();

  /// Algebra-style rendering for diagnostics, e.g. "((R0 LOJ R1) JOIN R2)".
  std::string ToString() const;

 private:
  std::string RenderNode(int node) const;

  std::vector<NodeSet> tables_under_;
  std::vector<NodeSet> visible_;
  std::vector<int> parent_;
};

/// Swaps children of commutative operators so every conflict is of the
/// appendix's Case L2/R2 form before SES/TES computation (Sec. A.1/A.2
/// normalization). Semantics-preserving (only B and M are swapped).
void NormalizeCommutativeChildren(OperatorTree* tree);

}  // namespace dphyp

#endif  // DPHYP_REORDER_OPERATOR_TREE_H_
