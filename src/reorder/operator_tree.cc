#include "reorder/operator_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.h"

namespace dphyp {

int OperatorTree::AddLeaf(int relation) {
  DPHYP_CHECK(relation >= 0 && relation < NumRelations());
  TreeNode node;
  node.relation = relation;
  nodes.push_back(std::move(node));
  return static_cast<int>(nodes.size()) - 1;
}

int OperatorTree::AddOp(OpType op, int left, int right,
                        std::vector<int> predicate_ids, NodeSet agg_tables) {
  DPHYP_CHECK(left >= 0 && left < static_cast<int>(nodes.size()));
  DPHYP_CHECK(right >= 0 && right < static_cast<int>(nodes.size()));
  TreeNode node;
  node.op = op;
  node.left = left;
  node.right = right;
  node.predicates = std::move(predicate_ids);
  node.agg_tables = agg_tables;
  nodes.push_back(std::move(node));
  return static_cast<int>(nodes.size()) - 1;
}

int OperatorTree::AddPredicate(NodeSet tables, double selectivity) {
  TreePredicate p;
  p.tables = tables;
  p.selectivity = selectivity;
  predicates.push_back(std::move(p));
  return static_cast<int>(predicates.size()) - 1;
}

NodeSet OperatorTree::OperatorFreeTables(int node) const {
  const TreeNode& n = nodes[node];
  NodeSet ft = n.agg_tables;
  for (int p : n.predicates) ft |= predicates[p].tables;
  return ft;
}

Result<bool> OperatorTree::Finalize() {
  const int num_nodes = static_cast<int>(nodes.size());
  if (root < 0 || root >= num_nodes) return Err("invalid root");
  tables_under_.assign(num_nodes, NodeSet());
  visible_.assign(num_nodes, NodeSet());
  parent_.assign(num_nodes, -1);

  std::vector<int> leaf_order;
  // In-order traversal computing subtree tables, visibility, parents.
  std::function<Result<bool>(int)> visit = [&](int id) -> Result<bool> {
    const TreeNode& n = nodes[id];
    if (n.IsLeaf()) {
      if (n.relation >= NumRelations()) return Err("leaf names unknown relation");
      leaf_order.push_back(n.relation);
      tables_under_[id] = NodeSet::Single(n.relation);
      visible_[id] = tables_under_[id];
      return true;
    }
    if (n.left < 0 || n.right < 0) return Err("inner node missing children");
    parent_[n.left] = id;
    parent_[n.right] = id;
    Result<bool> l = visit(n.left);
    if (!l.ok()) return l;
    Result<bool> r = visit(n.right);
    if (!r.ok()) return r;
    NodeSet lt = tables_under_[n.left];
    NodeSet rt = tables_under_[n.right];
    if (lt.Intersects(rt)) return Err("children overlap");
    tables_under_[id] = lt | rt;
    NodeSet lv = visible_[n.left];
    NodeSet rv = visible_[n.right];
    visible_[id] = LeftOnlyOutput(n.op) ? lv : lv | rv;
    if (n.predicates.empty()) return Err("operator without predicates");
    for (int p : n.predicates) {
      if (p < 0 || p >= static_cast<int>(predicates.size())) {
        return Err("bad predicate index");
      }
      const TreePredicate& pred = predicates[p];
      if (!pred.tables.Intersects(lv) || !pred.tables.Intersects(rv)) {
        return Err("predicate must reference both sides of its operator");
      }
      if (!pred.tables.IsSubsetOf(lv | rv)) {
        return Err("predicate references tables that are not visible here");
      }
    }
    if (n.op == OpType::kLeftNestjoin || n.op == OpType::kDepLeftNestjoin) {
      if (!n.agg_tables.IsSubsetOf(rv)) {
        return Err("nestjoin aggregate must read visible right-side tables");
      }
    } else if (!n.agg_tables.Empty()) {
      return Err("agg_tables only valid on nestjoins");
    }
    return true;
  };
  Result<bool> ok = visit(root);
  if (!ok.ok()) return ok;

  if (static_cast<int>(leaf_order.size()) != NumRelations()) {
    return Err("every relation must appear in exactly one leaf");
  }
  for (int i = 0; i < static_cast<int>(leaf_order.size()); ++i) {
    if (leaf_order[i] != i) {
      return Err("leaves must be numbered left-to-right (Sec. 5.4)");
    }
  }

  // Lateral scoping: a leaf's free tables must lie strictly to its left and
  // be bound by the left subtree of some enclosing operator; the operator
  // directly above a lateral right side must be a dependent variant (the
  // *initial* tree must be executable as written).
  for (int id = 0; id < num_nodes; ++id) {
    const TreeNode& n = nodes[id];
    if (n.IsLeaf()) {
      NodeSet free = relations[n.relation].free_tables;
      if (free.Empty()) continue;
      if (free.Intersects(tables_under_[id])) {
        return Err("leaf free tables overlap itself");
      }
      for (int t : free) {
        if (t >= n.relation) {
          return Err("lateral leaf may only reference tables to its left");
        }
      }
    }
  }
  for (int id = 0; id < num_nodes; ++id) {
    const TreeNode& n = nodes[id];
    if (n.IsLeaf()) continue;
    NodeSet right_free;
    for (int t : tables_under_[n.right]) {
      right_free |= relations[t].free_tables;
    }
    right_free -= tables_under_[n.right];
    bool lateral_right = right_free.Intersects(tables_under_[n.left]);
    if (lateral_right && !IsDependent(n.op)) {
      return Err("operator above a lateral right side must be dependent");
    }
    if (!lateral_right && IsDependent(n.op)) {
      return Err("dependent operator without a lateral right side");
    }
    if (lateral_right && !right_free.IsSubsetOf(visible_[n.left])) {
      return Err("lateral free tables must be visible in the binding scope");
    }
  }
  return true;
}

void OperatorTree::FillDefaultPayloads() {
  for (TreePredicate& p : predicates) {
    if (!p.refs.empty()) continue;
    for (int t : p.tables) p.refs.push_back(ColumnRef{t, 0});
    double inv = 1.0 / std::max(1e-6, p.selectivity);
    p.modulus = std::max<int64_t>(1, static_cast<int64_t>(std::llround(inv)));
  }
  for (int r = 0; r < NumRelations(); ++r) {
    RelationInfo& rel = relations[r];
    if (rel.free_tables.Empty() || !rel.corr_refs.empty()) continue;
    rel.corr_refs.push_back(ColumnRef{r, 0});
    for (int t : rel.free_tables) rel.corr_refs.push_back(ColumnRef{t, 0});
    rel.corr_modulus = 2;
  }
}

std::string OperatorTree::RenderNode(int id) const {
  const TreeNode& n = nodes[id];
  if (n.IsLeaf()) {
    const std::string& name = relations[n.relation].name;
    return name.empty() ? "R" + std::to_string(n.relation) : name;
  }
  return "(" + RenderNode(n.left) + " " + OpSymbol(n.op) + " " +
         RenderNode(n.right) + ")";
}

std::string OperatorTree::ToString() const {
  if (root < 0) return "(empty)";
  return RenderNode(root);
}

void NormalizeCommutativeChildren(OperatorTree* tree) {
  // For every commutative child c of an operator with predicate set p:
  // ensure FT(p) touches the child subtree that stays adjacent in the
  // nesting pattern (right subtree for left children, left subtree for
  // right children); swap c's children otherwise. See Appendix A.1/A.2.
  for (int id = 0; id < static_cast<int>(tree->nodes.size()); ++id) {
    TreeNode& parent = tree->nodes[id];
    if (parent.IsLeaf()) continue;
    NodeSet ft = tree->OperatorFreeTables(id);
    auto maybe_swap = [&](int child_id, bool child_is_left) {
      TreeNode& child = tree->nodes[child_id];
      if (child.IsLeaf() || !IsCommutative(child.op)) return;
      NodeSet inner_left = tree->TablesUnder(child.left);
      NodeSet inner_right = tree->TablesUnder(child.right);
      bool want_swap;
      if (child_is_left) {
        // Case L1 -> L2: parent predicate should touch right(child).
        want_swap = !ft.Intersects(inner_right) && ft.Intersects(inner_left);
      } else {
        // Case R1 -> R2: parent predicate should touch left(child).
        want_swap = !ft.Intersects(inner_left) && ft.Intersects(inner_right);
      }
      if (want_swap) std::swap(child.left, child.right);
    };
    maybe_swap(parent.left, /*child_is_left=*/true);
    maybe_swap(parent.right, /*child_is_left=*/false);
  }
}

}  // namespace dphyp
