#include "reorder/ses_tes.h"

#include <functional>

#include "util/check.h"

namespace dphyp {

bool OperatorConflict(OpType lower, OpType upper) {
  // OC(◦1, ◦2) with ◦1 = lower, ◦2 = upper (Appendix A.3):
  //   (◦1 = B ∧ ◦2 = M)
  //   ∨ (◦1 ≠ B ∧ ¬(◦1 = ◦2 = P) ∧ ¬(◦1 = M ∧ ◦2 ∈ {P, M}))
  // where every operator stands for its dependent counterpart as well.
  const OpType l = RegularVariant(lower);
  const OpType u = RegularVariant(upper);
  if (l == OpType::kJoin) return u == OpType::kFullOuterjoin;
  if (l == OpType::kLeftOuterjoin && u == OpType::kLeftOuterjoin) return false;
  if (l == OpType::kFullOuterjoin &&
      (u == OpType::kLeftOuterjoin || u == OpType::kFullOuterjoin)) {
    return false;
  }
  return true;
}

namespace {

/// Collects all operator (inner) node ids in the subtree rooted at `id`.
void CollectOperators(const OperatorTree& tree, int id, std::vector<int>* out) {
  const TreeNode& n = tree.nodes[id];
  if (n.IsLeaf()) return;
  out->push_back(id);
  CollectOperators(tree, n.left, out);
  CollectOperators(tree, n.right, out);
}

/// RightTables(◦1, ◦2) for ◦2 in STO(left(◦1)): union of T(right(◦3)) for
/// all ◦3 on the path from ◦2 (inclusive) up to ◦1 (exclusive), plus
/// T(left(◦2)) if ◦2 is commutative (Sec. 5.5).
NodeSet RightTables(const OperatorTree& tree, int upper, int lower) {
  NodeSet acc;
  for (int walk = lower; walk != upper; walk = tree.Parent(walk)) {
    DPHYP_DCHECK(walk >= 0);
    acc |= tree.TablesUnder(tree.nodes[walk].right);
  }
  if (IsCommutative(tree.nodes[lower].op)) {
    acc |= tree.TablesUnder(tree.nodes[lower].left);
  }
  return acc;
}

/// LeftTables(◦1, ◦2) for ◦2 in STO(right(◦1)), symmetric to RightTables.
NodeSet LeftTables(const OperatorTree& tree, int upper, int lower) {
  NodeSet acc;
  for (int walk = lower; walk != upper; walk = tree.Parent(walk)) {
    DPHYP_DCHECK(walk >= 0);
    acc |= tree.TablesUnder(tree.nodes[walk].left);
  }
  if (IsCommutative(tree.nodes[lower].op)) {
    acc |= tree.TablesUnder(tree.nodes[lower].right);
  }
  return acc;
}

/// Post-order operator ids (children before parents).
std::vector<int> PostOrderOperators(const OperatorTree& tree) {
  std::vector<int> order;
  std::function<void(int)> walk = [&](int id) {
    const TreeNode& n = tree.nodes[id];
    if (n.IsLeaf()) return;
    walk(n.left);
    walk(n.right);
    order.push_back(id);
  };
  walk(tree.root);
  return order;
}

}  // namespace

TesAnalysis ComputeTes(const OperatorTree& tree) {
  const int num_nodes = static_cast<int>(tree.nodes.size());
  TesAnalysis analysis;
  analysis.ses.assign(num_nodes, NodeSet());
  analysis.tes.assign(num_nodes, NodeSet());

  // SES: leaves contribute themselves; operators the tables their conjuncts
  // (and, for nestjoins, aggregate expressions) reference inside T(◦).
  for (int id = 0; id < num_nodes; ++id) {
    const TreeNode& n = tree.nodes[id];
    if (n.IsLeaf()) {
      analysis.ses[id] = NodeSet::Single(n.relation);
      continue;
    }
    analysis.ses[id] = tree.OperatorFreeTables(id) & tree.TablesUnder(id);
  }

  // CalcTES bottom-up.
  for (int op1 : PostOrderOperators(tree)) {
    const TreeNode& n1 = tree.nodes[op1];
    analysis.tes[op1] = analysis.ses[op1];
    const NodeSet ft1 = tree.OperatorFreeTables(op1);

    std::vector<int> left_ops, right_ops;
    CollectOperators(tree, n1.left, &left_ops);
    CollectOperators(tree, n1.right, &right_ops);

    for (int op2 : left_ops) {
      // LeftConflict(◦(p2), ◦p1) = LC ∧ OC(◦p2, ◦p1).
      const bool lc = ft1.Intersects(RightTables(tree, op1, op2));
      if (lc && OperatorConflict(tree.nodes[op2].op, n1.op)) {
        analysis.tes[op1] |= analysis.tes[op2];
      }
    }
    for (int op2 : right_ops) {
      // The paper uses RightConflict(◦p1, ◦(p2)) = RC ∧ OC(◦p1, ◦p2) with
      // RC = FT(p1) ∩ LeftTables ≠ ∅. The RC gate is incomplete (the same
      // family of gaps Moerkotte/Neumann repaired in their SIGMOD'13
      // follow-up; our executor property tests reproduce concrete
      // counterexamples): a descendant in the *right* subtree always
      // interacts with ◦1's padding/projection when it escapes above ◦1 —
      // an inner join floating out of an outer join's null-producing side
      // drops the padded rows, and nothing can escape a semijoin/antijoin/
      // nestjoin's hidden side. We therefore apply OC unconditionally, and
      // additionally flag the Case-R1 predicate pattern (p1 references
      // ◦2's subtree while missing all of its LeftTables) for the
      // OC-exempt families (4.46/4.50/4.51 are only valid in the R2
      // pattern). Commutative descendants are exempt from the R1 term:
      // the normalization pass recasts them to Case R2, and inner joins
      // must stay freely reorderable.
      const OpType lower_op = tree.nodes[op2].op;
      bool conflict;
      if (OperatorConflict(n1.op, lower_op)) {
        conflict = true;
      } else {
        const bool rc = ft1.Intersects(LeftTables(tree, op1, op2));
        conflict = !rc && !IsCommutative(lower_op) &&
                   ft1.Intersects(tree.TablesUnder(op2));
      }
      if (conflict) analysis.tes[op1] |= analysis.tes[op2];
    }
    // Nestjoin attribute dependencies: if a conjunct of ◦p1 references an
    // attribute computed by a nestjoin below, the nestjoin must complete
    // first.
    for (int p : n1.predicates) {
      for (int nest : tree.predicates[p].nestjoin_refs) {
        DPHYP_CHECK(nest >= 0 && nest < num_nodes);
        bool below = false;
        for (int walk = tree.Parent(nest); walk >= 0; walk = tree.Parent(walk)) {
          if (walk == op1) {
            below = true;
            break;
          }
        }
        if (below) analysis.tes[op1] |= analysis.tes[nest];
      }
    }
  }
  return analysis;
}

DerivedQuery DeriveQuery(const OperatorTree& original, OperatorTree* tree_out) {
  OperatorTree tree = original;  // normalize a copy
  NormalizeCommutativeChildren(&tree);

  DerivedQuery out;
  out.analysis = ComputeTes(tree);

  for (int r = 0; r < tree.NumRelations(); ++r) {
    const RelationInfo& rel = tree.relations[r];
    HypergraphNode node;
    node.name = rel.name;
    node.cardinality = rel.cardinality;
    node.free_tables = rel.free_tables;
    out.graph.AddNode(node);
    out.ses_graph.AddNode(node);
  }

  for (int id : PostOrderOperators(tree)) {
    const TreeNode& n = tree.nodes[id];
    const NodeSet tes = out.analysis.tes[id];
    const NodeSet ses = out.analysis.ses[id];
    const NodeSet right_tables = tree.TablesUnder(n.right);
    const NodeSet left_tables = tree.TablesUnder(n.left);

    double selectivity = 1.0;
    for (int p : n.predicates) selectivity *= tree.predicates[p].selectivity;

    // Hypernode form (Sec. 5.7): r = TES ∩ T(right), l = TES \ r. Edges
    // carry the *regular* operator; EmitCsgCmp re-derives laterality.
    Hyperedge hyper;
    hyper.right = tes & right_tables;
    hyper.left = tes - hyper.right;
    hyper.selectivity = selectivity;
    hyper.op = RegularVariant(n.op);
    hyper.predicate_id = id;
    DPHYP_CHECK(!hyper.left.Empty() && !hyper.right.Empty());
    int edge_id = out.graph.AddEdge(hyper);

    // SES form for the generate-and-test mode.
    Hyperedge ses_edge;
    ses_edge.left = ses & left_tables;
    ses_edge.right = ses & right_tables;
    ses_edge.selectivity = selectivity;
    ses_edge.op = RegularVariant(n.op);
    ses_edge.predicate_id = id;
    DPHYP_CHECK(!ses_edge.left.Empty() && !ses_edge.right.Empty());
    int ses_id = out.ses_graph.AddEdge(ses_edge);
    DPHYP_CHECK(edge_id == ses_id);

    out.tes_constraints.push_back(TesConstraint{hyper.left, hyper.right});
    out.edge_to_op.push_back(id);
  }

  if (tree_out != nullptr) *tree_out = std::move(tree);
  return out;
}

PlanTree ReferencePlan(const OperatorTree& tree, const DerivedQuery& derived,
                       const CardinalityModel& est, const CostModel& model) {
  // Map operator node id -> derived edge id.
  std::vector<int> op_to_edge(tree.nodes.size(), -1);
  for (size_t e = 0; e < derived.edge_to_op.size(); ++e) {
    op_to_edge[derived.edge_to_op[e]] = static_cast<int>(e);
  }

  PlanBuilder builder;
  std::function<const PlanTreeNode*(int)> build =
      [&](int id) -> const PlanTreeNode* {
    const TreeNode& n = tree.nodes[id];
    if (n.IsLeaf()) {
      return builder.Leaf(n.relation, tree.relations[n.relation].cardinality);
    }
    const PlanTreeNode* left = build(n.left);
    const PlanTreeNode* right = build(n.right);
    const PlanTreeNode* node =
        builder.Op(n.op, left, right, {op_to_edge[id]});
    PlanTreeNode* mut = const_cast<PlanTreeNode*>(node);
    mut->cardinality = est.Estimate(node->set);
    mut->cost = model.OperatorCost(n.op, PlanSide{left->cost, left->cardinality},
                                   PlanSide{right->cost, right->cardinality},
                                   mut->cardinality);
    return node;
  };
  return builder.Build(build(tree.root));
}

}  // namespace dphyp
