#include "reorder/simplify.h"

#include <functional>

#include "util/check.h"

namespace dphyp {

namespace {

/// Does `op` eliminate (or render irrelevant) left-child tuples that fail
/// its predicate? Inner join and semijoin: yes. Antijoin keeps failing
/// tuples; outer joins pad them; nestjoin keeps every left tuple.
bool RejectsFailingLeft(OpType op) {
  switch (RegularVariant(op)) {
    case OpType::kJoin:
    case OpType::kLeftSemijoin:
      return true;
    default:
      return false;
  }
}

/// Does `op` eliminate (or render irrelevant) right-child tuples that fail
/// its predicate? True for everything except the full outer join, whose
/// right-failing tuples survive as left-padded output.
bool RejectsFailingRight(OpType op) {
  return RegularVariant(op) != OpType::kFullOuterjoin;
}

}  // namespace

int SimplifyOperatorTree(OperatorTree* tree) {
  DPHYP_CHECK(tree->root >= 0);
  int rewrites = 0;

  // Top-down: `rejected` carries the tables whose NULL-padded tuples are
  // guaranteed to be eliminated by some ancestor predicate before reaching
  // the result.
  std::function<void(int, NodeSet)> walk = [&](int id, NodeSet rejected) {
    TreeNode& node = tree->nodes[id];
    if (node.IsLeaf()) return;

    const NodeSet right_tables = tree->TablesUnder(node.right);
    const NodeSet left_tables = tree->TablesUnder(node.left);

    if (RegularVariant(node.op) == OpType::kLeftOuterjoin &&
        rejected.Intersects(right_tables)) {
      // Padded right-side NULLs never survive: LOJ degenerates to a join
      // (dependent LOJ to a dependent join).
      node.op = IsDependent(node.op) ? OpType::kDepJoin : OpType::kJoin;
      ++rewrites;
    } else if (node.op == OpType::kFullOuterjoin) {
      const bool right_padding_dies = rejected.Intersects(right_tables);
      const bool left_padding_dies = rejected.Intersects(left_tables);
      if (right_padding_dies && left_padding_dies) {
        node.op = OpType::kJoin;
        ++rewrites;
      } else if (right_padding_dies) {
        // Only the left-preserved part (right side padded) dies... no:
        // rejected ∩ right kills tuples whose *right* side is NULL, i.e.
        // the left-preserved padding; the right-preserved part survives —
        // swap children and keep a left outer join.
        std::swap(node.left, node.right);
        node.op = OpType::kLeftOuterjoin;
        ++rewrites;
      } else if (left_padding_dies) {
        // Tuples with NULL left side die: right-preserved padding dies,
        // left-preserved survives — plain left outer join.
        node.op = OpType::kLeftOuterjoin;
        ++rewrites;
      }
    }

    // Extend the rejection set for the children. (Use the possibly
    // rewritten operator — a LOJ that just became a join now rejects on
    // both sides.)
    NodeSet predicate_tables = tree->OperatorFreeTables(id);
    NodeSet down_left = rejected;
    NodeSet down_right = rejected;
    if (RejectsFailingLeft(node.op)) {
      down_left |= predicate_tables & tree->TablesUnder(node.left);
    }
    if (RejectsFailingRight(node.op)) {
      down_right |= predicate_tables & tree->TablesUnder(node.right);
    }
    walk(node.left, down_left);
    walk(node.right, down_right);
  };
  walk(tree->root, NodeSet());

  // No cache refresh is needed: per-node table sets, visibility and parents
  // are keyed by node id and unaffected by the rewrites (a swapped FOJ was
  // commutative, and join/LOJ/FOJ neither hide nor reveal columns). Note
  // that a swap may break the cosmetic left-to-right leaf numbering;
  // downstream consumers rely on edge-carried orientation, not on global
  // order, so this is safe (the same holds for NormalizeCommutativeChildren).
  return rewrites;
}

}  // namespace dphyp
