// SES / TES computation and conflict analysis (Sec. 5.5, Appendix A), plus
// the two hypergraph derivations of Sec. 5.7/5.8:
//   * the "hypernode" form — one TES-derived hyperedge per operator, which
//     prunes invalid orderings during enumeration, and
//   * the "TES test" form — SES-based edges plus per-edge TES constraints
//     checked (and often failed) at combine time, the slower
//     generate-and-test alternative Fig. 8a compares against.
#ifndef DPHYP_REORDER_SES_TES_H_
#define DPHYP_REORDER_SES_TES_H_

#include <vector>

#include "core/optimizer.h"
#include "hypergraph/hypergraph.h"
#include "plan/plan_tree.h"
#include "reorder/operator_tree.h"

namespace dphyp {

/// Per-operator analysis results (indexed by tree node id; leaves hold their
/// singleton table sets).
struct TesAnalysis {
  std::vector<NodeSet> ses;
  std::vector<NodeSet> tes;
};

/// The operator-conflict predicate OC of Sec. 5.5 / Appendix A.3.
/// `lower` is the descendant operator (the appendix's ◦1), `upper` the
/// ancestor (◦2); dependent variants behave like their regular forms.
/// Returns true iff reordering the two operators is *invalid*.
bool OperatorConflict(OpType lower, OpType upper);

/// Computes SES and TES for every operator of a finalized, normalized tree.
TesAnalysis ComputeTes(const OperatorTree& tree);

/// Everything the optimizer needs for a non-inner-join query.
struct DerivedQuery {
  /// TES-derived hypergraph: one hyperedge (l, r) per operator with
  /// r = TES ∩ T(right), l = TES \ r (Sec. 5.7).
  Hypergraph graph;
  /// SES-based graph for the generate-and-test mode: one edge per operator
  /// with sides SES ∩ T(left) / SES ∩ T(right).
  Hypergraph ses_graph;
  /// TES constraints parallel to ses_graph's edges.
  std::vector<TesConstraint> tes_constraints;
  /// Edge id -> operator tree node id (identical for both graphs).
  std::vector<int> edge_to_op;
  /// The analysis itself, for inspection and tests.
  TesAnalysis analysis;
};

/// Normalizes (copy), analyses and derives both graphs from an initial
/// operator tree. The returned `tree_out`, if non-null, receives the
/// normalized copy (needed to build the reference plan the executor runs).
DerivedQuery DeriveQuery(const OperatorTree& tree,
                         OperatorTree* tree_out = nullptr);

/// Builds the plan tree corresponding to the (normalized) initial operator
/// tree itself, with costs/cardinalities from the estimator — the reference
/// both for semantics (executor comparison) and for the "optimized cost
/// must not exceed original cost" sanity check.
PlanTree ReferencePlan(const OperatorTree& tree, const DerivedQuery& derived,
                       const CardinalityModel& est, const CostModel& model);

}  // namespace dphyp

#endif  // DPHYP_REORDER_SES_TES_H_
