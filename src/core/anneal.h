// Simulated annealing over join trees ("anneal"), the GEQO-style
// stochastic escape hatch for shapes even windowed DP refuses (non-inner
// operators, lateral dependencies) or where callers want randomized search
// past the exact frontier.
//
// The search state is a full binary join tree over all relations. A
// candidate tree is evaluated by *replaying* its merges bottom-up through
// the shared EmitCsgCmp combine step on the workspace's seed-table slot —
// so operator recovery, conflict-rule/TES validation, lateral ordering,
// and costing are exactly the production machinery, and a tree is simply
// invalid (infinite cost) when any of its merges is rejected. Neighborhood
// moves: leaf swap (exchange two relations), subtree swap (exchange two
// disjoint subtrees), and re-association (rotate a subtree across its
// parent). Metropolis acceptance with geometric cooling; the walk is
// seeded from GOO's tree, so the best-so-far plan never costs more than
// the greedy fallback.
//
// Determinism: the whole search is driven by one Rng seeded from
// OptimizerOptions::random_seed — same seed, same graph, same models, same
// move budget => bit-identical plan, whatever the thread count (the search
// is single-threaded by design). Deadlines degrade gracefully: a fired
// cancellation token ends the move loop and the best tree found so far is
// replayed into the primary table as a successful (never aborted) result.
#ifndef DPHYP_CORE_ANNEAL_H_
#define DPHYP_CORE_ANNEAL_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs simulated annealing (seed OptimizerOptions::random_seed, budget
/// OptimizerOptions::anneal_moves). Handles every graph GOO handles.
template <typename NS>
BasicOptimizeResult<NS> OptimizeAnneal(const BasicHypergraph<NS>& graph,
                                       const BasicCardinalityModel<NS>& est,
                                       const CostModel& cost_model,
                                       const OptimizerOptions& options = {},
                                       BasicOptimizerWorkspace<NS>* workspace =
                                           nullptr);

/// The registry entry for "anneal": bids past the exact frontier, below
/// idp-k (which wins where its inner-join precondition holds) and above
/// GOO's floor.
std::unique_ptr<Enumerator> MakeAnnealEnumerator();

}  // namespace dphyp

#endif  // DPHYP_CORE_ANNEAL_H_
