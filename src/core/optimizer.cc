#include "core/optimizer.h"

#include <cmath>
#include <utility>

#include "baselines/goo.h"
#include "core/workspace.h"
#include "util/check.h"

namespace dphyp {

template <typename NS>
BasicOptimizerContext<NS>::BasicOptimizerContext(
    const BasicHypergraph<NS>& graph, const BasicCardinalityModel<NS>& est,
    const CostModel& cost_model, const OptimizerOptions& options,
    BasicDpTable<NS>* borrowed_table, bool reset_borrowed_table)
    : graph_(&graph),
      est_(&est),
      cost_model_(&cost_model),
      tes_(options.tes_constraints),
      cancel_(options.cancellation),
      all_nodes_(graph.AllNodes()) {
  const size_t expected = static_cast<size_t>(graph.NumNodes()) * 8;
  if (borrowed_table != nullptr) {
    if (reset_borrowed_table) borrowed_table->Reset(expected);
    table_ = borrowed_table;
  } else {
    owned_table_ = std::make_unique<BasicDpTable<NS>>(expected);
    table_ = owned_table_.get();
  }
  if constexpr (!std::is_same_v<NS, NodeSet>) {
    // The generate-and-test TES mode is a narrow-only measurement mode.
    DPHYP_CHECK_MSG(tes_ == nullptr,
                    "TES constraints are not supported on the wide path");
  }
  if (tes_ != nullptr) {
    DPHYP_CHECK_MSG(static_cast<int>(tes_->size()) == graph.NumEdges(),
                    "TES constraint list must cover every edge");
  }
  if (options.enable_pruning && cost_model.SupportsPruning()) {
    pruning_ = true;
    bound_ = options.initial_upper_bound;
    if (!std::isfinite(bound_)) {
      // Seed the incumbent from the greedy baseline: one GOO pass is
      // O(n^2) estimator calls — negligible against the exponential
      // enumeration it bounds — and its plan cost is a valid upper bound
      // on the optimum under any cost model. (Workspace-aware entry points
      // resolve the seed *before* constructing the context — see
      // ResolvePruningSeed — so this fallback only runs for direct
      // constructions, on a private table.)
      bound_ = GooCostUpperBound(graph, est, cost_model, options);
    }
    stats_.initial_upper_bound = bound_;
    // Every full plan produces the same root class with the same estimated
    // cardinality, so partial plans compete against the incumbent minus
    // this completion bound (for C_out: the root output every plan pays).
    completion_ =
        cost_model.CompletionLowerBound(est.EstimateClass(graph.AllNodes()));
  }
}

template <typename NS>
OptimizerOptions ResolvePruningSeed(const BasicHypergraph<NS>& graph,
                                    const BasicCardinalityModel<NS>& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options,
                                    BasicOptimizerWorkspace<NS>* ws) {
  if (!options.enable_pruning || !cost_model.SupportsPruning() ||
      std::isfinite(options.initial_upper_bound)) {
    return options;
  }
  OptimizerOptions resolved = options;
  resolved.initial_upper_bound =
      GooCostUpperBound(graph, est, cost_model, options, ws);
  return resolved;
}

template <typename NS>
void BasicOptimizerContext<NS>::InitLeaves() {
  for (int v = 0; v < graph_->NumNodes(); ++v) {
    Entry* entry = table_->Insert(NS::Single(v));
    entry->cost = 0.0;
    // Leaf cardinalities come from the model, not the graph: the product
    // form echoes the graph's value bit-identically, while stats/oracle
    // models substitute catalog row counts or observed actuals.
    entry->cardinality = est_->EstimateBase(v);
    entry->edge_id = -1;
  }
}

template <typename NS>
void BasicOptimizerContext<NS>::EmitCsgCmp(NS S1, NS S2) {
  Tick();
  ++stats_.ccp_pairs;
  // Batch the three probe misses this pair will pay (S1, S2, S1 ∪ S2):
  // issuing the prefetches up front overlaps the slot-array cache misses
  // instead of serializing them behind each Find. Probe *results* are
  // unchanged, so the pruning bit-identity suite still holds.
  table_->Prefetch(S1);
  table_->Prefetch(S2);
  table_->Prefetch(S1 | S2);
  const Entry* left = nullptr;
  const Entry* right = nullptr;
  Entry* target = nullptr;
  if (pruning_ && PruneCandidatePair(S1, S2, &left, &right, &target)) return;
  const bool inserted = TryOrientation(S1, S2, left, right, target);
  // The first orientation may have created the combined class; a stale
  // null hint would make the second orientation insert a duplicate.
  if (inserted && target == nullptr) target = table_->Find(S1 | S2);
  TryOrientation(S2, S1, right, left, target);
}

template <typename NS>
void BasicOptimizerContext<NS>::EmitOrdered(NS S1, NS S2) {
  Tick();
  ++stats_.ccp_pairs;
  table_->Prefetch(S1);
  table_->Prefetch(S2);
  table_->Prefetch(S1 | S2);
  const Entry* left = nullptr;
  const Entry* right = nullptr;
  Entry* target = nullptr;
  if (pruning_ && PruneCandidatePair(S1, S2, &left, &right, &target)) return;
  TryOrientation(S1, S2, left, right, target);
}

template <typename NS>
bool BasicOptimizerContext<NS>::PruneCandidatePair(NS S1, NS S2,
                                                   const Entry** left_out,
                                                   const Entry** right_out,
                                                   Entry** target_out) {
  // Two branch-and-bound cuts, both fired before the connecting-edge scan,
  // the cardinality estimate, and the cost evaluation. Both use strict
  // comparisons against *valid plan costs*, which together with the
  // first-strictly-better update rule in TryOrientation makes the pruned
  // run's surviving table entries — and the final plan cost — bit-identical
  // to the unpruned run (tests/test_pruning.cc).
  const Entry* left = table_->Find(S1);
  const Entry* right = table_->Find(S2);
  // A side with no table entry was itself pruned away (every construction
  // exceeded the bound — DPccp emits pairs without consulting the table, so
  // this does occur); any plan on top of it is above the bound too.
  if (left == nullptr || right == nullptr) {
    ++stats_.pruned;
    return true;
  }
  *left_out = left;
  *right_out = right;
  const PlanSide l{left->cost, left->cardinality};
  const PlanSide r{right->cost, right->cardinality};

  // Global cut: with a superadditive cost model every plan built from these
  // inputs costs at least PairLowerBound, and every *full* plan on top of a
  // strict subplan additionally pays the completion bound — above the
  // incumbent, the pair can never be part of a plan that beats it.
  double lower = cost_model_->PairLowerBound(l, r);
  if ((S1 | S2) != all_nodes_) lower += completion_;
  if (lower > bound_) {
    ++stats_.pruned;
    return true;
  }

  // Per-class dominance cut: the class's output cardinality is fixed, so a
  // construction that cannot cost less than the class's incumbent plan can
  // be skipped outright. `>=` matches the strict-< update rule — a tie
  // would not have replaced the incumbent either.
  Entry* target = table_->Find(S1 | S2);
  if (target != nullptr &&
      cost_model_->CandidateLowerBound(l, r, target->cardinality) >=
          target->cost) {
    ++stats_.dominated;
    return true;
  }
  *target_out = target;
  return false;
}

template <typename NS>
bool BasicOptimizerContext<NS>::TryOrientation(NS left, NS right,
                                               const Entry* left_entry,
                                               const Entry* right_entry,
                                               Entry* target_hint) {
  // Scan connecting edges to recover the operator (Sec. 5.4). Exactly one
  // non-inner edge may cross a valid csg-cmp-pair; its stored orientation
  // determines the build direction. Inner edges are commutative and merely
  // contribute conjuncts (their selectivity is already part of the
  // product-form class cardinality).
  int primary_edge = -1;
  OpType op = OpType::kJoin;
  bool valid = true;
  bool benign_reject = false;  // reverse orientation of a non-commutative op
  bool any = false;
  int inner_edge = -1;
  graph_->ForEachConnectingEdge(left, right, [&](int id, bool left_in_s1) {
    if (!valid || benign_reject) return;
    any = true;
    const BasicHyperedge<NS>& e = graph_->edge(id);
    if constexpr (std::is_same_v<NS, NodeSet>) {
      if (tes_ != nullptr) {
        const TesConstraint& c = (*tes_)[id];
        if (e.op == OpType::kJoin) {
          // Commutative: only containment of the full TES matters.
          if (!(c.left | c.right).IsSubsetOf(left | right)) {
            valid = false;
            return;
          }
        } else if (!(c.left.IsSubsetOf(left) && c.right.IsSubsetOf(right))) {
          valid = false;
          return;
        }
      }
    }
    if (e.op == OpType::kJoin) {
      if (inner_edge < 0) inner_edge = id;
      return;
    }
    // Non-inner operator: orientation is dictated by the edge.
    if (primary_edge >= 0) {
      // Two distinct non-inner operators cannot be applied at once.
      valid = false;
      return;
    }
    if (!IsCommutative(e.op) && !left_in_s1) {
      benign_reject = true;  // the symmetric emission covers this pair
      return;
    }
    primary_edge = id;
    op = e.op;
  });
  if (!any || benign_reject) return false;
  if (!valid) {
    ++stats_.discarded;
    return false;
  }
  if (primary_edge < 0) primary_edge = inner_edge;

  // Lateral ordering (Sec. 5.6): a plan whose *left* input references
  // tables on the right cannot be evaluated (only right inputs may be
  // dependent); switch the operator to its dependent variant when the right
  // input references tables provided by the left.
  if (graph_->HasDependentLeaves()) {
    NS free_left = graph_->FreeTables(left);
    if (free_left.Intersects(right)) {
      ++stats_.discarded;
      return false;
    }
    NS free_right = graph_->FreeTables(right);
    if (free_right.Intersects(left)) {
      if (op == OpType::kFullOuterjoin) {
        ++stats_.discarded;  // no dependent full outer join exists
        return false;
      }
      op = DependentVariant(op);
    }
  }

  if (left_entry == nullptr) left_entry = table_->Find(left);
  if (right_entry == nullptr) right_entry = table_->Find(right);
  DPHYP_DCHECK(left_entry != nullptr && right_entry != nullptr);
  const PlanSide left_side{left_entry->cost, left_entry->cardinality};
  const PlanSide right_side{right_entry->cost, right_entry->cardinality};

  const NS combined = left | right;
  Entry* target = target_hint != nullptr ? target_hint : table_->Find(combined);
  const double out_card =
      target != nullptr ? target->cardinality : est_->EstimateClass(combined);

  ++stats_.cost_evaluations;
  const double cost =
      cost_model_->OperatorCost(op, left_side, right_side, out_card);

  // Post-cost branch-and-bound cut: a candidate whose cost plus the
  // completion bound exceeds the incumbent cannot be part of any plan that
  // beats it (monotone cost model), so neither inserting the class nor
  // improving it matters for the final optimum. Classes left unreached this
  // way also vanish from the DP-table connectivity oracle, which prunes
  // every enumeration subtree above them.
  if (pruning_ &&
      cost + (combined != all_nodes_ ? completion_ : 0.0) > bound_) {
    ++stats_.pruned;
    return false;
  }

  if (target == nullptr) {
    target = table_->Insert(combined);
    target->cardinality = out_card;
    target->cost = std::numeric_limits<double>::infinity();
  }
  if (cost < target->cost) {
    target->cost = cost;
    target->left = left;
    target->right = right;
    target->op = op;
    target->edge_id = primary_edge;
    // A completed full plan is itself a valid upper bound: tighten the
    // incumbent so later candidates prune against the best plan seen.
    if (pruning_ && combined == all_nodes_) TightenCostBound(cost);
  }
  return true;
}

template <typename NS>
BasicOptimizeResult<NS> BasicOptimizerContext<NS>::Finish(NS root) {
  BasicOptimizeResult<NS> result;
  result.root_set = root;
  // Memory accounting (Sec. 3.6): sample the real table footprint exactly
  // once, here, so every algorithm path — all of which exit through
  // Finish() — reports consistent numbers. The DCHECK pins the invariant
  // the accounting rests on: the footprint covers at least the live entries.
  stats_.dp_entries = table_->size();
  stats_.table_bytes = table_->MemoryBytes();
  DPHYP_DCHECK(stats_.table_bytes >= stats_.dp_entries * sizeof(Entry));
  const Entry* best = table_->Find(root);
  if (best == nullptr) {
    result.success = false;
    result.error =
        "no plan found: the hypergraph is not connected under Def. 3 "
        "(or all candidate orderings were invalid)";
  } else {
    result.success = true;
    result.cost = best->cost;
    result.cardinality = best->cardinality;
  }
  if (owned_table_ != nullptr) {
    result.AdoptTable(std::move(*owned_table_));
  } else {
    result.BorrowTable(table_);
  }
  result.stats = stats_;
  return result;
}

template <typename NS>
BasicOptimizeResult<NS> BasicOptimizerContext<NS>::FinishAborted(
    const char* algorithm) {
  stats_.aborted = true;
  stats_.algorithm = algorithm;
  stats_.aborted_algorithm = algorithm;
  BasicOptimizeResult<NS> result = Finish(graph_->AllNodes());
  // Finish may have found a (partial-search) full plan; an aborted run must
  // not be served as one — the search was cut short, so optimality claims
  // and agreement guarantees are void.
  result.success = false;
  result.error = std::string("optimization aborted: deadline/cancellation "
                             "fired during ") +
                 algorithm;
  result.stats = stats_;
  return result;
}

template class BasicOptimizerContext<NodeSet>;
template class BasicOptimizerContext<WideNodeSet>;
template class BasicOptimizerContext<HugeNodeSet>;

template OptimizerOptions ResolvePruningSeed<NodeSet>(
    const Hypergraph&, const CardinalityModel&, const CostModel&,
    const OptimizerOptions&, OptimizerWorkspace*);
template OptimizerOptions ResolvePruningSeed<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template OptimizerOptions ResolvePruningSeed<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
