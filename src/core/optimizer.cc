#include "core/optimizer.h"

#include "util/check.h"

namespace dphyp {

OptimizerContext::OptimizerContext(const Hypergraph& graph,
                                   const CardinalityEstimator& est,
                                   const CostModel& cost_model,
                                   const OptimizerOptions& options)
    : graph_(&graph),
      est_(&est),
      cost_model_(&cost_model),
      tes_(options.tes_constraints),
      table_(static_cast<size_t>(graph.NumNodes()) * 8) {
  if (tes_ != nullptr) {
    DPHYP_CHECK_MSG(static_cast<int>(tes_->size()) == graph.NumEdges(),
                    "TES constraint list must cover every edge");
  }
}

void OptimizerContext::InitLeaves() {
  for (int v = 0; v < graph_->NumNodes(); ++v) {
    PlanEntry* entry = table_.Insert(NodeSet::Single(v));
    entry->cost = 0.0;
    entry->cardinality = graph_->node(v).cardinality;
    entry->edge_id = -1;
  }
}

void OptimizerContext::EmitCsgCmp(NodeSet S1, NodeSet S2) {
  ++stats_.ccp_pairs;
  TryOrientation(S1, S2);
  TryOrientation(S2, S1);
}

void OptimizerContext::EmitOrdered(NodeSet S1, NodeSet S2) {
  ++stats_.ccp_pairs;
  TryOrientation(S1, S2);
}

bool OptimizerContext::TryOrientation(NodeSet left, NodeSet right) {
  // Scan connecting edges to recover the operator (Sec. 5.4). Exactly one
  // non-inner edge may cross a valid csg-cmp-pair; its stored orientation
  // determines the build direction. Inner edges are commutative and merely
  // contribute conjuncts (their selectivity is already part of the
  // product-form class cardinality).
  int primary_edge = -1;
  OpType op = OpType::kJoin;
  bool valid = true;
  bool benign_reject = false;  // reverse orientation of a non-commutative op
  bool any = false;
  int inner_edge = -1;
  graph_->ForEachConnectingEdge(left, right, [&](int id, bool left_in_s1) {
    if (!valid || benign_reject) return;
    any = true;
    const Hyperedge& e = graph_->edge(id);
    if (tes_ != nullptr) {
      const TesConstraint& c = (*tes_)[id];
      if (e.op == OpType::kJoin) {
        // Commutative: only containment of the full TES matters.
        if (!(c.left | c.right).IsSubsetOf(left | right)) {
          valid = false;
          return;
        }
      } else if (!(c.left.IsSubsetOf(left) && c.right.IsSubsetOf(right))) {
        valid = false;
        return;
      }
    }
    if (e.op == OpType::kJoin) {
      if (inner_edge < 0) inner_edge = id;
      return;
    }
    // Non-inner operator: orientation is dictated by the edge.
    if (primary_edge >= 0) {
      // Two distinct non-inner operators cannot be applied at once.
      valid = false;
      return;
    }
    if (!IsCommutative(e.op) && !left_in_s1) {
      benign_reject = true;  // the symmetric emission covers this pair
      return;
    }
    primary_edge = id;
    op = e.op;
  });
  if (!any || benign_reject) return false;
  if (!valid) {
    ++stats_.discarded;
    return false;
  }
  if (primary_edge < 0) primary_edge = inner_edge;

  // Lateral ordering (Sec. 5.6): a plan whose *left* input references
  // tables on the right cannot be evaluated (only right inputs may be
  // dependent); switch the operator to its dependent variant when the right
  // input references tables provided by the left.
  if (graph_->HasDependentLeaves()) {
    NodeSet free_left = graph_->FreeTables(left);
    if (free_left.Intersects(right)) {
      ++stats_.discarded;
      return false;
    }
    NodeSet free_right = graph_->FreeTables(right);
    if (free_right.Intersects(left)) {
      if (op == OpType::kFullOuterjoin) {
        ++stats_.discarded;  // no dependent full outer join exists
        return false;
      }
      op = DependentVariant(op);
    }
  }

  const PlanEntry* left_entry = table_.Find(left);
  const PlanEntry* right_entry = table_.Find(right);
  DPHYP_DCHECK(left_entry != nullptr && right_entry != nullptr);
  const PlanSide left_side{left_entry->cost, left_entry->cardinality};
  const PlanSide right_side{right_entry->cost, right_entry->cardinality};

  const NodeSet combined = left | right;
  PlanEntry* target = table_.Find(combined);
  const double out_card =
      target != nullptr ? target->cardinality : est_->Estimate(combined);

  ++stats_.cost_evaluations;
  const double cost =
      cost_model_->OperatorCost(op, left_side, right_side, out_card);

  if (target == nullptr) {
    target = table_.Insert(combined);
    target->cardinality = out_card;
    target->cost = std::numeric_limits<double>::infinity();
  }
  if (cost < target->cost) {
    target->cost = cost;
    target->left = left;
    target->right = right;
    target->op = op;
    target->edge_id = primary_edge;
  }
  return true;
}

OptimizeResult OptimizerContext::Finish(NodeSet root) {
  OptimizeResult result;
  result.root_set = root;
  // Memory accounting (Sec. 3.6): sample the real table footprint exactly
  // once, here, so every algorithm path — all of which exit through
  // Finish() — reports consistent numbers. The DCHECK pins the invariant
  // the accounting rests on: the footprint covers at least the live entries.
  stats_.dp_entries = table_.size();
  stats_.table_bytes = table_.MemoryBytes();
  DPHYP_DCHECK(stats_.table_bytes >= stats_.dp_entries * sizeof(PlanEntry));
  const PlanEntry* best = table_.Find(root);
  if (best == nullptr) {
    result.success = false;
    result.error =
        "no plan found: the hypergraph is not connected under Def. 3 "
        "(or all candidate orderings were invalid)";
  } else {
    result.success = true;
    result.cost = best->cost;
    result.cardinality = best->cardinality;
  }
  result.table = std::move(table_);
  result.stats = stats_;
  return result;
}

}  // namespace dphyp
