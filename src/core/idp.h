// Iterative dynamic programming ("idp-k", Kossmann & Stocker '00 IDP-1
// flavor): windowed exact DP for graphs past the exhaustive frontier.
//
// Exhaustive DP is exact but exponential; GOO is polynomial but greedy one
// merge at a time. IDP-k interpolates: each round selects a window of at
// most k components (greedily, smallest estimated intermediate results
// first), optimizes the window *exactly* with the pooled DPhyp core over a
// reduced hypergraph whose nodes are the window's components, collapses
// the winning window plan into one compound component, and repeats until a
// single component covers the query. Window plans are therefore locally
// optimal under the real cost model and cardinality estimates (a wrapper
// CardinalityModel maps reduced classes back onto original node sets), and
// the full plan is assembled by replaying every recorded merge through the
// shared EmitCsgCmp combine step — so costing, operator recovery, and plan
// extraction behave exactly as in the exact enumerators.
//
// Quality floor: the enumerator also runs GOO on the same inputs and serves
// whichever of the two merge sequences costs less, so an idp-k plan is
// never worse than the greedy fallback. Deadline behavior is graceful
// degradation, not abortion: a fired cancellation token ends window DP and
// the remaining components are merged greedily (the polynomial completion
// always finishes), so sessions never need the GOO fallback path.
//
// When the window covers the whole graph (idp_window >= NumNodes) the run
// degenerates to a single plain DPhyp pass — bit-identical to the exact
// enumerator (tests/test_fuzz.cc quality tier asserts this).
//
// Width-generic: on wide (>64 relation) graphs the component lists and the
// recorded merges widen, but each *reduced window graph* stays a narrow
// Hypergraph — a window never holds more than 64 components — so window DP
// always runs on the one-word fast path.
#ifndef DPHYP_CORE_IDP_H_
#define DPHYP_CORE_IDP_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs IDP-k (window size OptimizerOptions::idp_window). Inner-join
/// queries only (compound components have no conflict-rule story for
/// non-inner operators or lateral dependencies; "anneal" covers those).
template <typename NS>
BasicOptimizeResult<NS> OptimizeIdp(const BasicHypergraph<NS>& graph,
                                    const BasicCardinalityModel<NS>& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options = {},
                                    BasicOptimizerWorkspace<NS>* workspace =
                                        nullptr);

/// The registry entry for IDP-k: bids just above "anneal" (and far above
/// GOO's floor) on inner-join graphs past the exact-DP frontier.
std::unique_ptr<Enumerator> MakeIdpEnumerator();

}  // namespace dphyp

#endif  // DPHYP_CORE_IDP_H_
