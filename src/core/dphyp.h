// DPhyp — the paper's contribution (Sec. 3): dynamic-programming join
// enumeration over (generalized) hypergraphs that visits exactly the
// csg-cmp-pairs of the query graph.
//
// Structure follows the paper's five member functions:
//   Solve            — seeds single relations, drives enumeration in
//                      descending node order
//   EnumerateCsgRec  — grows connected subgraphs through the neighborhood
//   EmitCsg          — seeds complements for a finished csg
//   EnumerateCmpRec  — grows connected complements
//   EmitCsgCmp       — combine step (shared with all other algorithms; see
//                      core/optimizer.h)
//
// One deviation from the SIGMOD pseudocode, documented in DESIGN.md:
// EmitCsg must forbid, for each complement seed v, the neighbors still to
// be processed (X ∪ B_v(N)); otherwise complements reachable from two seeds
// are enumerated twice. This matches DPccp [17] and the book version of
// DPhyp. A test asserts the emit count equals the csg-cmp-pair lower bound.
//
// Width-generic: OptimizeDphyp is templated on the node-set type, so the
// identical enumeration runs on 65–128 relation graphs (WideNodeSet) and up
// to 256 (HugeNodeSet) — the wide routing path (core/wide.h) calls the same
// function the narrow registry entry does.
#ifndef DPHYP_CORE_DPHYP_H_
#define DPHYP_CORE_DPHYP_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs DPhyp over `graph`. Returns the optimal bushy, cross-product-free
/// plan under the given cost model, or failure if the graph is not
/// Def.-3-connected. With a workspace the run reuses its table/neighborhood
/// memo and the result borrows the table (valid until the workspace's next
/// run); without one the result is self-contained.
///
/// Deprecated as a public entry point: prefer the registry
/// (OptimizeByName("DPhyp", ...)) or an OptimizationSession; this free
/// function is the registry implementation and remains for one release.
template <typename NS>
BasicOptimizeResult<NS> OptimizeDphyp(const BasicHypergraph<NS>& graph,
                                      const BasicCardinalityModel<NS>& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options = {},
                                      BasicOptimizerWorkspace<NS>* workspace =
                                          nullptr);

/// Convenience overload with the default (C_out) cost model and a fresh
/// estimator.
OptimizeResult OptimizeDphyp(const Hypergraph& graph);

/// The registry entry for DPhyp (bids on generalized graphs, handles
/// everything).
std::unique_ptr<Enumerator> MakeDphypEnumerator();

}  // namespace dphyp

#endif  // DPHYP_CORE_DPHYP_H_
