#include "core/idp.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/goo.h"
#include "core/dphyp.h"
#include "core/workspace.h"
#include "plan/plan_tree.h"

namespace dphyp {

namespace {

/// One recorded join of the assembly sequence, in original node sets.
template <typename NS>
struct BasicMerge {
  NS left;
  NS right;
};

/// Post-order merge extraction from a plan tree whose leaves are indices
/// into `leaf_sets` (component sets in original node numbering). Returns
/// the original node set the subtree covers. Templated on the tree's node
/// type separately from the component width: window plans come from the
/// narrow reduced graph while the GOO plan is at the original width.
template <typename TreeNode, typename NS>
NS CollectMerges(const TreeNode* node, const std::vector<NS>& leaf_sets,
                 std::vector<BasicMerge<NS>>* out) {
  if (node->IsLeaf()) return leaf_sets[node->relation];
  const NS left = CollectMerges(node->left, leaf_sets, out);
  const NS right = CollectMerges(node->right, leaf_sets, out);
  out->push_back({left, right});
  return left | right;
}

/// Estimation view of a window's reduced hypergraph: reduced node i is the
/// component `comps[i]`, so every reduced class is estimated by mapping it
/// back onto the union of its components' original nodes and asking the
/// caller's model. Window DP therefore optimizes against exactly the
/// cardinalities the final plan will be costed with — no re-derivation, no
/// drift between rounds. The reduced graph is always narrow (a window holds
/// at most 64 components), so this derives the narrow model interface while
/// bridging to components and a base model at the original width.
template <typename NS>
class WindowModel : public CardinalityModel {
 public:
  WindowModel(const BasicCardinalityModel<NS>& base,
              const std::vector<NS>& comps)
      : base_(&base), comps_(&comps) {}

  double EstimateBase(int node) const override {
    return base_->EstimateClass((*comps_)[node]);
  }
  double EstimateClass(NodeSet S) const override {
    NS original;
    for (int i : S) original |= (*comps_)[i];
    return base_->EstimateClass(original);
  }
  const char* name() const override { return "idp-window"; }
  uint64_t Fingerprint() const override { return base_->Fingerprint(); }

 private:
  const BasicCardinalityModel<NS>* base_;
  const std::vector<NS>* comps_;
};

/// Memoized per-pair join cardinality over live components; NaN marks a
/// disconnected pair. Entries stay valid across rounds because a pair's
/// connectivity and estimate never change while both components survive.
template <typename NS>
class PairCardMemo {
 public:
  PairCardMemo(const BasicHypergraph<NS>& graph,
               const BasicCardinalityModel<NS>& est)
      : graph_(&graph), est_(&est) {}

  double Get(NS a, NS b) {
    const std::pair<NS, NS> key =
        b < a ? std::pair<NS, NS>{b, a} : std::pair<NS, NS>{a, b};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const double card = graph_->ConnectsSets(a, b)
                            ? est_->EstimateClass(a | b)
                            : std::numeric_limits<double>::quiet_NaN();
    memo_.emplace(key, card);
    return card;
  }

 private:
  const BasicHypergraph<NS>* graph_;
  const BasicCardinalityModel<NS>* est_;
  std::unordered_map<std::pair<NS, NS>, double,
                     typename BasicGooScratch<NS>::PairHash>
      memo_;
};

/// The connected component pair with the smallest estimated join result
/// (GOO's selection rule; ties by position, which is deterministic).
template <typename NS>
std::optional<std::pair<int, int>> FindBestPair(const std::vector<NS>& comps,
                                                PairCardMemo<NS>& memo) {
  std::optional<std::pair<int, int>> best;
  double best_card = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < comps.size(); ++i) {
    for (size_t j = i + 1; j < comps.size(); ++j) {
      const double card = memo.Get(comps[i], comps[j]);
      if (std::isnan(card) || card >= best_card) continue;
      best_card = card;
      best = {static_cast<int>(i), static_cast<int>(j)};
    }
  }
  return best;
}

/// Merges `i` and `j` (i < j) in place and records the merge.
template <typename NS>
void ApplyMerge(std::vector<NS>* comps, int i, int j,
                std::vector<BasicMerge<NS>>* merges) {
  merges->push_back({(*comps)[i], (*comps)[j]});
  (*comps)[i] = (*comps)[i] | (*comps)[j];
  comps->erase(comps->begin() + j);
}

/// Greedy (GOO-rule) completion of the remaining components — the
/// polynomial tail used once a deadline fires mid-run. Stops when one
/// component remains or no connected pair is left.
template <typename NS>
void GreedyComplete(const std::vector<NS>& initial, PairCardMemo<NS>& memo,
                    std::vector<NS>* comps,
                    std::vector<BasicMerge<NS>>* merges) {
  *comps = initial;
  while (comps->size() > 1) {
    std::optional<std::pair<int, int>> pick = FindBestPair(*comps, memo);
    if (!pick.has_value()) break;
    ApplyMerge(comps, pick->first, pick->second, merges);
  }
}

/// Replays a merge sequence through the shared combine step on the
/// workspace's primary table, producing a regular OptimizeResult whose
/// table holds exactly the replayed plan (2n - 1 entries). Pruning and
/// cancellation are stripped: every listed merge must materialize, and the
/// replay is the run's polynomial final step.
template <typename NS>
BasicOptimizeResult<NS> ReplayMerges(const BasicHypergraph<NS>& graph,
                                     const BasicCardinalityModel<NS>& est,
                                     const CostModel& cost_model,
                                     const OptimizerOptions& options,
                                     BasicOptimizerWorkspace<NS>& ws,
                                     const std::vector<BasicMerge<NS>>& merges) {
  OptimizerOptions replay = options;
  replay.enable_pruning = false;
  replay.cancellation = nullptr;
  replay.tes_constraints = nullptr;
  BasicOptimizerContext<NS> ctx(graph, est, cost_model, replay, &ws.table());
  ctx.InitLeaves();
  for (const BasicMerge<NS>& m : merges) {
    ctx.EmitCsgCmp(m.left, m.right);
    const auto* entry = ctx.table().Find(m.left | m.right);
    if (entry == nullptr || entry->IsLeaf()) {
      BasicOptimizeResult<NS> failed = ctx.Finish(m.left | m.right);
      failed.success = false;
      failed.error = "idp-k: recorded merge " + m.left.ToString() + " x " +
                     m.right.ToString() + " rejected at replay";
      return failed;
    }
  }
  return ctx.Finish(graph.AllNodes());
}

/// Accumulates the search-side counters of a nested run (GOO seed, window
/// DPs) into the final result's stats so the served numbers reflect the
/// whole optimization, not just the replay.
void FoldStats(const OptimizerStats& from, OptimizerStats* into) {
  into->ccp_pairs += from.ccp_pairs;
  into->pairs_tested += from.pairs_tested;
  into->discarded += from.discarded;
  into->cost_evaluations += from.cost_evaluations;
  into->pruned += from.pruned;
  into->dominated += from.dominated;
}

template <typename NS>
BasicOptimizeResult<NS> RunIdp(const BasicHypergraph<NS>& graph,
                               const BasicCardinalityModel<NS>& est,
                               const CostModel& cost_model,
                               const OptimizerOptions& options,
                               BasicOptimizerWorkspace<NS>& ws) {
  const int n = graph.NumNodes();
  // A window never exceeds one machine word of components: the reduced
  // hypergraph is always a narrow (one-word) graph, even when the original
  // graph is wide. Narrow callers are unaffected — with n <= 64 a window
  // of >= 64 already hits the full-window case below.
  const int window =
      std::min(std::max(2, options.idp_window), NodeSet::kMaxNodes);

  // Full-window degenerate case: one exact DPhyp pass over the original
  // graph — bit-identical to the exact enumerator (only the algorithm
  // stamp differs). An aborted pass falls through to the greedy path
  // below; idp-k degrades instead of aborting.
  if (n <= std::max(2, options.idp_window)) {
    BasicOptimizeResult<NS> exact =
        OptimizeDphyp(graph, est, cost_model, options, &ws);
    if (!exact.stats.aborted) {
      exact.stats.algorithm = "idp-k";
      return exact;
    }
  }

  // Window DPhyp runs need a narrow workspace (the reduced graph is
  // narrow). At the original width that is the caller's workspace, as
  // before; wide runs keep a local narrow one for their windows.
  std::optional<OptimizerWorkspace> local_window_ws;
  OptimizerWorkspace* window_ws = nullptr;
  if constexpr (std::is_same_v<NS, NodeSet>) {
    window_ws = &ws;
  } else {
    window_ws = &local_window_ws.emplace();
  }

  // Quality floor: record GOO's merge sequence and cost up front. The
  // windowed plan is served only when it beats this.
  BasicOptimizeResult<NS> goo =
      OptimizeGoo(graph, est, cost_model, options, &ws);
  if (!goo.success) {
    goo.stats.algorithm = "idp-k";
    return goo;  // disconnected graph / no valid merge: same failure mode
  }
  std::vector<BasicMerge<NS>> goo_merges;
  const BasicPlanTree<NS> goo_plan = goo.ExtractPlan(graph);
  std::vector<NS> singletons;
  singletons.reserve(n);
  for (int v = 0; v < n; ++v) singletons.push_back(NS::Single(v));
  CollectMerges(goo_plan.root(), singletons, &goo_merges);
  const double goo_cost = goo.cost;
  OptimizerStats folded;
  FoldStats(goo.stats, &folded);

  PairCardMemo<NS> memo(graph, est);
  std::vector<NS> comps = singletons;
  std::vector<BasicMerge<NS>> merges;

  while (comps.size() > 1) {
    if (options.cancellation != nullptr &&
        options.cancellation->StopRequested()) {
      GreedyComplete(comps, memo, &comps, &merges);
      break;
    }

    // Select the window: seed with the globally cheapest connected pair,
    // then grow by the component whose addition keeps the running union's
    // estimate smallest — the same smallest-intermediate-first instinct as
    // GOO, but the window's *internal* order is left to exact DP.
    std::optional<std::pair<int, int>> seed = FindBestPair(comps, memo);
    if (!seed.has_value()) break;  // no connected pair left
    std::vector<int> window_ids = {seed->first, seed->second};
    NS window_union = comps[seed->first] | comps[seed->second];
    while (static_cast<int>(window_ids.size()) < window &&
           window_ids.size() < comps.size()) {
      int best_id = -1;
      double best_card = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < comps.size(); ++c) {
        if (std::find(window_ids.begin(), window_ids.end(),
                      static_cast<int>(c)) != window_ids.end()) {
          continue;
        }
        if (!graph.ConnectsSets(window_union, comps[c])) continue;
        const double card = est.EstimateClass(window_union | comps[c]);
        if (card >= best_card) continue;
        best_card = card;
        best_id = static_cast<int>(c);
      }
      if (best_id < 0) break;  // nothing else connects to this window
      window_ids.push_back(best_id);
      window_union |= comps[best_id];
    }
    std::sort(window_ids.begin(), window_ids.end());

    // Reduced hypergraph: one node per window component; original edges
    // whose span lies inside the window map to component-level edges (a
    // side is the set of components it touches, flex members not already
    // on a side stay flexible). Edges touching a component on both sides
    // cannot connect at component granularity and are dropped, as are
    // duplicates — parallel predicates between the same component sides
    // change estimates (handled by WindowModel), not connectivity. Mapped
    // sets index window components (< 64 of them), so signatures fit one
    // word whatever the original width.
    std::vector<NS> window_comps;
    window_comps.reserve(window_ids.size());
    for (int id : window_ids) window_comps.push_back(comps[id]);
    Hypergraph reduced;
    for (size_t i = 0; i < window_comps.size(); ++i) {
      HypergraphNode node;
      node.name = "C" + std::to_string(i);
      node.cardinality = est.EstimateClass(window_comps[i]);
      reduced.AddNode(node);
    }
    std::set<std::array<uint64_t, 3>> edge_signatures;
    for (const BasicHyperedge<NS>& e : graph.edges()) {
      if (!e.AllNodes().IsSubsetOf(window_union)) continue;
      NodeSet left, right, flex;
      for (int i = 0; i < static_cast<int>(window_comps.size()); ++i) {
        if (window_comps[i].Intersects(e.left)) left |= NodeSet::Single(i);
        if (window_comps[i].Intersects(e.right)) right |= NodeSet::Single(i);
        if (window_comps[i].Intersects(e.flex)) flex |= NodeSet::Single(i);
      }
      flex -= left | right;
      if (left.Empty() || right.Empty() || left.Intersects(right)) continue;
      if (left.bits() > right.bits()) std::swap(left, right);
      if (!edge_signatures.insert({left.bits(), right.bits(), flex.bits()})
               .second) {
        continue;
      }
      Hyperedge mapped;
      mapped.left = left;
      mapped.right = right;
      mapped.flex = flex;
      reduced.AddEdge(mapped);
    }

    // Exact DP over the window, under the caller's pruning setting and
    // cancellation token (a fired deadline aborts only this window).
    WindowModel<NS> window_model(est, window_comps);
    OptimizerOptions window_options = options;
    window_options.tes_constraints = nullptr;
    window_options.initial_upper_bound =
        std::numeric_limits<double>::infinity();
    OptimizeResult wres = OptimizeDphyp(reduced, window_model, cost_model,
                                        window_options, window_ws);
    if (wres.stats.aborted) {
      GreedyComplete(comps, memo, &comps, &merges);
      break;
    }
    if (!wres.success) {
      // Component-level connectivity can be weaker than node-level (a flex
      // set split across three components); fall back to one greedy merge
      // of the seed pair and retry with the changed component set.
      ApplyMerge(&comps, seed->first, seed->second, &merges);
      continue;
    }
    FoldStats(wres.stats, &folded);
    const PlanTree wplan = wres.ExtractPlan(reduced);
    CollectMerges(wplan.root(), window_comps, &merges);
    // Collapse: the window's components become one compound component.
    for (size_t r = window_ids.size(); r-- > 0;) {
      comps.erase(comps.begin() + window_ids[r]);
    }
    comps.push_back(window_union);
  }

  // Assemble the windowed plan; serve the GOO sequence instead when the
  // assembly failed (greedy dead end) or costs more — idp-k never loses to
  // the fallback it is meant to beat.
  BasicOptimizeResult<NS> result =
      ReplayMerges(graph, est, cost_model, options, ws, merges);
  if (!result.success || result.cost > goo_cost) {
    result = ReplayMerges(graph, est, cost_model, options, ws, goo_merges);
  }
  FoldStats(folded, &result.stats);
  result.stats.algorithm = "idp-k";
  return result;
}

class IdpEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "idp-k"; }
  bool Exact() const override { return false; }
  bool CanHandle(const Hypergraph& graph) const override {
    // Compound components have no conflict-rule story: collapsing a window
    // erases the operator orderings non-inner joins and lateral
    // dependencies constrain. Complex hyperedges are fine (they map to
    // component-level hyperedges).
    if (graph.HasDependentLeaves()) return false;
    for (const Hyperedge& e : graph.edges()) {
      if (e.op != OpType::kJoin) return false;
    }
    return true;
  }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    // Past the exact frontier only: inside it the exhaustive routes are
    // both optimal and fast, and the parallel route's widened frontier
    // (preference 85) outbids this one where it applies.
    if (ExactDpFeasible(shape, policy)) return {};
    return {20.0, "past exact frontier: windowed exact DP (idp-k)"};
  }
  const char* FrontierSummary() const override {
    return "bids past the exact frontier (> 22 nodes / degree > 16 / dense "
           "> 12) on inner-join graphs; exact inside each k-window";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    workspace.CountRun();
    return RunIdp(*request.graph, *request.estimator, *request.cost_model,
                  request.options, workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeIdp(const BasicHypergraph<NS>& graph,
                                    const BasicCardinalityModel<NS>& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options,
                                    BasicOptimizerWorkspace<NS>* workspace) {
  std::optional<BasicOptimizerWorkspace<NS>> local;
  BasicOptimizerWorkspace<NS>& ws =
      workspace != nullptr ? *workspace : local.emplace();
  ws.CountRun();
  BasicOptimizeResult<NS> result = RunIdp(graph, est, cost_model, options, ws);
  if (workspace == nullptr && result.has_table() && !result.owns_table()) {
    result.AdoptTable(ws.DetachTable());
  }
  return result;
}

std::unique_ptr<Enumerator> MakeIdpEnumerator() {
  return std::make_unique<IdpEnumerator>();
}

template OptimizeResult OptimizeIdp<NodeSet>(const Hypergraph&,
                                             const CardinalityModel&,
                                             const CostModel&,
                                             const OptimizerOptions&,
                                             OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeIdp<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeIdp<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
