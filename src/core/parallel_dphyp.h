// dphyp-par — intra-query parallel DPhyp enumeration.
//
// DPhyp's outermost loop decomposes naturally across start vertices, but
// its DP table doubles as the connectivity oracle *and* the cost memo, and
// the cost of a class depends on the final costs of its subclasses — a
// dependency order a naive start-vertex split would violate. dphyp-par
// therefore splits the run into two phases, both parallel, both
// deterministic:
//
//   Phase 1 — structure. Workers partition the start vertices (work-stolen
//   descending, exactly DPhyp's Solve order) and run the csg-side recursion
//   of EnumerateCsgRec with a *cost-free* connectivity oracle
//   (IsConnectedDef3; pure simple-edge growth needs no test at all), each
//   collecting its connected subgraphs into thread-local buffers — the B_v
//   forbid discipline makes the per-vertex searches disjoint, so no worker
//   ever needs another's discoveries. The merged result is sorted by
//   (size, numeric value) — a canonical order independent of thread count —
//   and bulk-published into the shared DpTable with cost = +inf sentinels.
//
//   Phase 2 — costs, in waves by class size. All pairs producing a size-k
//   class combine classes of size < k, so once every smaller wave is final,
//   the size-k classes are mutually independent: workers claim classes from
//   the wave (per-class-owner sharding — exactly one worker ever writes a
//   given entry, no locks), enumerate that class's csg-cmp pairs locally
//   (connected subsets of S \ {min(S)}, the same recursion restricted to
//   the class, with the now-complete structure table as the oracle), and
//   run them through the shared EmitCsgCmp combine step of a per-worker
//   OptimizerContext attached to the shared table. A std::barrier separates
//   waves; smaller-class entries are read-only once their wave has passed.
//
// Determinism: each class's candidate pairs and their order are a function
// of the class alone, the per-worker pruning bound never moves before the
// root wave (full plans are the only bound tighteners and exist only
// there), and per-class min-updates are order-free — so final plan costs
// are bit-identical to sequential DPhyp and independent of the thread
// count (tests/test_parallel.cc, tests/test_fuzz.cc). The same per-class
// dominance cut that made PR 2's pruned merges order-insensitive is what
// makes the parallel merge safe.
//
// Deviations from the sequential table, by design: the parallel table
// holds *every* connected subgraph (the sequential one omits classes that
// are connected but plan-less under non-inner operators, and classes
// branch-and-bound pruned away); such entries keep the +inf sentinel and
// pairs on top of them are skipped, which reproduces the sequential
// emission set exactly.
#ifndef DPHYP_CORE_PARALLEL_DPHYP_H_
#define DPHYP_CORE_PARALLEL_DPHYP_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs parallel DPhyp over `graph` with
/// `options.parallel_threads` workers (<= 0: hardware default). Same
/// contract as OptimizeDphyp — same optimal cost, same workspace
/// borrow-or-own table semantics, same deadline/cancellation behavior
/// (every worker polls the token; an abort drains the pool within one poll
/// period). Thread-safety requirement on the inputs: `est` and
/// `cost_model` are read concurrently, which the CardinalityModel contract
/// (immutable after construction, cost/cardinality.h) already guarantees.
template <typename NS>
BasicOptimizeResult<NS> OptimizeDphypPar(const BasicHypergraph<NS>& graph,
                                         const BasicCardinalityModel<NS>& est,
                                         const CostModel& cost_model,
                                         const OptimizerOptions& options = {},
                                         BasicOptimizerWorkspace<NS>*
                                             workspace = nullptr);

/// The registry entry for "dphyp-par": exact, handles everything DPhyp
/// does, bids on large feasible graphs (DispatchPolicy::parallel_min_nodes
/// and the parallel dense/degree frontier).
std::unique_ptr<Enumerator> MakeDphypParEnumerator();

}  // namespace dphyp

#endif  // DPHYP_CORE_PARALLEL_DPHYP_H_
