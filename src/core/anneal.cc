#include "core/anneal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "baselines/goo.h"
#include "core/workspace.h"
#include "plan/plan_tree.h"
#include "util/rng.h"

namespace dphyp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A join tree as a flat node pool: slot indices are stable across moves
/// (moves rewrite child/rel fields only), so the leaf and inner slot lists
/// are computed once. Cheap to copy — candidate moves are applied to a
/// scratch copy and accepted by swapping.
template <typename NS>
struct TreeNode {
  int left = -1;
  int right = -1;
  /// Base relation for leaves; -1 for inner nodes.
  int rel = -1;
  NS set;
};

template <typename NS>
struct Tree {
  std::vector<TreeNode<NS>> nodes;
  int root = -1;
};

template <typename NS>
int BuildFromPlan(const BasicPlanTreeNode<NS>* p, Tree<NS>* t) {
  TreeNode<NS> node;
  if (p->IsLeaf()) {
    node.rel = p->relation;
    node.set = p->set;
  } else {
    node.left = BuildFromPlan(p->left, t);
    node.right = BuildFromPlan(p->right, t);
    node.set = t->nodes[node.left].set | t->nodes[node.right].set;
  }
  t->nodes.push_back(node);
  return static_cast<int>(t->nodes.size()) - 1;
}

template <typename NS>
NS RecomputeSets(Tree<NS>* t, int idx) {
  TreeNode<NS>& n = t->nodes[idx];
  if (n.rel >= 0) {
    n.set = NS::Single(n.rel);
    return n.set;
  }
  n.set = RecomputeSets(t, n.left) | RecomputeSets(t, n.right);
  return n.set;
}

/// Slot index of the node whose child slot holds `child`; -1 for the root.
template <typename NS>
int FindParent(const Tree<NS>& t, int child) {
  for (size_t i = 0; i < t.nodes.size(); ++i) {
    if (t.nodes[i].left == child || t.nodes[i].right == child) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Emits the tree's merges post-order through the shared combine step.
/// False when any merge is rejected (no connecting edge, conflict-rule /
/// TES / lateral violation, cardinality overflow) — the tree is invalid.
template <typename NS>
bool EmitSubtree(BasicOptimizerContext<NS>& ctx, const Tree<NS>& t, int idx) {
  const TreeNode<NS>& n = t.nodes[idx];
  if (n.rel >= 0) return true;
  if (!EmitSubtree(ctx, t, n.left) || !EmitSubtree(ctx, t, n.right)) {
    return false;
  }
  ctx.EmitCsgCmp(t.nodes[n.left].set, t.nodes[n.right].set);
  const auto* entry = ctx.table().Find(n.set);
  return entry != nullptr && !entry->IsLeaf();
}

/// Full-tree cost via replay on `table` (the workspace's seed slot during
/// the search, the primary slot for the final result). +inf for invalid
/// trees. Throws EnumerationAborted when the options' token fires.
template <typename NS>
double EvaluateTree(const Tree<NS>& t, const BasicHypergraph<NS>& graph,
                    const BasicCardinalityModel<NS>& est,
                    const CostModel& cost_model,
                    const OptimizerOptions& options, BasicDpTable<NS>* table) {
  BasicOptimizerContext<NS> ctx(graph, est, cost_model, options, table);
  ctx.InitLeaves();
  if (!EmitSubtree(ctx, t, t.root)) return kInf;
  const auto* root = ctx.table().Find(graph.AllNodes());
  if (root == nullptr) return kInf;
  return root->cost;
}

/// One random neighborhood move applied to `t` in place; false when no
/// applicable move was found (the caller skips the iteration). Sets are
/// recomputed for the whole tree afterwards — O(n), dwarfed by the replay
/// the candidate is about to pay anyway.
template <typename NS>
bool ApplyMove(Tree<NS>* t, Rng& rng, const std::vector<int>& leaf_ids,
               const std::vector<int>& inner_ids) {
  const int kind = static_cast<int>(rng.Uniform(3));
  bool changed = false;
  if (kind == 0 && leaf_ids.size() >= 2) {
    // Leaf swap: exchange two relations between their tree positions.
    const int a = leaf_ids[rng.Uniform(leaf_ids.size())];
    const int b = leaf_ids[rng.Uniform(leaf_ids.size())];
    if (a != b) {
      std::swap(t->nodes[a].rel, t->nodes[b].rel);
      changed = true;
    }
  } else if (kind == 1 && t->nodes.size() >= 4) {
    // Subtree swap: exchange two disjoint subtrees (disjoint node sets
    // imply neither contains the other). A few random probes; sparse
    // trees simply skip the move when none lands.
    for (int attempt = 0; attempt < 4 && !changed; ++attempt) {
      const int a = static_cast<int>(rng.Uniform(t->nodes.size()));
      const int b = static_cast<int>(rng.Uniform(t->nodes.size()));
      if (a == b || a == t->root || b == t->root) continue;
      if (t->nodes[a].set.Intersects(t->nodes[b].set)) continue;
      const int pa = FindParent(*t, a);
      const int pb = FindParent(*t, b);
      (t->nodes[pa].left == a ? t->nodes[pa].left : t->nodes[pa].right) = b;
      (t->nodes[pb].left == b ? t->nodes[pb].left : t->nodes[pb].right) = a;
      changed = true;
    }
  } else if (!inner_ids.empty()) {
    // Re-association: ((A B) S) -> (A (B S)) or ((A S) B), the rotation
    // that moves a relation across a join boundary.
    for (int attempt = 0; attempt < 4 && !changed; ++attempt) {
      const int p = inner_ids[rng.Uniform(inner_ids.size())];
      TreeNode<NS>& parent = t->nodes[p];
      const bool left_inner = t->nodes[parent.left].rel < 0;
      const bool right_inner = t->nodes[parent.right].rel < 0;
      if (!left_inner && !right_inner) continue;
      const bool pick_left =
          left_inner && (!right_inner || rng.Bernoulli(0.5));
      const int c = pick_left ? parent.left : parent.right;
      const int s = pick_left ? parent.right : parent.left;
      TreeNode<NS>& child = t->nodes[c];
      const int a = child.left;
      const int b = child.right;
      const bool keep_a_up = rng.Bernoulli(0.5);
      parent.left = keep_a_up ? a : b;
      parent.right = c;
      child.left = keep_a_up ? b : a;
      child.right = s;
      changed = true;
    }
  }
  if (changed) RecomputeSets(t, t->root);
  return changed;
}

template <typename NS>
BasicOptimizeResult<NS> RunAnneal(const BasicHypergraph<NS>& graph,
                                  const BasicCardinalityModel<NS>& est,
                                  const CostModel& cost_model,
                                  const OptimizerOptions& options,
                                  BasicOptimizerWorkspace<NS>& ws) {
  const int n = graph.NumNodes();

  // Seed from GOO: the walk starts at (and never accepts worse as its
  // best than) the greedy fallback's tree.
  BasicOptimizeResult<NS> goo =
      OptimizeGoo(graph, est, cost_model, options, &ws);
  if (!goo.success || n < 3) {
    goo.stats.algorithm = "anneal";
    return goo;  // failure, or too small for any neighborhood move
  }
  Tree<NS> current;
  {
    const BasicPlanTree<NS> seed_plan = goo.ExtractPlan(graph);
    current.root = BuildFromPlan(seed_plan.root(), &current);
  }
  std::vector<int> leaf_ids;
  std::vector<int> inner_ids;
  for (size_t i = 0; i < current.nodes.size(); ++i) {
    (current.nodes[i].rel >= 0 ? leaf_ids : inner_ids)
        .push_back(static_cast<int>(i));
  }

  // Replays during the search run on the seed-table slot (the primary
  // table holds the GOO result until the final replay below) and inherit
  // the caller's cancellation token; pruning is meaningless under replay.
  OptimizerOptions eval_options = options;
  eval_options.enable_pruning = false;
  eval_options.initial_upper_bound = kInf;

  const int budget = options.anneal_moves > 0 ? options.anneal_moves : 64 * n;
  Rng rng(options.random_seed);
  double current_cost = goo.cost;
  Tree<NS> best = current;
  double best_cost = current_cost;
  // Geometric cooling from a temperature proportional to the seed cost
  // (costs are scale-free across queries); one cooling step per n moves.
  double temperature = 0.5 * (current_cost > 0.0 ? current_cost : 1.0);
  uint64_t evaluations = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;

  Tree<NS> scratch;
  for (int move = 0; move < budget; ++move) {
    if (options.cancellation != nullptr &&
        options.cancellation->StopRequested()) {
      break;  // degrade: fewer moves, best-so-far still served
    }
    scratch = current;
    if (!ApplyMove(&scratch, rng, leaf_ids, inner_ids)) continue;
    double candidate_cost;
    try {
      candidate_cost =
          EvaluateTree(scratch, graph, est, cost_model, eval_options,
                       &ws.seed_table());
    } catch (const EnumerationAborted&) {
      break;  // token fired mid-replay: keep best-so-far
    }
    ++evaluations;
    const double delta = candidate_cost - current_cost;
    const bool accept =
        delta <= 0.0 ||
        (std::isfinite(candidate_cost) &&
         rng.UniformDouble() < std::exp(-delta / temperature));
    if (accept) {
      current = std::move(scratch);
      current_cost = candidate_cost;
      ++accepted;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    } else {
      ++rejected;
    }
    if ((move + 1) % n == 0) temperature *= 0.95;
  }

  // Final replay of the best tree into the primary table — cancellation
  // stripped (the replay is polynomial and must complete), never aborted:
  // a deadline shrinks the move budget, not the result.
  OptimizerOptions final_options = eval_options;
  final_options.cancellation = nullptr;
  BasicOptimizerContext<NS> ctx(graph, est, cost_model, final_options,
                                &ws.table());
  ctx.InitLeaves();
  const bool ok = EmitSubtree(ctx, best, best.root);
  BasicOptimizeResult<NS> result = ctx.Finish(graph.AllNodes());
  if (!ok || !result.success) {
    result.success = false;
    if (result.error.empty()) result.error = "anneal: best tree replay failed";
  }
  result.stats.algorithm = "anneal";
  result.stats.pairs_tested += evaluations;
  result.stats.discarded += rejected;
  result.stats.ccp_pairs += accepted;
  return result;
}

class AnnealEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "anneal"; }
  bool Exact() const override { return false; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    if (ExactDpFeasible(shape, policy)) return {};
    // Below idp-k (20.0): where windowed exact DP applies it dominates;
    // this bid wins the non-inner / lateral shapes idp-k cannot handle.
    return {10.0, "past exact frontier: simulated annealing"};
  }
  const char* FrontierSummary() const override {
    return "bids past the exact frontier (> 22 nodes / degree > 16 / dense "
           "> 12) on any graph; stochastic, seeded by random_seed";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    workspace.CountRun();
    return RunAnneal(*request.graph, *request.estimator, *request.cost_model,
                     request.options, workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeAnneal(const BasicHypergraph<NS>& graph,
                                       const BasicCardinalityModel<NS>& est,
                                       const CostModel& cost_model,
                                       const OptimizerOptions& options,
                                       BasicOptimizerWorkspace<NS>* workspace) {
  std::optional<BasicOptimizerWorkspace<NS>> local;
  BasicOptimizerWorkspace<NS>& ws =
      workspace != nullptr ? *workspace : local.emplace();
  ws.CountRun();
  BasicOptimizeResult<NS> result =
      RunAnneal(graph, est, cost_model, options, ws);
  if (workspace == nullptr && result.has_table() && !result.owns_table()) {
    result.AdoptTable(ws.DetachTable());
  }
  return result;
}

std::unique_ptr<Enumerator> MakeAnnealEnumerator() {
  return std::make_unique<AnnealEnumerator>();
}

template OptimizeResult OptimizeAnneal<NodeSet>(const Hypergraph&,
                                                const CardinalityModel&,
                                                const CostModel&,
                                                const OptimizerOptions&,
                                                OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeAnneal<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeAnneal<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
