// The wide (> 64 relation) optimization path.
//
// Queries past NodeSet's 64-relation word fit used to be unrepresentable —
// the narrow registry never even saw them. With BasicNodeSet<W>
// (util/node_set.h) the enumeration cores run at any width, so the only
// missing piece is routing: this header mirrors the EnumeratorRegistry
// auction (core/enumerator.cc) for wide graphs, choosing among wide DPhyp /
// dphyp-par / DPccp / DPsub, the beyond-exact pair (idp-k, anneal), and the
// GOO floor with exactly the sequential registry's bids and CanHandle
// predicates. A 72-relation chain therefore optimizes *exactly* (DPccp's
// quadratic chain bid), and an 80-relation sparse graph goes to wide
// DPhyp/dphyp-par when its shape is inside the exact frontier — wide
// queries no longer fall through to the greedy heuristic just because of
// their relation count.
//
// The registry itself stays narrow (Enumerator values serve the <= 64
// serving tier); wide callers — the wide fuzz tier, the wide bench sweep —
// enter through OptimizeWideAdaptive directly.
#ifndef DPHYP_CORE_WIDE_H_
#define DPHYP_CORE_WIDE_H_

#include <string>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// The route the wide auction picked, in registry-bid order.
enum class WideRoute {
  kDpccp,      // 100: chains/cycles at any size; 50: simple inner feasible
  kDphypPar,   // 85: large feasible graphs with >= 2 effective workers
  kDphyp,      // 80: generalized feasible; 40: simple inner feasible
  kDpsub,      // 60: small dense simple graphs
  kIdp,        // 20: past the exact frontier, inner joins only
  kAnneal,     // 10: past the exact frontier, any graph
  kGoo,        //  0: the heuristic floor
};

const char* WideRouteName(WideRoute route);

/// One auction outcome: the winning route, its preference, and the winning
/// bid's reason string (static storage).
struct WideRouteDecision {
  WideRoute route = WideRoute::kGoo;
  double preference = 0.0;
  const char* reason = "heuristic floor";
  /// True when the chosen route enumerates exhaustively (plan is optimal
  /// under the cost model) — the "no GOO fallback" acceptance check.
  bool exact = false;
};

/// Replays the registry auction for a graph at width NS: same bids, same
/// feasibility frontier (ExactDpFeasible), same CanHandle predicates as the
/// registered enumerators. Deterministic; depends only on the graph shape
/// and `policy`.
template <typename NS>
WideRouteDecision ChooseWideRoute(const BasicHypergraph<NS>& graph,
                                  const DispatchPolicy& policy = {});

/// Optimizes `graph` via the route ChooseWideRoute picks. The result's
/// stats.algorithm records the enumerator that ran. Workspace semantics
/// match the narrow free functions (borrow-or-own table).
template <typename NS>
BasicOptimizeResult<NS> OptimizeWideAdaptive(
    const BasicHypergraph<NS>& graph, const BasicCardinalityModel<NS>& est,
    const CostModel& cost_model, const OptimizerOptions& options = {},
    BasicOptimizerWorkspace<NS>* workspace = nullptr,
    const DispatchPolicy& policy = {});

/// Re-represents a graph at a different node-set width (node indices,
/// edges, operators, and free-table sets carry over verbatim). `To` must
/// be wide enough for the graph's node count. Used by the differential
/// tests to run the identical graph through the one-word and multi-word
/// paths.
template <typename To, typename From>
BasicHypergraph<To> WidenGraph(const BasicHypergraph<From>& graph);

}  // namespace dphyp

#endif  // DPHYP_CORE_WIDE_H_
