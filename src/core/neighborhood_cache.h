// Memoized neighborhood computation for DPhyp (Sec. 2.3, Eq. 1).
//
// N(S, X) depends on both the subgraph S and the forbidden set X, but its
// expensive ingredients depend on S alone: the union of simple-edge
// neighbors of S's nodes (a loop over S per call in the uncached form) and
// the candidate far sides of the complex hyperedges reachable from S
// (a scan over every complex edge per call). DPhyp revisits the same node
// sets many times with different X — every connected set reappears as a
// complement candidate under many different csgs — so the cache keys those
// ingredients by S in a flat open-addressing table and leaves only the
// cheap X-dependent filtering (bitset subtraction, subsumption among the
// few surviving complex candidates) on the per-call path.
//
// The result is exactly Hypergraph::Neighborhood(S, X), bit for bit — the
// candidate order, the 128-candidate cap, and the subsumption tie-breaks
// are preserved. tests/test_neighborhood.cc asserts the equivalence on
// randomized hypergraphs. Width-generic; `NeighborhoodCache` is the
// one-word alias.
#ifndef DPHYP_CORE_NEIGHBORHOOD_CACHE_H_
#define DPHYP_CORE_NEIGHBORHOOD_CACHE_H_

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/node_set.h"

namespace dphyp {

/// One enumeration run's neighborhood memo. Not thread-safe; create one per
/// solver (the graph it caches must outlive it).
template <typename NS>
class BasicNeighborhoodCache {
 public:
  explicit BasicNeighborhoodCache(const BasicHypergraph<NS>& graph);

  /// The paper's N(S, X); equals graph.Neighborhood(S, X).
  NS Neighborhood(NS S, NS X);

  /// Rebinds the cache to `graph` and empties it while retaining its memory
  /// (entry/slot/pool capacity), so a workspace-pooled cache runs
  /// allocation-free in the steady state.
  void Reset(const BasicHypergraph<NS>& graph);

  /// Distinct node sets memoized so far.
  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  /// X-independent ingredients for one node set.
  struct Entry {
    NS key;
    /// Union of simple-edge neighbors over the nodes of `key` (unfiltered;
    /// may intersect key itself).
    NS simple_union;
    /// Range [begin, end) in `candidate_pool_`: far-side candidates
    /// far | (flex - S) of complex edges whose near side lies in `key`, in
    /// complex-edge scan order.
    uint32_t pool_begin = 0;
    uint32_t pool_end = 0;
  };

  const Entry& Lookup(NS S);
  void Grow();

  const BasicHypergraph<NS>* graph_;
  std::vector<Entry> entries_;
  /// Open-addressing slots storing entry_index + 1; 0 marks empty.
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
  /// Backing store for every entry's complex-edge candidates.
  std::vector<NS> candidate_pool_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

using NeighborhoodCache = BasicNeighborhoodCache<NodeSet>;

}  // namespace dphyp

#endif  // DPHYP_CORE_NEIGHBORHOOD_CACHE_H_
