// Shared optimizer infrastructure: statistics, results, and the candidate
// combine step (the paper's EmitCsgCmp, Sec. 3.5) used by every enumeration
// algorithm in this repository so that costing, operator recovery
// (Sec. 5.4), dependent conversion (Sec. 5.6), and the generate-and-test TES
// checks (Sec. 5.8) behave identically across DPhyp, DPsize, DPsub, DPccp
// and TDbasic.
#ifndef DPHYP_CORE_OPTIMIZER_H_
#define DPHYP_CORE_OPTIMIZER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "hypergraph/hypergraph.h"
#include "plan/dp_table.h"
#include "plan/plan_tree.h"
#include "util/node_set.h"

namespace dphyp {

/// Per-edge validity constraint for the generate-and-test TES mode: the
/// operator's TES split into its left/right parts (Sec. 5.5/5.7). In this
/// mode the enumeration runs on the plain SES graph and candidates are
/// validated — and often discarded — at combine time, which is exactly the
/// inefficiency Fig. 8a quantifies.
struct TesConstraint {
  NodeSet left;
  NodeSet right;
};

/// Counters every algorithm maintains.
struct OptimizerStats {
  /// Pairs submitted to the combine step. For DPhyp this equals the number
  /// of csg-cmp-pairs (each unordered pair once); DPsize submits ordered
  /// pairs, so its count is roughly twice the lower bound.
  uint64_t ccp_pairs = 0;
  /// Candidate pairs tested by the outer enumeration including failures of
  /// the (*) tests (DPsize/DPsub/TDbasic only; DPhyp generates no failures).
  uint64_t pairs_tested = 0;
  /// Orientations rejected at combine time (TES-mode discards, invalid
  /// operator constellations, lateral-ordering violations).
  uint64_t discarded = 0;
  /// Calls into the cost model.
  uint64_t cost_evaluations = 0;
  /// Csg-cmp pairs (or single candidate plans) discarded by accumulated-cost
  /// branch-and-bound pruning because their partial cost already exceeded
  /// the incumbent upper bound. Zero when pruning is disabled.
  uint64_t pruned = 0;
  /// Candidate pairs skipped by the per-class dominance cut: their cost
  /// lower bound could not beat the class's incumbent plan, so the edge
  /// scan and cost evaluation were never paid. Zero when pruning is
  /// disabled.
  uint64_t dominated = 0;
  /// The initial upper bound pruning started from (the GOO seed unless a
  /// caller supplied a tighter one); +inf when pruning is disabled.
  double initial_upper_bound = std::numeric_limits<double>::infinity();
  /// Final number of DP table entries (== number of connected subgraphs
  /// reached; Sec. 3.6).
  uint64_t dp_entries = 0;
  /// Approximate DP table footprint in bytes (Sec. 3.6).
  uint64_t table_bytes = 0;
};

/// Outcome of one optimization run. The DP table is kept so callers can
/// extract plan trees or inspect plan classes.
struct OptimizeResult {
  bool success = false;
  std::string error;
  double cost = 0.0;
  double cardinality = 0.0;
  NodeSet root_set;
  DpTable table{64};
  OptimizerStats stats;

  /// Materializes the chosen plan. Requires success.
  PlanTree ExtractPlan(const Hypergraph& graph) const {
    return ExtractPlanTree(graph, table, root_set);
  }
};

/// Options shared by all algorithms.
struct OptimizerOptions {
  /// When set, enables generate-and-test TES validation at combine time
  /// (size must equal the number of hypergraph edges).
  const std::vector<TesConstraint>* tes_constraints = nullptr;

  /// Accumulated-cost branch-and-bound pruning in the combine step. Only
  /// takes effect when the cost model is monotone
  /// (CostModel::SupportsPruning); admissible, i.e. the final plan cost is
  /// bit-identical to the unpruned run (tests/test_pruning.cc). Honoured by
  /// the bottom-up enumerators (DPhyp/DPccp/DPsub/DPsize); the top-down
  /// algorithms and GOO strip it — TDbasic uses table membership as a
  /// "subproblem solved" memo, which pruning would corrupt, and GOO is
  /// itself the bound provider.
  bool enable_pruning = false;
  /// Incumbent the pruning starts from. Non-finite means "seed it from a
  /// GOO run over the same graph/estimator/cost model" (the usual mode);
  /// callers that already hold a valid plan cost (e.g. the plan service on
  /// a near-identical query) may pass it here to start tighter.
  double initial_upper_bound = std::numeric_limits<double>::infinity();
};

/// Mutable state threaded through one optimization run.
class OptimizerContext {
 public:
  OptimizerContext(const Hypergraph& graph, const CardinalityEstimator& est,
                   const CostModel& cost_model, const OptimizerOptions& options);

  const Hypergraph& graph() const { return *graph_; }
  DpTable& table() { return table_; }
  OptimizerStats& stats() { return stats_; }

  /// Inserts the single-relation access plans (first loop of Solve).
  void InitLeaves();

  /// The paper's EmitCsgCmp: considers both orientations of the csg-cmp-pair
  /// (S1, S2); commutativity is honoured per operator. Updates the DP table.
  void EmitCsgCmp(NodeSet S1, NodeSet S2);

  /// DPsize-style combine for one ordered pair only (the symmetric pair
  /// arrives separately from the size loop).
  void EmitOrdered(NodeSet S1, NodeSet S2);

  /// Packages the final result for the class `root`.
  OptimizeResult Finish(NodeSet root);

  /// True when branch-and-bound pruning is active for this run.
  bool pruning() const { return pruning_; }
  /// Current incumbent (upper bound on the optimal full-plan cost); +inf
  /// when pruning is disabled.
  double cost_bound() const { return bound_; }
  /// Tightens the incumbent. Callers must guarantee `bound` is the cost of
  /// some valid full plan (or pruning becomes inadmissible).
  void TightenCostBound(double bound) {
    if (bound < bound_) bound_ = bound;
  }

 private:
  /// Tries to build `left op right`; returns false if no valid operator
  /// applies in this orientation. `left_entry`/`right_entry`/`target_hint`
  /// may carry the already-probed table entries (the pruning pre-check
  /// fetches them; entry pointers are stable) — pass nullptr to look them
  /// up here. `target_hint` must only be non-null when the combined class
  /// is known to exist.
  bool TryOrientation(NodeSet left, NodeSet right,
                      const PlanEntry* left_entry = nullptr,
                      const PlanEntry* right_entry = nullptr,
                      PlanEntry* target_hint = nullptr);

  /// Pre-cost branch-and-bound tests (global incumbent + per-class
  /// dominance): true when the pair can be skipped without affecting the
  /// final optimum. On false, `*left_out`/`*right_out`/`*target_out` hold
  /// the probed entries (`*target_out` stays null when the combined class
  /// has no entry yet) so callers need not repeat the table lookups.
  bool PruneCandidatePair(NodeSet S1, NodeSet S2, const PlanEntry** left_out,
                          const PlanEntry** right_out,
                          PlanEntry** target_out);

  const Hypergraph* graph_;
  const CardinalityEstimator* est_;
  const CostModel* cost_model_;
  const std::vector<TesConstraint>* tes_;
  DpTable table_;
  OptimizerStats stats_;
  /// Branch-and-bound state: active flag, incumbent, and the full node set
  /// whose completed plans tighten the incumbent.
  bool pruning_ = false;
  double bound_ = std::numeric_limits<double>::infinity();
  /// CostModel::CompletionLowerBound for this query's root class; added to
  /// partial-plan costs before they are compared against the incumbent.
  double completion_ = 0.0;
  NodeSet all_nodes_;
};

}  // namespace dphyp

#endif  // DPHYP_CORE_OPTIMIZER_H_
