// Shared optimizer infrastructure: statistics, results, and the candidate
// combine step (the paper's EmitCsgCmp, Sec. 3.5) used by every enumeration
// algorithm in this repository so that costing, operator recovery
// (Sec. 5.4), dependent conversion (Sec. 5.6), and the generate-and-test TES
// checks (Sec. 5.8) behave identically across DPhyp, DPsize, DPsub, DPccp
// and TDbasic.
//
// The context and result are templated on the node-set type so the same
// combine step powers the wide (>64 relation) path; `OptimizerContext` /
// `OptimizeResult` are the one-word aliases every narrow caller uses.
// Options and stats are width-independent. The generate-and-test TES mode
// (a Fig. 8a measurement mode) stays narrow-only: wide runs must not set
// `tes_constraints`.
#ifndef DPHYP_CORE_OPTIMIZER_H_
#define DPHYP_CORE_OPTIMIZER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "hypergraph/hypergraph.h"
#include "plan/dp_table.h"
#include "plan/plan_tree.h"
#include "util/cancellation.h"
#include "util/check.h"
#include "util/node_set.h"

namespace dphyp {

template <typename NS>
class BasicOptimizerWorkspace;
using OptimizerWorkspace = BasicOptimizerWorkspace<NodeSet>;

/// Per-edge validity constraint for the generate-and-test TES mode: the
/// operator's TES split into its left/right parts (Sec. 5.5/5.7). In this
/// mode the enumeration runs on the plain SES graph and candidates are
/// validated — and often discarded — at combine time, which is exactly the
/// inefficiency Fig. 8a quantifies. Narrow-only (the mode exists to measure
/// Fig. 8a on ≤64-relation graphs).
struct TesConstraint {
  NodeSet left;
  NodeSet right;
};

/// Counters every algorithm maintains.
struct OptimizerStats {
  /// Pairs submitted to the combine step. For DPhyp this equals the number
  /// of csg-cmp-pairs (each unordered pair once); DPsize submits ordered
  /// pairs, so its count is roughly twice the lower bound.
  uint64_t ccp_pairs = 0;
  /// Candidate pairs tested by the outer enumeration including failures of
  /// the (*) tests (DPsize/DPsub/TDbasic only; DPhyp generates no failures).
  uint64_t pairs_tested = 0;
  /// Orientations rejected at combine time (TES-mode discards, invalid
  /// operator constellations, lateral-ordering violations).
  uint64_t discarded = 0;
  /// Calls into the cost model.
  uint64_t cost_evaluations = 0;
  /// Csg-cmp pairs (or single candidate plans) discarded by accumulated-cost
  /// branch-and-bound pruning because their partial cost already exceeded
  /// the incumbent upper bound. Zero when pruning is disabled.
  uint64_t pruned = 0;
  /// Candidate pairs skipped by the per-class dominance cut: their cost
  /// lower bound could not beat the class's incumbent plan, so the edge
  /// scan and cost evaluation were never paid. Zero when pruning is
  /// disabled.
  uint64_t dominated = 0;
  /// The initial upper bound pruning started from (the GOO seed unless a
  /// caller supplied a tighter one); +inf when pruning is disabled.
  double initial_upper_bound = std::numeric_limits<double>::infinity();
  /// Final number of DP table entries (== number of connected subgraphs
  /// reached; Sec. 3.6).
  uint64_t dp_entries = 0;
  /// Approximate DP table footprint in bytes (Sec. 3.6).
  uint64_t table_bytes = 0;
  /// Name of the enumerator that produced this result (a static string;
  /// "" for results assembled outside the registry, e.g. hand-built ones).
  const char* algorithm = "";
  /// True when an exact enumeration hit its deadline / cancellation token.
  /// On a session result the remaining counters then describe the GOO
  /// fallback run that actually produced the served plan.
  bool aborted = false;
  /// The enumerator that was aborted (set together with `aborted`).
  const char* aborted_algorithm = "";
  /// Wall-clock milliseconds from the session's start until the abort was
  /// detected — the deadline-compliance metric (poll granularity keeps it
  /// within a few hundred emits of the budget). Zero when nothing aborted.
  double abort_latency_ms = 0.0;
};

/// Thrown by OptimizerContext::Tick when the run's cancellation token has
/// fired; caught by the Optimize* entry points, which convert it into an
/// aborted OptimizeResult. Never escapes the optimizer API.
struct EnumerationAborted {};

/// Outcome of one optimization run.
///
/// The DP table backing ExtractPlan is either *borrowed* from the
/// OptimizerWorkspace the run used (valid until that workspace starts its
/// next run) or *owned* by the result (detached / rehydrated; valid for the
/// result's lifetime). Runs without a workspace — the legacy free-function
/// path — always own their table, so existing call sites keep their
/// lifetime behavior; workspace runs borrow, which is what lets a pooled
/// workspace serve steady-state traffic without per-query table churn.
template <typename NS>
struct BasicOptimizeResult {
  bool success = false;
  std::string error;
  double cost = 0.0;
  double cardinality = 0.0;
  NS root_set;
  OptimizerStats stats;

  bool has_table() const { return borrowed_ != nullptr || owned_ != nullptr; }
  bool owns_table() const { return owned_ != nullptr; }

  /// The DP table of the run (borrowed or owned). Callers that keep the
  /// result past the workspace's next run must DetachTable-style own it.
  const BasicDpTable<NS>& table() const {
    DPHYP_CHECK_MSG(has_table(),
                    "OptimizeResult has no DP table (failed run or table "
                    "dropped)");
    return borrowed_ != nullptr ? *borrowed_ : *owned_;
  }

  /// Points the result at a table owned elsewhere (workspace runs).
  void BorrowTable(const BasicDpTable<NS>* table) {
    borrowed_ = table;
    owned_.reset();
  }

  /// Takes ownership of `table` (detached from a workspace or rebuilt from
  /// a serialized plan).
  void AdoptTable(BasicDpTable<NS> table) {
    owned_ = std::make_unique<BasicDpTable<NS>>(std::move(table));
    borrowed_ = nullptr;
  }

  /// Severs the result from any table (e.g. before storing a failed result
  /// beyond the workspace's lease). ExtractPlan becomes invalid.
  void DropTable() {
    borrowed_ = nullptr;
    owned_.reset();
  }

  /// Materializes the chosen plan. Requires success (and a live table).
  BasicPlanTree<NS> ExtractPlan(const BasicHypergraph<NS>& graph) const {
    return ExtractPlanTree(graph, table(), root_set);
  }

 private:
  const BasicDpTable<NS>* borrowed_ = nullptr;
  std::unique_ptr<BasicDpTable<NS>> owned_;
};

using OptimizeResult = BasicOptimizeResult<NodeSet>;
using WideOptimizeResult = BasicOptimizeResult<WideNodeSet>;

/// Options shared by all algorithms. Width-independent (one options struct
/// flows from the serving layer to either the narrow or the wide path);
/// `tes_constraints` is the single narrow-only field.
struct OptimizerOptions {
  /// When set, enables generate-and-test TES validation at combine time
  /// (size must equal the number of hypergraph edges). Narrow-only: wide
  /// runs check-fail on a non-null value.
  const std::vector<TesConstraint>* tes_constraints = nullptr;

  /// Accumulated-cost branch-and-bound pruning in the combine step. Only
  /// takes effect when the cost model is monotone
  /// (CostModel::SupportsPruning); admissible, i.e. the final plan cost is
  /// bit-identical to the unpruned run (tests/test_pruning.cc). Honoured by
  /// the bottom-up enumerators (DPhyp/DPccp/DPsub/DPsize); the top-down
  /// algorithms and GOO strip it — TDbasic uses table membership as a
  /// "subproblem solved" memo, which pruning would corrupt, and GOO is
  /// itself the bound provider.
  bool enable_pruning = false;
  /// Incumbent the pruning starts from. Non-finite means "seed it from a
  /// GOO run over the same graph/estimator/cost model" (the usual mode);
  /// callers that already hold a valid plan cost (e.g. the plan service on
  /// a near-identical query) may pass it here to start tighter.
  double initial_upper_bound = std::numeric_limits<double>::infinity();

  /// Deadline / cancellation for this run, polled every
  /// kCancellationPollPeriod candidate pairs (OptimizerContext::Tick). When
  /// it fires, the exact enumerators return an aborted result
  /// (stats.aborted); OptimizationSession then falls back to GOO, which
  /// strips this field — the polynomial fallback must always complete.
  /// Null disables polling entirely. Parallel enumerators hand the same
  /// token to every worker, so a fired deadline stops all of them within
  /// one poll period.
  const CancellationToken* cancellation = nullptr;

  /// Worker threads for intra-query parallel enumerators ("dphyp-par");
  /// <= 0 means the hardware default. Single-threaded enumerators ignore
  /// it. The final plan cost is independent of this value — the parallel
  /// merge is deterministic by construction (core/parallel_dphyp.h).
  int parallel_threads = 0;

  /// RNG seed for the stochastic enumerators ("anneal"). The search is a
  /// pure function of (graph, estimator, cost model, seed, move budget):
  /// the same seed replays the same move sequence whatever the thread
  /// count, so randomized plans stay cacheable and diffable. Exact
  /// enumerators and GOO ignore it.
  uint64_t random_seed = 0x5eedULL;

  /// Window size for iterative dynamic programming ("idp-k"): how many
  /// components each round optimizes exactly with the DPhyp core before
  /// collapsing the winner into a compound relation. Clamped to >= 2; when
  /// the window covers the whole graph a single plain DPhyp run is
  /// performed (bit-identical to the exact enumerator). Other enumerators
  /// ignore it.
  int idp_window = 8;

  /// Move budget for simulated annealing ("anneal"); <= 0 picks a budget
  /// scaled with query size (64 moves per relation). A fired cancellation
  /// token ends the search early and the best plan found so far is served
  /// — deadlines degrade quality, never success.
  int anneal_moves = 0;
};

/// How many candidate pairs are processed between cancellation polls. At
/// typical combine-step costs (sub-microsecond) this bounds deadline
/// overshoot to well under a tenth of a millisecond.
inline constexpr uint64_t kCancellationPollPeriod = 256;

/// Mutable state threaded through one optimization run.
template <typename NS>
class BasicOptimizerContext {
 public:
  using Entry = BasicPlanEntry<NS>;

  /// `borrowed_table` routes the run onto an externally owned DP table (an
  /// OptimizerWorkspace slot), which is Reset for this graph; Finish then
  /// returns a result *borrowing* that table. With the default null, the
  /// context allocates a private table and Finish moves it into the result
  /// (the legacy self-contained behavior).
  ///
  /// `reset_borrowed_table = false` attaches the context to a table some
  /// other context already set up *without* clearing it — the parallel
  /// enumerator's worker mode: one primary context owns the run (Reset,
  /// InitLeaves, Finish) and per-thread worker contexts combine into the
  /// same table, each touching only entries it owns for the current wave.
  BasicOptimizerContext(const BasicHypergraph<NS>& graph,
                        const BasicCardinalityModel<NS>& est,
                        const CostModel& cost_model,
                        const OptimizerOptions& options,
                        BasicDpTable<NS>* borrowed_table = nullptr,
                        bool reset_borrowed_table = true);

  const BasicHypergraph<NS>& graph() const { return *graph_; }
  BasicDpTable<NS>& table() { return *table_; }
  OptimizerStats& stats() { return stats_; }

  /// Inserts the single-relation access plans (first loop of Solve).
  void InitLeaves();

  /// The paper's EmitCsgCmp: considers both orientations of the csg-cmp-pair
  /// (S1, S2); commutativity is honoured per operator. Updates the DP table.
  void EmitCsgCmp(NS S1, NS S2);

  /// DPsize-style combine for one ordered pair only (the symmetric pair
  /// arrives separately from the size loop).
  void EmitOrdered(NS S1, NS S2);

  /// Cancellation poll, amortized behind a counter: checks the token every
  /// kCancellationPollPeriod calls and throws EnumerationAborted when it
  /// has fired. The combine steps call it on every candidate pair;
  /// enumerators whose outer loops can spin many iterations *without*
  /// emitting (DPsize/DPsub/TD* failing the (*) tests) call it per tested
  /// pair as well, so a deadline binds even on emit-starved shapes.
  void Tick() {
    if (cancel_ == nullptr) return;
    if (++ticks_ % kCancellationPollPeriod != 0) return;
    if (cancel_->StopRequested()) throw EnumerationAborted{};
  }

  /// Packages the final result for the class `root`.
  BasicOptimizeResult<NS> Finish(NS root);

  /// Packages an aborted run: success=false, stats.aborted set, and the
  /// partial table attached the same way Finish would (callers usually
  /// discard it and re-run GOO on the same workspace).
  BasicOptimizeResult<NS> FinishAborted(const char* algorithm);

  /// True when branch-and-bound pruning is active for this run.
  bool pruning() const { return pruning_; }
  /// Current incumbent (upper bound on the optimal full-plan cost); +inf
  /// when pruning is disabled.
  double cost_bound() const { return bound_; }
  /// Tightens the incumbent. Callers must guarantee `bound` is the cost of
  /// some valid full plan (or pruning becomes inadmissible).
  void TightenCostBound(double bound) {
    if (bound < bound_) bound_ = bound;
  }

 private:
  /// Tries to build `left op right`; returns false if no valid operator
  /// applies in this orientation. `left_entry`/`right_entry`/`target_hint`
  /// may carry the already-probed table entries (the pruning pre-check
  /// fetches them; entry pointers are stable) — pass nullptr to look them
  /// up here. `target_hint` must only be non-null when the combined class
  /// is known to exist.
  bool TryOrientation(NS left, NS right, const Entry* left_entry = nullptr,
                      const Entry* right_entry = nullptr,
                      Entry* target_hint = nullptr);

  /// Pre-cost branch-and-bound tests (global incumbent + per-class
  /// dominance): true when the pair can be skipped without affecting the
  /// final optimum. On false, `*left_out`/`*right_out`/`*target_out` hold
  /// the probed entries (`*target_out` stays null when the combined class
  /// has no entry yet) so callers need not repeat the table lookups.
  bool PruneCandidatePair(NS S1, NS S2, const Entry** left_out,
                          const Entry** right_out, Entry** target_out);

  const BasicHypergraph<NS>* graph_;
  const BasicCardinalityModel<NS>* est_;
  const CostModel* cost_model_;
  const std::vector<TesConstraint>* tes_;
  /// The run's DP table: either `owned_table_` (legacy self-contained runs)
  /// or a workspace slot the caller lent us.
  std::unique_ptr<BasicDpTable<NS>> owned_table_;
  BasicDpTable<NS>* table_;
  OptimizerStats stats_;
  const CancellationToken* cancel_ = nullptr;
  uint64_t ticks_ = 0;
  /// Branch-and-bound state: active flag, incumbent, and the full node set
  /// whose completed plans tighten the incumbent.
  bool pruning_ = false;
  double bound_ = std::numeric_limits<double>::infinity();
  /// CostModel::CompletionLowerBound for this query's root class; added to
  /// partial-plan costs before they are compared against the incumbent.
  double completion_ = 0.0;
  NS all_nodes_;
};

using OptimizerContext = BasicOptimizerContext<NodeSet>;

/// Implementation helper shared by the enumerator entry points: runs
/// `solve()` inside the cancellation guard, converting a fired token into
/// an aborted result, and stamps the algorithm name on whatever comes out.
template <typename NS, typename Solve>
BasicOptimizeResult<NS> RunGuarded(const char* algorithm,
                                   BasicOptimizerContext<NS>& ctx, NS root,
                                   Solve&& solve) {
  try {
    solve();
  } catch (const EnumerationAborted&) {
    return ctx.FinishAborted(algorithm);
  }
  BasicOptimizeResult<NS> result = ctx.Finish(root);
  result.stats.algorithm = algorithm;
  return result;
}

/// Resolves the branch-and-bound seed before a run: when `options` request
/// pruning under a monotone cost model but carry no finite incumbent, runs
/// GOO over the same graph (on `ws`'s seed slot when given, so pooled
/// serving stays allocation-free) and returns options with
/// initial_upper_bound filled in. Otherwise returns `options` unchanged.
/// The Optimize* entry points call this so the seed GOO never competes with
/// the main run for the workspace's primary table.
template <typename NS>
OptimizerOptions ResolvePruningSeed(const BasicHypergraph<NS>& graph,
                                    const BasicCardinalityModel<NS>& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options,
                                    BasicOptimizerWorkspace<NS>* ws);

}  // namespace dphyp

#endif  // DPHYP_CORE_OPTIMIZER_H_
