#include "core/wide.h"

#include <thread>

#include "baselines/dpccp.h"
#include "baselines/dpsub.h"
#include "baselines/goo.h"
#include "core/anneal.h"
#include "core/dphyp.h"
#include "core/idp.h"
#include "core/parallel_dphyp.h"

namespace dphyp {

namespace {

/// Mirror of parallel_dphyp.cc's worker resolution (the bid-side half: the
/// parallel route only bids when >= 2 workers would actually run).
int EffectiveParallelWorkers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// idp-k's CanHandle: inner joins only, no lateral dependencies (compound
/// window components have no conflict-rule story otherwise).
template <typename NS>
bool IdpCanHandle(const BasicHypergraph<NS>& graph) {
  if (graph.HasDependentLeaves()) return false;
  for (const BasicHyperedge<NS>& e : graph.edges()) {
    if (e.op != OpType::kJoin) return false;
  }
  return true;
}

}  // namespace

const char* WideRouteName(WideRoute route) {
  switch (route) {
    case WideRoute::kDpccp:
      return "DPccp";
    case WideRoute::kDphypPar:
      return "dphyp-par";
    case WideRoute::kDphyp:
      return "DPhyp";
    case WideRoute::kDpsub:
      return "DPsub";
    case WideRoute::kIdp:
      return "idp-k";
    case WideRoute::kAnneal:
      return "anneal";
    case WideRoute::kGoo:
      return "GOO";
  }
  return "GOO";
}

template <typename NS>
WideRouteDecision ChooseWideRoute(const BasicHypergraph<NS>& graph,
                                  const DispatchPolicy& policy) {
  const GraphShape shape = AnalyzeGraphShape(graph);
  WideRouteDecision best;  // the GOO floor (preference 0) always bids

  auto offer = [&best](WideRoute route, double preference, const char* reason,
                       bool exact) {
    if (preference > best.preference) {
      best = {route, preference, reason, exact};
    }
  };

  // DPccp (baselines/dpccp.cc Bid): simple graphs only.
  if (!shape.has_complex_edges) {
    if (shape.num_nodes <= 2) {
      offer(WideRoute::kDpccp, 100.0, "trivial", true);
    } else if (!shape.generalized && shape.max_simple_degree <= 2) {
      offer(WideRoute::kDpccp, 100.0, "chain/cycle: quadratic subgraph count",
            true);
    } else if (!shape.generalized && ExactDpFeasible(shape, policy)) {
      offer(WideRoute::kDpccp, 50.0, "simple inner graph", true);
    }
  }

  // dphyp-par (core/parallel_dphyp.cc Bid): widened parallel frontier.
  if (EffectiveParallelWorkers(policy.parallel_workers_hint) >= 2 &&
      shape.max_simple_degree > 2 &&
      shape.num_nodes >= policy.parallel_min_nodes &&
      shape.num_nodes <= policy.exact_node_limit &&
      shape.max_simple_degree <= policy.parallel_max_degree &&
      !(shape.density >= policy.min_dense_density &&
        shape.num_nodes > policy.parallel_dense_node_limit)) {
    offer(WideRoute::kDphypPar, 85.0,
          "large graph: intra-query parallel enumeration", true);
  }

  // DPhyp (core/dphyp.cc Bid).
  if (ExactDpFeasible(shape, policy)) {
    if (shape.generalized) {
      offer(WideRoute::kDphyp, 80.0, "hyperedges/non-inner/lateral", true);
    } else {
      offer(WideRoute::kDphyp, 40.0, "simple inner graph (DPccp preferred)",
            true);
    }
    // DPsub (baselines/dpsub.cc Bid): small dense simple graphs.
    if (!shape.generalized && shape.num_nodes <= policy.dpsub_node_limit &&
        shape.density >= policy.min_dpsub_density) {
      offer(WideRoute::kDpsub, 60.0, "small dense graph: 2^n loop wins", true);
    }
  } else {
    // The beyond-exact pair (core/idp.cc, core/anneal.cc Bids).
    if (IdpCanHandle(graph)) {
      offer(WideRoute::kIdp, 20.0,
            "past exact frontier: windowed exact DP (idp-k)", false);
    }
    offer(WideRoute::kAnneal, 10.0,
          "past exact frontier: simulated annealing", false);
  }

  return best;
}

template <typename NS>
BasicOptimizeResult<NS> OptimizeWideAdaptive(
    const BasicHypergraph<NS>& graph, const BasicCardinalityModel<NS>& est,
    const CostModel& cost_model, const OptimizerOptions& options,
    BasicOptimizerWorkspace<NS>* workspace, const DispatchPolicy& policy) {
  const WideRouteDecision decision = ChooseWideRoute(graph, policy);
  switch (decision.route) {
    case WideRoute::kDpccp:
      return OptimizeDpccp(graph, est, cost_model, options, workspace);
    case WideRoute::kDphypPar:
      return OptimizeDphypPar(graph, est, cost_model, options, workspace);
    case WideRoute::kDphyp:
      return OptimizeDphyp(graph, est, cost_model, options, workspace);
    case WideRoute::kDpsub:
      return OptimizeDpsub(graph, est, cost_model, options, workspace);
    case WideRoute::kIdp:
      return OptimizeIdp(graph, est, cost_model, options, workspace);
    case WideRoute::kAnneal:
      return OptimizeAnneal(graph, est, cost_model, options, workspace);
    case WideRoute::kGoo:
      break;
  }
  return OptimizeGoo(graph, est, cost_model, options, workspace);
}

template <typename To, typename From>
BasicHypergraph<To> WidenGraph(const BasicHypergraph<From>& graph) {
  static_assert(To::kMaxNodes >= From::kMaxNodes,
                "target width cannot represent the source width");
  auto convert = [](From s) {
    To out;
    for (int v : s) out |= To::Single(v);
    return out;
  };
  BasicHypergraph<To> wide;
  for (int v = 0; v < graph.NumNodes(); ++v) {
    const BasicHypergraphNode<From>& node = graph.node(v);
    BasicHypergraphNode<To> mapped;
    mapped.name = node.name;
    mapped.cardinality = node.cardinality;
    mapped.free_tables = convert(node.free_tables);
    wide.AddNode(std::move(mapped));
  }
  for (const BasicHyperedge<From>& e : graph.edges()) {
    BasicHyperedge<To> mapped;
    mapped.left = convert(e.left);
    mapped.right = convert(e.right);
    mapped.flex = convert(e.flex);
    mapped.selectivity = e.selectivity;
    mapped.op = e.op;
    mapped.predicate_id = e.predicate_id;
    wide.AddEdge(std::move(mapped));
  }
  return wide;
}

template WideRouteDecision ChooseWideRoute<NodeSet>(const Hypergraph&,
                                                    const DispatchPolicy&);
template WideRouteDecision ChooseWideRoute<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&, const DispatchPolicy&);
template WideRouteDecision ChooseWideRoute<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&, const DispatchPolicy&);

template OptimizeResult OptimizeWideAdaptive<NodeSet>(
    const Hypergraph&, const CardinalityModel&, const CostModel&,
    const OptimizerOptions&, OptimizerWorkspace*, const DispatchPolicy&);
template BasicOptimizeResult<WideNodeSet> OptimizeWideAdaptive<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*,
    const DispatchPolicy&);
template BasicOptimizeResult<HugeNodeSet> OptimizeWideAdaptive<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*,
    const DispatchPolicy&);

template BasicHypergraph<WideNodeSet> WidenGraph<WideNodeSet, NodeSet>(
    const Hypergraph&);
template BasicHypergraph<HugeNodeSet> WidenGraph<HugeNodeSet, NodeSet>(
    const Hypergraph&);
template BasicHypergraph<HugeNodeSet> WidenGraph<HugeNodeSet, WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&);

}  // namespace dphyp
