#include "core/dphyp.h"

#include <optional>

#include "core/neighborhood_cache.h"
#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

/// One enumeration run; holds the shared context plus the graph shortcut.
template <typename NS>
class DphypSolver {
 public:
  DphypSolver(const BasicHypergraph<NS>& graph, BasicOptimizerContext<NS>& ctx,
              BasicNeighborhoodCache<NS>& nbh)
      : graph_(graph), nbh_(nbh), ctx_(ctx) {}

  void Run() {
    ctx_.InitLeaves();
    // Second loop of Solve: descending node order; B_v forbids all nodes
    // ordered before v so every csg is started from its minimal node once.
    for (int v = graph_.NumNodes() - 1; v >= 0; --v) {
      NS single = NS::Single(v);
      EmitCsg(single);
      EnumerateCsgRec(single, NS::UpTo(v));
    }
  }

 private:
  void EnumerateCsgRec(NS S1, NS X) {
    NS nbh = nbh_.Neighborhood(S1, X);
    if (nbh.Empty()) return;
    // Emit before recursing so smaller sets are finished first (the DP
    // enumeration-order requirement of Sec. 2.2). The DP table lookup is
    // the connectivity oracle: S1 ∪ N has a table entry iff some earlier
    // csg-cmp-pair produced it, i.e. iff it is connected.
    for (NS n : NonEmptySubsetsOf(nbh)) {
      NS grown = S1 | n;
      if (ctx_.table().Contains(grown)) EmitCsg(grown);
    }
    NS x2 = X | nbh;
    for (NS n : NonEmptySubsetsOf(nbh)) {
      EnumerateCsgRec(S1 | n, x2);
    }
  }

  void EmitCsg(NS S1) {
    NS X = S1 | NS::Below(S1.Min());
    NS nbh = nbh_.Neighborhood(S1, X);
    // Process neighbors in descending order; each seed forbids the seeds
    // still to come (B_v(N), see header note) to avoid duplicate
    // complements.
    NS remaining = nbh;
    while (!remaining.Empty()) {
      int v = remaining.Max();
      remaining -= NS::Single(v);
      NS S2 = NS::Single(v);
      if (graph_.ConnectsSets(S1, S2)) {
        ctx_.EmitCsgCmp(S1, S2);
      }
      EnumerateCmpRec(S1, S2, X | (nbh & NS::UpTo(v)));
    }
  }

  void EnumerateCmpRec(NS S1, NS S2, NS X) {
    NS nbh = nbh_.Neighborhood(S2, X);
    if (nbh.Empty()) return;
    for (NS n : NonEmptySubsetsOf(nbh)) {
      NS grown = S2 | n;
      // Valid complement: connected (DP table oracle) and joined to S1 by
      // some hyperedge.
      if (ctx_.table().Contains(grown) && graph_.ConnectsSets(S1, grown)) {
        ctx_.EmitCsgCmp(S1, grown);
      }
    }
    NS x2 = X | nbh;
    for (NS n : NonEmptySubsetsOf(nbh)) {
      EnumerateCmpRec(S1, S2 | n, x2);
    }
  }

  const BasicHypergraph<NS>& graph_;
  /// Sec. 2.3 neighborhoods, memoized by node set (see
  /// core/neighborhood_cache.h): complements recur under many csgs, so the
  /// per-set union/candidate work is paid once per distinct set.
  BasicNeighborhoodCache<NS>& nbh_;
  BasicOptimizerContext<NS>& ctx_;
};

class DphypEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "DPhyp"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    if (!ExactDpFeasible(shape, policy)) return {};
    // Generalized features (hyperedges, non-inner operators, laterals) are
    // DPhyp's home turf — the other exact enumerators only stay competitive
    // on plain inner-join graphs, where DPccp's leaner neighborhood wins.
    if (shape.generalized) return {80.0, "hyperedges/non-inner/lateral"};
    return {40.0, "simple inner graph (DPccp preferred)"};
  }
  const char* FrontierSummary() const override {
    return "exact; bids inside the frontier (<= 22 nodes, degree <= 16, "
           "dense <= 12), preferred on generalized graphs";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDphyp(*request.graph, *request.estimator,
                         *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeDphyp(const BasicHypergraph<NS>& graph,
                                      const BasicCardinalityModel<NS>& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options,
                                      BasicOptimizerWorkspace<NS>* workspace) {
  std::optional<BasicNeighborhoodCache<NS>> local_nbh;
  BasicNeighborhoodCache<NS>& nbh = workspace != nullptr
                                        ? workspace->neighborhood(graph)
                                        : local_nbh.emplace(graph);
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  BasicOptimizerContext<NS> ctx(
      graph, est, cost_model, effective,
      workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  DphypSolver<NS> solver(graph, ctx, nbh);
  return RunGuarded("DPhyp", ctx, graph.AllNodes(), [&] { solver.Run(); });
}

OptimizeResult OptimizeDphyp(const Hypergraph& graph) {
  CardinalityEstimator est(graph);
  return OptimizeDphyp(graph, est, DefaultCostModel(), {});
}

std::unique_ptr<Enumerator> MakeDphypEnumerator() {
  return std::make_unique<DphypEnumerator>();
}

template OptimizeResult OptimizeDphyp<NodeSet>(const Hypergraph&,
                                               const CardinalityModel&,
                                               const CostModel&,
                                               const OptimizerOptions&,
                                               OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeDphyp<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeDphyp<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
