#include "core/enumerator.h"

#include <algorithm>
#include <cctype>
#include <mutex>

#include "baselines/dpccp.h"
#include "baselines/dpsize.h"
#include "baselines/dpsub.h"
#include "baselines/goo.h"
#include "baselines/tdbasic.h"
#include "baselines/tdpartition.h"
#include "core/anneal.h"
#include "core/dphyp.h"
#include "core/idp.h"
#include "core/parallel_dphyp.h"
#include "core/workspace.h"

namespace dphyp {

namespace {

bool NameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

template <typename NS>
GraphShape AnalyzeGraphShape(const BasicHypergraph<NS>& graph) {
  GraphShape shape;
  shape.num_nodes = graph.NumNodes();
  shape.num_edges = graph.NumEdges();
  bool non_inner = false;
  for (const BasicHyperedge<NS>& e : graph.edges()) {
    if (e.op != OpType::kJoin) {
      non_inner = true;
      break;
    }
  }
  shape.has_complex_edges = !graph.complex_edge_ids().empty();
  shape.generalized =
      shape.has_complex_edges || non_inner || graph.HasDependentLeaves();
  for (int v = 0; v < shape.num_nodes; ++v) {
    shape.max_simple_degree =
        std::max(shape.max_simple_degree, graph.SimpleNeighbors(v).Count());
  }
  if (shape.num_nodes > 1) {
    shape.density = static_cast<double>(2 * shape.num_edges) /
                    (static_cast<double>(shape.num_nodes) *
                     (shape.num_nodes - 1));
  }
  return shape;
}

template GraphShape AnalyzeGraphShape<NodeSet>(const Hypergraph&);
template GraphShape AnalyzeGraphShape<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&);
template GraphShape AnalyzeGraphShape<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&);

bool ExactDpFeasible(const GraphShape& shape, const DispatchPolicy& policy) {
  // Chains and cycles have only O(n^2) connected subgraphs: exact DP is
  // always feasible, whatever n (<= NodeSet::kMaxNodes).
  if (!shape.generalized && shape.max_simple_degree <= 2) return true;
  if (shape.num_nodes <= 2) return true;
  // Feasibility frontier: a degree-d hub alone induces 2^d connected
  // subgraphs, and past the node ceiling even sparse shapes can blow up
  // the table.
  if (shape.num_nodes > policy.exact_node_limit ||
      shape.max_simple_degree > policy.max_exact_degree) {
    return false;
  }
  // Dense graphs hit the csg-cmp pair wall (~3^n on cliques) long before
  // the table-entry wall, so they get a stricter ceiling.
  if (shape.density >= policy.min_dense_density &&
      shape.num_nodes > policy.dense_node_limit) {
    return false;
  }
  return true;
}

OptimizeResult Enumerator::Optimize(const Hypergraph& graph,
                                    const CardinalityModel& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options) const {
  OptimizerWorkspace workspace;
  OptimizationRequest request;
  request.graph = &graph;
  request.estimator = &est;
  request.cost_model = &cost_model;
  request.options = options;
  OptimizeResult result = Run(request, workspace);
  // The workspace dies with this frame: hand its table to the result so
  // the caller keeps the original self-contained lifetime.
  if (result.has_table() && !result.owns_table()) {
    result.AdoptTable(workspace.DetachTable());
  }
  return result;
}

struct EnumeratorRegistry::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<Enumerator>> entries;
};

EnumeratorRegistry::EnumeratorRegistry() : impl_(new Impl) {
  // Built-ins, in display/sweep order. Registration here (instead of
  // per-translation-unit static initializers) keeps the set deterministic
  // and immune to static-library dead-stripping.
  impl_->entries.push_back(MakeDphypEnumerator());
  impl_->entries.push_back(MakeDphypParEnumerator());
  impl_->entries.push_back(MakeDpccpEnumerator());
  impl_->entries.push_back(MakeDpsubEnumerator());
  impl_->entries.push_back(MakeDpsizeEnumerator());
  impl_->entries.push_back(MakeTdBasicEnumerator());
  impl_->entries.push_back(MakeTdPartitionEnumerator());
  impl_->entries.push_back(MakeIdpEnumerator());
  impl_->entries.push_back(MakeAnnealEnumerator());
  impl_->entries.push_back(MakeGooEnumerator());
}

EnumeratorRegistry& EnumeratorRegistry::Global() {
  static EnumeratorRegistry* registry = new EnumeratorRegistry();
  return *registry;
}

void EnumeratorRegistry::Register(std::unique_ptr<Enumerator> enumerator) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& existing : impl_->entries) {
    if (NameEquals(existing->Name(), enumerator->Name())) {
      existing = std::move(enumerator);  // last registration wins
      return;
    }
  }
  impl_->entries.push_back(std::move(enumerator));
}

bool EnumeratorRegistry::Unregister(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto it = impl_->entries.begin(); it != impl_->entries.end(); ++it) {
    if (NameEquals((*it)->Name(), name)) {
      impl_->entries.erase(it);
      return true;
    }
  }
  return false;
}

const Enumerator* EnumeratorRegistry::FindOrNull(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& e : impl_->entries) {
    if (NameEquals(e->Name(), name)) return e.get();
  }
  return nullptr;
}

Result<const Enumerator*> EnumeratorRegistry::Find(
    std::string_view name) const {
  const Enumerator* found = FindOrNull(name);
  if (found != nullptr) return found;
  std::string message = "unknown enumerator '";
  message.append(name);
  message += "'; registered:";
  for (const Enumerator* e : All()) {
    message += ' ';
    message += e->Name();
  }
  return Err(std::move(message));
}

std::vector<const Enumerator*> EnumeratorRegistry::All() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<const Enumerator*> snapshot;
  snapshot.reserve(impl_->entries.size());
  for (const auto& e : impl_->entries) snapshot.push_back(e.get());
  return snapshot;
}

Result<OptimizeResult> OptimizeByName(std::string_view name,
                                      const Hypergraph& graph,
                                      const CardinalityModel& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options,
                                      OptimizerWorkspace* workspace) {
  Result<const Enumerator*> found = EnumeratorRegistry::Global().Find(name);
  if (!found.ok()) return found.error();
  const Enumerator& enumerator = *found.value();
  if (!enumerator.CanHandle(graph)) {
    return Err(std::string(enumerator.Name()) +
               " cannot handle this graph (e.g. complex hyperedges)");
  }
  if (workspace == nullptr) {
    return enumerator.Optimize(graph, est, cost_model, options);
  }
  OptimizationRequest request;
  request.graph = &graph;
  request.estimator = &est;
  request.cost_model = &cost_model;
  request.options = options;
  return enumerator.Run(request, *workspace);
}

Result<OptimizeResult> OptimizeByName(std::string_view name,
                                      const Hypergraph& graph) {
  CardinalityEstimator est(graph);
  return OptimizeByName(name, graph, est, DefaultCostModel());
}

}  // namespace dphyp
