#include "core/parallel_dphyp.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/neighborhood_cache.h"
#include "core/workspace.h"
#include "hypergraph/connectivity.h"
#include "util/cancellation.h"
#include "util/subset.h"

namespace dphyp {

namespace {

/// Phase-2 waves only go parallel when a wave has enough classes to
/// amortize claiming overhead; phase 1 only when the graph is big enough
/// to have exponential per-vertex searches worth splitting.
constexpr size_t kMinClassesForParallelWaves = 256;
constexpr int kMinNodesForParallelDiscovery = 12;

int ResolveParallelThreads(int requested) {
  int threads = requested;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(threads, 1, 64);
}

/// Runs `fn(worker_index)` on `threads` workers (the calling thread is
/// worker 0). EnumerationAborted from any worker is re-thrown once on the
/// calling thread after all workers joined; other exceptions propagate
/// likewise (first wins).
template <typename Fn>
void RunWorkers(int threads, Fn&& fn) {
  if (threads <= 1) {
    fn(0);
    return;
  }
  std::atomic<bool> aborted{false};
  std::mutex error_mu;
  std::exception_ptr error;
  auto body = [&](int w) {
    try {
      fn(w);
    } catch (const EnumerationAborted&) {
      aborted.store(true, std::memory_order_relaxed);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (error == nullptr) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (int w = 1; w < threads; ++w) pool.emplace_back(body, w);
  body(0);
  for (std::thread& t : pool) t.join();
  if (error != nullptr) std::rethrow_exception(error);
  if (aborted.load(std::memory_order_relaxed)) throw EnumerationAborted{};
}

/// Phase 1: one worker's csg-side discovery. Mirrors DPhyp's
/// EnumerateCsgRec exactly (core/dphyp.cc), with the DP-table connectivity
/// oracle replaced by a cost-free one so start vertices need no cross-
/// worker data: sets grown through simple-edge neighbors are connected by
/// construction; only candidates containing complex-edge far-side
/// representatives need the memoized IsConnectedDef3 test.
template <typename NS>
class StructureWorker {
 public:
  /// `memo` is the worker's pooled connectivity-memo scratch
  /// (OptimizerWorkspace::connectivity_memo), cleared by the caller for
  /// this run.
  StructureWorker(const BasicHypergraph<NS>& graph,
                  BasicNeighborhoodCache<NS>& nbh, std::vector<NS>& out,
                  std::unordered_map<NS, bool, NodeSetHasher>& memo,
                  const CancellationToken* token)
      : graph_(graph),
        nbh_(nbh),
        out_(out),
        memo_(memo),
        has_complex_(!graph.complex_edge_ids().empty()),
        poll_(token) {}

  /// Discovers every connected subgraph whose minimal node is `v` (the
  /// singletons are the leaves, inserted by InitLeaves, not collected
  /// here). Disjoint across start vertices by the B_v forbid discipline.
  void DiscoverFrom(int v) {
    Recurse(NS::Single(v), NS::UpTo(v), /*simple_path=*/true);
  }

 private:
  /// `simple_path` is the connectivity fast path: true while every growth
  /// step so far added only nodes simple-adjacent to the set they joined,
  /// which keeps S1 connected by construction. Only candidates grown
  /// through a complex-edge far-side representative (and growth below
  /// them) pay the closure test.
  void Recurse(NS S1, NS X, bool simple_path) {
    NS nbh = nbh_.Neighborhood(S1, X);
    if (nbh.Empty()) return;
    NS simple_members = nbh;
    if (has_complex_) {
      simple_members = NS();
      for (int w : nbh) {
        if (graph_.SimpleNeighbors(w).Intersects(S1)) {
          simple_members |= NS::Single(w);
        }
      }
    }
    // Poll inside the subset loop, not just per recursion node: a single
    // high-degree hub expands 2^degree subsets right here, and a deadline
    // must bind mid-expansion.
    for (NS n : NonEmptySubsetsOf(nbh)) {
      if (poll_.Fired()) throw EnumerationAborted{};
      NS grown = S1 | n;
      if ((simple_path && n.IsSubsetOf(simple_members)) || Connected(grown)) {
        out_.push_back(grown);
      }
    }
    NS x2 = X | nbh;
    // Recursion continues through unconnected grown sets, exactly like the
    // sequential solver: a complex far side entered via its representative
    // only becomes connected once later growth completes it.
    for (NS n : NonEmptySubsetsOf(nbh)) {
      Recurse(S1 | n, x2, simple_path && n.IsSubsetOf(simple_members));
    }
  }

  bool Connected(NS S) {
    auto [it, inserted] = memo_.try_emplace(S, false);
    if (inserted) it->second = IsConnectedDef3(graph_, S);
    return it->second;
  }

  const BasicHypergraph<NS>& graph_;
  BasicNeighborhoodCache<NS>& nbh_;
  std::vector<NS>& out_;
  std::unordered_map<NS, bool, NodeSetHasher>& memo_;
  const bool has_complex_;
  CancellationPoller poll_;
};

/// Phase 2: one worker's per-class pair enumeration + combine. For an
/// owned class S it enumerates the connected subsets S2 of S \ {min(S)}
/// (the non-min sides; the structure table is the exact connectivity
/// oracle now) and submits each valid split (S \ S2, S2) to the shared
/// EmitCsgCmp combine step — the same unordered csg-cmp pairs sequential
/// DPhyp emits for this class, in a canonical order that depends on the
/// class alone.
template <typename NS>
class ClassSplitter {
 public:
  ClassSplitter(const BasicHypergraph<NS>& graph,
                const BasicCardinalityModel<NS>& est, BasicDpTable<NS>& table,
                BasicNeighborhoodCache<NS>& nbh,
                BasicOptimizerContext<NS>& ctx)
      : graph_(graph),
        est_(est),
        table_(table),
        nbh_(nbh),
        ctx_(ctx),
        all_(graph.AllNodes()) {}

  void ProcessClass(BasicPlanEntry<NS>* entry) {
    class_ = entry->set;
    // The class's output cardinality is fixed before any candidate costs:
    // the combine step and the dominance cut read it from the entry.
    entry->cardinality = est_.EstimateClass(class_);
    const NS Y = class_ - class_.MinSet();
    const NS outside = all_ - Y;
    // Non-min sides in descending start-vertex order within Y, each seed
    // forbidding the seeds still to come — DPhyp's Solve loop restricted
    // to the class.
    NS remaining = Y;
    while (!remaining.Empty()) {
      const int v = remaining.Max();
      remaining -= NS::Single(v);
      const NS single = NS::Single(v);
      TrySplit(single);
      Grow(single, outside | (Y & NS::UpTo(v)));
    }
  }

 private:
  void Grow(NS S2, NS X) {
    NS nbh = nbh_.Neighborhood(S2, X);
    if (nbh.Empty()) return;
    for (NS n : NonEmptySubsetsOf(nbh)) {
      ctx_.Tick();
      NS grown = S2 | n;
      // Structure-table membership == Def.-3 connectivity (phase 1 is
      // complete before any wave starts).
      if (table_.Contains(grown)) TrySplit(grown);
    }
    NS x2 = X | nbh;
    for (NS n : NonEmptySubsetsOf(nbh)) {
      Grow(S2 | n, x2);
    }
  }

  void TrySplit(NS S2) {
    ++ctx_.stats().pairs_tested;
    ctx_.Tick();
    const NS S1 = class_ - S2;
    // Both sides must hold *valid plans*, not merely be connected: the
    // +inf sentinel marks classes that are connected but plan-less (non-
    // inner operator constellations) or pruned away — the sequential
    // solver's missing-entry skip, expressed on a pre-populated table.
    const BasicPlanEntry<NS>* left = table_.Find(S1);
    if (left == nullptr || !std::isfinite(left->cost)) return;
    const BasicPlanEntry<NS>* right = table_.Find(S2);
    if (right == nullptr || !std::isfinite(right->cost)) return;
    if (!graph_.ConnectsSets(S1, S2)) return;
    ctx_.EmitCsgCmp(S1, S2);
  }

  const BasicHypergraph<NS>& graph_;
  const BasicCardinalityModel<NS>& est_;
  BasicDpTable<NS>& table_;
  BasicNeighborhoodCache<NS>& nbh_;
  BasicOptimizerContext<NS>& ctx_;
  const NS all_;
  NS class_;
};

template <typename NS>
class ParallelDphypDriver {
 public:
  ParallelDphypDriver(const BasicHypergraph<NS>& graph,
                      const BasicCardinalityModel<NS>& est,
                      const CostModel& cost_model,
                      const OptimizerOptions& options,
                      BasicOptimizerWorkspace<NS>* workspace,
                      BasicOptimizerContext<NS>& primary)
      : graph_(graph),
        est_(est),
        cost_model_(cost_model),
        options_(options),
        workspace_(workspace),
        primary_(primary),
        threads_(ResolveParallelThreads(options.parallel_threads)) {
    // Per-thread scratch comes from the (pooled) workspace so warm serving
    // re-uses it across queries; growth happens here, on the coordinating
    // thread, before any worker exists.
    for (int i = 0; i < threads_; ++i) Scratch(i);
  }

  void Run() {
    primary_.InitLeaves();
    try {
      DiscoverStructure();
      PublishClasses();
      CostWaves();
    } catch (const EnumerationAborted&) {
      MergeWorkerStats();
      throw;
    }
    MergeWorkerStats();
  }

 private:
  BasicOptimizerWorkspace<NS>& Scratch(int i) {
    if (workspace_ != nullptr) {
      return workspace_->ThreadScratch(static_cast<size_t>(i));
    }
    while (owned_scratch_.size() <= static_cast<size_t>(i)) {
      owned_scratch_.push_back(
          std::make_unique<BasicOptimizerWorkspace<NS>>());
    }
    return *owned_scratch_[i];
  }

  void DiscoverStructure() {
    const int n = graph_.NumNodes();
    const int team =
        n >= kMinNodesForParallelDiscovery ? std::min(threads_, n) : 1;
    buffers_.resize(team);
    for (int i = 0; i < team; ++i) {
      buffers_[i] = &Scratch(i).scratch_sets();
      buffers_[i]->clear();
    }
    // Descending work-stealing over start vertices: the low-index vertices
    // carry the big searches (they forbid the least), so handing them out
    // last keeps the tail short.
    std::atomic<int> next{n - 1};
    RunWorkers(team, [&](int w) {
      BasicOptimizerWorkspace<NS>& scratch = Scratch(w);
      scratch.connectivity_memo().clear();
      StructureWorker<NS> worker(graph_, scratch.neighborhood(graph_),
                                 *buffers_[w], scratch.connectivity_memo(),
                                 options_.cancellation);
      for (;;) {
        const int v = next.fetch_sub(1, std::memory_order_relaxed);
        if (v < 0) break;
        worker.DiscoverFrom(v);
      }
    });
  }

  void PublishClasses() {
    size_t total = 0;
    for (const std::vector<NS>* b : buffers_) total += b->size();
    // The merge buffer lives in the parent workspace (the per-worker
    // buffers live in its ThreadScratch children, so there is no
    // aliasing): pooled warm serving reuses its capacity instead of
    // allocating megabytes per query on large graphs.
    std::vector<NS> local;
    std::vector<NS>& classes =
        workspace_ != nullptr ? workspace_->scratch_sets() : local;
    classes.clear();
    classes.reserve(total);
    for (const std::vector<NS>* b : buffers_) {
      classes.insert(classes.end(), b->begin(), b->end());
    }
    // Canonical publication order — by (size, numeric value) — makes the
    // table layout, the wave partition, and therefore the whole run
    // independent of worker count and scheduling.
    std::sort(classes.begin(), classes.end(), [](NS a, NS b) {
      const int ca = a.Count();
      const int cb = b.Count();
      if (ca != cb) return ca < cb;
      return a < b;
    });

    BasicDpTable<NS>& table = primary_.table();
    table.Reserve(static_cast<size_t>(graph_.NumNodes()) + classes.size());
    CancellationPoller poll(options_.cancellation);
    for (NS s : classes) {
      if (poll.Fired()) throw EnumerationAborted{};
      BasicPlanEntry<NS>* e = table.Insert(s);
      // +inf marks "no valid plan yet"; the cardinality is filled by the
      // class's owner at the start of its wave.
      e->cost = std::numeric_limits<double>::infinity();
      e->cardinality = 0.0;
      e->edge_id = -1;
    }

    // Wave boundaries over the table's insertion order: [NumNodes(), ...)
    // is the sorted class range, contiguous per size.
    waves_.clear();
    const std::vector<BasicPlanEntry<NS>*>& entries = table.entries();
    size_t begin = static_cast<size_t>(graph_.NumNodes());
    while (begin < entries.size()) {
      size_t end = begin + 1;
      const int size = entries[begin]->set.Count();
      while (end < entries.size() && entries[end]->set.Count() == size) ++end;
      waves_.emplace_back(begin, end);
      begin = end;
    }
  }

  void CostWaves() {
    if (waves_.empty()) return;
    size_t largest_wave = 0;
    for (const auto& [b, e] : waves_) largest_wave = std::max(largest_wave, e - b);
    const int team =
        largest_wave >= kMinClassesForParallelWaves ? threads_ : 1;

    worker_ctx_.clear();
    std::vector<std::unique_ptr<ClassSplitter<NS>>> splitters;
    for (int i = 0; i < team; ++i) {
      // Worker contexts attach to the shared table without resetting it;
      // the pruning seed in `options_` is already resolved (finite), so no
      // per-worker GOO pass runs and every worker prunes against the same
      // deterministic initial bound.
      worker_ctx_.push_back(std::make_unique<BasicOptimizerContext<NS>>(
          graph_, est_, cost_model_, options_, &primary_.table(),
          /*reset_borrowed_table=*/false));
      splitters.push_back(std::make_unique<ClassSplitter<NS>>(
          graph_, est_, primary_.table(), Scratch(i).neighborhood(graph_),
          *worker_ctx_[i]));
    }

    const std::vector<BasicPlanEntry<NS>*>& entries =
        primary_.table().entries();
    if (team == 1) {
      for (const auto& [begin, end] : waves_) {
        for (size_t j = begin; j < end; ++j) {
          splitters[0]->ProcessClass(entries[j]);
        }
      }
      return;
    }

    // One persistent worker team; a barrier separates the size waves so a
    // wave only starts once every smaller class cost is final (and
    // publishes its writes to all workers). Within a wave, ownership is
    // claim-by-chunk: exactly one worker ever writes a given entry, so no
    // entry-level locking exists anywhere.
    std::atomic<size_t> cursor{waves_[0].first};
    std::atomic<bool> aborted{false};
    std::mutex error_mu;
    std::exception_ptr error;
    size_t wave_counter = 0;  // advanced only inside the barrier completion
    auto advance_wave = [this, &wave_counter, &cursor]() noexcept {
      ++wave_counter;
      if (wave_counter < waves_.size()) {
        cursor.store(waves_[wave_counter].first, std::memory_order_relaxed);
      }
    };
    std::barrier sync(team, advance_wave);

    auto work = [&](int w) {
      for (size_t k = 0; k < waves_.size(); ++k) {
        const size_t end = waves_[k].second;
        const size_t chunk = std::max<size_t>(
            1, (end - waves_[k].first) / (static_cast<size_t>(team) * 8));
        if (!aborted.load(std::memory_order_relaxed)) {
          try {
            for (;;) {
              const size_t start =
                  cursor.fetch_add(chunk, std::memory_order_relaxed);
              if (start >= end) break;
              const size_t stop = std::min(start + chunk, end);
              for (size_t j = start; j < stop; ++j) {
                splitters[w]->ProcessClass(entries[j]);
              }
              if (aborted.load(std::memory_order_relaxed)) break;
            }
          } catch (const EnumerationAborted&) {
            aborted.store(true, std::memory_order_relaxed);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (error == nullptr) error = std::current_exception();
            aborted.store(true, std::memory_order_relaxed);
          }
        }
        // Every worker reaches every barrier, even after an abort — the
        // team drains through the remaining (now empty) waves and joins.
        sync.arrive_and_wait();
      }
    };
    // `work` swallows all exceptions internally (it must keep arriving at
    // the barriers), so RunWorkers is pure spawn/join here; the outcome is
    // re-raised from the flags the workers left behind.
    RunWorkers(team, work);
    if (error != nullptr) std::rethrow_exception(error);
    if (aborted.load(std::memory_order_relaxed)) throw EnumerationAborted{};
  }

  void MergeWorkerStats() {
    OptimizerStats& total = primary_.stats();
    for (const auto& ctx : worker_ctx_) {
      const OptimizerStats& w = ctx->stats();
      total.ccp_pairs += w.ccp_pairs;
      total.pairs_tested += w.pairs_tested;
      total.discarded += w.discarded;
      total.cost_evaluations += w.cost_evaluations;
      total.pruned += w.pruned;
      total.dominated += w.dominated;
    }
    worker_ctx_.clear();
  }

  const BasicHypergraph<NS>& graph_;
  const BasicCardinalityModel<NS>& est_;
  const CostModel& cost_model_;
  const OptimizerOptions& options_;
  BasicOptimizerWorkspace<NS>* workspace_;
  BasicOptimizerContext<NS>& primary_;
  const int threads_;
  std::vector<std::unique_ptr<BasicOptimizerWorkspace<NS>>> owned_scratch_;
  std::vector<std::vector<NS>*> buffers_;
  std::vector<std::pair<size_t, size_t>> waves_;
  std::vector<std::unique_ptr<BasicOptimizerContext<NS>>> worker_ctx_;
};

class DphypParEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "dphyp-par"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    // One effective worker is not a parallel run: the widened frontier
    // below exists because the work splits, so without >= 2 workers the
    // sequential bids (and GOO's fallback past their frontier) must keep
    // their routes. By-name selection is unaffected.
    if (ResolveParallelThreads(policy.parallel_workers_hint) < 2) return {};
    // Chains and cycles — generalized or not — finish in well under a
    // millisecond sequentially (quadratic search spaces, which the fig5
    // hyperedges only shrink further), so a worker pool costs more than it
    // saves; small graphs likewise.
    if (shape.max_simple_degree <= 2) return {};
    if (shape.num_nodes < policy.parallel_min_nodes) return {};
    // The parallel feasibility frontier: wider than sequential exact DP
    // (the csg-cmp work splits across threads) but still bounded by what
    // the DP table itself can hold.
    if (shape.num_nodes > policy.exact_node_limit ||
        shape.max_simple_degree > policy.parallel_max_degree) {
      return {};
    }
    if (shape.density >= policy.min_dense_density &&
        shape.num_nodes > policy.parallel_dense_node_limit) {
      return {};
    }
    return {85.0, "large graph: intra-query parallel enumeration"};
  }
  const char* FrontierSummary() const override {
    return "exact; bids on 14-22 node graphs (degree <= 18, dense <= 18) "
           "when >= 2 workers are effective";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDphypPar(*request.graph, *request.estimator,
                            *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeDphypPar(
    const BasicHypergraph<NS>& graph, const BasicCardinalityModel<NS>& est,
    const CostModel& cost_model, const OptimizerOptions& options,
    BasicOptimizerWorkspace<NS>* workspace) {
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  BasicOptimizerContext<NS> primary(graph, est, cost_model, effective,
                                    workspace != nullptr ? &workspace->table()
                                                         : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  ParallelDphypDriver<NS> driver(graph, est, cost_model, effective, workspace,
                                 primary);
  BasicOptimizeResult<NS> result =
      RunGuarded("dphyp-par", primary, graph.AllNodes(), [&] { driver.Run(); });
  // The parallel table pre-inserts every connected class; a root entry
  // still carrying the +inf sentinel means no valid ordering existed —
  // the sequential solver's missing-entry failure.
  if (result.success && !std::isfinite(result.cost)) {
    result.success = false;
    result.error =
        "no plan found: all candidate orderings for the root class were "
        "invalid";
  }
  return result;
}

std::unique_ptr<Enumerator> MakeDphypParEnumerator() {
  return std::make_unique<DphypParEnumerator>();
}

template OptimizeResult OptimizeDphypPar<NodeSet>(const Hypergraph&,
                                                  const CardinalityModel&,
                                                  const CostModel&,
                                                  const OptimizerOptions&,
                                                  OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeDphypPar<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeDphypPar<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
