#include "core/neighborhood_cache.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace dphyp {

template <typename NS>
BasicNeighborhoodCache<NS>::BasicNeighborhoodCache(
    const BasicHypergraph<NS>& graph)
    : graph_(&graph) {
  const size_t expected = static_cast<size_t>(graph.NumNodes()) * 8;
  size_t capacity = std::bit_ceil(expected * 2 + 16);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  entries_.reserve(expected);
}

template <typename NS>
void BasicNeighborhoodCache<NS>::Reset(const BasicHypergraph<NS>& graph) {
  graph_ = &graph;
  entries_.clear();
  candidate_pool_.clear();
  const size_t expected = static_cast<size_t>(graph.NumNodes()) * 8;
  const size_t wanted = std::bit_ceil(expected * 2 + 16);
  // Same retention policy as DpTable::Reset: re-zero in place unless the
  // slot array is grossly oversized for this graph.
  if (slots_.size() < wanted || slots_.size() > wanted * 8) {
    slots_.assign(wanted, 0);
  } else {
    std::fill(slots_.begin(), slots_.end(), 0);
  }
  mask_ = slots_.size() - 1;
  hits_ = 0;
  misses_ = 0;
}

template <typename NS>
const typename BasicNeighborhoodCache<NS>::Entry&
BasicNeighborhoodCache<NS>::Lookup(NS S) {
  size_t idx = HashNodeSet(S) & mask_;
  for (;;) {
    uint32_t slot = slots_[idx];
    if (slot == 0) break;
    if (entries_[slot - 1].key == S) {
      ++hits_;
      return entries_[slot - 1];
    }
    idx = (idx + 1) & mask_;
  }

  ++misses_;
  Entry entry;
  entry.key = S;
  for (int v : S) entry.simple_union |= graph_->SimpleNeighbors(v);
  entry.pool_begin = static_cast<uint32_t>(candidate_pool_.size());
  auto consider = [&](NS near_side, NS far_side, NS flex) {
    if (!near_side.IsSubsetOf(S)) return;
    candidate_pool_.push_back(far_side | (flex - S));
  };
  for (int id : graph_->complex_edge_ids()) {
    const BasicHyperedge<NS>& e = graph_->edge(id);
    consider(e.left, e.right, e.flex);
    consider(e.right, e.left, e.flex);
  }
  entry.pool_end = static_cast<uint32_t>(candidate_pool_.size());

  if ((entries_.size() + 1) * 10 >= slots_.size() * 7) Grow();
  entries_.push_back(entry);
  idx = HashNodeSet(S) & mask_;
  while (slots_[idx] != 0) idx = (idx + 1) & mask_;
  slots_[idx] = static_cast<uint32_t>(entries_.size());
  return entries_.back();
}

template <typename NS>
void BasicNeighborhoodCache<NS>::Grow() {
  size_t capacity = slots_.size() * 2;
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t idx = HashNodeSet(entries_[i].key) & mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & mask_;
    slots_[idx] = static_cast<uint32_t>(i + 1);
  }
}

template <typename NS>
NS BasicNeighborhoodCache<NS>::Neighborhood(NS S, NS X) {
  const Entry& entry = Lookup(S);
  const NS forbidden = S | X;
  const NS simple = entry.simple_union - forbidden;
  if (entry.pool_begin == entry.pool_end) return simple;
  // X-dependent tail: filter the memoized candidates by the forbidden set
  // (same cap over the *surviving* candidates as the uncached path), then
  // run the shared subsumption step — bit-for-bit what
  // Hypergraph::Neighborhood computes.
  NS candidates[internal::kMaxNeighborhoodCandidates];
  int num_candidates = 0;
  for (uint32_t p = entry.pool_begin; p != entry.pool_end; ++p) {
    NS target = candidate_pool_[p];
    if (target.Intersects(forbidden)) continue;
    if (num_candidates < internal::kMaxNeighborhoodCandidates) {
      candidates[num_candidates++] = target;
    }
  }
  return internal::ResolveCandidateNeighborhood(candidates, num_candidates,
                                                simple);
}

template class BasicNeighborhoodCache<NodeSet>;
template class BasicNeighborhoodCache<WideNodeSet>;
template class BasicNeighborhoodCache<HugeNodeSet>;

}  // namespace dphyp
