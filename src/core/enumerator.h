// The unified enumeration interface: every join-ordering algorithm in the
// repository — DPhyp, dphyp-par, DPccp, DPsub, DPsize, TDbasic,
// TDpartition, idp-k, anneal, GOO — is an Enumerator behind one registry. This is the paper's central structural
// claim turned into API: one combine step (EmitCsgCmp) serves every
// enumeration strategy, so the strategies themselves are interchangeable
// values, not switch cases. Production optimizers expose the same shape
// (Hyrise's AbstractJoinOrderingAlgorithm hierarchy, PostgreSQL's
// join_search_hook + GEQO fallback); adding an enumerator here requires
// only a registration — dispatch, benchmarks, and the agreement test suite
// pick it up from the registry.
#ifndef DPHYP_CORE_ENUMERATOR_H_
#define DPHYP_CORE_ENUMERATOR_H_

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.h"
#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace dphyp {

/// The shape features routing decisions are made from, computed once per
/// query (AnalyzeGraphShape) and shared by every enumerator's Bid. The
/// struct itself is width-independent; AnalyzeGraphShape runs at any node-
/// set width (wide routing in core/wide.h reuses it).
struct GraphShape {
  int num_nodes = 0;
  int num_edges = 0;
  /// Maximum simple-edge degree over all nodes; a hub of degree d alone
  /// induces >= 2^d connected subgraphs (stars).
  int max_simple_degree = 0;
  /// 2|E| / (n(n-1)); >= 1 on cliques.
  double density = 0.0;
  /// Hyperedges, non-inner operators, or lateral (dependent) leaves —
  /// anything beyond a plain inner-join simple graph.
  bool generalized = false;
  bool has_complex_edges = false;
};

template <typename NS>
GraphShape AnalyzeGraphShape(const BasicHypergraph<NS>& graph);

/// Thresholds steering the routing decision. The defaults keep every exact
/// route under a few hundred thousand DP entries (see README).
struct DispatchPolicy {
  /// Hard node-count ceiling for exhaustive DP on graphs that are not
  /// chains/cycles (whose subgraph count is only quadratic).
  int exact_node_limit = 22;
  /// Exhaustive DP also requires the max simple-edge degree to stay below
  /// this: a hub of degree d induces >= 2^d connected subgraphs (stars).
  int max_exact_degree = 16;
  /// DPsub is chosen for simple graphs up to this size when density is at
  /// least `min_dpsub_density` (its 2^n loop has tiny constants).
  int dpsub_node_limit = 12;
  double min_dpsub_density = 0.8;
  /// Dense graphs (edge density >= `min_dense_density`) get a stricter node
  /// ceiling: their csg-cmp pair count grows like 3^n even when the table
  /// itself (2^n entries) would still fit.
  int dense_node_limit = 12;
  double min_dense_density = 0.4;
  /// Bound-aware routing: when an exact route is chosen, run it with
  /// accumulated-cost branch-and-bound pruning seeded from a GOO pass over
  /// the same graph (OptimizerOptions::enable_pruning). Admissible under
  /// monotone cost models — the served plan cost is bit-identical to the
  /// unpruned run — and a no-op for routes that cannot prune (GOO itself).
  bool enable_pruning = true;
  /// Intra-query parallel enumeration ("dphyp-par") bids on graphs with at
  /// least this many relations — below it, single-threaded enumeration
  /// finishes before a worker pool has even spawned. Chains and cycles
  /// (max simple degree <= 2, hyperedges or not) are exempt whatever their
  /// size: their search spaces are quadratic, and hyperedges only shrink
  /// them.
  int parallel_min_nodes = 14;
  /// The parallel route tolerates denser/hubbier shapes than sequential
  /// exact DP — the work partitions across threads — but stays bounded:
  /// dense graphs (>= `min_dense_density`) up to this node count, and hubs
  /// up to `parallel_max_degree` (a degree-d hub alone puts 2^d entries in
  /// the DP table, a memory bound no thread count changes).
  int parallel_dense_node_limit = 18;
  int parallel_max_degree = 18;
  /// Worker count the parallel route would actually run with (0 = hardware
  /// concurrency). The parallel bid requires an effective count >= 2: its
  /// widened frontier is justified by splitting the work, and routing a
  /// dense clique to a one-worker "parallel" run would trade GOO's
  /// sub-millisecond fallback for seconds of exact enumeration. Sessions
  /// and services wire this from OptimizerOptions::parallel_threads /
  /// ServiceOptions::parallel_threads; dphyp-par stays selectable by name
  /// at any thread count.
  int parallel_workers_hint = 0;
};

/// True when exhaustive DP is feasible for this shape under `policy`:
/// chains/cycles always are (quadratic subgraph count); anything else must
/// stay inside the node/degree frontier and, when dense, inside the
/// stricter dense ceiling (csg-cmp pairs grow like 3^n on cliques).
bool ExactDpFeasible(const GraphShape& shape, const DispatchPolicy& policy);

/// One enumerator's claim on a query during adaptive dispatch: the highest
/// finite preference wins. A default-constructed bid (-inf) means "never
/// auto-route to me" — the enumerator stays selectable by name.
struct DispatchBid {
  double preference = -std::numeric_limits<double>::infinity();
  const char* reason = "no bid";

  bool Valid() const {
    return preference > -std::numeric_limits<double>::infinity();
  }
};

/// Everything one optimization needs, bundled so sessions, services, and
/// tools hand a single value through the stack. `graph`, `estimator`, and
/// `cost_model` must outlive the call and be non-null.
struct OptimizationRequest {
  const Hypergraph* graph = nullptr;
  const CardinalityModel* estimator = nullptr;
  const CostModel* cost_model = nullptr;
  OptimizerOptions options;

  /// Session-level fields (ignored by Enumerator::Run itself):
  /// enumerator to use, by registry name (case-insensitive); empty means
  /// adaptive dispatch over the registry.
  std::string enumerator;
  /// Wall-clock budget for the exact attempt; <= 0 means unbounded. When an
  /// exact enumerator exceeds it the session aborts the run and transparently
  /// serves the GOO fallback (stats.aborted records the event).
  double deadline_ms = 0.0;
  DispatchPolicy policy;
};

/// Abstract enumeration strategy. Implementations are stateless — all
/// per-run state lives in the OptimizerContext/OptimizerWorkspace — so one
/// registered instance serves concurrent runs.
class Enumerator {
 public:
  virtual ~Enumerator() = default;

  /// Registry name (a static string, e.g. "DPhyp"). Lookup is
  /// case-insensitive.
  virtual const char* Name() const = 0;

  /// True when this strategy can optimize `graph` at all (e.g. DPccp
  /// refuses complex hyperedges). Dispatch and sessions check this before
  /// Run; running an un-handled graph returns a failed result.
  virtual bool CanHandle(const Hypergraph& graph) const = 0;

  /// True for exhaustive strategies whose plan is optimal under the cost
  /// model; false for heuristics (GOO). The agreement test suite sweeps
  /// exact registry entries, so a new exact enumerator is verified against
  /// DPhyp by registering it.
  virtual bool Exact() const { return true; }

  /// Adaptive-dispatch claim for a query of this shape. The default never
  /// bids: an enumerator that is registered but not routed (DPsize, the
  /// top-down pair) remains selectable by name.
  virtual DispatchBid Bid(const GraphShape& shape,
                          const DispatchPolicy& policy) const {
    (void)shape;
    (void)policy;
    return {};
  }

  /// One-line summary of when this enumerator auto-bids under the default
  /// DispatchPolicy (node/degree frontier, density ceilings), so tooling
  /// (`qdl_tool --list-algos`) can show the routing table without reading
  /// dispatch code. A static string; the default describes the non-bidding
  /// enumerators.
  virtual const char* FrontierSummary() const {
    return "never auto-bids; selectable by name only";
  }

  /// Runs the strategy on `workspace` (table, neighborhood memo, GOO
  /// scratch all come from there; the result *borrows* the workspace's
  /// table and stays valid until the workspace's next run). Honours
  /// request.options including the cancellation token — on a fired token
  /// exact strategies return an aborted result (stats.aborted).
  virtual OptimizeResult Run(const OptimizationRequest& request,
                             OptimizerWorkspace& workspace) const = 0;

  /// Convenience for one-shot callers: runs on a private workspace and
  /// returns a self-contained result (owned table), the lifetime contract
  /// of the original free functions.
  OptimizeResult Optimize(const Hypergraph& graph,
                          const CardinalityModel& est,
                          const CostModel& cost_model,
                          const OptimizerOptions& options = {}) const;
};

/// The global enumerator registry. The built-in strategies are
/// registered on first access; tests and extensions may Register/Unregister
/// additional ones at runtime. Thread-safe.
class EnumeratorRegistry {
 public:
  /// The process-wide registry, with built-ins already registered.
  static EnumeratorRegistry& Global();

  /// Registers `enumerator` under its Name(). A later registration with an
  /// existing name replaces the earlier one (last wins) — the mechanism
  /// tests use to shadow a built-in with a stub.
  void Register(std::unique_ptr<Enumerator> enumerator);

  /// Removes the enumerator named `name`; true when something was removed.
  bool Unregister(std::string_view name);

  /// Case-insensitive lookup; structured error listing the registered
  /// names when `name` is unknown.
  Result<const Enumerator*> Find(std::string_view name) const;
  const Enumerator* FindOrNull(std::string_view name) const;

  /// Snapshot of the registered enumerators, in registration order.
  /// Entries stay valid until Unregister/Register-replace; callers holding
  /// a snapshot across registration changes (tests only) must re-list.
  std::vector<const Enumerator*> All() const;

 private:
  EnumeratorRegistry();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Registry-driven one-shot optimization: resolves `name` (structured error
/// on unknown names or graphs the enumerator cannot handle) and runs it.
/// With a workspace the result borrows its table (valid until the
/// workspace's next run); without one it is self-contained.
Result<OptimizeResult> OptimizeByName(std::string_view name,
                                      const Hypergraph& graph,
                                      const CardinalityModel& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options = {},
                                      OptimizerWorkspace* workspace = nullptr);

/// Convenience overload with default estimator and cost model.
Result<OptimizeResult> OptimizeByName(std::string_view name,
                                      const Hypergraph& graph);

}  // namespace dphyp

#endif  // DPHYP_CORE_ENUMERATOR_H_
