// Reusable per-run optimizer state, pooled across queries.
//
// Every optimization run needs the same large, short-lived structures: the
// DP table (arena + slot array), the DPhyp neighborhood memo, a small seed
// table for the GOO pass that bootstraps branch-and-bound pruning, and
// GOO's own scratch vectors. Allocating them afresh per query is pure
// overhead in a serving loop — the shapes repeat, so the capacities
// converge after a handful of queries. An OptimizerWorkspace owns all of
// them and Reset()s instead of reallocating (see Arena::Rewind,
// DpTable::Reset, NeighborhoodCache::Reset), so a pooled workspace serves
// steady-state traffic with zero large allocations.
//
// A workspace is single-threaded state: one optimization run at a time.
// PlanService keeps a WorkspacePool and leases one workspace per in-flight
// query; standalone callers can hand one to the Optimize* free functions
// or let an OptimizationSession own a private one. The workspace is
// templated on the node-set type (`OptimizerWorkspace` is the one-word
// alias); the wide routing path owns BasicOptimizerWorkspace<WideNodeSet>
// instances directly.
#ifndef DPHYP_CORE_WORKSPACE_H_
#define DPHYP_CORE_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/neighborhood_cache.h"
#include "plan/dp_table.h"
#include "util/node_set.h"

namespace dphyp {

/// GOO's per-run scratch: the component list, the candidate-merge buffer,
/// and the memo of per-pair join cardinalities. Reused across runs so the
/// greedy fallback stops allocating once its capacities have converged.
template <typename NS>
struct BasicGooScratch {
  struct Candidate {
    int i = 0;
    int j = 0;
    double out_card = 0.0;
  };
  struct PairHash {
    size_t operator()(const std::pair<NS, NS>& p) const {
      // Same mixing idea as HashNodeSet: multiply-shift over both halves.
      uint64_t h = HashNodeSet(p.first) * 0x9E3779B97F4A7C15ull;
      h ^= HashNodeSet(p.second) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  std::vector<NS> components;
  std::vector<Candidate> candidates;
  /// (numerically smaller set, larger set) -> estimated join cardinality;
  /// NaN marks a disconnected pair. unordered_map keeps its bucket array
  /// across clear(), so reuse at least spares the rehash churn.
  std::unordered_map<std::pair<NS, NS>, double, PairHash> pair_cardinality;

  void Clear() {
    components.clear();
    candidates.clear();
    pair_cardinality.clear();
  }
};

using GooScratch = BasicGooScratch<NodeSet>;

/// Owns every large allocation an optimization run needs. Not thread-safe;
/// lease one per in-flight query (see WorkspacePool).
template <typename NS>
class BasicOptimizerWorkspace {
 public:
  BasicOptimizerWorkspace() = default;
  BasicOptimizerWorkspace(const BasicOptimizerWorkspace&) = delete;
  BasicOptimizerWorkspace& operator=(const BasicOptimizerWorkspace&) = delete;

  /// The main DP table. OptimizerContext Reset()s it at the start of every
  /// run, which invalidates all entry pointers from the previous run —
  /// results borrowed from this workspace are valid only until the next run.
  BasicDpTable<NS>& table() { return table_; }

  /// A second, small table for the GOO pass that seeds the pruning bound:
  /// it runs *nested inside* an exact run's setup, while `table()` is
  /// already claimed by the outer OptimizerContext.
  BasicDpTable<NS>& seed_table() { return seed_table_; }

  /// The DPhyp/Sec.-2.3 neighborhood memo, rebound (and emptied, capacity
  /// retained) to `graph` on every call.
  BasicNeighborhoodCache<NS>& neighborhood(const BasicHypergraph<NS>& graph) {
    if (nbh_.has_value()) {
      nbh_->Reset(graph);
    } else {
      nbh_.emplace(graph);
    }
    return *nbh_;
  }

  BasicGooScratch<NS>& goo() { return goo_; }

  /// Moves the main table out (e.g. to hand a detached, caller-owned table
  /// to an OptimizeResult that must outlive this workspace) and leaves a
  /// fresh empty table behind.
  BasicDpTable<NS> DetachTable() {
    BasicDpTable<NS> detached = std::move(table_);
    table_ = BasicDpTable<NS>();
    return detached;
  }

  /// Per-thread scratch workspaces for intra-query parallel enumeration:
  /// worker `i` of a parallel run gets its own neighborhood memo, discovery
  /// buffer, and tables, all retained here across queries so pooled warm
  /// serving stays free of large allocations whatever the thread count.
  /// Grows to the peak thread count ever requested, then stops allocating.
  /// Call from the coordinating thread *before* workers start (growth is
  /// not synchronized); each worker then uses only its own entry.
  BasicOptimizerWorkspace& ThreadScratch(size_t i) {
    while (thread_scratch_.size() <= i) {
      thread_scratch_.push_back(std::make_unique<BasicOptimizerWorkspace>());
    }
    return *thread_scratch_[i];
  }
  size_t thread_scratch_count() const { return thread_scratch_.size(); }

  /// Reusable node-set buffer (cleared per use, capacity retained). The
  /// parallel structure pass uses each ThreadScratch child's buffer for
  /// its worker's discovered connected subgraphs and the parent
  /// workspace's buffer for the sorted merge of all of them.
  std::vector<NS>& scratch_sets() { return scratch_sets_; }

  /// Memoized Def-3 connectivity verdicts (node set -> connected) for the
  /// parallel structure pass on complex-edge graphs. Cleared per run
  /// (verdicts are graph-specific); the bucket array's capacity is
  /// retained, like every other scratch here.
  std::unordered_map<NS, bool, NodeSetHasher>& connectivity_memo() {
    return connectivity_memo_;
  }

  /// Total runs served through this workspace (diagnostics for reuse tests).
  uint64_t runs() const { return runs_; }
  void CountRun() { ++runs_; }

 private:
  BasicDpTable<NS> table_{64};
  BasicDpTable<NS> seed_table_{64};
  std::optional<BasicNeighborhoodCache<NS>> nbh_;
  BasicGooScratch<NS> goo_;
  std::vector<std::unique_ptr<BasicOptimizerWorkspace>> thread_scratch_;
  std::vector<NS> scratch_sets_;
  std::unordered_map<NS, bool, NodeSetHasher> connectivity_memo_;
  uint64_t runs_ = 0;
};

using OptimizerWorkspace = BasicOptimizerWorkspace<NodeSet>;
using WideOptimizerWorkspace = BasicOptimizerWorkspace<WideNodeSet>;

/// A mutex-guarded free list of workspaces. Acquire() pops an idle
/// workspace (or creates one — the pool grows to the peak concurrency and
/// then stops allocating); the returned lease gives it back on destruction.
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<OptimizerWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease() {
      if (ws_ != nullptr) pool_->Release(std::move(ws_));
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    OptimizerWorkspace& operator*() { return *ws_; }
    OptimizerWorkspace* operator->() { return ws_.get(); }
    OptimizerWorkspace* get() { return ws_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<OptimizerWorkspace> ws_;
  };

  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        std::unique_ptr<OptimizerWorkspace> ws = std::move(idle_.back());
        idle_.pop_back();
        return Lease(this, std::move(ws));
      }
      ++created_;
    }
    return Lease(this, std::make_unique<OptimizerWorkspace>());
  }

  /// Workspaces ever created (== peak concurrency once warmed up).
  size_t created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return created_;
  }
  size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }

 private:
  void Release(std::unique_ptr<OptimizerWorkspace> ws) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(ws));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<OptimizerWorkspace>> idle_;
  size_t created_ = 0;
};

}  // namespace dphyp

#endif  // DPHYP_CORE_WORKSPACE_H_
