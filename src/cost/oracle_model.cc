#include "cost/oracle_model.h"

namespace dphyp {

OracleCardinalityModel::OracleCardinalityModel(
    const Hypergraph& graph, const CardinalityFeedback& actuals)
    : CardinalityEstimator(graph),
      actuals_(&actuals),
      feedback_version_(actuals.version()) {}

double OracleCardinalityModel::EstimateBase(int node) const {
  double actual = 0.0;
  if (actuals_->Lookup(NodeSet::Single(node), &actual)) return actual;
  return CardinalityEstimator::EstimateBase(node);
}

double OracleCardinalityModel::EstimateClass(NodeSet S) const {
  double actual = 0.0;
  if (actuals_->Lookup(S, &actual)) return actual;
  return CardinalityEstimator::EstimateClass(S);
}

uint64_t OracleCardinalityModel::Fingerprint() const {
  uint64_t h = HashModelName("oracle");
  h ^= feedback_version_ * 0x9E3779B97F4A7C15ull;
  return h;
}

}  // namespace dphyp
