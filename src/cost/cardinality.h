// The pluggable cardinality-estimation interface and its default
// (product-form) implementation.
//
// The paper's DP variants optimize against an abstract cost() over
// estimated cardinalities; CardinalityModel is that abstraction's
// estimation half. Every enumerator consumes the interface — never a
// concrete estimator — so the statistics source is swappable per query:
// the product-form default, the catalog-stats-derived model
// (cost/stats_model.h), or the executor-fed true-cardinality oracle
// (cost/oracle_model.h). Models are registered by name in
// CardinalityModelRegistry (cost/model_registry.h).
//
// The interface and the product model are templated on the node-set type:
// `CardinalityModel` (= BasicCardinalityModel<NodeSet>) is what the
// registry, the stats/oracle models, and all narrow enumerators use; the
// wide (>64 relation) path instantiates the same product model at
// WideNodeSet/HugeNodeSet.
//
// Contract: EstimateClass must be a pure function of the plan class S —
// independent of the join order used to reach S — so Bellman's principle
// holds and all exact DP variants find the same optimum. The product and
// stats models are immutable after construction; the oracle serves one
// stored value per class and keeps the contract only while its feedback
// store is not mutated during a run (see cost/oracle_model.h).
#ifndef DPHYP_COST_CARDINALITY_H_
#define DPHYP_COST_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "catalog/query_spec.h"
#include "hypergraph/hypergraph.h"
#include "util/node_set.h"

namespace dphyp {

/// Abstract estimation strategy. Implementations are immutable after
/// construction (one instance may serve a whole optimization run) and are
/// constructed per query graph — see CardinalityModelRegistry for the
/// name-driven factory.
template <typename NS>
class BasicCardinalityModel {
 public:
  virtual ~BasicCardinalityModel() = default;

  /// Estimated base cardinality of the single relation `node` (the leaf
  /// plans the DP starts from).
  virtual double EstimateBase(int node) const = 0;

  /// Estimated cardinality of the (connected) plan class S. Must depend on
  /// S only, never on the join order that reached it.
  virtual double EstimateClass(NS S) const = 0;

  /// The selectivity this model assigns to a predicate: the explicit value
  /// when the predicate carries one; a model-specific derivation (catalog
  /// stats, feedback) when it was omitted. The base implementation returns
  /// the stored value (explicit or the QuerySpec default).
  virtual double DeriveSelectivity(const Predicate& pred) const {
    return pred.selectivity;
  }

  /// Registry name, e.g. "product". Lookup is case-insensitive.
  virtual const char* name() const = 0;

  /// Digest of everything that can change this model's estimates beyond
  /// the query graph itself (model identity, catalog stats version,
  /// feedback epoch). The plan cache mixes it into its keys so plans
  /// estimated under different models — or stale statistics — never
  /// substitute for each other.
  virtual uint64_t Fingerprint() const = 0;

  /// Historical spelling of EstimateClass; kept so pre-redesign call sites
  /// read unchanged.
  double Estimate(NS S) const { return EstimateClass(S); }
};

using CardinalityModel = BasicCardinalityModel<NodeSet>;

/// FNV-1a over a string, the shared model-fingerprint seed.
uint64_t HashModelName(const char* name);

/// The default model: canonical product form over factors fixed at
/// construction,
///     card(S) = Π_{i ∈ S} card(i) × Π_{edge e, nodes(e) ⊆ S} factor(e)
/// which is join-order independent by construction (see cost/factors.h).
/// Registered as "product"; all registered enumerators are bit-identical under
/// it to the pre-interface code (tests/test_estimation.cc).
template <typename NS>
class BasicCardinalityEstimator : public BasicCardinalityModel<NS> {
 public:
  explicit BasicCardinalityEstimator(const BasicHypergraph<NS>& graph);

  double EstimateBase(int node) const override { return base_[node]; }
  double EstimateClass(NS S) const override;
  const char* name() const override { return "product"; }
  uint64_t Fingerprint() const override { return HashModelName("product"); }

  /// Base cardinality of a single relation.
  double BaseCardinality(int node) const { return base_[node]; }

  /// The multiplicative factor assigned to an edge.
  double EdgeFactor(int edge_id) const { return factors_[edge_id]; }

 protected:
  /// Subclass hook (stats/oracle models): the same product-form machinery
  /// over substituted base cardinalities and per-edge selectivities.
  BasicCardinalityEstimator(const BasicHypergraph<NS>& graph,
                            std::vector<double> base,
                            const std::vector<double>& edge_selectivities);

  const BasicHypergraph<NS>& graph() const { return *graph_; }

 private:
  void BuildFactors(const std::vector<double>& edge_selectivities);

  const BasicHypergraph<NS>* graph_;
  std::vector<double> base_;
  std::vector<double> factors_;
};

using CardinalityEstimator = BasicCardinalityEstimator<NodeSet>;
using WideCardinalityEstimator = BasicCardinalityEstimator<WideNodeSet>;

}  // namespace dphyp

#endif  // DPHYP_COST_CARDINALITY_H_
