// Product-form cardinality estimator over a hypergraph.
#ifndef DPHYP_COST_CARDINALITY_H_
#define DPHYP_COST_CARDINALITY_H_

#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/node_set.h"

namespace dphyp {

/// Estimates |result(S)| for plan classes S. Factors are fixed at
/// construction, so estimates are join-order independent (see
/// cost/factors.h for why that matters).
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Hypergraph& graph);

  /// Estimated cardinality of the (connected) class S.
  double Estimate(NodeSet S) const;

  /// Base cardinality of a single relation.
  double BaseCardinality(int node) const { return base_[node]; }

  /// The multiplicative factor assigned to an edge.
  double EdgeFactor(int edge_id) const { return factors_[edge_id]; }

 private:
  const Hypergraph* graph_;
  std::vector<double> base_;
  std::vector<double> factors_;
};

}  // namespace dphyp

#endif  // DPHYP_COST_CARDINALITY_H_
