// The CardinalityModel registry: estimation strategies as named, registered
// values — the estimation-side mirror of core/enumerator.h's
// EnumeratorRegistry. Models are constructed per query (they bind to a
// graph and its statistics context), so the registry holds *factories*;
// `CreateCardinalityModel("stats", inputs)` is the one call every layer
// (service, session, qdl_tool, benches) resolves a model through. Adding a
// model to the system is one Register — it becomes selectable by name
// everywhere, with structured errors for unknown names or missing inputs.
#ifndef DPHYP_COST_MODEL_REGISTRY_H_
#define DPHYP_COST_MODEL_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "cost/cardinality.h"
#include "cost/feedback.h"
#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace dphyp {

/// The default model name ("product", the pre-redesign behavior).
inline constexpr const char* kDefaultCardinalityModel = "product";

/// Everything a model factory may bind to. `graph` is mandatory; the rest
/// is per-model: "stats" and "hist" want `spec` (and a catalog — explicit
/// here or bound to the spec), "oracle" requires `feedback`. All referenced
/// objects must outlive the created model.
struct CardinalityModelInputs {
  const Hypergraph* graph = nullptr;
  const QuerySpec* spec = nullptr;
  const Catalog* catalog = nullptr;
  const CardinalityFeedback* feedback = nullptr;
};

/// Constructs one model family. Stateless; one registered instance serves
/// concurrent Create calls.
class CardinalityModelFactory {
 public:
  virtual ~CardinalityModelFactory() = default;

  /// Registry name (a static string). Lookup is case-insensitive.
  virtual const char* Name() const = 0;

  /// Builds a model bound to `inputs`, or a structured error when a
  /// required input is missing.
  virtual Result<std::unique_ptr<CardinalityModel>> Create(
      const CardinalityModelInputs& inputs) const = 0;
};

/// Thread-safe global registry with the four built-ins ("product",
/// "stats", "hist", "oracle") pre-registered.
class CardinalityModelRegistry {
 public:
  static CardinalityModelRegistry& Global();

  /// Registers `factory` under its Name(); last registration wins (the
  /// stub-shadowing mechanism tests use).
  void Register(std::unique_ptr<CardinalityModelFactory> factory);

  /// Removes the factory named `name`; true when something was removed.
  bool Unregister(std::string_view name);

  /// Resolves `name` (empty means the default model) and creates a model;
  /// structured error listing registered names when `name` is unknown.
  Result<std::unique_ptr<CardinalityModel>> Create(
      std::string_view name, const CardinalityModelInputs& inputs) const;

  /// Registered names, in registration order.
  std::vector<std::string> Names() const;

 private:
  CardinalityModelRegistry();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience for the common call shape.
inline Result<std::unique_ptr<CardinalityModel>> CreateCardinalityModel(
    std::string_view name, const CardinalityModelInputs& inputs) {
  return CardinalityModelRegistry::Global().Create(name, inputs);
}

}  // namespace dphyp

#endif  // DPHYP_COST_MODEL_REGISTRY_H_
