// Operator-specific cardinality factors.
//
// The estimator uses canonical product form
//     card(S) = Π_{i ∈ S} card(i) × Π_{edge e, nodes(e) ⊆ S} factor(e)
// which is independent of the join order used to reach S, so Bellman's
// principle holds exactly and all DP variants (DPhyp, DPsize, DPsub, DPccp,
// brute force) provably find the same optimum — a property the test suite
// checks. Non-inner operators are folded into the product by computing a
// per-edge factor from the operator, the predicate selectivity, and the
// base cardinalities of the edge's two sides (fixed at estimator build
// time). See DESIGN.md §2 "Canonical cardinality".
#ifndef DPHYP_COST_FACTORS_H_
#define DPHYP_COST_FACTORS_H_

#include "catalog/operator_type.h"

namespace dphyp {

/// Smallest fraction of left-side tuples an antijoin is assumed to keep,
/// so estimates never collapse to zero.
inline constexpr double kMinAntijoinKeep = 0.05;

/// Computes the multiplicative cardinality factor of an edge.
///
/// `selectivity` is the predicate selectivity; `left_card`/`right_card` are
/// the products of base cardinalities of the edge's left/right hypernodes
/// (including flexible nodes counted on the side they were assigned for
/// estimation — callers split w evenly).
///
/// Derivations (L = left_card, R = right_card, s = selectivity):
///   join:        |L ⋈ R|  = L·R·s                  -> s
///   semijoin:    |L ⋉ R|  ≈ L·min(1, s·R)          -> min(1, s·R)/R
///   antijoin:    |L ▷ R|  ≈ L·max(1-s·R, ε)        -> max(1-s·R, ε)/R
///   left outer:  |L ⟕ R|  = max(L·R·s, L)          -> max(s, 1/R)
///   full outer:  ≈ inner + unmatched both sides     -> s + 1/R + 1/L
///   nestjoin:    |L T R|  = L                       -> 1/R
/// Dependent variants estimate like their regular counterparts.
double EdgeCardinalityFactor(OpType op, double selectivity, double left_card,
                             double right_card);

}  // namespace dphyp

#endif  // DPHYP_COST_FACTORS_H_
