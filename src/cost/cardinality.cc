#include "cost/cardinality.h"

#include "cost/factors.h"

namespace dphyp {

CardinalityEstimator::CardinalityEstimator(const Hypergraph& graph)
    : graph_(&graph) {
  base_.reserve(graph.NumNodes());
  for (int i = 0; i < graph.NumNodes(); ++i) {
    base_.push_back(graph.node(i).cardinality);
  }
  factors_.reserve(graph.NumEdges());
  for (int i = 0; i < graph.NumEdges(); ++i) {
    const Hyperedge& e = graph.edge(i);
    // Flexible (either-side) nodes are split between the sides only at plan
    // time; for factor derivation we charge them to the right side, which
    // keeps the factor deterministic.
    double left_card = 1.0;
    for (int v : e.left) left_card *= base_[v];
    double right_card = 1.0;
    for (int v : e.right | e.flex) right_card *= base_[v];
    factors_.push_back(
        EdgeCardinalityFactor(e.op, e.selectivity, left_card, right_card));
  }
}

double CardinalityEstimator::Estimate(NodeSet S) const {
  double card = 1.0;
  for (int v : S) card *= base_[v];
  for (int i = 0; i < graph_->NumEdges(); ++i) {
    const Hyperedge& e = graph_->edge(i);
    if (e.AllNodes().IsSubsetOf(S)) card *= factors_[i];
  }
  return card;
}

}  // namespace dphyp
