#include "cost/cardinality.h"

#include <utility>

#include "cost/factors.h"

namespace dphyp {

uint64_t HashModelName(const char* name) {
  // FNV-1a; stable across processes so fingerprints are comparable in logs.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

template <typename NS>
std::vector<double> GraphBaseCards(const BasicHypergraph<NS>& graph) {
  std::vector<double> base;
  base.reserve(graph.NumNodes());
  for (int i = 0; i < graph.NumNodes(); ++i) {
    base.push_back(graph.node(i).cardinality);
  }
  return base;
}

template <typename NS>
std::vector<double> GraphEdgeSelectivities(const BasicHypergraph<NS>& graph) {
  std::vector<double> sels;
  sels.reserve(graph.NumEdges());
  for (int i = 0; i < graph.NumEdges(); ++i) {
    sels.push_back(graph.edge(i).selectivity);
  }
  return sels;
}

}  // namespace

template <typename NS>
BasicCardinalityEstimator<NS>::BasicCardinalityEstimator(
    const BasicHypergraph<NS>& graph)
    : BasicCardinalityEstimator(graph, GraphBaseCards(graph),
                                GraphEdgeSelectivities(graph)) {}

template <typename NS>
BasicCardinalityEstimator<NS>::BasicCardinalityEstimator(
    const BasicHypergraph<NS>& graph, std::vector<double> base,
    const std::vector<double>& edge_selectivities)
    : graph_(&graph), base_(std::move(base)) {
  BuildFactors(edge_selectivities);
}

template <typename NS>
void BasicCardinalityEstimator<NS>::BuildFactors(
    const std::vector<double>& edge_selectivities) {
  factors_.reserve(graph_->NumEdges());
  for (int i = 0; i < graph_->NumEdges(); ++i) {
    const BasicHyperedge<NS>& e = graph_->edge(i);
    // Flexible (either-side) nodes are split between the sides only at plan
    // time; for factor derivation we charge them to the right side, which
    // keeps the factor deterministic.
    double left_card = 1.0;
    for (int v : e.left) left_card *= base_[v];
    double right_card = 1.0;
    for (int v : e.right | e.flex) right_card *= base_[v];
    factors_.push_back(EdgeCardinalityFactor(e.op, edge_selectivities[i],
                                             left_card, right_card));
  }
}

template <typename NS>
double BasicCardinalityEstimator<NS>::EstimateClass(NS S) const {
  double card = 1.0;
  for (int v : S) card *= base_[v];
  for (int i = 0; i < graph_->NumEdges(); ++i) {
    const BasicHyperedge<NS>& e = graph_->edge(i);
    if (e.AllNodes().IsSubsetOf(S)) card *= factors_[i];
  }
  return card;
}

template class BasicCardinalityEstimator<NodeSet>;
template class BasicCardinalityEstimator<WideNodeSet>;
template class BasicCardinalityEstimator<HugeNodeSet>;

}  // namespace dphyp
