// Execution feedback for cardinality estimation.
//
// A CardinalityFeedback store maps plan classes (NodeSets over one query's
// relation numbering) to the row counts the executor actually observed.
// Three consumers close the estimation loop:
//   * the oracle model (cost/oracle_model.h) serves observed classes
//     verbatim — the ablation upper bound on estimation quality,
//   * q-error reports (cost/qerror.h) grade a served plan's estimates
//     against the observations,
//   * ApplyFeedbackToCatalog folds observed base-table cardinalities back
//     into the statistics catalog, bumping its stats_version so cached
//     plans estimated under the stale stats are invalidated.
//
// Scope: class keys are NodeSets, so a store is meaningful only for the
// query (or identically-numbered query family) whose execution filled it.
//
// Thread-safety: Record/Lookup are mutex-guarded (a serving layer may share
// one store across worker threads); `version()` is an atomic read.
#ifndef DPHYP_COST_FEEDBACK_H_
#define DPHYP_COST_FEEDBACK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "util/node_set.h"

namespace dphyp {

/// Observed per-class cardinalities of executed plans.
class CardinalityFeedback {
 public:
  CardinalityFeedback() = default;
  CardinalityFeedback(const CardinalityFeedback&) = delete;
  CardinalityFeedback& operator=(const CardinalityFeedback&) = delete;

  /// Records the observed row count of `plan_class` (last write wins) and
  /// bumps the version.
  void Record(NodeSet plan_class, double actual_rows);

  /// True when `plan_class` has an observation; copies it into `*out`
  /// (which may be null to probe).
  bool Lookup(NodeSet plan_class, double* out) const;

  /// Number of observed classes.
  size_t size() const;

  /// Monotone counter bumped per Record; the oracle model mixes it into
  /// its fingerprint so cached plans notice new observations.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  void Clear();

  /// Snapshot of all observations (class bits, rows), unordered.
  std::vector<std::pair<uint64_t, double>> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, double> observed_;
  std::atomic<uint64_t> version_{0};
};

/// Folds observed base-relation cardinalities (singleton classes) into
/// `catalog` as refreshed row counts, matching relations by name through
/// `spec`. Returns the number of tables refreshed; any refresh bumps the
/// catalog's stats_version (the serving layer's cache-invalidation signal).
int ApplyFeedbackToCatalog(const CardinalityFeedback& feedback,
                           const QuerySpec& spec, Catalog* catalog);

}  // namespace dphyp

#endif  // DPHYP_COST_FEEDBACK_H_
