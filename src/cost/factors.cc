#include "cost/factors.h"

#include <algorithm>

#include "util/check.h"

namespace dphyp {

double EdgeCardinalityFactor(OpType op, double selectivity, double left_card,
                             double right_card) {
  DPHYP_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  const double l = std::max(1.0, left_card);
  const double r = std::max(1.0, right_card);
  switch (RegularVariant(op)) {
    case OpType::kJoin:
      return selectivity;
    case OpType::kLeftSemijoin:
      return std::min(1.0, selectivity * r) / r;
    case OpType::kLeftAntijoin:
      return std::max(1.0 - selectivity * r, kMinAntijoinKeep) / r;
    case OpType::kLeftOuterjoin:
      return std::max(selectivity, 1.0 / r);
    case OpType::kFullOuterjoin:
      return selectivity + 1.0 / r + 1.0 / l;
    case OpType::kLeftNestjoin:
      return 1.0 / r;
    default:
      DPHYP_CHECK_MSG(false, "unhandled operator in EdgeCardinalityFactor");
  }
  return selectivity;
}

}  // namespace dphyp
