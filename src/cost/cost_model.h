// Cost models. The paper abstracts costs behind `cost()`; we provide the
// classical C_out model (sum of intermediate-result cardinalities — the
// standard model in the join-ordering literature, including [17]) and a
// simple hash-join model for ablation. Both are of the form
//   cost(S1 op S2) = local(op, |S1|, |S2|, |S|) + cost(S1) + cost(S2)
// with leaf cost 0, so Bellman's principle holds for any of them.
#ifndef DPHYP_COST_COST_MODEL_H_
#define DPHYP_COST_COST_MODEL_H_

#include "catalog/operator_type.h"

namespace dphyp {

/// Inputs describing one side of a candidate join.
struct PlanSide {
  double cost = 0.0;
  double cardinality = 0.0;
};

/// Abstract cost function.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of `left op right` producing `out_card` tuples.
  virtual double OperatorCost(OpType op, const PlanSide& left,
                              const PlanSide& right, double out_card) const = 0;

  /// Whether accumulated-cost branch-and-bound pruning is admissible under
  /// this model. Requires *superadditivity*: OperatorCost(op, l, r, out)
  /// must never be smaller than left.cost + right.cost, for every operator
  /// and either orientation — then a partial plan whose cost exceeds a
  /// known full-plan upper bound can never be a subtree of an optimal plan,
  /// and pruning it cannot change the optimum (see
  /// OptimizerContext::EmitCsgCmp). The *LowerBound defaults below assume
  /// exactly this property.
  virtual bool SupportsPruning() const { return false; }

  /// A lower bound on OperatorCost(op, left, right, out_card) over every
  /// operator and output cardinality, used to discard csg-cmp pairs before
  /// the cardinality estimate and cost evaluation are paid. Only consulted
  /// when SupportsPruning() is true; overrides must stay a true lower bound
  /// or pruning becomes inadmissible.
  virtual double PairLowerBound(const PlanSide& left,
                                const PlanSide& right) const {
    return left.cost + right.cost;
  }

  /// A lower bound on the cost every *full* plan must pay on top of any
  /// strict subplan's accumulated cost. `root_card` is the cardinality of
  /// the full query's result class (identical for all plans under the
  /// product-form estimator). For C_out this is root_card itself: the root
  /// join's output is an intermediate result of every complete plan. This
  /// is what makes branch-and-bound bite — the incumbent is a *full*-plan
  /// cost, so partial plans compete against it minus the completion bound.
  /// Must stay a true lower bound; 0 is always safe.
  virtual double CompletionLowerBound(double root_card) const { return 0.0; }

  /// A lower bound on OperatorCost over every operator and *both*
  /// orientations of the pair, for the known output cardinality `out_card`
  /// (fixed per plan class under the product-form estimator). Used for the
  /// per-class dominance cut: when this bound cannot beat the class's
  /// incumbent cost, the candidate pair is skipped before the connecting-
  /// edge scan. For C_out the bound is the exact cost, so the cut admits
  /// exactly the constructions that improve the class.
  virtual double CandidateLowerBound(const PlanSide& left,
                                     const PlanSide& right,
                                     double out_card) const {
    return left.cost + right.cost;
  }

  virtual const char* name() const = 0;
};

/// C_out: the cost of a plan is the sum of the cardinalities of all
/// intermediate results; leaves are free.
class CoutModel final : public CostModel {
 public:
  double OperatorCost(OpType op, const PlanSide& left, const PlanSide& right,
                      double out_card) const override;
  /// C_out is monotone: cost = out_card + cost(S1) + cost(S2) with
  /// out_card >= 0, so every plan is at least as expensive as each subplan.
  bool SupportsPruning() const override { return true; }
  double CompletionLowerBound(double root_card) const override {
    return root_card;
  }
  double CandidateLowerBound(const PlanSide& left, const PlanSide& right,
                             double out_card) const override {
    // Exact: C_out ignores the operator and orientation — but floating-
    // point addition does not associate, so the two orientations' costs
    // can differ by an ULP. Take the minimum of both summation orders
    // (each mirroring OperatorCost exactly) so the bound never lands above
    // the cheaper orientation and prunes a candidate that would have won.
    const double a = out_card + left.cost + right.cost;
    const double b = out_card + right.cost + left.cost;
    return a < b ? a : b;
  }
  const char* name() const override { return "Cout"; }
};

/// A simple main-memory hash-join model: build on the right input, probe
/// with the left, pay for the output. Dependent operators re-evaluate their
/// right side per left tuple (nested-loop-like), which makes the model
/// prefer converting laterals late — a useful ablation contrast to C_out.
/// SupportsPruning stays false: the dependent-operator cost drops
/// right.cost from the sum (it is scaled by the left cardinality, which may
/// be below one), so the monotonicity pruning relies on does not hold.
class HashJoinModel final : public CostModel {
 public:
  double OperatorCost(OpType op, const PlanSide& left, const PlanSide& right,
                      double out_card) const override;
  const char* name() const override { return "Hash"; }

 private:
  static constexpr double kBuildCostPerTuple = 1.5;
  static constexpr double kProbeCostPerTuple = 1.0;
  static constexpr double kOutputCostPerTuple = 0.5;
};

/// Returns a process-lifetime singleton C_out model (the default used by
/// examples and benchmarks).
const CostModel& DefaultCostModel();

}  // namespace dphyp

#endif  // DPHYP_COST_COST_MODEL_H_
