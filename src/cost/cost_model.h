// Cost models. The paper abstracts costs behind `cost()`; we provide the
// classical C_out model (sum of intermediate-result cardinalities — the
// standard model in the join-ordering literature, including [17]) and a
// simple hash-join model for ablation. Both are of the form
//   cost(S1 op S2) = local(op, |S1|, |S2|, |S|) + cost(S1) + cost(S2)
// with leaf cost 0, so Bellman's principle holds for any of them.
#ifndef DPHYP_COST_COST_MODEL_H_
#define DPHYP_COST_COST_MODEL_H_

#include "catalog/operator_type.h"

namespace dphyp {

/// Inputs describing one side of a candidate join.
struct PlanSide {
  double cost = 0.0;
  double cardinality = 0.0;
};

/// Abstract cost function.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of `left op right` producing `out_card` tuples.
  virtual double OperatorCost(OpType op, const PlanSide& left,
                              const PlanSide& right, double out_card) const = 0;

  virtual const char* name() const = 0;
};

/// C_out: the cost of a plan is the sum of the cardinalities of all
/// intermediate results; leaves are free.
class CoutModel final : public CostModel {
 public:
  double OperatorCost(OpType op, const PlanSide& left, const PlanSide& right,
                      double out_card) const override;
  const char* name() const override { return "Cout"; }
};

/// A simple main-memory hash-join model: build on the right input, probe
/// with the left, pay for the output. Dependent operators re-evaluate their
/// right side per left tuple (nested-loop-like), which makes the model
/// prefer converting laterals late — a useful ablation contrast to C_out.
class HashJoinModel final : public CostModel {
 public:
  double OperatorCost(OpType op, const PlanSide& left, const PlanSide& right,
                      double out_card) const override;
  const char* name() const override { return "Hash"; }

 private:
  static constexpr double kBuildCostPerTuple = 1.5;
  static constexpr double kProbeCostPerTuple = 1.0;
  static constexpr double kOutputCostPerTuple = 0.5;
};

/// Returns a process-lifetime singleton C_out model (the default used by
/// examples and benchmarks).
const CostModel& DefaultCostModel();

}  // namespace dphyp

#endif  // DPHYP_COST_COST_MODEL_H_
