#include "cost/model_registry.h"

#include <cctype>
#include <mutex>

#include "cost/oracle_model.h"
#include "cost/stats_model.h"
#include "stats/hist_model.h"

namespace dphyp {

namespace {

bool NameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class ProductFactory : public CardinalityModelFactory {
 public:
  const char* Name() const override { return "product"; }
  Result<std::unique_ptr<CardinalityModel>> Create(
      const CardinalityModelInputs& inputs) const override {
    if (inputs.graph == nullptr) {
      return Err("model 'product' requires a hypergraph");
    }
    return std::unique_ptr<CardinalityModel>(
        std::make_unique<CardinalityEstimator>(*inputs.graph));
  }
};

class StatsFactory : public CardinalityModelFactory {
 public:
  const char* Name() const override { return "stats"; }
  Result<std::unique_ptr<CardinalityModel>> Create(
      const CardinalityModelInputs& inputs) const override {
    if (inputs.graph == nullptr || inputs.spec == nullptr) {
      return Err("model 'stats' requires a hypergraph and its QuerySpec");
    }
    return std::unique_ptr<CardinalityModel>(
        std::make_unique<StatsCardinalityModel>(*inputs.graph, *inputs.spec,
                                                inputs.catalog));
  }
};

class HistFactory : public CardinalityModelFactory {
 public:
  const char* Name() const override { return "hist"; }
  Result<std::unique_ptr<CardinalityModel>> Create(
      const CardinalityModelInputs& inputs) const override {
    if (inputs.graph == nullptr || inputs.spec == nullptr) {
      return Err("model 'hist' requires a hypergraph and its QuerySpec");
    }
    return std::unique_ptr<CardinalityModel>(
        std::make_unique<HistogramCardinalityModel>(
            *inputs.graph, *inputs.spec, inputs.catalog));
  }
};

class OracleFactory : public CardinalityModelFactory {
 public:
  const char* Name() const override { return "oracle"; }
  Result<std::unique_ptr<CardinalityModel>> Create(
      const CardinalityModelInputs& inputs) const override {
    if (inputs.graph == nullptr) {
      return Err("model 'oracle' requires a hypergraph");
    }
    if (inputs.feedback == nullptr) {
      return Err(
          "model 'oracle' requires an executor-fed CardinalityFeedback "
          "store (run the query with feedback recording first)");
    }
    return std::unique_ptr<CardinalityModel>(
        std::make_unique<OracleCardinalityModel>(*inputs.graph,
                                                 *inputs.feedback));
  }
};

}  // namespace

struct CardinalityModelRegistry::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<CardinalityModelFactory>> entries;
};

CardinalityModelRegistry::CardinalityModelRegistry() : impl_(new Impl) {
  impl_->entries.push_back(std::make_unique<ProductFactory>());
  impl_->entries.push_back(std::make_unique<StatsFactory>());
  impl_->entries.push_back(std::make_unique<HistFactory>());
  impl_->entries.push_back(std::make_unique<OracleFactory>());
}

CardinalityModelRegistry& CardinalityModelRegistry::Global() {
  static CardinalityModelRegistry* registry = new CardinalityModelRegistry();
  return *registry;
}

void CardinalityModelRegistry::Register(
    std::unique_ptr<CardinalityModelFactory> factory) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& existing : impl_->entries) {
    if (NameEquals(existing->Name(), factory->Name())) {
      existing = std::move(factory);  // last registration wins
      return;
    }
  }
  impl_->entries.push_back(std::move(factory));
}

bool CardinalityModelRegistry::Unregister(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto it = impl_->entries.begin(); it != impl_->entries.end(); ++it) {
    if (NameEquals((*it)->Name(), name)) {
      impl_->entries.erase(it);
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<CardinalityModel>> CardinalityModelRegistry::Create(
    std::string_view name, const CardinalityModelInputs& inputs) const {
  if (name.empty()) name = kDefaultCardinalityModel;
  const CardinalityModelFactory* factory = nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& e : impl_->entries) {
      if (NameEquals(e->Name(), name)) {
        factory = e.get();
        break;
      }
    }
  }
  if (factory == nullptr) {
    std::string message = "unknown cardinality model '";
    message.append(name);
    message += "'; registered:";
    for (const std::string& n : Names()) {
      message += ' ';
      message += n;
    }
    return Err(std::move(message));
  }
  return factory->Create(inputs);
}

std::vector<std::string> CardinalityModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->entries.size());
  for (const auto& e : impl_->entries) names.emplace_back(e->Name());
  return names;
}

}  // namespace dphyp
