// The injected true-cardinality oracle ("oracle").
//
// Serves the executor-observed row count for every plan class present in a
// CardinalityFeedback store and falls back to the product-form estimate
// for classes never executed. This is the standard ablation instrument for
// estimation research ("how much of the plan-quality gap is cardinality
// error?"): optimizing under the oracle yields the plan the optimizer
// *would* pick with perfect statistics.
//
// Estimates remain a pure function of the class (one stored value per
// NodeSet), so Bellman's principle — and with it the exact-DP agreement
// guarantees — holds under the oracle exactly as under the product form.
#ifndef DPHYP_COST_ORACLE_MODEL_H_
#define DPHYP_COST_ORACLE_MODEL_H_

#include "cost/cardinality.h"
#include "cost/feedback.h"

namespace dphyp {

class OracleCardinalityModel : public CardinalityEstimator {
 public:
  /// `actuals` must outlive the model; it is read per estimate so
  /// observations recorded between optimizations are served immediately.
  /// The store must NOT be mutated *while an optimization runs* on this
  /// model: a class whose estimate changes mid-enumeration makes subplan
  /// costs order-dependent, voiding the Bellman purity contract of
  /// CardinalityModel::EstimateClass. Record between runs (the
  /// optimize-execute-reoptimize loop), never concurrently with one.
  OracleCardinalityModel(const Hypergraph& graph,
                         const CardinalityFeedback& actuals);

  double EstimateBase(int node) const override;
  double EstimateClass(NodeSet S) const override;
  const char* name() const override { return "oracle"; }

  /// Mixes the feedback version (snapshotted at construction) into the
  /// digest so newly observed classes re-key cached plans.
  uint64_t Fingerprint() const override;

  /// Classes served from feedback vs. product-form fallback, for reports.
  const CardinalityFeedback& actuals() const { return *actuals_; }

 private:
  const CardinalityFeedback* actuals_;
  uint64_t feedback_version_ = 0;
};

}  // namespace dphyp

#endif  // DPHYP_COST_ORACLE_MODEL_H_
