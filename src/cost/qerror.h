// Q-error: the standard metric for cardinality-estimation quality
// (Moerkotte et al., "Preventing Bad Plans by Bounding the Impact of
// Cardinality Estimation Errors"). For an estimate e and an actual a,
//   q = max(e, a) / min(e, a)   (>= 1; 1 is a perfect estimate).
// We smooth both sides by +1 so empty results do not divide by zero:
//   q = (max(e, a) + 1) / (min(e, a) + 1).
//
// ComputePlanQError grades a served plan: every inner plan node carries the
// optimizer's estimated cardinality for its class; the feedback store holds
// what the executor actually produced. OptimizationSession aggregates these
// reports per query (service observability), and the estimation bench
// records per-model medians.
#ifndef DPHYP_COST_QERROR_H_
#define DPHYP_COST_QERROR_H_

#include <cstdint>
#include <string>

#include "cost/feedback.h"
#include "plan/plan_tree.h"

namespace dphyp {

/// Estimation-quality report over the classes of one plan.
struct QErrorStats {
  /// Inner plan classes with an observed actual (graded).
  uint64_t classes = 0;
  /// Inner plan classes the feedback store had no observation for.
  uint64_t missing = 0;
  double max_q = 0.0;
  double median_q = 0.0;
  double mean_q = 0.0;

  std::string ToString() const;
};

/// Smoothed q-error of one (estimate, actual) pair.
double QError(double estimated, double actual);

/// Grades every inner node of `plan` (leaves are exact by construction in
/// the synthetic datasets and carry no estimation decision) against the
/// observed actuals.
QErrorStats ComputePlanQError(const PlanTree& plan,
                              const CardinalityFeedback& actuals);

}  // namespace dphyp

#endif  // DPHYP_COST_QERROR_H_
