#include "cost/feedback.h"

namespace dphyp {

void CardinalityFeedback::Record(NodeSet plan_class, double actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  observed_[plan_class.bits()] = actual_rows;
  version_.fetch_add(1, std::memory_order_acq_rel);
}

bool CardinalityFeedback::Lookup(NodeSet plan_class, double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = observed_.find(plan_class.bits());
  if (it == observed_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

size_t CardinalityFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_.size();
}

void CardinalityFeedback::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  observed_.clear();
  version_.fetch_add(1, std::memory_order_acq_rel);
}

std::vector<std::pair<uint64_t, double>> CardinalityFeedback::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, double>> out;
  out.reserve(observed_.size());
  for (const auto& [bits, rows] : observed_) out.emplace_back(bits, rows);
  return out;
}

int ApplyFeedbackToCatalog(const CardinalityFeedback& feedback,
                           const QuerySpec& spec, Catalog* catalog) {
  int refreshed = 0;
  for (const auto& [bits, rows] : feedback.Snapshot()) {
    NodeSet cls(bits);
    if (!cls.IsSingleton()) continue;
    int rel = cls.Min();
    if (rel >= spec.NumRelations()) continue;
    if (catalog->SetRowCount(spec.relations[rel].name, rows)) ++refreshed;
  }
  return refreshed;
}

}  // namespace dphyp
