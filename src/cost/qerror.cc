#include "cost/qerror.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace dphyp {

double QError(double estimated, double actual) {
  const double hi = std::max(estimated, actual) + 1.0;
  const double lo = std::min(estimated, actual) + 1.0;
  return hi / lo;
}

std::string QErrorStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "classes=%llu missing=%llu q_median=%.3f q_mean=%.3f "
                "q_max=%.3f",
                static_cast<unsigned long long>(classes),
                static_cast<unsigned long long>(missing), median_q, mean_q,
                max_q);
  return buf;
}

namespace {

void Collect(const PlanTreeNode* node, const CardinalityFeedback& actuals,
             std::vector<double>* qs, QErrorStats* stats) {
  if (node == nullptr || node->IsLeaf()) return;
  Collect(node->left, actuals, qs, stats);
  Collect(node->right, actuals, qs, stats);
  double actual = 0.0;
  if (!actuals.Lookup(node->set, &actual)) {
    ++stats->missing;
    return;
  }
  qs->push_back(QError(node->cardinality, actual));
}

}  // namespace

QErrorStats ComputePlanQError(const PlanTree& plan,
                              const CardinalityFeedback& actuals) {
  QErrorStats stats;
  if (!plan.Valid()) return stats;
  std::vector<double> qs;
  Collect(plan.root(), actuals, &qs, &stats);
  stats.classes = qs.size();
  if (qs.empty()) return stats;
  std::sort(qs.begin(), qs.end());
  stats.max_q = qs.back();
  stats.median_q = qs[qs.size() / 2];
  double sum = 0.0;
  for (double q : qs) sum += q;
  stats.mean_q = sum / static_cast<double>(qs.size());
  return stats;
}

}  // namespace dphyp
