// The catalog-stats-derived cardinality model ("stats").
//
// Same product-form machinery as the default estimator, but the inputs are
// read from the statistics catalog instead of the flat values frozen into
// the hypergraph:
//   * base cardinalities come from the catalog's current row counts (so a
//     feedback-driven refresh changes estimates without rebuilding specs),
//   * a predicate that omits its selectivity derives it as 1/max(ndv) over
//     the distinct counts of its referenced columns — the classical
//     equality-join rule PostgreSQL's eqjoinsel and Hyrise's histogram
//     fallback both reduce to; explicit selectivities always win.
// Anything the catalog cannot answer falls back to the spec's values, so
// the model degrades gracefully to the product-form default on unbound
// specs. Degenerate statistics are clamped rather than trusted: base
// cardinalities stay >= 1 (empty tables), distinct counts are clamped to
// [1, row_count] (see EffectiveNdv in stats/selectivity.h), and derived
// selectivities stay within [kMinSelectivity, 1].
#ifndef DPHYP_COST_STATS_MODEL_H_
#define DPHYP_COST_STATS_MODEL_H_

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "cost/cardinality.h"

namespace dphyp {

class StatsCardinalityModel : public CardinalityEstimator {
 public:
  /// `catalog` may be null, in which case the spec's bound catalog
  /// (spec.catalog) is used; with neither, the model is the product-form
  /// default under another name. The catalog must outlive the model.
  StatsCardinalityModel(const Hypergraph& graph, const QuerySpec& spec,
                        const Catalog* catalog = nullptr);

  const char* name() const override { return "stats"; }

  /// Mixes the catalog's stats_version (snapshotted at construction) into
  /// the model digest: a catalog bump re-keys every cached plan.
  uint64_t Fingerprint() const override;

  double DeriveSelectivity(const Predicate& pred) const override;

 private:
  const QuerySpec* spec_;
  const Catalog* catalog_;  // may be null
  uint64_t catalog_version_ = 0;
};

/// The 1/max(ndv) derivation (shared with the model constructor, which
/// cannot call virtuals): selectivity for `pred` under `catalog` stats, or
/// `pred.selectivity` when the predicate is explicit or no referenced
/// column has a known distinct count. Clamped to (0, 1].
double StatsDerivedSelectivity(const Predicate& pred, const QuerySpec& spec,
                               const Catalog* catalog);

/// Catalog lookup for one relation of `spec`: O(1) through the table_id
/// BindCatalog resolved (valid only against the spec's own catalog); name
/// scan otherwise. Shared with the histogram model (stats/hist_model.h).
std::optional<TableStats> CatalogRelationStats(const QuerySpec& spec, int rel,
                                               const Catalog* catalog);

}  // namespace dphyp

#endif  // DPHYP_COST_STATS_MODEL_H_
