#include "cost/cost_model.h"

namespace dphyp {

double CoutModel::OperatorCost(OpType /*op*/, const PlanSide& left,
                               const PlanSide& right, double out_card) const {
  return out_card + left.cost + right.cost;
}

double HashJoinModel::OperatorCost(OpType op, const PlanSide& left,
                                   const PlanSide& right, double out_card) const {
  double local;
  if (IsDependent(op)) {
    // Right side recomputed per left tuple.
    local = left.cardinality * (right.cost + right.cardinality + 1.0) +
            kOutputCostPerTuple * out_card;
    return local + left.cost;
  }
  local = kBuildCostPerTuple * right.cardinality +
          kProbeCostPerTuple * left.cardinality + kOutputCostPerTuple * out_card;
  return local + left.cost + right.cost;
}

const CostModel& DefaultCostModel() {
  static const CoutModel model;
  return model;
}

}  // namespace dphyp
