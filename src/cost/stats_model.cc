#include "cost/stats_model.h"

#include <algorithm>
#include <vector>

#include "stats/selectivity.h"

namespace dphyp {

namespace {

const Catalog* EffectiveCatalog(const QuerySpec& spec, const Catalog* catalog) {
  return catalog != nullptr ? catalog : spec.catalog.get();
}

std::vector<double> StatsBaseCards(const Hypergraph& graph,
                                   const QuerySpec& spec,
                                   const Catalog* catalog) {
  std::vector<double> base;
  base.reserve(graph.NumNodes());
  for (int i = 0; i < graph.NumNodes(); ++i) {
    double card = graph.node(i).cardinality;
    if (auto stats = CatalogRelationStats(spec, i, catalog);
        stats.has_value()) {
      // A catalog entry is authoritative even when it says "empty" — an
      // ANALYZEd zero-row table must not fall back to the spec's guess.
      card = stats->row_count;
    }
    // Degenerate-stats guard: an empty or mis-analyzed table (row count 0,
    // negative, or NaN) must not zero out or poison every product-form
    // estimate above it — clamp to one row.
    if (!(card >= 1.0)) card = 1.0;
    base.push_back(card);
  }
  return base;
}

std::vector<double> StatsEdgeSelectivities(const Hypergraph& graph,
                                           const QuerySpec& spec,
                                           const Catalog* catalog) {
  std::vector<double> sels;
  sels.reserve(graph.NumEdges());
  for (int i = 0; i < graph.NumEdges(); ++i) {
    const Hyperedge& e = graph.edge(i);
    double sel = e.selectivity;
    if (e.predicate_id >= 0 &&
        e.predicate_id < static_cast<int>(spec.predicates.size())) {
      sel = StatsDerivedSelectivity(spec.predicates[e.predicate_id], spec,
                                    catalog);
    }
    sels.push_back(sel);
  }
  return sels;
}

}  // namespace

std::optional<TableStats> CatalogRelationStats(const QuerySpec& spec, int rel,
                                               const Catalog* catalog) {
  if (catalog == nullptr || rel >= spec.NumRelations()) return std::nullopt;
  const RelationInfo& info = spec.relations[rel];
  // The table_id shortcut is only valid against the catalog it was
  // resolved for (the spec's bound one).
  if (info.table_id >= 0 && catalog == spec.catalog.get()) {
    return catalog->TableAt(info.table_id);
  }
  return catalog->FindTable(info.name);
}

double StatsDerivedSelectivity(const Predicate& pred, const QuerySpec& spec,
                               const Catalog* catalog) {
  if (!pred.derive_selectivity || catalog == nullptr) return pred.selectivity;
  double max_ndv = 0.0;
  auto consider = [&](int table, int column) {
    if (table < 0) return;
    std::optional<TableStats> stats = CatalogRelationStats(spec, table, catalog);
    if (!stats.has_value()) return;
    if (column >= 0 && column < static_cast<int>(stats->columns.size())) {
      const double raw = stats->columns[column].distinct_count;
      if (raw <= 0.0) return;  // unknown ndv: no evidence from this column
      // Degenerate-stats guard: a stale or sampled ndv can exceed the row
      // count (or dip below one); clamp into [1, rows] before it drives
      // the 1/max(ndv) rule.
      max_ndv = std::max(max_ndv, EffectiveNdv(raw, stats->row_count));
    }
  };
  if (!pred.refs.empty()) {
    for (const ColumnRef& ref : pred.refs) consider(ref.table, ref.column);
  } else {
    // Payload not filled yet: the default payload references column 0 of
    // every table the predicate touches, so derive from those.
    for (int t : pred.AllTables()) consider(t, 0);
  }
  if (max_ndv <= 0.0) return pred.selectivity;  // no usable stats
  return std::clamp(1.0 / max_ndv, kMinSelectivity, 1.0);
}

StatsCardinalityModel::StatsCardinalityModel(const Hypergraph& graph,
                                             const QuerySpec& spec,
                                             const Catalog* catalog)
    : CardinalityEstimator(
          graph, StatsBaseCards(graph, spec, EffectiveCatalog(spec, catalog)),
          StatsEdgeSelectivities(graph, spec,
                                 EffectiveCatalog(spec, catalog))),
      spec_(&spec),
      catalog_(EffectiveCatalog(spec, catalog)) {
  if (catalog_ != nullptr) catalog_version_ = catalog_->stats_version();
}

uint64_t StatsCardinalityModel::Fingerprint() const {
  uint64_t h = HashModelName("stats");
  h ^= catalog_version_ * 0x9E3779B97F4A7C15ull;
  return h;
}

double StatsCardinalityModel::DeriveSelectivity(const Predicate& pred) const {
  return StatsDerivedSelectivity(pred, *spec_, catalog_);
}

}  // namespace dphyp
