// Admission control with graceful load-shedding for the plan service.
//
// Under overload, an optimizer service must degrade *predictably*: the
// exact-DP routes that make plans good are also the expensive ones, so
// past a soft occupancy watermark new requests are downgraded to the
// polynomial fast path (GOO — the same escape hatch the deadline machinery
// uses), and past a hard watermark requests are rejected outright with a
// structured retry-after error instead of queueing without bound and
// blowing p99 for everyone. A per-tenant token bucket adds fair-share
// isolation: one tenant replaying a dashboard at 10x everyone else's rate
// exhausts its own bucket and is rejected, while the other tenants' traffic
// keeps being served.
//
// The controller is a pure decision + accounting object: it owns the
// in-flight gauge (Admit occupies a slot, Release frees it), the token
// buckets, and the shed/reject counters, but runs nothing itself —
// PlanService::Serve consults it at the front door. Time is injectable so
// the bucket arithmetic is deterministic under test.
#ifndef DPHYP_SERVICE_ADMISSION_H_
#define DPHYP_SERVICE_ADMISSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace dphyp {

/// Watermarks and tenant-isolation knobs. Zero disables each mechanism, so
/// a default-constructed controller admits everything (the pre-admission
/// service behavior).
struct AdmissionOptions {
  /// In-flight request count (including the new request) beyond which
  /// requests that would take an exact-DP route are downgraded to the GOO
  /// fast path. 0 disables downgrading.
  int soft_watermark = 0;
  /// In-flight count beyond which new requests are rejected with a
  /// retry-after error. 0 disables rejection. Must be >= soft_watermark
  /// when both are set.
  int hard_watermark = 0;
  /// Retry hint attached to overload rejections, in milliseconds.
  double retry_after_ms = 25.0;
  /// Per-tenant token refill rate (requests/second); 0 disables tenant
  /// isolation. Size this at roughly the per-tenant fair share of the
  /// service's sustainable throughput.
  double tenant_rate_per_sec = 0.0;
  /// Token bucket capacity — the burst a tenant may spend above its rate.
  double tenant_burst = 16.0;
};

/// The three-way verdict for one request.
enum class AdmissionVerdict { kAdmit, kDegrade, kReject };

struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
  /// Static human-readable justification ("admitted", "soft watermark:
  /// degraded to fast path", ...).
  const char* reason = "admitted";
  /// On kReject: when the client should retry, in milliseconds.
  double retry_after_ms = 0.0;
};

class AdmissionController {
 public:
  /// Monotonic seconds; injectable so token-bucket tests are deterministic.
  using Clock = std::function<double()>;

  /// A default (null) clock uses std::chrono::steady_clock.
  explicit AdmissionController(AdmissionOptions options = {},
                               Clock clock = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decides for one request from `tenant` (empty = the default tenant).
  /// kAdmit and kDegrade occupy an in-flight slot that the caller MUST
  /// Release() when the request completes; kReject occupies nothing.
  AdmissionDecision Admit(std::string_view tenant);

  /// Frees the slot occupied by an admitting (or degrading) Admit.
  void Release();

  /// Current in-flight occupancy — the queue-depth gauge.
  int depth() const;

  /// Lifetime counters; `tenant_rejects` breaks rejections down by tenant
  /// (overload rejections land on the requesting tenant too).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t degraded = 0;
    uint64_t rejected = 0;
    int peak_depth = 0;
    std::map<std::string, uint64_t> tenant_rejects;
  };
  Stats GetStats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    double last_refill_s = 0.0;
  };

  /// Refills `bucket` to `now_s` and takes one token; false when empty.
  bool TakeToken(TokenBucket& bucket, double now_s);

  AdmissionOptions options_;
  Clock clock_;

  mutable std::mutex mu_;
  int depth_ = 0;
  Stats stats_;
  std::map<std::string, TokenBucket, std::less<>> buckets_;
};

/// RAII slot for an admitting decision: releases on destruction unless the
/// decision was a reject (in which case nothing was occupied).
class AdmissionSlot {
 public:
  AdmissionSlot(AdmissionController& controller,
                const AdmissionDecision& decision)
      : controller_(&controller),
        held_(decision.verdict != AdmissionVerdict::kReject) {}
  ~AdmissionSlot() {
    if (held_) controller_->Release();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* controller_;
  bool held_;
};

}  // namespace dphyp

#endif  // DPHYP_SERVICE_ADMISSION_H_
