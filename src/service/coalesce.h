// Single-flight coalescing for the plan cache's miss path.
//
// Bursty production traffic is skewed: when N concurrent clients ask for
// the same hot fingerprint that is not yet cached, running N identical DP
// enumerations wastes N-1 of them — every stage is deterministic, so all N
// would produce the bit-identical plan. The SingleFlightTable is the
// in-flight registry in front of the cache that collapses the stampede:
// the first requester for a (fingerprint, model, stats_version) key
// becomes the *leader* and runs the optimization; every concurrent
// requester for the same key becomes a *follower* and blocks on the
// leader's outcome; completion publishes the serialized plan once, wakes
// all followers, and retires the flight so the next generation (e.g. after
// a stats_version bump re-keys the traffic) starts fresh.
//
// Followers receive the same CachedPlan a cache hit would have served, so
// a coalesced result is rehydrated through the identical MaterializePlan
// path — including the structural consistency check that guards WL-1
// fingerprint collisions. Coalesced hits are a distinct outcome from cache
// hits (ServiceResult::coalesced, counted separately in ServiceStats):
// a cache hit found a finished plan, a coalesced hit waited on a running
// one.
#ifndef DPHYP_SERVICE_COALESCE_H_
#define DPHYP_SERVICE_COALESCE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/fingerprint.h"
#include "service/plan_cache.h"

namespace dphyp {

/// What a flight's leader publishes to its followers: either the
/// serialized winning plan (the exact value a cache hit would serve) or
/// the optimization's structured error.
struct FlightOutcome {
  bool success = false;
  std::string error;
  /// Valid iff success. Carries cost/cardinality/stats of the leader's
  /// run, including stats.aborted when the leader was served the deadline
  /// fallback.
  CachedPlan plan;
  /// Registry name of the cardinality model the leader resolved.
  std::string model;
};

/// Fingerprint-keyed in-flight table. Thread-safe; one instance fronts one
/// PlanService's cache.
class SingleFlightTable {
 public:
  /// Lifetime counters (monotone; snapshot via GetStats).
  struct Stats {
    /// Flights started, i.e. misses that elected a leader.
    uint64_t flights = 0;
    /// Requests that joined an existing flight instead of optimizing.
    uint64_t coalesced = 0;
    /// Flights whose leader published a failure (followers re-optimize).
    uint64_t leader_failures = 0;
  };

  class Ticket;

  SingleFlightTable() = default;
  SingleFlightTable(const SingleFlightTable&) = delete;
  SingleFlightTable& operator=(const SingleFlightTable&) = delete;

  /// Joins the flight for `key`, electing this caller leader when no
  /// flight is in progress. Leaders MUST eventually Publish (the ticket's
  /// destructor publishes a failure otherwise, so followers never hang).
  Ticket Join(const Fingerprint& key);

  Stats GetStats() const;

  /// Flights currently in progress (leaders running).
  int InFlight() const;

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const FlightOutcome> outcome;
  };

  void Publish(const Fingerprint& key, std::shared_ptr<Flight> flight,
               FlightOutcome outcome);

  mutable std::mutex mu_;
  std::unordered_map<Fingerprint, std::shared_ptr<Flight>, FingerprintHasher>
      inflight_;
  Stats stats_;

  friend class Ticket;
};

/// One request's membership in a flight. Move-only; obtained from Join.
class SingleFlightTable::Ticket {
 public:
  Ticket(Ticket&& other) noexcept
      : table_(other.table_),
        key_(other.key_),
        flight_(std::move(other.flight_)),
        leader_(other.leader_),
        published_(other.published_) {
    other.table_ = nullptr;
    other.leader_ = false;
  }
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  Ticket& operator=(Ticket&&) = delete;

  /// Leaders publish exactly once; an unpublished leader ticket publishes
  /// a structured failure at destruction (exception/early-return safety).
  ~Ticket();

  bool leader() const { return leader_; }

  /// Leader only: publishes the outcome, wakes all followers, and retires
  /// the flight so the next request for the key starts a new generation.
  void Publish(FlightOutcome outcome);

  /// Follower only: blocks until the leader publishes, then returns the
  /// shared outcome (never null).
  std::shared_ptr<const FlightOutcome> Wait();

 private:
  friend class SingleFlightTable;
  Ticket(SingleFlightTable* table, const Fingerprint& key,
         std::shared_ptr<Flight> flight, bool leader)
      : table_(table), key_(key), flight_(std::move(flight)),
        leader_(leader) {}

  SingleFlightTable* table_;
  Fingerprint key_;
  std::shared_ptr<Flight> flight_;
  bool leader_ = false;
  bool published_ = false;
};

}  // namespace dphyp

#endif  // DPHYP_SERVICE_COALESCE_H_
