#include "service/session.h"

#include "baselines/goo.h"
#include "service/dispatch.h"
#include "util/cancellation.h"
#include "util/timer.h"

namespace dphyp {

OptimizationSession::OptimizationSession(OptimizerWorkspace* workspace)
    : ws_(workspace) {}

OptimizerWorkspace& OptimizationSession::workspace() {
  if (ws_ != nullptr) return *ws_;
  if (owned_ == nullptr) owned_ = std::make_unique<OptimizerWorkspace>();
  return *owned_;
}

Result<OptimizeResult> OptimizationSession::Optimize(
    const OptimizationRequest& request) {
  if (request.graph == nullptr || request.estimator == nullptr ||
      request.cost_model == nullptr) {
    return Err("OptimizationRequest requires graph, estimator and cost model");
  }

  // Resolve the enumerator: explicit name through the registry, otherwise
  // the shape auction. The auction must see the worker count this request
  // would actually run with, so an explicit parallel_threads setting
  // overrides the policy's hint (the parallel bid declines single-worker
  // "parallel" runs — DispatchPolicy::parallel_workers_hint).
  const Enumerator* enumerator = nullptr;
  if (!request.enumerator.empty()) {
    Result<const Enumerator*> found =
        EnumeratorRegistry::Global().Find(request.enumerator);
    if (!found.ok()) return found.error();
    enumerator = found.value();
    if (!enumerator->CanHandle(*request.graph)) {
      return Err(std::string(enumerator->Name()) +
                 " cannot handle this graph (e.g. complex hyperedges)");
    }
  } else {
    DispatchPolicy policy = request.policy;
    if (request.options.parallel_threads > 0) {
      policy.parallel_workers_hint = request.options.parallel_threads;
    }
    enumerator = ChooseRoute(*request.graph, policy).enumerator;
  }

  OptimizationRequest effective = request;
  if (request.policy.enable_pruning) effective.options.enable_pruning = true;

  // Arm the deadline. The token lives on this frame; enumerators only poll
  // it inside Run, which completes before we return.
  CancellationToken token =
      request.deadline_ms > 0.0
          ? CancellationToken::AfterMillis(request.deadline_ms)
          : CancellationToken();
  if (request.deadline_ms > 0.0) effective.options.cancellation = &token;

  Timer timer;
  OptimizeResult result = enumerator->Run(effective, workspace());
  if (!result.stats.aborted) return result;

  // The exact attempt blew its budget: serve the polynomial fallback on
  // the same workspace (its table Reset discards the partial exact run).
  // GOO strips the token internally, so the fallback always completes.
  const double abort_latency_ms = timer.ElapsedMillis();
  const char* aborted_algorithm = result.stats.aborted_algorithm;
  effective.options.cancellation = nullptr;
  OptimizeResult fallback = OptimizeGoo(*request.graph, *request.estimator,
                                        *request.cost_model, effective.options,
                                        &workspace());
  fallback.stats.aborted = true;
  fallback.stats.aborted_algorithm = aborted_algorithm;
  fallback.stats.abort_latency_ms = abort_latency_ms;
  return fallback;
}

QErrorStats OptimizationSession::ReportQError(
    const OptimizeResult& result, const Hypergraph& graph,
    const CardinalityFeedback& actuals) {
  QErrorStats stats;
  if (!result.success || !result.has_table()) return stats;
  stats = ComputePlanQError(result.ExtractPlan(graph), actuals);
  quality_.missing += stats.missing;
  // Only graded plans enter the aggregate: a plan none of whose classes
  // was ever observed has median_q 0.0 — below the metric's floor of 1 —
  // and folding it in would report impossibly good estimation.
  if (stats.classes == 0) return stats;
  ++quality_.plans;
  quality_.classes += stats.classes;
  if (stats.max_q > quality_.worst_q) quality_.worst_q = stats.max_q;
  // Running mean of per-plan medians.
  quality_.mean_median_q +=
      (stats.median_q - quality_.mean_median_q) /
      static_cast<double>(quality_.plans);
  return stats;
}

Result<OptimizeResult> OptimizationSession::Optimize(const Hypergraph& graph,
                                                     double deadline_ms) {
  CardinalityEstimator est(graph);
  OptimizationRequest request;
  request.graph = &graph;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.deadline_ms = deadline_ms;
  return Optimize(request);
}

}  // namespace dphyp
