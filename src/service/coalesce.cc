#include "service/coalesce.h"

#include <utility>

#include "util/check.h"

namespace dphyp {

SingleFlightTable::Ticket SingleFlightTable::Join(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    ++stats_.coalesced;
    return Ticket(this, key, it->second, /*leader=*/false);
  }
  auto flight = std::make_shared<Flight>();
  inflight_.emplace(key, flight);
  ++stats_.flights;
  return Ticket(this, key, std::move(flight), /*leader=*/true);
}

void SingleFlightTable::Publish(const Fingerprint& key,
                                std::shared_ptr<Flight> flight,
                                FlightOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!outcome.success) ++stats_.leader_failures;
    // Retire the flight first: a request arriving after the publish must
    // start a new generation (it will usually hit the cache the leader
    // just filled; when the leader's plan was uncacheable — aborted or
    // degraded — re-optimizing is the correct fresh-generation behavior).
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->outcome =
        std::make_shared<const FlightOutcome>(std::move(outcome));
    flight->done = true;
  }
  flight->cv.notify_all();
}

SingleFlightTable::Stats SingleFlightTable::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int SingleFlightTable::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(inflight_.size());
}

SingleFlightTable::Ticket::~Ticket() {
  if (leader_ && !published_ && table_ != nullptr) {
    FlightOutcome abandoned;
    abandoned.error =
        "single-flight leader abandoned the optimization without publishing";
    table_->Publish(key_, flight_, std::move(abandoned));
  }
}

void SingleFlightTable::Ticket::Publish(FlightOutcome outcome) {
  DPHYP_DCHECK(leader_);
  DPHYP_DCHECK(!published_);
  published_ = true;
  table_->Publish(key_, flight_, std::move(outcome));
}

std::shared_ptr<const FlightOutcome> SingleFlightTable::Ticket::Wait() {
  DPHYP_DCHECK(!leader_);
  std::unique_lock<std::mutex> lock(flight_->mu);
  flight_->cv.wait(lock, [this] { return flight_->done; });
  return flight_->outcome;
}

}  // namespace dphyp
