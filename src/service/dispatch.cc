#include "service/dispatch.h"

#include <algorithm>

namespace dphyp {

const char* RouteName(Route route) {
  switch (route) {
    case Route::kDphyp:
      return "DPhyp";
    case Route::kDpccp:
      return "DPccp";
    case Route::kDpsub:
      return "DPsub";
    case Route::kGoo:
      return "GOO";
  }
  return "?";
}

DispatchDecision ChooseRoute(const Hypergraph& graph,
                             const DispatchPolicy& policy) {
  const int n = graph.NumNodes();
  if (n <= 2) return {Route::kDpccp, "trivial"};

  bool non_inner = false;
  for (const Hyperedge& e : graph.edges()) {
    if (e.op != OpType::kJoin) {
      non_inner = true;
      break;
    }
  }
  const bool generalized = !graph.complex_edge_ids().empty() || non_inner ||
                           graph.HasDependentLeaves();

  int max_degree = 0;
  for (int v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, graph.SimpleNeighbors(v).Count());
  }

  // Chains and cycles have only O(n^2) connected subgraphs: exact DP is
  // always feasible, whatever n (<= NodeSet::kMaxNodes).
  const bool linear_shape = !generalized && max_degree <= 2;
  if (linear_shape) return {Route::kDpccp, "chain/cycle: quadratic subgraph count"};

  // Feasibility frontier for exhaustive DP: a degree-d hub alone induces
  // 2^d connected subgraphs, and past the node ceiling even sparse shapes
  // can blow up the table.
  const bool exact_feasible =
      n <= policy.exact_node_limit && max_degree <= policy.max_exact_degree;
  if (!exact_feasible) {
    return {Route::kGoo, "past exact-DP feasibility frontier"};
  }

  // Dense graphs hit the csg-cmp pair wall (~3^n on cliques) long before
  // the table-entry wall, so they get a stricter ceiling.
  const double density =
      static_cast<double>(2 * graph.NumEdges()) / (static_cast<double>(n) * (n - 1));
  if (density >= policy.min_dense_density && n > policy.dense_node_limit) {
    return {Route::kGoo, "dense graph: csg-cmp pairs ~3^n"};
  }

  // Generalized features (hyperedges, non-inner operators, laterals) are
  // DPhyp's home turf — the other exact enumerators only stay competitive
  // on plain inner-join graphs.
  if (generalized) return {Route::kDphyp, "hyperedges/non-inner/lateral"};

  if (n <= policy.dpsub_node_limit && density >= policy.min_dpsub_density) {
    return {Route::kDpsub, "small dense graph: 2^n loop wins"};
  }
  return {Route::kDpccp, "simple inner graph"};
}

OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const CardinalityEstimator& est,
                                const CostModel& cost_model,
                                const DispatchPolicy& policy,
                                const OptimizerOptions& options) {
  // Bound-aware routing: exact routes run under a GOO-seeded cost bound
  // (the seeding happens inside OptimizerContext). The route decision
  // itself stays shape-only — the bound changes how much of the search
  // space an exact route visits, never which plan it returns.
  OptimizerOptions effective = options;
  if (policy.enable_pruning) effective.enable_pruning = true;
  switch (ChooseRoute(graph, policy).route) {
    case Route::kDphyp:
      return OptimizeDphyp(graph, est, cost_model, effective);
    case Route::kDpccp:
      return OptimizeDpccp(graph, est, cost_model, effective);
    case Route::kDpsub:
      return OptimizeDpsub(graph, est, cost_model, effective);
    case Route::kGoo:
      return OptimizeGoo(graph, est, cost_model, effective);
  }
  OptimizeResult result;
  result.error = "unknown route";
  return result;
}

OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const DispatchPolicy& policy) {
  CardinalityEstimator est(graph);
  return OptimizeAdaptive(graph, est, DefaultCostModel(), policy);
}

}  // namespace dphyp
