#include "service/dispatch.h"

#include "core/workspace.h"
#include "util/check.h"

namespace dphyp {

DispatchDecision ChooseRoute(const Hypergraph& graph,
                             const DispatchPolicy& policy) {
  const GraphShape shape = AnalyzeGraphShape(graph);
  DispatchDecision best;
  double best_preference = -std::numeric_limits<double>::infinity();
  for (const Enumerator* e : EnumeratorRegistry::Global().All()) {
    if (!e->CanHandle(graph)) continue;
    const DispatchBid bid = e->Bid(shape, policy);
    if (!bid.Valid() || bid.preference <= best_preference) continue;
    best_preference = bid.preference;
    best.enumerator = e;
    best.reason = bid.reason;
  }
  // GOO's floor bid handles every shape, so an empty auction means the
  // registry was stripped below the built-ins — a configuration error.
  DPHYP_CHECK_MSG(best.enumerator != nullptr,
                  "no registered enumerator bid on this graph");
  return best;
}

OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const CardinalityModel& est,
                                const CostModel& cost_model,
                                const DispatchPolicy& policy,
                                const OptimizerOptions& options,
                                OptimizerWorkspace* workspace) {
  // Bound-aware routing: exact routes run under a GOO-seeded cost bound.
  // The route decision itself stays shape-only — the bound changes how much
  // of the search space an exact route visits, never which plan it returns.
  OptimizerOptions effective = options;
  if (policy.enable_pruning) effective.enable_pruning = true;
  // The auction sees the worker count the run would use (the parallel bid
  // declines single-worker runs); an explicit setting wins over the hint.
  DispatchPolicy effective_policy = policy;
  if (options.parallel_threads > 0) {
    effective_policy.parallel_workers_hint = options.parallel_threads;
  }
  const DispatchDecision decision = ChooseRoute(graph, effective_policy);
  if (workspace != nullptr) {
    OptimizationRequest request;
    request.graph = &graph;
    request.estimator = &est;
    request.cost_model = &cost_model;
    request.options = effective;
    return decision.enumerator->Run(request, *workspace);
  }
  return decision.enumerator->Optimize(graph, est, cost_model, effective);
}

OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const DispatchPolicy& policy) {
  CardinalityEstimator est(graph);
  return OptimizeAdaptive(graph, est, DefaultCostModel(), policy);
}

}  // namespace dphyp
