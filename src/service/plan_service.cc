#include "service/plan_service.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "cost/model_registry.h"
#include "hypergraph/builder.h"
#include "service/session.h"
#include "util/timer.h"

namespace dphyp {

namespace {

double Percentile(const std::vector<double>& sorted_latencies, double p) {
  if (sorted_latencies.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * (sorted_latencies.size() - 1) + 0.5);
  return sorted_latencies[std::min(idx, sorted_latencies.size() - 1)];
}

std::string Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::string out;
  out += "queries=" + std::to_string(queries);
  out += " failures=" + std::to_string(failures);
  out += " qps=" + Fixed(queries_per_sec, 1);
  out += " cache_hit_rate=" +
         Fixed(queries == 0 ? 0.0
                            : static_cast<double>(cache_hits) / queries,
               3);
  out += " p50_ms=" + Fixed(p50_latency_ms, 3);
  out += " p99_ms=" + Fixed(p99_latency_ms, 3);
  if (coalesced_hits > 0) {
    out += " coalesced=" + std::to_string(coalesced_hits);
  }
  if (degraded > 0) out += " shed_to_goo=" + std::to_string(degraded);
  if (rejected > 0) out += " rejected=" + std::to_string(rejected);
  for (const auto& [tenant, count] : tenant_rejects) {
    out += " rejects[" + (tenant.empty() ? std::string("default") : tenant) +
           "]=" + std::to_string(count);
  }
  if (peak_queue_depth > 0) {
    out += " depth=" + std::to_string(queue_depth) +
           " peak_depth=" + std::to_string(peak_queue_depth);
  }
  if (deadline_aborts > 0) {
    out += " deadline_aborts=" + std::to_string(deadline_aborts);
  }
  for (const auto& [name, count] : route_counts) {
    out += " " + name + "=" + std::to_string(count);
  }
  return out;
}

PlanService::PlanService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_byte_budget == 0 ? 1 : options.cache_byte_budget,
             options.cache_shards),
      cache_enabled_(options.cache_byte_budget > 0),
      admission_(options.admission) {
  int threads = options_.num_threads > 0
                    ? options_.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PlanService::~PlanService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void PlanService::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ServiceResult PlanService::OptimizeOne(const QuerySpec& spec) {
  return OptimizeOne(spec, {});
}

ServiceResult PlanService::OptimizeOne(const QuerySpec& spec,
                                       std::string_view model_name) {
  ServiceResult out = OptimizeInternal(spec, model_name, /*degrade=*/false);
  RecordLifetime(out);
  return out;
}

ServiceResult PlanService::Serve(const QueryRequest& request) {
  ServiceResult out;
  if (request.spec == nullptr) {
    out.error = "Serve: null spec";
    RecordLifetime(out);
    return out;
  }

  AdmissionDecision decision = admission_.Admit(request.tenant);
  if (decision.verdict == AdmissionVerdict::kReject) {
    out.rejected = true;
    out.error = decision.reason;
    out.retry_after_ms = decision.retry_after_ms;
    {
      std::lock_guard<std::mutex> lock(lifetime_mu_);
      ++lifetime_.queries;
      ++lifetime_.rejected;
      ++lifetime_.tenant_rejects[request.tenant];
    }
    return out;
  }

  // Admitted (possibly degraded): the slot is held for the request's whole
  // optimizer-side duration, so the depth gauge measures real in-flight
  // work, not just queue membership.
  AdmissionSlot slot(admission_, decision);
  out = OptimizeInternal(*request.spec, request.model,
                         decision.verdict == AdmissionVerdict::kDegrade);
  RecordLifetime(out);
  return out;
}

ServiceResult PlanService::OptimizeInternal(const QuerySpec& spec,
                                            std::string_view model_name,
                                            bool degrade) {
  Timer timer;
  ServiceResult out;

  Result<Hypergraph> built = BuildHypergraph(spec);
  if (!built.ok()) {
    out.error = built.error().message;
    out.latency_ms = timer.ElapsedMillis();
    return out;
  }
  const Hypergraph& graph = built.value();

  // Resolve the cardinality model: per-query override, else the service
  // default, else product form. The registry returns structured errors for
  // unknown names and missing inputs (e.g. oracle without a feedback
  // store), which surface as per-query failures, not crashes.
  if (model_name.empty()) model_name = options_.cardinality_model;
  CardinalityModelInputs inputs;
  inputs.graph = &graph;
  inputs.spec = &spec;
  inputs.catalog =
      options_.catalog != nullptr ? options_.catalog.get() : spec.catalog.get();
  inputs.feedback = options_.feedback.get();
  // Feedback classes are keyed by one query's relation numbering: when the
  // store is scoped, hand it only to the query it was recorded for —
  // serving another query's observations would be silent garbage. The
  // structural fingerprint is computed at most once, and only when
  // something consumes it (the scope check here, the cache key below).
  Fingerprint structural;
  bool have_structural = false;
  auto structural_fp = [&]() -> const Fingerprint& {
    if (!have_structural) {
      structural = FingerprintHypergraph(graph);
      have_structural = true;
    }
    return structural;
  };
  const Fingerprint no_scope{};
  bool feedback_out_of_scope = false;
  if (inputs.feedback != nullptr && !(options_.feedback_scope == no_scope) &&
      !(structural_fp() == options_.feedback_scope)) {
    feedback_out_of_scope = true;
    inputs.feedback = nullptr;
  }
  Result<std::unique_ptr<CardinalityModel>> model =
      CreateCardinalityModel(model_name, inputs);
  if (!model.ok()) {
    out.error = model.error().message;
    if (feedback_out_of_scope) {
      // The factory's "record feedback first" advice cannot help here:
      // name the actual problem.
      out.error +=
          " [the service's feedback store is scoped to a different query "
          "(ServiceOptions::feedback_scope) and was withheld]";
    }
    out.latency_ms = timer.ElapsedMillis();
    return out;
  }
  const CardinalityModel& est = *model.value();
  out.model = est.name();

  Fingerprint key;
  if (cache_enabled_) {
    // Salt the structural fingerprint with the model digest and the live
    // catalog version: plans estimated under another model — or under
    // statistics that have since been refreshed — must miss. Two *nested*
    // salts, not one XOR: a model fingerprint that itself mixes the
    // catalog version (the stats model does) would cancel against an
    // XORed version term, re-keying nothing.
    key = SaltFingerprint(SaltFingerprint(structural_fp(), est.Fingerprint()),
                          stats_version());
    CachedPlan cached;
    // A hit is only served after the structural consistency check: the
    // WL-1 fingerprint can collide for non-isomorphic regular graphs, and
    // serving a colliding entry would hand out another query's plan. A
    // false hit falls through to the miss path (and its insert then
    // overwrites nothing — the colliding key keeps the older plan).
    if (cache_.Lookup(key, &cached) &&
        PlanConsistentWithGraph(cached, graph, est)) {
      out.result = MaterializePlan(cached);
      out.success = true;
      out.cost = cached.cost;
      out.cardinality = cached.cardinality;
      out.cache_hit = true;
      out.algorithm = cached.stats.algorithm;
      out.latency_ms = timer.ElapsedMillis();
      return out;
    }
  }

  // Single-flight: concurrent misses for one key cost one enumeration. The
  // first requester leads and optimizes below; the rest block on the
  // leader's published plan, which goes through the same consistency check
  // a cache hit does (the key is WL-1, so two different graphs can share
  // it — a follower whose graph disagrees re-optimizes itself).
  std::optional<SingleFlightTable::Ticket> ticket;
  if (cache_enabled_ && options_.coalesce) {
    ticket.emplace(inflight_.Join(key));
    if (!ticket->leader()) {
      std::shared_ptr<const FlightOutcome> shared = ticket->Wait();
      if (shared->success &&
          PlanConsistentWithGraph(shared->plan, graph, est)) {
        out.result = MaterializePlan(shared->plan);
        out.success = true;
        out.cost = shared->plan.cost;
        out.cardinality = shared->plan.cardinality;
        out.coalesced = true;
        out.algorithm = shared->plan.stats.algorithm;
        out.latency_ms = timer.ElapsedMillis();
        return out;
      }
      // Leader failed (or a fingerprint collision made its plan belong to a
      // different graph): fall through and optimize on this thread without
      // starting a new flight — failures are deterministic, so a second
      // generation of followers would only pile onto the same failure.
      ticket.reset();
    }
  }

  // Miss path: optimize on a pooled workspace through a deadline-aware
  // session. The session result borrows the workspace's table, so
  // everything that needs it (serialization) happens before the lease is
  // released at function end.
  WorkspacePool::Lease lease = workspaces_.Acquire();
  OptimizationSession session(lease.get());
  OptimizationRequest request;
  request.graph = &graph;
  request.estimator = &est;
  request.cost_model = &DefaultCostModel();
  request.policy = options_.dispatch;
  request.deadline_ms = options_.deadline_ms;
  request.options.parallel_threads = options_.parallel_threads;
  if (degrade) {
    // Past the soft watermark the exact-DP routes are what the service can
    // no longer afford; the polynomial GOO pass is the same escape hatch
    // the deadline machinery falls back to.
    request.enumerator = "GOO";
    out.degraded = true;
  }
  Result<OptimizeResult> optimized = session.Optimize(request);
  if (!optimized.ok()) {
    out.error = optimized.error().message;
    out.latency_ms = timer.ElapsedMillis();
    if (ticket) {
      FlightOutcome failure;
      failure.error = out.error;
      ticket->Publish(std::move(failure));
    }
    return out;
  }
  OptimizeResult& result = optimized.value();

  out.success = result.success;
  out.error = result.error;
  out.cost = result.cost;
  out.cardinality = result.cardinality;
  out.algorithm = result.stats.algorithm;
  if (result.success) {
    // Rehydrating from the compact serialized plan gives the caller a
    // durable result (owned table, winning entries only) without tearing
    // the full-size table out of the pooled workspace.
    CachedPlan serialized = SerializePlan(result);
    out.result = MaterializePlan(serialized);
    // Deadline-aborted fallback plans are timing-dependent — caching one
    // would pin a heuristic plan for a fingerprint the exact enumerator
    // usually finishes — and degraded plans are load-dependent the same
    // way. Both are still *valid* plans for the graph, so followers get
    // them (they asked now, under the same deadline/load); the cache does
    // not (the next uncontended request deserves the exact route). Serve
    // it, don't remember it.
    const bool cacheable = !result.stats.aborted && !out.degraded;
    if (cache_enabled_ && cacheable) {
      cache_.Insert(key, serialized);
    }
    if (ticket) {
      FlightOutcome outcome;
      outcome.success = true;
      outcome.plan = std::move(serialized);
      outcome.model = out.model;
      ticket->Publish(std::move(outcome));
    }
  } else {
    out.result = std::move(result);
    out.result.DropTable();  // the borrowed table dies with the lease
    if (ticket) {
      FlightOutcome failure;
      failure.error = out.error;
      ticket->Publish(std::move(failure));
    }
  }
  out.latency_ms = timer.ElapsedMillis();
  return out;
}

void PlanService::RecordLifetime(const ServiceResult& result) {
  std::lock_guard<std::mutex> lock(lifetime_mu_);
  ++lifetime_.queries;
  if (!result.success) ++lifetime_.failures;
  if (result.cache_hit) ++lifetime_.cache_hits;
  if (result.coalesced) ++lifetime_.coalesced_hits;
  if (result.degraded) ++lifetime_.degraded;
  if (result.success && !result.cache_hit && !result.coalesced) {
    ++lifetime_.route_counts[result.algorithm];
    if (result.result.stats.aborted) ++lifetime_.deadline_aborts;
  }
}

ServiceStats PlanService::LifetimeStats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(lifetime_mu_);
    stats = lifetime_;
  }
  AdmissionController::Stats adm = admission_.GetStats();
  stats.queue_depth = admission_.depth();
  stats.peak_queue_depth = adm.peak_depth;
  stats.cache = cache_.GetStats();
  return stats;
}

BatchOutcome PlanService::OptimizeBatch(const std::vector<QuerySpec>& specs) {
  BatchOutcome outcome;
  outcome.results.resize(specs.size());

  Timer wall;

  // Completion latch shared by the batch's tasks; workers signal `done`
  // when the last task finishes.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = specs.size();

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < specs.size(); ++i) {
      queue_.push_back([this, &specs, &outcome, &done_mu, &done_cv, &remaining,
                        i] {
        ServiceResult r = OptimizeOne(specs[i]);
        outcome.results[i] = std::move(r);
        std::lock_guard<std::mutex> done_lock(done_mu);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
  }
  work_available_.notify_all();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }

  ServiceStats& stats = outcome.stats;
  stats.wall_ms = wall.ElapsedMillis();
  stats.queries = specs.size();
  std::vector<double> latencies;
  latencies.reserve(specs.size());
  for (const ServiceResult& r : outcome.results) {
    if (!r.success) ++stats.failures;
    if (r.cache_hit) ++stats.cache_hits;
    if (r.coalesced) ++stats.coalesced_hits;
    if (r.degraded) ++stats.degraded;
    if (r.rejected) ++stats.rejected;
    // Only fresh optimizations count as routed: a cache or coalesced hit
    // ran no enumerator here, and a spec that failed hypergraph
    // construction never reached one.
    if (r.success && !r.cache_hit && !r.coalesced) {
      ++stats.route_counts[r.algorithm];
      // Only fresh aborts count: a cache hit ran no enumerator (and aborted
      // plans are not cached anyway — the guard is belt and braces).
      if (r.result.stats.aborted) ++stats.deadline_aborts;
    }
    latencies.push_back(r.latency_ms);
    stats.max_latency_ms = std::max(stats.max_latency_ms, r.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_latency_ms = Percentile(latencies, 0.50);
  stats.p99_latency_ms = Percentile(latencies, 0.99);
  stats.queries_per_sec =
      stats.wall_ms > 0.0 ? 1000.0 * stats.queries / stats.wall_ms : 0.0;

  // `cache` is a snapshot of the shared cache's lifetime counters, not a
  // per-batch delta: batches may run concurrently, so a delta would
  // cross-attribute their activity. The batch-local hit count is
  // `cache_hits` above.
  stats.cache = cache_.GetStats();
  return outcome;
}

}  // namespace dphyp
