// Adaptive enumerator dispatch: inspects the hypergraph's shape and routes
// it to the cheapest algorithm that can handle it exactly — or to the GOO
// heuristic when exhaustive DP would explode (the Sec. 3.6 table-growth
// concern). The policy mirrors what production optimizers do: Hyrise
// switches between EnumerateCcp-based DP and greedy ordering by query size,
// PostgreSQL falls back to GEQO beyond geqo_threshold.
#ifndef DPHYP_SERVICE_DISPATCH_H_
#define DPHYP_SERVICE_DISPATCH_H_

#include "baselines/all_algorithms.h"
#include "baselines/goo.h"

namespace dphyp {

/// Where a query can be routed.
enum class Route {
  kDphyp,  ///< generalized hypergraphs, non-inner operators, laterals
  kDpccp,  ///< simple inner graphs of moderate subgraph count
  kDpsub,  ///< small dense simple graphs (the 2^n loop wins on cliques)
  kGoo,    ///< heuristic fallback past the exact-DP feasibility frontier
};

inline constexpr int kNumRoutes = 4;

const char* RouteName(Route route);

/// Thresholds steering the routing decision. The defaults keep every exact
/// route under a few hundred thousand DP entries (see README).
struct DispatchPolicy {
  /// Hard node-count ceiling for exhaustive DP on graphs that are not
  /// chains/cycles (whose subgraph count is only quadratic).
  int exact_node_limit = 22;
  /// Exhaustive DP also requires the max simple-edge degree to stay below
  /// this: a hub of degree d induces >= 2^d connected subgraphs (stars).
  int max_exact_degree = 16;
  /// DPsub is chosen for simple graphs up to this size when density is at
  /// least `min_dpsub_density` (its 2^n loop has tiny constants).
  int dpsub_node_limit = 12;
  double min_dpsub_density = 0.8;
  /// Dense graphs (edge density >= `min_dense_density`) get a stricter node
  /// ceiling: their csg-cmp pair count grows like 3^n even when the table
  /// itself (2^n entries) would still fit.
  int dense_node_limit = 12;
  double min_dense_density = 0.4;
  /// Bound-aware routing: when an exact route is chosen, run it with
  /// accumulated-cost branch-and-bound pruning seeded from a GOO pass over
  /// the same graph (OptimizerOptions::enable_pruning). Admissible under
  /// monotone cost models — the served plan cost is bit-identical to the
  /// unpruned run — and a no-op for routes that cannot prune (GOO itself).
  bool enable_pruning = true;
};

/// The routing verdict plus a human-readable justification.
struct DispatchDecision {
  Route route = Route::kDphyp;
  const char* reason = "";
};

/// Pure shape inspection; does not run anything.
DispatchDecision ChooseRoute(const Hypergraph& graph,
                             const DispatchPolicy& policy = {});

/// Routes and runs. The returned result is exactly what the routed
/// algorithm produced.
OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const CardinalityEstimator& est,
                                const CostModel& cost_model,
                                const DispatchPolicy& policy = {},
                                const OptimizerOptions& options = {});

/// Convenience wrapper with default estimator and cost model.
OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const DispatchPolicy& policy = {});

}  // namespace dphyp

#endif  // DPHYP_SERVICE_DISPATCH_H_
