// Adaptive enumerator dispatch: inspects the hypergraph's shape once and
// lets every registered enumerator bid on it (Enumerator::Bid); the highest
// bid wins. There is no per-algorithm switch anywhere in the dispatch path
// — adding an enumerator to the system is a registration, after which it is
// routable, benchable, and testable. The built-in bids mirror what
// production optimizers do: Hyrise switches between EnumerateCcp-based DP
// and greedy ordering by query size, PostgreSQL falls back to GEQO beyond
// geqo_threshold; here GOO is the always-feasible floor bid that wins
// exactly when every exact enumerator refuses (the Sec. 3.6 table-growth
// concern).
//
// DispatchPolicy (the routing thresholds) lives in core/enumerator.h next
// to the Bid interface.
#ifndef DPHYP_SERVICE_DISPATCH_H_
#define DPHYP_SERVICE_DISPATCH_H_

#include "core/enumerator.h"

namespace dphyp {

/// The routing verdict: the winning enumerator plus a human-readable
/// justification (a static string from the winning bid).
struct DispatchDecision {
  const Enumerator* enumerator = nullptr;
  const char* reason = "";

  const char* Name() const {
    return enumerator != nullptr ? enumerator->Name() : "?";
  }
};

/// Pure shape inspection + registry auction; does not run anything.
DispatchDecision ChooseRoute(const Hypergraph& graph,
                             const DispatchPolicy& policy = {});

/// Routes and runs. The returned result is exactly what the routed
/// enumerator produced (self-contained without a workspace; borrowing the
/// workspace's table with one).
OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const CardinalityModel& est,
                                const CostModel& cost_model,
                                const DispatchPolicy& policy = {},
                                const OptimizerOptions& options = {},
                                OptimizerWorkspace* workspace = nullptr);

/// Convenience wrapper with default estimator and cost model.
OptimizeResult OptimizeAdaptive(const Hypergraph& graph,
                                const DispatchPolicy& policy = {});

}  // namespace dphyp

#endif  // DPHYP_SERVICE_DISPATCH_H_
