// Deadline-aware optimization sessions.
//
// An OptimizationSession turns one OptimizationRequest into a served plan
// with *bounded tail latency*: it resolves the enumerator (by name through
// the registry, or by the shape auction in service/dispatch.h), arms a
// CancellationToken for the request's deadline, and — when the exact
// attempt aborts past its budget — transparently re-runs GOO on the same
// workspace and serves the heuristic plan, recording the abort in the
// result's stats. This converts the paper's Sec. 3.6 table-explosion risk
// from an unbounded stall into a deadline miss of at most one poll period
// plus a polynomial GOO pass (the same escape hatch PostgreSQL's GEQO
// threshold provides, but per-request and time-based).
//
// The session also owns the workspace story for standalone callers: give it
// a pooled workspace to serve traffic allocation-free (PlanService does),
// or let it lazily create a private one that amortizes across the
// session's lifetime.
#ifndef DPHYP_SERVICE_SESSION_H_
#define DPHYP_SERVICE_SESSION_H_

#include <memory>

#include "core/enumerator.h"
#include "core/workspace.h"
#include "cost/feedback.h"
#include "cost/qerror.h"
#include "util/result.h"

namespace dphyp {

/// Running estimation-quality aggregate across one session's graded plans
/// (q = smoothed q-error; see cost/qerror.h).
struct SessionQuality {
  /// Plans graded through ReportQError (plans with zero observed classes
  /// contribute only to `missing` — their 0-valued medians would sit
  /// below the metric's floor of 1 and poison the means).
  uint64_t plans = 0;
  /// Plan classes compared / lacking an observed actual, summed over plans.
  uint64_t classes = 0;
  uint64_t missing = 0;
  /// Worst per-plan max q-error seen.
  double worst_q = 0.0;
  /// Mean of the per-plan median q-errors.
  double mean_median_q = 0.0;
};

class OptimizationSession {
 public:
  /// Borrows `workspace` when non-null (the caller keeps ownership — the
  /// pooled-serving mode); otherwise the session creates a private
  /// workspace on first use.
  explicit OptimizationSession(OptimizerWorkspace* workspace = nullptr);

  /// Optimizes one request. Err() covers request-level failures — unknown
  /// enumerator name, an enumerator that cannot handle the graph, a
  /// missing graph/estimator/cost model. A returned OptimizeResult may
  /// still have success=false for optimization-level failures
  /// (disconnected graphs), exactly like the underlying enumerators.
  ///
  /// Deadline semantics (request.deadline_ms > 0): the exact attempt is
  /// aborted once the budget expires (polled every kCancellationPollPeriod
  /// candidate pairs) and GOO is re-run without a deadline; the served
  /// result then carries stats.aborted = true, stats.aborted_algorithm =
  /// the exact enumerator, and stats.abort_latency_ms = wall time until
  /// the abort fired — the deadline-compliance metric
  /// (tests/test_session.cc asserts it stays within 10% of the budget).
  ///
  /// The result borrows the session workspace's DP table: it is valid
  /// until the next Optimize call on this session (or workspace). Callers
  /// needing durability serialize the plan or detach the table.
  Result<OptimizeResult> Optimize(const OptimizationRequest& request);

  /// Convenience: adaptive routing with default estimator/cost model.
  Result<OptimizeResult> Optimize(const Hypergraph& graph,
                                  double deadline_ms = 0.0);

  OptimizerWorkspace& workspace();

  /// Grades a served plan's estimates against executed actuals (the
  /// feedback store the executor filled for this query), folds the report
  /// into the session's running quality() aggregate, and returns it. The
  /// per-query estimation observability hook: services call it after
  /// executing a plan, tools (qdl_tool --explain --execute) print it.
  QErrorStats ReportQError(const OptimizeResult& result,
                           const Hypergraph& graph,
                           const CardinalityFeedback& actuals);

  /// Aggregate over every ReportQError call on this session.
  const SessionQuality& quality() const { return quality_; }

 private:
  OptimizerWorkspace* ws_;
  std::unique_ptr<OptimizerWorkspace> owned_;
  SessionQuality quality_;
};

}  // namespace dphyp

#endif  // DPHYP_SERVICE_SESSION_H_
