// Deadline-aware optimization sessions.
//
// An OptimizationSession turns one OptimizationRequest into a served plan
// with *bounded tail latency*: it resolves the enumerator (by name through
// the registry, or by the shape auction in service/dispatch.h), arms a
// CancellationToken for the request's deadline, and — when the exact
// attempt aborts past its budget — transparently re-runs GOO on the same
// workspace and serves the heuristic plan, recording the abort in the
// result's stats. This converts the paper's Sec. 3.6 table-explosion risk
// from an unbounded stall into a deadline miss of at most one poll period
// plus a polynomial GOO pass (the same escape hatch PostgreSQL's GEQO
// threshold provides, but per-request and time-based).
//
// The session also owns the workspace story for standalone callers: give it
// a pooled workspace to serve traffic allocation-free (PlanService does),
// or let it lazily create a private one that amortizes across the
// session's lifetime.
#ifndef DPHYP_SERVICE_SESSION_H_
#define DPHYP_SERVICE_SESSION_H_

#include <memory>

#include "core/enumerator.h"
#include "core/workspace.h"
#include "util/result.h"

namespace dphyp {

class OptimizationSession {
 public:
  /// Borrows `workspace` when non-null (the caller keeps ownership — the
  /// pooled-serving mode); otherwise the session creates a private
  /// workspace on first use.
  explicit OptimizationSession(OptimizerWorkspace* workspace = nullptr);

  /// Optimizes one request. Err() covers request-level failures — unknown
  /// enumerator name, an enumerator that cannot handle the graph, a
  /// missing graph/estimator/cost model. A returned OptimizeResult may
  /// still have success=false for optimization-level failures
  /// (disconnected graphs), exactly like the underlying enumerators.
  ///
  /// Deadline semantics (request.deadline_ms > 0): the exact attempt is
  /// aborted once the budget expires (polled every kCancellationPollPeriod
  /// candidate pairs) and GOO is re-run without a deadline; the served
  /// result then carries stats.aborted = true, stats.aborted_algorithm =
  /// the exact enumerator, and stats.abort_latency_ms = wall time until
  /// the abort fired — the deadline-compliance metric
  /// (tests/test_session.cc asserts it stays within 10% of the budget).
  ///
  /// The result borrows the session workspace's DP table: it is valid
  /// until the next Optimize call on this session (or workspace). Callers
  /// needing durability serialize the plan or detach the table.
  Result<OptimizeResult> Optimize(const OptimizationRequest& request);

  /// Convenience: adaptive routing with default estimator/cost model.
  Result<OptimizeResult> Optimize(const Hypergraph& graph,
                                  double deadline_ms = 0.0);

  OptimizerWorkspace& workspace();

 private:
  OptimizerWorkspace* ws_;
  std::unique_ptr<OptimizerWorkspace> owned_;
};

}  // namespace dphyp

#endif  // DPHYP_SERVICE_SESSION_H_
