#include "service/plan_cache.h"

#include <bit>
#include <limits>

#include "util/check.h"

namespace dphyp {

namespace {

void CollectEntries(const DpTable& table, NodeSet s,
                    std::vector<PlanEntry>* out) {
  const PlanEntry* e = table.Find(s);
  DPHYP_CHECK_MSG(e != nullptr, "plan serialization: missing DP entry");
  if (!e->IsLeaf()) {
    CollectEntries(table, e->left, out);
    CollectEntries(table, e->right, out);
  }
  out->push_back(*e);
}

}  // namespace

CachedPlan SerializePlan(const OptimizeResult& result) {
  DPHYP_CHECK_MSG(result.success, "cannot serialize a failed optimization");
  CachedPlan plan;
  plan.root_set = result.root_set;
  plan.cost = result.cost;
  plan.cardinality = result.cardinality;
  plan.stats = result.stats;
  CollectEntries(result.table(), result.root_set, &plan.entries);
  plan.entries.shrink_to_fit();
  return plan;
}

OptimizeResult MaterializePlan(const CachedPlan& plan) {
  OptimizeResult result;
  result.success = true;
  result.cost = plan.cost;
  result.cardinality = plan.cardinality;
  result.root_set = plan.root_set;
  DpTable table(plan.entries.size());
  for (const PlanEntry& entry : plan.entries) {
    *table.Insert(entry.set) = entry;
  }
  result.AdoptTable(std::move(table));
  result.stats = plan.stats;
  return result;
}

bool PlanConsistentWithGraph(const CachedPlan& plan, const Hypergraph& graph,
                             const CardinalityModel& est) {
  if (plan.root_set != graph.AllNodes()) return false;
  for (const PlanEntry& entry : plan.entries) {
    if (entry.set.Empty() || !entry.set.IsSubsetOf(graph.AllNodes())) {
      return false;
    }
    if (entry.IsLeaf()) {
      if (!entry.set.IsSingleton()) return false;
      // Leaves were seeded from the model (InitLeaves), not the graph: a
      // stats/oracle model's base estimate can legitimately differ from
      // the graph's flat cardinality, and a genuine hit matches the
      // *model*, bit-for-bit.
      if (entry.cardinality != est.EstimateBase(entry.set.Min())) {
        return false;
      }
      continue;
    }
    if ((entry.left | entry.right) != entry.set ||
        entry.left.Intersects(entry.right)) {
      return false;
    }
    if (!graph.ConnectsSets(entry.left, entry.right)) return false;
    // The estimator is deterministic, so a genuine hit matches bit-for-bit;
    // an attribute or structure mismatch shows up as a differing product.
    if (entry.cardinality != est.Estimate(entry.set)) return false;
  }
  return true;
}

/// One cache shard: open-addressing index over a dense entry array, in the
/// style of DpTable, plus LRU stamps and local counters. `slots_` stores
/// entry_index + 1; 0 marks empty, kTombstone a deleted slot that probing
/// must walk through.
struct PlanCache::Shard {
  static constexpr uint32_t kTombstone = std::numeric_limits<uint32_t>::max();

  struct Entry {
    Fingerprint key;
    CachedPlan plan;
    uint64_t last_used = 0;
  };

  mutable std::mutex mu;
  std::vector<Entry> entries;
  std::vector<uint32_t> slots;
  size_t mask = 0;
  size_t tombstones = 0;
  size_t bytes = 0;
  uint64_t clock = 0;
  size_t budget = 0;
  Stats stats;

  explicit Shard(size_t byte_budget) : budget(byte_budget) {
    slots.assign(64, 0);
    mask = slots.size() - 1;
  }

  size_t Hash(const Fingerprint& key) const {
    return FingerprintHasher()(key);
  }

  /// Returns the slot index holding `key`, or the first insertable slot
  /// (empty or tombstone) if absent. `*found` tells which.
  size_t Probe(const Fingerprint& key, bool* found) const {
    size_t idx = Hash(key) & mask;
    size_t first_free = SIZE_MAX;
    for (;;) {
      uint32_t slot = slots[idx];
      if (slot == 0) {
        *found = false;
        return first_free != SIZE_MAX ? first_free : idx;
      }
      if (slot == kTombstone) {
        if (first_free == SIZE_MAX) first_free = idx;
      } else if (entries[slot - 1].key == key) {
        *found = true;
        return idx;
      }
      idx = (idx + 1) & mask;
    }
  }

  void Rehash(size_t capacity) {
    slots.assign(capacity, 0);
    mask = capacity - 1;
    tombstones = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      size_t idx = Hash(entries[i].key) & mask;
      while (slots[idx] != 0) idx = (idx + 1) & mask;
      slots[idx] = static_cast<uint32_t>(i + 1);
    }
  }

  /// Removes the entry at dense index `i` (swap-with-last + slot fixup).
  void RemoveEntry(size_t i) {
    bool found = false;
    size_t idx = Probe(entries[i].key, &found);
    DPHYP_CHECK_MSG(found, "cache invariant: entry missing from index");
    slots[idx] = kTombstone;
    ++tombstones;
    bytes -= entries[i].plan.ByteSize();
    if (i + 1 != entries.size()) {
      size_t moved_idx = Probe(entries.back().key, &found);
      DPHYP_CHECK_MSG(found, "cache invariant: moved entry missing");
      entries[i] = std::move(entries.back());
      slots[moved_idx] = static_cast<uint32_t>(i + 1);
    }
    entries.pop_back();
  }

  /// Evicts least-recently-used entries until the shard fits its budget.
  void EvictToBudget() {
    while (bytes > budget && !entries.empty()) {
      size_t victim = 0;
      for (size_t i = 1; i < entries.size(); ++i) {
        if (entries[i].last_used < entries[victim].last_used) victim = i;
      }
      RemoveEntry(victim);
      ++stats.evictions;
    }
  }
};

PlanCache::PlanCache(size_t byte_budget, int shards) : byte_budget_(byte_budget) {
  size_t n = std::bit_ceil(static_cast<size_t>(shards < 1 ? 1 : shards));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(byte_budget / n));
  }
}

PlanCache::~PlanCache() = default;

PlanCache::Shard& PlanCache::ShardFor(const Fingerprint& key) {
  // hi is avalanche-mixed; use its top bits so the shard choice is
  // independent of the slot index bits used inside the shard.
  size_t idx = static_cast<size_t>(key.hi >> 32) & (shards_.size() - 1);
  return *shards_[idx];
}

bool PlanCache::Lookup(const Fingerprint& key, CachedPlan* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  bool found = false;
  size_t idx = shard.Probe(key, &found);
  if (!found) {
    ++shard.stats.misses;
    return false;
  }
  Shard::Entry& entry = shard.entries[shard.slots[idx] - 1];
  entry.last_used = ++shard.clock;
  ++shard.stats.hits;
  if (out != nullptr) *out = entry.plan;
  return true;
}

void PlanCache::Insert(const Fingerprint& key, CachedPlan plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  bool found = false;
  size_t idx = shard.Probe(key, &found);
  if (found) {
    // Deterministic optimizers: same key => same plan. Refresh recency only.
    shard.entries[shard.slots[idx] - 1].last_used = ++shard.clock;
    return;
  }
  if ((shard.entries.size() + shard.tombstones + 1) * 10 >=
      shard.slots.size() * 7) {
    shard.Rehash(std::bit_ceil((shard.entries.size() + 1) * 2));
    idx = shard.Probe(key, &found);
  }
  shard.bytes += plan.ByteSize();
  shard.entries.push_back(
      {key, std::move(plan), ++shard.clock});
  if (shard.slots[idx] == Shard::kTombstone) --shard.tombstones;
  shard.slots[idx] = static_cast<uint32_t>(shard.entries.size());
  ++shard.stats.insertions;
  shard.EvictToBudget();
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.bytes += shard->bytes;
    total.entries += shard->entries.size();
  }
  return total;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->slots.assign(64, 0);
    shard->mask = shard->slots.size() - 1;
    shard->tombstones = 0;
    shard->bytes = 0;
  }
}

}  // namespace dphyp
