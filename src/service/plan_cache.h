// Sharded, byte-budgeted plan cache keyed by query fingerprint.
//
// The cache stores *serialized* plans: the subset of DP-table entries
// reachable from the winning root (children before parents), plus the final
// cost/cardinality and the stats of the original optimization. A hit
// rehydrates a full OptimizeResult — including a DP table ExtractPlan can
// walk — without re-running any enumeration, so a cached plan's cost is
// bit-identical to the freshly optimized one.
//
// Concurrency: the key space is split across N shards (fingerprints are
// uniformly mixed, so shard load balances); each shard is an open-addressing
// table guarded by its own mutex, in the style of DpTable. Eviction is
// LRU-ish: when a shard exceeds its slice of the byte budget, the
// least-recently-used entries are dropped until it fits. Hit/miss/eviction
// counters are maintained per shard and aggregated on demand.
#ifndef DPHYP_SERVICE_PLAN_CACHE_H_
#define DPHYP_SERVICE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/optimizer.h"
#include "service/fingerprint.h"

namespace dphyp {

/// A serialized plan: the reachable DP entries of one optimization winner.
struct CachedPlan {
  NodeSet root_set;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Entries of the winning plan tree, children strictly before parents.
  std::vector<PlanEntry> entries;
  /// Stats of the optimization that produced the plan (for observability;
  /// a rehydrated result reports these, not a fresh enumeration's).
  OptimizerStats stats;

  /// Approximate heap footprint used for the cache byte budget.
  size_t ByteSize() const {
    return sizeof(CachedPlan) + entries.capacity() * sizeof(PlanEntry);
  }
};

/// Serializes the winning plan of a successful optimization (the entries
/// reachable from `result.root_set`). Requires `result.success`.
CachedPlan SerializePlan(const OptimizeResult& result);

/// Rebuilds a full OptimizeResult (success, costs, DP table) from a cached
/// plan. The rehydrated table contains exactly the serialized entries.
OptimizeResult MaterializePlan(const CachedPlan& plan);

/// True iff the cached plan is exactly the plan an optimization of `graph`
/// could have produced: the root covers the graph, every join's children
/// are connected in `graph`, and every entry's cardinality equals the
/// estimator's (deterministic) estimate for its set. Fingerprints are WL-1
/// color refinement, which systematically collides for non-isomorphic
/// regular graphs with identical attributes (e.g. K3,3 vs. the 3-prism),
/// so a hit must pass this check before being served; a false hit fails it
/// and is treated as a miss.
bool PlanConsistentWithGraph(const CachedPlan& plan, const Hypergraph& graph,
                             const CardinalityModel& est);

/// Thread-safe sharded cache: Fingerprint -> CachedPlan.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;
    size_t entries = 0;

    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// `byte_budget` bounds the summed ByteSize of cached plans; `shards` is
  /// rounded up to a power of two.
  explicit PlanCache(size_t byte_budget = 8 << 20, int shards = 8);
  ~PlanCache();  // out of line: Shard is an incomplete type here

  /// On hit copies the plan into `*out`, refreshes its LRU stamp and returns
  /// true. `out` may be nullptr to probe without copying.
  bool Lookup(const Fingerprint& key, CachedPlan* out);

  /// Inserts (or refreshes) the plan, then evicts LRU entries while the
  /// shard is over budget. Re-inserting an existing key only bumps its LRU
  /// stamp: plans are deterministic, so the stored value is already correct.
  void Insert(const Fingerprint& key, CachedPlan plan);

  /// Aggregated counters across all shards.
  Stats GetStats() const;

  /// Drops every entry (counters are kept).
  void Clear();

  size_t byte_budget() const { return byte_budget_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard;

  Shard& ShardFor(const Fingerprint& key);

  size_t byte_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dphyp

#endif  // DPHYP_SERVICE_PLAN_CACHE_H_
