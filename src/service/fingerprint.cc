#include "service/fingerprint.h"

#include <bit>
#include <vector>

#include "hypergraph/builder.h"

namespace dphyp {

namespace {

/// splitmix64 finalizer: the avalanche mixer used throughout the repo.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-sensitive combine (a then b != b then a).
uint64_t Combine(uint64_t a, uint64_t b) {
  return Mix(a + 0x9e3779b97f4a7c15ULL + (b ^ (a << 6) ^ (a >> 2)));
}

uint64_t DoubleBits(double d) { return std::bit_cast<uint64_t>(d); }

// Domain-separation constants so e.g. a selectivity and a cardinality with
// the same bit pattern cannot cancel out.
constexpr uint64_t kCardTag = 0x5ca1ab1e0ddba11ULL;
constexpr uint64_t kEdgeTag = 0xed6edULL * 0x10001ULL;
constexpr uint64_t kFreeTag = 0xf4eeULL;
constexpr uint64_t kNodeTag = 0x90deULL;

/// Commutative digest of the colors of the members of `s`: wrapping sum of
/// mixed colors, so any relabeling of the members yields the same value.
uint64_t SideDigest(NodeSet s, const std::vector<uint64_t>& color) {
  uint64_t acc = Mix(static_cast<uint64_t>(s.Count()) + 1);
  for (int v : s) acc += Mix(color[v]);
  return acc;
}

/// Digest of one edge under the current coloring. For commutative operators
/// the two hypernode digests are aggregated symmetrically (left/right roles
/// are interchangeable under relabeling); non-commutative operators keep
/// their orientation.
uint64_t EdgeDigest(const Hyperedge& e, const std::vector<uint64_t>& color) {
  uint64_t l = SideDigest(e.left, color);
  uint64_t r = SideDigest(e.right, color);
  uint64_t f = SideDigest(e.flex, color);
  uint64_t attrs = Combine(DoubleBits(e.selectivity),
                           static_cast<uint64_t>(e.op) + kEdgeTag);
  uint64_t sides = IsCommutative(e.op) ? Mix(l) + Mix(r) : Combine(l, r);
  return Combine(Combine(sides, f), attrs);
}

}  // namespace

std::string Fingerprint::ToString() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kHex[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

Fingerprint FingerprintHypergraph(const Hypergraph& graph) {
  const int n = graph.NumNodes();
  const int m = graph.NumEdges();

  // Initial colors: node attributes only (no identity), so two nodes that
  // are locally indistinguishable start with the same color.
  std::vector<uint64_t> color(n);
  for (int v = 0; v < n; ++v) {
    const HypergraphNode& node = graph.node(v);
    color[v] = Combine(DoubleBits(node.cardinality) + kCardTag,
                       static_cast<uint64_t>(node.free_tables.Count()));
  }

  // Color refinement: each round folds the digests of a node's incident
  // edges (computed with the previous round's colors) and of its free-table
  // set into its color. Three rounds distinguish nodes up to WL-1, which is
  // exact for the simple graph shapes the workload generators emit.
  std::vector<uint64_t> next(n);
  for (int round = 0; round < 3; ++round) {
    for (int v = 0; v < n; ++v) next[v] = Mix(color[v] + kNodeTag);
    for (int i = 0; i < m; ++i) {
      const Hyperedge& e = graph.edge(i);
      const uint64_t digest = EdgeDigest(e, color);
      // Wrapping sums keep per-node accumulation order-independent.
      const bool sym = IsCommutative(e.op);
      for (int v : e.left) next[v] += Mix(digest + (sym ? 1 : 2));
      for (int v : e.right) next[v] += Mix(digest + (sym ? 1 : 3));
      for (int v : e.flex) next[v] += Mix(digest + 4);
    }
    for (int v = 0; v < n; ++v) {
      if (!graph.node(v).free_tables.Empty()) {
        next[v] += Mix(SideDigest(graph.node(v).free_tables, color) + kFreeTag);
      }
    }
    color.swap(next);
  }

  // Final aggregation: commutative over nodes and over edges, with two
  // independent mixes so hi and lo do not degenerate together.
  uint64_t node_sum = 0, node_alt = 0;
  for (int v = 0; v < n; ++v) {
    node_sum += Mix(color[v]);
    node_alt ^= Mix(color[v] + 0x517cc1b727220a95ULL);
  }
  uint64_t edge_sum = 0, edge_alt = 0;
  for (int i = 0; i < m; ++i) {
    const uint64_t digest = EdgeDigest(graph.edge(i), color);
    edge_sum += Mix(digest);
    edge_alt ^= Mix(digest + 0x2545f4914f6cdd1dULL);
  }

  Fingerprint fp;
  fp.hi = Combine(Combine(node_sum, edge_sum),
                  (static_cast<uint64_t>(n) << 32) | static_cast<uint64_t>(m));
  fp.lo = Combine(Combine(node_alt, edge_alt), Mix(fp.hi));
  return fp;
}

Fingerprint FingerprintQuery(const QuerySpec& spec) {
  return FingerprintHypergraph(BuildHypergraphOrDie(spec));
}

Fingerprint SaltFingerprint(Fingerprint fp, uint64_t salt) {
  Fingerprint out;
  out.hi = Mix(fp.hi ^ Mix(salt));
  out.lo = Mix(fp.lo ^ Mix(salt + 0x9E3779B97F4A7C15ull));
  return out;
}

}  // namespace dphyp
