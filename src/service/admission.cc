#include "service/admission.h"

#include <algorithm>
#include <chrono>

namespace dphyp {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options, Clock clock)
    : options_(options),
      clock_(clock != nullptr ? std::move(clock) : Clock(&SteadySeconds)) {}

bool AdmissionController::TakeToken(TokenBucket& bucket, double now_s) {
  const double elapsed = std::max(0.0, now_s - bucket.last_refill_s);
  bucket.tokens = std::min(options_.tenant_burst,
                           bucket.tokens + elapsed * options_.tenant_rate_per_sec);
  bucket.last_refill_s = now_s;
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

AdmissionDecision AdmissionController::Admit(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const int depth_with_this = depth_ + 1;
  AdmissionDecision decision;

  // Hard watermark first: past it the pool is drowning and even the fast
  // path would queue; shedding here is what keeps p99 bounded for the
  // requests already admitted.
  if (options_.hard_watermark > 0 && depth_with_this > options_.hard_watermark) {
    decision.verdict = AdmissionVerdict::kReject;
    decision.reason = "hard watermark: service overloaded";
    decision.retry_after_ms = options_.retry_after_ms;
    ++stats_.rejected;
    ++stats_.tenant_rejects[std::string(tenant)];
    return decision;
  }

  // Tenant fair share: a tenant that burned through its bucket is rejected
  // regardless of pool depth — an empty bucket means it is already
  // consuming above its provisioned rate, and admitting more of it is
  // exactly how one heavy tenant starves the rest.
  if (options_.tenant_rate_per_sec > 0.0) {
    const double now_s = clock_();
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_.emplace(std::string(tenant), TokenBucket{}).first;
      it->second.tokens = options_.tenant_burst;
      it->second.last_refill_s = now_s;
    }
    if (!TakeToken(it->second, now_s)) {
      decision.verdict = AdmissionVerdict::kReject;
      decision.reason = "tenant token bucket empty: over fair-share rate";
      // One token refills in 1/rate seconds; that is the honest retry hint.
      decision.retry_after_ms = 1000.0 / options_.tenant_rate_per_sec;
      ++stats_.rejected;
      ++stats_.tenant_rejects[std::string(tenant)];
      return decision;
    }
  }

  // Soft watermark: admitted, but downgraded to the polynomial fast path.
  if (options_.soft_watermark > 0 && depth_with_this > options_.soft_watermark) {
    decision.verdict = AdmissionVerdict::kDegrade;
    decision.reason = "soft watermark: degraded to GOO fast path";
    ++stats_.degraded;
  } else {
    ++stats_.admitted;
  }

  depth_ = depth_with_this;
  stats_.peak_depth = std::max(stats_.peak_depth, depth_);
  return decision;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ > 0) --depth_;
}

int AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dphyp
