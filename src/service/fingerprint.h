// Canonical query fingerprints for the plan cache.
//
// A fingerprint is a 128-bit digest of everything that determines the
// optimizer's output for a hypergraph: node cardinalities, free-table sets
// (laterals), every edge with its hypernode structure, selectivity and
// operator type. Two structurally identical queries must collide, and — for
// simple graphs — the digest is invariant under node *relabeling*: a chain
// R0-R1-R2 hashes the same as the relabeled chain R2-R0-R1 with permuted
// attributes. Invariance comes from a cheap canonicalization pass
// (Weisfeiler-Leman-style color refinement on node attributes and incident
// edges) followed by order-independent (commutative) aggregation of node and
// edge digests, so no explicit canonical form is ever materialized.
//
// Relation *names* are deliberately excluded: they do not affect plans.
#ifndef DPHYP_SERVICE_FINGERPRINT_H_
#define DPHYP_SERVICE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "catalog/query_spec.h"
#include "hypergraph/hypergraph.h"

namespace dphyp {

/// 128-bit cache key. Value type; compared bitwise.
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;

  /// 32 hex digits, e.g. for logs and the demo output.
  std::string ToString() const;
};

/// Hash functor for hash maps keyed by Fingerprint.
struct FingerprintHasher {
  size_t operator()(const Fingerprint& fp) const {
    // hi and lo are already well-mixed; fold them.
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Digest of a built hypergraph (the form the service caches on, since the
/// optimizer consumes hypergraphs).
Fingerprint FingerprintHypergraph(const Hypergraph& graph);

/// Mixes `salt` into a fingerprint (splitmix64 on both halves). The plan
/// service salts graph fingerprints with the cardinality model's digest and
/// the catalog stats_version, so plans estimated under a different model —
/// or under statistics that have since been refreshed — can never be served
/// as hits. Mixing zero is the identity's moral equivalent but still
/// permutes bits, so always salt through the same call path.
Fingerprint SaltFingerprint(Fingerprint fp, uint64_t salt);

/// Convenience: builds the hypergraph for `spec` and digests it. Aborts on
/// invalid specs (callers wanting error handling should build the graph via
/// BuildHypergraph themselves and use FingerprintHypergraph).
Fingerprint FingerprintQuery(const QuerySpec& spec);

}  // namespace dphyp

#endif  // DPHYP_SERVICE_FINGERPRINT_H_
