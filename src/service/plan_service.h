// The plan-serving front end: a fixed thread pool draining a work queue of
// QuerySpecs through the admission -> cache-lookup -> single-flight ->
// session-optimize -> cache-fill pipeline, returning per-query results plus
// aggregate service statistics (throughput, cache hit rate, latency
// percentiles, coalesced/shed/reject counts).
//
// Every stage is deterministic — graph construction, fingerprinting,
// routing and each enumeration algorithm are pure functions of the spec —
// so a concurrent batch produces costs bit-identical to a serial run of the
// same specs, whatever the interleaving; the cache can only substitute a
// plan that an identical spec would have produced anyway, and a coalesced
// follower receives exactly the plan its own enumeration would have built.
//
// Steady-state allocation discipline: each in-flight query leases an
// OptimizerWorkspace from a pool (the pool grows to peak concurrency, then
// stops allocating), the enumeration runs entirely in the workspace's
// retained memory, and the served result is rehydrated from the compact
// serialized plan — so warm-path serving performs no large allocations.
//
// Burst traffic (the `Serve` front door, service/admission.h +
// service/coalesce.h): concurrent requests for the same hot
// (fingerprint, model, stats_version) key cost ONE enumeration — the first
// miss leads, the rest coalesce onto the in-flight result; past the soft
// occupancy watermark fresh requests are downgraded to the GOO fast path;
// past the hard watermark they are rejected with a structured retry-after
// error; and a per-tenant token bucket keeps one heavy tenant from
// starving the pool. bench/loadgen.cc is the open-loop harness that
// measures all of it.
#ifndef DPHYP_SERVICE_PLAN_SERVICE_H_
#define DPHYP_SERVICE_PLAN_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "core/workspace.h"
#include "cost/feedback.h"
#include "service/admission.h"
#include "service/coalesce.h"
#include "service/dispatch.h"
#include "service/plan_cache.h"

namespace dphyp {

/// Service construction knobs.
struct ServiceOptions {
  /// Worker threads; 0 means hardware concurrency.
  int num_threads = 0;
  /// Plan cache byte budget; 0 disables caching entirely.
  size_t cache_byte_budget = 8 << 20;
  int cache_shards = 8;
  DispatchPolicy dispatch;
  /// Per-query optimization deadline in milliseconds; <= 0 means
  /// unbounded. Queries whose exact enumeration exceeds the budget are
  /// served the GOO fallback (ServiceResult::result.stats.aborted records
  /// it) — the tail-latency bound for the Sec. 3.6 explosion risk.
  double deadline_ms = 0.0;
  /// Workers per query for intra-query parallel routes ("dphyp-par").
  /// Defaults to 1: the service already saturates its cores with
  /// inter-query concurrency, and hardware-sized per-query teams on top of
  /// the worker pool would oversubscribe it. Raise for low-QPS /
  /// latency-critical deployments with idle cores; <= 0 means the hardware
  /// default. Plan costs are unaffected either way (the parallel merge is
  /// deterministic).
  int parallel_threads = 1;
  /// Default cardinality model, by registry name (cost/model_registry.h);
  /// empty means "product". Overridable per query via the OptimizeOne
  /// overload.
  std::string cardinality_model;
  /// Statistics catalog backing stats-aware models. Shared with whoever
  /// refreshes statistics; its stats_version is mixed into every cache key,
  /// so a bump (ANALYZE, feedback ingestion) invalidates all cached plans.
  std::shared_ptr<const Catalog> catalog;
  /// Execution-feedback store backing the "oracle" model. Only consulted
  /// when a query selects that model. Feedback classes are NodeSets over
  /// ONE query's relation numbering, so the store must be scoped:
  /// `feedback_scope` names the (structural) fingerprint of the query the
  /// store was filled from, and oracle requests for any other query are
  /// rejected with a structured error instead of silently serving a
  /// different query's cardinalities. A default (zero) scope disables the
  /// check — for callers that guarantee single-template traffic.
  std::shared_ptr<const CardinalityFeedback> feedback;
  Fingerprint feedback_scope;
  /// Single-flight coalescing of concurrent cache misses for one
  /// (fingerprint, model, stats_version) key; on by default (requires the
  /// cache — with cache_byte_budget == 0 there is no key to coalesce on).
  bool coalesce = true;
  /// Admission watermarks and tenant fair-share knobs for the Serve front
  /// door (service/admission.h). Defaults disable every mechanism; batch
  /// and OptimizeOne callers bypass admission entirely.
  AdmissionOptions admission;
};

/// One request through the burst-traffic front door (PlanService::Serve):
/// the spec plus the serving context admission needs.
struct QueryRequest {
  /// Non-owning; must outlive the call. Traffic loops serve many requests
  /// from one template pool, so the request does not copy the spec.
  const QuerySpec* spec = nullptr;
  /// Cardinality model, by registry name; empty = the service default.
  std::string model;
  /// Tenant id for per-tenant fair-share admission; empty = the default
  /// tenant (still bucketed when tenant isolation is on).
  std::string tenant;
};

/// Outcome for one query of a batch.
struct ServiceResult {
  bool success = false;
  std::string error;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Registry name of the enumerator that produced (or originally
  /// produced, for cache/coalesced hits) the served plan.
  std::string algorithm;
  /// Registry name of the cardinality model the plan was estimated under.
  std::string model;
  bool cache_hit = false;
  /// Served by waiting on another request's in-flight optimization of the
  /// same key (single-flight coalescing) — exclusive with cache_hit.
  bool coalesced = false;
  /// Admitted past the soft watermark: served the GOO fast path instead of
  /// an exact route.
  bool degraded = false;
  /// Refused at admission (hard watermark or tenant bucket): success is
  /// false, error is structured, and retry_after_ms hints when to retry.
  bool rejected = false;
  double retry_after_ms = 0.0;
  double latency_ms = 0.0;
  /// Full optimizer result, rehydrated from the serialized plan (both on
  /// cache hits and fresh optimizations), so it owns its DP table and
  /// outlives the pooled workspace; holds what ExtractPlan needs.
  OptimizeResult result;
};

/// Aggregate statistics for one batch (OptimizeBatch) or for the service's
/// lifetime (PlanService::LifetimeStats).
struct ServiceStats {
  uint64_t queries = 0;
  uint64_t failures = 0;
  uint64_t cache_hits = 0;
  /// Requests served by coalescing onto an in-flight optimization instead
  /// of running their own — the cache-stampede savings, counted separately
  /// from cache_hits.
  uint64_t coalesced_hits = 0;
  /// Requests shed to the GOO fast path past the soft watermark.
  uint64_t degraded = 0;
  /// Requests rejected at admission (hard watermark or tenant bucket).
  uint64_t rejected = 0;
  /// Rejections broken down by tenant id ("" = default tenant).
  std::map<std::string, uint64_t> tenant_rejects;
  /// In-flight occupancy: current gauge at snapshot time and the lifetime
  /// peak (only meaningful on LifetimeStats snapshots — batches do not go
  /// through admission).
  int queue_depth = 0;
  int peak_queue_depth = 0;
  /// Fresh enumerator runs per name ("DPhyp", "GOO", ...). Cache hits and
  /// coalesced hits are NOT counted here — route_counts is the "how many
  /// optimizations actually ran" ledger, which is what the stampede tests
  /// assert on; queries = sum(route_counts) + cache_hits + coalesced_hits
  /// + rejected + failed-before-routing.
  std::map<std::string, uint64_t> route_counts;
  /// Queries whose exact attempt hit the deadline and were served the GOO
  /// fallback.
  uint64_t deadline_aborts = 0;
  double wall_ms = 0.0;
  double queries_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Lifetime snapshot of the shared cache at batch end (not a per-batch
  /// delta — batches may run concurrently). Batch-local hits are
  /// `cache_hits`.
  PlanCache::Stats cache;

  std::string ToString() const;
};

/// A batch's results (positionally aligned with the input specs) and stats.
struct BatchOutcome {
  std::vector<ServiceResult> results;
  ServiceStats stats;
};

class PlanService {
 public:
  explicit PlanService(ServiceOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Optimizes one spec on the calling thread (cache-integrated, runs on a
  /// pooled workspace) under the service's default cardinality model.
  /// Bypasses admission control (no shedding, no tenant accounting) but
  /// participates in single-flight coalescing.
  ServiceResult OptimizeOne(const QuerySpec& spec);

  /// Same, under the named cardinality model ("product", "stats",
  /// "oracle", or anything registered); empty falls back to the service
  /// default. Plans are cached per (graph, model, stats_version), so
  /// models never serve each other's plans.
  ServiceResult OptimizeOne(const QuerySpec& spec, std::string_view model);

  /// The burst-traffic front door: admission control (watermark shedding,
  /// per-tenant fair share) followed by the cache/coalesce/optimize
  /// pipeline, on the calling thread. Rejected requests return
  /// success=false with rejected=true and a retry_after_ms hint without
  /// touching the optimizer at all.
  ServiceResult Serve(const QueryRequest& request);

  /// Runs the whole batch across the worker pool and blocks until done.
  /// Safe to call from multiple threads (batches share the queue fairly).
  BatchOutcome OptimizeBatch(const std::vector<QuerySpec>& specs);

  PlanCache& cache() { return cache_; }
  WorkspacePool& workspaces() { return workspaces_; }
  AdmissionController& admission() { return admission_; }
  SingleFlightTable& inflight() { return inflight_; }
  const ServiceOptions& options() const { return options_; }
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Lifetime counters across every OptimizeOne/Serve/OptimizeBatch call:
  /// queries, hits, coalesced/shed/reject counts, per-tenant rejects, the
  /// in-flight gauge and its peak, per-enumerator fresh-run counts, and
  /// the cache snapshot. Latency percentiles are batch-scoped and stay
  /// zero here.
  ServiceStats LifetimeStats() const;

  /// Current version of the service's statistics catalog (0 without one).
  /// Mixed into every cache key: after a bump, all earlier entries are
  /// unreachable (and age out through LRU) — the cache-invalidation story
  /// for feedback-driven stats refreshes.
  uint64_t stats_version() const {
    return options_.catalog != nullptr ? options_.catalog->stats_version() : 0;
  }

 private:
  void WorkerLoop();

  /// The shared pipeline behind OptimizeOne and Serve. `degrade` forces
  /// the GOO fast path on the miss side (soft-watermark shedding);
  /// degraded plans are served and published to coalesced followers but
  /// never cached (they would pin a heuristic plan on a key the exact
  /// routes normally win).
  ServiceResult OptimizeInternal(const QuerySpec& spec,
                                 std::string_view model_name, bool degrade);

  /// Folds one finished result into the lifetime counters.
  void RecordLifetime(const ServiceResult& result);

  ServiceOptions options_;
  PlanCache cache_;
  bool cache_enabled_ = true;
  WorkspacePool workspaces_;
  SingleFlightTable inflight_;
  AdmissionController admission_;

  mutable std::mutex lifetime_mu_;
  ServiceStats lifetime_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dphyp

#endif  // DPHYP_SERVICE_PLAN_SERVICE_H_
