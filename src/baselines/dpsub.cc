#include "baselines/dpsub.h"

#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

class DpsubEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "DPsub"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    // DPsub pays Θ(3^n) splits whatever the shape, so it only wins where
    // almost every split succeeds: small dense simple graphs (its loop has
    // tiny constants there).
    if (shape.generalized || !ExactDpFeasible(shape, policy)) return {};
    if (shape.num_nodes <= policy.dpsub_node_limit &&
        shape.density >= policy.min_dpsub_density) {
      return {60.0, "small dense graph: 2^n loop wins"};
    }
    return {};
  }
  const char* FrontierSummary() const override {
    return "exact; bids only on small dense simple graphs (<= 12 nodes, "
           "density >= 0.8)";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDpsub(*request.graph, *request.estimator,
                         *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeDpsub(const BasicHypergraph<NS>& graph,
                                      const BasicCardinalityModel<NS>& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options,
                                      BasicOptimizerWorkspace<NS>* workspace) {
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  BasicOptimizerContext<NS> ctx(
      graph, est, cost_model, effective,
      workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  auto run = [&] {
    ctx.InitLeaves();
    // Ascending numeric order over all non-empty subsets of the full node
    // set: the Vance–Maier walk over a contiguous mask is exactly the
    // pre-wide `for (bits = 1; bits <= full; ++bits)` counter, at any
    // node-set width (subsets still precede supersets).
    for (NS S : NonEmptySubsetsOf(graph.AllNodes())) {
      if (S.IsSingleton()) continue;
      // Deadline poll per subset: on emit-starved shapes (most subsets
      // disconnected) the combine step's own poll would never run.
      ctx.Tick();
      // Each unordered split once: S1 contains min(S). EmitCsgCmp tries
      // both orientations, covering commutativity.
      const NS min_set = S.MinSet();
      const NS rest = S.MinusMin();
      auto try_split = [&](NS S1, NS S2) {
        ++ctx.stats().pairs_tested;
        if (!ctx.table().Contains(S1)) return;          // S1 connected?
        if (!ctx.table().Contains(S2)) return;          // S2 connected?
        if (!graph.ConnectsSets(S1, S2)) return;        // joined by an edge?
        ctx.EmitCsgCmp(S1, S2);
      };
      for (NS part : NonEmptySubsetsOf(rest)) {
        if (part == rest) break;  // S2 would be empty
        try_split(min_set | part, S - (min_set | part));
      }
      try_split(min_set, rest);
    }
  };
  return RunGuarded("DPsub", ctx, graph.AllNodes(), run);
}

std::unique_ptr<Enumerator> MakeDpsubEnumerator() {
  return std::make_unique<DpsubEnumerator>();
}

template OptimizeResult OptimizeDpsub<NodeSet>(const Hypergraph&,
                                               const CardinalityModel&,
                                               const CostModel&,
                                               const OptimizerOptions&,
                                               OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeDpsub<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeDpsub<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
