#include "baselines/dpsub.h"

#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

class DpsubEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "DPsub"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    // DPsub pays Θ(3^n) splits whatever the shape, so it only wins where
    // almost every split succeeds: small dense simple graphs (its loop has
    // tiny constants there).
    if (shape.generalized || !ExactDpFeasible(shape, policy)) return {};
    if (shape.num_nodes <= policy.dpsub_node_limit &&
        shape.density >= policy.min_dpsub_density) {
      return {60.0, "small dense graph: 2^n loop wins"};
    }
    return {};
  }
  const char* FrontierSummary() const override {
    return "exact; bids only on small dense simple graphs (<= 12 nodes, "
           "density >= 0.8)";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDpsub(*request.graph, *request.estimator,
                         *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

OptimizeResult OptimizeDpsub(const Hypergraph& graph,
                             const CardinalityModel& est,
                             const CostModel& cost_model,
                             const OptimizerOptions& options,
                             OptimizerWorkspace* workspace) {
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  OptimizerContext ctx(graph, est, cost_model, effective,
                       workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  auto run = [&] {
    ctx.InitLeaves();
    const uint64_t full = graph.AllNodes().bits();

    for (uint64_t bits = 3; bits <= full; ++bits) {
      NodeSet S(bits);
      if (S.IsSingleton()) continue;
      // Deadline poll per subset: on emit-starved shapes (most subsets
      // disconnected) the combine step's own poll would never run.
      ctx.Tick();
      // Each unordered split once: S1 contains min(S). EmitCsgCmp tries
      // both orientations, covering commutativity.
      const NodeSet min_set = S.MinSet();
      const NodeSet rest = S.MinusMin();
      auto try_split = [&](NodeSet S1, NodeSet S2) {
        ++ctx.stats().pairs_tested;
        if (!ctx.table().Contains(S1)) return;          // S1 connected?
        if (!ctx.table().Contains(S2)) return;          // S2 connected?
        if (!graph.ConnectsSets(S1, S2)) return;        // joined by an edge?
        ctx.EmitCsgCmp(S1, S2);
      };
      for (NodeSet part : NonEmptySubsetsOf(rest)) {
        if (part == rest) break;  // S2 would be empty
        try_split(min_set | part, S - (min_set | part));
      }
      try_split(min_set, rest);
    }
  };
  return RunGuarded("DPsub", ctx, graph.AllNodes(), run);
}

std::unique_ptr<Enumerator> MakeDpsubEnumerator() {
  return std::make_unique<DpsubEnumerator>();
}

}  // namespace dphyp
