#include "baselines/dpsub.h"

#include "util/subset.h"

namespace dphyp {

OptimizeResult OptimizeDpsub(const Hypergraph& graph,
                             const CardinalityEstimator& est,
                             const CostModel& cost_model,
                             const OptimizerOptions& options) {
  OptimizerContext ctx(graph, est, cost_model, options);
  ctx.InitLeaves();
  const uint64_t full = graph.AllNodes().bits();

  for (uint64_t bits = 3; bits <= full; ++bits) {
    NodeSet S(bits);
    if (S.IsSingleton()) continue;
    // Each unordered split once: S1 contains min(S). EmitCsgCmp tries both
    // orientations, covering commutativity.
    const NodeSet min_set = S.MinSet();
    const NodeSet rest = S.MinusMin();
    auto try_split = [&](NodeSet S1, NodeSet S2) {
      ++ctx.stats().pairs_tested;
      if (!ctx.table().Contains(S1)) return;          // S1 connected?
      if (!ctx.table().Contains(S2)) return;          // S2 connected?
      if (!graph.ConnectsSets(S1, S2)) return;        // joined by an edge?
      ctx.EmitCsgCmp(S1, S2);
    };
    for (NodeSet part : NonEmptySubsetsOf(rest)) {
      if (part == rest) break;  // S2 would be empty
      try_split(min_set | part, S - (min_set | part));
    }
    try_split(min_set, rest);
  }
  return ctx.Finish(graph.AllNodes());
}

}  // namespace dphyp
