#include "baselines/goo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>
#include <vector>

namespace dphyp {

namespace {

struct Candidate {
  int i = 0;
  int j = 0;
  double out_card = 0.0;
};

}  // namespace

OptimizeResult OptimizeGoo(const Hypergraph& graph,
                           const CardinalityEstimator& est,
                           const CostModel& cost_model,
                           const OptimizerOptions& options) {
  // GOO must keep every merge it emits (pruning a merge would abort the
  // greedy chain) and is itself the pruning-bound provider — recursing into
  // another GOO run from the context constructor would never terminate.
  OptimizerOptions effective = options;
  effective.enable_pruning = false;
  OptimizerContext ctx(graph, est, cost_model, effective);
  ctx.InitLeaves();

  std::vector<NodeSet> comps;
  comps.reserve(graph.NumNodes());
  for (int v = 0; v < graph.NumNodes(); ++v) comps.push_back(NodeSet::Single(v));

  // Component pairs are re-examined every round, but connectivity and the
  // estimated join size of a pair never change while both components
  // survive; memoizing them keeps GOO at O(n^2) estimator calls overall
  // (NaN marks a disconnected pair).
  std::map<std::pair<uint64_t, uint64_t>, double> pair_cache;
  auto pair_card = [&](NodeSet a, NodeSet b) {
    std::pair<uint64_t, uint64_t> key{std::min(a.bits(), b.bits()),
                                      std::max(a.bits(), b.bits())};
    auto it = pair_cache.find(key);
    if (it != pair_cache.end()) return it->second;
    double card = graph.ConnectsSets(a, b)
                      ? est.Estimate(a | b)
                      : std::numeric_limits<double>::quiet_NaN();
    pair_cache.emplace(key, card);
    return card;
  };

  while (comps.size() > 1) {
    std::vector<Candidate> candidates;
    for (size_t i = 0; i < comps.size(); ++i) {
      for (size_t j = i + 1; j < comps.size(); ++j) {
        double card = pair_card(comps[i], comps[j]);
        if (std::isnan(card)) continue;
        candidates.push_back({static_cast<int>(i), static_cast<int>(j), card});
      }
    }
    // Smallest intermediate result first; ties resolved by component
    // position, which is itself deterministic (merge order is deterministic).
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.out_card != b.out_card) return a.out_card < b.out_card;
                if (a.i != b.i) return a.i < b.i;
                return a.j < b.j;
              });
    // The greedy pick may be rejected by the combine step (TES violations,
    // invalid operator constellations, lateral ordering), so fall through to
    // the next-best pair until one merge sticks.
    bool merged = false;
    for (const Candidate& c : candidates) {
      const NodeSet combined = comps[c.i] | comps[c.j];
      ctx.EmitCsgCmp(comps[c.i], comps[c.j]);
      // Require a real inner node, not just a table entry: a combine whose
      // cost stayed +inf (cardinality overflow) records no children.
      const PlanEntry* entry = ctx.table().Find(combined);
      if (entry == nullptr || entry->IsLeaf()) continue;
      comps[c.i] = combined;
      comps.erase(comps.begin() + c.j);
      merged = true;
      break;
    }
    if (!merged) break;  // disconnected graph or no valid merge left
  }

  return ctx.Finish(graph.AllNodes());
}

OptimizeResult OptimizeGoo(const Hypergraph& graph) {
  CardinalityEstimator est(graph);
  return OptimizeGoo(graph, est, DefaultCostModel());
}

double GooCostUpperBound(const Hypergraph& graph,
                         const CardinalityEstimator& est,
                         const CostModel& cost_model,
                         const OptimizerOptions& base_options) {
  OptimizeResult r = OptimizeGoo(graph, est, cost_model, base_options);
  return r.success ? r.cost : std::numeric_limits<double>::infinity();
}

}  // namespace dphyp
