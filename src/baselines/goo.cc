#include "baselines/goo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "core/workspace.h"

namespace dphyp {

namespace {

/// The shared implementation behind both public entry points: `table`
/// routes the run onto an external DP table slot (workspace primary table
/// for a routed/fallback GOO run, the *seed* slot when bootstrapping an
/// exact run's pruning bound), `scratch` reuses the component/candidate/
/// memo storage. Either may be null for self-contained behavior.
template <typename NS>
BasicOptimizeResult<NS> RunGoo(const BasicHypergraph<NS>& graph,
                               const BasicCardinalityModel<NS>& est,
                               const CostModel& cost_model,
                               const OptimizerOptions& options,
                               BasicDpTable<NS>* table,
                               BasicGooScratch<NS>* scratch) {
  using Candidate = typename BasicGooScratch<NS>::Candidate;
  // GOO must keep every merge it emits (pruning a merge would abort the
  // greedy chain) and is itself the pruning-bound provider — recursing into
  // another GOO run from the seed resolution would never terminate. It is
  // also the system's deadline fallback, so the cancellation token is
  // stripped: the polynomial pass always completes.
  OptimizerOptions effective = options;
  effective.enable_pruning = false;
  effective.cancellation = nullptr;
  BasicOptimizerContext<NS> ctx(graph, est, cost_model, effective, table);

  std::optional<BasicGooScratch<NS>> local_scratch;
  BasicGooScratch<NS>& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.Clear();

  auto run = [&] {
    ctx.InitLeaves();

    std::vector<NS>& comps = s.components;
    comps.reserve(graph.NumNodes());
    for (int v = 0; v < graph.NumNodes(); ++v) {
      comps.push_back(NS::Single(v));
    }

    // Component pairs are re-examined every round, but connectivity and the
    // estimated join size of a pair never change while both components
    // survive; memoizing them keeps GOO at O(n^2) estimator calls overall
    // (NaN marks a disconnected pair).
    auto pair_card = [&](NS a, NS b) {
      std::pair<NS, NS> key = b < a ? std::pair<NS, NS>{b, a}
                                    : std::pair<NS, NS>{a, b};
      auto it = s.pair_cardinality.find(key);
      if (it != s.pair_cardinality.end()) return it->second;
      double card = graph.ConnectsSets(a, b)
                        ? est.Estimate(a | b)
                        : std::numeric_limits<double>::quiet_NaN();
      s.pair_cardinality.emplace(key, card);
      return card;
    };

    while (comps.size() > 1) {
      std::vector<Candidate>& candidates = s.candidates;
      candidates.clear();
      for (size_t i = 0; i < comps.size(); ++i) {
        for (size_t j = i + 1; j < comps.size(); ++j) {
          double card = pair_card(comps[i], comps[j]);
          if (std::isnan(card)) continue;
          candidates.push_back(
              {static_cast<int>(i), static_cast<int>(j), card});
        }
      }
      // Smallest intermediate result first; ties resolved by component
      // position, which is itself deterministic (merge order is
      // deterministic).
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.out_card != b.out_card) return a.out_card < b.out_card;
                  if (a.i != b.i) return a.i < b.i;
                  return a.j < b.j;
                });
      // The greedy pick may be rejected by the combine step (TES violations,
      // invalid operator constellations, lateral ordering), so fall through
      // to the next-best pair until one merge sticks.
      bool merged = false;
      for (const Candidate& c : candidates) {
        const NS combined = comps[c.i] | comps[c.j];
        ctx.EmitCsgCmp(comps[c.i], comps[c.j]);
        // Require a real inner node, not just a table entry: a combine whose
        // cost stayed +inf (cardinality overflow) records no children.
        const BasicPlanEntry<NS>* entry = ctx.table().Find(combined);
        if (entry == nullptr || entry->IsLeaf()) continue;
        comps[c.i] = combined;
        comps.erase(comps.begin() + c.j);
        merged = true;
        break;
      }
      if (!merged) break;  // disconnected graph or no valid merge left
    }
  };
  return RunGuarded("GOO", ctx, graph.AllNodes(), run);
}

class GooEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "GOO"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  bool Exact() const override { return false; }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    // The floor bid: GOO handles everything in polynomial time, so it wins
    // exactly when every exact enumerator refused (infeasible shapes).
    if (shape.density >= policy.min_dense_density &&
        shape.num_nodes > policy.dense_node_limit) {
      return {0.0, "dense graph: csg-cmp pairs ~3^n"};
    }
    return {0.0, "past exact-DP feasibility frontier"};
  }
  const char* FrontierSummary() const override {
    return "heuristic floor bid on every graph; wins only when every other "
           "bidder refuses";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeGoo(*request.graph, *request.estimator, *request.cost_model,
                       request.options, &workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeGoo(const BasicHypergraph<NS>& graph,
                                    const BasicCardinalityModel<NS>& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options,
                                    BasicOptimizerWorkspace<NS>* workspace) {
  if (workspace != nullptr) workspace->CountRun();
  return RunGoo(graph, est, cost_model, options,
                workspace != nullptr ? &workspace->table() : nullptr,
                workspace != nullptr ? &workspace->goo() : nullptr);
}

OptimizeResult OptimizeGoo(const Hypergraph& graph) {
  CardinalityEstimator est(graph);
  return OptimizeGoo(graph, est, DefaultCostModel());
}

template <typename NS>
double GooCostUpperBound(const BasicHypergraph<NS>& graph,
                         const BasicCardinalityModel<NS>& est,
                         const CostModel& cost_model,
                         const OptimizerOptions& base_options,
                         BasicOptimizerWorkspace<NS>* workspace) {
  // The seed run must not claim the workspace's primary table: the exact
  // run it bootstraps is about to run there.
  BasicOptimizeResult<NS> r =
      RunGoo(graph, est, cost_model, base_options,
             workspace != nullptr ? &workspace->seed_table() : nullptr,
             workspace != nullptr ? &workspace->goo() : nullptr);
  return r.success ? r.cost : std::numeric_limits<double>::infinity();
}

std::unique_ptr<Enumerator> MakeGooEnumerator() {
  return std::make_unique<GooEnumerator>();
}

template OptimizeResult OptimizeGoo<NodeSet>(const Hypergraph&,
                                             const CardinalityModel&,
                                             const CostModel&,
                                             const OptimizerOptions&,
                                             OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeGoo<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeGoo<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);
template double GooCostUpperBound<NodeSet>(const Hypergraph&,
                                           const CardinalityModel&,
                                           const CostModel&,
                                           const OptimizerOptions&,
                                           OptimizerWorkspace*);
template double GooCostUpperBound<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template double GooCostUpperBound<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
