// Greedy operator ordering (GOO, Fegaras '98): a polynomial-time heuristic
// fallback for graphs whose connected-subgraph count makes exhaustive DP
// infeasible (Sec. 3.6 motivates bounding DP table growth). Starting from
// the single-relation components, GOO repeatedly merges the connected
// component pair whose join produces the smallest intermediate result,
// until one component covers the whole query.
//
// GOO runs through the shared OptimizerContext combine step, so operator
// recovery, TES validation, dependent conversion and costing behave exactly
// as in the exhaustive algorithms; the result is a regular OptimizeResult
// whose DP table holds one entry per merge (2n - 1 entries total), from
// which ExtractPlan materializes a valid plan tree. The plan is *not*
// guaranteed optimal — this is the price of handling 64-relation cliques.
//
// GOO is the system's bounded-latency escape hatch twice over: adaptive
// dispatch routes infeasible shapes here, and OptimizationSession re-runs
// it when an exact enumerator blows its deadline. It therefore strips both
// pruning (it *is* the bound provider) and the cancellation token (the
// fallback must always complete) from its options. Width-generic: the wide
// path uses it both as quality floor and as pruning-bound seed.
#ifndef DPHYP_BASELINES_GOO_H_
#define DPHYP_BASELINES_GOO_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs greedy operator ordering. Deterministic: ties between candidate
/// merges are broken by the smaller (min-node, min-node) component pair.
/// Deprecated as a public entry point: prefer OptimizeByName("GOO", ...)
/// or an OptimizationSession.
template <typename NS>
BasicOptimizeResult<NS> OptimizeGoo(const BasicHypergraph<NS>& graph,
                                    const BasicCardinalityModel<NS>& est,
                                    const CostModel& cost_model,
                                    const OptimizerOptions& options = {},
                                    BasicOptimizerWorkspace<NS>* workspace =
                                        nullptr);

/// Convenience wrapper with default estimator and cost model.
OptimizeResult OptimizeGoo(const Hypergraph& graph);

/// Cost of the GOO plan for `graph`, or +inf when GOO finds no valid plan
/// (disconnected graph, all merges rejected). This is the branch-and-bound
/// seed used by the pruned exact enumerators: any valid plan's cost is an
/// upper bound on the optimum. `base_options` carries the TES constraints
/// of the caller so the bound is valid for the same search space; its
/// pruning fields are ignored (GOO never prunes — it *is* the bound).
/// With a workspace, the seed run uses the workspace's *seed* table slot —
/// the primary table belongs to the exact run being seeded — and its GOO
/// scratch, keeping pooled serving allocation-free.
template <typename NS>
double GooCostUpperBound(const BasicHypergraph<NS>& graph,
                         const BasicCardinalityModel<NS>& est,
                         const CostModel& cost_model,
                         const OptimizerOptions& base_options = {},
                         BasicOptimizerWorkspace<NS>* workspace = nullptr);

/// The registry entry for GOO (the always-feasible fallback bid).
std::unique_ptr<Enumerator> MakeGooEnumerator();

}  // namespace dphyp

#endif  // DPHYP_BASELINES_GOO_H_
