// DPsub: subset-driven dynamic programming (Sec. 4.1). For every node set S
// in increasing numeric order (subsets precede supersets) it enumerates all
// splits (S1, S \ S1) and keeps the cheapest valid combination. The
// existence + connectedness tests are hyperedge-aware; everything else is
// the textbook algorithm. Complexity Θ(3^n) candidate splits regardless of
// graph shape, which is why it loses badly on chains/cycles and large stars
// (Figs. 5–7). Width-generic: the outer loop iterates the Vance–Maier
// subset walk (util/subset.h) instead of a raw 64-bit counter, which
// preserves the exact numeric order at any word count.
#ifndef DPHYP_BASELINES_DPSUB_H_
#define DPHYP_BASELINES_DPSUB_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs DPsub over `graph`. Deprecated as a public entry point: prefer
/// OptimizeByName("DPsub", ...) or an OptimizationSession.
template <typename NS>
BasicOptimizeResult<NS> OptimizeDpsub(const BasicHypergraph<NS>& graph,
                                      const BasicCardinalityModel<NS>& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options = {},
                                      BasicOptimizerWorkspace<NS>* workspace =
                                          nullptr);

/// The registry entry for DPsub (bids on small dense simple graphs).
std::unique_ptr<Enumerator> MakeDpsubEnumerator();

}  // namespace dphyp

#endif  // DPHYP_BASELINES_DPSUB_H_
