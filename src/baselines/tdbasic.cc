#include "baselines/tdbasic.h"

#include <unordered_set>

#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

class TdBasicSolver {
 public:
  TdBasicSolver(const Hypergraph& graph, OptimizerContext& ctx)
      : graph_(graph), ctx_(ctx) {}

  void Run() {
    ctx_.InitLeaves();
    Solve(graph_.AllNodes());
  }

 private:
  /// Returns true iff a plan for S exists. Populates the DP table on the
  /// way back up (children strictly before parents, so the shared combine
  /// step finds both inputs).
  bool Solve(NodeSet S) {
    if (ctx_.table().Contains(S)) return true;
    if (failed_.count(S.bits())) return false;
    const NodeSet min_set = S.MinSet();
    const NodeSet rest = S.MinusMin();
    auto try_split = [&](NodeSet S1, NodeSet S2) {
      ++ctx_.stats().pairs_tested;
      // Deadline poll per candidate split: the generate-and-test failures
      // never reach the combine step's own poll.
      ctx_.Tick();
      if (!graph_.ConnectsSets(S1, S2)) return;  // generate-and-test
      if (!Solve(S1) || !Solve(S2)) return;
      ctx_.EmitCsgCmp(S1, S2);
    };
    for (NodeSet part : NonEmptySubsetsOf(rest)) {
      if (part == rest) break;
      try_split(min_set | part, S - (min_set | part));
    }
    try_split(min_set, rest);
    // A combine may still have rejected every orientation, so consult the
    // table rather than trusting that EmitCsgCmp produced a plan.
    const bool ok = ctx_.table().Contains(S);
    if (!ok) failed_.insert(S.bits());
    return ok;
  }

  const Hypergraph& graph_;
  OptimizerContext& ctx_;
  std::unordered_set<uint64_t> failed_;
};

class TdBasicEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "TDbasic"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  // Never bids: the naive memoization school the paper argues against is
  // kept as a comparison point, not a serving route.
  const char* FrontierSummary() const override {
    return "exact; never auto-bids (naive top-down baseline)";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeTdBasic(*request.graph, *request.estimator,
                           *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

OptimizeResult OptimizeTdBasic(const Hypergraph& graph,
                               const CardinalityModel& est,
                               const CostModel& cost_model,
                               const OptimizerOptions& options,
                               OptimizerWorkspace* workspace) {
  // The memoization above treats table membership as "subproblem solved";
  // branch-and-bound pruning removes entries and would re-derive failures,
  // so the top-down algorithms always run unpruned.
  OptimizerOptions effective = options;
  effective.enable_pruning = false;
  OptimizerContext ctx(graph, est, cost_model, effective,
                       workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  TdBasicSolver solver(graph, ctx);
  return RunGuarded("TDbasic", ctx, graph.AllNodes(), [&] { solver.Run(); });
}

std::unique_ptr<Enumerator> MakeTdBasicEnumerator() {
  return std::make_unique<TdBasicEnumerator>();
}

}  // namespace dphyp
