// TDbasic: naive top-down memoization. Recursively splits a set into every
// (min-anchored) partition, tests connectivity generate-and-test style, and
// memoizes results — the state of the art in top-down enumeration *before*
// DeHaan and Tompa's Top-Down Partition Search, and the memoization school
// the paper's title argues dynamic programming "strikes back" against.
// Useful as the third point of comparison in bench_ccp_counts.
#ifndef DPHYP_BASELINES_TDBASIC_H_
#define DPHYP_BASELINES_TDBASIC_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs naive top-down memoization over `graph`. Deprecated as a public
/// entry point: prefer OptimizeByName("TDbasic", ...) or an
/// OptimizationSession.
OptimizeResult OptimizeTdBasic(const Hypergraph& graph,
                               const CardinalityModel& est,
                               const CostModel& cost_model,
                               const OptimizerOptions& options = {},
                               OptimizerWorkspace* workspace = nullptr);

/// The registry entry for TDbasic (never auto-routed — a measured
/// baseline, selectable by name).
std::unique_ptr<Enumerator> MakeTdBasicEnumerator();

}  // namespace dphyp

#endif  // DPHYP_BASELINES_TDBASIC_H_
