#include "baselines/dpccp.h"

#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

/// DPccp enumeration. For simple graphs, any subset of a csg's neighborhood
/// grows it into another csg and any grown complement stays joined to S1
/// (the seed is adjacent), so no connectivity tests are needed at all.
template <typename NS>
class DpccpSolver {
 public:
  DpccpSolver(const BasicHypergraph<NS>& graph, BasicOptimizerContext<NS>& ctx)
      : graph_(graph), ctx_(ctx) {}

  void Run() {
    ctx_.InitLeaves();
    for (int v = graph_.NumNodes() - 1; v >= 0; --v) {
      NS single = NS::Single(v);
      EmitCsg(single);
      EnumerateCsgRec(single, NS::UpTo(v));
    }
  }

 private:
  NS SimpleNeighborhood(NS S, NS X) const {
    NS nbh;
    for (int v : S) nbh |= graph_.SimpleNeighbors(v);
    return nbh - (S | X);
  }

  void EnumerateCsgRec(NS S1, NS X) {
    NS nbh = SimpleNeighborhood(S1, X);
    if (nbh.Empty()) return;
    for (NS n : NonEmptySubsetsOf(nbh)) EmitCsg(S1 | n);
    NS x2 = X | nbh;
    for (NS n : NonEmptySubsetsOf(nbh)) EnumerateCsgRec(S1 | n, x2);
  }

  void EmitCsg(NS S1) {
    NS X = S1 | NS::Below(S1.Min());
    NS nbh = SimpleNeighborhood(S1, X);
    NS remaining = nbh;
    while (!remaining.Empty()) {
      int v = remaining.Max();
      remaining -= NS::Single(v);
      NS S2 = NS::Single(v);
      ctx_.EmitCsgCmp(S1, S2);  // v is adjacent to S1 by construction
      EnumerateCmpRec(S1, S2, X | (nbh & NS::UpTo(v)));
    }
  }

  void EnumerateCmpRec(NS S1, NS S2, NS X) {
    NS nbh = SimpleNeighborhood(S2, X);
    if (nbh.Empty()) return;
    for (NS n : NonEmptySubsetsOf(nbh)) ctx_.EmitCsgCmp(S1, S2 | n);
    NS x2 = X | nbh;
    for (NS n : NonEmptySubsetsOf(nbh)) EnumerateCmpRec(S1, S2 | n, x2);
  }

  const BasicHypergraph<NS>& graph_;
  BasicOptimizerContext<NS>& ctx_;
};

class DpccpEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "DPccp"; }
  bool CanHandle(const Hypergraph& graph) const override {
    return graph.complex_edge_ids().empty();
  }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    if (shape.has_complex_edges) return {};
    if (shape.num_nodes <= 2) return {100.0, "trivial"};
    // Chains and cycles have only O(n^2) connected subgraphs: exact DP is
    // always feasible, whatever n.
    if (!shape.generalized && shape.max_simple_degree <= 2) {
      return {100.0, "chain/cycle: quadratic subgraph count"};
    }
    // Generalized-but-simple graphs (non-inner ops, laterals) are DPhyp's
    // home turf; DPccp stays the preferred exact route for plain inner
    // graphs only.
    if (shape.generalized || !ExactDpFeasible(shape, policy)) return {};
    return {50.0, "simple inner graph"};
  }
  const char* FrontierSummary() const override {
    return "exact; wins chains/cycles at any size and simple inner graphs "
           "inside the frontier; refuses complex hyperedges";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDpccp(*request.graph, *request.estimator,
                         *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

template <typename NS>
BasicOptimizeResult<NS> OptimizeDpccp(const BasicHypergraph<NS>& graph,
                                      const BasicCardinalityModel<NS>& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options,
                                      BasicOptimizerWorkspace<NS>* workspace) {
  if (!graph.complex_edge_ids().empty()) {
    BasicOptimizeResult<NS> result;
    result.success = false;
    result.error = "DPccp handles only simple graphs; use DPhyp";
    result.stats.algorithm = "DPccp";
    return result;
  }
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  BasicOptimizerContext<NS> ctx(
      graph, est, cost_model, effective,
      workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  DpccpSolver<NS> solver(graph, ctx);
  return RunGuarded("DPccp", ctx, graph.AllNodes(), [&] { solver.Run(); });
}

std::unique_ptr<Enumerator> MakeDpccpEnumerator() {
  return std::make_unique<DpccpEnumerator>();
}

template OptimizeResult OptimizeDpccp<NodeSet>(const Hypergraph&,
                                               const CardinalityModel&,
                                               const CostModel&,
                                               const OptimizerOptions&,
                                               OptimizerWorkspace*);
template BasicOptimizeResult<WideNodeSet> OptimizeDpccp<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&,
    const BasicCardinalityModel<WideNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<WideNodeSet>*);
template BasicOptimizeResult<HugeNodeSet> OptimizeDpccp<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&,
    const BasicCardinalityModel<HugeNodeSet>&, const CostModel&,
    const OptimizerOptions&, BasicOptimizerWorkspace<HugeNodeSet>*);

}  // namespace dphyp
