#include "baselines/dpccp.h"

#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

/// DPccp enumeration. For simple graphs, any subset of a csg's neighborhood
/// grows it into another csg and any grown complement stays joined to S1
/// (the seed is adjacent), so no connectivity tests are needed at all.
class DpccpSolver {
 public:
  DpccpSolver(const Hypergraph& graph, OptimizerContext& ctx)
      : graph_(graph), ctx_(ctx) {}

  void Run() {
    ctx_.InitLeaves();
    for (int v = graph_.NumNodes() - 1; v >= 0; --v) {
      NodeSet single = NodeSet::Single(v);
      EmitCsg(single);
      EnumerateCsgRec(single, NodeSet::UpTo(v));
    }
  }

 private:
  NodeSet SimpleNeighborhood(NodeSet S, NodeSet X) const {
    NodeSet nbh;
    for (int v : S) nbh |= graph_.SimpleNeighbors(v);
    return nbh - (S | X);
  }

  void EnumerateCsgRec(NodeSet S1, NodeSet X) {
    NodeSet nbh = SimpleNeighborhood(S1, X);
    if (nbh.Empty()) return;
    for (NodeSet n : NonEmptySubsetsOf(nbh)) EmitCsg(S1 | n);
    NodeSet x2 = X | nbh;
    for (NodeSet n : NonEmptySubsetsOf(nbh)) EnumerateCsgRec(S1 | n, x2);
  }

  void EmitCsg(NodeSet S1) {
    NodeSet X = S1 | NodeSet::Below(S1.Min());
    NodeSet nbh = SimpleNeighborhood(S1, X);
    NodeSet remaining = nbh;
    while (!remaining.Empty()) {
      int v = remaining.Max();
      remaining -= NodeSet::Single(v);
      NodeSet S2 = NodeSet::Single(v);
      ctx_.EmitCsgCmp(S1, S2);  // v is adjacent to S1 by construction
      EnumerateCmpRec(S1, S2, X | (nbh & NodeSet::UpTo(v)));
    }
  }

  void EnumerateCmpRec(NodeSet S1, NodeSet S2, NodeSet X) {
    NodeSet nbh = SimpleNeighborhood(S2, X);
    if (nbh.Empty()) return;
    for (NodeSet n : NonEmptySubsetsOf(nbh)) ctx_.EmitCsgCmp(S1, S2 | n);
    NodeSet x2 = X | nbh;
    for (NodeSet n : NonEmptySubsetsOf(nbh)) EnumerateCmpRec(S1, S2 | n, x2);
  }

  const Hypergraph& graph_;
  OptimizerContext& ctx_;
};

class DpccpEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "DPccp"; }
  bool CanHandle(const Hypergraph& graph) const override {
    return graph.complex_edge_ids().empty();
  }
  DispatchBid Bid(const GraphShape& shape,
                  const DispatchPolicy& policy) const override {
    if (shape.has_complex_edges) return {};
    if (shape.num_nodes <= 2) return {100.0, "trivial"};
    // Chains and cycles have only O(n^2) connected subgraphs: exact DP is
    // always feasible, whatever n.
    if (!shape.generalized && shape.max_simple_degree <= 2) {
      return {100.0, "chain/cycle: quadratic subgraph count"};
    }
    // Generalized-but-simple graphs (non-inner ops, laterals) are DPhyp's
    // home turf; DPccp stays the preferred exact route for plain inner
    // graphs only.
    if (shape.generalized || !ExactDpFeasible(shape, policy)) return {};
    return {50.0, "simple inner graph"};
  }
  const char* FrontierSummary() const override {
    return "exact; wins chains/cycles at any size and simple inner graphs "
           "inside the frontier; refuses complex hyperedges";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDpccp(*request.graph, *request.estimator,
                         *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

OptimizeResult OptimizeDpccp(const Hypergraph& graph,
                             const CardinalityModel& est,
                             const CostModel& cost_model,
                             const OptimizerOptions& options,
                             OptimizerWorkspace* workspace) {
  if (!graph.complex_edge_ids().empty()) {
    OptimizeResult result;
    result.success = false;
    result.error = "DPccp handles only simple graphs; use DPhyp";
    result.stats.algorithm = "DPccp";
    return result;
  }
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  OptimizerContext ctx(graph, est, cost_model, effective,
                       workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  DpccpSolver solver(graph, ctx);
  return RunGuarded("DPccp", ctx, graph.AllNodes(), [&] { solver.Run(); });
}

std::unique_ptr<Enumerator> MakeDpccpEnumerator() {
  return std::make_unique<DpccpEnumerator>();
}

}  // namespace dphyp
