// DPsize (Fig. 1 of the paper): Selinger-style dynamic programming that
// generates plans in order of increasing size. The two tests marked (*) in
// the paper — disjointness and connectedness — fail far more often than
// they succeed, which is the inefficiency DPccp/DPhyp eliminate; the
// `pairs_tested` statistic records every candidate so bench_ccp_counts can
// reproduce that analysis. The connectedness test is hyperedge-aware, which
// is the only change DPsize needs to handle hypergraphs (Sec. 4.1).
#ifndef DPHYP_BASELINES_DPSIZE_H_
#define DPHYP_BASELINES_DPSIZE_H_

#include "core/optimizer.h"

namespace dphyp {

/// Runs DPsize over `graph`.
OptimizeResult OptimizeDpsize(const Hypergraph& graph,
                              const CardinalityEstimator& est,
                              const CostModel& cost_model,
                              const OptimizerOptions& options = {});

}  // namespace dphyp

#endif  // DPHYP_BASELINES_DPSIZE_H_
