// DPsize (Fig. 1 of the paper): Selinger-style dynamic programming that
// generates plans in order of increasing size. The two tests marked (*) in
// the paper — disjointness and connectedness — fail far more often than
// they succeed, which is the inefficiency DPccp/DPhyp eliminate; the
// `pairs_tested` statistic records every candidate so bench_ccp_counts can
// reproduce that analysis. The connectedness test is hyperedge-aware, which
// is the only change DPsize needs to handle hypergraphs (Sec. 4.1).
#ifndef DPHYP_BASELINES_DPSIZE_H_
#define DPHYP_BASELINES_DPSIZE_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs DPsize over `graph`. Deprecated as a public entry point: prefer
/// OptimizeByName("DPsize", ...) or an OptimizationSession.
OptimizeResult OptimizeDpsize(const Hypergraph& graph,
                              const CardinalityModel& est,
                              const CostModel& cost_model,
                              const OptimizerOptions& options = {},
                              OptimizerWorkspace* workspace = nullptr);

/// The registry entry for DPsize (never auto-routed — a measured baseline,
/// selectable by name).
std::unique_ptr<Enumerator> MakeDpsizeEnumerator();

}  // namespace dphyp

#endif  // DPHYP_BASELINES_DPSIZE_H_
