// TDpartition: graph-aware top-down partition search, standing in for
// DeHaan and Tompa's "Optimal Top-Down Join Enumeration" (SIGMOD 2007) —
// the memoization competitor the paper's title answers.
//
// Unlike TDbasic (which enumerates all 2^|S| splits of every set and
// tests), TDpartition enumerates, for each memoized set S, only *connected*
// subsets S1 ⊆ S that contain min(S), by growing S1 through the
// neighborhood restricted to S (the same growth idea DPccp/DPhyp use
// bottom-up). The complement is checked for connectivity via memoization.
// This avoids most failing tests and makes top-down enumeration competitive
// with bottom-up DP — "almost as efficient as dynamic programming"
// (Sec. 1) — while inheriting hyperedge support from the shared
// neighborhood machinery.
#ifndef DPHYP_BASELINES_TDPARTITION_H_
#define DPHYP_BASELINES_TDPARTITION_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs top-down partition search over `graph` (hyperedge-aware).
/// Deprecated as a public entry point: prefer
/// OptimizeByName("TDpartition", ...) or an OptimizationSession.
OptimizeResult OptimizeTdPartition(const Hypergraph& graph,
                                   const CardinalityModel& est,
                                   const CostModel& cost_model,
                                   const OptimizerOptions& options = {},
                                   OptimizerWorkspace* workspace = nullptr);

/// The registry entry for TDpartition (never auto-routed — the top-down
/// competitor, selectable by name).
std::unique_ptr<Enumerator> MakeTdPartitionEnumerator();

}  // namespace dphyp

#endif  // DPHYP_BASELINES_TDPARTITION_H_
