// DPccp [17]: the predecessor of DPhyp for *simple* graphs. Enumerates
// csg-cmp-pairs of an ordinary query graph with zero failing tests; it is
// the lower-bound-optimal algorithm DPhyp generalizes. Included both as a
// baseline (Sec. 4.4 claims DPhyp behaves exactly like DPccp on regular
// graphs — a claim the tests verify) and to measure DPhyp's constant-factor
// overhead on simple graphs.
#ifndef DPHYP_BASELINES_DPCCP_H_
#define DPHYP_BASELINES_DPCCP_H_

#include "core/optimizer.h"

namespace dphyp {

/// Runs DPccp. Requires a simple graph (no complex hyperedges); fails
/// cleanly otherwise.
OptimizeResult OptimizeDpccp(const Hypergraph& graph,
                             const CardinalityEstimator& est,
                             const CostModel& cost_model,
                             const OptimizerOptions& options = {});

}  // namespace dphyp

#endif  // DPHYP_BASELINES_DPCCP_H_
