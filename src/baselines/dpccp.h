// DPccp [17]: the predecessor of DPhyp for *simple* graphs. Enumerates
// csg-cmp-pairs of an ordinary query graph with zero failing tests; it is
// the lower-bound-optimal algorithm DPhyp generalizes. Included both as a
// baseline (Sec. 4.4 claims DPhyp behaves exactly like DPccp on regular
// graphs — a claim the tests verify) and to measure DPhyp's constant-factor
// overhead on simple graphs. Width-generic, so the same agreement checks
// run on wide (>64 relation) graphs.
#ifndef DPHYP_BASELINES_DPCCP_H_
#define DPHYP_BASELINES_DPCCP_H_

#include <memory>

#include "core/enumerator.h"
#include "core/optimizer.h"

namespace dphyp {

/// Runs DPccp. Requires a simple graph (no complex hyperedges); fails
/// cleanly otherwise. Deprecated as a public entry point: prefer
/// OptimizeByName("DPccp", ...) or an OptimizationSession.
template <typename NS>
BasicOptimizeResult<NS> OptimizeDpccp(const BasicHypergraph<NS>& graph,
                                      const BasicCardinalityModel<NS>& est,
                                      const CostModel& cost_model,
                                      const OptimizerOptions& options = {},
                                      BasicOptimizerWorkspace<NS>* workspace =
                                          nullptr);

/// The registry entry for DPccp (bids on simple inner graphs; refuses
/// complex hyperedges).
std::unique_ptr<Enumerator> MakeDpccpEnumerator();

}  // namespace dphyp

#endif  // DPHYP_BASELINES_DPCCP_H_
