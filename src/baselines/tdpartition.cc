#include "baselines/tdpartition.h"

#include <unordered_set>

#include "core/workspace.h"
#include "util/subset.h"

namespace dphyp {

namespace {

class TdPartitionSolver {
 public:
  TdPartitionSolver(const Hypergraph& graph, OptimizerContext& ctx)
      : graph_(graph), ctx_(ctx), all_(graph.AllNodes()) {}

  void Run() {
    ctx_.InitLeaves();
    Solve(all_);
  }

 private:
  /// True iff a plan for S exists; populates the DP table top-down.
  bool Solve(NodeSet S) {
    if (ctx_.table().Contains(S)) return true;
    if (failed_.count(S.bits())) return false;
    // Enumerate connected subsets S1 of S containing min(S) by recursive
    // neighborhood growth restricted to S; each unordered partition of S
    // is reached exactly once.
    Grow(S, S.MinSet(), NodeSet());
    const bool ok = ctx_.table().Contains(S);
    if (!ok) failed_.insert(S.bits());
    return ok;
  }

  /// Grows the connected S1 (contains min(S)) within S; X keeps the
  /// enumeration duplicate-free.
  void Grow(NodeSet S, NodeSet S1, NodeSet X) {
    if (S1 != S) TrySplit(S, S1);
    NodeSet nbh = graph_.Neighborhood(S1, X | (all_ - S));
    if (nbh.Empty()) return;
    NodeSet x2 = X | nbh;
    for (NodeSet n : NonEmptySubsetsOf(nbh)) {
      Grow(S, S1 | n, x2);
    }
  }

  void TrySplit(NodeSet S, NodeSet S1) {
    NodeSet S2 = S - S1;
    ++ctx_.stats().pairs_tested;
    // Deadline poll per candidate split (failed splits bypass the combine
    // step's poll).
    ctx_.Tick();
    if (!graph_.ConnectsSets(S1, S2)) return;
    if (!Solve(S1) || !Solve(S2)) return;
    ctx_.EmitCsgCmp(S1, S2);
  }

  const Hypergraph& graph_;
  OptimizerContext& ctx_;
  const NodeSet all_;
  std::unordered_set<uint64_t> failed_;
};

class TdPartitionEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "TDpartition"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  // Never bids: kept as the memoization competitor for the paper's
  // comparisons, selectable by name.
  const char* FrontierSummary() const override {
    return "exact; never auto-bids (partition-based top-down baseline)";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeTdPartition(*request.graph, *request.estimator,
                               *request.cost_model, request.options,
                               &workspace);
  }
};

}  // namespace

OptimizeResult OptimizeTdPartition(const Hypergraph& graph,
                                   const CardinalityModel& est,
                                   const CostModel& cost_model,
                                   const OptimizerOptions& options,
                                   OptimizerWorkspace* workspace) {
  // Same reasoning as TDbasic: table membership is the top-down "solved"
  // memo, so pruning must stay off.
  OptimizerOptions effective = options;
  effective.enable_pruning = false;
  OptimizerContext ctx(graph, est, cost_model, effective,
                       workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  TdPartitionSolver solver(graph, ctx);
  return RunGuarded("TDpartition", ctx, graph.AllNodes(),
                    [&] { solver.Run(); });
}

std::unique_ptr<Enumerator> MakeTdPartitionEnumerator() {
  return std::make_unique<TdPartitionEnumerator>();
}

}  // namespace dphyp
