// Deprecated compatibility shim over the Enumerator registry
// (core/enumerator.h). The Algorithm enum and the Optimize(Algorithm, ...)
// entry point predate the registry; they are kept for one release so
// downstream code migrates incrementally, but they no longer contain any
// per-algorithm dispatch — the enum maps to a registry name and everything
// routes through EnumeratorRegistry. Prefer OptimizeByName / the registry /
// OptimizationSession in new code (see docs/api.md for the migration
// table).
#ifndef DPHYP_BASELINES_ALL_ALGORITHMS_H_
#define DPHYP_BASELINES_ALL_ALGORITHMS_H_

#include <cstddef>
#include <iterator>
#include <string>

#include "baselines/dpccp.h"
#include "baselines/dpsize.h"
#include "baselines/dpsub.h"
#include "baselines/goo.h"
#include "baselines/tdbasic.h"
#include "baselines/tdpartition.h"
#include "core/dphyp.h"
#include "core/enumerator.h"
#include "util/result.h"

namespace dphyp {

/// Deprecated: enumerators are registry entries now; this enum survives as
/// a name shorthand for the original six exact algorithms.
enum class Algorithm {
  kDphyp,
  kDpsize,
  kDpsub,
  kDpccp,
  kTdBasic,
  kTdPartition,
};

inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kDphyp,   Algorithm::kDpsize,  Algorithm::kDpsub,
    Algorithm::kDpccp,   Algorithm::kTdBasic, Algorithm::kTdPartition};

/// Registry names indexed by enum value (the enum is a closed historical
/// set, so a lookup table replaces the old switch).
inline constexpr const char* kAlgorithmNames[] = {
    "DPhyp", "DPsize", "DPsub", "DPccp", "TDbasic", "TDpartition"};

inline const char* AlgorithmName(Algorithm algo) {
  const size_t index = static_cast<size_t>(algo);
  return index < std::size(kAlgorithmNames) ? kAlgorithmNames[index] : "?";
}

/// Deprecated: runs the selected algorithm through the registry. An
/// out-of-range enum value (or an unregistered name) yields a structured
/// error instead of the old default-constructed OptimizeResult.
inline Result<OptimizeResult> Optimize(Algorithm algo, const Hypergraph& graph,
                                       const CardinalityModel& est,
                                       const CostModel& cost_model,
                                       const OptimizerOptions& options = {},
                                       OptimizerWorkspace* workspace =
                                           nullptr) {
  return OptimizeByName(AlgorithmName(algo), graph, est, cost_model, options,
                        workspace);
}

/// Deprecated convenience wrapper with default estimator and cost model.
inline Result<OptimizeResult> Optimize(Algorithm algo,
                                       const Hypergraph& graph) {
  CardinalityEstimator est(graph);
  return Optimize(algo, graph, est, DefaultCostModel());
}

}  // namespace dphyp

#endif  // DPHYP_BASELINES_ALL_ALGORITHMS_H_
