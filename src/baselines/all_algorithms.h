// Uniform dispatch over every enumeration algorithm in the repository.
// Tests sweep this list to assert cost agreement; benches use it to run the
// paper's competitor lineups.
#ifndef DPHYP_BASELINES_ALL_ALGORITHMS_H_
#define DPHYP_BASELINES_ALL_ALGORITHMS_H_

#include <string>

#include "baselines/dpccp.h"
#include "baselines/dpsize.h"
#include "baselines/dpsub.h"
#include "baselines/tdbasic.h"
#include "baselines/tdpartition.h"
#include "core/dphyp.h"

namespace dphyp {

/// All join-enumeration algorithms.
enum class Algorithm {
  kDphyp,
  kDpsize,
  kDpsub,
  kDpccp,
  kTdBasic,
  kTdPartition,
};

inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kDphyp,   Algorithm::kDpsize,  Algorithm::kDpsub,
    Algorithm::kDpccp,   Algorithm::kTdBasic, Algorithm::kTdPartition};

inline const char* AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kDphyp:
      return "DPhyp";
    case Algorithm::kDpsize:
      return "DPsize";
    case Algorithm::kDpsub:
      return "DPsub";
    case Algorithm::kDpccp:
      return "DPccp";
    case Algorithm::kTdBasic:
      return "TDbasic";
    case Algorithm::kTdPartition:
      return "TDpartition";
  }
  return "?";
}

/// Runs the selected algorithm.
inline OptimizeResult Optimize(Algorithm algo, const Hypergraph& graph,
                               const CardinalityEstimator& est,
                               const CostModel& cost_model,
                               const OptimizerOptions& options = {}) {
  switch (algo) {
    case Algorithm::kDphyp:
      return OptimizeDphyp(graph, est, cost_model, options);
    case Algorithm::kDpsize:
      return OptimizeDpsize(graph, est, cost_model, options);
    case Algorithm::kDpsub:
      return OptimizeDpsub(graph, est, cost_model, options);
    case Algorithm::kDpccp:
      return OptimizeDpccp(graph, est, cost_model, options);
    case Algorithm::kTdBasic:
      return OptimizeTdBasic(graph, est, cost_model, options);
    case Algorithm::kTdPartition:
      return OptimizeTdPartition(graph, est, cost_model, options);
  }
  OptimizeResult result;
  result.error = "unknown algorithm";
  return result;
}

/// Convenience wrapper with default estimator and cost model.
inline OptimizeResult Optimize(Algorithm algo, const Hypergraph& graph) {
  CardinalityEstimator est(graph);
  return Optimize(algo, graph, est, DefaultCostModel());
}

}  // namespace dphyp

#endif  // DPHYP_BASELINES_ALL_ALGORITHMS_H_
