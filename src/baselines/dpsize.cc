#include "baselines/dpsize.h"

#include <vector>

#include "core/workspace.h"

namespace dphyp {

namespace {

class DpsizeEnumerator : public Enumerator {
 public:
  const char* Name() const override { return "DPsize"; }
  bool CanHandle(const Hypergraph&) const override { return true; }
  // Never bids: DPsize exists as the Selinger-style measured baseline
  // (Figs. 5-7); DPccp/DPsub dominate it everywhere dispatch could send it.
  const char* FrontierSummary() const override {
    return "exact; never auto-bids (Selinger-style measured baseline)";
  }
  OptimizeResult Run(const OptimizationRequest& request,
                     OptimizerWorkspace& workspace) const override {
    return OptimizeDpsize(*request.graph, *request.estimator,
                          *request.cost_model, request.options, &workspace);
  }
};

}  // namespace

OptimizeResult OptimizeDpsize(const Hypergraph& graph,
                              const CardinalityModel& est,
                              const CostModel& cost_model,
                              const OptimizerOptions& options,
                              OptimizerWorkspace* workspace) {
  OptimizerOptions effective =
      ResolvePruningSeed(graph, est, cost_model, options, workspace);
  OptimizerContext ctx(graph, est, cost_model, effective,
                       workspace != nullptr ? &workspace->table() : nullptr);
  if (workspace != nullptr) workspace->CountRun();
  auto run = [&] {
    ctx.InitLeaves();
    const int n = graph.NumNodes();

    // Plans bucketed by size. Buckets are filled lazily from the DP table's
    // insertion-ordered entry list; `scanned` tracks how far we've consumed
    // it.
    std::vector<std::vector<NodeSet>> by_size(n + 1);
    size_t scanned = 0;
    auto refresh_buckets = [&] {
      const auto& entries = ctx.table().entries();
      for (; scanned < entries.size(); ++scanned) {
        NodeSet s = entries[scanned]->set;
        by_size[s.Count()].push_back(s);
      }
    };
    refresh_buckets();

    for (int size = 2; size <= n; ++size) {
      for (int size1 = 1; size1 < size; ++size1) {
        const int size2 = size - size1;
        refresh_buckets();
        // Snapshot sizes: plans of size `size` created during this loop must
        // not be joined again within the same iteration (they would exceed
        // `size` anyway, but the snapshot also keeps iterators stable).
        const auto& bucket1 = by_size[size1];
        const auto& bucket2 = by_size[size2];
        const size_t n1 = bucket1.size();
        const size_t n2 = bucket2.size();
        for (size_t i = 0; i < n1; ++i) {
          for (size_t j = 0; j < n2; ++j) {
            NodeSet S1 = bucket1[i];
            NodeSet S2 = bucket2[j];
            ++ctx.stats().pairs_tested;
            // Deadline poll per candidate: the (*) tests fail far more often
            // than they succeed, so emit-side polling alone would starve.
            ctx.Tick();
            if (S1.Intersects(S2)) continue;            // test (*) 1
            if (!graph.ConnectsSets(S1, S2)) continue;  // test (*) 2
            ctx.EmitOrdered(S1, S2);
          }
        }
      }
    }
  };
  return RunGuarded("DPsize", ctx, graph.AllNodes(), run);
}

std::unique_ptr<Enumerator> MakeDpsizeEnumerator() {
  return std::make_unique<DpsizeEnumerator>();
}

}  // namespace dphyp
