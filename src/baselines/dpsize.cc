#include "baselines/dpsize.h"

#include <vector>

namespace dphyp {

OptimizeResult OptimizeDpsize(const Hypergraph& graph,
                              const CardinalityEstimator& est,
                              const CostModel& cost_model,
                              const OptimizerOptions& options) {
  OptimizerContext ctx(graph, est, cost_model, options);
  ctx.InitLeaves();
  const int n = graph.NumNodes();

  // Plans bucketed by size. Buckets are filled lazily from the DP table's
  // insertion-ordered entry list; `scanned` tracks how far we've consumed it.
  std::vector<std::vector<NodeSet>> by_size(n + 1);
  size_t scanned = 0;
  auto refresh_buckets = [&] {
    const auto& entries = ctx.table().entries();
    for (; scanned < entries.size(); ++scanned) {
      NodeSet s = entries[scanned]->set;
      by_size[s.Count()].push_back(s);
    }
  };
  refresh_buckets();

  for (int size = 2; size <= n; ++size) {
    for (int size1 = 1; size1 < size; ++size1) {
      const int size2 = size - size1;
      refresh_buckets();
      // Snapshot sizes: plans of size `size` created during this loop must
      // not be joined again within the same iteration (they would exceed
      // `size` anyway, but the snapshot also keeps iterators stable).
      const auto& bucket1 = by_size[size1];
      const auto& bucket2 = by_size[size2];
      const size_t n1 = bucket1.size();
      const size_t n2 = bucket2.size();
      for (size_t i = 0; i < n1; ++i) {
        for (size_t j = 0; j < n2; ++j) {
          NodeSet S1 = bucket1[i];
          NodeSet S2 = bucket2[j];
          ++ctx.stats().pairs_tested;
          if (S1.Intersects(S2)) continue;            // test (*) 1
          if (!graph.ConnectsSets(S1, S2)) continue;  // test (*) 2
          ctx.EmitOrdered(S1, S2);
        }
      }
    }
  }
  return ctx.Finish(graph.AllNodes());
}

}  // namespace dphyp
