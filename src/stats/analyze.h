// The ANALYZE pass: builds full column statistics (ndv, bounds, MCVs,
// equi-depth histograms) from executed data and stores them in the
// versioned Catalog, where the "hist" model reads them back.
//
// Two entry points:
//   * AnalyzeDataset samples every column of every relation (reservoir
//     sampling, so huge tables cost O(sample_size) memory) and refreshes
//     the catalog — the standalone ANALYZE.
//   * AnalyzeFromExecution is the feedback-loop variant: it first folds an
//     Executor-filled CardinalityFeedback store into the catalog's row
//     counts (ApplyFeedbackToCatalog), then samples the same dataset the
//     execution ran against for the distributions. This is the path
//     qdl_tool --analyze and the jobgen bench exercise: run once, analyze,
//     re-estimate.
// Every stored table bumps the catalog's stats_version, so plans cached
// under pre-ANALYZE statistics are invalidated automatically.
#ifndef DPHYP_STATS_ANALYZE_H_
#define DPHYP_STATS_ANALYZE_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "cost/feedback.h"
#include "exec/dataset.h"
#include "util/rng.h"

namespace dphyp {

struct AnalyzeOptions {
  /// Reservoir size per column; the whole column is used when it is
  /// smaller than this.
  int sample_size = 1024;
  int histogram_buckets = 16;
  int max_mcvs = 16;
  /// Seed for the reservoir's replacement decisions (deterministic).
  uint64_t seed = 0x5eedu;
};

/// Reservoir-samples `values` down to `opts.sample_size` (deterministic
/// under `rng`); the building block AnalyzeDataset applies per column.
std::vector<int64_t> ReservoirSample(const std::vector<int64_t>& values,
                                     int sample_size, Rng& rng);

/// Builds ColumnStats (ndv, min/max, MCVs, histogram) from one column
/// sample. MCV/histogram fractions are sample-relative, which estimation
/// treats as population fractions — the standard sampling assumption.
ColumnStats BuildColumnStats(const std::vector<int64_t>& sample,
                             const AnalyzeOptions& opts);

/// Samples every column of every table in `dataset` and stores row counts
/// plus full ColumnStats into `catalog` under the relations' names
/// (registering tables that are missing). Returns the number of tables
/// analyzed.
int AnalyzeDataset(const Dataset& dataset,
                   const std::vector<RelationInfo>& relations,
                   const AnalyzeOptions& opts, Catalog* catalog);

/// The feedback-loop ANALYZE: folds observed class cardinalities into row
/// counts first (cost/feedback.h), then refreshes the distributions from
/// `dataset`. Returns the number of tables analyzed.
int AnalyzeFromExecution(const CardinalityFeedback& feedback,
                         const QuerySpec& spec, const Dataset& dataset,
                         const AnalyzeOptions& opts, Catalog* catalog);

}  // namespace dphyp

#endif  // DPHYP_STATS_ANALYZE_H_
