#include "stats/analyze.h"

#include <algorithm>
#include <set>

#include "stats/histogram.h"

namespace dphyp {

std::vector<int64_t> ReservoirSample(const std::vector<int64_t>& values,
                                     int sample_size, Rng& rng) {
  if (sample_size <= 0) return {};
  if (static_cast<int>(values.size()) <= sample_size) return values;
  // Algorithm R: fill the reservoir, then replace with decreasing
  // probability. Deterministic under the caller's rng.
  std::vector<int64_t> reservoir(values.begin(),
                                 values.begin() + sample_size);
  for (size_t i = sample_size; i < values.size(); ++i) {
    const uint64_t j = rng.Uniform(i + 1);
    if (j < static_cast<uint64_t>(sample_size)) {
      reservoir[j] = values[i];
    }
  }
  return reservoir;
}

ColumnStats BuildColumnStats(const std::vector<int64_t>& sample,
                             const AnalyzeOptions& opts) {
  ColumnStats stats;
  if (sample.empty()) return stats;
  std::set<int64_t> distinct(sample.begin(), sample.end());
  stats.distinct_count = static_cast<double>(distinct.size());
  stats.min_value = static_cast<double>(*distinct.begin());
  stats.max_value = static_cast<double>(*distinct.rbegin());
  ColumnDistribution dist =
      BuildColumnDistribution(sample, opts.histogram_buckets, opts.max_mcvs);
  stats.mcvs = std::move(dist.mcvs);
  stats.histogram = std::move(dist.histogram);
  return stats;
}

int AnalyzeDataset(const Dataset& dataset,
                   const std::vector<RelationInfo>& relations,
                   const AnalyzeOptions& opts, Catalog* catalog) {
  if (catalog == nullptr) return 0;
  Rng rng(opts.seed);
  int analyzed = 0;
  const int tables =
      std::min(dataset.NumTables(), static_cast<int>(relations.size()));
  for (int t = 0; t < tables; ++t) {
    const ExecRelation& table = dataset.table(t);
    const RelationInfo& info = relations[t];
    if (catalog->IndexOf(info.name) < 0) {
      catalog->AddTable(TableStats{info.name, 0.0, {}});
    }
    catalog->SetRowCount(info.name, static_cast<double>(table.NumRows()));
    for (int c = 0; c < table.num_columns; ++c) {
      std::vector<int64_t> column;
      column.reserve(table.rows.size());
      for (const std::vector<int64_t>& row : table.rows) {
        column.push_back(row[c]);
      }
      std::vector<int64_t> sample =
          ReservoirSample(column, opts.sample_size, rng);
      catalog->SetColumnStats(info.name, c, BuildColumnStats(sample, opts));
    }
    ++analyzed;
  }
  return analyzed;
}

int AnalyzeFromExecution(const CardinalityFeedback& feedback,
                         const QuerySpec& spec, const Dataset& dataset,
                         const AnalyzeOptions& opts, Catalog* catalog) {
  if (catalog == nullptr) return 0;
  ApplyFeedbackToCatalog(feedback, spec, catalog);
  return AnalyzeDataset(dataset, spec.relations, opts, catalog);
}

}  // namespace dphyp
