// Distribution-aware selectivity functions over ColumnStats, following
// the recipes in PostgreSQL's selfuncs.c:
//
//  - EqJoinSelectivity is eqjoinsel's MCV x MCV match: the join fraction
//    contributed by values listed on both sides is summed exactly, and
//    the unmatched mass on each side is paired with the other side's
//    non-MCV mass under a residual-ndv independence assumption. With no
//    MCVs on either side it degrades to the classic 1/max(ndv).
//
//  - RangeSelectivity is scalarineqsel's shape: exact MCV mass inside the
//    range plus the histogram's interpolated fraction weighted by the
//    non-MCV mass, with a uniform min/max interpolation fallback when
//    the column has bounds but no distribution.
//
// All results are clamped to [kMinSelectivity, 1] so degenerate stats
// (ndv <= 0, ndv > rows, empty tables) can never zero out or invert an
// estimate — the same guard StatsCardinalityModel applies.
#ifndef DPHYP_STATS_SELECTIVITY_H_
#define DPHYP_STATS_SELECTIVITY_H_

#include "catalog/catalog.h"

namespace dphyp {

/// Floor for derived selectivities: estimates stay positive so plan costs
/// stay finite and comparable even under degenerate statistics.
inline constexpr double kMinSelectivity = 1e-9;

/// Distinct count clamped to [1, max(row_count, 1)]; `row_count <= 0`
/// (unknown or empty table) clamps only the lower bound.
double EffectiveNdv(double distinct_count, double row_count);

/// Selectivity of `a.col = b.col` as a fraction of |A| x |B|.
double EqJoinSelectivity(const ColumnStats& a, double rows_a,
                         const ColumnStats& b, double rows_b);

/// Selectivity of `lo <= col <= hi` (inclusive) against one column.
double RangeSelectivity(const ColumnStats& stats, double lo, double hi);

}  // namespace dphyp

#endif  // DPHYP_STATS_SELECTIVITY_H_
