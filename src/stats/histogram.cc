#include "stats/histogram.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>

namespace dphyp {

double Histogram::FractionAtOrBelow(double value) const {
  if (Empty()) return 0.0;
  if (value < static_cast<double>(bounds.front())) return 0.0;
  if (value >= static_cast<double>(bounds.back())) return 1.0;
  double below = 0.0;
  for (int i = 0; i < NumBuckets(); ++i) {
    const double lo = static_cast<double>(bounds[i]);
    const double hi = static_cast<double>(bounds[i + 1]);
    if (value >= hi) {
      below += fractions[i];
      continue;
    }
    // value lies inside [lo, hi): linear interpolation within the bucket.
    // Degenerate buckets (lo == hi) were skipped by the >= hi test above.
    if (hi > lo) below += fractions[i] * (value - lo) / (hi - lo);
    break;
  }
  return std::min(1.0, below);
}

double Histogram::FractionInRange(double lo, double hi) const {
  if (Empty() || hi < lo) return 0.0;
  // [lo, hi] inclusive over integer-valued data: take the open point just
  // below lo so a probe exactly on a bucket boundary keeps that value.
  const double above_lo = FractionAtOrBelow(lo - 1.0);
  const double at_or_below_hi = FractionAtOrBelow(hi);
  return std::max(0.0, at_or_below_hi - above_lo);
}

double McvList::TotalFraction() const {
  double total = 0.0;
  for (const McvEntry& e : entries) total += e.fraction;
  return std::min(1.0, total);
}

double McvList::FractionOf(int64_t value) const {
  for (const McvEntry& e : entries) {
    if (e.value == value) return e.fraction;
  }
  return 0.0;
}

double McvList::FractionInRange(double lo, double hi) const {
  double total = 0.0;
  for (const McvEntry& e : entries) {
    const double v = static_cast<double>(e.value);
    if (v >= lo && v <= hi) total += e.fraction;
  }
  return std::min(1.0, total);
}

Histogram BuildEquiDepthHistogram(std::vector<int64_t> values,
                                  int num_buckets) {
  Histogram h;
  if (values.empty() || num_buckets <= 0) return h;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  const size_t buckets = std::min<size_t>(num_buckets, n);
  h.bounds.reserve(buckets + 1);
  h.fractions.reserve(buckets);
  h.bounds.push_back(values.front());
  size_t start = 0;
  for (size_t b = 0; b < buckets; ++b) {
    // Equal-frequency split: bucket b ends at the rounded (b+1)/buckets
    // quantile. Heavy values can make consecutive boundaries equal; the
    // zero-width bucket still carries its mass (a spike the interpolation
    // code treats as a step).
    size_t end = (b + 1) * n / buckets;
    if (end <= start) end = start + 1;
    if (b + 1 == buckets) end = n;
    h.bounds.push_back(values[end - 1]);
    h.fractions.push_back(static_cast<double>(end - start) /
                          static_cast<double>(n));
    start = end;
  }
  return h;
}

McvList BuildMcvList(const std::vector<int64_t>& values, int max_entries) {
  McvList list;
  if (values.empty() || max_entries <= 0) return list;
  std::map<int64_t, size_t> counts;
  for (int64_t v : values) ++counts[v];
  const double n = static_cast<double>(values.size());
  // Values seen once are not evidence of commonness — leave them to the
  // histogram. (With a complete frequency table of <= max_entries distinct
  // values we could keep everything, but the >= 2 cut keeps sampled and
  // exhaustive builds consistent.)
  std::vector<McvEntry> candidates;
  for (const auto& [value, count] : counts) {
    if (count < 2) continue;
    candidates.push_back({value, static_cast<double>(count) / n});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const McvEntry& a, const McvEntry& b) {
              if (a.fraction != b.fraction) return a.fraction > b.fraction;
              return a.value < b.value;
            });
  if (static_cast<int>(candidates.size()) > max_entries) {
    candidates.resize(max_entries);
  }
  list.entries = std::move(candidates);
  return list;
}

ColumnDistribution BuildColumnDistribution(const std::vector<int64_t>& values,
                                           int num_buckets, int max_mcvs) {
  ColumnDistribution dist;
  dist.mcvs = BuildMcvList(values, max_mcvs);
  std::vector<int64_t> rest;
  rest.reserve(values.size());
  for (int64_t v : values) {
    if (dist.mcvs.FractionOf(v) == 0.0) rest.push_back(v);
  }
  dist.histogram = BuildEquiDepthHistogram(std::move(rest), num_buckets);
  return dist;
}

}  // namespace dphyp
