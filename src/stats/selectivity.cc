#include "stats/selectivity.h"

#include <algorithm>
#include <cmath>

namespace dphyp {

namespace {

double ClampSelectivity(double s) {
  if (!(s > kMinSelectivity)) return kMinSelectivity;  // also catches NaN
  return std::min(1.0, s);
}

}  // namespace

double EffectiveNdv(double distinct_count, double row_count) {
  double ndv = distinct_count;
  if (!(ndv >= 1.0)) ndv = 1.0;
  if (row_count >= 1.0 && ndv > row_count) ndv = row_count;
  return ndv;
}

double EqJoinSelectivity(const ColumnStats& a, double rows_a,
                         const ColumnStats& b, double rows_b) {
  const double nd1 = EffectiveNdv(a.distinct_count, rows_a);
  const double nd2 = EffectiveNdv(b.distinct_count, rows_b);
  if (a.mcvs.Empty() && b.mcvs.Empty()) {
    return ClampSelectivity(1.0 / std::max(nd1, nd2));
  }

  // eqjoinsel with both (possibly empty) MCV lists. matchprodfreq sums the
  // exact contribution of values common to both lists; matchfreq1/2 is the
  // listed mass that found a partner.
  double matchprodfreq = 0.0;
  double matchfreq1 = 0.0;
  double matchfreq2 = 0.0;
  for (const McvEntry& e1 : a.mcvs.entries) {
    const double f2 = b.mcvs.FractionOf(e1.value);
    if (f2 > 0.0) {
      matchprodfreq += e1.fraction * f2;
      matchfreq1 += e1.fraction;
      matchfreq2 += f2;
    }
  }
  const double totalfreq1 = a.mcvs.TotalFraction();
  const double totalfreq2 = b.mcvs.TotalFraction();
  const double unmatchfreq1 = std::max(0.0, totalfreq1 - matchfreq1);
  const double unmatchfreq2 = std::max(0.0, totalfreq2 - matchfreq2);
  const double otherfreq1 = std::max(0.0, 1.0 - totalfreq1);
  const double otherfreq2 = std::max(0.0, 1.0 - totalfreq2);

  // Distinct values not in each MCV list, spreading the non-MCV mass.
  const double otherdistinct1 =
      std::max(1.0, nd1 - static_cast<double>(a.mcvs.Size()));
  const double otherdistinct2 =
      std::max(1.0, nd2 - static_cast<double>(b.mcvs.Size()));

  // Unmatched MCVs of one side can only pair with the other side's
  // non-MCV values; non-MCV x non-MCV pairs under independence over the
  // larger residual ndv. This mirrors selfuncs.c's uncertain-term split.
  double sel = matchprodfreq;
  sel += unmatchfreq1 * otherfreq2 / otherdistinct2;
  sel += unmatchfreq2 * otherfreq1 / otherdistinct1;
  sel += otherfreq1 * otherfreq2 / std::max(otherdistinct1, otherdistinct2);
  return ClampSelectivity(sel);
}

double RangeSelectivity(const ColumnStats& stats, double lo, double hi) {
  if (hi < lo) return kMinSelectivity;
  if (stats.HasDistribution()) {
    const double mcv_mass = stats.mcvs.FractionInRange(lo, hi);
    const double other_mass = std::max(0.0, 1.0 - stats.mcvs.TotalFraction());
    const double hist_mass =
        stats.histogram.Empty() ? 0.0 : stats.histogram.FractionInRange(lo, hi);
    return ClampSelectivity(mcv_mass + other_mass * hist_mass);
  }
  // No distribution: uniform interpolation over [min, max] when bounds are
  // known, inclusive of both endpoints (integer-valued data).
  const double width = stats.max_value - stats.min_value;
  if (stats.min_value != 0.0 || stats.max_value != 0.0) {
    const double clo = std::max(lo, stats.min_value);
    const double chi = std::min(hi, stats.max_value);
    if (chi < clo) return kMinSelectivity;
    return ClampSelectivity((chi - clo + 1.0) / (width + 1.0));
  }
  // Bounds unknown too: a fixed default, matching the spirit of
  // DEFAULT_RANGE_INEQ_SEL.
  return ClampSelectivity(1.0 / 3.0);
}

}  // namespace dphyp
