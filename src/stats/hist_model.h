// The distribution-aware cardinality model ("hist").
//
// Same product-form machinery as "stats" — base cardinalities and one
// multiplicative factor per edge, so EstimateClass stays a pure function
// of the plan class and every exact enumerator agrees bit-for-bit — but
// the inputs use the full column distributions the Analyze pass stores in
// the catalog (stats/analyze.h):
//   * base cardinalities are catalog row counts scaled by the estimated
//     selectivity of the relation's scan-time range filters (histogram
//     interpolation; uniform min/max fallback),
//   * an equality predicate without an explicit selectivity uses the
//     MCV x MCV eqjoinsel match (stats/selectivity.h) instead of the
//     1/max(ndv) independence rule — the difference that matters on
//     skewed (Zipf) join keys,
//   * when the catalog records a correlation for a table pair joined by
//     several predicates, the redundant predicates' selectivities are
//     damped (s -> s^(1-c)), so correlated predicate pairs stop
//     double-counting. The damping is folded into the per-edge factors at
//     construction, preserving join-order independence.
// Everything the catalog cannot answer falls back to the "stats"
// derivation, which itself falls back to spec values.
#ifndef DPHYP_STATS_HIST_MODEL_H_
#define DPHYP_STATS_HIST_MODEL_H_

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "cost/cardinality.h"

namespace dphyp {

class HistogramCardinalityModel : public CardinalityEstimator {
 public:
  /// `catalog` may be null, in which case the spec's bound catalog is
  /// used; with neither, the model degrades to the product-form default.
  /// The catalog must outlive the model.
  HistogramCardinalityModel(const Hypergraph& graph, const QuerySpec& spec,
                            const Catalog* catalog = nullptr);

  const char* name() const override { return "hist"; }

  /// Mixes the catalog's stats_version (snapshotted at construction) into
  /// the model digest, exactly like "stats": an ANALYZE re-keys every
  /// cached plan.
  uint64_t Fingerprint() const override;

  double DeriveSelectivity(const Predicate& pred) const override;

 private:
  const QuerySpec* spec_;
  const Catalog* catalog_;  // may be null
  uint64_t catalog_version_ = 0;
};

/// The per-predicate derivation backing the model (pre-correlation):
/// eqjoinsel for derived two-column equality predicates with catalog
/// column stats, StatsDerivedSelectivity otherwise.
double HistDerivedSelectivity(const Predicate& pred, const QuerySpec& spec,
                              const Catalog* catalog);

/// Estimated selectivity of one relation's scan-time range filters under
/// `catalog` stats (1.0 when it has none).
double HistFilterSelectivity(const QuerySpec& spec, int rel,
                             const Catalog* catalog);

}  // namespace dphyp

#endif  // DPHYP_STATS_HIST_MODEL_H_
