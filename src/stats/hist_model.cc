#include "stats/hist_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "cost/stats_model.h"
#include "stats/selectivity.h"

namespace dphyp {

namespace {

const Catalog* EffectiveCatalog(const QuerySpec& spec, const Catalog* catalog) {
  return catalog != nullptr ? catalog : spec.catalog.get();
}

/// Column stats for `ref` when the catalog actually has an entry for that
/// column; nullopt otherwise (so callers can fall back rather than consume
/// default-constructed zeros).
std::optional<ColumnStats> LookupColumn(const QuerySpec& spec,
                                        const ColumnRef& ref,
                                        const Catalog* catalog,
                                        double* row_count) {
  std::optional<TableStats> table = CatalogRelationStats(spec, ref.table, catalog);
  if (!table.has_value()) return std::nullopt;
  if (row_count != nullptr) *row_count = table->row_count;
  if (ref.column < 0 || ref.column >= static_cast<int>(table->columns.size())) {
    return std::nullopt;
  }
  return table->columns[ref.column];
}

std::vector<double> HistBaseCards(const Hypergraph& graph,
                                  const QuerySpec& spec,
                                  const Catalog* catalog) {
  std::vector<double> base;
  base.reserve(graph.NumNodes());
  for (int i = 0; i < graph.NumNodes(); ++i) {
    double card = graph.node(i).cardinality;
    if (auto stats = CatalogRelationStats(spec, i, catalog);
        stats.has_value()) {
      card = stats->row_count;  // authoritative even at zero, as in "stats"
    }
    if (!(card >= 1.0)) card = 1.0;  // empty-table guard, as in "stats"
    base.push_back(card * HistFilterSelectivity(spec, i, catalog));
  }
  return base;
}

std::vector<double> HistEdgeSelectivities(const Hypergraph& graph,
                                          const QuerySpec& spec,
                                          const Catalog* catalog) {
  std::vector<double> sels;
  sels.reserve(graph.NumEdges());
  for (int i = 0; i < graph.NumEdges(); ++i) {
    const Hyperedge& e = graph.edge(i);
    double sel = e.selectivity;
    if (e.predicate_id >= 0 &&
        e.predicate_id < static_cast<int>(spec.predicates.size())) {
      sel = HistDerivedSelectivity(spec.predicates[e.predicate_id], spec,
                                   catalog);
    }
    sels.push_back(sel);
  }
  if (catalog == nullptr) return sels;

  // Correlation damping. Group simple edges by their unordered table pair;
  // for a pair the catalog marks correlated, keep the most selective edge
  // at full strength and raise the others to s^(1-c) — at c=1 the extra
  // predicates add nothing, at c=0 this is a no-op. Ordered containers and
  // index tie-breaks keep the result deterministic, and because the
  // adjustment happens here (before factors are frozen) the model is still
  // a pure per-edge product — join-order independence is untouched.
  std::map<std::pair<int, int>, std::vector<int>> pair_edges;
  for (int i = 0; i < graph.NumEdges(); ++i) {
    const Hyperedge& e = graph.edge(i);
    if (e.predicate_id < 0) continue;
    if (!e.left.IsSingleton() || !e.right.IsSingleton()) continue;
    int a = e.left.Min();
    int b = e.right.Min();
    if (a > b) std::swap(a, b);
    pair_edges[{a, b}].push_back(i);
  }
  for (const auto& [pair, edges] : pair_edges) {
    if (edges.size() < 2) continue;
    const double c = catalog->TablePairCorrelation(
        spec.relations[pair.first].name, spec.relations[pair.second].name);
    if (c <= 0.0) continue;
    int keeper = edges.front();
    for (int e : edges) {
      if (sels[e] < sels[keeper]) keeper = e;
    }
    for (int e : edges) {
      if (e == keeper) continue;
      sels[e] = std::min(1.0, std::pow(sels[e], 1.0 - c));
    }
  }
  return sels;
}

}  // namespace

double HistFilterSelectivity(const QuerySpec& spec, int rel,
                             const Catalog* catalog) {
  if (rel < 0 || rel >= spec.NumRelations()) return 1.0;
  const RelationInfo& info = spec.relations[rel];
  if (info.filters.empty()) return 1.0;
  double sel = 1.0;
  for (const ColumnRange& f : info.filters) {
    std::optional<ColumnStats> stats =
        LookupColumn(spec, ColumnRef{rel, f.column}, catalog, nullptr);
    // Unknown column: RangeSelectivity's no-bounds default still applies.
    sel *= RangeSelectivity(stats.value_or(ColumnStats{}),
                            static_cast<double>(f.lo),
                            static_cast<double>(f.hi));
  }
  return std::max(sel, kMinSelectivity);
}

double HistDerivedSelectivity(const Predicate& pred, const QuerySpec& spec,
                              const Catalog* catalog) {
  if (!pred.derive_selectivity || catalog == nullptr) return pred.selectivity;
  if (pred.kind == PredicateKind::kEq && pred.refs.size() == 2) {
    double rows_a = 0.0;
    double rows_b = 0.0;
    std::optional<ColumnStats> a =
        LookupColumn(spec, pred.refs[0], catalog, &rows_a);
    std::optional<ColumnStats> b =
        LookupColumn(spec, pred.refs[1], catalog, &rows_b);
    if (a.has_value() && b.has_value() &&
        (a->distinct_count > 0.0 || a->HasDistribution()) &&
        (b->distinct_count > 0.0 || b->HasDistribution())) {
      return EqJoinSelectivity(*a, rows_a, *b, rows_b);
    }
  }
  return StatsDerivedSelectivity(pred, spec, catalog);
}

HistogramCardinalityModel::HistogramCardinalityModel(const Hypergraph& graph,
                                                     const QuerySpec& spec,
                                                     const Catalog* catalog)
    : CardinalityEstimator(
          graph, HistBaseCards(graph, spec, EffectiveCatalog(spec, catalog)),
          HistEdgeSelectivities(graph, spec, EffectiveCatalog(spec, catalog))),
      spec_(&spec),
      catalog_(EffectiveCatalog(spec, catalog)) {
  if (catalog_ != nullptr) catalog_version_ = catalog_->stats_version();
}

uint64_t HistogramCardinalityModel::Fingerprint() const {
  uint64_t h = HashModelName("hist");
  h ^= catalog_version_ * 0x9E3779B97F4A7C15ull;
  return h;
}

double HistogramCardinalityModel::DeriveSelectivity(
    const Predicate& pred) const {
  return HistDerivedSelectivity(pred, *spec_, catalog_);
}

}  // namespace dphyp
