// Equi-depth histograms and most-common-value lists: the per-column
// distribution summaries that lift the catalog beyond row counts + ndv.
// These are the two pg_statistic slot kinds PostgreSQL's selfuncs.c
// consumes (STATISTIC_KIND_HISTOGRAM / STATISTIC_KIND_MCV), and the same
// split Hyrise's attribute statistics make: frequent values are listed
// exactly, the remainder is summarized by equal-frequency buckets.
//
// Convention (PostgreSQL's): the histogram describes the distribution of
// the *non-MCV* values only. A column whose MCV list covers every row
// therefore carries an empty histogram, and selectivity code must weight
// histogram fractions by the non-MCV mass (1 - McvList::TotalFraction()).
//
// These types are deliberately catalog-agnostic (plain data, no locking)
// so catalog.h can embed them in ColumnStats.
#ifndef DPHYP_STATS_HISTOGRAM_H_
#define DPHYP_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace dphyp {

/// An equi-depth (equal-frequency) histogram over int64 column values.
/// `bounds` holds num_buckets + 1 ascending bucket boundaries; bucket i
/// covers [bounds[i], bounds[i+1]] and holds `fractions[i]` of the
/// summarized mass (fractions sum to ~1). Buckets share boundaries when
/// a single value exceeds one bucket's depth.
struct Histogram {
  std::vector<int64_t> bounds;
  std::vector<double> fractions;

  bool Empty() const { return fractions.empty(); }
  int NumBuckets() const { return static_cast<int>(fractions.size()); }

  /// Fraction of the summarized mass at or below `value`, with linear
  /// interpolation inside the containing bucket (scalarineqsel-style).
  /// Out-of-range probes clamp to 0 / 1.
  double FractionAtOrBelow(double value) const;

  /// Fraction of the summarized mass inside the inclusive range
  /// [lo, hi]; 0 when the range misses the histogram entirely.
  double FractionInRange(double lo, double hi) const;
};

/// One most-common value with its fraction of the *whole* column
/// (including NULL-free totality; we model NULL-free columns only).
struct McvEntry {
  int64_t value = 0;
  double fraction = 0.0;
};

/// Most-common-value list, ordered by descending fraction (ties broken
/// by ascending value so builds are deterministic).
struct McvList {
  std::vector<McvEntry> entries;

  bool Empty() const { return entries.empty(); }
  int Size() const { return static_cast<int>(entries.size()); }

  /// Total column fraction the listed values cover; 1.0 means the MCV
  /// list is a complete frequency table and the histogram is empty.
  double TotalFraction() const;

  /// Fraction of `value`, or 0 when it is not listed.
  double FractionOf(int64_t value) const;

  /// Total fraction of listed values inside the inclusive [lo, hi].
  double FractionInRange(double lo, double hi) const;
};

/// Builds an equi-depth histogram with up to `num_buckets` buckets over
/// `values` (need not be sorted; empty input yields an empty histogram).
Histogram BuildEquiDepthHistogram(std::vector<int64_t> values,
                                  int num_buckets);

/// Builds an MCV list from `values`: keeps values occurring at least
/// twice, top `max_entries` by frequency. Returns an empty list for
/// all-distinct input (every value is equally "common" — the histogram
/// carries the distribution instead).
McvList BuildMcvList(const std::vector<int64_t>& values, int max_entries);

/// Splits a column sample the way ANALYZE does: MCVs first, then an
/// equi-depth histogram over the values *not* absorbed by the MCV list.
/// Either part may come back empty (all-distinct -> no MCVs;
/// single-value or fully-covered -> no histogram).
struct ColumnDistribution {
  McvList mcvs;
  Histogram histogram;
};
ColumnDistribution BuildColumnDistribution(const std::vector<int64_t>& values,
                                           int num_buckets, int max_mcvs);

}  // namespace dphyp

#endif  // DPHYP_STATS_HISTOGRAM_H_
