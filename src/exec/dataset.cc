#include "exec/dataset.h"

#include "util/rng.h"

namespace dphyp {

Dataset Dataset::FromTables(std::vector<ExecRelation> tables) {
  Dataset ds;
  ds.tables_ = std::move(tables);
  return ds;
}

Dataset Dataset::Generate(const std::vector<RelationInfo>& relations,
                          int rows_per_table, uint64_t seed) {
  Dataset ds;
  Rng rng(seed);
  for (const RelationInfo& rel : relations) {
    ExecRelation table;
    table.num_columns = rel.num_columns;
    table.rows.resize(rows_per_table);
    for (auto& row : table.rows) {
      row.resize(rel.num_columns);
      for (auto& value : row) {
        value = static_cast<int64_t>(rng.Uniform(97));
      }
    }
    ds.tables_.push_back(std::move(table));
  }
  return ds;
}

}  // namespace dphyp
