// Synthetic datasets for semantic plan verification.
//
// Each relation is a small table of int64 columns with deterministic,
// seed-derived values. The executor uses them to check that an optimized
// plan computes exactly the same multiset of tuples as the original
// operator tree — the end-to-end validation of Theorem 1 and the Sec. 5
// conflict machinery.
#ifndef DPHYP_EXEC_DATASET_H_
#define DPHYP_EXEC_DATASET_H_

#include <cstdint>
#include <vector>

#include "catalog/query_spec.h"

namespace dphyp {

/// One materialized relation: rows × columns of int64.
struct ExecRelation {
  int num_columns = 0;
  std::vector<std::vector<int64_t>> rows;

  int64_t Value(int row, int column) const { return rows[row][column]; }
  int NumRows() const { return static_cast<int>(rows.size()); }
};

/// All base relations of a query.
class Dataset {
 public:
  /// Generates `rows_per_table` rows per relation with values in [0, 97),
  /// deterministically from `seed`.
  static Dataset Generate(const std::vector<RelationInfo>& relations,
                          int rows_per_table, uint64_t seed);

  /// Wraps explicitly provided tables (tests with hand-checked contents).
  static Dataset FromTables(std::vector<ExecRelation> tables);

  const ExecRelation& table(int i) const { return tables_[i]; }
  int NumTables() const { return static_cast<int>(tables_.size()); }

 private:
  std::vector<ExecRelation> tables_;
};

}  // namespace dphyp

#endif  // DPHYP_EXEC_DATASET_H_
