#include "exec/executor.h"

#include <algorithm>

#include "util/check.h"

namespace dphyp {

EdgeConjuncts ConjunctsFromSpec(const QuerySpec& spec, const Hypergraph& graph) {
  EdgeConjuncts out(graph.NumEdges());
  for (int e = 0; e < graph.NumEdges(); ++e) {
    int pred = graph.edge(e).predicate_id;
    if (pred < 0) continue;  // repair edge: TRUE
    const Predicate& p = spec.predicates[pred];
    DPHYP_CHECK_MSG(!p.refs.empty(),
                    "predicate has no payload; call FillDefaultPayloads");
    out[e].push_back(ExecPredicate{p.refs, p.modulus, p.kind});
  }
  return out;
}

EdgeConjuncts ConjunctsFromTree(const OperatorTree& tree,
                                const std::vector<int>& edge_to_op) {
  EdgeConjuncts out(edge_to_op.size());
  for (size_t e = 0; e < edge_to_op.size(); ++e) {
    const TreeNode& node = tree.nodes[edge_to_op[e]];
    for (int p : node.predicates) {
      const TreePredicate& pred = tree.predicates[p];
      DPHYP_CHECK_MSG(!pred.refs.empty(),
                      "predicate has no payload; call FillDefaultPayloads");
      out[e].push_back(ExecPredicate{pred.refs, pred.modulus});
    }
  }
  return out;
}

std::vector<std::string> ExecResult::Canonical() const {
  std::vector<std::string> lines;
  lines.reserve(tuples.size());
  for (const ExecTuple& t : tuples) {
    std::string line;
    for (int32_t r : t.rows) {
      line += std::to_string(r);
      line += ',';
    }
    auto extras = t.extras;
    std::sort(extras.begin(), extras.end());
    for (const auto& [key, value] : extras) {
      line += "|x" + std::to_string(key) + "=" + std::to_string(value);
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

namespace {

/// Looks up the value of a column reference across (left, right, context);
/// returns false if the owning table is NULL-padded (strong predicates).
bool LookupValue(const Dataset& dataset, const ColumnRef& ref,
                 const ExecTuple& left, const ExecTuple& right,
                 const ExecTuple& context, int64_t* out) {
  int32_t row = ExecTuple::kAbsent;
  if (left.rows[ref.table] != ExecTuple::kAbsent) {
    row = left.rows[ref.table];
  } else if (!right.rows.empty() && right.rows[ref.table] != ExecTuple::kAbsent) {
    row = right.rows[ref.table];
  } else {
    row = context.rows[ref.table];
  }
  DPHYP_CHECK_MSG(row != ExecTuple::kAbsent,
                  "predicate references a table that is not in scope — "
                  "the plan is invalid");
  if (row == ExecTuple::kNull) return false;
  *out = dataset.table(ref.table).Value(row, ref.column);
  return true;
}

bool EvalConjunct(const Dataset& dataset, const ExecPredicate& pred,
                  const ExecTuple& left, const ExecTuple& right,
                  const ExecTuple& context) {
  if (pred.kind == PredicateKind::kEq) {
    int64_t first = 0;
    bool have_first = false;
    for (const ColumnRef& ref : pred.refs) {
      int64_t value = 0;
      if (!LookupValue(dataset, ref, left, right, context, &value)) {
        return false;
      }
      if (have_first && value != first) return false;
      first = value;
      have_first = true;
    }
    return true;
  }
  int64_t sum = 0;
  for (const ColumnRef& ref : pred.refs) {
    int64_t value = 0;
    if (!LookupValue(dataset, ref, left, right, context, &value)) return false;
    sum += value;
  }
  return sum % pred.modulus == 0;
}

ExecTuple MergeTuples(const ExecTuple& left, const ExecTuple& right) {
  ExecTuple out = left;
  for (size_t t = 0; t < out.rows.size(); ++t) {
    if (out.rows[t] == ExecTuple::kAbsent) out.rows[t] = right.rows[t];
  }
  out.extras.insert(out.extras.end(), right.extras.begin(), right.extras.end());
  return out;
}

ExecTuple PadNull(const ExecTuple& tuple, NodeSet tables) {
  ExecTuple out = tuple;
  for (int t : tables) out.rows[t] = ExecTuple::kNull;
  return out;
}

ExecTuple BindContext(const ExecTuple& context, const ExecTuple& left) {
  ExecTuple out = context;
  for (size_t t = 0; t < out.rows.size(); ++t) {
    if (left.rows[t] != ExecTuple::kAbsent) out.rows[t] = left.rows[t];
  }
  return out;
}

}  // namespace

ExecResult Executor::Execute(const PlanTree& plan) const {
  DPHYP_CHECK(plan.Valid());
  ExecTuple context;
  context.rows.assign(graph_.NumNodes(), ExecTuple::kAbsent);
  ExecResult result;
  result.tuples = Evaluate(plan.root(), context);
  return result;
}

std::vector<ExecTuple> Executor::Evaluate(const PlanTreeNode* node,
                                          const ExecTuple& context) const {
  std::vector<ExecTuple> rows;
  if (node->IsLeaf()) {
    rows = EvaluateLeaf(node, context);
  } else {
    std::vector<ExecTuple> left_rows = Evaluate(node->left, context);
    rows = Combine(node, left_rows, context);
  }
  if (feedback_ != nullptr) {
    // Only unbound evaluations are true class cardinalities: a dependent
    // operator re-evaluates its right child once per left tuple, and those
    // partial results must not pollute the feedback store.
    bool bound = false;
    for (int32_t r : context.rows) {
      if (r != ExecTuple::kAbsent) {
        bound = true;
        break;
      }
    }
    if (!bound) {
      feedback_->Record(node->set, static_cast<double>(rows.size()));
    }
  }
  return rows;
}

std::vector<ExecTuple> Executor::EvaluateLeaf(const PlanTreeNode* node,
                                              const ExecTuple& context) const {
  const int rel = node->relation;
  const RelationInfo& info = relations_[rel];
  const ExecRelation& table = dataset_.table(rel);
  std::vector<ExecTuple> out;
  for (int row = 0; row < table.NumRows(); ++row) {
    bool filtered = false;
    for (const ColumnRange& f : info.filters) {
      const int64_t v = table.Value(row, f.column);
      if (v < f.lo || v > f.hi) {
        filtered = true;
        break;
      }
    }
    if (filtered) continue;
    if (!info.free_tables.Empty()) {
      // Lateral leaf: apply the correlation predicate against the context.
      int64_t sum = 0;
      bool null_seen = false;
      for (const ColumnRef& ref : info.corr_refs) {
        int32_t src = ref.table == rel ? row : context.rows[ref.table];
        DPHYP_CHECK_MSG(src != ExecTuple::kAbsent,
                        "lateral leaf evaluated without its binding — "
                        "the plan is invalid");
        if (src == ExecTuple::kNull) {
          null_seen = true;
          break;
        }
        sum += dataset_.table(ref.table).Value(src, ref.column);
      }
      if (null_seen || sum % info.corr_modulus != 0) continue;
    }
    ExecTuple t;
    t.rows.assign(graph_.NumNodes(), ExecTuple::kAbsent);
    t.rows[rel] = row;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<ExecTuple> Executor::Combine(const PlanTreeNode* node,
                                         const std::vector<ExecTuple>& left_rows,
                                         const ExecTuple& context) const {
  // Gather the conjuncts of all edges applied at this operator, and locate
  // the nestjoin edge (if the operator is a nestjoin) for aggregate keying.
  std::vector<const ExecPredicate*> preds;
  int nest_edge = -1;
  for (int e : node->edge_ids) {
    for (const ExecPredicate& p : conjuncts_[e]) preds.push_back(&p);
    if (RegularVariant(graph_.edge(e).op) == OpType::kLeftNestjoin) {
      nest_edge = e;
    }
  }
  const OpType op = node->op;
  const OpType regular = RegularVariant(op);
  const bool dependent = IsDependent(op);
  const NodeSet left_tables = node->left->set;
  const NodeSet right_tables = node->right->set;

  // Nestjoin aggregate anchor: the minimal table of the nestjoin edge's
  // right hypernode — stable across valid reorderings.
  int anchor_table = -1;
  if (regular == OpType::kLeftNestjoin) {
    DPHYP_CHECK_MSG(nest_edge >= 0, "nestjoin operator without nestjoin edge");
    anchor_table = graph_.edge(nest_edge).right.Min();
  }

  std::vector<ExecTuple> right_static;
  if (!dependent) right_static = Evaluate(node->right, context);
  std::vector<bool> right_matched(right_static.size(), false);

  auto match = [&](const ExecTuple& l, const ExecTuple& r) {
    for (const ExecPredicate* p : preds) {
      if (!EvalConjunct(dataset_, *p, l, r, context)) return false;
    }
    return true;
  };

  std::vector<ExecTuple> out;
  for (const ExecTuple& l : left_rows) {
    std::vector<ExecTuple> dep_rows;
    const std::vector<ExecTuple>* right_rows = &right_static;
    if (dependent) {
      dep_rows = Evaluate(node->right, BindContext(context, l));
      right_rows = &dep_rows;
    }

    bool matched = false;
    int64_t agg_count = 0;
    int64_t agg_sum = 0;
    for (size_t j = 0; j < right_rows->size(); ++j) {
      const ExecTuple& r = (*right_rows)[j];
      if (!match(l, r)) continue;
      matched = true;
      if (!dependent) right_matched[j] = true;
      switch (regular) {
        case OpType::kJoin:
        case OpType::kLeftOuterjoin:
        case OpType::kFullOuterjoin:
          out.push_back(MergeTuples(l, r));
          break;
        case OpType::kLeftSemijoin:
        case OpType::kLeftAntijoin:
          break;  // existence only
        case OpType::kLeftNestjoin: {
          ++agg_count;
          int32_t row = r.rows[anchor_table];
          if (row >= 0) agg_sum += dataset_.table(anchor_table).Value(row, 0);
          break;
        }
        default:
          DPHYP_CHECK_MSG(false, "unexpected operator in Combine");
      }
      if (regular == OpType::kLeftSemijoin || regular == OpType::kLeftAntijoin) {
        break;  // existence decided by the first match
      }
    }

    switch (regular) {
      case OpType::kJoin:
        break;
      case OpType::kLeftSemijoin:
        if (matched) out.push_back(l);
        break;
      case OpType::kLeftAntijoin:
        if (!matched) out.push_back(l);
        break;
      case OpType::kLeftOuterjoin:
      case OpType::kFullOuterjoin:
        if (!matched) out.push_back(PadNull(l, right_tables));
        break;
      case OpType::kLeftNestjoin: {
        ExecTuple t = l;
        t.extras.emplace_back(nest_edge, agg_count * 1000003 + agg_sum);
        out.push_back(std::move(t));
        break;
      }
      default:
        DPHYP_CHECK_MSG(false, "unexpected operator in Combine");
    }
  }

  if (regular == OpType::kFullOuterjoin) {
    DPHYP_CHECK_MSG(!dependent, "full outer join has no dependent variant");
    // Unmatched left rows were padded in the per-left loop; unmatched right
    // rows are NULL-padded on the left side here.
    for (size_t j = 0; j < right_static.size(); ++j) {
      if (!right_matched[j]) {
        out.push_back(PadNull(right_static[j], left_tables));
      }
    }
  }
  return out;
}

}  // namespace dphyp
