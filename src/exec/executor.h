// Tuple-at-a-time reference executor for plan trees.
//
// Supports every operator of Sec. 5.1: inner join, left semi/anti/outer
// join, full outer join, nestjoin, and the dependent (lateral) variants.
// Semantics notes:
//   * Predicates are conjunctions of sum-mod conjuncts over column refs;
//     a NULL input makes a conjunct false, so every predicate is *strong*
//     w.r.t. every side (the standing assumption of Sec. 5.2).
//   * Outer joins pad the missing side with NULL row markers.
//   * Semijoin/antijoin output only the left side's columns.
//   * Nestjoins append one computed value per left tuple:
//     count(group) * 1000003 + sum(non-NULL anchor-column values of the
//     group), keyed by the nestjoin's hyperedge id so results from
//     different (valid) orderings remain comparable.
//   * Dependent operators re-evaluate their right child per left tuple with
//     the left tuple bound in the evaluation context; lateral leaves filter
//     their base table with their correlation predicate against the context.
#ifndef DPHYP_EXEC_EXECUTOR_H_
#define DPHYP_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/feedback.h"
#include "exec/dataset.h"
#include "hypergraph/hypergraph.h"
#include "plan/plan_tree.h"
#include "reorder/operator_tree.h"

namespace dphyp {

/// One executable conjunct (sum-mod or all-equal; see PredicateKind).
struct ExecPredicate {
  std::vector<ColumnRef> refs;
  int64_t modulus = 1;
  PredicateKind kind = PredicateKind::kSumMod;
};

/// Conjunct lists per hypergraph edge id. Plan operators evaluate the union
/// of conjuncts of all edges attached to them (the conjunction EmitCsgCmp
/// assembles, Sec. 3.5).
using EdgeConjuncts = std::vector<std::vector<ExecPredicate>>;

/// Conjuncts for a predicate-derived graph (edge i <-> QuerySpec predicate;
/// synthetic repair edges get the empty conjunction, i.e. TRUE).
EdgeConjuncts ConjunctsFromSpec(const QuerySpec& spec, const Hypergraph& graph);

/// Conjuncts for an operator-tree-derived graph (edge <-> operator node,
/// via DerivedQuery::edge_to_op).
EdgeConjuncts ConjunctsFromTree(const OperatorTree& tree,
                                const std::vector<int>& edge_to_op);

/// A tuple: one row id per table (kAbsent if the table is not part of the
/// tuple, kNull if NULL-padded by an outer join), plus computed nestjoin
/// values keyed by hyperedge id.
struct ExecTuple {
  static constexpr int32_t kAbsent = -1;
  static constexpr int32_t kNull = -2;
  std::vector<int32_t> rows;
  std::vector<std::pair<int32_t, int64_t>> extras;  // (nestjoin edge id, value)
};

/// A result: multiset of tuples. Use Canonical() for comparisons.
struct ExecResult {
  std::vector<ExecTuple> tuples;

  /// Sorted textual form; two results are equal iff their canonical forms
  /// are equal.
  std::vector<std::string> Canonical() const;
  bool SameAs(const ExecResult& other) const {
    return Canonical() == other.Canonical();
  }
};

/// Executes plan trees against a dataset.
class Executor {
 public:
  /// `graph` provides edge operators (nestjoin aggregate anchoring);
  /// `relations` supplies lateral correlation payloads; `conjuncts` maps
  /// edge ids (as referenced by PlanTreeNode::edge_ids) to predicates.
  /// A non-null `feedback` store receives the observed cardinality of every
  /// top-level plan class evaluated (leaves included; dependent
  /// re-evaluations under a bound context are partial results and are
  /// skipped) — the execution side of the estimation feedback loop.
  Executor(const Dataset& dataset, const Hypergraph& graph,
           const std::vector<RelationInfo>& relations, EdgeConjuncts conjuncts,
           CardinalityFeedback* feedback = nullptr)
      : dataset_(dataset),
        graph_(graph),
        relations_(relations),
        conjuncts_(std::move(conjuncts)),
        feedback_(feedback) {}

  /// Runs the plan and returns its result multiset.
  ExecResult Execute(const PlanTree& plan) const;

 private:
  std::vector<ExecTuple> Evaluate(const PlanTreeNode* node,
                                  const ExecTuple& context) const;
  std::vector<ExecTuple> EvaluateLeaf(const PlanTreeNode* node,
                                      const ExecTuple& context) const;
  std::vector<ExecTuple> Combine(const PlanTreeNode* node,
                                 const std::vector<ExecTuple>& left_rows,
                                 const ExecTuple& context) const;

  const Dataset& dataset_;
  const Hypergraph& graph_;
  const std::vector<RelationInfo>& relations_;
  EdgeConjuncts conjuncts_;
  CardinalityFeedback* feedback_ = nullptr;
};

}  // namespace dphyp

#endif  // DPHYP_EXEC_EXECUTOR_H_
