#include "catalog/catalog.h"

#include <algorithm>
#include <utility>

namespace dphyp {

namespace {
std::pair<std::string, std::string> PairKey(std::string_view a,
                                            std::string_view b) {
  std::string x(a), y(b);
  if (y < x) std::swap(x, y);
  return {std::move(x), std::move(y)};
}
}  // namespace

int Catalog::IndexOfLocked(std::string_view name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Catalog::AddTable(TableStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  int index = IndexOfLocked(stats.name);
  if (index >= 0) {
    tables_[index] = std::move(stats);
  } else {
    index = static_cast<int>(tables_.size());
    tables_.push_back(std::move(stats));
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return index;
}

std::optional<TableStats> Catalog::FindTable(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int index = IndexOfLocked(name);
  if (index < 0) return std::nullopt;
  return tables_[index];
}

std::optional<TableStats> Catalog::TableAt(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || index >= static_cast<int>(tables_.size())) {
    return std::nullopt;
  }
  return tables_[index];
}

int Catalog::IndexOf(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IndexOfLocked(name);
}

int Catalog::NumTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tables_.size());
}

bool Catalog::SetRowCount(std::string_view name, double row_count) {
  std::lock_guard<std::mutex> lock(mu_);
  int index = IndexOfLocked(name);
  if (index < 0) return false;
  tables_[index].row_count = row_count;
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool Catalog::SetColumnStats(std::string_view name, int column,
                             ColumnStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  int index = IndexOfLocked(name);
  if (index < 0 || column < 0) return false;
  TableStats& table = tables_[index];
  if (column >= static_cast<int>(table.columns.size())) {
    table.columns.resize(column + 1);
  }
  table.columns[column] = std::move(stats);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void Catalog::SetTablePairCorrelation(std::string_view table_a,
                                      std::string_view table_b,
                                      double correlation) {
  std::lock_guard<std::mutex> lock(mu_);
  pair_correlations_[PairKey(table_a, table_b)] =
      std::clamp(correlation, 0.0, 1.0);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

double Catalog::TablePairCorrelation(std::string_view table_a,
                                     std::string_view table_b) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pair_correlations_.find(PairKey(table_a, table_b));
  return it == pair_correlations_.end() ? 0.0 : it->second;
}

}  // namespace dphyp
