// The binary operator vocabulary of the paper (Sec. 5.1).
//
// Besides the fully reorderable inner join B, the paper handles: full outer
// join, left outer join, left antijoin, left semijoin, left nestjoin, and
// the dependent (lateral) counterparts of the left-linear operators. LOP is
// the set of left-linear operators; B is both left- and right-linear; the
// full outer join is neither.
#ifndef DPHYP_CATALOG_OPERATOR_TYPE_H_
#define DPHYP_CATALOG_OPERATOR_TYPE_H_

#include <cstdint>
#include <string>

namespace dphyp {

/// Binary plan operators. Dependent variants evaluate their right input once
/// per left tuple, with the left tuple's attributes in scope.
enum class OpType : uint8_t {
  kJoin,             ///< inner join (B) — commutative, left+right linear
  kLeftSemijoin,     ///< G
  kLeftAntijoin,     ///< I
  kLeftOuterjoin,    ///< P
  kFullOuterjoin,    ///< M — commutative, not linear
  kLeftNestjoin,     ///< T (binary grouping / MD-join)
  kDepJoin,          ///< C (d-join / cross apply)
  kDepLeftSemijoin,  ///< H
  kDepLeftAntijoin,  ///< J
  kDepLeftOuterjoin, ///< Q (outer apply)
  kDepLeftNestjoin,  ///< U
};

/// Number of distinct operator types.
inline constexpr int kNumOpTypes = 11;

/// True for operators where `A op B == B op A` (inner and full outer join).
bool IsCommutative(OpType op);

/// True for the dependent (lateral) variants.
bool IsDependent(OpType op);

/// True for every operator in the paper's LOP set (left-linear operators);
/// false for inner join and full outer join.
bool IsLeftLinearOnly(OpType op);

/// True if the operator's output contains only left-side attributes —
/// semijoin, antijoin, nestjoin (whose right side is folded into computed
/// aggregates) and their dependent variants. Ancestor predicates must not
/// reference tables hidden by such operators.
bool LeftOnlyOutput(OpType op);

/// Maps a regular operator to its dependent counterpart (Sec. 5.6).
/// Full outer join has no dependent variant; passing it is an error.
OpType DependentVariant(OpType op);

/// Maps a dependent operator back to its regular counterpart; identity for
/// regular operators.
OpType RegularVariant(OpType op);

/// Long name, e.g. "leftouterjoin".
const char* OpName(OpType op);

/// Compact algebra-style symbol, e.g. "LOJ", "JOIN", "DSEMI".
const char* OpSymbol(OpType op);

/// Parses the result of OpName(); returns false on unknown names.
bool ParseOpName(const std::string& name, OpType* out);

}  // namespace dphyp

#endif  // DPHYP_CATALOG_OPERATOR_TYPE_H_
