// QuerySpec: the logical description of a join-ordering problem.
//
// A query consists of relations (with cardinalities, and — for table-valued
// functions / lateral subqueries — free-variable table sets) and predicates.
// Each predicate names the two hypernode sides it anchors (Def. 1) plus an
// optional "flexible" set whose members may move to either side
// (generalized hyperedges, Def. 6), the operator it belongs to, and a
// selectivity. Predicates also carry an executable payload (column
// references + modulus) so the mini executor can evaluate them on data.
#ifndef DPHYP_CATALOG_QUERY_SPEC_H_
#define DPHYP_CATALOG_QUERY_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/operator_type.h"
#include "util/node_set.h"
#include "util/result.h"

namespace dphyp {

/// A column reference `R.c` inside an executable predicate.
struct ColumnRef {
  int table = 0;
  int column = 0;
  bool operator==(const ColumnRef&) const = default;
};

/// How a predicate's executable payload is evaluated.
enum class PredicateKind {
  /// The sum of the referenced columns is divisible by `modulus` — the
  /// original synthetic payload, good for dialing in a selectivity.
  kSumMod,
  /// All referenced columns are equal — a real equi-join, the shape
  /// histogram/MCV selectivity estimation targets (stats/selectivity.h).
  kEq,
};

/// An inclusive single-column range filter `lo <= R.c <= hi` applied when
/// the relation's leaf is scanned. Base-table filters are what histogram
/// interpolation estimates; they also skew effective leaf cardinalities
/// away from raw row counts, which only distribution-aware models see.
struct ColumnRange {
  int column = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  bool operator==(const ColumnRange&) const = default;
};

/// One base relation or table-valued function.
struct RelationInfo {
  std::string name;
  /// Estimated row count used by the cardinality model. When the spec is
  /// bound to a statistics catalog (QuerySpec::BindCatalog) this is a
  /// snapshot of the catalog's row count at bind time; stats-aware models
  /// re-read the catalog live, which is how stale-stats serving scenarios
  /// arise.
  double cardinality = 1000.0;
  /// Index of this relation's TableStats in the bound catalog; -1 when the
  /// spec is unbound or the catalog has no entry for the name.
  int table_id = -1;
  /// Tables referenced freely by this leaf's defining expression; non-empty
  /// marks a table-valued function / lateral leaf (Sec. 5.6).
  NodeSet free_tables;
  /// Number of integer columns the executor materializes for this relation.
  int num_columns = 2;
  /// Executable correlation payload for lateral leaves: the leaf's output
  /// keeps a base row iff the sum of the referenced columns (own columns
  /// plus columns of the bound free tables) is divisible by `corr_modulus`.
  std::vector<ColumnRef> corr_refs;
  int64_t corr_modulus = 1;
  /// Scan-time range filters on this relation's own columns. `cardinality`
  /// stays the unfiltered row count; models estimate the filters' effect
  /// (uniformly from min/max, or via histograms when analyzed).
  std::vector<ColumnRange> filters;
};

/// One join predicate. `left`/`right`/`flex` partition the referenced tables
/// into must-be-left, must-be-right, and either-side groups (Sec. 6). For a
/// simple binary equality both sides are singletons and `flex` is empty.
struct Predicate {
  NodeSet left;
  NodeSet right;
  NodeSet flex;
  /// Join selectivity in (0, 1]; the fraction of the cross product kept.
  double selectivity = 0.1;
  /// True when no explicit selectivity was given (e.g. a QDL predicate
  /// without `sel=`): `selectivity` then holds the 0.1 default, and
  /// stats-aware cardinality models derive the value from catalog column
  /// statistics instead (1/max(ndv); see cost/stats_model.h).
  bool derive_selectivity = false;
  /// Operator this predicate belongs to. Plain inner joins use kJoin.
  OpType op = OpType::kJoin;
  /// Executable payload. For kSumMod the predicate holds iff the sum of
  /// the referenced column values is divisible by `modulus`; for kEq it
  /// holds iff all referenced values are equal (`modulus` is ignored).
  /// Either way NULL in any input -> false, which makes every predicate
  /// "strong" in the sense of Sec. 5.2.
  PredicateKind kind = PredicateKind::kSumMod;
  std::vector<ColumnRef> refs;
  int64_t modulus = 2;

  /// All tables this predicate references.
  NodeSet AllTables() const { return left | right | flex; }
  bool IsSimple() const {
    return left.IsSingleton() && right.IsSingleton() && flex.Empty();
  }
};

/// The full problem description consumed by the hypergraph builder, the
/// workload generators, the QDL parser and the executor.
struct QuerySpec {
  std::vector<RelationInfo> relations;
  std::vector<Predicate> predicates;
  /// The statistics catalog this spec's relations reference (may be null:
  /// specs built ad hoc carry only the flat per-relation snapshots).
  /// Shared, not owned — several specs typically reference one catalog.
  std::shared_ptr<const Catalog> catalog;

  int NumRelations() const { return static_cast<int>(relations.size()); }
  NodeSet AllRelations() const { return NodeSet::FullSet(NumRelations()); }

  /// Adds a relation, returning its node index.
  int AddRelation(std::string name, double cardinality, int num_columns = 2);

  /// Adds a simple binary predicate between two relations.
  int AddSimplePredicate(int left, int right, double selectivity,
                         OpType op = OpType::kJoin);

  /// Adds a complex (hyper) predicate.
  int AddComplexPredicate(NodeSet left, NodeSet right, double selectivity,
                          OpType op = OpType::kJoin, NodeSet flex = NodeSet());

  /// Binds this spec to `catalog`: resolves each relation's name to its
  /// TableStats (setting RelationInfo::table_id) and snapshots current row
  /// counts into the flat cardinalities. Relations without a catalog entry
  /// keep their values and stay unbound; the catalog pointer is retained
  /// for stats-aware models either way.
  void BindCatalog(std::shared_ptr<const Catalog> catalog);

  /// Structural validation: sides non-empty & pairwise disjoint, node
  /// indices in range, selectivities in (0, 1], free-table sets exclude the
  /// relation itself.
  Result<bool> Validate() const;

  /// Fills in default executable payloads for predicates that have none:
  /// one column reference per referenced table (column 0) and a modulus
  /// derived from the requested selectivity.
  void FillDefaultPayloads();

  // Spec-level shape accessors, for callers that want to classify a query
  // before (or without) building its hypergraph — traffic tooling, demos,
  // logging. The service itself inspects the built Hypergraph directly.

  /// True if any predicate is a hyper predicate (non-singleton side or a
  /// non-empty flex set).
  bool HasComplexPredicates() const;

  /// True if any predicate belongs to an operator other than inner join.
  bool HasNonInnerPredicates() const;

  /// True if any relation is a lateral leaf (non-empty free-table set).
  bool HasDependentLeaves() const;
};

}  // namespace dphyp

#endif  // DPHYP_CATALOG_QUERY_SPEC_H_
