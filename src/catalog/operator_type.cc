#include "catalog/operator_type.h"

#include "util/check.h"

namespace dphyp {

bool IsCommutative(OpType op) {
  return op == OpType::kJoin || op == OpType::kFullOuterjoin;
}

bool IsDependent(OpType op) {
  switch (op) {
    case OpType::kDepJoin:
    case OpType::kDepLeftSemijoin:
    case OpType::kDepLeftAntijoin:
    case OpType::kDepLeftOuterjoin:
    case OpType::kDepLeftNestjoin:
      return true;
    default:
      return false;
  }
}

bool IsLeftLinearOnly(OpType op) {
  return op != OpType::kJoin && op != OpType::kFullOuterjoin;
}

bool LeftOnlyOutput(OpType op) {
  switch (op) {
    case OpType::kLeftSemijoin:
    case OpType::kLeftAntijoin:
    case OpType::kLeftNestjoin:
    case OpType::kDepLeftSemijoin:
    case OpType::kDepLeftAntijoin:
    case OpType::kDepLeftNestjoin:
      return true;
    default:
      return false;
  }
}

OpType DependentVariant(OpType op) {
  switch (op) {
    case OpType::kJoin:
      return OpType::kDepJoin;
    case OpType::kLeftSemijoin:
      return OpType::kDepLeftSemijoin;
    case OpType::kLeftAntijoin:
      return OpType::kDepLeftAntijoin;
    case OpType::kLeftOuterjoin:
      return OpType::kDepLeftOuterjoin;
    case OpType::kLeftNestjoin:
      return OpType::kDepLeftNestjoin;
    case OpType::kFullOuterjoin:
      DPHYP_CHECK_MSG(false, "full outer join has no dependent variant");
    default:
      return op;  // already dependent
  }
}

OpType RegularVariant(OpType op) {
  switch (op) {
    case OpType::kDepJoin:
      return OpType::kJoin;
    case OpType::kDepLeftSemijoin:
      return OpType::kLeftSemijoin;
    case OpType::kDepLeftAntijoin:
      return OpType::kLeftAntijoin;
    case OpType::kDepLeftOuterjoin:
      return OpType::kLeftOuterjoin;
    case OpType::kDepLeftNestjoin:
      return OpType::kLeftNestjoin;
    default:
      return op;
  }
}

const char* OpName(OpType op) {
  switch (op) {
    case OpType::kJoin:
      return "join";
    case OpType::kLeftSemijoin:
      return "leftsemijoin";
    case OpType::kLeftAntijoin:
      return "leftantijoin";
    case OpType::kLeftOuterjoin:
      return "leftouterjoin";
    case OpType::kFullOuterjoin:
      return "fullouterjoin";
    case OpType::kLeftNestjoin:
      return "leftnestjoin";
    case OpType::kDepJoin:
      return "depjoin";
    case OpType::kDepLeftSemijoin:
      return "depleftsemijoin";
    case OpType::kDepLeftAntijoin:
      return "depleftantijoin";
    case OpType::kDepLeftOuterjoin:
      return "depleftouterjoin";
    case OpType::kDepLeftNestjoin:
      return "depleftnestjoin";
  }
  return "unknown";
}

const char* OpSymbol(OpType op) {
  switch (op) {
    case OpType::kJoin:
      return "JOIN";
    case OpType::kLeftSemijoin:
      return "SEMI";
    case OpType::kLeftAntijoin:
      return "ANTI";
    case OpType::kLeftOuterjoin:
      return "LOJ";
    case OpType::kFullOuterjoin:
      return "FOJ";
    case OpType::kLeftNestjoin:
      return "NEST";
    case OpType::kDepJoin:
      return "DJOIN";
    case OpType::kDepLeftSemijoin:
      return "DSEMI";
    case OpType::kDepLeftAntijoin:
      return "DANTI";
    case OpType::kDepLeftOuterjoin:
      return "DLOJ";
    case OpType::kDepLeftNestjoin:
      return "DNEST";
  }
  return "?";
}

bool ParseOpName(const std::string& name, OpType* out) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    OpType op = static_cast<OpType>(i);
    if (name == OpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

}  // namespace dphyp
