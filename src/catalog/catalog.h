// Versioned statistics catalog: per-table row counts and per-column
// distinct counts / value bounds — the statistics source the pluggable
// CardinalityModels (cost/cardinality.h) derive estimates from. This is
// the role pg_statistic plays for PostgreSQL's selectivity functions and
// attribute statistics play for Hyrise's histogram-based estimator.
//
// Versioning: every mutation bumps `stats_version`. Consumers that cache
// artifacts derived from statistics — the plan cache keys served plans by a
// fingerprint salted with this version — therefore see a stats refresh
// (manual, or from execution feedback via ApplyFeedbackToCatalog) as an
// atomic invalidation of everything estimated under the old statistics.
//
// Thread-safety: table reads and writes are mutex-guarded and copy stats
// in/out; `stats_version()` is a lock-free atomic read so hot serving paths
// can salt cache keys without contending with a concurrent ANALYZE-style
// refresh.
#ifndef DPHYP_CATALOG_CATALOG_H_
#define DPHYP_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace dphyp {

/// Statistics for one column of a base table.
struct ColumnStats {
  /// Number of distinct values; <= 0 means unknown. Drives the classic
  /// equality-join selectivity 1/max(ndv) when a predicate carries no
  /// explicit selectivity.
  double distinct_count = 0.0;
  /// Value bounds; both zero when unknown.
  double min_value = 0.0;
  double max_value = 0.0;
  /// Most-common values with exact fractions; empty when not analyzed.
  /// Built by stats/analyze.h, consumed by stats/selectivity.h the way
  /// selfuncs.c's eqjoinsel consumes the MCV slots.
  McvList mcvs;
  /// Equi-depth histogram over the non-MCV values; empty when not
  /// analyzed or when the MCV list already covers the whole column.
  Histogram histogram;

  bool HasDistribution() const {
    return !mcvs.Empty() || !histogram.Empty();
  }
};

/// Statistics for one base table.
struct TableStats {
  std::string name;
  double row_count = 0.0;
  /// Per-column statistics; may be shorter than the table's column count
  /// (missing columns simply have no stats).
  std::vector<ColumnStats> columns;
};

/// The versioned statistics store. Tables are keyed by name; registering a
/// name again replaces the earlier entry (a full ANALYZE of that table).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers (or replaces) a table's statistics; returns its index.
  /// Bumps the stats version.
  int AddTable(TableStats stats);

  /// Copies out the stats of `name`; nullopt when unknown.
  std::optional<TableStats> FindTable(std::string_view name) const;

  /// Copies out the stats of table `index`; nullopt when out of range.
  std::optional<TableStats> TableAt(int index) const;

  /// Index of `name`, or -1. Indices are stable (replacement keeps them).
  int IndexOf(std::string_view name) const;

  int NumTables() const;

  /// Refreshes one table's row count; false when the table is unknown.
  /// Bumps the stats version.
  bool SetRowCount(std::string_view name, double row_count);

  /// Refreshes one column's statistics (growing the column vector as
  /// needed); false when the table is unknown. Bumps the stats version.
  bool SetColumnStats(std::string_view name, int column, ColumnStats stats);

  /// Records that join predicates between `table_a` and `table_b` are
  /// correlated: `correlation` in [0, 1], where 0 keeps the independence
  /// assumption and 1 means additional predicates between the pair add no
  /// selectivity. Symmetric in the table names. Bumps the stats version.
  /// This is the coarse-grained stand-in for extended/multi-column
  /// statistics: correlation-aware models damp the product of per-edge
  /// selectivities for the pair (see stats/hist_model.cc).
  void SetTablePairCorrelation(std::string_view table_a,
                               std::string_view table_b, double correlation);

  /// The recorded correlation for the pair, or 0 (independent) when none.
  double TablePairCorrelation(std::string_view table_a,
                              std::string_view table_b) const;

  /// Monotone counter bumped by every mutation. Plan caches mix it into
  /// their keys, so a bump invalidates every plan estimated before it.
  uint64_t stats_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Explicit invalidation without a stats change (e.g. schema-level events
  /// the catalog does not model).
  void BumpStatsVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  int IndexOfLocked(std::string_view name) const;

  mutable std::mutex mu_;
  std::vector<TableStats> tables_;
  /// Keyed by the name pair in sorted order so lookups are symmetric.
  std::map<std::pair<std::string, std::string>, double> pair_correlations_;
  std::atomic<uint64_t> version_{1};
};

}  // namespace dphyp

#endif  // DPHYP_CATALOG_CATALOG_H_
